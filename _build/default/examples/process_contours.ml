(* 2-D process modelling (paper Eq 1, Figs 13 and 14): print the
   printed-contour of a drawn square under orthogonal, Euclidean, and
   proximity-effect expansion; show exposure bridging across a narrow
   gap; and sweep the end-cap retreat against wire width (the
   relational rule).

   Run with: dune exec examples/process_contours.exe *)

let ascii_region ~x0 ~y0 ~x1 ~y1 ~step tag regions =
  Printf.printf "%s\n" tag;
  let y = ref (y1 - step) in
  while !y >= y0 do
    let x = ref x0 in
    let buf = Buffer.create 64 in
    while !x < x1 do
      let c =
        let rec pick = function
          | [] -> '.'
          | (ch, r) :: rest -> if Geom.Region.contains_pt r !x !y then ch else pick rest
        in
        pick regions
      in
      Buffer.add_char buf c;
      x := !x + step
    done;
    print_endline (Buffer.contents buf);
    y := !y - step
  done;
  print_newline ()

let () =
  let lambda = 100 in
  let sigma = 60. in
  let model = Process_model.Exposure.make ~sigma () in

  (* --- Fig 13: three expansions of a 2x2-lambda square ---

     A "proximity expand" by d is printing with the develop threshold
     set to the exposure found d outside a long straight edge: straight
     edges then move out by exactly d, while corners and neighbouring
     geometry deviate -- the effect neither orthogonal nor Euclidean
     expansion models. *)
  let square = Geom.Region.of_rect (Geom.Rect.make 0 0 (2 * lambda) (2 * lambda)) in
  let d = lambda in
  let orth = Geom.Region.expand_orth square d in
  let eucl = Geom.Region.expand_euclid square d in
  let expand_threshold = Process_model.Erf.gauss_cdf (-.float_of_int d /. sigma) in
  let expand_model = Process_model.Exposure.make ~sigma ~threshold:expand_threshold () in
  let prox =
    Process_model.Exposure.printed expand_model square ~step:20 ~margin:(2 * lambda)
  in
  Printf.printf "--- Fig 13: expansions of a 2-lambda square by d = lambda ---\n";
  Printf.printf "areas: drawn=%d orth=%d euclid=%d proximity=%d\n\n"
    (Geom.Region.area square) (Geom.Region.area orth) (Geom.Region.area eucl)
    (Geom.Region.area prox);
  ascii_region ~x0:(-2 * lambda) ~y0:(-2 * lambda) ~x1:(4 * lambda) ~y1:(4 * lambda)
    ~step:20 "legend: # drawn, o orthogonal expand, e euclidean expand, . outside"
    [ ('#', square); ('o', Geom.Region.diff orth eucl); ('e', eucl) ];
  ascii_region ~x0:(-2 * lambda) ~y0:(-2 * lambda) ~x1:(4 * lambda) ~y1:(4 * lambda)
    ~step:20 "legend: # drawn, p proximity expand, . outside"
    [ ('#', square); ('p', prox) ];

  (* The proximity effect proper: the same two boxes, expanded alone
     and together.  The combined exposure bulges into the gap -- "a
     piece of geometry expands or shrinks differently if there is
     another piece nearby". *)
  let boxa = Geom.Rect.make 0 0 (3 * lambda) (2 * lambda) in
  let boxb = Geom.Rect.make ((3 * lambda) + 230) 0 ((6 * lambda) + 230) (2 * lambda) in
  let alone r =
    Process_model.Exposure.printed expand_model (Geom.Region.of_rect r) ~step:10
      ~margin:(2 * lambda)
  in
  let together =
    Process_model.Exposure.printed expand_model
      (Geom.Region.of_rects [ boxa; boxb ])
      ~step:10 ~margin:(2 * lambda)
  in
  Printf.printf "--- proximity effect: two boxes 2.3 lambda apart, expand d = lambda ---\n";
  Printf.printf "printed alone:    %d components\n"
    (List.length (Geom.Region.components (Geom.Region.union (alone boxa) (alone boxb))));
  Printf.printf "printed together: %d component(s) -- the gap bridges\n\n"
    (List.length (Geom.Region.components together));

  (* --- exposure bridging: the line of closest approach --- *)
  Printf.printf "--- spacing by line of closest approach ---\n";
  List.iter
    (fun gap ->
      let a = Geom.Region.of_rect (Geom.Rect.make 0 0 (4 * lambda) (2 * lambda)) in
      let b =
        Geom.Region.of_rect
          (Geom.Rect.make ((4 * lambda) + gap) 0 ((8 * lambda) + gap) (2 * lambda))
      in
      let v = Process_model.Closest.check model ~misalign:0 a b in
      Format.printf "gap %3d: %a@." gap Process_model.Closest.pp_verdict v)
    [ 50; 100; 150; 200; 300 ];
  Printf.printf "\nwith 50 units of mask misalignment (different layers):\n";
  List.iter
    (fun gap ->
      let a = Geom.Region.of_rect (Geom.Rect.make 0 0 (4 * lambda) (2 * lambda)) in
      let b =
        Geom.Region.of_rect
          (Geom.Rect.make ((4 * lambda) + gap) 0 ((8 * lambda) + gap) (2 * lambda))
      in
      let v = Process_model.Closest.check model ~misalign:50 a b in
      Format.printf "gap %3d: %a@." gap Process_model.Closest.pp_verdict v)
    [ 100; 150; 200; 300 ];

  (* --- Fig 14: end-cap retreat vs wire width (relational rule) --- *)
  Printf.printf "\n--- Fig 14: end-cap retreat vs poly width ---\n";
  Printf.printf "%8s %10s %12s %10s  %s\n" "width" "retreat" "effective" "required" "verdict";
  List.iter
    (fun w ->
      let v =
        Process_model.Relational.check_gate_overhang model ~width:w
          ~drawn:(2 * lambda) ~required:(3 * lambda / 2)
      in
      Printf.printf "%8d %10.1f %12.1f %10d  %s\n" w v.Process_model.Relational.retreat
        v.Process_model.Relational.effective v.Process_model.Relational.required
        (if v.Process_model.Relational.ok then "ok" else "VIOLATION"))
    [ 400; 300; 250; 200; 150; 120; 100 ]
