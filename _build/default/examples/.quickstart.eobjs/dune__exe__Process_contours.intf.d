examples/process_contours.mli:
