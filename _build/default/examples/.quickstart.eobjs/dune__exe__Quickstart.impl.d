examples/quickstart.ml: Cif Dic Format Layoutgen List Netlist Printf String Tech
