examples/inverter_array.mli:
