examples/shift_register.ml: Dic Format Layoutgen List Netlist Tech
