examples/pla_plane.mli:
