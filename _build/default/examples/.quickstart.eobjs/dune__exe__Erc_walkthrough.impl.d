examples/erc_walkthrough.ml: Cif Dic Format Layoutgen List Printf Tech
