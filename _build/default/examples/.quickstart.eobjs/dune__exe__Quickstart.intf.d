examples/quickstart.mli:
