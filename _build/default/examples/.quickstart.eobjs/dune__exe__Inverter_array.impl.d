examples/inverter_array.ml: Dic Flatdrc Format Geom Layoutgen List Printf Tech
