examples/pla_plane.ml: Array Dic Format Layoutgen List Netlist Printf String Tech
