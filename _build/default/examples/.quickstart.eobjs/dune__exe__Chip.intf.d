examples/chip.mli:
