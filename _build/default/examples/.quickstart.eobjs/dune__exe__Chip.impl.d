examples/chip.ml: Cif Dic Format Geom Layoutgen List Netlist String Tech
