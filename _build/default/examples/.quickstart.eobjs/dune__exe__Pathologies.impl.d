examples/pathologies.ml: Dic Flatdrc Layoutgen List Printf Tech
