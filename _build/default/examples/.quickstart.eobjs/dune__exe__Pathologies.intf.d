examples/pathologies.mli:
