examples/shift_register.mli:
