examples/erc_walkthrough.mli:
