examples/process_contours.ml: Buffer Format Geom List Printf Process_model
