bin/dicheck.ml: Arg Cif Cmd Cmdliner Dic Flatdrc Format Geom In_channel List Netlist Out_channel Printf Tech Term
