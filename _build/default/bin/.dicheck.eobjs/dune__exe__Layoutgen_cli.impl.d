bin/layoutgen_cli.ml: Arg Cif Cmd Cmdliner Format Layoutgen List Out_channel Printf String Term
