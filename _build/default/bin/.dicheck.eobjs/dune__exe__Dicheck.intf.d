bin/dicheck.mli:
