bin/layoutgen_cli.mli:
