(* Tests for the flat baseline: the hierarchy flattener and the three
   classical checking algorithms with their period pathologies. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

let parse src =
  match Cif.Parse.file src with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse: %s" (Cif.Parse.string_of_error e)

(* ------------------------------------------------------------------ *)
(* Flatten                                                             *)

let test_flatten_counts () =
  let f = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  let elts = Flatdrc.Flatten.file f in
  (* 6 cells x (7 local elements + T1(2) + T2(3) + buried(3) + 2x con(3)). *)
  Alcotest.(check int) "elements" (6 * 21) (List.length elts);
  Alcotest.(check bool) "rects at least one per element" true
    (Flatdrc.Flatten.rect_count elts >= List.length elts)

let test_flatten_transforms () =
  let f =
    parse "DS 1; L NM; B 100 100 50 50; DF; C 1 T 1000 0; C 1 R 0 1 T 0 1000; E"
  in
  let elts = Flatdrc.Flatten.file f in
  Alcotest.(check int) "two instances" 2 (List.length elts);
  let boxes = List.concat_map (fun (e : Flatdrc.Flatten.elt) -> e.Flatdrc.Flatten.rects) elts in
  Alcotest.(check bool) "translated instance" true
    (List.exists (fun r -> Geom.Rect.equal r (Geom.Rect.make 1000 0 1100 100)) boxes);
  Alcotest.(check bool) "rotated instance" true
    (List.exists (fun r -> Geom.Rect.equal r (Geom.Rect.make (-100) 1000 0 1100)) boxes)

let test_flatten_nested_paths () =
  let f = parse "DS 1; 9 leaf; L NM; B 100 100 50 50; DF; DS 2; 9 mid; C 1; DF; C 2; E" in
  match Flatdrc.Flatten.file f with
  | [ e ] ->
    Alcotest.(check string) "path" "top/0:mid/0:leaf" e.Flatdrc.Flatten.path
  | _ -> Alcotest.fail "expected one element"

let test_flatten_cycle_rejected () =
  let f = parse "DS 1; C 2; DF; DS 2; C 1; DF; C 1; E" in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Flatten: call cycle through symbol 1") (fun () ->
      ignore (Flatdrc.Flatten.file f))

let test_flatten_bbox () =
  let f = parse "L NM; B 100 100 50 50; B 100 100 950 950; E" in
  match Flatdrc.Flatten.bbox (Flatdrc.Flatten.file f) with
  | Some bb -> Alcotest.(check bool) "hull" true (Geom.Rect.equal bb (Geom.Rect.make 0 0 1000 1000))
  | None -> Alcotest.fail "expected a bbox"

(* ------------------------------------------------------------------ *)
(* Width algorithms                                                    *)

let rule_count family errors =
  List.length
    (List.filter
       (fun (e : Flatdrc.Classic.error) ->
         Dic.Classify.family_of_rule e.Flatdrc.Classic.rule = family)
       errors)

let test_figure_width_catches_narrow () =
  let f = parse "L NP; W 100 0 0 1000 0; E" in
  let errors = Flatdrc.Classic.figure_width rules (Flatdrc.Flatten.file f) in
  Alcotest.(check bool) "narrow wire flagged" true (List.length errors >= 1)

let test_figure_width_false_on_halves () =
  (* Fig 2 right: two half-width figures forming a legal composite. *)
  let f = parse "L NP; B 100 600 50 300; B 100 600 150 300; E" in
  let errors = Flatdrc.Classic.figure_width rules (Flatdrc.Flatten.file f) in
  Alcotest.(check int) "both flagged (false errors)" 2 (List.length errors)

let test_sec_width_exact_min_passes () =
  let f = parse "L NP; B 200 1000 100 500; E" in
  let errors =
    Flatdrc.Classic.sec_width Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check int) "exactly-min width is legal" 0 (List.length errors)

let test_sec_width_catches_composite () =
  (* Two legal boxes whose union necks down is NOT caught by SEC with
     orthogonal ops (the Fig 2 left blind spot is shared), but a
     directly drawn narrow bar is caught. *)
  let f = parse "L NP; B 100 1000 50 500; E" in
  let errors =
    Flatdrc.Classic.sec_width Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check bool) "narrow bar flagged" true (List.length errors >= 1)

let test_sec_euclid_corner_false_errors () =
  (* Fig 4 left: Euclidean shrink-expand-compare nibbles every convex
     corner of a perfectly legal L. *)
  let f = parse "L NM; B 1000 300 500 150; B 300 1000 150 500; E" in
  let orth =
    Flatdrc.Classic.sec_width Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  let eucl =
    Flatdrc.Classic.sec_width Geom.Measure.Euclidean rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check int) "orthogonal correct" 0 (List.length orth);
  Alcotest.(check bool) "euclidean false corners" true (List.length eucl >= 4)

(* ------------------------------------------------------------------ *)
(* Spacing                                                             *)

let test_eco_spacing_basic () =
  let f = parse "L NM; B 400 400 200 200; B 400 400 800 200; E" in
  (* Gap is 200 < 300. *)
  let errors =
    Flatdrc.Classic.eco_spacing Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check int) "flagged" 1 (rule_count "spacing" errors)

let test_eco_spacing_touching_merged () =
  let f = parse "L NM; B 400 400 200 200; B 400 400 600 200; E" in
  let errors =
    Flatdrc.Classic.eco_spacing Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check int) "touching elements merge" 0 (rule_count "spacing" errors)

let test_eco_corner_metric () =
  (* Fig 4 right: diagonal corner-to-corner, chebyshev 250 < 300 but
     euclid 353 > 300: the orthogonal expand flags a false error. *)
  let src = "L NM; B 400 400 200 200; B 400 400 850 850; E" in
  let orth =
    Flatdrc.Classic.eco_spacing Geom.Measure.Orthogonal rules
      (Flatdrc.Flatten.file (parse src))
  in
  let eucl =
    Flatdrc.Classic.eco_spacing Geom.Measure.Euclidean rules
      (Flatdrc.Flatten.file (parse src))
  in
  Alcotest.(check int) "orthogonal flags (false)" 1 (rule_count "spacing" orth);
  Alcotest.(check int) "euclidean passes" 0 (rule_count "spacing" eucl)

let test_eco_cross_layer_poly_diff () =
  let f = parse "L NP; B 400 400 200 200; L ND; B 400 400 650 200; E" in
  (* Gap 50 < 100. *)
  let errors =
    Flatdrc.Classic.eco_spacing Geom.Measure.Orthogonal rules (Flatdrc.Flatten.file f)
  in
  Alcotest.(check bool) "poly-diff proximity flagged" true
    (List.exists
       (fun (e : Flatdrc.Classic.error) -> e.Flatdrc.Classic.rule = "spacing.ND-NP")
       errors)

(* ------------------------------------------------------------------ *)
(* Poly-diff crossings                                                 *)

let crossing_file () =
  parse "L NP; B 200 800 100 400; L ND; B 800 200 400 100; E"

let test_polydiff_ignore_misses () =
  let errors = Flatdrc.Classic.poly_diff_check `Ignore rules (Flatdrc.Flatten.file (crossing_file ())) in
  Alcotest.(check int) "silent" 0 (List.length errors)

let test_polydiff_flag_all () =
  let errors =
    Flatdrc.Classic.poly_diff_check `Flag_all rules (Flatdrc.Flatten.file (crossing_file ()))
  in
  Alcotest.(check int) "flagged" 1 (List.length errors)

let test_polydiff_flags_legal_devices_too () =
  (* The whole point of Fig 8: the flat checker cannot tell a declared
     transistor from an accident, so Flag_all reports the device too. *)
  let kit = Layoutgen.Pathology.fig8_accidental ~lambda in
  let errors =
    Flatdrc.Classic.poly_diff_check `Flag_all rules
      (Flatdrc.Flatten.file kit.Layoutgen.Pathology.file)
  in
  Alcotest.(check int) "both crossings flagged" 2 (List.length errors)

(* ------------------------------------------------------------------ *)
(* Whole-checker behaviour                                             *)

let test_clean_chain_has_false_errors () =
  (* The baseline's defining flaw: a perfectly legal design draws
     complaints. *)
  let f = Layoutgen.Cells.chain ~lambda 4 in
  let errors = Flatdrc.Classic.check Flatdrc.Classic.default_mode rules f in
  Alcotest.(check bool) "false errors on clean design" true (List.length errors > 0)

let test_injections_partially_found () =
  let clean = Layoutgen.Cells.chain ~lambda 2 in
  let salted, truths =
    Layoutgen.Inject.apply clean
      [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(0, -20 * lambda);
        Layoutgen.Inject.metal_spacing_pair ~lambda ~at:(0, -40 * lambda) ]
  in
  let errors = Flatdrc.Classic.check Flatdrc.Classic.default_mode rules salted in
  let outcome =
    Dic.Classify.classify ~tolerance:(2 * lambda) truths (Dic.Classify.of_classic errors)
  in
  Alcotest.(check int) "both geometric defects found" 2
    (List.length outcome.Dic.Classify.flagged)

(* The paper's per-figure behaviour of the flat baseline, as one
   regression table: (kit, crossings stance, expected flagged, expected
   missed). *)
let test_figure_matrix () =
  let kits = Layoutgen.Pathology.all ~lambda in
  let kit name =
    List.find (fun (k : Layoutgen.Pathology.kit) -> k.Layoutgen.Pathology.kit_name = name) kits
  in
  let expectations =
    [ ("fig2a", `Ignore, 0, 1);  (* missed composite defect *)
      ("fig5b", `Ignore, 1, 0);  (* plain geometric gap: found *)
      ("fig6", `Ignore, 0, 1);  (* contact-over-gate invisible *)
      ("fig6", `Flag_all, 0, 1);
      ("fig7", `Ignore, 0, 1);
      ("fig7", `Flag_all, 0, 1);
      ("fig8", `Ignore, 0, 1);  (* accidental transistor missed... *)
      ("fig8", `Flag_all, 1, 0);  (* ...or found along with false alarms *)
      ("fig15", `Ignore, 0, 1) (* butting halves union is legal *) ]
  in
  List.iter
    (fun (name, stance, want_flagged, want_missed) ->
      let k = kit name in
      let mode = { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = stance } in
      let errors = Flatdrc.Classic.check mode rules k.Layoutgen.Pathology.file in
      let outcome =
        Dic.Classify.classify ~tolerance:(2 * lambda) k.Layoutgen.Pathology.truths
          (Dic.Classify.of_classic errors)
      in
      let tag =
        Printf.sprintf "%s/%s" name
          (match stance with `Ignore -> "ignore" | `Flag_all -> "flag")
      in
      Alcotest.(check int) (tag ^ " flagged") want_flagged
        (List.length outcome.Dic.Classify.flagged);
      Alcotest.(check int) (tag ^ " missed") want_missed
        (List.length outcome.Dic.Classify.missed))
    expectations

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "flatdrc"
    [ ( "flatten",
        [ Alcotest.test_case "counts" `Quick test_flatten_counts;
          Alcotest.test_case "transforms" `Quick test_flatten_transforms;
          Alcotest.test_case "nested paths" `Quick test_flatten_nested_paths;
          Alcotest.test_case "cycle rejected" `Quick test_flatten_cycle_rejected;
          Alcotest.test_case "bbox" `Quick test_flatten_bbox ] );
      ( "width",
        [ Alcotest.test_case "figure-based catches narrow" `Quick
            test_figure_width_catches_narrow;
          Alcotest.test_case "figure-based false on halves" `Quick
            test_figure_width_false_on_halves;
          Alcotest.test_case "SEC exact-min passes" `Quick test_sec_width_exact_min_passes;
          Alcotest.test_case "SEC catches narrow bar" `Quick test_sec_width_catches_composite;
          Alcotest.test_case "SEC euclid corner false errors" `Quick
            test_sec_euclid_corner_false_errors ] );
      ( "spacing",
        [ Alcotest.test_case "basic" `Quick test_eco_spacing_basic;
          Alcotest.test_case "touching merged" `Quick test_eco_spacing_touching_merged;
          Alcotest.test_case "corner metric divergence" `Quick test_eco_corner_metric;
          Alcotest.test_case "cross-layer poly-diff" `Quick test_eco_cross_layer_poly_diff ] );
      ( "polydiff",
        [ Alcotest.test_case "ignore misses" `Quick test_polydiff_ignore_misses;
          Alcotest.test_case "flag-all catches" `Quick test_polydiff_flag_all;
          Alcotest.test_case "flag-all over-reports devices" `Quick
            test_polydiff_flags_legal_devices_too ] );
      ( "checker",
        [ Alcotest.test_case "clean chain draws complaints" `Quick
            test_clean_chain_has_false_errors;
          Alcotest.test_case "injections found" `Quick test_injections_partially_found;
          Alcotest.test_case "per-figure matrix" `Quick test_figure_matrix ] ) ]
