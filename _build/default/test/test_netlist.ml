(* Tests for union-find, the net-list builder, and the four
   non-geometric construction rules. *)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)

let test_uf_basic () =
  let uf = Netlist.Uf.create () in
  let a = Netlist.Uf.make uf and b = Netlist.Uf.make uf and c = Netlist.Uf.make uf in
  Alcotest.(check bool) "initially apart" false (Netlist.Uf.same uf a b);
  Netlist.Uf.union uf a b;
  Alcotest.(check bool) "joined" true (Netlist.Uf.same uf a b);
  Alcotest.(check bool) "c apart" false (Netlist.Uf.same uf a c);
  Netlist.Uf.union uf b c;
  Alcotest.(check bool) "transitive" true (Netlist.Uf.same uf a c)

let test_uf_classes () =
  let uf = Netlist.Uf.create () in
  let nodes = List.init 6 (fun _ -> Netlist.Uf.make uf) in
  (match nodes with
  | [ a; b; c; d; _e; _f ] ->
    Netlist.Uf.union uf a b;
    Netlist.Uf.union uf c d
  | _ -> assert false);
  let classes = Netlist.Uf.classes uf in
  Alcotest.(check int) "4 classes" 4 (List.length classes);
  Alcotest.(check int) "6 members total" 6
    (List.fold_left (fun acc c -> acc + List.length c) 0 classes)

let test_uf_growth () =
  let uf = Netlist.Uf.create () in
  let nodes = List.init 1000 (fun _ -> Netlist.Uf.make uf) in
  List.iteri (fun i n -> if i > 0 then Netlist.Uf.union uf (List.hd nodes) n) nodes;
  Alcotest.(check int) "one class" 1 (List.length (Netlist.Uf.classes uf));
  Alcotest.(check int) "size" 1000 (Netlist.Uf.size uf)

let prop_uf_equivalence =
  QCheck2.Test.make ~name:"uf: same is an equivalence closure of unions" ~count:200
    QCheck2.Gen.(
      pair (int_range 2 20) (list_size (int_range 0 40) (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, unions) ->
      let unions = List.filter (fun (a, b) -> a < n && b < n) unions in
      let uf = Netlist.Uf.create () in
      for _ = 1 to n do
        ignore (Netlist.Uf.make uf)
      done;
      List.iter (fun (a, b) -> Netlist.Uf.union uf a b) unions;
      (* Reference: repeated relaxation over an explicit matrix. *)
      let reach = Array.make_matrix n n false in
      for i = 0 to n - 1 do
        reach.(i).(i) <- true
      done;
      List.iter
        (fun (a, b) ->
          reach.(a).(b) <- true;
          reach.(b).(a) <- true)
        unions;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            for k = 0 to n - 1 do
              if reach.(i).(k) && reach.(k).(j) && not reach.(i).(j) then begin
                reach.(i).(j) <- true;
                changed := true
              end
            done
          done
        done
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Netlist.Uf.same uf i j <> reach.(i).(j) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Net builder                                                         *)

let terminal path kind port =
  { Netlist.Net.device_path = path; device = kind; port }

let test_builder_basic () =
  let b = Netlist.Net.builder () in
  let n1 = Netlist.Net.node b ~label:(Some "out") in
  let n2 = Netlist.Net.node b ~label:None in
  let n3 = Netlist.Net.node b ~label:None in
  Netlist.Net.connect b n1 n2;
  Netlist.Net.add_element b n1;
  Netlist.Net.add_element b n2;
  Netlist.Net.add_terminal b n3 (terminal "t1" Tech.Device.Enhancement "gate");
  let t = Netlist.Net.finish b ~auto_prefix:"" in
  Alcotest.(check int) "two nets" 2 (List.length t.Netlist.Net.nets);
  (match Netlist.Net.find_by_name t "out" with
  | Some net ->
    Alcotest.(check int) "elements merged" 2 net.Netlist.Net.element_count;
    Alcotest.(check int) "no terminals" 0 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "net 'out' not found");
  Alcotest.(check bool) "connected query" true (Netlist.Net.connected b n1 n2)

let test_builder_globals_merge () =
  let b = Netlist.Net.builder () in
  let n1 = Netlist.Net.node b ~label:(Some "VDD!") in
  let n2 = Netlist.Net.node b ~label:(Some "VDD!") in
  let n3 = Netlist.Net.node b ~label:(Some "VDD") in
  Netlist.Net.merge_globals b;
  Alcotest.(check bool) "globals merged" true (Netlist.Net.connected b n1 n2);
  Alcotest.(check bool) "non-global kept apart" false (Netlist.Net.connected b n1 n3)

let test_builder_classes () =
  let b = Netlist.Net.builder () in
  let n1 = Netlist.Net.node b ~label:(Some "VDD!") in
  let n2 = Netlist.Net.node b ~label:(Some "GND!") in
  Netlist.Net.connect b n1 n2;
  let t = Netlist.Net.finish b ~auto_prefix:"" in
  match t.Netlist.Net.nets with
  | [ net ] ->
    Alcotest.(check bool) "power" true (Netlist.Net.has_class net Tech.Netclass.Power);
    Alcotest.(check bool) "ground" true (Netlist.Net.has_class net Tech.Netclass.Ground);
    Alcotest.(check string) "display uses a label" "GND!" (Netlist.Net.display_name net)
  | _ -> Alcotest.fail "expected one merged net"

(* ------------------------------------------------------------------ *)
(* ERC                                                                 *)

let net_with ?(names = []) ?(terminals = []) ?(elements = 1) auto =
  { Netlist.Net.names;
    auto_name = auto;
    classes =
      List.sort_uniq Stdlib.compare (List.map Tech.Netclass.classify names)
      |> List.filter (fun c -> not (Tech.Netclass.equal c Tech.Netclass.Signal));
    terminals;
    element_count = elements }

let has_violation pred vs = List.exists pred vs

let test_erc_floating () =
  let t =
    { Netlist.Net.nets =
        [ net_with ~terminals:[ terminal "t1" Tech.Device.Enhancement "gate" ] "n0" ] }
  in
  Alcotest.(check bool) "flagged" true
    (has_violation
       (function Netlist.Erc.Floating_net { terminals = 1; _ } -> true | _ -> false)
       (Netlist.Erc.check t))

let test_erc_floating_ok_with_two () =
  let t =
    { Netlist.Net.nets =
        [ net_with
            ~terminals:
              [ terminal "t1" Tech.Device.Enhancement "gate";
                terminal "t2" Tech.Device.Depletion "sd0" ]
            "n0" ] }
  in
  Alcotest.(check bool) "clean" false
    (has_violation (function Netlist.Erc.Floating_net _ -> true | _ -> false)
       (Netlist.Erc.check t))

let test_erc_contacts_not_devices () =
  (* Contacts are wiring: a net with two contacts and one transistor
     terminal still floats. *)
  let t =
    { Netlist.Net.nets =
        [ net_with
            ~terminals:
              [ terminal "c1" Tech.Device.Contact_cut "via";
                terminal "c2" Tech.Device.Buried_contact "via";
                terminal "t1" Tech.Device.Enhancement "gate" ]
            "n0" ] }
  in
  Alcotest.(check bool) "still floating" true
    (has_violation (function Netlist.Erc.Floating_net _ -> true | _ -> false)
       (Netlist.Erc.check t))

let test_erc_supplies_exempt_from_floating () =
  let t = { Netlist.Net.nets = [ net_with ~names:[ "VDD!" ] "n0" ] } in
  Alcotest.(check bool) "supply exempt" false
    (has_violation (function Netlist.Erc.Floating_net _ -> true | _ -> false)
       (Netlist.Erc.check t))

let test_erc_supply_short () =
  let t = { Netlist.Net.nets = [ net_with ~names:[ "GND!"; "VDD!" ] "n0" ] } in
  Alcotest.(check bool) "flagged" true
    (has_violation (function Netlist.Erc.Supply_short _ -> true | _ -> false)
       (Netlist.Erc.check t))

let test_erc_bus_on_supply () =
  let t = { Netlist.Net.nets = [ net_with ~names:[ "BUS0!"; "GND!" ] "n0" ] } in
  Alcotest.(check bool) "flagged" true
    (has_violation (function Netlist.Erc.Bus_on_supply _ -> true | _ -> false)
       (Netlist.Erc.check t));
  let ok = { Netlist.Net.nets = [ net_with ~names:[ "BUS0!"; "data" ] "n0" ] } in
  Alcotest.(check bool) "bus on signal fine" false
    (has_violation (function Netlist.Erc.Bus_on_supply _ -> true | _ -> false)
       (Netlist.Erc.check ok))

let test_erc_depletion_on_ground () =
  let t =
    { Netlist.Net.nets =
        [ net_with ~names:[ "GND!" ]
            ~terminals:[ terminal "x.dep" Tech.Device.Depletion "sd0" ]
            "n0" ] }
  in
  Alcotest.(check bool) "flagged" true
    (has_violation
       (function
         | Netlist.Erc.Depletion_on_ground { device_path = "x.dep"; _ } -> true
         | _ -> false)
       (Netlist.Erc.check t));
  (* An enhancement pull-down on ground is of course fine. *)
  let ok =
    { Netlist.Net.nets =
        [ net_with ~names:[ "GND!" ]
            ~terminals:[ terminal "x.enh" Tech.Device.Enhancement "sd0" ]
            "n0" ] }
  in
  Alcotest.(check bool) "enhancement fine" false
    (has_violation (function Netlist.Erc.Depletion_on_ground _ -> true | _ -> false)
       (Netlist.Erc.check ok))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "netlist"
    [ ( "uf",
        [ Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "classes" `Quick test_uf_classes;
          Alcotest.test_case "growth" `Quick test_uf_growth ] );
      qsuite "uf.props" [ prop_uf_equivalence ];
      ( "builder",
        [ Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "globals merge" `Quick test_builder_globals_merge;
          Alcotest.test_case "classes" `Quick test_builder_classes ] );
      ( "erc",
        [ Alcotest.test_case "floating" `Quick test_erc_floating;
          Alcotest.test_case "two devices ok" `Quick test_erc_floating_ok_with_two;
          Alcotest.test_case "contacts are wiring" `Quick test_erc_contacts_not_devices;
          Alcotest.test_case "supplies exempt" `Quick test_erc_supplies_exempt_from_floating;
          Alcotest.test_case "supply short" `Quick test_erc_supply_short;
          Alcotest.test_case "bus on supply" `Quick test_erc_bus_on_supply;
          Alcotest.test_case "depletion on ground" `Quick test_erc_depletion_on_ground ] ) ]
