(* Tests for the 2-D process model: erf, Gaussian box exposure (the
   paper's Eq 1), printed contours, line-of-closest-approach spacing,
   and the relational end-cap rule. *)

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

(* ------------------------------------------------------------------ *)
(* erf                                                                 *)

let test_erf_known_values () =
  (* Reference values to 7 digits. *)
  List.iter
    (fun (x, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "erf(%g)" x)
        true
        (feq ~eps:2e-7 (Process_model.Erf.erf x) want))
    [ (0.0, 0.0); (0.5, 0.5204999); (1.0, 0.8427008); (2.0, 0.9953223);
      (3.0, 0.9999779) ]

let test_erf_odd () =
  List.iter
    (fun x ->
      Alcotest.(check bool) "odd" true
        (feq (Process_model.Erf.erf (-.x)) (-.Process_model.Erf.erf x)))
    [ 0.3; 1.1; 2.7 ]

let test_erfc () =
  Alcotest.(check bool) "erfc = 1 - erf" true
    (feq (Process_model.Erf.erfc 0.7) (1. -. Process_model.Erf.erf 0.7))

let test_gauss_cdf () =
  Alcotest.(check bool) "cdf(0)=0.5" true (feq (Process_model.Erf.gauss_cdf 0.) 0.5);
  Alcotest.(check bool) "cdf(1.96)~0.975" true
    (feq ~eps:1e-3 (Process_model.Erf.gauss_cdf 1.96) 0.975);
  Alcotest.(check bool) "monotone" true
    (Process_model.Erf.gauss_cdf 0.5 > Process_model.Erf.gauss_cdf 0.4)

let prop_erf_monotone =
  QCheck2.Test.make ~name:"erf: monotone increasing" ~count:300
    QCheck2.Gen.(pair (float_bound_exclusive 4.) (float_bound_exclusive 4.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Process_model.Erf.erf lo <= Process_model.Erf.erf hi +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Exposure                                                            *)

let model = Process_model.Exposure.make ~sigma:60. ()

let big_square =
  Geom.Region.of_rect (Geom.Rect.make (-1000) (-1000) 1000 1000)

let test_exposure_center_saturates () =
  Alcotest.(check bool) "centre of a big mask ~ 1" true
    (feq ~eps:1e-6 (Process_model.Exposure.of_region model big_square 0. 0.) 1.)

let test_exposure_edge_half () =
  (* A long straight edge exposes to exactly half at the edge. *)
  Alcotest.(check bool) "edge = 0.5" true
    (feq ~eps:1e-3 (Process_model.Exposure.of_region model big_square 1000. 0.) 0.5)

let test_exposure_corner_quarter () =
  Alcotest.(check bool) "corner = 0.25" true
    (feq ~eps:1e-3 (Process_model.Exposure.of_region model big_square 1000. 1000.) 0.25)

let test_exposure_far_zero () =
  Alcotest.(check bool) "far outside ~ 0" true
    (Process_model.Exposure.of_region model big_square 2000. 0. < 1e-6)

let test_exposure_additive () =
  let a = Geom.Rect.make 0 0 100 100 and b = Geom.Rect.make 300 0 400 100 in
  let sum =
    Process_model.Exposure.of_rect model a 200. 50.
    +. Process_model.Exposure.of_rect model b 200. 50.
  in
  let union = Process_model.Exposure.of_region model (Geom.Region.of_rects [ a; b ]) 200. 50. in
  Alcotest.(check bool) "separable sum" true (feq ~eps:1e-9 sum union)

let test_exposure_symmetry () =
  let sq = Geom.Region.of_rect (Geom.Rect.make (-100) (-100) 100 100) in
  let i1 = Process_model.Exposure.of_region model sq 150. 30.
  and i2 = Process_model.Exposure.of_region model sq (-150.) 30.
  and i3 = Process_model.Exposure.of_region model sq 30. 150. in
  Alcotest.(check bool) "mirror x" true (feq i1 i2);
  Alcotest.(check bool) "transpose" true (feq i1 i3)

let test_printed_straight_edge_in_place () =
  (* With threshold 0.5, a large feature prints with its edges in
     place to within the sampling step. *)
  let sq = Geom.Region.of_rect (Geom.Rect.make 0 0 600 600) in
  let printed = Process_model.Exposure.printed model sq ~step:10 ~margin:200 in
  Alcotest.(check bool) "mid-edge cell prints" true
    (Geom.Region.contains_pt printed 300 10);
  Alcotest.(check bool) "just outside does not" false
    (Geom.Region.contains_pt printed 300 (-20));
  (* Corners round: the drawn corner cell does not print. *)
  Alcotest.(check bool) "corner rounds" false (Geom.Region.contains_pt printed 5 5)

let test_max_along () =
  let sq = Geom.Region.of_rect (Geom.Rect.make 0 0 400 400) in
  let m, at =
    Process_model.Exposure.max_along model sq ~x0:(-200.) ~y0:200. ~x1:600. ~y1:200.
      ~samples:60
  in
  Alcotest.(check bool) "max is about 1 inside" true (m > 0.9);
  Alcotest.(check bool) "max lands inside the mask" true (at > 0.2 && at < 0.8)

let prop_exposure_bounded =
  QCheck2.Test.make ~name:"exposure: 0 <= I <= 1" ~count:200
    QCheck2.Gen.(
      quad (int_range (-300) 300) (int_range (-300) 300) (int_range 1 200) (int_range 1 200))
    (fun (x, y, w, h) ->
      let r = Geom.Region.of_rect (Geom.Rect.make x y (x + w) (y + h)) in
      let i = Process_model.Exposure.of_region model r 0. 0. in
      i >= -1e-9 && i <= 1. +. 1e-9)

let prop_exposure_monotone_in_mask =
  QCheck2.Test.make ~name:"exposure: larger mask, larger exposure" ~count:200
    QCheck2.Gen.(pair (int_range 10 200) (int_range 1 100))
    (fun (w, extra) ->
      let small = Geom.Region.of_rect (Geom.Rect.make 0 0 w w) in
      let large = Geom.Region.of_rect (Geom.Rect.make 0 0 (w + extra) w) in
      Process_model.Exposure.of_region model small 10. 10.
      <= Process_model.Exposure.of_region model large 10. 10. +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Closest approach                                                    *)

let test_closest_points_disjoint () =
  let a = Geom.Rect.make 0 0 100 100 and b = Geom.Rect.make 200 300 300 400 in
  let pa, pb = Process_model.Closest.closest_points a b in
  Alcotest.(check bool) "pa corner" true (Geom.Pt.equal pa (Geom.Pt.make 100 100));
  Alcotest.(check bool) "pb corner" true (Geom.Pt.equal pb (Geom.Pt.make 200 300))

let test_closest_points_aligned () =
  let a = Geom.Rect.make 0 0 100 100 and b = Geom.Rect.make 300 0 400 100 in
  let pa, pb = Process_model.Closest.closest_points a b in
  Alcotest.(check int) "facing edges x" 100 pa.Geom.Pt.x;
  Alcotest.(check int) "facing edges x" 300 pb.Geom.Pt.x;
  Alcotest.(check int) "same y" pa.Geom.Pt.y pb.Geom.Pt.y

let test_loca_picks_nearest_pair () =
  let a = Geom.Region.of_rects [ Geom.Rect.make 0 0 100 100; Geom.Rect.make 0 500 100 600 ] in
  let b = Geom.Region.of_rect (Geom.Rect.make 150 500 250 600) in
  match Process_model.Closest.line_of_closest_approach a b with
  | Some (pa, pb) ->
    Alcotest.(check int) "distance 50" (50 * 50) (Geom.Pt.dist2 pa pb)
  | None -> Alcotest.fail "expected a line"

let test_check_bridging_threshold () =
  let bar gap =
    ( Geom.Region.of_rect (Geom.Rect.make 0 0 400 200),
      Geom.Region.of_rect (Geom.Rect.make (400 + gap) 0 (800 + gap) 200) )
  in
  let a, b = bar 50 in
  Alcotest.(check bool) "50 bridges" true
    (Process_model.Closest.check model ~misalign:0 a b).Process_model.Closest.bridges;
  let a, b = bar 300 in
  Alcotest.(check bool) "300 clear" false
    (Process_model.Closest.check model ~misalign:0 a b).Process_model.Closest.bridges

let test_check_misalignment_tightens () =
  (* A gap that is clear same-layer bridges once misalignment is
     added. *)
  let a = Geom.Region.of_rect (Geom.Rect.make 0 0 400 200) in
  let b = Geom.Region.of_rect (Geom.Rect.make 500 0 900 200) in
  Alcotest.(check bool) "aligned clear" false
    (Process_model.Closest.check model ~misalign:0 a b).Process_model.Closest.bridges;
  Alcotest.(check bool) "misaligned bridges" true
    (Process_model.Closest.check model ~misalign:60 a b).Process_model.Closest.bridges

let test_check_touching () =
  let a = Geom.Region.of_rect (Geom.Rect.make 0 0 100 100) in
  let b = Geom.Region.of_rect (Geom.Rect.make 100 0 200 100) in
  let v = Process_model.Closest.check model ~misalign:0 a b in
  Alcotest.(check bool) "touching bridges" true v.Process_model.Closest.bridges;
  Alcotest.(check int) "gap 0" 0 v.Process_model.Closest.gap2

(* ------------------------------------------------------------------ *)
(* Relational rule                                                     *)

let test_retreat_monotone () =
  let widths = [ 400; 300; 200; 150; 100 ] in
  let rs = List.map (fun w -> Process_model.Relational.retreat model ~width:w) widths in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "narrower retreats more" true (increasing rs)

let test_retreat_wide_is_small () =
  Alcotest.(check bool) "wide wire barely retreats" true
    (Process_model.Relational.retreat model ~width:500 < 2.)

let test_retreat_nonnegative () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "w=%d" w)
        true
        (Process_model.Relational.retreat model ~width:w >= 0.))
    [ 50; 100; 200; 400 ]

let test_gate_overhang_verdicts () =
  let wide =
    Process_model.Relational.check_gate_overhang model ~width:400 ~drawn:200 ~required:150
  in
  Alcotest.(check bool) "wide passes" true wide.Process_model.Relational.ok;
  let narrow =
    Process_model.Relational.check_gate_overhang model ~width:100 ~drawn:200 ~required:150
  in
  Alcotest.(check bool) "narrow fails" false narrow.Process_model.Relational.ok;
  Alcotest.(check bool) "effective < drawn" true
    (narrow.Process_model.Relational.effective < 200.)

let prop_effective_overhang_bounded =
  QCheck2.Test.make ~name:"relational: 0 <= effective <= drawn" ~count:100
    QCheck2.Gen.(pair (int_range 60 400) (int_range 50 300))
    (fun (width, drawn) ->
      let e = Process_model.Relational.effective_overhang model ~width ~drawn in
      e >= 0. && e <= float_of_int drawn +. 1e-9)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "process_model"
    [ ( "erf",
        [ Alcotest.test_case "known values" `Quick test_erf_known_values;
          Alcotest.test_case "odd" `Quick test_erf_odd;
          Alcotest.test_case "erfc" `Quick test_erfc;
          Alcotest.test_case "gauss cdf" `Quick test_gauss_cdf ] );
      qsuite "erf.props" [ prop_erf_monotone ];
      ( "exposure",
        [ Alcotest.test_case "centre saturates" `Quick test_exposure_center_saturates;
          Alcotest.test_case "edge = 1/2" `Quick test_exposure_edge_half;
          Alcotest.test_case "corner = 1/4" `Quick test_exposure_corner_quarter;
          Alcotest.test_case "far = 0" `Quick test_exposure_far_zero;
          Alcotest.test_case "additive over strips" `Quick test_exposure_additive;
          Alcotest.test_case "symmetry" `Quick test_exposure_symmetry;
          Alcotest.test_case "printed edges in place" `Quick
            test_printed_straight_edge_in_place;
          Alcotest.test_case "max along" `Quick test_max_along ] );
      qsuite "exposure.props" [ prop_exposure_bounded; prop_exposure_monotone_in_mask ];
      ( "closest",
        [ Alcotest.test_case "disjoint corners" `Quick test_closest_points_disjoint;
          Alcotest.test_case "aligned edges" `Quick test_closest_points_aligned;
          Alcotest.test_case "nearest pair" `Quick test_loca_picks_nearest_pair;
          Alcotest.test_case "bridging threshold" `Quick test_check_bridging_threshold;
          Alcotest.test_case "misalignment tightens" `Quick test_check_misalignment_tightens;
          Alcotest.test_case "touching" `Quick test_check_touching ] );
      ( "relational",
        [ Alcotest.test_case "retreat monotone" `Quick test_retreat_monotone;
          Alcotest.test_case "wide retreats little" `Quick test_retreat_wide_is_small;
          Alcotest.test_case "retreat nonnegative" `Quick test_retreat_nonnegative;
          Alcotest.test_case "gate overhang verdicts" `Quick test_gate_overhang_verdicts ] );
      qsuite "relational.props" [ prop_effective_overhang_bounded ] ]
