(* Unit and property tests for the geometry kernel. *)

open Geom

let rect = Alcotest.testable Rect.pp Rect.equal
let region = Alcotest.testable Region.pp Region.equal

(* ------------------------------------------------------------------ *)
(* Pt                                                                  *)

let test_pt_distances () =
  let a = Pt.make 0 0 and b = Pt.make 3 4 in
  Alcotest.(check int) "dist2" 25 (Pt.dist2 a b);
  Alcotest.(check int) "chebyshev" 4 (Pt.chebyshev a b);
  Alcotest.(check int) "manhattan" 7 (Pt.manhattan a b)

let test_pt_arith () =
  let a = Pt.make 2 (-3) and b = Pt.make (-1) 5 in
  Alcotest.(check bool) "add/sub roundtrip" true Pt.(equal a (sub (add a b) b));
  Alcotest.(check bool) "neg" true Pt.(equal (neg (neg a)) a)

(* ------------------------------------------------------------------ *)
(* Rect                                                                *)

let test_rect_normalise () =
  Alcotest.(check rect) "corner order" (Rect.make 0 0 4 6) (Rect.make 4 6 0 0)

let test_rect_center_wh () =
  let r = Rect.of_center_wh ~cx:10 ~cy:20 ~w:4 ~h:6 in
  Alcotest.(check rect) "centered" (Rect.make 8 17 12 23) r;
  Alcotest.(check int) "w" 4 (Rect.width r);
  Alcotest.(check int) "h" 6 (Rect.height r)

let test_rect_predicates () =
  let a = Rect.make 0 0 10 10 and b = Rect.make 10 0 20 10 and c = Rect.make 11 0 20 10 in
  Alcotest.(check bool) "abutting do not overlap" false (Rect.overlaps ~a ~b);
  Alcotest.(check bool) "abutting touch" true (Rect.touches ~a ~b);
  Alcotest.(check bool) "separated do not touch" false (Rect.touches ~a ~b:c);
  Alcotest.(check int) "chebyshev gap" 1 (Rect.chebyshev_gap a c);
  Alcotest.(check int) "euclid gap2" 1 (Rect.euclidean_gap2 a c)

let test_rect_diagonal_gaps () =
  let a = Rect.make 0 0 10 10 and b = Rect.make 13 14 20 20 in
  Alcotest.(check int) "gap_x" 3 (Rect.gap_x a b);
  Alcotest.(check int) "gap_y" 4 (Rect.gap_y a b);
  Alcotest.(check int) "chebyshev" 4 (Rect.chebyshev_gap a b);
  Alcotest.(check int) "euclid2 = 3^2+4^2" 25 (Rect.euclidean_gap2 a b)

let test_rect_inter () =
  let a = Rect.make 0 0 10 10 and b = Rect.make 5 5 15 15 in
  (match Rect.inter a b with
  | Some r -> Alcotest.(check rect) "intersection" (Rect.make 5 5 10 10) r
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint inter" true
    (Rect.inter a (Rect.make 20 20 30 30) = None)

let test_rect_inflate () =
  let a = Rect.make 0 0 10 10 in
  (match Rect.inflate a 3 with
  | Some r -> Alcotest.(check rect) "grow" (Rect.make (-3) (-3) 13 13) r
  | None -> Alcotest.fail "inflate grow");
  (match Rect.inflate a (-5) with
  | Some r -> Alcotest.(check rect) "shrink to degenerate" (Rect.make 5 5 5 5) r
  | None -> Alcotest.fail "shrink to exactly degenerate should survive");
  Alcotest.(check bool) "over-shrink dies" true (Rect.inflate a (-6) = None)

(* ------------------------------------------------------------------ *)
(* Transform                                                           *)

let test_transform_rotate () =
  let p = Pt.make 3 1 in
  Alcotest.(check bool) "north" true
    (Pt.equal (Transform.apply_pt (Transform.rotate `North) p) (Pt.make (-1) 3));
  Alcotest.(check bool) "west" true
    (Pt.equal (Transform.apply_pt (Transform.rotate `West) p) (Pt.make (-3) (-1)));
  Alcotest.(check bool) "south" true
    (Pt.equal (Transform.apply_pt (Transform.rotate `South) p) (Pt.make 1 (-3)))

let test_transform_seq_order () =
  (* CIF order: first list element applied first. *)
  let t = Transform.seq [ Transform.translate 5 0; Transform.rotate `North ] in
  (* (1,0) -> translate -> (6,0) -> rotate ccw -> (0,6) *)
  Alcotest.(check bool) "seq order" true
    (Pt.equal (Transform.apply_pt t (Pt.make 1 0)) (Pt.make 0 6))

let test_transform_rect () =
  let t = Transform.compose (Transform.translate 10 0) (Transform.rotate `North) in
  let r = Transform.apply_rect t (Rect.make 0 0 4 2) in
  Alcotest.(check rect) "rect rotates to normalised corners" (Rect.make 8 0 10 4) r

let test_transform_det () =
  Alcotest.(check int) "mirror is a reflection" (-1) (Transform.det Transform.mirror_x);
  Alcotest.(check int) "rotation preserves orientation" 1
    (Transform.det (Transform.rotate `North))

let transform_gen =
  let open QCheck2.Gen in
  let base =
    oneof
      [ return (Transform.rotate `East); return (Transform.rotate `North);
        return (Transform.rotate `West); return (Transform.rotate `South);
        return Transform.mirror_x; return Transform.mirror_y;
        map2 Transform.translate (int_range (-50) 50) (int_range (-50) 50) ]
  in
  map Transform.seq (list_size (int_range 0 5) base)

let prop_transform_inverse =
  QCheck2.Test.make ~name:"transform: inverse cancels" ~count:500
    QCheck2.Gen.(
      pair transform_gen (pair (int_range (-100) 100) (int_range (-100) 100)))
    (fun (t, (x, y)) ->
      let p = Pt.make x y in
      Pt.equal (Transform.apply_pt (Transform.inverse t) (Transform.apply_pt t p)) p)

let prop_transform_rect_pointwise =
  QCheck2.Test.make ~name:"transform: rect image contains corner images" ~count:500
    QCheck2.Gen.(pair transform_gen (quad (int_range (-50) 50) (int_range (-50) 50)
                                       (int_range 0 40) (int_range 0 40)))
    (fun (t, (x, y, w, h)) ->
      let r = Rect.make x y (x + w) (y + h) in
      let img = Transform.apply_rect t r in
      List.for_all
        (fun (px, py) -> Rect.contains img (Transform.apply_pt t (Pt.make px py)))
        [ (x, y); (x + w, y); (x, y + h); (x + w, y + h) ])

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)

let span lo hi = { Interval.lo; hi }

let test_interval_normalise () =
  let t = Interval.normalise [ span 5 7; span 0 2; span 2 4; span 6 9 ] in
  Alcotest.(check bool) "merged adjacents" true
    (Interval.equal t [ span 0 4; span 5 9 ])

let test_interval_ops () =
  let a = [ span 0 10 ] and b = [ span 3 5; span 8 12 ] in
  Alcotest.(check bool) "inter" true
    (Interval.equal (Interval.inter a b) [ span 3 5; span 8 10 ]);
  Alcotest.(check bool) "diff" true
    (Interval.equal (Interval.diff a b) [ span 0 3; span 5 8 ]);
  Alcotest.(check int) "length" 10 (Interval.length a);
  Alcotest.(check bool) "mem lo edge" true (Interval.mem 0 a);
  Alcotest.(check bool) "mem hi edge is out (half-open)" false (Interval.mem 10 a)

let test_interval_inflate () =
  let t = Interval.inflate 2 [ span 0 2; span 5 7 ] in
  Alcotest.(check bool) "inflation merges the gap" true (Interval.equal t [ span (-2) 9 ]);
  let s = Interval.inflate (-2) [ span 0 10; span 20 23 ] in
  Alcotest.(check bool) "shrink drops vanishing spans" true (Interval.equal s [ span 2 8 ])

let interval_gen =
  QCheck2.Gen.(
    map Interval.normalise
      (list_size (int_range 0 8)
         (map2 (fun lo len -> span lo (lo + len)) (int_range (-50) 50) (int_range 1 20))))

let prop_interval_diff_self =
  QCheck2.Test.make ~name:"interval: a - a = empty" ~count:500 interval_gen (fun a ->
      Interval.is_empty (Interval.diff a a))

let prop_interval_incl_excl =
  QCheck2.Test.make ~name:"interval: |a u b| = |a| + |b| - |a n b|" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      Interval.length (Interval.union a b)
      = Interval.length a + Interval.length b - Interval.length (Interval.inter a b))

let prop_interval_demorgan =
  QCheck2.Test.make ~name:"interval: a - b = a n C(b)" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let c = Interval.complement ~lo:(-200) ~hi:200 b in
      Interval.equal (Interval.diff a b) (Interval.inter a c))

(* ------------------------------------------------------------------ *)
(* Region                                                              *)

let test_region_canonical_equal () =
  (* Same point set from two different rectangle decompositions. *)
  let a = Region.of_rects [ Rect.make 0 0 10 5; Rect.make 0 5 10 10 ] in
  let b = Region.of_rects [ Rect.make 0 0 5 10; Rect.make 5 0 10 10 ] in
  Alcotest.(check region) "canonical form" a b;
  Alcotest.(check region) "single rect" (Region.of_rect (Rect.make 0 0 10 10)) a

let test_region_area () =
  let l =
    Region.of_rects [ Rect.make 0 0 10 2; Rect.make 0 0 2 10 ]
  in
  Alcotest.(check int) "L-shape area" 36 (Region.area l)

let test_region_bool_ops () =
  let a = Region.of_rect (Rect.make 0 0 10 10)
  and b = Region.of_rect (Rect.make 5 5 15 15) in
  Alcotest.(check int) "union area" 175 (Region.area (Region.union a b));
  Alcotest.(check int) "inter area" 25 (Region.area (Region.inter a b));
  Alcotest.(check int) "diff area" 75 (Region.area (Region.diff a b));
  Alcotest.(check region) "inter" (Region.of_rect (Rect.make 5 5 10 10)) (Region.inter a b)

let test_region_contains () =
  let a = Region.of_rects [ Rect.make 0 0 10 2; Rect.make 0 0 2 10 ] in
  Alcotest.(check bool) "inside arm" true (Region.contains_pt a 1 8);
  Alcotest.(check bool) "outside notch" false (Region.contains_pt a 5 5);
  Alcotest.(check bool) "covered rect" true (Region.contains_rect a (Rect.make 0 0 10 2));
  Alcotest.(check bool) "not covered" false (Region.contains_rect a (Rect.make 0 0 3 3))

let test_region_expand_shrink_orth () =
  let a = Region.of_rect (Rect.make 0 0 10 10) in
  Alcotest.(check region) "expand rect"
    (Region.of_rect (Rect.make (-3) (-3) 13 13))
    (Region.expand_orth a 3);
  Alcotest.(check region) "shrink rect"
    (Region.of_rect (Rect.make 3 3 7 7))
    (Region.shrink_orth a 3);
  Alcotest.(check region) "shrink-expand identity on a big rect" a
    (Region.expand_orth (Region.shrink_orth a 3) 3);
  Alcotest.(check bool) "over-shrink vanishes" true
    (Region.is_empty (Region.shrink_orth a 5))

let test_region_expand_merges_gap () =
  let a = Region.of_rects [ Rect.make 0 0 4 4; Rect.make 8 0 12 4 ] in
  let e = Region.expand_orth a 2 in
  Alcotest.(check int) "one component after expand" 1 (List.length (Region.components e));
  Alcotest.(check int) "two components before" 2 (List.length (Region.components a))

let test_region_shrink_kills_neck () =
  (* Two 10x10 pads joined by a 2-wide neck: shrinking by 2 removes the
     neck entirely, leaving two components. *)
  let r =
    Region.of_rects
      [ Rect.make 0 0 10 10; Rect.make 20 0 30 10; Rect.make 10 4 20 6 ]
  in
  let s = Region.shrink_orth r 2 in
  Alcotest.(check int) "neck severed" 2 (List.length (Region.components s))

let test_region_euclid_expand_cuts_corners () =
  let a = Region.of_rect (Rect.make 0 0 10 10) in
  let d = 8 in
  let orth = Region.expand_orth a d and eucl = Region.expand_euclid a d in
  Alcotest.(check bool) "euclid inside orth" true
    (Region.is_empty (Region.diff eucl orth));
  Alcotest.(check bool) "corner cell cut" false
    (Region.contains_pt eucl (-8) (-8));
  Alcotest.(check bool) "axis cell kept" true (Region.contains_pt eucl (-8) 5);
  Alcotest.(check bool) "orth keeps corner" true (Region.contains_pt orth (-8) (-8))

let test_region_components () =
  let r =
    Region.of_rects
      [ Rect.make 0 0 5 5; Rect.make 5 0 10 5; (* abut: same component *)
        Rect.make 20 20 25 25; (* far: separate *)
        Rect.make 25 25 30 30 (* corner-touch only: separate under 4-conn *) ]
  in
  Alcotest.(check int) "components" 3 (List.length (Region.components r))

let test_region_transform () =
  let r = Region.of_rects [ Rect.make 0 0 10 2; Rect.make 0 0 2 10 ] in
  let t = Transform.rotate `North in
  let r' = Region.transform t r in
  Alcotest.(check int) "area preserved" (Region.area r) (Region.area r');
  Alcotest.(check bool) "rotated arm present" true (Region.contains_pt r' (-2) 1)

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (x, y, w, h) -> Rect.make x y (x + w) (y + h))
      (quad (int_range (-40) 40) (int_range (-40) 40) (int_range 1 30) (int_range 1 30)))

let region_gen =
  QCheck2.Gen.(map Region.of_rects (list_size (int_range 0 6) rect_gen))

let prop_region_incl_excl =
  QCheck2.Test.make ~name:"region: |a u b| = |a|+|b|-|a n b|" ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) ->
      Region.area (Region.union a b)
      = Region.area a + Region.area b - Region.area (Region.inter a b))

let prop_region_diff_disjoint =
  QCheck2.Test.make ~name:"region: (a-b) n b = empty" ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) -> Region.is_empty (Region.inter (Region.diff a b) b))

let prop_region_union_idempotent =
  QCheck2.Test.make ~name:"region: a u a = a" ~count:300 region_gen (fun a ->
      Region.equal (Region.union a a) a)

let prop_region_expand_shrink_contains =
  QCheck2.Test.make ~name:"region: shrink(expand(a,d),d) contains a" ~count:200
    QCheck2.Gen.(pair region_gen (int_range 1 5))
    (fun (a, d) ->
      Region.is_empty (Region.diff a (Region.shrink_orth (Region.expand_orth a d) d)))

let prop_region_shrink_expand_subset =
  QCheck2.Test.make ~name:"region: expand(shrink(a,d),d) subset of a" ~count:200
    QCheck2.Gen.(pair region_gen (int_range 1 5))
    (fun (a, d) ->
      Region.is_empty (Region.diff (Region.expand_orth (Region.shrink_orth a d) d) a))

let prop_region_transform_compose =
  QCheck2.Test.make ~name:"region: transform composes" ~count:200
    QCheck2.Gen.(triple transform_gen transform_gen region_gen)
    (fun (t1, t2, r) ->
      Region.equal
        (Region.transform (Transform.compose t1 t2) r)
        (Region.transform t1 (Region.transform t2 r)))

let prop_region_euclid_in_orth =
  QCheck2.Test.make ~name:"region: euclid expand inside orth expand" ~count:100
    QCheck2.Gen.(pair region_gen (int_range 1 12))
    (fun (a, d) ->
      Region.is_empty (Region.diff (Region.expand_euclid a d) (Region.expand_orth a d)))

let prop_region_expand_monotone =
  QCheck2.Test.make ~name:"region: expand monotone in d" ~count:150
    QCheck2.Gen.(triple region_gen (int_range 1 6) (int_range 1 6))
    (fun (a, d1, d2) ->
      let lo = min d1 d2 and hi = max d1 d2 in
      Region.is_empty (Region.diff (Region.expand_orth a lo) (Region.expand_orth a hi)))

let prop_corners_mod4 =
  (* Every closed rectilinear boundary contributes +-4 to the convex
     minus concave corner count, so the total is always a multiple of
     four. *)
  QCheck2.Test.make ~name:"edges: convex - concave corners is 0 mod 4" ~count:300
    region_gen
    (fun r ->
      let cs = Edges.corners r in
      let convex = List.length (List.filter (fun (c : Edges.corner) -> c.Edges.convex) cs) in
      let concave = List.length cs - convex in
      (convex - concave) mod 4 = 0)

let prop_skeleton_inside =
  QCheck2.Test.make ~name:"skeleton: of_rect stays inside the rect" ~count:300
    QCheck2.Gen.(pair rect_gen (int_range 0 10))
    (fun (r, half) ->
      let s = Skeleton.of_rect ~half r in
      Rect.contains_rect r s)

(* ------------------------------------------------------------------ *)
(* Edges                                                               *)

let test_edges_rect () =
  let r = Region.of_rect (Rect.make 0 0 10 6) in
  Alcotest.(check int) "4 edges" 4 (List.length (Edges.of_region r));
  Alcotest.(check int) "perimeter" 32 (Edges.perimeter r)

let test_edges_diagonal_pinch () =
  (* Two squares meeting at a corner: the shared point carries two
     convex corners (one per quadrant), for eight in total. *)
  let r = Region.of_rects [ Rect.make 0 0 4 4; Rect.make 4 4 8 8 ] in
  let cs = Edges.corners r in
  Alcotest.(check int) "eight convex corners" 8
    (List.length (List.filter (fun (c : Edges.corner) -> c.Edges.convex) cs));
  Alcotest.(check int) "no concave corners" 0
    (List.length (List.filter (fun (c : Edges.corner) -> not c.Edges.convex) cs))

let test_edges_lshape () =
  let l = Region.of_rects [ Rect.make 0 0 10 2; Rect.make 0 0 2 10 ] in
  let cs = Edges.corners l in
  let convex = List.filter (fun (c : Edges.corner) -> c.Edges.convex) cs in
  let concave = List.filter (fun (c : Edges.corner) -> not c.Edges.convex) cs in
  Alcotest.(check int) "L-shape convex corners" 5 (List.length convex);
  Alcotest.(check int) "L-shape concave corners" 1 (List.length concave);
  Alcotest.(check int) "L-shape edges" 6 (List.length (Edges.of_region l))

let prop_edges_perimeter_even =
  QCheck2.Test.make ~name:"edges: horizontal extent = vertical extent per region"
    ~count:300 region_gen (fun r ->
      let es = Edges.of_region r in
      let len o =
        List.fold_left
          (fun acc (e : Edges.t) -> if e.Edges.orient = o then acc + Edges.length e else acc)
          0 es
      in
      (* Boundary alternates directions: total H length equals total V
         length for any rectilinear region?  Not in general -- but left
         boundary total equals right boundary total. *)
      let side o s =
        List.fold_left
          (fun acc (e : Edges.t) ->
            if e.Edges.orient = o && e.Edges.inside = s then acc + Edges.length e else acc)
          0 es
      in
      side Edges.V Edges.Hi = side Edges.V Edges.Lo
      && side Edges.H Edges.Hi = side Edges.H Edges.Lo
      && len Edges.V >= 0)

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)

let test_width_ok () =
  let r = Region.of_rect (Rect.make 0 0 10 10) in
  Alcotest.(check int) "wide rect clean" 0
    (List.length (Measure.min_width ~metric:Measure.Orthogonal ~width:5 r))

let test_width_narrow_bar () =
  let r = Region.of_rect (Rect.make 0 0 3 20) in
  let vs = Measure.min_width ~metric:Measure.Orthogonal ~width:5 r in
  Alcotest.(check bool) "narrow bar flagged" true (List.length vs >= 1);
  match vs with
  | v :: _ -> Alcotest.(check int) "measured 3" 9 v.Measure.gap2
  | [] -> Alcotest.fail "expected violation"

let test_width_neck () =
  (* Two wide pads joined by a narrow neck. *)
  let r =
    Region.of_rects
      [ Rect.make 0 0 10 10; Rect.make 20 0 30 10; Rect.make 10 4 20 6 ]
  in
  let vs = Measure.min_width ~metric:Measure.Orthogonal ~width:4 r in
  Alcotest.(check bool) "neck flagged" true
    (List.exists (fun v -> v.Measure.gap2 = 4) vs);
  let clean = Measure.min_width ~metric:Measure.Orthogonal ~width:2 r in
  Alcotest.(check int) "neck legal at 2" 0 (List.length clean)

let test_width_diagonal_neck_euclid () =
  (* Stair: two squares overlapping by a small diagonal joint.  The
     Euclidean metric sees the short diagonal through the interior. *)
  let r = Region.of_rects [ Rect.make 0 0 10 10; Rect.make 8 8 18 18 ] in
  let vs_e = Measure.min_width ~metric:Measure.Euclidean ~width:5 r in
  Alcotest.(check bool) "euclid catches diagonal neck" true
    (List.exists (fun v -> v.Measure.kind = Measure.Width && v.Measure.gap2 = 8) vs_e);
  let vs_o = Measure.min_width ~metric:Measure.Orthogonal ~width:5 r in
  Alcotest.(check bool) "orthogonal straight-edge scan misses it" false
    (List.exists (fun v -> v.Measure.gap2 = 8) vs_o)

let test_notch () =
  (* A U shape whose slot is 3 wide. *)
  let r =
    Region.of_rects
      [ Rect.make 0 0 13 4; Rect.make 0 4 5 14; Rect.make 8 4 13 14 ]
  in
  let vs = Measure.notch ~metric:Measure.Orthogonal ~space:5 r in
  Alcotest.(check bool) "slot flagged" true
    (List.exists (fun v -> v.Measure.gap2 = 9) vs);
  Alcotest.(check int) "slot legal at 3" 0
    (List.length (Measure.notch ~metric:Measure.Orthogonal ~space:3 r))

let test_spacing_pair () =
  let a = Region.of_rect (Rect.make 0 0 10 10)
  and b = Region.of_rect (Rect.make 14 0 24 10) in
  let vs = Measure.spacing ~metric:Measure.Orthogonal ~space:6 a b in
  Alcotest.(check int) "one close pair" 1 (List.length vs);
  Alcotest.(check int) "gap 4" 16 (List.hd vs).Measure.gap2;
  Alcotest.(check int) "legal at 4" 0
    (List.length (Measure.spacing ~metric:Measure.Orthogonal ~space:4 a b))

let test_spacing_corner_metric_divergence () =
  (* Diagonal corner-to-corner: Chebyshev gap 3, Euclidean gap 3*sqrt2.
     An orthogonal rule of 4 flags it; a Euclidean rule of 4 does not. *)
  let a = Region.of_rect (Rect.make 0 0 10 10)
  and b = Region.of_rect (Rect.make 13 13 20 20) in
  Alcotest.(check int) "orthogonal flags corner" 1
    (List.length (Measure.spacing ~metric:Measure.Orthogonal ~space:4 a b));
  Alcotest.(check int) "euclidean passes corner" 0
    (List.length (Measure.spacing ~metric:Measure.Euclidean ~space:4 a b))

let test_notch_euclid_corner () =
  (* Two arms of one region approaching corner-to-corner: the exterior
     diagonal is a Euclidean notch the straight-edge scan cannot see. *)
  let r = Region.of_rects [ Rect.make 0 0 10 10; Rect.make 12 12 22 22 ] in
  let vs_e = Measure.notch ~metric:Measure.Euclidean ~space:5 r in
  Alcotest.(check bool) "euclid notch flagged" true
    (List.exists (fun v -> v.Measure.kind = Measure.Notch && v.Measure.gap2 = 8) vs_e);
  let vs_o = Measure.notch ~metric:Measure.Orthogonal ~space:5 r in
  Alcotest.(check bool) "orthogonal scan blind to the diagonal" false
    (List.exists (fun v -> v.Measure.gap2 = 8) vs_o)

let test_separation2 () =
  let a = Region.of_rect (Rect.make 0 0 10 10)
  and b = Region.of_rect (Rect.make 13 14 20 20) in
  Alcotest.(check (option int)) "euclid" (Some 25)
    (Measure.separation2 ~metric:Measure.Euclidean a b);
  Alcotest.(check (option int)) "orth" (Some 16)
    (Measure.separation2 ~metric:Measure.Orthogonal a b);
  Alcotest.(check (option int)) "empty" None
    (Measure.separation2 ~metric:Measure.Orthogonal a Region.empty)

let prop_width_scale =
  (* A w-wide bar violates any width rule > w and passes any <= w. *)
  QCheck2.Test.make ~name:"measure: bar width threshold" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 25))
    (fun (w, rule) ->
      let r = Region.of_rect (Rect.make 0 0 w 100) in
      let vs = Measure.min_width ~metric:Measure.Orthogonal ~width:rule r in
      if rule > w then vs <> [] else vs = [])

let prop_spacing_symmetric =
  QCheck2.Test.make ~name:"measure: separation symmetric" ~count:200
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) ->
      Measure.separation2 ~metric:Measure.Euclidean a b
      = Measure.separation2 ~metric:Measure.Euclidean b a)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let test_wire_straight () =
  let w = Wire.make ~width:4 [ Pt.make 0 0; Pt.make 10 0 ] in
  Alcotest.(check int) "one segment rect" 1 (List.length (Wire.to_rects w));
  Alcotest.(check rect) "swept extent" (Rect.make (-2) (-2) 12 2)
    (List.hd (Wire.to_rects w))

let test_wire_bend_area () =
  let w = Wire.make ~width:4 [ Pt.make 0 0; Pt.make 10 0; Pt.make 10 10 ] in
  (* Two 14x4 segments overlapping in a 4x4 elbow. *)
  Alcotest.(check int) "elbow area" (56 + 56 - 16) (Region.area (Wire.to_region w))

let test_wire_diagonal_rejected () =
  Alcotest.check_raises "diagonal wire"
    (Invalid_argument "Wire.make: diagonal wire segments are not allowed") (fun () ->
      ignore (Wire.make ~width:4 [ Pt.make 0 0; Pt.make 5 5 ]))

let test_wire_skeleton () =
  let w = Wire.make ~width:4 [ Pt.make 0 0; Pt.make 10 0 ] in
  (match Wire.skeleton ~half:2 w with
  | [ r ] ->
    Alcotest.(check bool) "min-width wire skeleton is its centreline" true
      (Rect.is_degenerate r);
    Alcotest.(check rect) "centreline extent" (Rect.make 0 0 10 0) r
  | _ -> Alcotest.fail "expected one skeleton rect");
  let w6 = Wire.make ~width:6 [ Pt.make 0 0; Pt.make 10 0 ] in
  match Wire.skeleton ~half:2 w6 with
  | [ r ] -> Alcotest.(check rect) "2-wide skeleton" (Rect.make (-1) (-1) 11 1) r
  | _ -> Alcotest.fail "expected one skeleton rect"

(* ------------------------------------------------------------------ *)
(* Poly                                                                *)

let test_poly_area () =
  let p = Poly.make [ Pt.make 0 0; Pt.make 10 0; Pt.make 10 10; Pt.make 0 10 ] in
  Alcotest.(check int) "square area" 100 (Poly.area p);
  Alcotest.(check bool) "rectilinear" true (Poly.is_rectilinear p)

let test_poly_lshape_region () =
  let p =
    Poly.make
      [ Pt.make 0 0; Pt.make 10 0; Pt.make 10 2; Pt.make 2 2; Pt.make 2 10; Pt.make 0 10 ]
  in
  match Poly.to_region p with
  | Some r ->
    Alcotest.(check region) "L region"
      (Region.of_rects [ Rect.make 0 0 10 2; Rect.make 0 0 2 10 ])
      r;
    Alcotest.(check int) "areas agree" (Poly.area p) (Region.area r)
  | None -> Alcotest.fail "rectilinear polygon must convert"

let test_poly_diagonal () =
  let p = Poly.make [ Pt.make 0 0; Pt.make 10 0; Pt.make 5 8 ] in
  Alcotest.(check bool) "triangle is not rectilinear" false (Poly.is_rectilinear p);
  Alcotest.(check bool) "no region" true (Poly.to_region p = None);
  Alcotest.(check int) "triangle area" 40 (Poly.area p)

(* ------------------------------------------------------------------ *)
(* Skeleton (paper Fig 11)                                             *)

let test_skeleton_of_rect () =
  Alcotest.(check rect) "wide rect shrinks" (Rect.make 2 2 8 8)
    (Skeleton.of_rect ~half:2 (Rect.make 0 0 10 10));
  let s = Skeleton.of_rect ~half:2 (Rect.make 0 0 4 10) in
  Alcotest.(check rect) "min-width rect collapses to line" (Rect.make 2 2 2 8) s

let test_skeletal_connectivity_fig11 () =
  let half = 2 in
  (* Substantially overlapping boxes: skeletons overlap => connected. *)
  let a = Skeleton.of_rect ~half (Rect.make 0 0 10 10)
  and b = Skeleton.of_rect ~half (Rect.make 5 0 15 10) in
  Alcotest.(check bool) "overlap connected" true (Skeleton.connected [ a ] [ b ]);
  (* Corner-nick overlap: geometry overlaps but skeletons do not touch
     => NOT a legal connection (paper Fig 11 right). *)
  let c = Skeleton.of_rect ~half (Rect.make 9 9 19 19) in
  Alcotest.(check bool) "corner nick not connected" false (Skeleton.connected [ a ] [ c ]);
  (* End-to-end abutment of two minimum-width bars: skeletons stop half
     a width short of each end, so mere abutment is NOT a legal
     connection -- this is exactly the Fig 15 butting error.  Overlap
     of at least the minimum width is required. *)
  let d = Skeleton.of_rect ~half (Rect.make 0 0 4 10)
  and e = Skeleton.of_rect ~half (Rect.make 0 10 4 20) in
  Alcotest.(check bool) "abutting min-width bars do not connect" false
    (Skeleton.connected [ d ] [ e ]);
  let f = Skeleton.of_rect ~half (Rect.make 0 6 4 20) in
  Alcotest.(check bool) "min-width overlap connects" true
    (Skeleton.connected [ d ] [ f ]);
  (* Wires keep their full centreline (round-pen semantics), so wires
     that share an endpoint do connect. *)
  let w1 = Wire.skeleton ~half (Wire.make ~width:4 [ Pt.make 0 0; Pt.make 10 0 ])
  and w2 = Wire.skeleton ~half (Wire.make ~width:4 [ Pt.make 10 0; Pt.make 10 10 ]) in
  Alcotest.(check bool) "wires sharing an endpoint connect" true
    (Skeleton.connected w1 w2)

let test_skeleton_union_width_theorem () =
  (* If two legal-width elements are skeletally connected, the union is
     of legal width (the paper's key claim).  Spot-check a bend. *)
  let min_w = 4 and half = 2 in
  let a = Rect.make 0 0 4 12 and b = Rect.make 0 8 12 12 in
  Alcotest.(check bool) "connected" true
    (Skeleton.connected [ Skeleton.of_rect ~half a ] [ Skeleton.of_rect ~half b ]);
  let u = Region.of_rects [ a; b ] in
  Alcotest.(check int) "union legal" 0
    (List.length (Measure.min_width ~metric:Measure.Orthogonal ~width:min_w u))

(* ------------------------------------------------------------------ *)
(* Grid index                                                          *)

let test_grid_index_query () =
  let idx = Grid_index.create ~cell:10 () in
  Grid_index.add idx (Rect.make 0 0 5 5) "a";
  Grid_index.add idx (Rect.make 100 100 105 105) "b";
  Grid_index.add idx (Rect.make 4 4 8 8) "c";
  let hits = Grid_index.query idx (Rect.make 0 0 6 6) in
  Alcotest.(check (list string)) "window hits" [ "a"; "c" ] (List.map snd hits);
  Alcotest.(check int) "far item not hit" 1
    (List.length (Grid_index.query idx (Rect.make 99 99 101 101)))

let test_grid_index_pairs () =
  let idx = Grid_index.create ~cell:10 () in
  Grid_index.add idx (Rect.make 0 0 5 5) 1;
  Grid_index.add idx (Rect.make 8 0 12 5) 2;
  Grid_index.add idx (Rect.make 100 0 105 5) 3;
  let ps = Grid_index.pairs_within idx 4 in
  Alcotest.(check int) "one close pair" 1 (List.length ps);
  let (_, a), (_, b) = List.hd ps in
  Alcotest.(check bool) "the right pair" true (a + b = 3)

let prop_grid_index_complete =
  QCheck2.Test.make ~name:"grid index: pairs_within matches brute force" ~count:100
    QCheck2.Gen.(list_size (int_range 0 12) rect_gen)
    (fun rs ->
      let idx = Grid_index.create ~cell:16 () in
      List.iteri (fun i r -> Grid_index.add idx r i) rs;
      let d = 6 in
      let got = List.length (Grid_index.pairs_within idx d) in
      let arr = Array.of_list rs in
      let want = ref 0 in
      Array.iteri
        (fun i a ->
          Array.iteri (fun j b -> if i < j && Rect.chebyshev_gap a b <= d then incr want) arr)
        arr;
      got = !want)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "geom"
    [ ( "pt",
        [ Alcotest.test_case "distances" `Quick test_pt_distances;
          Alcotest.test_case "arith" `Quick test_pt_arith ] );
      ( "rect",
        [ Alcotest.test_case "normalise" `Quick test_rect_normalise;
          Alcotest.test_case "of_center_wh" `Quick test_rect_center_wh;
          Alcotest.test_case "predicates" `Quick test_rect_predicates;
          Alcotest.test_case "diagonal gaps" `Quick test_rect_diagonal_gaps;
          Alcotest.test_case "inter" `Quick test_rect_inter;
          Alcotest.test_case "inflate" `Quick test_rect_inflate ] );
      ( "transform",
        [ Alcotest.test_case "rotate" `Quick test_transform_rotate;
          Alcotest.test_case "seq order" `Quick test_transform_seq_order;
          Alcotest.test_case "rect image" `Quick test_transform_rect;
          Alcotest.test_case "determinant" `Quick test_transform_det ] );
      qsuite "transform.props" [ prop_transform_inverse; prop_transform_rect_pointwise ];
      ( "interval",
        [ Alcotest.test_case "normalise" `Quick test_interval_normalise;
          Alcotest.test_case "ops" `Quick test_interval_ops;
          Alcotest.test_case "inflate" `Quick test_interval_inflate ] );
      qsuite "interval.props"
        [ prop_interval_diff_self; prop_interval_incl_excl; prop_interval_demorgan ];
      ( "region",
        [ Alcotest.test_case "canonical equality" `Quick test_region_canonical_equal;
          Alcotest.test_case "area" `Quick test_region_area;
          Alcotest.test_case "boolean ops" `Quick test_region_bool_ops;
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "expand/shrink orth" `Quick test_region_expand_shrink_orth;
          Alcotest.test_case "expand merges gap" `Quick test_region_expand_merges_gap;
          Alcotest.test_case "shrink kills neck" `Quick test_region_shrink_kills_neck;
          Alcotest.test_case "euclid expand corners" `Quick
            test_region_euclid_expand_cuts_corners;
          Alcotest.test_case "components" `Quick test_region_components;
          Alcotest.test_case "transform" `Quick test_region_transform ] );
      qsuite "region.props"
        [ prop_region_incl_excl; prop_region_diff_disjoint; prop_region_union_idempotent;
          prop_region_expand_shrink_contains; prop_region_shrink_expand_subset;
          prop_region_transform_compose; prop_region_euclid_in_orth;
          prop_region_expand_monotone; prop_corners_mod4; prop_skeleton_inside ];
      ( "edges",
        [ Alcotest.test_case "rect" `Quick test_edges_rect;
          Alcotest.test_case "diagonal pinch" `Quick test_edges_diagonal_pinch;
          Alcotest.test_case "L-shape" `Quick test_edges_lshape ] );
      qsuite "edges.props" [ prop_edges_perimeter_even ];
      ( "measure",
        [ Alcotest.test_case "wide ok" `Quick test_width_ok;
          Alcotest.test_case "narrow bar" `Quick test_width_narrow_bar;
          Alcotest.test_case "neck" `Quick test_width_neck;
          Alcotest.test_case "diagonal neck (euclid)" `Quick test_width_diagonal_neck_euclid;
          Alcotest.test_case "notch" `Quick test_notch;
          Alcotest.test_case "spacing pair" `Quick test_spacing_pair;
          Alcotest.test_case "corner metric divergence" `Quick
            test_spacing_corner_metric_divergence;
          Alcotest.test_case "euclid corner notch" `Quick test_notch_euclid_corner;
          Alcotest.test_case "separation2" `Quick test_separation2 ] );
      qsuite "measure.props" [ prop_width_scale; prop_spacing_symmetric ];
      ( "wire",
        [ Alcotest.test_case "straight" `Quick test_wire_straight;
          Alcotest.test_case "bend area" `Quick test_wire_bend_area;
          Alcotest.test_case "diagonal rejected" `Quick test_wire_diagonal_rejected;
          Alcotest.test_case "skeleton" `Quick test_wire_skeleton ] );
      ( "poly",
        [ Alcotest.test_case "area" `Quick test_poly_area;
          Alcotest.test_case "L-shape region" `Quick test_poly_lshape_region;
          Alcotest.test_case "diagonal" `Quick test_poly_diagonal ] );
      ( "skeleton",
        [ Alcotest.test_case "of_rect" `Quick test_skeleton_of_rect;
          Alcotest.test_case "fig11 connectivity" `Quick test_skeletal_connectivity_fig11;
          Alcotest.test_case "union width theorem" `Quick test_skeleton_union_width_theorem ] );
      ( "grid_index",
        [ Alcotest.test_case "query" `Quick test_grid_index_query;
          Alcotest.test_case "pairs" `Quick test_grid_index_pairs ] );
      qsuite "grid_index.props" [ prop_grid_index_complete ] ]
