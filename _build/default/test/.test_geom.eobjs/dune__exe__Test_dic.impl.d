test/test_dic.ml: Alcotest Astring_contains Cif Dic Geom Hashtbl Layoutgen List Netlist Printf Process_model QCheck2 QCheck_alcotest Stdlib String Tech
