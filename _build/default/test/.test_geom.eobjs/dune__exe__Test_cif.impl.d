test/test_cif.ml: Alcotest Astring_contains Cif Geom Layoutgen List QCheck2 QCheck_alcotest String
