test/test_tech.ml: Alcotest Astring_contains Int Interaction Layer List Tech
