test/test_dic.mli:
