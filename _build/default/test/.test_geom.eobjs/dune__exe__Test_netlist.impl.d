test/test_netlist.ml: Alcotest Array List Netlist QCheck2 QCheck_alcotest Stdlib Tech
