test/test_flatdrc.ml: Alcotest Cif Dic Flatdrc Geom Layoutgen List Printf Tech
