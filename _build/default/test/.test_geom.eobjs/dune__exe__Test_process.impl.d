test/test_process.ml: Alcotest Float Geom List Printf Process_model QCheck2 QCheck_alcotest
