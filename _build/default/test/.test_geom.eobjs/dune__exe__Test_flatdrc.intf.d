test/test_flatdrc.mli:
