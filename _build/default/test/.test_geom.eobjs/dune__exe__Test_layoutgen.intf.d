test/test_layoutgen.mli:
