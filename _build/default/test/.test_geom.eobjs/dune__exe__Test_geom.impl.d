test/test_geom.ml: Alcotest Array Edges Geom Grid_index Interval List Measure Poly Pt QCheck2 QCheck_alcotest Rect Region Skeleton Transform Wire
