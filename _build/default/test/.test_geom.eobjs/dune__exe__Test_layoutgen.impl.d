test/test_layoutgen.ml: Alcotest Array Cif Dic Flatdrc Geom Int Layoutgen List Netlist Printf String Tech
