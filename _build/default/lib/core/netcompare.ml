type terminal_spec = { device : string; port : string }

type net_spec = {
  nname : string;
  terminals : terminal_spec list;
  closed : bool;
}

type expected = { nets : net_spec list }

type mismatch =
  | Missing_net of string
  | Missing_terminal of { net : string; spec : terminal_spec }
  | Misplaced_terminal of {
      expected_net : string;
      actual_net : string;
      spec : terminal_spec;
    }
  | Extra_terminal of { net : string; device : string; port : string }

let pp_mismatch ppf = function
  | Missing_net n -> Format.fprintf ppf "expected net %s not found in the layout" n
  | Missing_terminal { net; spec } ->
    Format.fprintf ppf "terminal %s.%s expected on net %s is nowhere in the layout"
      spec.device spec.port net
  | Misplaced_terminal { expected_net; actual_net; spec } ->
    Format.fprintf ppf "terminal %s.%s expected on net %s but found on %s" spec.device
      spec.port expected_net actual_net
  | Extra_terminal { net; device; port } ->
    Format.fprintf ppf "unexpected terminal %s.%s on net %s" device port net

let parse src =
  let lines = String.split_on_char '\n' src in
  let current = ref None in
  let nets = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then begin
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let close () =
          match !current with
          | Some (n, ts, closed) ->
            nets := { nname = n; terminals = List.rev ts; closed } :: !nets
          | None -> ()
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> ()
        | [ "net"; name ] ->
          close ();
          current := Some (name, [], false)
        | [ "net"; name; "exact" ] ->
          close ();
          current := Some (name, [], true)
        | [ device; port ] -> (
          match !current with
          | Some (n, ts, closed) -> current := Some (n, { device; port } :: ts, closed)
          | None -> err := Some (Printf.sprintf "line %d: terminal before any net" (i + 1)))
        | _ -> err := Some (Printf.sprintf "line %d: expected 'net NAME [exact]' or 'DEVICE PORT'" (i + 1))
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
    (match !current with
    | Some (n, ts, closed) ->
      nets := { nname = n; terminals = List.rev ts; closed } :: !nets
    | None -> ());
    Ok { nets = List.rev !nets }

(* Terminals of functional devices only: contacts are wiring and would
   make every expected list tediously long. *)
let significant (t : Netlist.Net.terminal) =
  match t.Netlist.Net.device with
  | Tech.Device.Enhancement | Tech.Device.Depletion | Tech.Device.Resistor
  | Tech.Device.Pad ->
    true
  | Tech.Device.Contact_cut | Tech.Device.Butting_contact | Tech.Device.Buried_contact
  | Tech.Device.Checked ->
    false

let compare expected (actual : Netlist.Net.t) =
  (* Index every significant terminal in the layout by (device, port). *)
  let location = Hashtbl.create 64 in
  List.iter
    (fun (n : Netlist.Net.net) ->
      List.iter
        (fun (t : Netlist.Net.terminal) ->
          if significant t then
            Hashtbl.replace location (t.Netlist.Net.device_path, t.Netlist.Net.port)
              (Netlist.Net.display_name n))
        n.Netlist.Net.terminals)
    actual.Netlist.Net.nets;
  let net_names (n : Netlist.Net.net) =
    Netlist.Net.display_name n :: n.Netlist.Net.names
  in
  List.concat_map
    (fun { nname = name; terminals = specs; closed } ->
      match
        List.find_opt (fun n -> List.mem name (net_names n)) actual.Netlist.Net.nets
      with
      | None -> [ Missing_net name ]
      | Some net ->
        let actual_name = Netlist.Net.display_name net in
        let missing_or_misplaced =
          List.filter_map
            (fun spec ->
              match Hashtbl.find_opt location (spec.device, spec.port) with
              | None -> Some (Missing_terminal { net = name; spec })
              | Some where when where <> actual_name ->
                Some (Misplaced_terminal { expected_net = name; actual_net = where; spec })
              | Some _ -> None)
            specs
        in
        let extras =
          if not closed then []
          else
            List.filter_map
              (fun (t : Netlist.Net.terminal) ->
                if
                  significant t
                  && not
                       (List.exists
                          (fun s ->
                            s.device = t.Netlist.Net.device_path
                            && s.port = t.Netlist.Net.port)
                          specs)
                then
                  Some
                    (Extra_terminal
                       { net = name;
                         device = t.Netlist.Net.device_path;
                         port = t.Netlist.Net.port })
                else None)
              net.Netlist.Net.terminals
        in
        missing_or_misplaced @ extras)
    expected.nets

let check expected actual =
  List.map
    (fun m ->
      let rule =
        match m with
        | Missing_net _ -> "netcmp.missing-net"
        | Missing_terminal _ -> "netcmp.missing-terminal"
        | Misplaced_terminal _ -> "netcmp.misplaced-terminal"
        | Extra_terminal _ -> "netcmp.extra-terminal"
      in
      Report.error ~stage:Report.Netlist_gen ~rule ~context:"netlist"
        (Format.asprintf "%a" pp_mismatch m))
    (compare expected actual)
