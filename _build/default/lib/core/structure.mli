(** Design-structure statistics.

    The paper's first driving force is "to develop a methodology to
    manage the complexity of designs".  This report quantifies how well
    a design exploits hierarchy: definition vs instantiated sizes,
    instance counts per symbol, device census, hierarchy depth, and the
    locality of its nets — the numbers behind the structured-design
    usage rules. *)

type symbol_stats = {
  ss_name : string;
  ss_device : Tech.Device.kind option;
  ss_elements : int;
  ss_calls : int;
  ss_instances : int;  (** times instantiated in the whole design *)
}

type t = {
  symbols : symbol_stats list;  (** excluding the root, callees first *)
  depth : int;
  definition_elements : int;
  instantiated_elements : int;
  leverage : float;  (** instantiated / definition elements *)
  device_census : (Tech.Device.kind * int) list;  (** instances per kind *)
  nets_total : int;
  nets_local : int;
  nets_crossing : int;
}

val compute : Netgen.t -> t
val pp : Format.formatter -> t -> unit
