(** Pipeline stage 3 — "check primitive symbols".

    "Any element which is part of a primitive symbol is treated in the
    box labelled 'check primitive symbols'.  These checks are the most
    complicated checks required.  These may include enclosure rules,
    overlap rules, even overlap of overlap rules (buried contact)."

    Each device kind gets its template check; the [Checked] kind waives
    everything — "a technique for flagging specific devices as checked
    to eliminate large numbers of false errors".  This stage also
    catches the paper's device-dependent cases: contact over an active
    gate is an error while a butting contact is legal (Fig 7), and a
    transistor whose poly does not actually cross the diffusion has no
    gate (the unchecked error of Fig 8's discussion). *)

val check_symbol : Tech.Rules.t -> Model.symbol -> Report.violation list

(** Check every device definition once. *)
val check : Model.t -> Report.violation list

(** The relational form of the gate-overhang rule (paper Fig 14): the
    drawn poly overhang is discounted by the end-cap retreat predicted
    by the exposure model for the transistor's actual poly width, and
    the *effective* overhang must still meet [required] (default 3/4 of
    the drawn-rule overhang).  Narrow-poly transistors that satisfy the
    fixed rule can fail here. *)
val check_relational :
  ?required:int -> Process_model.Exposure.t -> Tech.Rules.t -> Model.symbol ->
  Report.violation list

(** Run the relational check on every transistor definition. *)
val check_relational_all :
  ?required:int -> Process_model.Exposure.t -> Model.t -> Report.violation list

(** {1 Terminals}

    The electrical interface of a device, used by net-list generation.
    Each port is a separate electrical node; [tied] ports short
    together (contacts tie their layers; a transistor's source and
    drain stay separate — "the gate or implant of a transistor cannot
    be assigned to a net"). *)

type port = {
  pname : string;  (** "gate", "sd0", "via", "r0", ... *)
  players : (Tech.Layer.t * Geom.Rect.t list) list;
      (** connection skeletons per layer, in symbol coordinates *)
  plabels : string list;  (** explicit net labels carried by the port *)
}

type iface = {
  ports : port list;
  tied : (string * string) list;  (** pairs of port names shorted inside *)
}

(** Interface of a device symbol.  Non-device symbols have no
    interface. *)
val interface : Tech.Rules.t -> Model.symbol -> iface option
