(** Net-list consistency checking.

    "With this hierarchical net list available, it is now possible to
    check electrical construction rules or to check the net list
    against an input net list for consistency."  This module implements
    the second half: the designer supplies the intended connectivity
    (which devices' which ports sit on which named nets) and the
    checker verifies the extracted net list agrees — catching layouts
    that meet every geometric rule yet implement the wrong circuit.

    The expected net list uses a small text format, one terminal per
    line:

    {v
    # comment
    net <name>            -- start a net (partial: extra terminals ok)
    net <name> exact      -- start a net; unlisted terminals are errors
    <device-path> <port>  -- a terminal expected on the current net
    v}

    Device paths use the checker's dot notation ([0:inv.1:dep]). *)

type terminal_spec = { device : string; port : string }

type net_spec = {
  nname : string;
  terminals : terminal_spec list;
  closed : bool;  (** flag unlisted functional terminals on this net *)
}

type expected = { nets : net_spec list }

type mismatch =
  | Missing_net of string
      (** the expected net name does not appear in the layout *)
  | Missing_terminal of { net : string; spec : terminal_spec }
      (** the terminal is on no net at all *)
  | Misplaced_terminal of {
      expected_net : string;
      actual_net : string;
      spec : terminal_spec;
    }  (** the terminal exists but sits on a different net *)
  | Extra_terminal of { net : string; device : string; port : string }
      (** a functional-device terminal on a specified net that the
          expected list does not mention *)

val pp_mismatch : Format.formatter -> mismatch -> unit

(** Parse the expected-net-list text format. *)
val parse : string -> (expected, string) result

(** [compare expected actual] — nets not named in [expected] are
    unconstrained. *)
val compare : expected -> Netlist.Net.t -> mismatch list

(** As report violations (stage [Netlist_gen], rules [netcmp.*]). *)
val check : expected -> Netlist.Net.t -> Report.violation list
