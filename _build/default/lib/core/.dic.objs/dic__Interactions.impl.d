lib/core/interactions.ml: Array Format Geom Hashtbl List Model Netgen Option Printf Process_model Report Tech
