lib/core/incremental.mli: Checker Cif Model Tech
