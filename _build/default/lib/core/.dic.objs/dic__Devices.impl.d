lib/core/devices.ml: Format Geom List Model Printf Process_model Report String Tech
