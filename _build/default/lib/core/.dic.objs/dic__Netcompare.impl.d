lib/core/netcompare.ml: Format Hashtbl List Netlist Printf Report String Tech
