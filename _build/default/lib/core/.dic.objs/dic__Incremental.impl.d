lib/core/incremental.ml: Checker Devices Digest Element_checks Geom Hashtbl Interactions List Marshal Model Netcompare Netgen Option Printf Report String Tech
