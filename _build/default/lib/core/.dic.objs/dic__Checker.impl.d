lib/core/checker.ml: Cif Devices Element_checks Format Interactions List Model Netcompare Netgen Netlist Printf Process_model Report Sys
