lib/core/structure.ml: Format Hashtbl List Model Netgen Tech
