lib/core/element_checks.mli: Model Report Tech
