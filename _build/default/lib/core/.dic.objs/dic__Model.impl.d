lib/core/model.ml: Cif Geom Hashtbl List Option Printf Report Tech
