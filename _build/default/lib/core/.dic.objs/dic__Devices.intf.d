lib/core/devices.mli: Geom Model Process_model Report Tech
