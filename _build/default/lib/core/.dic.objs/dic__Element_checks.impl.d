lib/core/element_checks.ml: Geom List Model Printf Report Tech
