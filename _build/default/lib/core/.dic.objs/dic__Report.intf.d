lib/core/report.mli: Format Geom
