lib/core/interactions.mli: Format Geom Hashtbl Netgen Process_model Report Tech
