lib/core/structure.mli: Format Netgen Tech
