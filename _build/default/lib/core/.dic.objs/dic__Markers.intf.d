lib/core/markers.mli: Cif Geom Report
