lib/core/netcompare.mli: Format Netlist Report
