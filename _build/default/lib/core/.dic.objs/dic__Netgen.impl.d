lib/core/netgen.ml: Array Devices Geom Hashtbl List Model Netlist Option Printf Report Stdlib String Tech
