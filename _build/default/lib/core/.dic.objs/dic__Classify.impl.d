lib/core/classify.ml: Either Flatdrc Format Geom List Report String
