lib/core/netgen.mli: Geom Hashtbl Model Netlist Report Tech
