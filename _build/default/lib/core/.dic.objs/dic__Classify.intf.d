lib/core/classify.mli: Flatdrc Format Geom Report
