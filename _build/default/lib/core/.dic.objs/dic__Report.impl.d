lib/core/report.ml: Format Geom List String
