lib/core/checker.mli: Cif Format Interactions Model Netcompare Netgen Netlist Process_model Report Stdlib Tech
