lib/core/markers.ml: Cif Geom List Option Report
