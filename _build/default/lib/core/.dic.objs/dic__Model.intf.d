lib/core/model.mli: Cif Geom Report Tech
