(** Pipeline stages 4 and 5 — "check legal connections" and "generate
    hierarchical net list".

    Connectivity is *skeletal* (paper Fig 11): same-layer elements are
    legally connected iff their skeletons touch; cross-layer connection
    happens only through contact devices (their ports tie layers).
    Each symbol definition's internal connectivity is computed exactly
    once; instances compose their callee's exported net groups, so the
    cost is per-definition plus per-instance composition — never full
    instantiation.

    Net names use the paper's dot notation: a net labelled [out] inside
    instance [1:inv] of the root appears as [1:inv.out]; CIF global
    labels (trailing [!]) merge by name at every level. *)

type group = {
  gid : int;
  skels : (Tech.Layer.t * Geom.Rect.t list) list;
      (** connection surface, in the owning symbol's coordinates *)
  labels : string list;  (** explicit labels, local ones dot-qualified *)
  terminals : Netlist.Net.terminal list;
  element_count : int;
  crossing : bool;  (** does the net cross a symbol boundary? *)
}

type sym_nets = {
  groups : group array;
  elt_group : int option array;  (** eid -> gid (None: no net, e.g. implant) *)
  sub_group : (int * int, int) Hashtbl.t;  (** (call idx, child gid) -> gid *)
}

type t = {
  model : Model.t;
  by_symbol : (int, sym_nets) Hashtbl.t;
}

(** Build the hierarchical net list; also reports illegal connections:
    same-layer geometry that touches without being skeletally connected
    (the paper's legal-connection criterion; catches Fig 15 butting). *)
val build : Model.t -> t * Report.violation list

val nets_of : t -> int -> sym_nets

(** Net group of an element seen from a symbol: [resolve t sid ~path
    ~eid] follows instance indices [path] (outermost first) from symbol
    [sid] down to the element.  [None] when the element carries no net
    (transistor implant etc.). *)
val resolve : t -> int -> path:int list -> eid:int -> int option

(** The whole-design net list (the root symbol's groups). *)
val netlist : t -> Netlist.Net.t

(** Nets fully contained in one symbol definition vs nets that cross
    symbol boundaries — the paper's locality principle, as a statistic:
    [(local, crossing)] counted over the root. *)
val locality : t -> int * int
