(** The Design Integrity and Immunity Checker — the paper's Fig 10
    pipeline as one driver:

    {v
    PARSE CIF
      -> CHECK ELEMENTS
      -> CHECK PRIMITIVE SYMBOLS
      -> CHECK LEGAL CONNECTIONS
      -> GENERATE HIERARCHICAL NET LIST
      -> CHECK INTERACTIONS
      (+ non-geometric construction rules over the net list)
    v} *)

type config = {
  interactions : Interactions.config;
  run_erc : bool;  (** run the non-geometric construction rules *)
  expected_netlist : Netcompare.expected option;
      (** verify the extracted net list against an intended one *)
  relational : Process_model.Exposure.t option;
      (** also run the relational gate-overhang check against this
          exposure model (paper Fig 14) *)
}

val default_config : config

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;  (** per pipeline stage, CPU time *)
  model : Model.t;
  nets : Netgen.t;
}

(** Run on an already-parsed file. *)
val run : ?config:config -> Tech.Rules.t -> Cif.Ast.file -> (result, string) Stdlib.result

(** Parse CIF text and run. *)
val run_string : ?config:config -> Tech.Rules.t -> string -> (result, string) Stdlib.result

(** One-line summary: error/warning counts by stage. *)
val pp_summary : Format.formatter -> result -> unit

(** The non-geometric construction rules as report violations (shared
    with {!Incremental}). *)
val erc_violations : Netlist.Net.t -> Report.violation list
