(** Violation markers as CIF.

    The classic DRC flow returns errors to the designer as geometry on
    an error layer that the layout editor overlays on the artwork.
    [to_cif] emits one marker box per located violation on layer [XE],
    with the rule id attached as a net annotation so editors (and our
    own parser) can carry it around. *)

(** Marker layer name. *)
val layer : string

(** [to_file report] — violations without a location are skipped;
    marker boxes are inflated by [margin] (default 50) so zero-area
    violation sites stay visible. *)
val to_file : ?margin:int -> Report.t -> Cif.Ast.file

(** Convenience: straight to CIF text. *)
val to_cif : ?margin:int -> Report.t -> string

(** Parse marker geometry back out of a CIF file (for tooling round
    trips): returns (rule, box) pairs. *)
val of_file : Cif.Ast.file -> (string * Geom.Rect.t) list
