type config = {
  interactions : Interactions.config;
  run_erc : bool;
  expected_netlist : Netcompare.expected option;
  relational : Process_model.Exposure.t option;
}

let default_config =
  { interactions = Interactions.default_config; run_erc = true; expected_netlist = None;
    relational = None }

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
  model : Model.t;
  nets : Netgen.t;
}

let timed name f times =
  let t0 = Sys.time () in
  let v = f () in
  times := (name, Sys.time () -. t0) :: !times;
  v

let erc_violations netlist =
  List.map
    (fun v ->
      let rule =
        match v with
        | Netlist.Erc.Floating_net _ -> "erc.floating-net"
        | Netlist.Erc.Supply_short _ -> "erc.supply-short"
        | Netlist.Erc.Bus_on_supply _ -> "erc.bus-on-supply"
        | Netlist.Erc.Depletion_on_ground _ -> "erc.depletion-on-ground"
      in
      let severity =
        (* A floating net is suspicious, not provably fatal. *)
        match v with Netlist.Erc.Floating_net _ -> `W | _ -> `E
      in
      let msg = Format.asprintf "%a" Netlist.Erc.pp_violation v in
      match severity with
      | `E -> Report.error ~stage:Report.Electrical ~rule ~context:"netlist" msg
      | `W -> Report.warning ~stage:Report.Electrical ~rule ~context:"netlist" msg)
    (Netlist.Erc.check netlist)

let run ?(config = default_config) rules file =
  let times = ref [] in
  match timed "elaborate" (fun () -> Model.elaborate rules file) times with
  | Error e -> Error e
  | Ok (model, parse_issues) ->
    let element_issues = timed "elements" (fun () -> Element_checks.check model) times in
    let device_issues = timed "devices" (fun () -> Devices.check model) times in
    let relational_issues =
      match config.relational with
      | None -> []
      | Some exposure ->
        timed "devices-relational" (fun () -> Devices.check_relational_all exposure model)
          times
    in
    let nets, connection_issues = timed "connections+netlist" (fun () -> Netgen.build model) times in
    let netlist = timed "netlist-export" (fun () -> Netgen.netlist nets) times in
    let interaction_issues, interaction_stats =
      timed "interactions" (fun () -> Interactions.check ~config:config.interactions nets) times
    in
    let electrical_issues =
      if config.run_erc then timed "electrical" (fun () -> erc_violations netlist) times
      else []
    in
    let consistency_issues =
      match config.expected_netlist with
      | None -> []
      | Some expected ->
        timed "netlist-compare" (fun () -> Netcompare.check expected netlist) times
    in
    let local, crossing = Netgen.locality nets in
    let locality_info =
      Report.info ~stage:Report.Netlist_gen ~rule:"netlist.locality" ~context:"TOP"
        (Printf.sprintf "%d net(s) local to one definition, %d crossing boundaries" local
           crossing)
    in
    let report =
      { Report.violations =
          parse_issues @ element_issues @ device_issues @ relational_issues
          @ connection_issues @ interaction_issues @ electrical_issues
          @ consistency_issues @ [ locality_info ] }
    in
    Ok
      { report;
        netlist;
        interaction_stats;
        stage_seconds = List.rev !times;
        model;
        nets }

let run_string ?config rules src =
  match Cif.Parse.file src with
  | Error e -> Error (Cif.Parse.string_of_error e)
  | Ok file -> run ?config rules file

let pp_summary ppf r =
  let by sev = Report.count ~severity:sev r.report in
  Format.fprintf ppf "%d error(s), %d warning(s), %d net(s)" (by Report.Error)
    (by Report.Warning)
    (List.length r.netlist.Netlist.Net.nets)
