type symbol_stats = {
  ss_name : string;
  ss_device : Tech.Device.kind option;
  ss_elements : int;
  ss_calls : int;
  ss_instances : int;
}

type t = {
  symbols : symbol_stats list;
  depth : int;
  definition_elements : int;
  instantiated_elements : int;
  leverage : float;
  device_census : (Tech.Device.kind * int) list;
  nets_total : int;
  nets_local : int;
  nets_crossing : int;
}

(* Instance counts: the number of times each symbol appears in the
   fully instantiated design, computed top-down through call
   multiplicities. *)
let instance_counts (model : Model.t) =
  let counts = Hashtbl.create 16 in
  Hashtbl.replace counts Model.root_id 1;
  (* model.symbols is callees-first; walk it in reverse (callers first). *)
  List.iter
    (fun (s : Model.symbol) ->
      let own = try Hashtbl.find counts s.Model.sid with Not_found -> 0 in
      List.iter
        (fun (c : Model.call) ->
          let cur = try Hashtbl.find counts c.Model.callee with Not_found -> 0 in
          Hashtbl.replace counts c.Model.callee (cur + own))
        s.Model.calls)
    (List.rev model.Model.symbols);
  counts

let compute (nets : Netgen.t) =
  let model = nets.Netgen.model in
  let counts = instance_counts model in
  let symbols =
    List.filter_map
      (fun (s : Model.symbol) ->
        if s.Model.sid = Model.root_id then None
        else
          Some
            { ss_name = s.Model.sname;
              ss_device = s.Model.device;
              ss_elements = List.length s.Model.elements;
              ss_calls = List.length s.Model.calls;
              ss_instances = (try Hashtbl.find counts s.Model.sid with Not_found -> 0) })
      model.Model.symbols
  in
  let device_census =
    List.fold_left
      (fun acc s ->
        match s.ss_device with
        | None -> acc
        | Some k ->
          let cur = try List.assoc k acc with Not_found -> 0 in
          (k, cur + s.ss_instances) :: List.remove_assoc k acc)
      [] symbols
    |> List.sort (fun (a, _) (b, _) -> Tech.Device.compare a b)
  in
  let de = Model.definition_elements model
  and fe = Model.instantiated_elements model in
  let local, crossing = Netgen.locality nets in
  { symbols;
    depth = Model.depth model;
    definition_elements = de;
    instantiated_elements = fe;
    leverage = (if de = 0 then 1. else float_of_int fe /. float_of_int de);
    device_census;
    nets_total = local + crossing;
    nets_local = local;
    nets_crossing = crossing }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-12s %8s %6s %10s %8s@," "symbol" "elements" "calls" "instances"
    "device";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-12s %8d %6d %10d %8s@," s.ss_name s.ss_elements s.ss_calls
        s.ss_instances
        (match s.ss_device with Some k -> Tech.Device.to_tag k | None -> "-"))
    t.symbols;
  Format.fprintf ppf "depth %d; %d definition elements instantiate to %d (%.1fx)@,"
    t.depth t.definition_elements t.instantiated_elements t.leverage;
  Format.fprintf ppf "devices:";
  List.iter
    (fun (k, n) -> Format.fprintf ppf " %s=%d" (Tech.Device.to_tag k) n)
    t.device_census;
  Format.fprintf ppf "@,nets: %d (%d local, %d crossing definitions)@]" t.nets_total
    t.nets_local t.nets_crossing
