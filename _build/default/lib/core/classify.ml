type truth = {
  t_families : string list;
  t_where : Geom.Rect.t option;
  t_note : string;
}

type finding = {
  f_family : string;
  f_where : Geom.Rect.t option;
  f_note : string;
}

let family_of_rule rule =
  match String.index_opt rule '.' with
  | Some i -> String.sub rule 0 i
  | None -> rule

let of_report (r : Report.t) =
  List.filter_map
    (fun (v : Report.violation) ->
      if v.Report.severity = Report.Error then
        Some
          { f_family = family_of_rule v.Report.rule;
            f_where = v.Report.where;
            f_note = v.Report.rule ^ ": " ^ v.Report.message }
      else None)
    r.Report.violations

let classic_family rule =
  match family_of_rule rule with
  | "polydiff" -> "integrity"
  | f -> f

let of_classic errors =
  List.map
    (fun (e : Flatdrc.Classic.error) ->
      { f_family = classic_family e.Flatdrc.Classic.rule;
        f_where = Some e.Flatdrc.Classic.where;
        f_note = e.Flatdrc.Classic.rule ^ ": " ^ e.Flatdrc.Classic.note })
    errors

type outcome = {
  flagged : (truth * finding) list;
  missed : truth list;
  false_findings : finding list;
  findings_total : int;
}

let matches ~tolerance truth finding =
  List.mem finding.f_family truth.t_families
  &&
  match (truth.t_where, finding.f_where) with
  | Some tw, Some fw -> (
    match Geom.Rect.inflate tw tolerance with
    | Some grown -> Geom.Rect.touches ~a:grown ~b:fw
    | None -> false)
  | None, _ | _, None -> true

let classify ~tolerance truths findings =
  let flagged, missed =
    List.partition_map
      (fun t ->
        match List.find_opt (fun f -> matches ~tolerance t f) findings with
        | Some f -> Either.Left (t, f)
        | None -> Either.Right t)
      truths
  in
  let false_findings =
    List.filter
      (fun f -> not (List.exists (fun t -> matches ~tolerance t f) truths))
      findings
  in
  { flagged; missed; false_findings; findings_total = List.length findings }

let false_ratio o =
  let falses = float_of_int (List.length o.false_findings) in
  match List.length o.flagged with
  | 0 -> if falses > 0. then infinity else 0.
  | n -> falses /. float_of_int n

let pp_outcome ppf o =
  Format.fprintf ppf "real flagged: %d, real missed: %d, false: %d (of %d findings)"
    (List.length o.flagged) (List.length o.missed) (List.length o.false_findings)
    o.findings_total
