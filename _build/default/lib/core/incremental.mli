(** Incremental rechecking.

    Because the checker's per-definition stages (element checks, device
    checks) depend only on a symbol's own content, their results can be
    cached across runs and reused for definitions that did not change —
    the edit-check-edit loop then pays only for what moved.  Composite
    stages (connectivity, net list, interactions) still rerun, but they
    are hierarchical and cheap, and the instance-pair interaction memo
    is reusable too because it is keyed by (symbol, symbol, relative
    placement), not by instance.

    Symbols are fingerprinted structurally (device type, elements with
    layers/geometry/nets, calls with transforms), so renaming a net or
    nudging a box invalidates exactly that definition. *)

type t

val create : unit -> t

type stats = {
  symbols_total : int;
  symbols_reused : int;  (** per-definition results served from cache *)
}

(** [run t rules file] — same result as {!Checker.run} with the same
    config, plus reuse statistics.  The cache lives in [t]; pass the
    same [t] across edits of the same design. *)
val run :
  ?config:Checker.config -> t -> Tech.Rules.t -> Cif.Ast.file ->
  (Checker.result * stats, string) result

(** Structural fingerprint of a symbol (exposed for tests). *)
val fingerprint : Model.symbol -> string
