(** Pipeline stage 2 — "check elements".

    "The primitive elements of the chip are checked for legal width.
    This is done in the symbol definition, not in each instance of a
    symbol.  Boxes and wires are trivial to check, polygons require a
    more general purpose polygon width routine.  The only elements
    which are checked at this stage are interconnect."

    Additionally, the structured-design style restricts where
    non-interconnect layers may appear: contact, implant, buried and
    glass geometry belongs inside device symbols only. *)

(** Check one symbol definition (device symbols are skipped here; their
    geometry belongs to stage 3). *)
val check_symbol : Tech.Rules.t -> Model.symbol -> Report.violation list

(** Check every definition once. *)
val check : Model.t -> Report.violation list
