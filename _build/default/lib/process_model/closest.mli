(** Spacing by "the line of closest approach" (the paper's proposal).

    "Spacing calculation by this technique now reduces to finding 'the
    line of closest approach'; translating one element along this line
    (if they are on different layers), finding the maximum of the
    exposure function (which will lie along this line), and comparing
    the value at this point against some critical value."

    Same-layer spacing asks whether worst-case *bias* bridges the gap:
    the two shapes' exposures add in the gap, and if the combined
    maximum reaches the develop threshold the shapes print merged.
    Different-layer spacing adds worst-case *misalignment*, modelled as
    a translation along the line of closest approach before the
    exposure test. *)

type verdict = {
  gap2 : int;  (** squared drawn Euclidean separation *)
  line : (Geom.Pt.t * Geom.Pt.t) option;
      (** endpoints of the line of closest approach ([None] when the
          shapes already touch) *)
  max_exposure : float;  (** combined exposure maximum along the line *)
  bridges : bool;  (** do the shapes print merged / overlapping? *)
}

(** Closest points between two rectangles (any pair achieving the
    minimum distance). *)
val closest_points : Geom.Rect.t -> Geom.Rect.t -> Geom.Pt.t * Geom.Pt.t

(** Closest pair of points between two regions, with the rectangles
    that realise it; [None] if either region is empty. *)
val line_of_closest_approach :
  Geom.Region.t -> Geom.Region.t -> (Geom.Pt.t * Geom.Pt.t) option

(** [check model ~misalign a b] — [misalign] is the worst-case mask
    misalignment in layout units; use [0] for same-layer checks.  The
    translated copy of [b] is moved toward [a] along the line of
    closest approach (rounded to the dominant axis, keeping geometry on
    grid). *)
val check : Exposure.t -> misalign:int -> Geom.Region.t -> Geom.Region.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
