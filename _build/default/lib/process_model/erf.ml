let erf_pos x =
  (* A&S 7.1.26. *)
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5)))))))) in
  1. -. (poly *. exp (-.(x *. x)))

let erf x = if x >= 0. then erf_pos x else -.erf_pos (-.x)
let erfc x = 1. -. erf x
let gauss_cdf x = (1. +. erf (x /. sqrt 2.)) /. 2.
