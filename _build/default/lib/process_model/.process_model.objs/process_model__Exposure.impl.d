lib/process_model/exposure.ml: Erf Geom List
