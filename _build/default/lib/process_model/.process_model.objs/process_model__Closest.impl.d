lib/process_model/closest.ml: Exposure Float Format Geom List
