lib/process_model/exposure.mli: Geom
