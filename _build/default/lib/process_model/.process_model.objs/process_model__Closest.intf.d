lib/process_model/closest.mli: Exposure Format Geom
