lib/process_model/relational.mli: Exposure Format
