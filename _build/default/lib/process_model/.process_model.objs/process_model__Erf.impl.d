lib/process_model/erf.ml:
