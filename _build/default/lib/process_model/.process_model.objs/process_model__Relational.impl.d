lib/process_model/relational.ml: Exposure Float Format Geom
