lib/process_model/erf.mli:
