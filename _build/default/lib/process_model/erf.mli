(** The error function, needed for the closed-form solution of the
    paper's Eq 1: with a Gaussian exposure kernel and box masks, "the
    exposure at each point ... has a closed form solution in terms of
    an error function." *)

(** Abramowitz & Stegun 7.1.26 rational approximation; absolute error
    below 1.5e-7, odd-symmetric by construction. *)
val erf : float -> float

val erfc : float -> float

(** Integral of the unit Gaussian from -inf to [x]:
    [(1 + erf (x /. sqrt 2.)) /. 2.]. *)
val gauss_cdf : float -> float
