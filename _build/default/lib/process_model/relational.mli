(** Relational rules (paper Fig 14).

    "Relational rules are ones where one dimension of the structure
    depends on another feature of the same structure.  For example, the
    poly overlap of the gate region on an MOS transistor is a function
    of the width of the poly in some design rules to account for the
    'retreat' of the end on narrow wires."

    The end of a drawn wire prints short of its drawn position because
    the exposure near the end lacks contribution from beyond it, and
    the loss is worse for narrow wires (less lateral exposure to spare).
    [retreat] computes that pull-back from the exposure model; the
    relational gate-overlap check compares the *effective* (retreated)
    poly overhang against the requirement, instead of the drawn one. *)

(** [retreat model ~width] — distance (in layout units, >= 0) by which
    the printed end of a long wire of the given drawn width falls short
    of the drawn end.  Monotone non-increasing in [width]. *)
val retreat : Exposure.t -> width:int -> float

(** [effective_overhang model ~width ~drawn] — drawn overhang minus the
    retreat, clamped at zero. *)
val effective_overhang : Exposure.t -> width:int -> drawn:int -> float

type verdict = {
  width : int;
  drawn_overhang : int;
  retreat : float;
  effective : float;
  required : int;
  ok : bool;
}

(** [check_gate_overhang model ~width ~drawn ~required] — the
    relational form of the gate-overhang rule: the effective overhang
    must still meet [required] (the fixed-rule number covers the
    shorting hazard only if the end does not retreat). *)
val check_gate_overhang :
  Exposure.t -> width:int -> drawn:int -> required:int -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
