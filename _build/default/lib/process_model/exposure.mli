(** Gaussian exposure of a mask (the paper's Eq 1).

    [I(p) = integral of A exp(-r^2 / 2 sigma^2) M(q) dq] where [M] is
    the binary mask.  With the kernel normalised so that a full plane
    exposes to 1.0, a box mask has the separable closed form

    [I(x,y) = 1/4 (erf((x1-x)/s) - erf((x0-x)/s)) (erf-terms in y)]

    with [s = sigma * sqrt 2].  Exposure of a region is the sum over
    its disjoint canonical strips.  Printing is thresholded: resist
    develops where [I >= threshold]; [threshold = 0.5] prints a long
    straight mask edge exactly in place, so bias is zero for large
    features and all deviation is corner rounding and proximity — the
    effects of paper Figs 13 and 14. *)

type t = {
  sigma : float;  (** Gaussian kernel width, in layout units *)
  threshold : float;  (** develop threshold as a fraction of full exposure *)
}

(** [make ~sigma ~threshold ()] — [sigma > 0], [0 < threshold < 1]. *)
val make : ?threshold:float -> sigma:float -> unit -> t

(** Exposure contribution of one rectangle at a (float) point. *)
val of_rect : t -> Geom.Rect.t -> float -> float -> float

(** Total exposure of a region at a point (sums disjoint strips). *)
val of_region : t -> Geom.Region.t -> float -> float -> float

(** Does the point print? *)
val prints : t -> Geom.Region.t -> float -> float -> bool

(** [printed t region ~step ~margin] rasterises the printed contour:
    samples cell centres every [step] units over the bounding box grown
    by [margin] and returns the region of printing cells.  This is the
    paper's "proximity effect expand" shape (Fig 13). *)
val printed : t -> Geom.Region.t -> step:int -> margin:int -> Geom.Region.t

(** Maximum exposure along the closed segment from [(x0,y0)] to
    [(x1,y1)], sampled at [samples + 1] points ([samples >= 1]).
    Returns the maximum and its parameter in [0..1]. *)
val max_along :
  t -> Geom.Region.t -> x0:float -> y0:float -> x1:float -> y1:float ->
  samples:int -> float * float
