type t = { sigma : float; threshold : float }

let make ?(threshold = 0.5) ~sigma () =
  if sigma <= 0. then invalid_arg "Exposure.make: sigma must be positive";
  if threshold <= 0. || threshold >= 1. then
    invalid_arg "Exposure.make: threshold must lie strictly between 0 and 1";
  { sigma; threshold }

let of_rect t r x y =
  let s = t.sigma *. sqrt 2. in
  let ex lo hi v = Erf.erf ((hi -. v) /. s) -. Erf.erf ((lo -. v) /. s) in
  0.25
  *. ex (float_of_int (Geom.Rect.x0 r)) (float_of_int (Geom.Rect.x1 r)) x
  *. ex (float_of_int (Geom.Rect.y0 r)) (float_of_int (Geom.Rect.y1 r)) y

let of_region t region x y =
  List.fold_left (fun acc r -> acc +. of_rect t r x y) 0. (Geom.Region.rects region)

let prints t region x y = of_region t region x y >= t.threshold

let printed t region ~step ~margin =
  if step <= 0 then invalid_arg "Exposure.printed: step must be positive";
  match Geom.Region.bbox region with
  | None -> Geom.Region.empty
  | Some bb ->
    let x0 = Geom.Rect.x0 bb - margin
    and y0 = Geom.Rect.y0 bb - margin
    and x1 = Geom.Rect.x1 bb + margin
    and y1 = Geom.Rect.y1 bb + margin in
    let cells = ref [] in
    let y = ref y0 in
    while !y < y1 do
      let x = ref x0 in
      while !x < x1 do
        let cx = float_of_int !x +. (float_of_int step /. 2.)
        and cy = float_of_int !y +. (float_of_int step /. 2.) in
        if prints t region cx cy then
          cells := Geom.Rect.make !x !y (!x + step) (!y + step) :: !cells;
        x := !x + step
      done;
      y := !y + step
    done;
    Geom.Region.of_rects !cells

let max_along t region ~x0 ~y0 ~x1 ~y1 ~samples =
  if samples < 1 then invalid_arg "Exposure.max_along: samples must be >= 1";
  let best = ref neg_infinity and best_u = ref 0. in
  for i = 0 to samples do
    let u = float_of_int i /. float_of_int samples in
    let x = x0 +. (u *. (x1 -. x0)) and y = y0 +. (u *. (y1 -. y0)) in
    let v = of_region t region x y in
    if v > !best then begin
      best := v;
      best_u := u
    end
  done;
  (!best, !best_u)
