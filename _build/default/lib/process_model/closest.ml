type verdict = {
  gap2 : int;
  line : (Geom.Pt.t * Geom.Pt.t) option;
  max_exposure : float;
  bridges : bool;
}

(* The closest pair of points between two boxes decomposes per axis: if
   the projections are disjoint the facing endpoints are closest;
   otherwise any shared coordinate (we take the overlap midpoint) gives
   distance zero on that axis. *)
let axis_closest a0 a1 b0 b1 =
  if b0 > a1 then (a1, b0)
  else if a0 > b1 then (a0, b1)
  else
    let m = (max a0 b0 + min a1 b1) / 2 in
    (m, m)

let closest_points a b =
  let ax, bx = axis_closest (Geom.Rect.x0 a) (Geom.Rect.x1 a) (Geom.Rect.x0 b) (Geom.Rect.x1 b) in
  let ay, by = axis_closest (Geom.Rect.y0 a) (Geom.Rect.y1 a) (Geom.Rect.y0 b) (Geom.Rect.y1 b) in
  (Geom.Pt.make ax ay, Geom.Pt.make bx by)

let line_of_closest_approach ra rb =
  let rects_a = Geom.Region.rects ra and rects_b = Geom.Region.rects rb in
  if rects_a = [] || rects_b = [] then None
  else begin
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let g2 = Geom.Rect.euclidean_gap2 a b in
            match !best with
            | Some (bg2, _, _) when bg2 <= g2 -> ()
            | _ -> best := Some (g2, a, b))
          rects_b)
      rects_a;
    match !best with
    | None -> None
    | Some (_, a, b) -> Some (closest_points a b)
  end

let check model ~misalign a b =
  match line_of_closest_approach a b with
  | None -> { gap2 = 0; line = None; max_exposure = 1.0; bridges = true }
  | Some (pa, pb) ->
    let gap2 = Geom.Pt.dist2 pa pb in
    if gap2 = 0 then
      { gap2 = 0; line = Some (pa, pb); max_exposure = 1.0; bridges = true }
    else begin
      (* Worst-case misalignment: translate b toward a along the line,
         rounded so geometry stays on the integer grid. *)
      let dx = pa.Geom.Pt.x - pb.Geom.Pt.x and dy = pa.Geom.Pt.y - pb.Geom.Pt.y in
      let len = sqrt (float_of_int ((dx * dx) + (dy * dy))) in
      let shift_x =
        int_of_float (Float.round (float_of_int misalign *. float_of_int dx /. len))
      and shift_y =
        int_of_float (Float.round (float_of_int misalign *. float_of_int dy /. len))
      in
      let b' = Geom.Region.translate b shift_x shift_y in
      let combined = Geom.Region.union a b' in
      let max_exposure, _ =
        Exposure.max_along model combined
          ~x0:(float_of_int pa.Geom.Pt.x) ~y0:(float_of_int pa.Geom.Pt.y)
          ~x1:(float_of_int (pb.Geom.Pt.x + shift_x))
          ~y1:(float_of_int (pb.Geom.Pt.y + shift_y))
          ~samples:32
      in
      (* If the regions now touch after misalignment, they bridge
         outright. *)
      let touching =
        match Geom.Measure.separation2 ~metric:Geom.Measure.Euclidean a b' with
        | Some 0 -> true
        | _ -> false
      in
      { gap2;
        line = Some (pa, pb);
        max_exposure;
        bridges = touching || max_exposure >= model.Exposure.threshold }
    end

let pp_verdict ppf v =
  Format.fprintf ppf "gap=%.2f maxI=%.3f %s"
    (sqrt (float_of_int v.gap2))
    v.max_exposure
    (if v.bridges then "BRIDGES" else "clear")
