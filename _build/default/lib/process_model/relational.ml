(* A long wire of width w ending at x = 0, extending to x = -L.  The
   printed end is the largest x with exposure >= threshold along the
   centreline; retreat is its distance short of 0. *)
let retreat model ~width =
  if width <= 0 then invalid_arg "Relational.retreat: width must be positive";
  let l = 40. *. model.Exposure.sigma in
  let region =
    Geom.Region.of_rect
      (Geom.Rect.make (-(int_of_float l)) (-(width / 2)) 0 (width - (width / 2)))
  in
  let expose x = Exposure.of_region model region x 0. in
  (* The exposure is monotone decreasing in x near the end; bisect for
     the threshold crossing.  Search window: a few sigma either side. *)
  let lo = ref (-4. *. model.Exposure.sigma) and hi = ref (4. *. model.Exposure.sigma) in
  if expose !lo < model.Exposure.threshold then
    (* Even well inside the wire the exposure is below threshold: the
       wire does not print at all.  Retreat is effectively the whole
       search window. *)
    -. !lo
  else begin
    for _ = 1 to 48 do
      let mid = (!lo +. !hi) /. 2. in
      if expose mid >= model.Exposure.threshold then lo := mid else hi := mid
    done;
    let printed_end = (!lo +. !hi) /. 2. in
    Float.max 0. (-.printed_end)
  end

let effective_overhang model ~width ~drawn =
  Float.max 0. (float_of_int drawn -. retreat model ~width)

type verdict = {
  width : int;
  drawn_overhang : int;
  retreat : float;
  effective : float;
  required : int;
  ok : bool;
}

let check_gate_overhang model ~width ~drawn ~required =
  let r = retreat model ~width in
  let effective = Float.max 0. (float_of_int drawn -. r) in
  { width;
    drawn_overhang = drawn;
    retreat = r;
    effective;
    required;
    ok = effective >= float_of_int required }

let pp_verdict ppf v =
  Format.fprintf ppf "w=%d drawn=%d retreat=%.1f effective=%.1f need=%d %s" v.width
    v.drawn_overhang v.retreat v.effective v.required
    (if v.ok then "ok" else "VIOLATION")
