type t = { x : int; y : int }

let make x y = { x; y }
let zero = { x = 0; y = 0 }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let neg a = { x = -a.x; y = -a.y }
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  match Int.compare a.x b.x with 0 -> Int.compare a.y b.y | c -> c

let dist2 a b =
  let dx = a.x - b.x and dy = a.y - b.y in
  (dx * dx) + (dy * dy)

let chebyshev a b = max (abs (a.x - b.x)) (abs (a.y - b.y))
let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y
