(** CIF wires, restricted to Manhattan paths with square end caps.

    A wire is a path swept by a pen of width [width].  True CIF uses a
    round pen; this library (like most Manhattan DRC engines of the
    period) uses the square-capped orthogonal approximation, which keeps
    all geometry rectilinear.  Diagonal path segments are rejected at
    construction ([Invalid_argument]) — a structured-design style
    restriction recorded in DESIGN.md. *)

type t = private { width : int; path : Pt.t list }

(** [make ~width path] — [width > 0], [path] non-empty, all segments
    axis-parallel.  @raise Invalid_argument otherwise. *)
val make : width:int -> Pt.t list -> t

(** One rectangle per path segment, each extended by [width/2]
    laterally and longitudinally (square caps).  A single-point path
    yields one [width x width] square. *)
val to_rects : t -> Rect.t list

val to_region : t -> Region.t
val bbox : t -> Rect.t

(** [skeleton ~half t] shrinks the wire by [half] (one half of the
    layer minimum width, per the paper's skeletal-connectivity rule).
    Rectangles may be degenerate: a wire of exactly the minimum width
    has its centreline as skeleton. *)
val skeleton : half:int -> t -> Rect.t list

val translate : t -> int -> int -> t
val transform : Transform.t -> t -> t
val pp : Format.formatter -> t -> unit
