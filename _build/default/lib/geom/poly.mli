(** Simple polygons on the integer grid.

    The checker's design style (and the NMOS flow it models) restricts
    layouts to rectilinear geometry; general polygons are accepted from
    CIF but only rectilinear ones can be elaborated into regions.  The
    paper notes that general polygon algorithms are "quite expensive
    while those for boxes and wires are almost trivial" — this module
    is the small general-purpose remainder. *)

type t = private { pts : Pt.t list }

(** [make pts] — at least three distinct vertices, closed implicitly.
    Collinear repeats are tolerated.  @raise Invalid_argument on fewer
    than three points. *)
val make : Pt.t list -> t

val vertices : t -> Pt.t list

(** Twice the signed area (shoelace); positive for counter-clockwise. *)
val signed_area2 : t -> int

val area : t -> int
val bbox : t -> Rect.t
val is_rectilinear : t -> bool

(** [to_region t] scan-converts a rectilinear polygon (even-odd rule).
    Returns [None] for non-rectilinear polygons. *)
val to_region : t -> Region.t option

val translate : t -> int -> int -> t
val transform : Transform.t -> t -> t
val pp : Format.formatter -> t -> unit
