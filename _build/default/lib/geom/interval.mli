(** Sorted disjoint half-open integer interval lists.

    The 1-D algebra underlying the scanline region representation.  A
    value of type [t] is a list of spans [\[lo,hi)] with [lo < hi],
    sorted by [lo], pairwise disjoint and non-adjacent (maximal). *)

type span = { lo : int; hi : int }
type t = span list

val empty : t
val is_empty : t -> bool

(** [normalise spans] sorts, merges overlapping and adjacent spans, and
    drops empty ones. *)
val normalise : span list -> t

val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is [a] minus [b]. *)
val diff : t -> t -> t

(** Total length covered. *)
val length : t -> int

val equal : t -> t -> bool

(** [mem x t] — does the half-open union contain coordinate [x]
    (i.e. the unit cell [\[x,x+1)])? *)
val mem : int -> t -> bool

(** [inflate d t] grows every span by [d] at both ends and re-merges.
    [d] may be negative (shrink); spans that vanish are dropped. *)
val inflate : int -> t -> t

(** [complement ~lo ~hi t] is [\[lo,hi)] minus [t]. *)
val complement : lo:int -> hi:int -> t -> t

val pp : Format.formatter -> t -> unit
