(** Axis-aligned integer rectangles.

    A rectangle is the closed set [x0,x1] x [y0,y1].  Degenerate
    rectangles (zero width and/or height) are permitted: they arise
    naturally as skeletons of minimum-width elements, where the
    "touching" of degenerate skeletons is exactly the paper's skeletal
    connectivity criterion. *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

(** [make x0 y0 x1 y1] normalises corner order. *)
val make : int -> int -> int -> int -> t

(** [of_center_wh ~cx ~cy ~w ~h] builds the rectangle of width [w] and
    height [h] centred at [(cx,cy)].  [w] and [h] must be non-negative
    and even on the integer grid for an exact centre; otherwise the
    rectangle is shifted down-left by the odd half unit. *)
val of_center_wh : cx:int -> cy:int -> w:int -> h:int -> t

val x0 : t -> int
val y0 : t -> int
val x1 : t -> int
val y1 : t -> int
val width : t -> int
val height : t -> int
val center : t -> Pt.t

(** [area r] as a 64-bit quantity is not needed at CIF scales; plain
    int is 63-bit on this platform. *)
val area : t -> int

val is_degenerate : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [contains r p] — closed-set membership. *)
val contains : t -> Pt.t -> bool

(** [contains_rect outer inner] — closed-set inclusion. *)
val contains_rect : t -> t -> bool

(** [overlaps a b] — the open interiors intersect (positive-area
    intersection). *)
val overlaps : a:t -> b:t -> bool

(** [touches a b] — the closed sets intersect (shared boundary counts,
    degenerate rectangles count). *)
val touches : a:t -> b:t -> bool

(** [inter a b] is the closed intersection, if non-empty. *)
val inter : t -> t -> t option

(** [hull a b] is the bounding box of the union. *)
val hull : t -> t -> t

(** [inflate r d] grows the rectangle by [d] on all four sides
    (orthogonal expand).  [d] may be negative; the result is clipped to
    degenerate-at-centre when over-shrunk, in which case [None] is
    returned. *)
val inflate : t -> int -> t option

(** [translate r dx dy]. *)
val translate : t -> int -> int -> t

(** Axis gap between the projections of [a] and [b]: 0 when the
    projections overlap or touch. *)
val gap_x : t -> t -> int

val gap_y : t -> t -> int

(** [chebyshev_gap a b] is the L-infinity separation of the two closed
    rectangles: [max (gap_x a b) (gap_y a b)].  Two rectangles overlap
    when expanded orthogonally by [d] each iff the Chebyshev gap is
    [< 2*d] (strictly), and touch iff [<= 2*d]. *)
val chebyshev_gap : t -> t -> int

(** [euclidean_gap2 a b] is the squared Euclidean separation of the two
    closed rectangles (0 if they touch or overlap). *)
val euclidean_gap2 : t -> t -> int

val pp : Format.formatter -> t -> unit
