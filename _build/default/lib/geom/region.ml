type slab = { y0 : int; y1 : int; spans : Interval.t }
type t = slab list
(* Invariant: slabs sorted by y0, non-overlapping, non-empty spans, and
   vertically adjacent slabs have distinct span sets (else merged). *)

let empty = []
let is_empty t = t = []

let coalesce slabs =
  let slabs = List.filter (fun s -> s.y0 < s.y1 && s.spans <> []) slabs in
  let rec merge = function
    | a :: b :: rest when a.y1 = b.y0 && Interval.equal a.spans b.spans ->
      merge ({ a with y1 = b.y1 } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge slabs

(* Build the canonical form from a list of (rect) contributions by
   sweeping the distinct y coordinates with an active set, so the work
   is (number of slabs) x (rects active in the slab) rather than
   quadratic in the total rect count. *)
let of_rects rs =
  let rs = List.filter (fun r -> not (Rect.is_degenerate r)) rs in
  if rs = [] then []
  else begin
    let by_start = Array.of_list rs in
    Array.sort (fun a b -> Int.compare (Rect.y0 a) (Rect.y0 b)) by_start;
    let ys =
      List.concat_map (fun r -> [ Rect.y0 r; Rect.y1 r ]) rs
      |> List.sort_uniq Int.compare
      |> Array.of_list
    in
    let next = ref 0 in
    let active = ref [] in
    let slabs = ref [] in
    for i = 0 to Array.length ys - 2 do
      let a = ys.(i) and b = ys.(i + 1) in
      while !next < Array.length by_start && Rect.y0 by_start.(!next) <= a do
        active := by_start.(!next) :: !active;
        incr next
      done;
      active := List.filter (fun r -> Rect.y1 r > a) !active;
      let spans =
        List.map (fun r -> { Interval.lo = Rect.x0 r; hi = Rect.x1 r }) !active
        |> Interval.normalise
      in
      slabs := { y0 = a; y1 = b; spans } :: !slabs
    done;
    coalesce (List.rev !slabs)
  end

let of_rect r = of_rects [ r ]
let slabs t = t

let rects t =
  List.concat_map
    (fun s ->
      List.map (fun (sp : Interval.span) -> Rect.make sp.lo s.y0 sp.hi s.y1) s.spans)
    t

let area t =
  List.fold_left (fun acc s -> acc + ((s.y1 - s.y0) * Interval.length s.spans)) 0 t

let bbox t =
  match rects t with
  | [] -> None
  | r :: rs -> Some (List.fold_left Rect.hull r rs)

let equal (a : t) (b : t) = a = b

(* Generic boolean combination: sweep the union of slab boundaries. *)
let binop op a b =
  let ys =
    List.concat_map (fun s -> [ s.y0; s.y1 ]) (a @ b) |> List.sort_uniq Int.compare
  in
  let spans_at slabs y0 y1 =
    match List.find_opt (fun s -> s.y0 <= y0 && s.y1 >= y1) slabs with
    | Some s -> s.spans
    | None -> Interval.empty
  in
  let rec go = function
    | lo :: (hi :: _ as rest) ->
      let spans = op (spans_at a lo hi) (spans_at b lo hi) in
      { y0 = lo; y1 = hi; spans } :: go rest
    | _ -> []
  in
  coalesce (go ys)

let union a b = if a = [] then b else if b = [] then a else binop Interval.union a b
let inter a b = if a = [] || b = [] then [] else binop Interval.inter a b
let diff a b = if a = [] then [] else if b = [] then a else binop Interval.diff a b

let contains_pt t x y =
  List.exists (fun s -> s.y0 <= y && y < s.y1 && Interval.mem x s.spans) t

let contains_rect t r =
  (not (Rect.is_degenerate r)) && is_empty (diff (of_rect r) t)

let intersects t r =
  (not (Rect.is_degenerate r)) && not (is_empty (inter t (of_rect r)))

let translate t dx dy =
  List.map
    (fun s ->
      { y0 = s.y0 + dy;
        y1 = s.y1 + dy;
        spans =
          List.map (fun (sp : Interval.span) -> { Interval.lo = sp.lo + dx; hi = sp.hi + dx }) s.spans })
    t

let transform tr t = of_rects (List.map (Transform.apply_rect tr) (rects t))

let expand_orth t d =
  if d = 0 then t
  else begin
    assert (d > 0);
    of_rects
      (List.filter_map (fun r -> Rect.inflate r d) (rects t))
  end

let shrink_orth t d =
  if d = 0 then t
  else begin
    assert (d > 0);
    match bbox t with
    | None -> []
    | Some bb ->
      let frame =
        match Rect.inflate bb (d + 1) with Some f -> f | None -> assert false
      in
      let comp = diff (of_rect frame) t in
      diff t (expand_orth comp d)
  end

(* Raster staircase approximation of the quarter-disc corner: at most
   [max_steps] horizontal slices of the L2 ball. *)
let euclid_steps = 16

let isqrt n =
  if n <= 0 then 0
  else
    let r = int_of_float (sqrt (float_of_int n)) in
    let r = if (r + 1) * (r + 1) <= n then r + 1 else r in
    if r * r > n then r - 1 else r

let expand_euclid t d =
  if d = 0 then t
  else begin
    assert (d > 0);
    let step = max 1 (d / euclid_steps) in
    let rec offsets dy acc =
      if dy > d then acc
      else
        (* Conservative inscribed staircase: horizontal reach at height
           dy..dy+step is the reach at the slice top. *)
        let dy' = min d (dy + step) in
        offsets (dy + step) ((dy', isqrt ((d * d) - (dy' * dy'))) :: acc)
    in
    let offs = (0, d) :: offsets 0 [] in
    let grown =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun (dy, dx) ->
              let x0 = Rect.x0 r - dx
              and y0 = Rect.y0 r - dy
              and x1 = Rect.x1 r + dx
              and y1 = Rect.y1 r + dy in
              if x0 < x1 && y0 < y1 then Some (Rect.make x0 y0 x1 y1) else None)
            offs)
        (rects t)
    in
    of_rects grown
  end

let shrink_euclid t d =
  if d = 0 then t
  else
    match bbox t with
    | None -> []
    | Some bb ->
      let frame =
        match Rect.inflate bb (d + 1) with Some f -> f | None -> assert false
      in
      let comp = diff (of_rect frame) t in
      diff t (expand_euclid comp d)

let components t =
  let strips = Array.of_list (rects t) in
  let n = Array.length strips in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union_ i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = strips.(i) and b = strips.(j) in
      (* 4-connectivity: share a boundary segment of positive length. *)
      let share_v =
        (Rect.y1 a = Rect.y0 b || Rect.y1 b = Rect.y0 a)
        && min (Rect.x1 a) (Rect.x1 b) > max (Rect.x0 a) (Rect.x0 b)
      in
      let share_h =
        (Rect.x1 a = Rect.x0 b || Rect.x1 b = Rect.x0 a)
        && min (Rect.y1 a) (Rect.y1 b) > max (Rect.y0 a) (Rect.y0 b)
      in
      if share_v || share_h then union_ i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i r ->
      let root = find i in
      let cur = try Hashtbl.find groups root with Not_found -> [] in
      Hashtbl.replace groups root (r :: cur))
    strips;
  Hashtbl.fold (fun _ rs acc -> of_rects rs :: acc) groups []

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "y[%d,%d): %a" s.y0 s.y1 Interval.pp s.spans))
    t
