(** Integer 2-D points.

    All geometry in this library uses integer coordinates (CIF
    centimicrons).  Euclidean quantities are compared through squared
    distances so the kernel never manipulates floats. *)

type t = { x : int; y : int }

val make : int -> int -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** [dist2 a b] is the squared Euclidean distance between [a] and [b]. *)
val dist2 : t -> t -> int

(** [chebyshev a b] is the L-infinity distance between [a] and [b]. *)
val chebyshev : t -> t -> int

(** [manhattan a b] is the L1 distance between [a] and [b]. *)
val manhattan : t -> t -> int

val pp : Format.formatter -> t -> unit
