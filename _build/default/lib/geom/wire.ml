type t = { width : int; path : Pt.t list }

let manhattan_path path =
  let rec ok = function
    | a :: (b :: _ as rest) ->
      (a.Pt.x = b.Pt.x || a.Pt.y = b.Pt.y) && ok rest
    | _ -> true
  in
  ok path

let make ~width path =
  if width <= 0 then invalid_arg "Wire.make: width must be positive";
  if path = [] then invalid_arg "Wire.make: empty path";
  if not (manhattan_path path) then
    invalid_arg "Wire.make: diagonal wire segments are not allowed";
  { width; path }

(* Lateral and cap extension for a pen of width [w]: half = w/2 on each
   side.  Odd widths extend the extra unit to the high side so that the
   swept area is exactly [w] across. *)
let seg_rect w (a : Pt.t) (b : Pt.t) =
  let lo = w / 2 in
  let hi = w - lo in
  Rect.make
    (min a.Pt.x b.Pt.x - lo)
    (min a.Pt.y b.Pt.y - lo)
    (max a.Pt.x b.Pt.x + hi)
    (max a.Pt.y b.Pt.y + hi)

let to_rects t =
  match t.path with
  | [ p ] -> [ seg_rect t.width p p ]
  | path ->
    let rec segs = function
      | a :: (b :: _ as rest) -> seg_rect t.width a b :: segs rest
      | _ -> []
    in
    segs path

let to_region t = Region.of_rects (to_rects t)

let bbox t =
  match to_rects t with
  | r :: rs -> List.fold_left Rect.hull r rs
  | [] -> assert false

let skeleton ~half t =
  let w = max 0 (t.width - (2 * half)) in
  let lo = w / 2 in
  let hi = w - lo in
  let seg (a : Pt.t) (b : Pt.t) =
    Rect.make
      (min a.Pt.x b.Pt.x - lo)
      (min a.Pt.y b.Pt.y - lo)
      (max a.Pt.x b.Pt.x + hi)
      (max a.Pt.y b.Pt.y + hi)
  in
  match t.path with
  | [ p ] -> [ seg p p ]
  | path ->
    let rec segs = function
      | a :: (b :: _ as rest) -> seg a b :: segs rest
      | _ -> []
    in
    segs path

let translate t dx dy =
  { t with path = List.map (fun p -> Pt.make (p.Pt.x + dx) (p.Pt.y + dy)) t.path }

let transform tr t = { t with path = List.map (Transform.apply_pt tr) t.path }

let pp ppf t =
  Format.fprintf ppf "wire w=%d %a" t.width
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pt.pp)
    t.path
