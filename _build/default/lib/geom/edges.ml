type orient = H | V
type side = Lo | Hi
type t = { orient : orient; pos : int; lo : int; hi : int; inside : side }
type corner = { at : Pt.t; ix : int; iy : int; convex : bool }

(* Boundary cells in a given direction: cells of [r] whose neighbour in
   direction (dx,dy) lies outside.  Because a cell is in the difference
   only if its neighbour is not, the resulting strips are one cell thick
   in the scan direction, so each strip is a maximal straight edge. *)
let boundary_strips r dx dy = Region.rects (Region.diff r (Region.translate r dx dy))

let of_region r =
  let left =
    List.map
      (fun s -> { orient = V; pos = Rect.x0 s; lo = Rect.y0 s; hi = Rect.y1 s; inside = Hi })
      (boundary_strips r 1 0)
  and right =
    List.map
      (fun s -> { orient = V; pos = Rect.x1 s; lo = Rect.y0 s; hi = Rect.y1 s; inside = Lo })
      (boundary_strips r (-1) 0)
  and bottom =
    List.map
      (fun s -> { orient = H; pos = Rect.y0 s; lo = Rect.x0 s; hi = Rect.x1 s; inside = Hi })
      (boundary_strips r 0 1)
  and top =
    List.map
      (fun s -> { orient = H; pos = Rect.y1 s; lo = Rect.x0 s; hi = Rect.x1 s; inside = Lo })
      (boundary_strips r 0 (-1))
  in
  left @ right @ bottom @ top

let corners r =
  (* Candidate grid points: span endpoints crossed with slab bounds of
     the strips meeting there.  Classify by the four surrounding cells. *)
  let pts = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) -> Hashtbl.replace pts (x, y) ())
        [ (Rect.x0 s, Rect.y0 s); (Rect.x0 s, Rect.y1 s);
          (Rect.x1 s, Rect.y0 s); (Rect.x1 s, Rect.y1 s) ])
    (Region.rects r);
  Hashtbl.fold
    (fun (x, y) () acc ->
      let sw = Region.contains_pt r (x - 1) (y - 1)
      and se = Region.contains_pt r x (y - 1)
      and nw = Region.contains_pt r (x - 1) y
      and ne = Region.contains_pt r x y in
      let n = List.length (List.filter Fun.id [ sw; se; nw; ne ]) in
      if n = 1 then
        let ix = if se || ne then 1 else -1 and iy = if nw || ne then 1 else -1 in
        { at = Pt.make x y; ix; iy; convex = true } :: acc
      else if n = 3 then
        (* Interior direction of a concave corner: towards the single
           outside cell's opposite. *)
        let ix = if (not se) || not ne then 1 else -1
        and iy = if (not nw) || not ne then 1 else -1 in
        { at = Pt.make x y; ix; iy; convex = false } :: acc
      else if n = 2 && sw && ne then
        (* A diagonal pinch: the boundary turns twice here, once for
           each of the two touching quadrants. *)
        { at = Pt.make x y; ix = -1; iy = -1; convex = true }
        :: { at = Pt.make x y; ix = 1; iy = 1; convex = true }
        :: acc
      else if n = 2 && se && nw then
        { at = Pt.make x y; ix = 1; iy = -1; convex = true }
        :: { at = Pt.make x y; ix = -1; iy = 1; convex = true }
        :: acc
      else acc)
    pts []

let length e = e.hi - e.lo
let perimeter r = List.fold_left (fun acc e -> acc + length e) 0 (of_region r)

let pp ppf e =
  Format.fprintf ppf "%s@%d [%d,%d) inside=%s"
    (match e.orient with H -> "H" | V -> "V")
    e.pos e.lo e.hi
    (match e.inside with Lo -> "lo" | Hi -> "hi")
