let shrink_axis lo hi half =
  if hi - lo >= 2 * half then (lo + half, hi - half)
  else
    let mid = (lo + hi) / 2 in
    (mid, mid)

let of_rect ~half r =
  let x0, x1 = shrink_axis (Rect.x0 r) (Rect.x1 r) half in
  let y0, y1 = shrink_axis (Rect.y0 r) (Rect.y1 r) half in
  Rect.make x0 y0 x1 y1

let connected_rect a b = Rect.touches ~a ~b

let connected a b =
  List.exists (fun ra -> List.exists (fun rb -> connected_rect ra rb) b) a
