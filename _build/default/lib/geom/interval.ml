type span = { lo : int; hi : int }
type t = span list

let empty = []
let is_empty t = t = []

let normalise spans =
  let spans = List.filter (fun s -> s.lo < s.hi) spans in
  let spans = List.sort (fun a b -> Int.compare a.lo b.lo) spans in
  let rec merge = function
    | a :: b :: rest ->
      if b.lo <= a.hi then merge ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
      else a :: merge (b :: rest)
    | l -> l
  in
  merge spans

let union a b = normalise (a @ b)

let inter a b =
  (* Both inputs sorted and disjoint: standard two-pointer sweep. *)
  let rec go a b acc =
    match a, b with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
      let lo = max x.lo y.lo and hi = min x.hi y.hi in
      let acc = if lo < hi then { lo; hi } :: acc else acc in
      if x.hi < y.hi then go a' b acc else go a b' acc
  in
  go a b []

let diff a b =
  let rec cut (s : span) b acc =
    match b with
    | [] -> List.rev (s :: acc)
    | y :: b' ->
      if y.hi <= s.lo then cut s b' acc
      else if y.lo >= s.hi then List.rev (s :: acc)
      else
        let acc = if y.lo > s.lo then { lo = s.lo; hi = y.lo } :: acc else acc in
        if y.hi < s.hi then cut { lo = y.hi; hi = s.hi } b' acc
        else List.rev acc
  in
  List.concat_map (fun s -> cut s b []) a

let length t = List.fold_left (fun acc s -> acc + (s.hi - s.lo)) 0 t
let equal (a : t) (b : t) = a = b
let mem x t = List.exists (fun s -> s.lo <= x && x < s.hi) t

let inflate d t =
  normalise (List.map (fun s -> { lo = s.lo - d; hi = s.hi + d }) t)

let complement ~lo ~hi t = diff [ { lo; hi } ] t

let pp ppf t =
  Format.fprintf ppf "@[%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf s ->
         Format.fprintf ppf "[%d,%d)" s.lo s.hi))
    t
