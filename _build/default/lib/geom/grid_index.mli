(** Uniform-grid spatial index.

    The interaction search (paper Fig 10, "check interactions") needs
    "which elements lie within distance d of this window" queries.  A
    uniform grid hash is ideal for IC layouts: geometry is dense,
    bounded, and uniformly sized. *)

type 'a t

(** [create ~cell ()] — [cell] is the bucket edge length; pick roughly
    the largest interaction distance (a few lambda). *)
val create : cell:int -> unit -> 'a t

val add : 'a t -> Rect.t -> 'a -> unit
val length : 'a t -> int

(** [query t window] — all items whose bounding box touches [window]
    (closed-set test), each exactly once, in insertion order. *)
val query : 'a t -> Rect.t -> (Rect.t * 'a) list

(** [pairs_within t d] — all unordered pairs of items whose bounding
    boxes come within Chebyshev distance [d] (inclusive), each pair
    exactly once. *)
val pairs_within : 'a t -> int -> ((Rect.t * 'a) * (Rect.t * 'a)) list

(** Left fold over all items. *)
val fold : ('acc -> Rect.t -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
