(** Boundary edges and corners of rectilinear regions.

    Edge-based checking is the alternative the paper cites to expensive
    general polygon algorithms: width and spacing measurements reduce to
    scans over facing boundary-edge pairs plus corner cases. *)

type orient = H | V

(** A maximal straight boundary segment.  For a [V] edge, [pos] is the
    x coordinate and [\[lo,hi)] the y extent; [inside = Hi] means the
    region interior lies at [x >= pos] (a left boundary).  For an [H]
    edge, [pos] is y, [\[lo,hi)] the x extent; [inside = Hi] means the
    interior lies above. *)
type side = Lo | Hi

type t = { orient : orient; pos : int; lo : int; hi : int; inside : side }

(** A grid point where the boundary turns.  [ix] and [iy] give the
    direction of the interior quadrant at a convex corner: [(1,1)] means
    the interior is to the north-east. *)
type corner = { at : Pt.t; ix : int; iy : int; convex : bool }

(** All boundary edges of a region. *)
val of_region : Region.t -> t list

(** All boundary corners of a region (convex and concave). *)
val corners : Region.t -> corner list

val length : t -> int

(** Total boundary length (perimeter). *)
val perimeter : Region.t -> int

val pp : Format.formatter -> t -> unit
