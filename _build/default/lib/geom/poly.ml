type t = { pts : Pt.t list }

let make pts =
  if List.length (List.sort_uniq Pt.compare pts) < 3 then
    invalid_arg "Poly.make: need at least three distinct vertices";
  { pts }

let vertices t = t.pts

let edges t =
  match t.pts with
  | [] -> []
  | first :: _ ->
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | [ last ] -> [ (last, first) ]
      | [] -> []
    in
    go t.pts

let signed_area2 t =
  List.fold_left
    (fun acc ((a : Pt.t), (b : Pt.t)) ->
      acc + ((a.Pt.x * b.Pt.y) - (b.Pt.x * a.Pt.y)))
    0 (edges t)

let area t = abs (signed_area2 t) / 2

let bbox t =
  match t.pts with
  | [] -> invalid_arg "Poly.bbox"
  | p :: ps ->
    List.fold_left
      (fun r (q : Pt.t) -> Rect.hull r (Rect.make q.Pt.x q.Pt.y q.Pt.x q.Pt.y))
      (Rect.make p.Pt.x p.Pt.y p.Pt.x p.Pt.y)
      ps

let is_rectilinear t =
  List.for_all
    (fun ((a : Pt.t), (b : Pt.t)) -> a.Pt.x = b.Pt.x || a.Pt.y = b.Pt.y)
    (edges t)

let to_region t =
  if not (is_rectilinear t) then None
  else
    (* Even-odd scan conversion: for each horizontal slab between
       consecutive vertex ys, the vertical edges crossing the slab,
       sorted by x and paired, give the covered x-intervals. *)
    let vedges =
      List.filter_map
        (fun ((a : Pt.t), (b : Pt.t)) ->
          if a.Pt.x = b.Pt.x && a.Pt.y <> b.Pt.y then
            Some (a.Pt.x, min a.Pt.y b.Pt.y, max a.Pt.y b.Pt.y)
          else None)
        (edges t)
    in
    let ys =
      List.concat_map (fun (_, y0, y1) -> [ y0; y1 ]) vedges |> List.sort_uniq Int.compare
    in
    let rec slabs = function
      | a :: (b :: _ as rest) ->
        let xs =
          List.filter_map (fun (x, y0, y1) -> if y0 <= a && y1 >= b then Some x else None) vedges
          |> List.sort Int.compare
        in
        let rec pair = function
          | x0 :: x1 :: more -> { Interval.lo = x0; hi = x1 } :: pair more
          | [ _ ] -> invalid_arg "Poly.to_region: unpaired edge (self-intersecting?)"
          | [] -> []
        in
        let spans = Interval.normalise (pair xs) in
        List.map
          (fun (sp : Interval.span) -> Rect.make sp.Interval.lo a sp.Interval.hi b)
          spans
        @ slabs rest
      | _ -> []
    in
    Some (Region.of_rects (slabs ys))

let translate t dx dy =
  { pts = List.map (fun (p : Pt.t) -> Pt.make (p.Pt.x + dx) (p.Pt.y + dy)) t.pts }

let transform tr t = { pts = List.map (Transform.apply_pt tr) t.pts }

let pp ppf t =
  Format.fprintf ppf "poly %a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pt.pp)
    t.pts
