(** Skeletal connectivity (paper Fig 11).

    The skeleton of an element is the element shrunk by one half of the
    minimum width of its layer.  Two elements are legally connected iff
    their skeletons touch, overlap, or one encloses the other.  If two
    elements each of legal width are skeletally connected, their union
    is of legal width — the theorem that lets the checker avoid general
    polygon machinery on connected interconnect.

    Skeletons are (possibly degenerate) rectangle lists: an element of
    exactly minimum width shrinks to a line or point, and closed-set
    intersection makes "touching skeletons" well-defined there. *)

(** [of_rect ~half r] — each axis shrinks by [half] from both sides; an
    axis narrower than [2*half] collapses to its centre line. *)
val of_rect : half:int -> Rect.t -> Rect.t

(** [connected a b] — some rectangle of [a] intersects (closed-set)
    some rectangle of [b]. *)
val connected : Rect.t list -> Rect.t list -> bool

(** [connected_rect a b] — single-rectangle convenience. *)
val connected_rect : Rect.t -> Rect.t -> bool
