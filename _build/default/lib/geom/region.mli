(** Rectilinear regions with scanline boolean algebra.

    A region is a finite union of axis-aligned rectangles, stored
    canonically as horizontal slabs: maximal y-ranges over which the
    covered x-interval set is constant.  Two regions denote the same
    point set iff they are structurally equal in this form.

    Region algebra uses half-open semantics ([\[x0,x1) x \[y0,y1)]), so
    abutting rectangles coalesce and only positive-area geometry is
    representable.  Closed-set predicates (touching, skeletal
    connectivity) live on {!Rect} values instead. *)

type t

type slab = { y0 : int; y1 : int; spans : Interval.t }

val empty : t
val is_empty : t -> bool

val of_rect : Rect.t -> t

(** [of_rects rs] — degenerate rectangles are ignored. *)
val of_rects : Rect.t list -> t

(** The canonical slab decomposition, bottom to top. *)
val slabs : t -> slab list

(** The canonical strip decomposition as rectangles (one per span per
    slab). *)
val rects : t -> Rect.t list

val area : t -> int
val bbox : t -> Rect.t option
val equal : t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [contains_pt t x y] — does the region contain the unit cell at
    [(x,y)]? *)
val contains_pt : t -> int -> int -> bool

(** [contains_rect t r] — is the (positive-area) rectangle entirely
    covered? *)
val contains_rect : t -> Rect.t -> bool

(** [intersects t r] — positive-area overlap with rectangle [r]. *)
val intersects : t -> Rect.t -> bool

(** [translate t dx dy] *)
val translate : t -> int -> int -> t

val transform : Transform.t -> t -> t

(** [expand_orth t d] is the orthogonal (L-infinity) expansion by
    [d >= 0]: every point within Chebyshev distance [d] of the region. *)
val expand_orth : t -> int -> t

(** [shrink_orth t d] is the orthogonal erosion by [d >= 0]: the points
    whose Chebyshev [d]-ball lies inside the region.  Inverse of
    expansion on convex regions; loses features narrower than [2d]. *)
val shrink_orth : t -> int -> t

(** [expand_euclid t d] is an octagonal approximation of the Euclidean
    (L2) expansion: the orthogonal expansion with its corners cut at 45
    degrees, which is exact along axes and diagonals and inscribes the
    true rounded-corner expansion.  This is the shape a 1980
    "Euclidean expand" raster implementation produces (paper Fig 3). *)
val expand_euclid : t -> int -> t

(** Euclidean erosion, dual to {!expand_euclid}. *)
val shrink_euclid : t -> int -> t

(** Number of connected components (4-connectivity of slab spans). *)
val components : t -> t list

val pp : Format.formatter -> t -> unit
