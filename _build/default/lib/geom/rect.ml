type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make a b c d =
  { x0 = min a c; y0 = min b d; x1 = max a c; y1 = max b d }

let of_center_wh ~cx ~cy ~w ~h =
  assert (w >= 0 && h >= 0);
  let x0 = cx - ((w + 1) / 2)
  and y0 = cy - ((h + 1) / 2) in
  { x0; y0; x1 = x0 + w; y1 = y0 + h }

let x0 r = r.x0
let y0 r = r.y0
let x1 r = r.x1
let y1 r = r.y1
let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let center r = Pt.make ((r.x0 + r.x1) / 2) ((r.y0 + r.y1) / 2)
let area r = width r * height r
let is_degenerate r = r.x0 = r.x1 || r.y0 = r.y1
let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1

let compare a b =
  let c = Int.compare a.x0 b.x0 in
  if c <> 0 then c
  else
    let c = Int.compare a.y0 b.y0 in
    if c <> 0 then c
    else
      let c = Int.compare a.x1 b.x1 in
      if c <> 0 then c else Int.compare a.y1 b.y1

let contains r (p : Pt.t) =
  p.Pt.x >= r.x0 && p.Pt.x <= r.x1 && p.Pt.y >= r.y0 && p.Pt.y <= r.y1

let contains_rect outer inner =
  inner.x0 >= outer.x0 && inner.y0 >= outer.y0 && inner.x1 <= outer.x1
  && inner.y1 <= outer.y1

let overlaps ~a ~b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1
let touches ~a ~b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let inter a b =
  let x0 = max a.x0 b.x0
  and y0 = max a.y0 b.y0
  and x1 = min a.x1 b.x1
  and y1 = min a.y1 b.y1 in
  if x0 <= x1 && y0 <= y1 then Some { x0; y0; x1; y1 } else None

let hull a b =
  { x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1 }

let inflate r d =
  let x0 = r.x0 - d and y0 = r.y0 - d and x1 = r.x1 + d and y1 = r.y1 + d in
  if x0 <= x1 && y0 <= y1 then Some { x0; y0; x1; y1 } else None

let translate r dx dy =
  { x0 = r.x0 + dx; y0 = r.y0 + dy; x1 = r.x1 + dx; y1 = r.y1 + dy }

let gap_x a b = max 0 (max (b.x0 - a.x1) (a.x0 - b.x1))
let gap_y a b = max 0 (max (b.y0 - a.y1) (a.y0 - b.y1))
let chebyshev_gap a b = max (gap_x a b) (gap_y a b)

let euclidean_gap2 a b =
  let dx = gap_x a b and dy = gap_y a b in
  (dx * dx) + (dy * dy)

let pp ppf r = Format.fprintf ppf "[%d,%d - %d,%d]" r.x0 r.y0 r.x1 r.y1
