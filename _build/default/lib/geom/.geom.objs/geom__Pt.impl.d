lib/geom/pt.ml: Format Int
