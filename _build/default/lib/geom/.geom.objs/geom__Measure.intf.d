lib/geom/measure.mli: Format Rect Region
