lib/geom/edges.ml: Format Fun Hashtbl List Pt Rect Region
