lib/geom/wire.ml: Format List Pt Rect Region Transform
