lib/geom/region.mli: Format Interval Rect Transform
