lib/geom/skeleton.ml: List Rect
