lib/geom/grid_index.ml: Hashtbl Int List Rect
