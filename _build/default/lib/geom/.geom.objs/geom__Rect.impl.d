lib/geom/rect.ml: Format Int Pt
