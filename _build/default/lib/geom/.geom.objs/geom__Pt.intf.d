lib/geom/pt.mli: Format
