lib/geom/measure.ml: Edges Format Interval List Pt Rect Region
