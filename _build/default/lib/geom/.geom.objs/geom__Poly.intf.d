lib/geom/poly.mli: Format Pt Rect Region Transform
