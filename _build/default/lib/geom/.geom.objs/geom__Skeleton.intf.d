lib/geom/skeleton.mli: Rect
