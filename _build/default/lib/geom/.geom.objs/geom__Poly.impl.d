lib/geom/poly.ml: Format Int Interval List Pt Rect Region Transform
