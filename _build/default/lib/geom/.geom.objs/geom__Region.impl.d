lib/geom/region.ml: Array Format Hashtbl Int Interval List Rect Transform
