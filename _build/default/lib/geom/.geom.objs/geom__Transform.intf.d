lib/geom/transform.mli: Format Pt Rect
