lib/geom/grid_index.mli: Rect
