lib/geom/rect.mli: Format Pt
