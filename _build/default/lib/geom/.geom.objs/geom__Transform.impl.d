lib/geom/transform.ml: Format List Pt Rect Stdlib
