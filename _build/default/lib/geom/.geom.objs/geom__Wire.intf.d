lib/geom/wire.mli: Format Pt Rect Region Transform
