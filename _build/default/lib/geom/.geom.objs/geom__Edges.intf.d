lib/geom/edges.mli: Format Pt Region
