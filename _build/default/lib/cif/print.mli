(** Extended-CIF printer.

    Emits the subset {!Parse} reads; [Parse.file (to_string f)] is the
    identity on well-formed files up to box representation (boxes with
    odd side lengths are emitted as polygons, because CIF boxes are
    centre-specified). *)

val element : Format.formatter -> Ast.element -> unit
val symbol : Format.formatter -> Ast.symbol -> unit
val file : Format.formatter -> Ast.file -> unit
val to_string : Ast.file -> string
