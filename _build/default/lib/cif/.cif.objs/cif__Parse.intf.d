lib/cif/parse.mli: Ast Format
