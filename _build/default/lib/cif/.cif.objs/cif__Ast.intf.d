lib/cif/ast.mli: Geom
