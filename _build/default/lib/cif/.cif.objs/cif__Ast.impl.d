lib/cif/ast.ml: Geom Hashtbl List Printf
