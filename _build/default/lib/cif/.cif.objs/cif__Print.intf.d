lib/cif/print.mli: Ast Format
