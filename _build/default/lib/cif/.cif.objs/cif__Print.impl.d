lib/cif/print.ml: Ast Format Geom List
