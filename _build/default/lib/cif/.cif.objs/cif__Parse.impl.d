lib/cif/parse.ml: Ast Buffer Char Format Geom List Printf String
