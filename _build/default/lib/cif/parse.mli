(** Extended-CIF parser.

    A hand-written recursive-descent parser for the CIF 2.0 command
    set: [B]ox, [W]ire, [P]olygon, [L]ayer, [DS]/[DF] symbol
    definitions, [C]alls with [T]/[M]/[R] transforms, nested [( )]
    comments, numeric user extensions, and the end marker [E].

    Restrictions (checked, with positioned errors):
    - rotations must be orthogonal ([R 1 0], [R 0 1], [R -1 0],
      [R 0 -1]);
    - box directions likewise;
    - [DD] (delete definition) is not supported;
    - symbol calls may not be recursive (checked by the caller via
      {!Ast.check_acyclic}). *)

type error = { offset : int; line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val string_of_error : error -> string

(** [file s] parses a complete CIF file. *)
val file : string -> (Ast.file, error) result
