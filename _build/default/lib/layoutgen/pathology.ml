type kit = {
  kit_name : string;
  figure : string;
  description : string;
  file : Cif.Ast.file;
  truths : Dic.Classify.truth list;
}

let np = Tech.Layer.to_cif Tech.Layer.Poly
let nd = Tech.Layer.to_cif Tech.Layer.Diffusion
let nm = Tech.Layer.to_cif Tech.Layer.Metal
let nc = Tech.Layer.to_cif Tech.Layer.Contact

let truth ?where families note =
  { Dic.Classify.t_families = families; t_where = where; t_note = note }

let fig2_union_illegal ~lambda =
  let l v = v * lambda in
  { kit_name = "fig2a";
    figure = "Fig 2";
    description =
      "two individually legal boxes overlap at a corner; the union has an \
       illegal diagonal neck that figure-based checking cannot see";
    file =
      Builder.file ~symbols:[]
        ~top_elements:
          [ Builder.box ~layer:np ~net:"a" (l 0) (l 0) (l 4) (l 4);
            Builder.box ~layer:np ~net:"a" (l 3) (l 3) (l 7) (l 7) ]
        ~top_calls:[] ();
    truths =
      [ truth
          ~where:(Geom.Rect.make (l 3) (l 3) (l 4) (l 4))
          [ "width"; "connection"; "short" ] "diagonal neck at the corner overlap" ] }

let fig2_figures_illegal ~lambda =
  let l v = v * lambda in
  { kit_name = "fig2b";
    figure = "Fig 2";
    description =
      "two half-width boxes butted into a legal composite; figure-based \
       checking falsely flags both (the hierarchical checker flags them too, \
       deliberately, as a Fig 15 style error)";
    file =
      Builder.file ~symbols:[]
        ~top_elements:
          [ Builder.box ~layer:np ~net:"a" (l 0) (l 0) (l 1) (l 6);
            Builder.box ~layer:np ~net:"a" (l 1) (l 0) (l 2) (l 6) ]
        ~top_calls:[] ();
    truths = [] }

let metal_comb ~lambda =
  let l v = v * lambda in
  [ Builder.box ~layer:nm ~net:"a" (l 0) (l 0) (l 10) (l 3);
    Builder.box ~layer:nm ~net:"a" (l 0) (l 0) (l 3) (l 13);
    Builder.box ~layer:nm ~net:"a" (l 5) (l 0) (l 8) (l 13) ]

let fig5_equivalent ~lambda =
  { kit_name = "fig5a";
    figure = "Fig 5";
    description =
      "electrically equivalent metal fingers 2 lambda apart: no hazard, \
       since a bridge would connect a net to itself; net-blind checkers \
       flag the gap";
    file =
      Builder.file ~symbols:[] ~top_elements:(metal_comb ~lambda) ~top_calls:[] ();
    truths = [] }

let fig5_resistor ~lambda =
  let l v = v * lambda in
  { kit_name = "fig5b";
    figure = "Fig 5";
    description =
      "the same closeness against a declared resistor body is a real \
       hazard: a bridge would shunt the resistor";
    file =
      Builder.file
        ~symbols:[ Cells.resistor ~lambda () ]
        ~top_elements:
          [ (* connection stub into the resistor's end... *)
            Builder.wire ~layer:nd ~net:"a" ~width:(l 2) [ (l 1, l 1); (l 1, l 5) ];
            (* ...and a separate parallel run 2 lambda above the body *)
            Builder.wire ~layer:nd ~width:(l 2) [ (l 1, l 5); (l 9, l 5) ] ]
        ~top_calls:[ Builder.call ~at:(0, 0) Cells.id_res ]
        ();
    truths =
      [ truth
          ~where:(Geom.Rect.make (l 0) (l 0) (l 10) (l 6))
          [ "spacing" ] "wire 2 lambda from the resistor body it feeds" ] }

(* An enhancement transistor with a contact cut dropped on its gate. *)
let bad_enh ~lambda ~id =
  let l v = v * lambda in
  Builder.symbol ~id ~name:"enhbad" ~device:"ENH"
    [ Builder.box ~layer:nd (l 0) (-l 3) (l 2) (l 5);
      Builder.box ~layer:np (-l 2) (l 0) (l 4) (l 2);
      Builder.box ~layer:nc (l 0) (l 0) (l 2) (l 2) ]
    []

let fig6_device_dependent ~lambda =
  let l v = v * lambda in
  { kit_name = "fig6";
    figure = "Fig 6";
    description =
      "the same mask construct is an error on one device and legal on \
       another: a cut over a transistor's active gate destroys it, while a \
       cut tapping a resistor body is routine (paper's bipolar example \
       mapped to the NMOS process)";
    file =
      Builder.file
        ~symbols:
          [ bad_enh ~lambda ~id:31;
            (* resistor with a legal tap: cut + metal over one end *)
            Builder.symbol ~id:32 ~name:"restap" ~device:"RES"
              [ Builder.box ~layer:nd (l 0) (l 0) (l 10) (l 2);
                Builder.box ~layer:nc (l 1) (l 0) (l 3) (l 2);
                Builder.box ~layer:nm (l 0) (-l 1) (l 4) (l 3) ]
              [] ]
        ~top_calls:
          [ Builder.call ~at:(0, 0) 31; Builder.call ~at:(l 10, 0) 32 ]
        ();
    truths =
      [ truth
          ~where:(Geom.Rect.make (l 0) (l 0) (l 2) (l 2))
          [ "device" ] "contact over the active gate" ] }

let fig7_contact_gate ~lambda =
  let l v = v * lambda in
  { kit_name = "fig7";
    figure = "Fig 7";
    description =
      "a butting contact is a legal poly-diffusion-contact stack; a contact \
       over an active gate is not.  Mask-level checkers either flag both or \
       neither";
    file =
      Builder.file
        ~symbols:[ Cells.butting ~lambda; bad_enh ~lambda ~id:31 ]
        ~top_calls:
          [ Builder.call ~at:(0, 0) Cells.id_butt;
            Builder.call ~at:(l 12, 0) 31 ]
        ();
    truths =
      [ (* device findings are reported in symbol-local coordinates *)
        truth
          ~where:(Geom.Rect.make (l 0) (l 0) (l 2) (l 2))
          [ "device" ] "contact over the active gate" ] }

let fig8_accidental ~lambda =
  let l v = v * lambda in
  { kit_name = "fig8";
    figure = "Fig 8";
    description =
      "an intentional transistor is a declared device symbol; the same \
       poly-over-diffusion crossing in open interconnect is an accidental \
       transistor.  A mask-level checker cannot tell them apart";
    file =
      Builder.file
        ~symbols:[ Cells.enh ~lambda ]
        ~top_elements:
          [ Builder.wire ~layer:nd ~width:(l 2) [ (l 12, l 1); (l 20, l 1) ];
            Builder.wire ~layer:np ~width:(l 2) [ (l 16, -l 3); (l 16, l 5) ] ]
        ~top_calls:[ Builder.call ~at:(0, 0) Cells.id_enh ]
        ();
    truths =
      [ truth
          ~where:(Geom.Rect.make (l 15) (l 0) (l 17) (l 2))
          [ "integrity" ] "accidental poly-diffusion crossing" ] }

let fig15_self_sufficiency ~lambda =
  let l v = v * lambda in
  { kit_name = "fig15";
    figure = "Fig 15";
    description =
      "half-width boxes butted into a legal composite violate symbol \
       self-sufficiency; the preferred form overlaps two full-width boxes";
    file =
      Builder.file ~symbols:[]
        ~top_elements:
          [ (* the error: butting halves *)
            Builder.box ~layer:np ~net:"a" (l 0) (l 0) (l 1) (l 6);
            Builder.box ~layer:np ~net:"a" (l 1) (l 0) (l 2) (l 6);
            (* the preferred form: overlapped legal boxes *)
            Builder.box ~layer:np ~net:"b" (l 8) (l 0) (l 10) (l 6);
            Builder.box ~layer:np ~net:"b" (l 8) (l 4) (l 10) (l 10) ]
        ~top_calls:[] ();
    truths =
      [ truth
          ~where:(Geom.Rect.make (l 0) (l 0) (l 2) (l 6))
          [ "width"; "connection"; "short" ] "butting half-width boxes" ] }

let all ~lambda =
  [ fig2_union_illegal ~lambda; fig2_figures_illegal ~lambda; fig5_equivalent ~lambda;
    fig5_resistor ~lambda; fig6_device_dependent ~lambda; fig7_contact_gate ~lambda;
    fig8_accidental ~lambda; fig15_self_sufficiency ~lambda ]
