(** Ergonomic construction of extended-CIF syntax trees.

    Coordinates are in raw layout units (use [scale] helpers or
    multiply by lambda yourself); boxes are corner-specified here, and
    converted to CIF's centre form only when printed. *)

val box : layer:string -> ?net:string -> int -> int -> int -> int -> Cif.Ast.element

(** [wire ~layer ?net ~width points] *)
val wire :
  layer:string -> ?net:string -> width:int -> (int * int) list -> Cif.Ast.element

val poly : layer:string -> ?net:string -> (int * int) list -> Cif.Ast.element

val call :
  ?at:int * int ->
  ?rot:[ `East | `North | `West | `South ] ->
  ?mirror:[ `X | `Y ] ->
  int ->
  Cif.Ast.call

val symbol :
  id:int ->
  name:string ->
  ?device:string ->
  Cif.Ast.element list ->
  Cif.Ast.call list ->
  Cif.Ast.symbol

val file :
  symbols:Cif.Ast.symbol list ->
  ?top_elements:Cif.Ast.element list ->
  top_calls:Cif.Ast.call list ->
  unit ->
  Cif.Ast.file

(** Shift every element/point of a symbol's local geometry — handy when
    deriving pathological variants. *)
val translate_element : int -> int -> Cif.Ast.element -> Cif.Ast.element
