let id_enh = 1
let id_dep = 2
let id_con = 3
let id_conp = 4
let id_burtall = 5
let id_butt = 6
let id_res = 7
let id_pad = 8
let id_bur = 9
let id_inv = 10
let pitch_x = 14
let pitch_y = 32

let nd = Tech.Layer.to_cif Tech.Layer.Diffusion
let np = Tech.Layer.to_cif Tech.Layer.Poly
let nm = Tech.Layer.to_cif Tech.Layer.Metal
let nc = Tech.Layer.to_cif Tech.Layer.Contact
let ni = Tech.Layer.to_cif Tech.Layer.Implant
let nb = Tech.Layer.to_cif Tech.Layer.Buried
let ng = Tech.Layer.to_cif Tech.Layer.Glass

(* All device geometry is stated in lambda and scaled here; [h] scales
   half-lambda quantities (implant surrounds). *)
let enh ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_enh ~name:"enh" ~device:"ENH"
    [ Builder.box ~layer:nd (l 0) (-l 3) (l 2) (l 5);
      Builder.box ~layer:np (-l 2) (l 0) (l 4) (l 2) ]
    []

let dep ~lambda =
  let l v = v * lambda in
  let h v = v * lambda / 2 in
  Builder.symbol ~id:id_dep ~name:"dep" ~device:"DEP"
    [ Builder.box ~layer:nd (l 0) (-l 3) (l 2) (l 5);
      Builder.box ~layer:np (-l 2) (l 0) (l 4) (l 2);
      Builder.box ~layer:ni (-h 3) (-h 3) (l 2 + h 3) (l 2 + h 3) ]
    []

let contact_generic ~id ~name ~landing ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id ~name ~device:"CON"
    [ Builder.box ~layer:nc (l 0) (l 0) (l 2) (l 2);
      Builder.box ~layer:landing (-l 1) (-l 1) (l 3) (l 3);
      Builder.box ~layer:nm (-l 1) (-l 1) (l 3) (l 3) ]
    []

let contact_diff ~lambda = contact_generic ~id:id_con ~name:"con" ~landing:nd ~lambda
let contact_poly ~lambda = contact_generic ~id:id_conp ~name:"conp" ~landing:np ~lambda

let buried_tall ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_burtall ~name:"burtall" ~device:"BUR"
    [ Builder.box ~layer:nd (l 0) (l 0) (l 2) (l 7);
      Builder.box ~layer:np (l 0) (l 2) (l 2) (l 6);
      Builder.box ~layer:nb (-l 2) (l 0) (l 4) (l 8) ]
    []

let butting ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_butt ~name:"butt" ~device:"BUT"
    [ Builder.box ~layer:nd (l 0) (l 0) (l 2) (l 3);
      Builder.box ~layer:np (l 0) (l 2) (l 2) (l 5);
      Builder.box ~layer:nc (l 0) (l 1) (l 2) (l 4);
      Builder.box ~layer:nm (-l 1) (l 0) (l 3) (l 5) ]
    []

let resistor ?(len = 10) ~lambda () =
  let l v = v * lambda in
  Builder.symbol ~id:id_res ~name:"res" ~device:"RES"
    [ Builder.box ~layer:nd (l 0) (l 0) (l len) (l 2) ]
    []

let pad ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_pad ~name:"pad" ~device:"PAD"
    [ Builder.box ~layer:nm (l 0) (l 0) (l 12) (l 12);
      Builder.box ~layer:ng (l 2) (l 2) (l 10) (l 10) ]
    []

let buried ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_bur ~name:"bur" ~device:"BUR"
    [ Builder.box ~layer:nd (l 0) (l 0) (l 2) (l 4);
      Builder.box ~layer:np (l 0) (l 2) (l 2) (l 6);
      Builder.box ~layer:nb (-l 2) (l 0) (l 4) (l 6) ]
    []

(* The inverter.  See cells.mli for the floor plan; all joints overlap
   by at least 2 lambda so skeletons touch, and all unrelated geometry
   keeps the Fig 12 spacings. *)
let inverter ~lambda =
  let l v = v * lambda in
  let h v = v * lambda / 2 in
  Builder.symbol ~id:id_inv ~name:"inv"
    [ (* supply rails; length = pitch + 3 so abutting cells overlap by
         a full metal width and the rail skeletons touch *)
      Builder.box ~layer:nm ~net:"GND!" (l 0) (l 0) (l (pitch_x + 3)) (l 3);
      Builder.box ~layer:nm ~net:"VDD!" (l 0) (l 25) (l (pitch_x + 3)) (l 28);
      (* input: poly at the left edge, y = 8 *)
      Builder.wire ~layer:np ~net:"in" ~width:(l 2) [ (l 0, l 8); (l 4, l 8) ];
      (* gate tie: output poly up and around into the pull-up gate *)
      Builder.wire ~layer:np ~net:"out" ~width:(l 2)
        [ (l 6, l 15); (l 2, l 15); (l 2, l 19); (l 4, l 19) ];
      (* output: poly to the right edge, dropping to y = 8; it reaches
         one lambda past the pitch so the next cell's input centreline
         overlaps it *)
      Builder.wire ~layer:np ~net:"out" ~width:(l 2)
        [ (l 6, l 15); (l 12, l 15); (l 12, l 8); (l (pitch_x + 1), l 8) ];
      (* supply stubs in metal *)
      Builder.wire ~layer:nm ~width:(l 3) [ (l 6, l 4); (l 6, h 3) ];
      Builder.wire ~layer:nm ~width:(l 3) [ (l 6, l 23); (l 6, h 53) ] ]
    [ Builder.call ~at:(l 5, l 7) id_enh;
      Builder.call ~at:(l 5, l 18) id_dep;
      Builder.call ~at:(l 5, l 10) id_burtall;
      Builder.call ~at:(l 5, l 3) id_con;
      Builder.call ~at:(l 5, l 22) id_con ]

let device_symbols ~lambda =
  [ enh ~lambda; dep ~lambda; contact_diff ~lambda; contact_poly ~lambda;
    buried_tall ~lambda; butting ~lambda; resistor ~lambda (); pad ~lambda;
    buried ~lambda ]

let inverter_symbols ~lambda =
  [ enh ~lambda; dep ~lambda; contact_diff ~lambda; buried_tall ~lambda;
    inverter ~lambda ]

let chain ~lambda n =
  let calls =
    List.init n (fun i -> Builder.call ~at:(i * pitch_x * lambda, 0) id_inv)
  in
  Builder.file ~symbols:(inverter_symbols ~lambda) ~top_calls:calls ()

let grid ~lambda ~nx ~ny =
  let calls =
    List.concat_map
      (fun j ->
        List.init nx (fun i ->
            Builder.call ~at:(i * pitch_x * lambda, j * pitch_y * lambda) id_inv))
      (List.init ny Fun.id)
  in
  Builder.file ~symbols:(inverter_symbols ~lambda) ~top_calls:calls ()

let grid_blocks ~lambda ~nx ~ny =
  (* Row symbol (100): nx cells.  Block symbol (101): 4 rows (or fewer).
     Top: blocks stacked — a chip / block / row / cell / device
     hierarchy, five levels deep counting devices. *)
  let row =
    Builder.symbol ~id:100 ~name:"row" []
      (List.init nx (fun i -> Builder.call ~at:(i * pitch_x * lambda, 0) id_inv))
  in
  let rows_per_block = min 4 ny in
  let block =
    Builder.symbol ~id:101 ~name:"block" []
      (List.init rows_per_block (fun j ->
           Builder.call ~at:(0, j * pitch_y * lambda) 100))
  in
  let n_blocks = (ny + rows_per_block - 1) / rows_per_block in
  let top_calls =
    List.init n_blocks (fun b ->
        Builder.call ~at:(0, b * rows_per_block * pitch_y * lambda) 101)
  in
  Builder.file
    ~symbols:(inverter_symbols ~lambda @ [ row; block ])
    ~top_calls ()
