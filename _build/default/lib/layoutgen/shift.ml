let id_pass1 = 11
let id_burh = 12
let id_enhh = 13
let id_pass2 = 15
let id_sbit = 16

let nd = Tech.Layer.to_cif Tech.Layer.Diffusion
let np = Tech.Layer.to_cif Tech.Layer.Poly
let nb = Tech.Layer.to_cif Tech.Layer.Buried

(* Pass gate span: input wire reaches x = -4, output wire reaches
   x = 19 (one lambda into the following inverter's input); the
   inverter then occupies 17..17+14.  One bit is two of each. *)
let stage_pitch = 17 + Cells.pitch_x
let bit_pitch = 2 * stage_pitch

(* Horizontal buried contact: poly enters from the left, diffusion
   leaves to the right; the buried window surrounds the tie by 2
   lambda. *)
let bur_h ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_burh ~name:"burh" ~device:"BUR"
    [ Builder.box ~layer:np (-l 2) (l 0) (l 2) (l 2);
      Builder.box ~layer:nd (l 0) (l 0) (l 4) (l 2);
      Builder.box ~layer:nb (-l 2) (-l 2) (l 4) (l 4) ]
    []

(* Horizontal-flow enhancement transistor: diffusion runs left-right,
   poly crosses vertically. *)
let enh_h ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_enhh ~name:"enhh" ~device:"ENH"
    [ Builder.box ~layer:nd (-l 3) (l 0) (l 5) (l 2);
      Builder.box ~layer:np (l 0) (-l 2) (l 2) (l 4) ]
    []

(* The pass gate: signal track at y = 7..9 (centreline y = 8, matching
   the inverter's input height), clock poly rising from the gate. *)
let passgate ~lambda ~id ~clock =
  let l v = v * lambda in
  Builder.symbol ~id ~name:("pass_" ^ clock)
    [ (* signal in: poly to the first buried contact *)
      Builder.wire ~layer:np ~width:(l 2) [ (-l 3, l 8); (l 0, l 8) ];
      (* signal out: poly reaching one lambda past the stage edge so the
         next cell's input overlaps it *)
      Builder.wire ~layer:np ~net:"q" ~width:(l 2) [ (l 13, l 8); (l 18, l 8) ];
      (* the clock line, rising from the pass gate *)
      Builder.wire ~layer:np ~net:(clock ^ "!") ~width:(l 2)
        [ (l 6, l 10); (l 6, l 19) ] ]
    [ Builder.call ~at:(l 0, l 7) id_burh;
      Builder.call ~at:(l 5, l 7) id_enhh;
      Builder.call ~at:(l 12, l 7) ~mirror:`X id_burh ]

let shift_bit ~lambda =
  let l v = v * lambda in
  Builder.symbol ~id:id_sbit ~name:"sbit"
    []
    [ Builder.call ~at:(l 0, l 0) id_pass1;
      Builder.call ~at:(l 17, l 0) Cells.id_inv;
      Builder.call ~at:(l stage_pitch, l 0) id_pass2;
      Builder.call ~at:(l (stage_pitch + 17), l 0) Cells.id_inv ]

let register ~lambda n =
  let symbols =
    [ Cells.enh ~lambda; Cells.dep ~lambda; Cells.contact_diff ~lambda;
      Cells.buried_tall ~lambda; Cells.inverter ~lambda; bur_h ~lambda;
      enh_h ~lambda;
      passgate ~lambda ~id:id_pass1 ~clock:"PHI1";
      passgate ~lambda ~id:id_pass2 ~clock:"PHI2";
      shift_bit ~lambda ]
  in
  let calls = List.init n (fun i -> Builder.call ~at:(i * bit_pitch * lambda, 0) id_sbit) in
  Builder.file ~symbols ~top_calls:calls ()
