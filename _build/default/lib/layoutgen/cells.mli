(** An NMOS cell library in extended CIF, Mead & Conway style.

    Every device is an explicitly declared primitive symbol (the
    paper's structured-design requirement); composite cells wire device
    instances together with interconnect whose skeletal connections are
    by construction legal: geometry overlaps by at least the layer
    minimum width at every joint.

    Symbol id map (fixed):
    - 1 [enh]: enhancement transistor, vertical current flow.  Gate
      (0,0)-(2,2) lambda; diffusion (0,-3)-(2,5); poly (-2,0)-(4,2).
    - 2 [dep]: depletion transistor, ditto plus implant.
    - 3 [con]: metal-diffusion contact.  Cut (0,0)-(2,2); diffusion
      and metal (-1,-1)-(3,3).
    - 4 [conp]: metal-poly contact.
    - 5 [burtall]: buried contact with an elongated diffusion tail
      ((0,0)-(2,7)) used to bridge pull-down drain to pull-up source.
    - 6 [butt]: butting contact.
    - 7 [res]: diffused resistor (parameter [res_len], default 10
      lambda).
    - 8 [pad]: bonding pad.
    - 9 [bur]: standard buried contact.
    - 10 [inv]: an inverter: enhancement pull-down, depletion pull-up,
      buried gate tie, supply contacts and rails.  Input arrives at the
      left edge at y = 8 lambda; the output is presented at the right
      edge at y = 8 lambda so that cells abut at {!pitch_x} into a
      chain with no extra wiring.

    All dimensions scale with [lambda]. *)

val id_enh : int
val id_dep : int
val id_con : int
val id_conp : int
val id_burtall : int
val id_butt : int
val id_res : int
val id_pad : int
val id_bur : int
val id_inv : int

(** Horizontal abutment pitch of the inverter, in lambda (14). *)
val pitch_x : int

(** Vertical row pitch, in lambda (32). *)
val pitch_y : int

val enh : lambda:int -> Cif.Ast.symbol
val dep : lambda:int -> Cif.Ast.symbol
val contact_diff : lambda:int -> Cif.Ast.symbol
val contact_poly : lambda:int -> Cif.Ast.symbol
val buried_tall : lambda:int -> Cif.Ast.symbol
val butting : lambda:int -> Cif.Ast.symbol
val resistor : ?len:int -> lambda:int -> unit -> Cif.Ast.symbol
val pad : lambda:int -> Cif.Ast.symbol
val buried : lambda:int -> Cif.Ast.symbol
val inverter : lambda:int -> Cif.Ast.symbol

(** All device symbols (ids 1-9). *)
val device_symbols : lambda:int -> Cif.Ast.symbol list

(** [chain ~lambda n] — [n] inverters abutted into a chain at the top
    level. *)
val chain : lambda:int -> int -> Cif.Ast.file

(** [grid ~lambda ~nx ~ny] — [ny] independent rows of [nx]-inverter
    chains: the scaling workload for the runtime benches. *)
val grid : lambda:int -> nx:int -> ny:int -> Cif.Ast.file

(** [grid_blocks ~lambda ~nx ~ny ~bx ~by] — same array but composed
    hierarchically: a row symbol of [nx] cells, a block symbol of [by]
    rows, blocks stacked — a 4-level hierarchy exercising Fig 9. *)
val grid_blocks : lambda:int -> nx:int -> ny:int -> Cif.Ast.file
