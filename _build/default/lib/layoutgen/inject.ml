type t = {
  label : string;
  truth : Dic.Classify.truth;
  overlay : Cif.Ast.element list;
}

let np = Tech.Layer.to_cif Tech.Layer.Poly
let nd = Tech.Layer.to_cif Tech.Layer.Diffusion
let nm = Tech.Layer.to_cif Tech.Layer.Metal

let bbox_of elements =
  match List.map Cif.Ast.element_bbox elements with
  | [] -> invalid_arg "Inject: empty overlay"
  | r :: rs -> List.fold_left Geom.Rect.hull r rs

let make ~label ~families overlay =
  { label;
    truth =
      { Dic.Classify.t_families = families;
        t_where = Some (bbox_of overlay);
        t_note = label };
    overlay }

let narrow_poly_wire ~lambda ~at:(x, y) =
  make ~label:"narrow poly wire" ~families:[ "width" ]
    [ Builder.wire ~layer:np ~width:lambda [ (x, y); (x + (6 * lambda), y) ] ]

let spacing_pair layer ~lambda ~at:(x, y) =
  make ~label:("close " ^ layer ^ " pair") ~families:[ "spacing" ]
    [ Builder.box ~layer x y (x + (4 * lambda)) (y + (4 * lambda));
      Builder.box ~layer
        (x + (6 * lambda))
        y
        (x + (10 * lambda))
        (y + (4 * lambda)) ]

let metal_spacing_pair = spacing_pair nm
let diff_spacing_pair = spacing_pair nd

let accidental_crossing ~lambda ~at:(x, y) =
  make ~label:"accidental transistor" ~families:[ "integrity" ]
    [ Builder.wire ~layer:nd ~width:(2 * lambda)
        [ (x, y); (x + (8 * lambda), y) ];
      Builder.wire ~layer:np ~width:(2 * lambda)
        [ (x + (4 * lambda), y - (4 * lambda));
          (x + (4 * lambda), y + (4 * lambda)) ] ]

let supply_short ~lambda ~cell_origin:(cx, cy) =
  (* The strap runs at the cell's left margin (x in [0.5, 3.5] lambda of
     the cell), clear of the 4.5..7.5 metal stub column, from below the
     GND rail to the top of the VDD rail. *)
  let x0 = cx + (lambda / 2) and x1 = cx + (7 * lambda / 2) in
  (* Only the electrical stage can see this one: the strap is legal
     geometry, and it silently merges the two nets, so no geometric
     family may claim the credit. *)
  { label = "VDD-GND strap";
    truth =
      { Dic.Classify.t_families = [ "erc" ]; t_where = None;
        t_note = "VDD-GND strap" };
    overlay = [ Builder.box ~layer:nm x0 cy x1 (cy + (28 * lambda)) ] }

let butting_halves ~lambda ~at:(x, y) =
  make ~label:"butting half-width boxes" ~families:[ "width"; "connection"; "short" ]
    [ Builder.box ~layer:np x y (x + lambda) (y + (6 * lambda));
      Builder.box ~layer:np (x + lambda) y (x + (2 * lambda)) (y + (6 * lambda)) ]

let standard_batch ~lambda ~at:(x, y) ~step =
  [ narrow_poly_wire ~lambda ~at:(x, y);
    metal_spacing_pair ~lambda ~at:(x, y + step);
    diff_spacing_pair ~lambda ~at:(x, y + (2 * step));
    accidental_crossing ~lambda ~at:(x, y + (3 * step) + (4 * lambda)) ]

let apply (file : Cif.Ast.file) injections =
  let overlay = List.concat_map (fun i -> i.overlay) injections in
  ( { file with Cif.Ast.top_elements = file.Cif.Ast.top_elements @ overlay },
    List.map (fun i -> i.truth) injections )
