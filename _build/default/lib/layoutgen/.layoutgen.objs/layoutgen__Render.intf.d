lib/layoutgen/render.mli: Cif Dic Geom Tech
