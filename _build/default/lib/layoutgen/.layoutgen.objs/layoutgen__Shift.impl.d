lib/layoutgen/shift.ml: Builder Cells List Tech
