lib/layoutgen/builder.mli: Cif
