lib/layoutgen/inject.mli: Cif Dic
