lib/layoutgen/shift.mli: Cif
