lib/layoutgen/pla.mli: Cif
