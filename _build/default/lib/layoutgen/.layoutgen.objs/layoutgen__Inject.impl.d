lib/layoutgen/inject.ml: Builder Cif Dic Geom List Tech
