lib/layoutgen/render.ml: Array Buffer Cif Dic Geom Hashtbl List Tech
