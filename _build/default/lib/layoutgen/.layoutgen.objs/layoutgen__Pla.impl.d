lib/layoutgen/pla.ml: Array Builder Cells List Printf Tech
