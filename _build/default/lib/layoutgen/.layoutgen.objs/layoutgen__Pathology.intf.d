lib/layoutgen/pathology.mli: Cif Dic
