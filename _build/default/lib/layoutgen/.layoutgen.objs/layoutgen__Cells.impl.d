lib/layoutgen/cells.ml: Builder Fun List Tech
