lib/layoutgen/builder.ml: Cif Geom List
