lib/layoutgen/pathology.ml: Builder Cells Cif Dic Geom Tech
