lib/layoutgen/cells.mli: Cif
