(** A two-phase NMOS dynamic shift register.

    Each bit is pass(PHI1) -> inverter -> pass(PHI2) -> inverter; the
    pass transistors conduct through diffusion, entered and left
    through buried contacts (poly-diffusion ties), with the clock in
    poly crossing the diffusion track — the canonical Mead & Conway
    dynamic register.  Clocks are global nets ([PHI1!], [PHI2!]) that
    merge by name across bits.

    Extra symbol ids (on top of {!Cells}):
    - 12 [burh]: horizontal buried contact (poly left, diffusion right),
    - 13 [enhh]: horizontal-flow enhancement transistor,
    - 11/15 [pass1]/[pass2]: pass gates clocked by PHI1/PHI2,
    - 16 [sbit]: one shift-register bit (two pass gates, two inverters). *)

val id_pass1 : int
val id_burh : int
val id_enhh : int
val id_pass2 : int
val id_sbit : int

(** Horizontal abutment pitch of one bit, in lambda. *)
val bit_pitch : int

val bur_h : lambda:int -> Cif.Ast.symbol
val enh_h : lambda:int -> Cif.Ast.symbol
val passgate : lambda:int -> id:int -> clock:string -> Cif.Ast.symbol
val shift_bit : lambda:int -> Cif.Ast.symbol

(** [register ~lambda n] — an [n]-bit shift register at the top level. *)
val register : lambda:int -> int -> Cif.Ast.file
