let layer_char = function
  | Tech.Layer.Diffusion -> '+'
  | Tech.Layer.Poly -> '#'
  | Tech.Layer.Metal -> '='
  | Tech.Layer.Contact -> 'X'
  | Tech.Layer.Implant -> ':'
  | Tech.Layer.Buried -> 'o'
  | Tech.Layer.Glass -> 'g'

(* Render priority: later entries overwrite earlier ones. *)
let priority =
  [ Tech.Layer.Glass; Tech.Layer.Buried; Tech.Layer.Implant; Tech.Layer.Diffusion;
    Tech.Layer.Poly; Tech.Layer.Metal; Tech.Layer.Contact ]

let draw ~cell layers =
  let boxes = List.concat_map (fun (_, rs) -> rs) layers in
  match boxes with
  | [] -> "(empty)\n"
  | r :: rs ->
    let bb = List.fold_left Geom.Rect.hull r rs in
    let x0 = Geom.Rect.x0 bb and y0 = Geom.Rect.y0 bb in
    let w = ((Geom.Rect.width bb + cell - 1) / cell) + 1
    and h = ((Geom.Rect.height bb + cell - 1) / cell) + 1 in
    if w > 400 || h > 400 then "(too large to render)\n"
    else begin
      let grid = Array.make_matrix h w '.' in
      List.iter
        (fun (ch, rects) ->
          List.iter
            (fun r ->
              let cx0 = (Geom.Rect.x0 r - x0) / cell
              and cy0 = (Geom.Rect.y0 r - y0) / cell
              and cx1 = (Geom.Rect.x1 r - x0 - 1) / cell
              and cy1 = (Geom.Rect.y1 r - y0 - 1) / cell in
              for y = max 0 cy0 to min (h - 1) cy1 do
                for x = max 0 cx0 to min (w - 1) cx1 do
                  grid.(y).(x) <- ch
                done
              done)
            rects)
        layers;
      let buf = Buffer.create (h * (w + 1)) in
      for y = h - 1 downto 0 do
        for x = 0 to w - 1 do
          Buffer.add_char buf grid.(y).(x)
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.contents buf
    end

let collect_symbol model (s : Dic.Model.symbol) =
  (* Instantiate the symbol's full content into per-layer rect lists. *)
  let acc = Hashtbl.create 8 in
  let add layer rects =
    let cur = try Hashtbl.find acc layer with Not_found -> [] in
    Hashtbl.replace acc layer (rects @ cur)
  in
  let rec go tr (sym : Dic.Model.symbol) =
    List.iter
      (fun (e : Dic.Model.element) ->
        add e.Dic.Model.layer (List.map (Geom.Transform.apply_rect tr) e.Dic.Model.rects))
      sym.Dic.Model.elements;
    List.iter
      (fun (c : Dic.Model.call) ->
        go (Geom.Transform.compose tr c.Dic.Model.transform)
          (Dic.Model.find model c.Dic.Model.callee))
      sym.Dic.Model.calls
  in
  go Geom.Transform.identity s;
  List.filter_map
    (fun layer ->
      match Hashtbl.find_opt acc layer with
      | Some rects -> Some (layer_char layer, rects)
      | None -> None)
    priority

let model_symbol ?cell (model : Dic.Model.t) symbol =
  let cell = match cell with Some c -> c | None -> max 1 (model.Dic.Model.rules.Tech.Rules.lambda / 2) in
  draw ~cell (collect_symbol model symbol)

let file ?cell rules (f : Cif.Ast.file) =
  match Dic.Model.elaborate rules f with
  | Error msg -> "(elaboration failed: " ^ msg ^ ")\n"
  | Ok (model, _) ->
    let cell = match cell with Some c -> c | None -> max 1 (rules.Tech.Rules.lambda / 2) in
    draw ~cell (collect_symbol model model.Dic.Model.root)

let regions ?(cell = 50) layers =
  draw ~cell (List.map (fun (ch, r) -> (ch, Geom.Region.rects r)) layers)
