(** Ground-truth error injection.

    Each injector yields top-level overlay geometry that *really*
    violates a rule, together with a {!Dic.Classify.truth} journal
    entry.  Benches drop injections into a clean design and measure
    which checker finds what — the experimental protocol behind the
    paper's Fig 1 regions. *)

type t = {
  label : string;
  truth : Dic.Classify.truth;
  overlay : Cif.Ast.element list;
}

(** A 1-lambda poly wire (half the legal width). *)
val narrow_poly_wire : lambda:int -> at:int * int -> t

(** Two metal boxes 2 lambda apart (3 required). *)
val metal_spacing_pair : lambda:int -> at:int * int -> t

(** Two diffusion boxes 2 lambda apart (3 required). *)
val diff_spacing_pair : lambda:int -> at:int * int -> t

(** A poly wire crossing a diffusion wire in open interconnect — the
    accidental transistor of paper Fig 8. *)
val accidental_crossing : lambda:int -> at:int * int -> t

(** A metal strap shorting a cell's GND rail to its VDD rail.
    [cell_origin] is the cell's placement; the strap runs up its left
    margin.  Only a net-aware checker can see this one. *)
val supply_short : lambda:int -> cell_origin:int * int -> t

(** Two half-width boxes butted to form a legal composite — paper
    Fig 15's self-sufficiency violation. *)
val butting_halves : lambda:int -> at:int * int -> t

(** The standard mixed batch used by the Fig 1 benches: one of each
    geometric defect, spread vertically starting at [at] with [step]
    vertical spacing. *)
val standard_batch : lambda:int -> at:int * int -> step:int -> t list

(** Apply injections to a file (overlay elements are appended at top
    level). *)
val apply : Cif.Ast.file -> t list -> Cif.Ast.file * Dic.Classify.truth list
