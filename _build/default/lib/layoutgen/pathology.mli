(** Pathology kits — one per figure of the paper that illustrates a
    checker failure mode.  Each kit is a tiny self-contained design
    plus the expected behaviour, used by the per-figure benches and the
    [pathologies] example. *)

type kit = {
  kit_name : string;  (** e.g. "fig2a" *)
  figure : string;  (** "Fig 2" *)
  description : string;
  file : Cif.Ast.file;
  truths : Dic.Classify.truth list;  (** real defects present (may be none) *)
}

(** Fig 2 left: two individually legal boxes whose union has an illegal
    diagonal neck — figure-based checking misses it. *)
val fig2_union_illegal : lambda:int -> kit

(** Fig 2 right: two half-width boxes whose union is a legal box —
    figure-based checking falsely flags both. *)
val fig2_figures_illegal : lambda:int -> kit

(** Fig 5a: electrically equivalent metal fingers closer than the
    spacing rule — no real defect; net-blind checkers flag it. *)
val fig5_equivalent : lambda:int -> kit

(** Fig 5b: the same geometry, but the fingers shunt a declared
    resistor — now the closeness is a real defect. *)
val fig5_resistor : lambda:int -> kit

(** Fig 6: device-dependent rules — a contact landing on a transistor's
    active gate (error) and the same contact landing on a plain
    interconnect crossing pad (legal). *)
val fig6_device_dependent : lambda:int -> kit

(** Fig 7: a legal butting contact next to a transistor with a contact
    over its gate (the latter is the only defect). *)
val fig7_contact_gate : lambda:int -> kit

(** Fig 8: an intentional transistor (declared) and an accidental
    crossing (undeclared) — only the latter is a defect. *)
val fig8_accidental : lambda:int -> kit

(** Fig 15: butting half-width boxes (error) and the preferred
    overlapped legal boxes (clean). *)
val fig15_self_sufficiency : lambda:int -> kit

val all : lambda:int -> kit list
