(** ASCII rendering of layouts — the 1980 line-printer check plot.

    One character per grid cell, layers stacked in priority order
    (contact cuts over metal over poly over diffusion over the modifier
    masks).  Useful for eyeballing generated cells and violation
    neighbourhoods in a terminal. *)

(** Character used for each layer. *)
val layer_char : Tech.Layer.t -> char

(** [model_symbol ?cell model symbol] renders one symbol definition
    with its calls instantiated (the full picture of a cell).  [cell]
    is the grid pitch per character (default: half the rule lambda). *)
val model_symbol : ?cell:int -> Dic.Model.t -> Dic.Model.symbol -> string

(** [file ?cell rules f] parses nothing: renders the fully instantiated
    file. *)
val file : ?cell:int -> Tech.Rules.t -> Cif.Ast.file -> string

(** [regions ?cell layers] renders labelled regions with given
    characters, first match wins. *)
val regions : ?cell:int -> (char * Geom.Region.t) list -> string
