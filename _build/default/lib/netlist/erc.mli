(** Non-geometric construction rules (the paper's list, verbatim):

    1. A net must have at least two "devices" on it.
    2. Power and ground must not be shorted.
    3. A "bus" may not connect to power or ground.
    4. A depletion device may not connect to ground.

    "Net list generation and non-geometric design verification have a
    lot in common with DRC and should appropriately be handled by a
    single program" — these checks run as the last stage of the
    checker's pipeline, over the net list stage 5 produced. *)

type violation =
  | Floating_net of { net : string; terminals : int }
      (** rule 1: fewer than two device terminals *)
  | Supply_short of { net : string; names : string list }
      (** rule 2: one net carries both power and ground labels *)
  | Bus_on_supply of { net : string; names : string list }
      (** rule 3 *)
  | Depletion_on_ground of { net : string; device_path : string; port : string }
      (** rule 4 *)

val pp_violation : Format.formatter -> violation -> unit

(** [check netlist] runs all four rules.  Supply nets themselves are
    exempt from rule 1 (power rails legitimately feed any number of
    devices, including just one in a test structure). *)
val check : Net.t -> violation list
