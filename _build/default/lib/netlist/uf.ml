type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable n : int;
}

let create () = { parent = Array.make 16 0; rank = Array.make 16 0; n = 0 }

let grow t =
  let cap = Array.length t.parent in
  if t.n >= cap then begin
    let parent = Array.make (2 * cap) 0 and rank = Array.make (2 * cap) 0 in
    Array.blit t.parent 0 parent 0 cap;
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

let make t =
  grow t;
  let id = t.n in
  t.parent.(id) <- id;
  t.n <- t.n + 1;
  id

let size t = t.n

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end

let same t i j = find t i = find t j

let classes t =
  let groups = Hashtbl.create 16 in
  for i = t.n - 1 downto 0 do
    let root = find t i in
    let cur = try Hashtbl.find groups root with Not_found -> [] in
    Hashtbl.replace groups root (i :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) groups []
  |> List.sort (fun a b -> Stdlib.compare a b)
