(** Union-find with path compression and union by rank.

    The connectivity workhorse behind net-list generation: elements
    found skeletally connected are unioned; the resulting classes are
    the nets. *)

type t

val create : unit -> t

(** [make t] allocates a fresh node. *)
val make : t -> int

val size : t -> int
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** Groups of node ids, one list per class, each sorted ascending. *)
val classes : t -> int list list
