lib/netlist/net.ml: Format Hashtbl List Option Printf Stdlib String Tech Uf
