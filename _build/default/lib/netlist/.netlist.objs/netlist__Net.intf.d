lib/netlist/net.mli: Format Tech
