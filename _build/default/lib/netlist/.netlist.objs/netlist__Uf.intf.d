lib/netlist/uf.mli:
