lib/netlist/erc.mli: Format Net
