lib/netlist/uf.ml: Array Hashtbl List Stdlib
