lib/netlist/erc.ml: Format List Net String Tech
