type terminal = {
  device_path : string;
  device : Tech.Device.kind;
  port : string;
}

type net = {
  names : string list;
  auto_name : string;
  classes : Tech.Netclass.t list;
  terminals : terminal list;
  element_count : int;
}

type t = { nets : net list }

let display_name n = match n.names with name :: _ -> name | [] -> n.auto_name
let has_class n c = List.exists (Tech.Netclass.equal c) n.classes

let find_by_name t name =
  List.find_opt (fun n -> List.mem name n.names || n.auto_name = name) t.nets

let pp_net ppf n =
  Format.fprintf ppf "%s: %d element(s), %d terminal(s)%s" (display_name n)
    n.element_count (List.length n.terminals)
    (match n.classes with
    | [] -> ""
    | cs -> " [" ^ String.concat "," (List.map Tech.Netclass.to_string cs) ^ "]")

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_net) t.nets

type builder = {
  uf : Uf.t;
  labels : (int, string) Hashtbl.t;  (** node -> explicit label *)
  terminals : (int, terminal) Hashtbl.t;  (** node -> terminals (multi) *)
  elements : (int, unit) Hashtbl.t;  (** node -> element marks (multi) *)
}

let builder () =
  { uf = Uf.create ();
    labels = Hashtbl.create 64;
    terminals = Hashtbl.create 64;
    elements = Hashtbl.create 64 }

let node b ~label =
  let id = Uf.make b.uf in
  (match label with None -> () | Some l -> Hashtbl.add b.labels id l);
  id

let connect b i j = Uf.union b.uf i j
let connected b i j = Uf.same b.uf i j
let add_terminal b i t = Hashtbl.add b.terminals i t
let add_element b i = Hashtbl.add b.elements i ()

let is_global name = String.length name > 0 && name.[String.length name - 1] = '!'

let merge_globals b =
  let by_name = Hashtbl.create 16 in
  Hashtbl.iter
    (fun node label ->
      if is_global label then
        match Hashtbl.find_opt by_name label with
        | Some first -> Uf.union b.uf first node
        | None -> Hashtbl.add by_name label node)
    b.labels

let finish b ~auto_prefix =
  let classes_of names =
    List.sort_uniq Stdlib.compare (List.map Tech.Netclass.classify names)
    |> List.filter (fun c -> not (Tech.Netclass.equal c Tech.Netclass.Signal))
  in
  let nets =
    Uf.classes b.uf
    |> List.mapi (fun i members ->
           let names =
             List.concat_map
               (fun m -> Option.to_list (Hashtbl.find_opt b.labels m))
               members
             |> List.sort_uniq String.compare
           in
           let terminals =
             List.concat_map (fun m -> Hashtbl.find_all b.terminals m) members
           in
           let element_count =
             List.fold_left
               (fun acc m -> acc + List.length (Hashtbl.find_all b.elements m))
               0 members
           in
           { names;
             auto_name = Printf.sprintf "%sn%d" auto_prefix i;
             classes = classes_of names;
             terminals;
             element_count })
  in
  { nets }
