type violation =
  | Floating_net of { net : string; terminals : int }
  | Supply_short of { net : string; names : string list }
  | Bus_on_supply of { net : string; names : string list }
  | Depletion_on_ground of { net : string; device_path : string; port : string }

let pp_violation ppf = function
  | Floating_net { net; terminals } ->
    Format.fprintf ppf "net %s has %d device terminal(s); at least two required" net
      terminals
  | Supply_short { net; names } ->
    Format.fprintf ppf "power and ground shorted on net %s (labels: %s)" net
      (String.concat ", " names)
  | Bus_on_supply { net; names } ->
    Format.fprintf ppf "bus connected to a supply on net %s (labels: %s)" net
      (String.concat ", " names)
  | Depletion_on_ground { net; device_path; port } ->
    Format.fprintf ppf "depletion device %s (%s) connected to ground net %s" device_path
      port net

(* For the two-device rule, contacts are wiring, not devices; count
   only functional devices (transistors, resistors, pads). *)
let is_functional = function
  | Tech.Device.Enhancement | Tech.Device.Depletion | Tech.Device.Resistor
  | Tech.Device.Pad ->
    true
  | Tech.Device.Contact_cut | Tech.Device.Butting_contact | Tech.Device.Buried_contact
  | Tech.Device.Checked ->
    false

let check (t : Net.t) =
  List.concat_map
    (fun (n : Net.net) ->
      let name = Net.display_name n in
      let power = Net.has_class n Tech.Netclass.Power
      and ground = Net.has_class n Tech.Netclass.Ground
      and bus = Net.has_class n Tech.Netclass.Bus in
      let functional =
        List.filter (fun (t : Net.terminal) -> is_functional t.Net.device) n.Net.terminals
      in
      let floating =
        if (not power) && (not ground) && List.length functional < 2 then
          [ Floating_net { net = name; terminals = List.length functional } ]
        else []
      in
      let short =
        if power && ground then [ Supply_short { net = name; names = n.Net.names } ]
        else []
      in
      let bus_supply =
        if bus && (power || ground) then
          [ Bus_on_supply { net = name; names = n.Net.names } ]
        else []
      in
      let depletion =
        if ground then
          List.filter_map
            (fun (term : Net.terminal) ->
              if Tech.Device.equal term.Net.device Tech.Device.Depletion then
                Some
                  (Depletion_on_ground
                     { net = name;
                       device_path = term.Net.device_path;
                       port = term.Net.port })
              else None)
            n.Net.terminals
        else []
      in
      floating @ short @ bus_supply @ depletion)
    t.Net.nets
