(** The hierarchical net list (paper Fig 10, "generate hierarchical net
    list").

    Each element in the design gets a unique net identifier using dot
    notation to reference elements of an instance from a higher level:
    [a.b] is element (or net) [b] inside instance [a].  Explicitly
    labelled nets keep their labels; global nets (CIF convention:
    trailing [!]) merge across the hierarchy by name. *)

type terminal = {
  device_path : string;  (** instance path of the device, dot notation *)
  device : Tech.Device.kind;
  port : string;  (** e.g. "gate", "sd1", "via" *)
}

type net = {
  names : string list;
      (** explicit labels merged into this net (empty for anonymous
          nets), sorted *)
  auto_name : string;  (** generated dot-notation identifier *)
  classes : Tech.Netclass.t list;  (** distinct classes of [names] *)
  terminals : terminal list;
  element_count : int;  (** interconnect elements on the net *)
}

type t = { nets : net list }

(** Preferred display name: first explicit label, else the generated
    identifier. *)
val display_name : net -> string

(** Does the net carry (a label of) the given class? *)
val has_class : net -> Tech.Netclass.t -> bool

val find_by_name : t -> string -> net option
val pp_net : Format.formatter -> net -> unit
val pp : Format.formatter -> t -> unit

(** {1 Building} *)

type builder

val builder : unit -> builder

(** [node b ~label] allocates a connectivity node; [label] is an
    optional explicit net name. *)
val node : builder -> label:string option -> int

val connect : builder -> int -> int -> unit
val connected : builder -> int -> int -> bool

(** [add_terminal b node t] records a device terminal on the net of
    [node]. *)
val add_terminal : builder -> int -> terminal -> unit

(** [add_element b node] counts an interconnect element on the net of
    [node]. *)
val add_element : builder -> int -> unit

(** [merge_globals b] unions nodes whose labels are equal global names
    (trailing [!]). *)
val merge_globals : builder -> unit

(** [finish b ~auto_prefix] produces the net list; anonymous nets are
    named [auto_prefix ^ "n" ^ string_of_int i]. *)
val finish : builder -> auto_prefix:string -> t
