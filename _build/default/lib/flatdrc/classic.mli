(** The three classical flat DRC algorithms the paper critiques.

    - {e figure-based width} ([figure_width]): checks each drawn figure
      in isolation.  Produces the Fig 2 pathologies: false errors on
      narrow figures whose union is legal, missed errors on legal
      figures whose union is not.
    - {e shrink-expand-compare width} ([sec_width], Lindsay & Preas
      1976): union per layer, shrink by half the rule, expand back,
      compare.  In Euclidean mode the corner rounding flags every
      convex corner (Fig 4 left).
    - {e expand-check-overlap spacing} ([eco_spacing]): expand features
      by half the rule and test overlap.  Net-blind — electrically
      equivalent neighbours are flagged (Fig 5a) — and in orthogonal
      mode diagonal neighbours at legal Euclidean distance are flagged
      (Fig 4 right).

    [poly_diff] selects the baseline's stance on poly crossing
    diffusion (Fig 8): [`Ignore] treats every crossing as a legal
    transistor (missing accidental ones); [`Flag_all] reports every
    crossing (false errors on every real transistor and butting
    contact). *)

type error = {
  rule : string;  (** e.g. "width.NP", "spacing.NM", "polydiff" *)
  layer : string;
  where : Geom.Rect.t;
  note : string;
}

val pp_error : Format.formatter -> error -> unit

val figure_width : Tech.Rules.t -> Flatten.elt list -> error list

val sec_width :
  Geom.Measure.metric -> Tech.Rules.t -> Flatten.elt list -> error list

val eco_spacing :
  Geom.Measure.metric -> Tech.Rules.t -> Flatten.elt list -> error list

val poly_diff_check :
  [ `Ignore | `Flag_all ] -> Tech.Rules.t -> Flatten.elt list -> error list

type mode = {
  metric : Geom.Measure.metric;
  poly_diff : [ `Ignore | `Flag_all ];
  width_algorithm : [ `Figure_based | `Shrink_expand_compare ];
}

(** A period-typical configuration: orthogonal metric, union-based
    width, crossings ignored. *)
val default_mode : mode

(** Run the whole baseline on a parsed file. *)
val check : mode -> Tech.Rules.t -> Cif.Ast.file -> error list
