lib/flatdrc/flatten.ml: Cif Geom List Printf
