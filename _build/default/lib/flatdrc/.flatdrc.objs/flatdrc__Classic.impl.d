lib/flatdrc/classic.ml: Flatten Format Geom Hashtbl List Printf String Tech
