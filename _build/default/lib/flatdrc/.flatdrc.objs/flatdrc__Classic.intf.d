lib/flatdrc/classic.mli: Cif Flatten Format Geom Tech
