lib/flatdrc/flatten.mli: Cif Geom
