type error = {
  rule : string;
  layer : string;
  where : Geom.Rect.t;
  note : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s %a %s" e.rule Geom.Rect.pp e.where e.note

let layer_width rules layer =
  match Tech.Layer.of_cif layer with
  | Some l -> Some (Tech.Rules.min_width rules l)
  | None -> None

let layer_space rules layer =
  match Tech.Layer.of_cif layer with
  | Some l -> Some (Tech.Rules.same_layer_space rules l)
  | None -> None

let by_layer elts =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Flatten.elt) ->
      let cur = try Hashtbl.find tbl e.Flatten.layer with Not_found -> [] in
      Hashtbl.replace tbl e.Flatten.layer (e :: cur))
    elts;
  Hashtbl.fold (fun layer es acc -> (layer, List.rev es) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let figure_width rules elts =
  List.concat_map
    (fun (e : Flatten.elt) ->
      match layer_width rules e.Flatten.layer with
      | None -> []
      | Some w ->
        let region = Geom.Region.of_rects e.Flatten.rects in
        Geom.Measure.min_width ~metric:Geom.Measure.Orthogonal ~width:w region
        |> List.map (fun (v : Geom.Measure.violation) ->
               { rule = "width." ^ e.Flatten.layer;
                 layer = e.Flatten.layer;
                 where = v.Geom.Measure.where;
                 note = Printf.sprintf "figure %s narrower than %d" e.Flatten.path w }))
    elts

let sec_width metric rules elts =
  List.concat_map
    (fun (layer, es) ->
      match layer_width rules layer with
      | None -> []
      | Some w ->
        let region =
          Geom.Region.of_rects (List.concat_map (fun (e : Flatten.elt) -> e.Flatten.rects) es)
        in
        (* (w-1)/2, not w/2: with half-open regions a shrink by w/2
           annihilates features of exactly the legal width. *)
        let half = (w - 1) / 2 in
        let shrink, expand =
          match metric with
          | Geom.Measure.Orthogonal -> (Geom.Region.shrink_orth, Geom.Region.expand_orth)
          | Geom.Measure.Euclidean -> (Geom.Region.shrink_euclid, Geom.Region.expand_euclid)
        in
        let restored = expand (shrink region half) half in
        let residue = Geom.Region.diff region restored in
        Geom.Region.components residue
        |> List.filter_map (fun c ->
               match Geom.Region.bbox c with
               | None -> None
               | Some bb ->
                 Some
                   { rule = "width." ^ layer;
                     layer;
                     where = bb;
                     note =
                       Printf.sprintf "shrink-expand-compare residue (%d cells)"
                         (Geom.Region.area c) }))
    (by_layer elts)

(* Minimum gap between the rectangle sets of two elements. *)
let elt_gap2 metric (a : Flatten.elt) (b : Flatten.elt) =
  List.fold_left
    (fun acc ra ->
      List.fold_left
        (fun acc rb ->
          let g2 =
            match metric with
            | Geom.Measure.Orthogonal ->
              let g = Geom.Rect.chebyshev_gap ra rb in
              g * g
            | Geom.Measure.Euclidean -> Geom.Rect.euclidean_gap2 ra rb
          in
          min acc g2)
        acc b.Flatten.rects)
    max_int a.Flatten.rects

let elt_bbox (e : Flatten.elt) =
  match e.Flatten.rects with
  | r :: rs -> List.fold_left Geom.Rect.hull r rs
  | [] -> invalid_arg "empty element"

let close_pairs es dist =
  let idx = Geom.Grid_index.create ~cell:(max 1 dist) () in
  List.iter (fun e -> Geom.Grid_index.add idx (elt_bbox e) e) es;
  Geom.Grid_index.pairs_within idx dist

let eco_spacing metric rules elts =
  let same_layer =
    List.concat_map
      (fun (layer, es) ->
        match layer_space rules layer with
        | None -> []
        | Some s ->
          close_pairs es s
          |> List.filter_map (fun ((ba, a), (bb, b)) ->
                 let g2 = elt_gap2 metric a b in
                 (* Touching or overlapping elements are merged by the
                    union-first view: not a spacing error. *)
                 if g2 > 0 && g2 < s * s then
                   Some
                     { rule = "spacing." ^ layer;
                       layer;
                       where = Geom.Rect.hull ba bb;
                       note = Printf.sprintf "%s vs %s" a.Flatten.path b.Flatten.path }
                 else None))
      (by_layer elts)
  in
  (* Cross-layer: unrelated poly too close to diffusion. *)
  let cross =
    let s = rules.Tech.Rules.space_poly_diffusion in
    let polys = List.filter (fun (e : Flatten.elt) -> Tech.Layer.of_cif e.Flatten.layer = Some Tech.Layer.Poly) elts
    and diffs = List.filter (fun (e : Flatten.elt) -> Tech.Layer.of_cif e.Flatten.layer = Some Tech.Layer.Diffusion) elts in
    let idx = Geom.Grid_index.create ~cell:(max 1 s) () in
    List.iter (fun e -> Geom.Grid_index.add idx (elt_bbox e) e) diffs;
    List.concat_map
      (fun (p : Flatten.elt) ->
        match Geom.Rect.inflate (elt_bbox p) s with
        | None -> []
        | Some window ->
          Geom.Grid_index.query idx window
          |> List.filter_map (fun (bd, d) ->
                 let g2 = elt_gap2 metric p d in
                 if g2 > 0 && g2 < s * s then
                   Some
                     { rule = "spacing.ND-NP";
                       layer = "NP";
                       where = Geom.Rect.hull (elt_bbox p) bd;
                       note = Printf.sprintf "%s vs %s" p.Flatten.path d.Flatten.path }
                 else None))
      polys
  in
  same_layer @ cross

let poly_diff_check stance _rules elts =
  match stance with
  | `Ignore -> []
  | `Flag_all ->
    let polys = List.filter (fun (e : Flatten.elt) -> Tech.Layer.of_cif e.Flatten.layer = Some Tech.Layer.Poly) elts
    and diffs = List.filter (fun (e : Flatten.elt) -> Tech.Layer.of_cif e.Flatten.layer = Some Tech.Layer.Diffusion) elts in
    let idx = Geom.Grid_index.create ~cell:512 () in
    List.iter (fun e -> Geom.Grid_index.add idx (elt_bbox e) e) diffs;
    List.concat_map
      (fun (p : Flatten.elt) ->
        Geom.Grid_index.query idx (elt_bbox p)
        |> List.filter_map (fun (_, d) ->
               if elt_gap2 Geom.Measure.Euclidean p d = 0 then
                 let overlap =
                   Geom.Region.inter
                     (Geom.Region.of_rects p.Flatten.rects)
                     (Geom.Region.of_rects d.Flatten.rects)
                 in
                 match Geom.Region.bbox overlap with
                 | Some bb ->
                   Some
                     { rule = "polydiff";
                       layer = "NP";
                       where = bb;
                       note =
                         Printf.sprintf "poly %s crosses diffusion %s" p.Flatten.path
                           d.Flatten.path }
                 | None -> None
               else None))
      polys

type mode = {
  metric : Geom.Measure.metric;
  poly_diff : [ `Ignore | `Flag_all ];
  width_algorithm : [ `Figure_based | `Shrink_expand_compare ];
}

let default_mode =
  { metric = Geom.Measure.Orthogonal;
    poly_diff = `Ignore;
    width_algorithm = `Shrink_expand_compare }

let check mode rules file =
  let elts = Flatten.file file in
  let width =
    match mode.width_algorithm with
    | `Figure_based -> figure_width rules elts
    | `Shrink_expand_compare -> sec_width mode.metric rules elts
  in
  width @ eco_spacing mode.metric rules elts @ poly_diff_check mode.poly_diff rules elts
