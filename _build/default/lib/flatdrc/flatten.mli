(** Full instantiation of a CIF hierarchy.

    This is exactly what the paper says traditional checkers do — "deal
    with mask geometry ... in its fully instantiated form.  Any
    topological or device information about the circuit is discarded."
    Net identifiers and device types are dropped deliberately; only an
    instance path string survives, for error reporting. *)

type elt = {
  layer : string;
  rects : Geom.Rect.t list;  (** the element's swept geometry *)
  path : string;  (** e.g. "top/2:inv/0" — call ordinals and symbol ids *)
}

(** [file f] instantiates every top-level call and element.  Symbol
    references must be acyclic and defined ({!Cif.Ast.check_acyclic});
    violations raise [Invalid_argument]. *)
val file : Cif.Ast.file -> elt list

(** Total rectangle count, the "size" of the flat design. *)
val rect_count : elt list -> int

(** Bounding box of everything. *)
val bbox : elt list -> Geom.Rect.t option
