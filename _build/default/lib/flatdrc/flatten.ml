type elt = { layer : string; rects : Geom.Rect.t list; path : string }

let element_rects = function
  | Cif.Ast.Box { rect; _ } -> [ rect ]
  | Cif.Ast.Wire { width; path; _ } -> Geom.Wire.to_rects (Geom.Wire.make ~width path)
  | Cif.Ast.Polygon { pts; _ } -> (
    let poly = Geom.Poly.make pts in
    match Geom.Poly.to_region poly with
    | Some region -> Geom.Region.rects region
    | None -> invalid_arg "Flatten: non-rectilinear polygon")

let file (f : Cif.Ast.file) =
  (match Cif.Ast.check_acyclic f with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Flatten: " ^ msg));
  let out = ref [] in
  let rec emit_symbol path transform (s : Cif.Ast.symbol) =
    List.iter
      (fun e ->
        out :=
          { layer = Cif.Ast.element_layer e;
            rects = List.map (Geom.Transform.apply_rect transform) (element_rects e);
            path }
          :: !out)
      s.Cif.Ast.elements;
    List.iteri
      (fun i (c : Cif.Ast.call) ->
        let callee =
          match Cif.Ast.find_symbol f c.Cif.Ast.callee with
          | Some sym -> sym
          | None -> assert false (* checked by check_acyclic *)
        in
        let label =
          match callee.Cif.Ast.name with
          | Some n -> Printf.sprintf "%d:%s" i n
          | None -> Printf.sprintf "%d:s%d" i callee.Cif.Ast.id
        in
        emit_symbol (path ^ "/" ^ label)
          (Geom.Transform.compose transform c.Cif.Ast.transform)
          callee)
      s.Cif.Ast.calls
  in
  List.iter
    (fun e ->
      out :=
        { layer = Cif.Ast.element_layer e; rects = element_rects e; path = "top" }
        :: !out)
    f.Cif.Ast.top_elements;
  List.iteri
    (fun i (c : Cif.Ast.call) ->
      let callee =
        match Cif.Ast.find_symbol f c.Cif.Ast.callee with
        | Some sym -> sym
        | None -> invalid_arg "Flatten: call to undefined symbol"
      in
      let label =
        match callee.Cif.Ast.name with
        | Some n -> Printf.sprintf "%d:%s" i n
        | None -> Printf.sprintf "%d:s%d" i callee.Cif.Ast.id
      in
      emit_symbol ("top/" ^ label) c.Cif.Ast.transform callee)
    f.Cif.Ast.top_calls;
  List.rev !out

let rect_count elts = List.fold_left (fun acc e -> acc + List.length e.rects) 0 elts

let bbox elts =
  List.concat_map (fun e -> e.rects) elts
  |> function
  | [] -> None
  | r :: rs -> Some (List.fold_left Geom.Rect.hull r rs)
