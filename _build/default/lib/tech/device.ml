type kind =
  | Enhancement
  | Depletion
  | Contact_cut
  | Butting_contact
  | Buried_contact
  | Resistor
  | Pad
  | Checked

let all =
  [ Enhancement; Depletion; Contact_cut; Butting_contact; Buried_contact; Resistor;
    Pad; Checked ]

let to_tag = function
  | Enhancement -> "ENH"
  | Depletion -> "DEP"
  | Contact_cut -> "CON"
  | Butting_contact -> "BUT"
  | Buried_contact -> "BUR"
  | Resistor -> "RES"
  | Pad -> "PAD"
  | Checked -> "CHK"

let of_tag s =
  match String.uppercase_ascii s with
  | "ENH" -> Some Enhancement
  | "DEP" -> Some Depletion
  | "CON" -> Some Contact_cut
  | "BUT" -> Some Butting_contact
  | "BUR" -> Some Buried_contact
  | "RES" -> Some Resistor
  | "PAD" -> Some Pad
  | "CHK" -> Some Checked
  | _ -> None

let rank = function
  | Enhancement -> 0
  | Depletion -> 1
  | Contact_cut -> 2
  | Butting_contact -> 3
  | Buried_contact -> 4
  | Resistor -> 5
  | Pad -> 6
  | Checked -> 7

let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)
let pp ppf k = Format.pp_print_string ppf (to_tag k)
let is_transistor = function Enhancement | Depletion -> true | _ -> false

let ties = function
  | Contact_cut -> [ (Layer.Metal, Layer.Poly); (Layer.Metal, Layer.Diffusion) ]
  | Butting_contact ->
    [ (Layer.Metal, Layer.Poly); (Layer.Metal, Layer.Diffusion);
      (Layer.Poly, Layer.Diffusion) ]
  | Buried_contact -> [ (Layer.Poly, Layer.Diffusion) ]
  | Enhancement | Depletion | Resistor | Pad | Checked -> []
