type t = Power | Ground | Bus | Signal

let strip_global name =
  match String.length name with
  | 0 -> name
  | n when name.[n - 1] = '!' -> String.sub name 0 (n - 1)
  | _ -> name

let classify name =
  let base = String.uppercase_ascii (strip_global name) in
  if base = "VDD" || base = "VCC" then Power
  else if base = "GND" || base = "VSS" then Ground
  else if String.length base >= 3 && String.sub base 0 3 = "BUS" then Bus
  else Signal

let is_supply = function Power | Ground -> true | Bus | Signal -> false
let equal (a : t) (b : t) = a = b

let to_string = function
  | Power -> "power"
  | Ground -> "ground"
  | Bus -> "bus"
  | Signal -> "signal"

let pp ppf t = Format.pp_print_string ppf (to_string t)
