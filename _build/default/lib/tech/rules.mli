(** Geometric design-rule set.

    The default is a Mead & Conway style lambda rule set for the
    silicon-gate NMOS process (the paper and its examples come from the
    same Caltech design community).  All dimensions are in integer
    layout units; [lambda] sets the scale (default 100 units per
    lambda, i.e. half-micron resolution at lambda = 2.5 um).

    Following the paper's taxonomy, the rules split into: legal-device
    parameters (gate overhang, surrounds), interconnect rules (widths),
    and interaction rules (spacings) — see {!Interaction} for the
    Fig 12 matrix built from these numbers. *)

type t = {
  name : string;
  lambda : int;
  width_diffusion : int;  (** 2 lambda *)
  width_poly : int;  (** 2 lambda *)
  width_metal : int;  (** 3 lambda *)
  contact_size : int;  (** contact cut edge, 2 lambda *)
  space_diffusion : int;  (** 3 lambda *)
  space_poly : int;  (** 2 lambda *)
  space_metal : int;  (** 3 lambda *)
  space_contact : int;  (** 2 lambda *)
  space_poly_diffusion : int;  (** unrelated poly to diffusion, 1 lambda *)
  gate_poly_overhang : int;  (** poly past gate, 2 lambda (Fig 14's rule) *)
  gate_diff_extension : int;  (** diffusion past gate, 2 lambda *)
  contact_surround : int;  (** conductor around a contact cut, 1 lambda *)
  implant_gate_surround : int;  (** implant past depletion gate, 1.5 lambda *)
  buried_overlap : int;  (** buried window past the poly-diff tie, 2 lambda *)
  pad_metal_surround : int;  (** metal past glass opening, 2 lambda *)
}

(** [nmos ~lambda ()] — the default rule set; [lambda] defaults to
    100. *)
val nmos : ?lambda:int -> unit -> t

(** Minimum legal width of interconnect on a layer. *)
val min_width : t -> Layer.t -> int

(** Half the minimum width, used to erode elements to skeletons. *)
val skeleton_half : t -> Layer.t -> int

(** Minimum spacing between *different-net* geometry on one layer. *)
val same_layer_space : t -> Layer.t -> int

(** Minimum spacing between geometry on two different layers, if any
    rule exists at all ([None] for e.g. metal over diffusion). *)
val cross_layer_space : t -> Layer.t -> Layer.t -> int option

val pp : Format.formatter -> t -> unit

(** {1 Rule files}

    A textual rule description so processes are data, not code: one
    [key value] pair per line, [#] comments.  [lambda] (read first)
    sets the defaults for every other key via {!nmos}; explicit keys
    override.  Keys are the record field names, plus [name].

    {v
    # a coarser process
    lambda 200
    width_metal 800     # wider metal than the default 3 lambda
    v} *)

val to_string : t -> string
val of_string : string -> (t, string) result
