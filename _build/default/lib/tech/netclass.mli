(** Net classification for the paper's non-geometric construction
    rules.

    "A net must have at least two devices on it.  Power and ground must
    not be shorted.  A bus may not connect to power or ground.  A
    depletion device may not connect to ground."  These rules need to
    know which nets are power, ground, or busses; the convention here
    is by name (global nets end in [!], as in CIF usage). *)

type t = Power | Ground | Bus | Signal

(** [classify name] — ["VDD"]/["VCC"] are power, ["GND"]/["VSS"] are
    ground, names starting with ["BUS"] are busses; a trailing [!]
    (CIF global marker) is ignored; everything else is signal. *)
val classify : string -> t

val is_supply : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
