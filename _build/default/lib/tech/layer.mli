(** Mask layers of the silicon-gate NMOS process the paper's examples
    use (Mead & Conway style).

    The paper's central argument is that design rules should *not* be
    phrased purely in terms of these mask layers — devices and
    interconnect are the right vocabulary — but the masks remain the
    substrate every element lives on. *)

type t =
  | Diffusion  (** CIF [ND] — n+ diffusion *)
  | Poly  (** CIF [NP] — polysilicon *)
  | Metal  (** CIF [NM] — metal *)
  | Contact  (** CIF [NC] — contact cut *)
  | Implant  (** CIF [NI] — depletion implant *)
  | Buried  (** CIF [NB] — buried contact window *)
  | Glass  (** CIF [NG] — overglass openings *)

val all : t list

(** The four *interconnect-bearing* layers of the paper's Fig 12
    interaction matrix: diffusion, poly, metal, contact. *)
val routing : t list

val to_cif : t -> string

(** Case-insensitive. *)
val of_cif : string -> t option

(** Can signal wiring run on this layer? (Implant, buried windows and
    glass are modifier masks, not interconnect.) *)
val is_interconnect : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val index : t -> int
val pp : Format.formatter -> t -> unit
