lib/tech/netclass.mli: Format
