lib/tech/interaction.ml: Format Layer List Rules
