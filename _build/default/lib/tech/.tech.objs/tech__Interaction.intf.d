lib/tech/interaction.mli: Format Layer Rules
