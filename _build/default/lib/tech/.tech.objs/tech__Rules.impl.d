lib/tech/rules.ml: Buffer Format Layer List Printf Result String
