lib/tech/device.mli: Format Layer
