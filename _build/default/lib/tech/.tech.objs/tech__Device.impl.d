lib/tech/device.ml: Format Int Layer String
