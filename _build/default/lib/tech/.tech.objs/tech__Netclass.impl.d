lib/tech/netclass.ml: Format String
