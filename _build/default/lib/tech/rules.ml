type t = {
  name : string;
  lambda : int;
  width_diffusion : int;
  width_poly : int;
  width_metal : int;
  contact_size : int;
  space_diffusion : int;
  space_poly : int;
  space_metal : int;
  space_contact : int;
  space_poly_diffusion : int;
  gate_poly_overhang : int;
  gate_diff_extension : int;
  contact_surround : int;
  implant_gate_surround : int;
  buried_overlap : int;
  pad_metal_surround : int;
}

let nmos ?(lambda = 100) () =
  { name = "nmos-lambda";
    lambda;
    width_diffusion = 2 * lambda;
    width_poly = 2 * lambda;
    width_metal = 3 * lambda;
    contact_size = 2 * lambda;
    space_diffusion = 3 * lambda;
    space_poly = 2 * lambda;
    space_metal = 3 * lambda;
    space_contact = 2 * lambda;
    space_poly_diffusion = lambda;
    gate_poly_overhang = 2 * lambda;
    gate_diff_extension = 2 * lambda;
    contact_surround = lambda;
    implant_gate_surround = 3 * lambda / 2;
    buried_overlap = 2 * lambda;
    pad_metal_surround = 2 * lambda }

let min_width t = function
  | Layer.Diffusion -> t.width_diffusion
  | Layer.Poly -> t.width_poly
  | Layer.Metal -> t.width_metal
  | Layer.Contact -> t.contact_size
  | Layer.Implant -> t.width_poly
  | Layer.Buried -> t.contact_size
  | Layer.Glass -> t.contact_size

let skeleton_half t layer = min_width t layer / 2

let same_layer_space t = function
  | Layer.Diffusion -> t.space_diffusion
  | Layer.Poly -> t.space_poly
  | Layer.Metal -> t.space_metal
  | Layer.Contact -> t.space_contact
  | Layer.Implant -> t.space_poly
  | Layer.Buried -> t.space_contact
  | Layer.Glass -> t.space_metal

let cross_layer_space t a b =
  let pair x y = (min (Layer.index x) (Layer.index y), max (Layer.index x) (Layer.index y)) in
  let key = pair a b in
  if key = pair Layer.Poly Layer.Diffusion then Some t.space_poly_diffusion else None

let pp ppf t =
  Format.fprintf ppf "%s (lambda=%d)" t.name t.lambda

(* Field table shared by the reader and the writer. *)
let int_fields =
  [ ("width_diffusion", (fun t -> t.width_diffusion), fun t v -> { t with width_diffusion = v });
    ("width_poly", (fun t -> t.width_poly), fun t v -> { t with width_poly = v });
    ("width_metal", (fun t -> t.width_metal), fun t v -> { t with width_metal = v });
    ("contact_size", (fun t -> t.contact_size), fun t v -> { t with contact_size = v });
    ("space_diffusion", (fun t -> t.space_diffusion), fun t v -> { t with space_diffusion = v });
    ("space_poly", (fun t -> t.space_poly), fun t v -> { t with space_poly = v });
    ("space_metal", (fun t -> t.space_metal), fun t v -> { t with space_metal = v });
    ("space_contact", (fun t -> t.space_contact), fun t v -> { t with space_contact = v });
    ("space_poly_diffusion", (fun t -> t.space_poly_diffusion),
     fun t v -> { t with space_poly_diffusion = v });
    ("gate_poly_overhang", (fun t -> t.gate_poly_overhang),
     fun t v -> { t with gate_poly_overhang = v });
    ("gate_diff_extension", (fun t -> t.gate_diff_extension),
     fun t v -> { t with gate_diff_extension = v });
    ("contact_surround", (fun t -> t.contact_surround), fun t v -> { t with contact_surround = v });
    ("implant_gate_surround", (fun t -> t.implant_gate_surround),
     fun t v -> { t with implant_gate_surround = v });
    ("buried_overlap", (fun t -> t.buried_overlap), fun t v -> { t with buried_overlap = v });
    ("pad_metal_surround", (fun t -> t.pad_metal_surround),
     fun t v -> { t with pad_metal_surround = v }) ]

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "name %s\nlambda %d\n" t.name t.lambda);
  List.iter
    (fun (key, get, _) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" key (get t)))
    int_fields;
  Buffer.contents buf

let of_string src =
  let lines = String.split_on_char '\n' src in
  let tokens =
    List.concat_map
      (fun line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
        with
        | [] -> []
        | [ k; v ] -> [ Ok (k, v) ]
        | _ -> [ Error (Printf.sprintf "malformed line: %S" (String.trim line)) ])
      lines
  in
  match List.find_opt Result.is_error tokens with
  | Some (Error e) -> Error e
  | Some (Ok _) -> assert false
  | None ->
    let pairs = List.filter_map Result.to_option tokens in
    let int_of key v =
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok n
      | _ -> Error (Printf.sprintf "%s: expected a positive integer, got %S" key v)
    in
    (* lambda first: it sets the defaults. *)
    let base =
      match List.assoc_opt "lambda" pairs with
      | None -> Ok (nmos ())
      | Some v -> Result.map (fun lambda -> nmos ~lambda ()) (int_of "lambda" v)
    in
    List.fold_left
      (fun acc (key, v) ->
        Result.bind acc (fun t ->
            if key = "lambda" then Ok t
            else if key = "name" then Ok { t with name = v }
            else
              match List.find_opt (fun (k, _, _) -> k = key) int_fields with
              | Some (_, _, set) -> Result.map (set t) (int_of key v)
              | None -> Error (Printf.sprintf "unknown rule key %S" key)))
      base pairs
