(** Device types for primitive symbols.

    The paper requires every "device" to be declared explicitly as a
    primitive symbol with a type — the structured-design analogue of a
    typed declaration.  Implicit devices (poly crossing diffusion in
    open interconnect) are errors. *)

type kind =
  | Enhancement  (** enhancement-mode MOS transistor *)
  | Depletion  (** depletion-mode MOS transistor (implanted) *)
  | Contact_cut  (** metal to poly or diffusion contact *)
  | Butting_contact  (** poly-diffusion tie under one contact (paper Fig 7) *)
  | Buried_contact  (** poly-diffusion tie through a buried window *)
  | Resistor  (** diffused resistor — spacing matters even on one net (Fig 5b) *)
  | Pad  (** bonding pad: glass opening over wide metal *)
  | Checked  (** user-certified special device: all internal checks waived
                 (the paper's "technique for flagging specific devices as
                 checked") *)

val all : kind list

(** Identifier used in the CIF [4D] extension. *)
val to_tag : kind -> string

val of_tag : string -> kind option
val equal : kind -> kind -> bool
val compare : kind -> kind -> int
val pp : Format.formatter -> kind -> unit

(** Is this a transistor (gate/implant geometry cannot be assigned to a
    net, and interaction subcases depend on relatedness — paper
    Fig 12's discussion)? *)
val is_transistor : kind -> bool

(** Layer pairs the device electrically ties together.  Transistors tie
    nothing (the channel is not a wire); a contact cut ties metal to
    poly or diffusion (whichever it lands on); butting and buried
    contacts tie poly to diffusion (the butting contact also to
    metal). *)
val ties : kind -> (Layer.t * Layer.t) list
