type t = Diffusion | Poly | Metal | Contact | Implant | Buried | Glass

let all = [ Diffusion; Poly; Metal; Contact; Implant; Buried; Glass ]
let routing = [ Diffusion; Poly; Metal; Contact ]

let to_cif = function
  | Diffusion -> "ND"
  | Poly -> "NP"
  | Metal -> "NM"
  | Contact -> "NC"
  | Implant -> "NI"
  | Buried -> "NB"
  | Glass -> "NG"

let of_cif s =
  match String.uppercase_ascii s with
  | "ND" -> Some Diffusion
  | "NP" -> Some Poly
  | "NM" -> Some Metal
  | "NC" -> Some Contact
  | "NI" -> Some Implant
  | "NB" -> Some Buried
  | "NG" -> Some Glass
  | _ -> None

let is_interconnect = function
  | Diffusion | Poly | Metal -> true
  | Contact | Implant | Buried | Glass -> false

let index = function
  | Diffusion -> 0
  | Poly -> 1
  | Metal -> 2
  | Contact -> 3
  | Implant -> 4
  | Buried -> 5
  | Glass -> 6

let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)
let pp ppf t = Format.pp_print_string ppf (to_cif t)
