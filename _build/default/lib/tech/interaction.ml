type entry =
  | No_rule
  | Device_checked
  | Space of { same_net : int option; diff_net : int }

let entry rules a b =
  let l = Layer.(if index a <= index b then (a, b) else (b, a)) in
  match l with
  | Layer.Diffusion, Layer.Diffusion ->
    Space { same_net = None; diff_net = rules.Rules.space_diffusion }
  | Layer.Poly, Layer.Poly -> Space { same_net = None; diff_net = rules.Rules.space_poly }
  | Layer.Metal, Layer.Metal -> Space { same_net = None; diff_net = rules.Rules.space_metal }
  | Layer.Contact, Layer.Contact ->
    Space { same_net = None; diff_net = rules.Rules.space_contact }
  | Layer.Diffusion, Layer.Poly ->
    (* Unrelated poly and diffusion must stay apart lest they form an
       accidental transistor; legal crossings happen only inside
       transistor/contact symbols (checked there). *)
    Space { same_net = Some rules.Rules.space_poly_diffusion;
            diff_net = rules.Rules.space_poly_diffusion }
  | Layer.Diffusion, Layer.Metal -> No_rule
  | Layer.Poly, Layer.Metal -> No_rule
  | Layer.Diffusion, Layer.Contact | Layer.Poly, Layer.Contact
  | Layer.Metal, Layer.Contact ->
    Device_checked
  | _ -> No_rule

let cells rules =
  let routing = Layer.routing in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if Layer.index a <= Layer.index b then Some (a, b, entry rules a b) else None)
        routing)
    routing

let pp_entry ppf = function
  | No_rule -> Format.pp_print_string ppf "-"
  | Device_checked -> Format.pp_print_string ppf "dev"
  | Space { same_net; diff_net } ->
    (match same_net with
    | None -> Format.fprintf ppf "same:skip diff:%d" diff_net
    | Some s -> Format.fprintf ppf "same:%d diff:%d" s diff_net)
