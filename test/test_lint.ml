(* Tests for the static lint pass: every stable code fires on a
   minimal fixture, every clean generator stays silent, the lenient
   rule-file lint carries exact line numbers, and the SARIF rendering
   of lint diagnostics is deterministic and parseable. *)

module B = Layoutgen.Builder

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

let codes diags = List.map (fun (d : Dic.Lint.diagnostic) -> d.Dic.Lint.code) diags

let has code diags = List.mem code (codes diags)

let check_fires name code diags =
  Alcotest.(check bool) (name ^ " fires " ^ code) true (has code diags)

let line_of code diags =
  match
    List.find_opt (fun (d : Dic.Lint.diagnostic) -> d.Dic.Lint.code = code) diags
  with
  | Some { Dic.Lint.loc = Some l; _ } -> l.Cif.Loc.line
  | _ -> -1

(* ------------------------------------------------------------------ *)
(* Rule-deck pass: record-level fixtures                               *)

let test_r001_odd_width () =
  check_fires "odd metal width" "R001"
    (Dic.Lint.check_deck { rules with Tech.Rules.width_metal = 301 })

let test_r002_non_positive () =
  let diags = Dic.Lint.check_deck { rules with Tech.Rules.space_metal = 0 } in
  check_fires "zero spacing" "R002" diags;
  (* the <= 0 branch wins: no spurious off-quantum companion *)
  Alcotest.(check bool) "no R003 for the same key" false
    (List.exists
       (fun (d : Dic.Lint.diagnostic) ->
         d.Dic.Lint.code = "R003" && d.Dic.Lint.subject = "space_metal")
       diags)

let test_r003_off_quantum () =
  check_fires "310 with lambda 100" "R003"
    (Dic.Lint.check_deck { rules with Tech.Rules.space_metal = 310 })

let test_r003_silent_when_lambda_not_divisible () =
  (* lambda 110 has no integer lambda/4 quantum: the lint stands down
     rather than flag every value. *)
  let r = Tech.Rules.nmos ~lambda:100 () in
  let diags = Dic.Lint.check_deck { r with Tech.Rules.lambda = 110 } in
  Alcotest.(check bool) "no R003" false (has "R003" diags)

let test_r004_contact_pad () =
  check_fires "surround below metal width" "R004"
    (Dic.Lint.check_deck { rules with Tech.Rules.contact_surround = 20 })

let test_r005_asymmetric_pair () =
  check_fires "diff-poly override disagrees with canonical" "R005"
    (Dic.Lint.check_deck
       { rules with
         Tech.Rules.pair_spaces =
           [ ((Tech.Layer.Diffusion, Tech.Layer.Poly), 150) ] })

let test_r006_unreachable_pair () =
  check_fires "poly-metal is a No-rule cell" "R006"
    (Dic.Lint.check_deck
       { rules with
         Tech.Rules.pair_spaces = [ ((Tech.Layer.Poly, Tech.Layer.Metal), 300) ] })

let test_r007_shadowed_pair () =
  check_fires "space_poly_poly shadows space_poly" "R007"
    (Dic.Lint.check_deck
       { rules with
         Tech.Rules.pair_spaces = [ ((Tech.Layer.Poly, Tech.Layer.Poly), 200) ] })

let test_symmetric_override_is_quiet () =
  (* A symmetric, reachable, on-quantum override is the supported
     extension point and must not lint. *)
  let diags =
    Dic.Lint.check_deck
      { rules with
        Tech.Rules.pair_spaces = [ ((Tech.Layer.Diffusion, Tech.Layer.Poly), 100) ] }
  in
  Alcotest.(check (list string)) "clean" [] (codes diags)

(* ------------------------------------------------------------------ *)
(* Rule-deck pass: file-level fixtures with exact line numbers         *)

let test_r008_unknown_key () =
  let _, diags = Dic.Lint.check_deck_source "name t\nlambda 100\nfrobnicate 3\n" in
  check_fires "unknown key" "R008" diags;
  Alcotest.(check int) "on line 3" 3 (line_of "R008" diags)

let test_r009_duplicate_key () =
  let deck, diags =
    Dic.Lint.check_deck_source "lambda 100\nspace_poly 200\nspace_poly 400\n"
  in
  check_fires "duplicate key" "R009" diags;
  Alcotest.(check int) "on line 3" 3 (line_of "R009" diags);
  (* first definition wins *)
  match deck with
  | Some d -> Alcotest.(check int) "first wins" 200 d.Tech.Rules.space_poly
  | None -> Alcotest.fail "deck should build"

let test_r010_malformed_line () =
  let _, diags = Dic.Lint.check_deck_source "lambda 100\nwidth_metal\n" in
  check_fires "key without value" "R010" diags;
  Alcotest.(check int) "on line 2" 2 (line_of "R010" diags)

let test_r011_bad_value () =
  let _, diags = Dic.Lint.check_deck_source "lambda 100\nwidth_metal abc\n" in
  check_fires "non-integer value" "R011" diags;
  Alcotest.(check int) "on line 2" 2 (line_of "R011" diags)

let test_record_diags_relocated () =
  (* Record-level lints (here R001) are relocated to the defining line
     of the offending key. *)
  let _, diags = Dic.Lint.check_deck_source "lambda 100\nwidth_metal 301\n" in
  check_fires "odd width from source" "R001" diags;
  Alcotest.(check int) "on line 2" 2 (line_of "R001" diags)

let test_broken_demo_deck () =
  (* The shipped fixture trips its documented codes, with errors. *)
  (* cwd is the test dir under `dune runtest`, the root under `dune exec` *)
  let path =
    List.find Sys.file_exists
      [ "../rules/broken-demo.rules"; "rules/broken-demo.rules" ]
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  let _, diags = Dic.Lint.check_deck_source src in
  List.iter
    (fun c -> check_fires "broken-demo" c diags)
    [ "R001"; "R003"; "R004"; "R005"; "R006"; "R009" ];
  Alcotest.(check bool) "has errors" true (Dic.Lint.has_errors diags)

(* ------------------------------------------------------------------ *)
(* Strict loader: line numbers in of_string errors                     *)

let expect_error_line src fragment line =
  match Tech.Rules.of_string src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    Alcotest.(check bool) (fragment ^ " in " ^ msg) true
      (Astring_contains.contains msg fragment);
    Alcotest.(check bool)
      (Printf.sprintf "line %d named in %s" line msg)
      true
      (Astring_contains.contains msg (Printf.sprintf "line %d" line))

let test_of_string_line_numbers () =
  expect_error_line "lambda 100\nfrobnicate 3\n" "unknown rule key" 2;
  expect_error_line "lambda 100\nwidth_metal abc\n" "positive integer" 2;
  expect_error_line "lambda 100\n\nwidth_metal\n" "malformed line" 3;
  expect_error_line "lambda 100\nspace_poly 200\nspace_poly 400\n" "duplicate key" 3

(* ------------------------------------------------------------------ *)
(* Design pass: syntax-tree fixtures                                   *)

let file_of ?(top = []) symbols = B.file ~symbols ~top_calls:top ()

let plain_symbol id name =
  B.symbol ~id ~name [ B.box ~layer:"NM" 0 0 (20 * lambda) (4 * lambda) ] []

let test_d001_undefined_call () =
  let f = file_of [ plain_symbol 1 "cell" ] ~top:[ B.call 1; B.call 7 ] in
  check_fires "undefined callee" "D001" (Dic.Lint.check_ast f)

let test_d002_call_cycle () =
  let a = B.symbol ~id:1 ~name:"a" [] [ B.call 2 ] in
  let b = B.symbol ~id:2 ~name:"b" [] [ B.call 1 ] in
  let diags = Dic.Lint.check_ast (file_of [ a; b ] ~top:[ B.call 1 ]) in
  check_fires "two-symbol cycle" "D002" diags;
  (* one report per cycle, not one per member *)
  Alcotest.(check int) "single report" 1
    (List.length (List.filter (fun c -> c = "D002") (codes diags)))

let test_d003_unused_definition () =
  let f = file_of [ plain_symbol 1 "used"; plain_symbol 2 "orphan" ] ~top:[ B.call 1 ] in
  let diags = Dic.Lint.check_ast f in
  check_fires "orphan definition" "D003" diags;
  Alcotest.(check bool) "names the orphan" true
    (List.exists
       (fun (d : Dic.Lint.diagnostic) ->
         d.Dic.Lint.code = "D003" && d.Dic.Lint.subject = "orphan")
       diags)

let test_d003_silent_for_library () =
  (* No top-level calls: the file is a library, nothing is "unused". *)
  let f = file_of [ plain_symbol 1 "a"; plain_symbol 2 "b" ] in
  Alcotest.(check bool) "library quiet" false (has "D003" (Dic.Lint.check_ast f))

let test_d004_duplicate_symbol () =
  let f = file_of [ plain_symbol 1 "first"; plain_symbol 1 "second" ] ~top:[ B.call 1 ] in
  check_fires "two DS 1 blocks" "D004" (Dic.Lint.check_ast f)

let test_d007_coincident_calls () =
  let f =
    file_of [ plain_symbol 1 "cell" ]
      ~top:[ B.call ~at:(0, 0) 1; B.call ~at:(0, 0) 1 ]
  in
  let diags = Dic.Lint.check_ast f in
  check_fires "stacked instances" "D007" diags;
  (* distinct transforms stay quiet *)
  let g =
    file_of [ plain_symbol 1 "cell" ]
      ~top:[ B.call ~at:(0, 0) 1; B.call ~at:(30 * lambda, 0) 1 ]
  in
  Alcotest.(check bool) "translated copy ok" false (has "D007" (Dic.Lint.check_ast g))

let test_d008_transform_overflow () =
  let f = file_of [ plain_symbol 1 "cell" ] ~top:[ B.call ~at:(1 lsl 41, 0) 1 ] in
  check_fires "2^41 translation" "D008" (Dic.Lint.check_ast f)

(* ------------------------------------------------------------------ *)
(* Design pass: elaborated-model fixtures                              *)

let test_d005_skeleton_collapse () =
  let skinny =
    B.symbol ~id:1 ~name:"skinny"
      [ B.wire ~layer:"NM" ~width:lambda [ (0, 0); (40 * lambda, 0) ] ]
      []
  in
  check_fires "lambda-wide metal wire" "D005"
    (Dic.Lint.check_design rules (file_of [ skinny ] ~top:[ B.call 1 ]))

let test_d006_net_reuse_disjoint () =
  let sym =
    B.symbol ~id:1 ~name:"split"
      [ B.box ~layer:"NM" ~net:"n1" 0 0 (10 * lambda) (3 * lambda);
        B.box ~layer:"NM" ~net:"n1" (40 * lambda) 0 (50 * lambda) (3 * lambda) ]
      []
  in
  let diags = Dic.Lint.check_design rules (file_of [ sym ] ~top:[ B.call 1 ]) in
  check_fires "label bridges a gap" "D006" diags;
  (* a global net (trailing !) legitimately merges by name *)
  let glob =
    B.symbol ~id:1 ~name:"split"
      [ B.box ~layer:"NM" ~net:"VDD!" 0 0 (10 * lambda) (3 * lambda);
        B.box ~layer:"NM" ~net:"VDD!" (40 * lambda) 0 (50 * lambda) (3 * lambda) ]
      []
  in
  Alcotest.(check bool) "global net quiet" false
    (has "D006" (Dic.Lint.check_design rules (file_of [ glob ] ~top:[ B.call 1 ])))

let test_d009_device_missing_layers () =
  (* An "enhancement transistor" drawn with poly only: no diffusion. *)
  let bogus =
    B.symbol ~id:1 ~name:"gateless" ~device:"ENH"
      [ B.box ~layer:"NP" 0 0 (2 * lambda) (2 * lambda) ]
      []
  in
  check_fires "transistor without diffusion" "D009"
    (Dic.Lint.check_design rules (file_of [ bogus ] ~top:[ B.call 1 ]))

let test_d009_no_crossing () =
  (* Both layers present but the boxes never overlap: no channel. *)
  let split =
    B.symbol ~id:1 ~name:"split" ~device:"ENH"
      [ B.box ~layer:"NP" 0 0 (2 * lambda) (2 * lambda);
        B.box ~layer:"ND" (10 * lambda) 0 (12 * lambda) (2 * lambda) ]
      []
  in
  let diags = Dic.Lint.check_design rules (file_of [ split ] ~top:[ B.call 1 ]) in
  Alcotest.(check bool) "no-crossing D009" true
    (List.exists
       (fun (d : Dic.Lint.diagnostic) ->
         d.Dic.Lint.code = "D009"
         && Astring_contains.contains d.Dic.Lint.message "crossing")
       diags)

(* ------------------------------------------------------------------ *)
(* Silence on the clean generators                                     *)

let clean_designs () =
  [ ("chain", rules, Layoutgen.Cells.chain ~lambda 4);
    ("grid", rules, Layoutgen.Cells.grid ~lambda ~nx:2 ~ny:2);
    ("grid-blocks", rules, Layoutgen.Cells.grid_blocks ~lambda ~nx:4 ~ny:4);
    ("shift", rules, Layoutgen.Shift.register ~lambda 2);
    ( "pla",
      rules,
      Layoutgen.Pla.plane ~lambda (Layoutgen.Pla.random_program ~rows:3 ~cols:3 ~seed:7) );
    ( "coarse-chain",
      Tech.Rules.nmos ~lambda:200 (),
      Layoutgen.Cells.chain ~lambda:200 4 );
    ( "device-library",
      rules,
      B.file ~symbols:(Layoutgen.Cells.device_symbols ~lambda) ~top_calls:[] () ) ]

let test_clean_designs_lint_clean () =
  List.iter
    (fun (name, r, file) ->
      Alcotest.(check (list string)) name []
        (codes (Dic.Lint.check_design r file)))
    (clean_designs ())

let test_builtin_decks_lint_clean () =
  Alcotest.(check (list string)) "nmos" [] (codes (Dic.Lint.check_deck rules));
  Alcotest.(check (list string)) "nmos coarse" []
    (codes (Dic.Lint.check_deck (Tech.Rules.nmos ~lambda:200 ())))

(* ------------------------------------------------------------------ *)
(* Ordering, rendering, SARIF                                          *)

let test_sort_deterministic () =
  let diags =
    Dic.Lint.check_deck
      { rules with
        Tech.Rules.width_metal = 301;
        Tech.Rules.contact_surround = 20;
        Tech.Rules.pair_spaces = [ ((Tech.Layer.Poly, Tech.Layer.Metal), 300) ] }
  in
  Alcotest.(check (list string)) "stable order" (codes diags)
    (codes (Dic.Lint.sort (List.rev diags)))

let test_explain_total () =
  (* every advertised code explains itself, and the fixture codes all
     exist in the table *)
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool) code true (Dic.Lint.explain code <> None))
    Dic.Lint.all_codes;
  Alcotest.(check int) "twenty-four codes" 24 (List.length Dic.Lint.all_codes);
  Alcotest.(check bool) "unknown is None" true (Dic.Lint.explain "R999" = None)

let lint_report () =
  let _, deck_diags =
    Dic.Lint.check_deck_source "lambda 100\nwidth_metal 301\nspace_poly 200\nspace_poly 400\n"
  in
  let f = file_of [ plain_symbol 1 "cell" ] ~top:[ B.call 1; B.call 7 ] in
  let all = Dic.Lint.sort (deck_diags @ Dic.Lint.check_ast f) in
  (* Sarif emits [List.rev violations] (reports accumulate reversed) *)
  { Dic.Report.violations = List.rev (Dic.Lint.to_violations all) }

let test_sarif_deterministic_and_parses () =
  let doc1 = Dic.Sarif.of_report ~uri:"fixture.cif" (lint_report ()) in
  let doc2 = Dic.Sarif.of_report ~uri:"fixture.cif" (lint_report ()) in
  Alcotest.(check string) "two renders agree" doc1 doc2;
  let json = Tjson.parse doc1 in
  let jstr = function Some (Tjson.Str s) -> s | _ -> "" in
  let runs =
    match Tjson.member "runs" json with
    | Some (Tjson.Arr [ r ]) -> r
    | _ -> Alcotest.fail "runs"
  in
  let rules_json =
    match
      Option.bind (Tjson.member "tool" runs) (fun t ->
          Option.bind (Tjson.member "driver" t) (Tjson.member "rules"))
    with
    | Some (Tjson.Arr rs) -> rs
    | _ -> Alcotest.fail "rules array"
  in
  (* every SARIF rule is a lint.* id carrying the --explain text *)
  List.iter
    (fun r ->
      let id = jstr (Tjson.member "id" r) in
      Alcotest.(check bool) ("lint prefix on " ^ id) true
        (String.length id > 5 && String.sub id 0 5 = "lint.");
      let code = String.sub id 5 (String.length id - 5) in
      let desc =
        jstr (Option.bind (Tjson.member "shortDescription" r) (Tjson.member "text"))
      in
      Alcotest.(check (option string)) ("explain " ^ code) (Dic.Lint.explain code)
        (Some desc))
    rules_json;
  let results =
    match Tjson.member "results" runs with
    | Some (Tjson.Arr rs) -> rs
    | _ -> Alcotest.fail "results"
  in
  Alcotest.(check bool) "has results" true (results <> [])

let test_render_and_metrics () =
  let d =
    { Dic.Lint.code = "R001"; severity = Dic.Lint.Error; message = "msg";
      loc = Some (Cif.Loc.make ~line:4 ~col:1); subject = "width_metal" }
  in
  Alcotest.(check string) "render with loc" "deck.rules:4:1: R001 error: msg [width_metal]"
    (Dic.Lint.render ~src:"deck.rules" d);
  let m = Dic.Metrics.create () in
  Dic.Lint.record_metrics m [ d; { d with Dic.Lint.severity = Dic.Lint.Warning } ];
  let get k = Dic.Metrics.counter m k in
  Alcotest.(check int) "total" 2 (get "lint.diagnostics");
  Alcotest.(check int) "errors" 1 (get "lint.errors");
  Alcotest.(check int) "warnings" 1 (get "lint.warnings");
  Alcotest.(check int) "per-code" 2 (get "lint.code.R001")

let test_engine_lint_flag () =
  (* run_lint=false (default) keeps the report byte-identical; with the
     flag on, a dirty deck surfaces lint.* violations in the report. *)
  let file = Layoutgen.Cells.chain ~lambda 2 in
  let dirty = { rules with Tech.Rules.width_metal = 301 } in
  let run lint =
    let e = Dic.Engine.with_lint (Dic.Engine.create dirty) lint in
    match Result.map Dic.Engine.primary @@ Dic.Engine.check e file with
    | Ok (result, _) -> Dic.Report.by_rule_prefix result.Dic.Engine.report "lint."
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "off by default" 0 (List.length (run false));
  Alcotest.(check bool) "on by request" true (run true <> [])

let () =
  Alcotest.run "lint"
    [ ( "deck",
        [ Alcotest.test_case "R001 odd width" `Quick test_r001_odd_width;
          Alcotest.test_case "R002 non-positive" `Quick test_r002_non_positive;
          Alcotest.test_case "R003 off-quantum" `Quick test_r003_off_quantum;
          Alcotest.test_case "R003 no quantum" `Quick
            test_r003_silent_when_lambda_not_divisible;
          Alcotest.test_case "R004 contact pad" `Quick test_r004_contact_pad;
          Alcotest.test_case "R005 asymmetric" `Quick test_r005_asymmetric_pair;
          Alcotest.test_case "R006 unreachable" `Quick test_r006_unreachable_pair;
          Alcotest.test_case "R007 shadowed" `Quick test_r007_shadowed_pair;
          Alcotest.test_case "symmetric override quiet" `Quick
            test_symmetric_override_is_quiet ] );
      ( "deck-source",
        [ Alcotest.test_case "R008 unknown key" `Quick test_r008_unknown_key;
          Alcotest.test_case "R009 duplicate key" `Quick test_r009_duplicate_key;
          Alcotest.test_case "R010 malformed" `Quick test_r010_malformed_line;
          Alcotest.test_case "R011 bad value" `Quick test_r011_bad_value;
          Alcotest.test_case "relocated record diags" `Quick test_record_diags_relocated;
          Alcotest.test_case "broken-demo fixture" `Quick test_broken_demo_deck;
          Alcotest.test_case "of_string line numbers" `Quick test_of_string_line_numbers ] );
      ( "design",
        [ Alcotest.test_case "D001 undefined call" `Quick test_d001_undefined_call;
          Alcotest.test_case "D002 call cycle" `Quick test_d002_call_cycle;
          Alcotest.test_case "D003 unused definition" `Quick test_d003_unused_definition;
          Alcotest.test_case "D003 library quiet" `Quick test_d003_silent_for_library;
          Alcotest.test_case "D004 duplicate symbol" `Quick test_d004_duplicate_symbol;
          Alcotest.test_case "D005 skeleton collapse" `Quick test_d005_skeleton_collapse;
          Alcotest.test_case "D006 net reuse" `Quick test_d006_net_reuse_disjoint;
          Alcotest.test_case "D007 coincident calls" `Quick test_d007_coincident_calls;
          Alcotest.test_case "D008 overflow" `Quick test_d008_transform_overflow;
          Alcotest.test_case "D009 missing layers" `Quick test_d009_device_missing_layers;
          Alcotest.test_case "D009 no crossing" `Quick test_d009_no_crossing ] );
      ( "clean",
        [ Alcotest.test_case "clean designs" `Quick test_clean_designs_lint_clean;
          Alcotest.test_case "builtin decks" `Quick test_builtin_decks_lint_clean ] );
      ( "plumbing",
        [ Alcotest.test_case "deterministic sort" `Quick test_sort_deterministic;
          Alcotest.test_case "explain total" `Quick test_explain_total;
          Alcotest.test_case "sarif deterministic" `Quick
            test_sarif_deterministic_and_parses;
          Alcotest.test_case "render and metrics" `Quick test_render_and_metrics;
          Alcotest.test_case "engine lint flag" `Quick test_engine_lint_flag ] ) ]
