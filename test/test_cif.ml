(* Tests for the extended-CIF parser and printer. *)

let parse_ok src =
  match Cif.Parse.file src with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse failed: %s" (Cif.Parse.string_of_error e)

let parse_err src =
  match Cif.Parse.file src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Elements                                                            *)

let test_box_basic () =
  let f = parse_ok "L NM; B 20 10 15 25; E" in
  match f.Cif.Ast.top_elements with
  | [ Cif.Ast.Box { layer; rect; net; _ } ] ->
    Alcotest.(check string) "layer" "NM" layer;
    Alcotest.(check bool) "net" true (net = None);
    Alcotest.(check int) "x0" 5 (Geom.Rect.x0 rect);
    Alcotest.(check int) "y0" 20 (Geom.Rect.y0 rect);
    Alcotest.(check int) "x1" 25 (Geom.Rect.x1 rect);
    Alcotest.(check int) "y1" 30 (Geom.Rect.y1 rect)
  | _ -> Alcotest.fail "expected one box"

let test_box_rotated_direction () =
  (* Direction (0,1): length runs along y. *)
  let f = parse_ok "L NM; B 20 10 0 0 0 1; E" in
  match f.Cif.Ast.top_elements with
  | [ Cif.Ast.Box { rect; _ } ] ->
    Alcotest.(check int) "width is 10" 10 (Geom.Rect.width rect);
    Alcotest.(check int) "height is 20" 20 (Geom.Rect.height rect)
  | _ -> Alcotest.fail "expected one box"

let test_box_diagonal_rejected () =
  let e = parse_err "L NM; B 20 10 0 0 1 1; E" in
  Alcotest.(check bool) "mentions direction" true
    (String.length e.Cif.Parse.message > 0)

let test_wire () =
  let f = parse_ok "L NP; W 200 0 0 1000 0 1000 500; E" in
  match f.Cif.Ast.top_elements with
  | [ Cif.Ast.Wire { width; path; _ } ] ->
    Alcotest.(check int) "width" 200 width;
    Alcotest.(check int) "points" 3 (List.length path)
  | _ -> Alcotest.fail "expected one wire"

let test_polygon () =
  let f = parse_ok "L ND; P 0 0 100 0 100 100; E" in
  match f.Cif.Ast.top_elements with
  | [ Cif.Ast.Polygon { pts; _ } ] -> Alcotest.(check int) "points" 3 (List.length pts)
  | _ -> Alcotest.fail "expected one polygon"

let test_negative_coordinates () =
  let f = parse_ok "L NM; W 200 -100 -200 300 -200; E" in
  match f.Cif.Ast.top_elements with
  | [ Cif.Ast.Wire { path = [ p; _ ]; _ } ] ->
    Alcotest.(check bool) "negative point" true (Geom.Pt.equal p (Geom.Pt.make (-100) (-200)))
  | _ -> Alcotest.fail "expected a two-point wire"

let test_element_before_layer_fails () =
  let e = parse_err "B 10 10 0 0; E" in
  Alcotest.(check bool) "layer error" true
    (Astring_contains.contains e.Cif.Parse.message "layer")

(* ------------------------------------------------------------------ *)
(* Symbols and calls                                                   *)

let test_symbol_definition () =
  let f = parse_ok "DS 7; 9 mycell; 4D ENH; L ND; B 10 10 5 5; DF; C 7 T 100 200; E" in
  (match f.Cif.Ast.symbols with
  | [ s ] ->
    Alcotest.(check int) "id" 7 s.Cif.Ast.id;
    Alcotest.(check (option string)) "name" (Some "mycell") s.Cif.Ast.name;
    Alcotest.(check (option string)) "device" (Some "ENH") s.Cif.Ast.device;
    Alcotest.(check int) "elements" 1 (List.length s.Cif.Ast.elements)
  | _ -> Alcotest.fail "expected one symbol");
  match f.Cif.Ast.top_calls with
  | [ c ] ->
    Alcotest.(check int) "callee" 7 c.Cif.Ast.callee;
    let p = Geom.Transform.apply_pt c.Cif.Ast.transform Geom.Pt.zero in
    Alcotest.(check bool) "translation" true (Geom.Pt.equal p (Geom.Pt.make 100 200))
  | _ -> Alcotest.fail "expected one call"

let test_ds_scale () =
  let f = parse_ok "DS 1 2 1; L NM; B 10 10 5 5; DF; C 1; E" in
  match (List.hd f.Cif.Ast.symbols).Cif.Ast.elements with
  | [ Cif.Ast.Box { rect; _ } ] ->
    Alcotest.(check int) "scaled width" 20 (Geom.Rect.width rect);
    Alcotest.(check int) "scaled x1" 20 (Geom.Rect.x1 rect)
  | _ -> Alcotest.fail "expected one box"

let test_ds_scale_division () =
  let f = parse_ok "DS 1 1 2; L NM; B 20 20 10 10; DF; C 1; E" in
  match (List.hd f.Cif.Ast.symbols).Cif.Ast.elements with
  | [ Cif.Ast.Box { rect; _ } ] -> Alcotest.(check int) "halved" 10 (Geom.Rect.width rect)
  | _ -> Alcotest.fail "expected one box"

let test_call_transforms () =
  let f = parse_ok "DS 1; L NM; B 10 10 5 5; DF; C 1 R 0 1 T 50 0; E" in
  match f.Cif.Ast.top_calls with
  | [ c ] ->
    (* rotate ccw then translate: (5,0) -> (0,5) -> (50,5) *)
    let p = Geom.Transform.apply_pt c.Cif.Ast.transform (Geom.Pt.make 5 0) in
    Alcotest.(check bool) "rotate then translate" true (Geom.Pt.equal p (Geom.Pt.make 50 5))
  | _ -> Alcotest.fail "expected one call"

let test_call_mirror () =
  let f = parse_ok "DS 1; L NM; B 10 10 5 5; DF; C 1 M X; E" in
  match f.Cif.Ast.top_calls with
  | [ c ] ->
    let p = Geom.Transform.apply_pt c.Cif.Ast.transform (Geom.Pt.make 5 3) in
    Alcotest.(check bool) "mirrored x" true (Geom.Pt.equal p (Geom.Pt.make (-5) 3))
  | _ -> Alcotest.fail "expected one call"

let test_nested_ds_rejected () =
  let e = parse_err "DS 1; DS 2; DF; DF; E" in
  Alcotest.(check bool) "nested" true (Astring_contains.contains e.Cif.Parse.message "nested")

let test_duplicate_symbol_rejected () =
  let e = parse_err "DS 1; DF; DS 1; DF; E" in
  Alcotest.(check bool) "dup" true (Astring_contains.contains e.Cif.Parse.message "twice")

let test_rotation_non_orthogonal_rejected () =
  let e = parse_err "DS 1; DF; C 1 R 1 1; E" in
  Alcotest.(check bool) "rot" true
    (Astring_contains.contains e.Cif.Parse.message "rotation")

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)

let test_net_annotation () =
  let f = parse_ok "L NM; B 10 10 5 5; 4N VDD!; E" in
  match f.Cif.Ast.top_elements with
  | [ e ] -> Alcotest.(check (option string)) "net" (Some "VDD!") (Cif.Ast.element_net e)
  | _ -> Alcotest.fail "expected one element"

let test_net_applies_to_latest () =
  let f = parse_ok "L NM; B 10 10 5 5; B 10 10 50 50; 4N out; E" in
  match f.Cif.Ast.top_elements with
  | [ a; b ] ->
    Alcotest.(check (option string)) "first unlabelled" None (Cif.Ast.element_net a);
    Alcotest.(check (option string)) "second labelled" (Some "out") (Cif.Ast.element_net b)
  | _ -> Alcotest.fail "expected two elements"

let test_unknown_user_command_skipped () =
  let f = parse_ok "5 whatever junk 1 2 3; L NM; B 10 10 5 5; E" in
  Alcotest.(check int) "element parsed" 1 (List.length f.Cif.Ast.top_elements)

let test_comments () =
  let f = parse_ok "(a comment (nested) here) L NM; (mid) B 10 10 5 5; E (trailing)" in
  Alcotest.(check int) "element parsed" 1 (List.length f.Cif.Ast.top_elements)

let test_net_without_element_fails () =
  let e = parse_err "4N foo; E" in
  Alcotest.(check bool) "no element" true
    (Astring_contains.contains e.Cif.Parse.message "element")

let test_missing_end () =
  let e = parse_err "L NM; B 10 10 5 5;" in
  Alcotest.(check bool) "missing E" true (Astring_contains.contains e.Cif.Parse.message "E")

(* ------------------------------------------------------------------ *)
(* Acyclicity and roots                                                *)

let test_acyclic_ok () =
  let f = parse_ok "DS 1; L NM; B 10 10 5 5; DF; DS 2; C 1; DF; C 2; E" in
  Alcotest.(check bool) "acyclic" true (Cif.Ast.check_acyclic f = Ok ())

let test_cycle_detected () =
  let f = parse_ok "DS 1; C 2; DF; DS 2; C 1; DF; C 1; E" in
  match Cif.Ast.check_acyclic f with
  | Error msg -> Alcotest.(check bool) "cycle" true (Astring_contains.contains msg "cycle")
  | Ok () -> Alcotest.fail "expected a cycle"

let test_undefined_callee () =
  let f = parse_ok "C 42; E" in
  match Cif.Ast.check_acyclic f with
  | Error msg ->
    Alcotest.(check bool) "undefined" true (Astring_contains.contains msg "undefined")
  | Ok () -> Alcotest.fail "expected undefined symbol"

let test_roots () =
  let f = parse_ok "DS 1; DF; DS 2; C 1; DF; E" in
  match Cif.Ast.roots f with
  | [ s ] -> Alcotest.(check int) "root id" 2 s.Cif.Ast.id
  | _ -> Alcotest.fail "expected one root"

(* ------------------------------------------------------------------ *)
(* Printer round trip                                                  *)

let norm_file (f : Cif.Ast.file) =
  (* Compare through geometry: layer, bbox, nets, call transforms. *)
  let elt e =
    (Cif.Ast.element_layer e, Cif.Ast.element_bbox e, Cif.Ast.element_net e)
  in
  ( List.map
      (fun (s : Cif.Ast.symbol) ->
        (s.Cif.Ast.id, s.Cif.Ast.name, s.Cif.Ast.device,
         List.map elt s.Cif.Ast.elements,
         List.map (fun (c : Cif.Ast.call) -> (c.Cif.Ast.callee, c.Cif.Ast.transform)) s.Cif.Ast.calls))
      f.Cif.Ast.symbols,
    List.map elt f.Cif.Ast.top_elements,
    List.map (fun (c : Cif.Ast.call) -> (c.Cif.Ast.callee, c.Cif.Ast.transform)) f.Cif.Ast.top_calls )

let roundtrip f =
  let printed = Cif.Print.to_string f in
  let f' = parse_ok printed in
  Alcotest.(check bool) "roundtrip" true (norm_file f = norm_file f')

let test_print_roundtrip_simple () =
  roundtrip
    (parse_ok
       "DS 3; 9 cell; 4D CON; L NC; B 200 200 100 100; L NM; B 400 400 100 100; 4N x; DF; C 3 T 500 700; C 3 R 0 1 T 0 0; C 3 M X T -100 50; E")

let test_print_roundtrip_inverter () =
  roundtrip (Layoutgen.Cells.chain ~lambda:100 2)

let test_print_odd_box_as_polygon () =
  (* A box with odd dimensions cannot be centre-specified; the printer
     falls back to a polygon with the same bbox. *)
  let f =
    { Cif.Ast.symbols = [];
      top_elements =
        [ Cif.Ast.Box { layer = "NM"; rect = Geom.Rect.make 0 0 5 7; net = None; loc = None } ];
      top_calls = [];
      waivers = [] }
  in
  let f' = parse_ok (Cif.Print.to_string f) in
  match f'.Cif.Ast.top_elements with
  | [ e ] ->
    Alcotest.(check bool) "same bbox" true
      (Geom.Rect.equal (Cif.Ast.element_bbox e) (Geom.Rect.make 0 0 5 7))
  | _ -> Alcotest.fail "expected one element"

let test_error_line_numbers () =
  let e = parse_err "L NM;\nB 10 10 0 0;\nB bogus; E" in
  Alcotest.(check int) "line 3" 3 e.Cif.Parse.line

(* ------------------------------------------------------------------ *)
(* Fuzzing                                                             *)

(* The parser must never raise on arbitrary input: it returns Ok or a
   positioned Error. *)
let prop_parse_total =
  QCheck2.Test.make ~name:"parser: total on arbitrary bytes" ~count:1000
    QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 80))
    (fun s ->
      match Cif.Parse.file s with Ok _ | Error _ -> true)

let prop_parse_total_cif_like =
  (* Streams built from CIF-ish tokens exercise deeper paths. *)
  let token =
    QCheck2.Gen.oneofl
      [ "B"; "W"; "P"; "L"; "DS"; "DF"; "C"; "E"; ";"; "NM"; "ND"; "4N"; "9";
        "T"; "M"; "X"; "R"; "0"; "1"; "42"; "-7"; "(c)"; " " ]
  in
  QCheck2.Test.make ~name:"parser: total on CIF-like token soup" ~count:1000
    QCheck2.Gen.(map (String.concat " ") (list_size (int_range 0 30) token))
    (fun s ->
      match Cif.Parse.file s with Ok _ | Error _ -> true)

let element_gen =
  let open QCheck2.Gen in
  let layer = oneofl [ "NM"; "ND"; "NP"; "NC" ] in
  let net = oneofl [ None; Some "a"; Some "VDD!" ] in
  let coord = map (fun v -> 2 * v) (int_range (-50) 50) in
  oneof
    [ map2
        (fun (layer, net) (x, y, w, h) ->
          Cif.Ast.Box
            { layer;
              rect = Geom.Rect.make x y (x + (2 * w) + 2) (y + (2 * h) + 2);
              net;
              loc = None })
        (pair layer net)
        (quad coord coord (int_range 0 20) (int_range 0 20));
      map2
        (fun (layer, net) (x, y, len) ->
          Cif.Ast.Wire
            { layer;
              width = 200;
              path = [ Geom.Pt.make x y; Geom.Pt.make (x + (2 * len) + 2) y ];
              net;
              loc = None })
        (pair layer net)
        (triple coord coord (int_range 0 30)) ]

let norm_file_prop (f : Cif.Ast.file) =
  List.map
    (fun e -> (Cif.Ast.element_layer e, Cif.Ast.element_bbox e, Cif.Ast.element_net e))
    f.Cif.Ast.top_elements

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"printer: parse (print f) = f on generated files" ~count:200
    QCheck2.Gen.(list_size (int_range 0 8) element_gen)
    (fun elements ->
      let f = { Cif.Ast.symbols = []; top_elements = elements; top_calls = []; waivers = [] } in
      match Cif.Parse.file (Cif.Print.to_string f) with
      | Ok f' -> norm_file_prop f = norm_file_prop f'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cif"
    [ ( "elements",
        [ Alcotest.test_case "box basic" `Quick test_box_basic;
          Alcotest.test_case "box rotated direction" `Quick test_box_rotated_direction;
          Alcotest.test_case "box diagonal rejected" `Quick test_box_diagonal_rejected;
          Alcotest.test_case "wire" `Quick test_wire;
          Alcotest.test_case "polygon" `Quick test_polygon;
          Alcotest.test_case "negative coordinates" `Quick test_negative_coordinates;
          Alcotest.test_case "element before layer" `Quick test_element_before_layer_fails ] );
      ( "symbols",
        [ Alcotest.test_case "definition" `Quick test_symbol_definition;
          Alcotest.test_case "DS scale up" `Quick test_ds_scale;
          Alcotest.test_case "DS scale down" `Quick test_ds_scale_division;
          Alcotest.test_case "call transforms" `Quick test_call_transforms;
          Alcotest.test_case "call mirror" `Quick test_call_mirror;
          Alcotest.test_case "nested DS rejected" `Quick test_nested_ds_rejected;
          Alcotest.test_case "duplicate symbol" `Quick test_duplicate_symbol_rejected;
          Alcotest.test_case "non-orthogonal rotation" `Quick
            test_rotation_non_orthogonal_rejected ] );
      ( "extensions",
        [ Alcotest.test_case "net annotation" `Quick test_net_annotation;
          Alcotest.test_case "net applies to latest" `Quick test_net_applies_to_latest;
          Alcotest.test_case "unknown user command" `Quick test_unknown_user_command_skipped;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "net without element" `Quick test_net_without_element_fails;
          Alcotest.test_case "missing end" `Quick test_missing_end ] );
      ( "structure",
        [ Alcotest.test_case "acyclic ok" `Quick test_acyclic_ok;
          Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
          Alcotest.test_case "undefined callee" `Quick test_undefined_callee;
          Alcotest.test_case "roots" `Quick test_roots ] );
      ( "printer",
        [ Alcotest.test_case "roundtrip simple" `Quick test_print_roundtrip_simple;
          Alcotest.test_case "roundtrip inverter chain" `Quick test_print_roundtrip_inverter;
          Alcotest.test_case "odd box via polygon" `Quick test_print_odd_box_as_polygon;
          Alcotest.test_case "error line numbers" `Quick test_error_line_numbers ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parse_total; prop_parse_total_cif_like; prop_print_parse_roundtrip ] ) ]
