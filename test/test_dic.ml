(* Integration tests for the Design Integrity and Immunity Checker:
   model elaboration, the six pipeline stages, classification, and
   end-to-end behaviour on the cell library and pathology kits. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda
let l v = v * lambda

let parse src =
  match Cif.Parse.file src with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse: %s" (Cif.Parse.string_of_error e)

let elaborate_ok file =
  match Dic.Model.elaborate rules file with
  | Ok (m, issues) -> (m, issues)
  | Error e -> Alcotest.failf "elaborate: %s" e

let run_ok ?config file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create ?config rules) file with
  | Ok (r, _) -> r
  | Error e -> Alcotest.failf "checker: %s" e

let errors_of result = Dic.Report.errors result.Dic.Engine.report

let error_rules result =
  List.map (fun (v : Dic.Report.violation) -> v.Dic.Report.rule) (errors_of result)
  |> List.sort_uniq String.compare

let has_rule prefix result =
  Dic.Report.by_rule_prefix result.Dic.Engine.report prefix
  |> List.exists (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)

let test_model_chain () =
  let m, issues = elaborate_ok (Layoutgen.Cells.chain ~lambda 3) in
  Alcotest.(check (list string)) "no issues" []
    (List.map (fun (v : Dic.Report.violation) -> v.Dic.Report.rule) issues);
  Alcotest.(check int) "symbols" 5 (Dic.Model.symbol_count m);
  Alcotest.(check int) "depth: top/cell/device" 2 (Dic.Model.depth m);
  Alcotest.(check bool) "definition < instantiated" true
    (Dic.Model.definition_elements m < Dic.Model.instantiated_elements m)

let test_model_device_binding () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 1) in
  let enh = Dic.Model.find m Layoutgen.Cells.id_enh in
  Alcotest.(check bool) "device kind" true (enh.Dic.Model.device = Some Tech.Device.Enhancement);
  Alcotest.(check bool) "is_device" true (Dic.Model.is_device enh);
  let inv = Dic.Model.find m Layoutgen.Cells.id_inv in
  Alcotest.(check bool) "composite not device" false (Dic.Model.is_device inv)

let test_model_unknown_layer () =
  let _, issues = elaborate_ok (parse "L QQ; B 200 200 100 100; E") in
  Alcotest.(check bool) "unknown layer reported" true
    (List.exists (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "layer.unknown") issues)

let test_model_unknown_device () =
  let _, issues = elaborate_ok (parse "DS 1; 4D WIDGET; DF; C 1; E" ) in
  Alcotest.(check bool) "unknown device reported" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "device.unknown-type")
       issues)

let test_model_device_with_calls () =
  let _, issues =
    elaborate_ok
      (parse "DS 1; L NM; B 300 300 150 150; DF; DS 2; 4D CON; C 1; DF; C 2; E")
  in
  Alcotest.(check bool) "device with calls reported" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "device.contains-calls")
       issues)

let test_model_nonrect_polygon_dropped () =
  let _, issues = elaborate_ok (parse "L NM; P 0 0 400 0 200 400; E") in
  Alcotest.(check bool) "reported" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "polygon.nonrectangular"
         || v.Dic.Report.rule = "polygon.nonrectilinear")
       issues)

let test_model_bbox () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 2) in
  let inv = Dic.Model.find m Layoutgen.Cells.id_inv in
  match inv.Dic.Model.sbbox with
  | Some bb ->
    Alcotest.(check bool) "cell spans rails vertically" true
      (Geom.Rect.y0 bb <= 0 && Geom.Rect.y1 bb >= l 28)
  | None -> Alcotest.fail "expected a bbox"

let test_model_layer_region () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 1) in
  let enh = Dic.Model.find m Layoutgen.Cells.id_enh in
  let gate =
    Geom.Region.inter
      (Dic.Model.layer_region enh Tech.Layer.Poly)
      (Dic.Model.layer_region enh Tech.Layer.Diffusion)
  in
  Alcotest.(check int) "gate area is 2x2 lambda" (l 2 * l 2) (Geom.Region.area gate)

(* ------------------------------------------------------------------ *)
(* Element checks                                                      *)

let element_errors src =
  let m, _ = elaborate_ok (parse src) in
  Dic.Element_checks.check m

let test_elements_narrow_box () =
  let errs = element_errors "L NP; B 100 600 50 300; E" in
  Alcotest.(check int) "flagged" 1 (List.length errs)

let test_elements_narrow_wire () =
  let errs = element_errors "L NM; W 200 0 0 1000 0; E" in
  Alcotest.(check bool) "metal wire 2L < 3L" true (List.length errs >= 1)

let test_elements_legal_pass () =
  Alcotest.(check int) "clean" 0
    (List.length (element_errors "L NM; W 300 0 0 1000 0; L NP; B 200 600 100 300; E"))

let test_elements_polygon_width () =
  (* An L-polygon with a 1-lambda arm. *)
  let errs =
    element_errors "L NP; P 0 0 600 0 600 100 200 100 200 600 0 600; E"
  in
  Alcotest.(check bool) "narrow arm flagged" true (List.length errs >= 1)

let test_elements_contact_outside_device () =
  let errs = element_errors "L NC; B 200 200 100 100; E" in
  Alcotest.(check bool) "placement error" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "placement.NC")
       errs)

let test_elements_device_symbols_skipped () =
  (* A 1-lambda bar inside a Checked device raises nothing here. *)
  let errs = element_errors "DS 1; 4D CHK; L NP; B 100 600 50 300; DF; C 1; E" in
  Alcotest.(check int) "skipped" 0 (List.length errs)

(* ------------------------------------------------------------------ *)
(* Device checks                                                       *)

let device_errors src =
  let m, _ = elaborate_ok (parse src) in
  List.filter
    (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
    (Dic.Devices.check m)

let rule_present rule errs =
  List.exists (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = rule) errs

let test_device_enh_good () =
  let f = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.enh ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_enh ] () in
  let m, _ = elaborate_ok f in
  Alcotest.(check int) "clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)))

let test_device_enh_missing_gate () =
  (* Poly beside the diffusion, not crossing it. *)
  let errs =
    device_errors "DS 1; 4D ENH; L ND; B 200 800 100 100; L NP; B 600 200 800 100; DF; C 1; E"
  in
  Alcotest.(check bool) "missing gate" true (rule_present "device.missing-gate" errs)

let test_device_enh_short_overhang () =
  (* Poly crosses but only sticks out 1 lambda. *)
  let errs =
    device_errors
      "DS 1; 4D ENH; L ND; B 200 800 100 400; L NP; B 400 200 100 400; DF; C 1; E"
  in
  Alcotest.(check bool) "overhang" true (rule_present "device.gate-overhang" errs)

let test_device_enh_short_diff_extension () =
  let errs =
    device_errors
      "DS 1; 4D ENH; L ND; B 200 400 100 400; L NP; B 600 200 100 400; DF; C 1; E"
  in
  Alcotest.(check bool) "diff extension" true (rule_present "device.diff-extension" errs)

let test_device_contact_over_gate () =
  let kit = Layoutgen.Pathology.fig7_contact_gate ~lambda in
  let m, _ = elaborate_ok kit.Layoutgen.Pathology.file in
  Alcotest.(check bool) "contact over gate" true
    (rule_present "device.contact-over-gate" (Dic.Devices.check m))

let test_device_enh_implanted () =
  let errs =
    device_errors
      "DS 1; 4D ENH; L ND; B 200 800 100 100; L NP; B 600 200 100 100; L NI; B 600 600 100 100; DF; C 1; E"
  in
  Alcotest.(check bool) "unexpected implant" true
    (rule_present "device.unexpected-implant" errs)

let test_device_dep_good () =
  let f = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.dep ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_dep ] () in
  let m, _ = elaborate_ok f in
  Alcotest.(check int) "clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)))

let test_device_dep_missing_implant () =
  let errs =
    device_errors "DS 1; 4D DEP; L ND; B 200 800 100 100; L NP; B 600 200 100 100; DF; C 1; E"
  in
  Alcotest.(check bool) "implant surround" true
    (rule_present "device.implant-surround" errs)

let test_device_contact_good_and_bad () =
  let good = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.contact_diff ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_con ] () in
  let m, _ = elaborate_ok good in
  Alcotest.(check int) "good contact clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)));
  (* Metal surround too small. *)
  let errs =
    device_errors
      "DS 1; 4D CON; L NC; B 200 200 100 100; L ND; B 400 400 100 100; L NM; B 200 200 100 100; DF; C 1; E"
  in
  Alcotest.(check bool) "metal surround" true (rule_present "device.metal-surround" errs);
  (* Both poly and diffusion present. *)
  let errs =
    device_errors
      "DS 1; 4D CON; L NC; B 200 200 100 100; L ND; B 400 400 100 100; L NP; B 400 400 100 100; L NM; B 400 400 100 100; DF; C 1; E"
  in
  Alcotest.(check bool) "ambiguous landing" true
    (rule_present "device.ambiguous-landing" errs);
  (* Nothing underneath. *)
  let errs =
    device_errors
      "DS 1; 4D CON; L NC; B 200 200 100 100; L NM; B 400 400 100 100; DF; C 1; E"
  in
  Alcotest.(check bool) "no landing" true (rule_present "device.no-landing" errs)

let test_device_butting () =
  let good = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.butting ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_butt ] () in
  let m, _ = elaborate_ok good in
  Alcotest.(check int) "good butting clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)));
  (* Contact failing to cover the overlap. *)
  let errs =
    device_errors
      "DS 1; 4D BUT; L ND; B 200 300 100 150; L NP; B 200 300 100 350; L NC; B 200 100 100 450; L NM; B 400 500 100 250; DF; C 1; E"
  in
  Alcotest.(check bool) "butt uncovered" true
    (rule_present "device.contact-covers-butt" errs)

let test_device_buried () =
  let good = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.buried ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_bur ] () in
  let m, _ = elaborate_ok good in
  Alcotest.(check int) "good buried clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)));
  let errs =
    device_errors
      "DS 1; 4D BUR; L ND; B 200 400 100 200; L NP; B 200 400 100 400; L NB; B 200 200 100 300; DF; C 1; E"
  in
  Alcotest.(check bool) "window too small" true (rule_present "device.buried-window" errs)

let test_device_pad () =
  let good = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.pad ~lambda ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_pad ] () in
  let m, _ = elaborate_ok good in
  Alcotest.(check int) "good pad clean" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          (Dic.Devices.check m)));
  let errs =
    device_errors
      "DS 1; 4D PAD; L NM; B 800 800 400 400; L NG; B 800 800 400 400; DF; C 1; E"
  in
  Alcotest.(check bool) "pad metal surround" true (rule_present "device.pad-metal" errs)

let test_device_checked_waived () =
  (* Arbitrary junk inside a Checked symbol: no errors, one info. *)
  let m, _ =
    elaborate_ok
      (parse "DS 1; 4D CHK; L NP; B 100 100 50 50; L ND; B 100 100 50 50; DF; C 1; E")
  in
  let vs = Dic.Devices.check m in
  Alcotest.(check int) "no errors" 0
    (List.length
       (List.filter
          (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error)
          vs));
  Alcotest.(check bool) "waiver noted" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "device.checked-waived")
       vs)

let test_device_interfaces () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 1) in
  let iface id =
    match Dic.Devices.interface rules (Dic.Model.find m id) with
    | Some i -> i
    | None -> Alcotest.fail "expected an interface"
  in
  Alcotest.(check int) "transistor: gate + 2 sd" 3
    (List.length (iface Layoutgen.Cells.id_enh).Dic.Devices.ports);
  Alcotest.(check int) "contact: one via" 1
    (List.length (iface Layoutgen.Cells.id_con).Dic.Devices.ports);
  let inv = Dic.Model.find m Layoutgen.Cells.id_inv in
  Alcotest.(check bool) "composite has no interface" true
    (Dic.Devices.interface rules inv = None)

let test_resistor_interface () =
  let f = Layoutgen.Builder.file ~symbols:[ Layoutgen.Cells.resistor ~lambda () ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_res ] () in
  let m, _ = elaborate_ok f in
  match Dic.Devices.interface rules (Dic.Model.find m Layoutgen.Cells.id_res) with
  | Some i -> Alcotest.(check int) "two terminals" 2 (List.length i.Dic.Devices.ports)
  | None -> Alcotest.fail "expected an interface"

(* ------------------------------------------------------------------ *)
(* Net-list generation                                                 *)

let test_netgen_chain_nets () =
  let result = run_ok (Layoutgen.Cells.chain ~lambda 4) in
  let nets = result.Dic.Engine.netlist.Netlist.Net.nets in
  (* GND, VDD, one input, four stage outputs. *)
  Alcotest.(check int) "net count" 7 (List.length nets);
  let find n = Netlist.Net.find_by_name result.Dic.Engine.netlist n in
  (match find "GND!" with
  | Some net ->
    Alcotest.(check int) "GND terminals: 2 per cell" 8 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "no GND net");
  match find "0:inv.out" with
  | Some net ->
    (* T1 drain + buried via + T2 gate + T2 source + next cell's T1 gate. *)
    Alcotest.(check int) "output terminals" 5 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "no output net"

let test_netgen_dot_notation () =
  let result = run_ok (Layoutgen.Cells.chain ~lambda 2) in
  let names =
    List.concat_map
      (fun (n : Netlist.Net.net) -> n.Netlist.Net.names)
      result.Dic.Engine.netlist.Netlist.Net.nets
  in
  Alcotest.(check bool) "dot-qualified names" true (List.mem "1:inv.out" names)

let test_netgen_illegal_connection () =
  (* Fig 15 butting: touching geometry without skeletal connection. *)
  let f = parse "L NP; B 100 600 50 300; B 100 600 150 300; E" in
  let m, _ = elaborate_ok f in
  let _, issues = Dic.Netgen.build m in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "connection.illegal")
       issues)

let test_netgen_resolve () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 1) in
  let nets, _ = Dic.Netgen.build m in
  let inv = Dic.Model.find m Layoutgen.Cells.id_inv in
  (* Elements 0 and 1 of the inverter are the GND and VDD rails. *)
  let rail0 = Dic.Netgen.resolve nets Layoutgen.Cells.id_inv ~path:[] ~eid:0 in
  let rail1 = Dic.Netgen.resolve nets Layoutgen.Cells.id_inv ~path:[] ~eid:1 in
  Alcotest.(check bool) "rails resolve" true (rail0 <> None && rail1 <> None);
  Alcotest.(check bool) "rails on different nets" true (rail0 <> rail1);
  ignore inv

let test_netgen_locality () =
  let result = run_ok (Layoutgen.Cells.grid ~lambda ~nx:2 ~ny:2) in
  let local, crossing = Dic.Netgen.locality result.Dic.Engine.nets in
  Alcotest.(check bool) "some crossing nets" true (crossing > 0);
  Alcotest.(check int) "total is net count" (List.length result.Dic.Engine.netlist.Netlist.Net.nets)
    (local + crossing)

(* ------------------------------------------------------------------ *)
(* Interactions                                                        *)

let interaction_errors src =
  let m, _ = elaborate_ok (parse src) in
  let nets, _ = Dic.Netgen.build m in
  let vs, stats = Dic.Interactions.check nets in
  (vs, stats)

let test_interactions_diff_net_spacing () =
  let vs, _ = interaction_errors "L NM; B 400 400 200 200; 4N a; B 400 400 800 200; 4N b; E" in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "spacing.NM")
       vs)

let test_interactions_same_net_skip () =
  (* Same labels but NOT connected: labels are local, so they stay two
     nets -- use a genuinely connected comb instead. *)
  let kit = Layoutgen.Pathology.fig5_equivalent ~lambda in
  let m, _ = elaborate_ok kit.Layoutgen.Pathology.file in
  let nets, _ = Dic.Netgen.build m in
  let vs, stats = Dic.Interactions.check nets in
  Alcotest.(check int) "no violations" 0 (List.length vs);
  let c = Hashtbl.fold (fun _ (c : Dic.Interactions.cell_stats) acc -> acc + c.Dic.Interactions.skipped_same_net) stats.Dic.Interactions.cells 0 in
  Alcotest.(check bool) "same-net skips recorded" true (c > 0)

let test_interactions_short () =
  let vs, _ = interaction_errors "L NM; B 400 400 200 200; 4N a; B 400 400 500 200; 4N b; E" in
  Alcotest.(check bool) "short" true
    (List.exists (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "short.NM") vs)

let test_interactions_accidental_transistor () =
  let vs, _ =
    interaction_errors "L NP; B 200 800 500 400; L ND; B 800 200 500 400; E"
  in
  Alcotest.(check bool) "accidental" true
    (List.exists
       (fun (v : Dic.Report.violation) ->
         v.Dic.Report.rule = "integrity.accidental-transistor")
       vs)

let test_interactions_poly_diff_touch_not_accidental () =
  (* Touching but not overlapping: a spacing violation, not a device. *)
  let vs, _ = interaction_errors "L NP; B 200 800 100 400; L ND; B 200 800 300 400; E" in
  Alcotest.(check bool) "not accidental" false
    (List.exists
       (fun (v : Dic.Report.violation) ->
         v.Dic.Report.rule = "integrity.accidental-transistor")
       vs);
  Alcotest.(check bool) "but spacing-flagged" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "spacing.ND-NP")
       vs)

let test_interactions_memoisation () =
  let result = run_ok (Layoutgen.Cells.grid ~lambda ~nx:6 ~ny:6) in
  let s = result.Dic.Engine.interaction_stats in
  Alcotest.(check bool) "memo hits dominate" true
    (s.Dic.Interactions.memo_hits > s.Dic.Interactions.memo_misses)

let test_interactions_net_blind_ablation () =
  let config =
    { Dic.Engine.default_config with
      Dic.Engine.interactions =
        { Dic.Interactions.default_config with Dic.Interactions.check_same_net = true } }
  in
  let kit = Layoutgen.Pathology.fig5_equivalent ~lambda in
  let result = run_ok ~config kit.Layoutgen.Pathology.file in
  Alcotest.(check bool) "net-blind flags the comb" true (errors_of result <> [])

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)

let test_e2e_chain_clean () =
  let result = run_ok (Layoutgen.Cells.chain ~lambda 4) in
  Alcotest.(check (list string)) "no errors" [] (error_rules result)

let test_e2e_grid_clean () =
  let result = run_ok (Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:3) in
  Alcotest.(check (list string)) "no errors" [] (error_rules result)

let test_e2e_grid_blocks_clean () =
  let result = run_ok (Layoutgen.Cells.grid_blocks ~lambda ~nx:4 ~ny:4) in
  Alcotest.(check (list string)) "no errors" [] (error_rules result)

let test_e2e_injections_all_found_no_false () =
  let clean = Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:2 in
  let margin = (4 * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
  let salted, truths =
    Layoutgen.Inject.apply clean
      (Layoutgen.Inject.standard_batch ~lambda ~at:(margin, 0) ~step:(10 * lambda)
      @ [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0);
          Layoutgen.Inject.butting_halves ~lambda ~at:(margin, 45 * lambda) ])
  in
  let result = run_ok salted in
  let outcome =
    Dic.Classify.classify ~tolerance:(2 * lambda) truths
      (Dic.Classify.of_report result.Dic.Engine.report)
  in
  Alcotest.(check int) "all real defects flagged" (List.length truths)
    (List.length outcome.Dic.Classify.flagged);
  Alcotest.(check int) "no false errors" 0 (List.length outcome.Dic.Classify.false_findings)

let test_e2e_pathology_kits () =
  List.iter
    (fun (kit : Layoutgen.Pathology.kit) ->
      let result = run_ok kit.Layoutgen.Pathology.file in
      let outcome =
        Dic.Classify.classify ~tolerance:(2 * lambda) kit.Layoutgen.Pathology.truths
          (Dic.Classify.of_report result.Dic.Engine.report)
      in
      Alcotest.(check int)
        (kit.Layoutgen.Pathology.kit_name ^ ": all truths flagged")
        (List.length kit.Layoutgen.Pathology.truths)
        (List.length outcome.Dic.Classify.flagged);
      if kit.Layoutgen.Pathology.kit_name <> "fig2b" then
        Alcotest.(check int)
          (kit.Layoutgen.Pathology.kit_name ^ ": no false errors")
          0
          (List.length outcome.Dic.Classify.false_findings))
    (Layoutgen.Pathology.all ~lambda)

let test_e2e_supply_short_erc () =
  let salted, _ =
    Layoutgen.Inject.apply (Layoutgen.Cells.chain ~lambda 2)
      [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0) ]
  in
  let result = run_ok salted in
  Alcotest.(check bool) "supply short" true (has_rule "erc.supply-short" result)

let test_e2e_stage_times_present () =
  let result = run_ok (Layoutgen.Cells.chain ~lambda 2) in
  Alcotest.(check bool) "stages timed" true
    (List.length (Dic.Metrics.stage_seconds result.Dic.Engine.metrics) >= 6)

let prop_chain_nets =
  QCheck2.Test.make ~name:"e2e: chain of n has n+3 nets and no errors" ~count:8
    QCheck2.Gen.(int_range 1 8)
    (fun n ->
      let result = run_ok (Layoutgen.Cells.chain ~lambda n) in
      List.length result.Dic.Engine.netlist.Netlist.Net.nets = n + 3
      && errors_of result = [])

let prop_grid_clean =
  QCheck2.Test.make ~name:"e2e: any small grid is clean" ~count:6
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 3))
    (fun (nx, ny) ->
      let result = run_ok (Layoutgen.Cells.grid ~lambda ~nx ~ny) in
      errors_of result = [])

(* ------------------------------------------------------------------ *)
(* Process-model modes                                                 *)

let exposure_model = Process_model.Exposure.make ~sigma:60. ()

let test_relational_narrow_poly_flagged () =
  (* A transistor with 1-lambda poly: legal by the fixed rule except
     element width (waived inside devices), but its end-cap retreat
     eats the overhang. *)
  let narrow =
    (* Diffusion runs vertically; the poly crossing it is 1 lambda wide
       (y 0..100) with the regulation 2-lambda overhang each side. *)
    Layoutgen.Builder.symbol ~id:40 ~name:"enhnarrow" ~device:"ENH"
      [ Layoutgen.Builder.box ~layer:"ND" 0 (-300) 200 400;
        Layoutgen.Builder.box ~layer:"NP" (-200) 0 400 100 ]
      []
  in
  let f =
    Layoutgen.Builder.file ~symbols:[ narrow ]
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) 40 ] ()
  in
  let m, _ = elaborate_ok f in
  let sym = Dic.Model.find m 40 in
  let vs = Dic.Devices.check_relational exposure_model rules sym in
  Alcotest.(check bool) "narrow-poly transistor flagged" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "device.relational-overhang")
       vs)

let test_relational_standard_cell_passes () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 1) in
  Alcotest.(check int) "2-lambda poly cells pass" 0
    (List.length (Dic.Devices.check_relational_all exposure_model m))

let test_relational_via_checker () =
  let config =
    { Dic.Engine.default_config with Dic.Engine.relational = Some exposure_model }
  in
  let result = run_ok ~config (Layoutgen.Cells.chain ~lambda 2) in
  Alcotest.(check bool) "relational stage timed" true
    (List.mem_assoc "devices-relational"
       (Dic.Metrics.stage_seconds result.Dic.Engine.metrics));
  Alcotest.(check int) "still clean" 0
    (Dic.Report.count ~severity:Dic.Report.Error result.Dic.Engine.report)

let exposure_config =
  { Dic.Engine.default_config with
    Dic.Engine.interactions =
      { Dic.Interactions.default_config with
        Dic.Interactions.spacing_model =
          Dic.Interactions.Exposure { model = exposure_model; misalign = 0 } } }

let metal_pair gap =
  (* First box spans x 0..400; the second starts at 400 + gap. *)
  parse
    (Printf.sprintf "L NM; B 400 400 200 200; 4N a; B 400 400 %d 200; 4N b; E"
       (600 + gap))

let test_exposure_spacing_tolerates_rule_violation () =
  (* 250 < 300 violates the drawn rule but cannot bridge at sigma 60:
     the exposure mode, "more correct", stays silent. *)
  let geometric = run_ok (metal_pair 250) in
  Alcotest.(check bool) "geometric flags" true (has_rule "spacing" geometric);
  let exposure = run_ok ~config:exposure_config (metal_pair 250) in
  Alcotest.(check bool) "exposure mode passes" false (has_rule "spacing" exposure)

let test_exposure_spacing_catches_bridge () =
  let exposure = run_ok ~config:exposure_config (metal_pair 50) in
  Alcotest.(check bool) "tight gap bridges" true (has_rule "spacing" exposure)

(* ------------------------------------------------------------------ *)
(* Net-list comparison                                                 *)

let test_netcmp_parse () =
  let src = "# comment\nnet a\nx.t1 gate\nnet b exact\ny.t2 sd0\n" in
  match Dic.Netcompare.parse src with
  | Ok e ->
    (match e.Dic.Netcompare.nets with
    | [ a; b ] ->
      Alcotest.(check string) "net a" "a" a.Dic.Netcompare.nname;
      Alcotest.(check bool) "a open" false a.Dic.Netcompare.closed;
      Alcotest.(check bool) "b closed" true b.Dic.Netcompare.closed;
      Alcotest.(check int) "a terminals" 1 (List.length a.Dic.Netcompare.terminals)
    | _ -> Alcotest.fail "expected two nets")
  | Error msg -> Alcotest.fail msg

let test_netcmp_parse_error () =
  match Dic.Netcompare.parse "x.t1 gate\n" with
  | Error msg -> Alcotest.(check bool) "before any net" true
      (Astring_contains.contains msg "before any net")
  | Ok _ -> Alcotest.fail "expected an error"

let netcmp_run expected_src file =
  let expected =
    match Dic.Netcompare.parse expected_src with Ok e -> e | Error m -> Alcotest.fail m
  in
  let config =
    { Dic.Engine.default_config with Dic.Engine.expected_netlist = Some expected }
  in
  Dic.Report.by_rule_prefix (run_ok ~config file).Dic.Engine.report "netcmp"

let test_netcmp_consistent () =
  (* The chain's GND carries both pull-down sources. *)
  let vs =
    netcmp_run "net GND!\n0:inv.0:enh sd1\n1:inv.0:enh sd1\n"
      (Layoutgen.Cells.chain ~lambda 2)
  in
  (* Port numbering of the transistor's sd components is arbitrary; one
     of sd0/sd1 is the source.  Accept either by retrying. *)
  let vs =
    if vs = [] then []
    else
      netcmp_run "net GND!\n0:inv.0:enh sd0\n1:inv.0:enh sd0\n"
        (Layoutgen.Cells.chain ~lambda 2)
  in
  Alcotest.(check int) "consistent" 0 (List.length vs)

let test_netcmp_missing_net () =
  let vs = netcmp_run "net NO_SUCH_NET\n" (Layoutgen.Cells.chain ~lambda 1) in
  Alcotest.(check bool) "missing net" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "netcmp.missing-net")
       vs)

let test_netcmp_missing_terminal () =
  let vs = netcmp_run "net GND!\n9:inv.0:enh sd0\n" (Layoutgen.Cells.chain ~lambda 1) in
  Alcotest.(check bool) "missing terminal" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "netcmp.missing-terminal")
       vs)

let test_netcmp_misplaced_terminal () =
  (* Claim the depletion load's drain is on GND (it is on VDD). *)
  let src1 = "net GND!\n0:inv.1:dep sd0\n" and src2 = "net GND!\n0:inv.1:dep sd1\n" in
  let misplaced vs =
    List.exists
      (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "netcmp.misplaced-terminal")
      vs
  in
  Alcotest.(check bool) "misplaced" true
    (misplaced (netcmp_run src1 (Layoutgen.Cells.chain ~lambda 1))
    || misplaced (netcmp_run src2 (Layoutgen.Cells.chain ~lambda 1)))

let test_netcmp_exact_extra () =
  (* A closed VDD spec listing nothing flags the depletion drains. *)
  let vs = netcmp_run "net VDD! exact\n" (Layoutgen.Cells.chain ~lambda 1) in
  Alcotest.(check bool) "extra terminal" true
    (List.exists
       (fun (v : Dic.Report.violation) -> v.Dic.Report.rule = "netcmp.extra-terminal")
       vs)

(* ------------------------------------------------------------------ *)
(* Transformed instances                                               *)

let test_rotated_device_connectivity () =
  (* An enh transistor rotated a quarter turn: its diffusion now runs
     horizontally.  A diffusion wire overlapping the rotated source
     stub must join its net. *)
  let f =
    Layoutgen.Builder.file
      ~symbols:[ Layoutgen.Cells.enh ~lambda ]
      ~top_elements:
        [ (* rotated North: local (x,y) -> (-y,x); the diff stub that was
             at local y in [-3,0] now spans x in [0,3] at y in [0,2];
             approach it from the right with 2 lambda of overlap. *)
          Layoutgen.Builder.wire ~layer:"ND" ~net:"s" ~width:(l 2)
            [ (l 2, l 1); (l 8, l 1) ] ]
      ~top_calls:[ Layoutgen.Builder.call ~rot:`North ~at:(0, 0) Layoutgen.Cells.id_enh ]
      ()
  in
  let result = run_ok f in
  match Netlist.Net.find_by_name result.Dic.Engine.netlist "s" with
  | Some net ->
    Alcotest.(check int) "wire reaches the rotated stub" 1
      (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "net s missing"

let test_mirrored_instances_interact () =
  (* Two mirrored copies of a cell placed too close: the interaction
     stage must see the transformed geometry.  The enh's poly extends
     to local x = 4; mirrored it extends to -4.  Place the mirrored
     copy so the two poly ends come within 1 lambda. *)
  let f =
    Layoutgen.Builder.file
      ~symbols:[ Layoutgen.Cells.enh ~lambda ]
      ~top_calls:
        [ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_enh;
          Layoutgen.Builder.call ~mirror:`X ~at:(l 9, 0) Layoutgen.Cells.id_enh ]
      ()
  in
  let result = run_ok f in
  Alcotest.(check bool) "poly-poly spacing caught across mirror" true
    (has_rule "spacing.NP" result)

let test_far_mirrored_instances_clean () =
  let f =
    Layoutgen.Builder.file
      ~symbols:[ Layoutgen.Cells.enh ~lambda ]
      ~top_calls:
        [ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_enh;
          Layoutgen.Builder.call ~mirror:`X ~at:(l 20, 0) Layoutgen.Cells.id_enh ]
      ()
  in
  Alcotest.(check (list string)) "clean when apart" [] (error_rules (run_ok f))

(* ------------------------------------------------------------------ *)
(* Degenerate designs                                                  *)

let test_empty_design () =
  let result = run_ok (parse "E") in
  Alcotest.(check int) "no errors" 0
    (Dic.Report.count ~severity:Dic.Report.Error result.Dic.Engine.report);
  Alcotest.(check int) "no nets" 0 (List.length result.Dic.Engine.netlist.Netlist.Net.nets)

let test_uncalled_symbols_still_checked () =
  (* A defective definition with no instances is still a defect: the
     checker works per definition. *)
  let result = run_ok (parse "DS 1; L NP; B 100 600 50 300; DF; E") in
  Alcotest.(check bool) "width error in uncalled symbol" true (has_rule "width" result)

let test_deep_hierarchy () =
  (* A 10-deep chain of wrappers around one box. *)
  let rec defs n acc =
    if n = 0 then acc
    else
      defs (n - 1)
        (Layoutgen.Builder.symbol ~id:n ~name:(Printf.sprintf "w%d" n) []
           [ Layoutgen.Builder.call ~at:(l 1, 0) (n + 1) ]
        :: acc)
  in
  let leaf =
    Layoutgen.Builder.symbol ~id:11 ~name:"leaf"
      [ Layoutgen.Builder.box ~layer:"NM" 0 0 (l 3) (l 3) ]
      []
  in
  let f =
    Layoutgen.Builder.file
      ~symbols:(defs 10 [ leaf ])
      ~top_calls:[ Layoutgen.Builder.call ~at:(0, 0) 1 ]
      ()
  in
  let result = run_ok f in
  Alcotest.(check int) "clean" 0
    (Dic.Report.count ~severity:Dic.Report.Error result.Dic.Engine.report);
  Alcotest.(check int) "depth 11" 11 (Dic.Model.depth result.Dic.Engine.model)

(* ------------------------------------------------------------------ *)
(* Structure report                                                    *)

let test_structure_grid_blocks () =
  let result = run_ok (Layoutgen.Cells.grid_blocks ~lambda ~nx:4 ~ny:4) in
  let s = Dic.Structure.compute result.Dic.Engine.nets in
  Alcotest.(check int) "depth" 4 s.Dic.Structure.depth;
  Alcotest.(check int) "definition elements" 18 s.Dic.Structure.definition_elements;
  Alcotest.(check int) "instantiated" 336 s.Dic.Structure.instantiated_elements;
  let inv =
    List.find (fun x -> x.Dic.Structure.ss_name = "inv") s.Dic.Structure.symbols
  in
  Alcotest.(check int) "16 inverters" 16 inv.Dic.Structure.ss_instances;
  Alcotest.(check int) "32 contacts" 32
    (List.assoc Tech.Device.Contact_cut s.Dic.Structure.device_census);
  Alcotest.(check int) "net accounting" s.Dic.Structure.nets_total
    (s.Dic.Structure.nets_local + s.Dic.Structure.nets_crossing)

let test_structure_shared_symbols_counted_once () =
  (* A symbol instantiated through two different parents accumulates
     all paths. *)
  let f =
    parse
      "DS 1; L NM; B 300 300 150 150; DF; DS 2; C 1; C 1 T 1000 0; DF; C 2; C 2 T 0 1000; C 1 T 5000 5000; E"
  in
  let result = run_ok f in
  let s = Dic.Structure.compute result.Dic.Engine.nets in
  let leaf = List.find (fun x -> x.Dic.Structure.ss_name = "s1") s.Dic.Structure.symbols in
  (* 2 per instance of symbol 2 (x2) + 1 direct = 5. *)
  Alcotest.(check int) "multiplicity" 5 leaf.Dic.Structure.ss_instances

(* ------------------------------------------------------------------ *)
(* Incremental rechecking (a warm engine session)                      *)

let violation_set (r : Dic.Engine.result) =
  List.map
    (fun (v : Dic.Report.violation) -> (v.Dic.Report.rule, v.Dic.Report.context, v.Dic.Report.message))
    r.Dic.Engine.report.Dic.Report.violations
  |> List.sort Stdlib.compare

let engine_run e file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check e file with
  | Error e -> Alcotest.failf "engine: %s" e
  | Ok (result, reuse) -> (result, reuse)

let test_incremental_matches_fresh () =
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  let result, reuse = engine_run e file in
  Alcotest.(check int) "first run computes everything" 0
    reuse.Dic.Engine.symbols_reused;
  let fresh = run_ok file in
  Alcotest.(check bool) "same violations as a fresh run" true
    (violation_set result = violation_set fresh)

let test_incremental_reuses_everything_unchanged () =
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  let _ = engine_run e file in
  let _, reuse = engine_run e file in
  Alcotest.(check int) "all definitions reused" reuse.Dic.Engine.symbols_total
    reuse.Dic.Engine.symbols_reused

let test_incremental_recheck_only_the_edit () =
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.chain ~lambda 3 in
  let _ = engine_run e file in
  (* Edit the top level: drop a narrow wire in the margin. *)
  let salted, _ =
    Layoutgen.Inject.apply file
      [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(0, -20 * lambda) ]
  in
  let result, reuse = engine_run e salted in
  (* Only the root definition changed. *)
  Alcotest.(check int) "all but the root reused"
    (reuse.Dic.Engine.symbols_total - 1)
    reuse.Dic.Engine.symbols_reused;
  Alcotest.(check bool) "the new defect is found" true (has_rule "width" result);
  let fresh = run_ok salted in
  Alcotest.(check bool) "same as fresh" true (violation_set result = violation_set fresh)

let test_incremental_fingerprint_sensitivity () =
  let m, _ = elaborate_ok (Layoutgen.Cells.chain ~lambda 2) in
  let inv = Dic.Model.find m Layoutgen.Cells.id_inv in
  let enh = Dic.Model.find m Layoutgen.Cells.id_enh in
  Alcotest.(check bool) "distinct symbols differ" true
    (Dic.Engine.fingerprint inv <> Dic.Engine.fingerprint enh);
  Alcotest.(check bool) "stable" true
    (Dic.Engine.fingerprint inv = Dic.Engine.fingerprint inv)

let test_incremental_rules_change_invalidates () =
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.chain ~lambda 2 in
  let _ = engine_run e file in
  (* Tighter metal width: a new deck means a new per-deck environment,
     so nothing warm applies, and the rails (3 lambda) now violate. *)
  let strict = { rules with Tech.Rules.width_metal = 4 * lambda } in
  let e = Dic.Engine.with_decks e [ Dic.Engine.deck strict ] in
  let result, reuse = engine_run e file in
  Alcotest.(check int) "cache invalidated" 0 reuse.Dic.Engine.symbols_reused;
  Alcotest.(check bool) "new rule enforced" true (has_rule "width" result)

(* ------------------------------------------------------------------ *)
(* Markers                                                             *)

let test_markers_roundtrip () =
  let kit = Layoutgen.Pathology.fig8_accidental ~lambda in
  let result = run_ok kit.Layoutgen.Pathology.file in
  let text = Dic.Markers.to_cif result.Dic.Engine.report in
  match Cif.Parse.file text with
  | Error e -> Alcotest.fail (Cif.Parse.string_of_error e)
  | Ok f ->
    let markers = Dic.Markers.of_file f in
    Alcotest.(check int) "one marker" 1 (List.length markers);
    let rule, box = List.hd markers in
    Alcotest.(check string) "rule carried" "integrity.accidental-transistor" rule;
    (* The marker covers the crossing at (15..17, 0..2) lambda. *)
    Alcotest.(check bool) "covers the defect" true
      (Geom.Rect.contains_rect box (Geom.Rect.make (l 15) (l 0) (l 17) (l 2)))

let test_markers_skip_unlocated () =
  (* ERC violations carry no rectangle and produce no marker. *)
  let salted, _ =
    Layoutgen.Inject.apply (Layoutgen.Cells.chain ~lambda 1)
      [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0) ]
  in
  let result = run_ok salted in
  Alcotest.(check int) "no located errors, no markers" 0
    (List.length (Dic.Markers.of_file (Dic.Markers.to_file result.Dic.Engine.report)))

(* ------------------------------------------------------------------ *)
(* Classify                                                            *)

let test_classify_family () =
  Alcotest.(check string) "dotted" "width" (Dic.Classify.family_of_rule "width.NP");
  Alcotest.(check string) "plain" "polydiff" (Dic.Classify.family_of_rule "polydiff")

let test_classify_matching () =
  let truth =
    { Dic.Classify.t_families = [ "width" ];
      t_where = Some (Geom.Rect.make 0 0 100 100);
      t_note = "t" }
  in
  let near =
    { Dic.Classify.f_family = "width"; f_where = Some (Geom.Rect.make 150 0 250 100);
      f_note = "near" }
  in
  let far =
    { Dic.Classify.f_family = "width"; f_where = Some (Geom.Rect.make 5000 0 5100 100);
      f_note = "far" }
  in
  let o = Dic.Classify.classify ~tolerance:100 [ truth ] [ near; far ] in
  Alcotest.(check int) "one flagged" 1 (List.length o.Dic.Classify.flagged);
  Alcotest.(check int) "one false" 1 (List.length o.Dic.Classify.false_findings)

let test_classify_global_truth () =
  let truth = { Dic.Classify.t_families = [ "erc" ]; t_where = None; t_note = "t" } in
  let f = { Dic.Classify.f_family = "erc"; f_where = None; f_note = "f" } in
  let o = Dic.Classify.classify ~tolerance:0 [ truth ] [ f ] in
  Alcotest.(check int) "matched anywhere" 1 (List.length o.Dic.Classify.flagged)

let test_classify_ratio () =
  let fs =
    List.init 5 (fun i ->
        { Dic.Classify.f_family = "width"; f_where = None; f_note = string_of_int i })
  in
  let truth = { Dic.Classify.t_families = [ "spacing" ]; t_where = None; t_note = "t" } in
  let o = Dic.Classify.classify ~tolerance:0 [ truth ] fs in
  Alcotest.(check bool) "ratio infinite" true (Dic.Classify.false_ratio o = infinity)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dic"
    [ ( "model",
        [ Alcotest.test_case "chain" `Quick test_model_chain;
          Alcotest.test_case "device binding" `Quick test_model_device_binding;
          Alcotest.test_case "unknown layer" `Quick test_model_unknown_layer;
          Alcotest.test_case "unknown device" `Quick test_model_unknown_device;
          Alcotest.test_case "device with calls" `Quick test_model_device_with_calls;
          Alcotest.test_case "non-rectilinear polygon" `Quick
            test_model_nonrect_polygon_dropped;
          Alcotest.test_case "bbox" `Quick test_model_bbox;
          Alcotest.test_case "layer region" `Quick test_model_layer_region ] );
      ( "elements",
        [ Alcotest.test_case "narrow box" `Quick test_elements_narrow_box;
          Alcotest.test_case "narrow wire" `Quick test_elements_narrow_wire;
          Alcotest.test_case "legal pass" `Quick test_elements_legal_pass;
          Alcotest.test_case "polygon width" `Quick test_elements_polygon_width;
          Alcotest.test_case "contact outside device" `Quick
            test_elements_contact_outside_device;
          Alcotest.test_case "device symbols skipped" `Quick
            test_elements_device_symbols_skipped ] );
      ( "devices",
        [ Alcotest.test_case "enh good" `Quick test_device_enh_good;
          Alcotest.test_case "enh missing gate" `Quick test_device_enh_missing_gate;
          Alcotest.test_case "enh short overhang" `Quick test_device_enh_short_overhang;
          Alcotest.test_case "enh short diff extension" `Quick
            test_device_enh_short_diff_extension;
          Alcotest.test_case "contact over gate" `Quick test_device_contact_over_gate;
          Alcotest.test_case "enh implanted" `Quick test_device_enh_implanted;
          Alcotest.test_case "dep good" `Quick test_device_dep_good;
          Alcotest.test_case "dep missing implant" `Quick test_device_dep_missing_implant;
          Alcotest.test_case "contact variants" `Quick test_device_contact_good_and_bad;
          Alcotest.test_case "butting" `Quick test_device_butting;
          Alcotest.test_case "buried" `Quick test_device_buried;
          Alcotest.test_case "pad" `Quick test_device_pad;
          Alcotest.test_case "checked waived" `Quick test_device_checked_waived;
          Alcotest.test_case "interfaces" `Quick test_device_interfaces;
          Alcotest.test_case "resistor interface" `Quick test_resistor_interface ] );
      ( "netgen",
        [ Alcotest.test_case "chain nets" `Quick test_netgen_chain_nets;
          Alcotest.test_case "dot notation" `Quick test_netgen_dot_notation;
          Alcotest.test_case "illegal connection" `Quick test_netgen_illegal_connection;
          Alcotest.test_case "resolve" `Quick test_netgen_resolve;
          Alcotest.test_case "locality" `Quick test_netgen_locality ] );
      ( "interactions",
        [ Alcotest.test_case "diff-net spacing" `Quick test_interactions_diff_net_spacing;
          Alcotest.test_case "same-net skip" `Quick test_interactions_same_net_skip;
          Alcotest.test_case "short" `Quick test_interactions_short;
          Alcotest.test_case "accidental transistor" `Quick
            test_interactions_accidental_transistor;
          Alcotest.test_case "touch is not a device" `Quick
            test_interactions_poly_diff_touch_not_accidental;
          Alcotest.test_case "memoisation" `Quick test_interactions_memoisation;
          Alcotest.test_case "net-blind ablation" `Quick
            test_interactions_net_blind_ablation ] );
      ( "end-to-end",
        [ Alcotest.test_case "chain clean" `Quick test_e2e_chain_clean;
          Alcotest.test_case "grid clean" `Quick test_e2e_grid_clean;
          Alcotest.test_case "grid-blocks clean" `Quick test_e2e_grid_blocks_clean;
          Alcotest.test_case "injections: all found, no false" `Quick
            test_e2e_injections_all_found_no_false;
          Alcotest.test_case "pathology kits" `Quick test_e2e_pathology_kits;
          Alcotest.test_case "supply short via ERC" `Quick test_e2e_supply_short_erc;
          Alcotest.test_case "stage times" `Quick test_e2e_stage_times_present ] );
      qsuite "end-to-end.props" [ prop_chain_nets; prop_grid_clean ];
      ( "process-modes",
        [ Alcotest.test_case "relational narrow poly" `Quick
            test_relational_narrow_poly_flagged;
          Alcotest.test_case "relational standard cells pass" `Quick
            test_relational_standard_cell_passes;
          Alcotest.test_case "relational via checker" `Quick test_relational_via_checker;
          Alcotest.test_case "exposure spacing tolerant" `Quick
            test_exposure_spacing_tolerates_rule_violation;
          Alcotest.test_case "exposure spacing catches bridge" `Quick
            test_exposure_spacing_catches_bridge ] );
      ( "netcompare",
        [ Alcotest.test_case "parse" `Quick test_netcmp_parse;
          Alcotest.test_case "parse error" `Quick test_netcmp_parse_error;
          Alcotest.test_case "consistent" `Quick test_netcmp_consistent;
          Alcotest.test_case "missing net" `Quick test_netcmp_missing_net;
          Alcotest.test_case "missing terminal" `Quick test_netcmp_missing_terminal;
          Alcotest.test_case "misplaced terminal" `Quick test_netcmp_misplaced_terminal;
          Alcotest.test_case "exact extra" `Quick test_netcmp_exact_extra ] );
      ( "transforms",
        [ Alcotest.test_case "rotated device connectivity" `Quick
            test_rotated_device_connectivity;
          Alcotest.test_case "mirrored instances interact" `Quick
            test_mirrored_instances_interact;
          Alcotest.test_case "far mirrored clean" `Quick test_far_mirrored_instances_clean ] );
      ( "degenerate",
        [ Alcotest.test_case "empty design" `Quick test_empty_design;
          Alcotest.test_case "uncalled symbols checked" `Quick
            test_uncalled_symbols_still_checked;
          Alcotest.test_case "deep hierarchy" `Quick test_deep_hierarchy ] );
      ( "structure",
        [ Alcotest.test_case "grid-blocks stats" `Quick test_structure_grid_blocks;
          Alcotest.test_case "shared symbol multiplicity" `Quick
            test_structure_shared_symbols_counted_once ] );
      ( "incremental",
        [ Alcotest.test_case "matches fresh run" `Quick test_incremental_matches_fresh;
          Alcotest.test_case "full reuse when unchanged" `Quick
            test_incremental_reuses_everything_unchanged;
          Alcotest.test_case "recheck only the edit" `Quick
            test_incremental_recheck_only_the_edit;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_incremental_fingerprint_sensitivity;
          Alcotest.test_case "rules change invalidates" `Quick
            test_incremental_rules_change_invalidates ] );
      ( "markers",
        [ Alcotest.test_case "roundtrip" `Quick test_markers_roundtrip;
          Alcotest.test_case "unlocated skipped" `Quick test_markers_skip_unlocated ] );
      ( "classify",
        [ Alcotest.test_case "family" `Quick test_classify_family;
          Alcotest.test_case "matching" `Quick test_classify_matching;
          Alcotest.test_case "global truth" `Quick test_classify_global_truth;
          Alcotest.test_case "ratio" `Quick test_classify_ratio ] ) ]
