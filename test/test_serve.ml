(* The serve daemon driven in-process with mocked clients, in the
   state-transition style of SNIPPETS §1: each scenario asserts what
   the pool and the cache did at every step (stats counters, reuse
   fields, report bytes), not just the final replies.

   Scenarios: concurrent clients vs one-shot byte-identity, warm-cache
   transitions across requests, superseded-id cancellation (queued and
   in-flight), backpressure, a malformed line mid-stream, crash at
   request N + restart recovering the warm cache from disk, the
   shutdown handshake, and the lint_werror / lint_counts reply fields. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

(* ------------------------------------------------------------------ *)
(* Scratch cache directories                                           *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = Filename.temp_file "dic_test_serve" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

(* Real interactions and a known violation, so byte-identity is not
   trivially comparing empty reports. *)
let workload () =
  let clean = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  fst
    (Layoutgen.Inject.apply clean
       [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(-30 * lambda, -30 * lambda) ])

let workload_cif () = Cif.Print.to_string (workload ())

(* A second, structurally different design (different verdicts), for
   the supersession scenario. *)
let clean_cif () = Cif.Print.to_string (Layoutgen.Cells.chain ~lambda 2)

(* Geometrically clean, one definition never instantiated: lint D003
   fires (warning), nothing else. *)
let orphan_cif () =
  let module B = Layoutgen.Builder in
  let sym id name =
    B.symbol ~id ~name [ B.box ~layer:"NM" 0 0 (4 * lambda) (4 * lambda) ] []
  in
  Cif.Print.to_string
    (B.file ~symbols:[ sym 1 "used"; sym 2 "orphan" ] ~top_calls:[ B.call 1 ] ())

(* The bytes one-shot [dicheck] prints for this CIF text: the
   determinism bar every daemon reply is held to.  Parsed like the
   CLI parses its input file, so source locations match. *)
let one_shot_text src =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check_string (Dic.Engine.create rules) src with
  | Ok (result, _) ->
    Format.asprintf "%a@." Dic.Report.pp result.Dic.Engine.report
    ^ Format.asprintf "%a@." Dic.Engine.pp_summary result
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Mocked clients                                                      *)

type client = { c_lock : Mutex.t; mutable c_replies : string list (* oldest first *) }

let client () = { c_lock = Mutex.create (); c_replies = [] }

let mock_conn server c =
  Dic.Serve.connect server ~reply:(fun line ->
      Mutex.lock c.c_lock;
      c.c_replies <- c.c_replies @ [ line ];
      Mutex.unlock c.c_lock)

let replies c =
  Mutex.lock c.c_lock;
  let r = c.c_replies in
  Mutex.unlock c.c_lock;
  r

(* Poll (rather than block) so a daemon bug cannot hang the suite. *)
let await ?(timeout = 60.) c n =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let got = replies c in
    if List.length got >= n then got
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %d replies (got %d)" n (List.length got)
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let await_inflight ?(timeout = 60.) server n =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if (Dic.Serve.stats server).Dic.Serve.inflight >= n then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %d in-flight request(s)" n
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Reply dissection                                                    *)

let parse_reply line =
  match Dic.Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable reply %S: %s" line e

let jstr k v = Option.bind (Dic.Json.member k v) Dic.Json.str
let jint k v = Option.bind (Dic.Json.member k v) Dic.Json.int
let jbool k v = Option.bind (Dic.Json.member k v) Dic.Json.bool
let status v = Option.value ~default:"?" (jstr "status" v)
let field k v = Option.value ~default:(-1) (jint k v)

let by_status lines =
  List.map (fun l -> status (parse_reply l)) lines |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Concurrency: replies byte-identical to one-shot at every worker      *)
(* count                                                               *)

let test_concurrent_clients_match_one_shot () =
  let src = workload_cif () in
  let expected = one_shot_text src in
  let request = Dic.Json.to_string (Dic.Json.Obj [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src) ]) in
  List.iter
    (fun workers ->
      let server = Dic.Serve.create ~workers rules in
      let clients = List.init 4 (fun _ -> client ()) in
      let conns = List.map (mock_conn server) clients in
      List.iter (fun conn -> Dic.Serve.submit server conn request) conns;
      List.iter
        (fun c ->
          match await c 1 with
          | [ line ] ->
            let v = parse_reply line in
            Alcotest.(check string) "status ok" "ok" (status v);
            Alcotest.(check (option string))
              (Printf.sprintf "report bytes at workers=%d" workers)
              (Some expected) (jstr "report" v)
          | other -> Alcotest.failf "expected 1 reply, got %d" (List.length other))
        clients;
      let s = Dic.Serve.stats server in
      Alcotest.(check int) "served all four" 4 s.Dic.Serve.served;
      Alcotest.(check int) "nothing cancelled" 0 s.Dic.Serve.cancelled;
      Alcotest.(check int) "live workers" workers s.Dic.Serve.workers;
      Dic.Serve.shutdown server;
      Alcotest.(check int) "workers joined" 0 (Dic.Serve.stats server).Dic.Serve.workers)
    [ 1; 4 ]

(* The merged multi-deck report is held to the same bar: identical
   bytes from every worker count, and from concurrent clients. *)
let test_multideck_replies_match_at_every_worker_count () =
  let src = workload_cif () in
  let strict =
    { rules with Tech.Rules.width_metal = 4 * lambda; Tech.Rules.name = "strict" }
  in
  let deck_obj label r =
    Dic.Json.Obj
      [ ("label", Dic.Json.Str label);
        ("rules", Dic.Json.Str (Tech.Rules.to_string r)) ]
  in
  let request =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src);
           ("decks",
            Dic.Json.Arr [ deck_obj "base" rules; deck_obj "strict" strict ]) ])
  in
  let reports =
    List.map
      (fun workers ->
        let server = Dic.Serve.create ~workers rules in
        let clients = List.init 3 (fun _ -> client ()) in
        let conns = List.map (mock_conn server) clients in
        List.iter (fun conn -> Dic.Serve.submit server conn request) conns;
        let texts =
          List.map
            (fun c ->
              match await c 1 with
              | [ line ] ->
                let v = parse_reply line in
                Alcotest.(check string) "status ok" "ok" (status v);
                Option.value ~default:"" (jstr "report" v)
              | other -> Alcotest.failf "expected 1 reply, got %d" (List.length other))
            clients
        in
        Dic.Serve.shutdown server;
        (match texts with
        | first :: rest ->
          List.iter
            (Alcotest.(check string)
               (Printf.sprintf "clients agree at workers=%d" workers)
               first)
            rest;
          first
        | [] -> Alcotest.fail "no replies"))
      [ 1; 4 ]
  in
  match reports with
  | [ w1; w4 ] ->
    Alcotest.(check string) "merged report identical at workers 1 and 4" w1 w4;
    Alcotest.(check bool) "membership annotations present" true
      (Astring_contains.contains w1 "[decks:")
  | _ -> Alcotest.fail "expected two worker counts"

(* ------------------------------------------------------------------ *)
(* Warm-cache state transitions across requests                        *)

let test_warm_transitions_across_requests () =
  with_cache_dir (fun dir ->
      let server = Dic.Serve.create ~workers:1 ~cache_dir:dir rules in
      let c = client () in
      let conn = mock_conn server c in
      let req id = Dic.Json.to_string (Dic.Json.Obj [ ("id", Dic.Json.Num id); ("cif", Dic.Json.Str (workload_cif ())) ]) in
      Dic.Serve.submit server conn (req 1.);
      let r1 = parse_reply (List.nth (await c 1) 0) in
      Alcotest.(check int) "first request computes everything" 0
        (field "symbols_reused" r1);
      Dic.Serve.submit server conn (req 2.);
      let r2 = parse_reply (List.nth (await c 2) 1) in
      Alcotest.(check int) "second request reuses every definition"
        (field "symbols_total" r2) (field "symbols_reused" r2);
      Alcotest.(check (option string)) "warm report byte-identical"
        (jstr "report" r1) (jstr "report" r2);
      Dic.Serve.shutdown server)

(* ------------------------------------------------------------------ *)
(* Cancellation: superseded ids, queued and in-flight                  *)

let test_superseded_id_inflight () =
  let server = Dic.Serve.create ~workers:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  let expected = one_shot_text (workload_cif ()) in
  (* Request "a" v1: stalled in the worker so the supersession lands
     while it is in flight. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj
          [ ("id", Dic.Json.Str "a"); ("cif", Dic.Json.Str (clean_cif ()));
            ("sleep_ms", Dic.Json.Num 300.) ]));
  await_inflight server 1;
  (* Request "a" v2: new CIF under the same id — the editor re-checked
     the buffer.  Only v2 may answer with a report. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("id", Dic.Json.Str "a"); ("cif", Dic.Json.Str (workload_cif ())) ]));
  let got = await c 2 in
  Alcotest.(check (list string)) "one cancelled, one ok" [ "cancelled"; "ok" ]
    (by_status got);
  List.iter
    (fun line ->
      let v = parse_reply line in
      if status v = "ok" then
        Alcotest.(check (option string)) "the surviving reply is v2's report"
          (Some expected) (jstr "report" v)
      else
        Alcotest.(check (option bool)) "cancelled is not ok" (Some false) (jbool "ok" v))
    got;
  let s = Dic.Serve.stats server in
  Alcotest.(check int) "exactly one cancellation counted" 1 s.Dic.Serve.cancelled;
  Alcotest.(check int) "exactly one request served" 1 s.Dic.Serve.served;
  Dic.Serve.shutdown server

let test_superseded_id_queued () =
  let server = Dic.Serve.create ~workers:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  (* Block the only worker with an anonymous request so everything
     with an id stays queued. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("cif", Dic.Json.Str (clean_cif ())); ("sleep_ms", Dic.Json.Num 300.) ]));
  await_inflight server 1;
  let req () =
    Dic.Json.to_string
      (Dic.Json.Obj [ ("id", Dic.Json.Str "b"); ("cif", Dic.Json.Str (workload_cif ())) ])
  in
  Dic.Serve.submit server conn (req ());
  Dic.Serve.submit server conn (req ());
  (* The superseded copy must be answered "cancelled" without ever
     being checked: it was still in the queue. *)
  let got = await c 3 in
  Alcotest.(check (list string)) "blocker + cancelled + ok" [ "cancelled"; "ok"; "ok" ]
    (by_status got);
  let s = Dic.Serve.stats server in
  Alcotest.(check int) "one cancellation" 1 s.Dic.Serve.cancelled;
  Alcotest.(check int) "blocker and v2 served" 2 s.Dic.Serve.served;
  Dic.Serve.shutdown server

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)

let test_backpressure_overload () =
  let server = Dic.Serve.create ~workers:1 ~max_queue:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  let req id sleep =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num (float_of_int id)); ("cif", Dic.Json.Str (clean_cif ()));
           ("sleep_ms", Dic.Json.Num sleep) ])
  in
  Dic.Serve.submit server conn (req 1 300.);
  await_inflight server 1;
  (* Worker busy, queue bound 1: the second fills the queue, the third
     and fourth are refused synchronously. *)
  Dic.Serve.submit server conn (req 2 0.);
  Dic.Serve.submit server conn (req 3 0.);
  Dic.Serve.submit server conn (req 4 0.);
  let immediate = by_status (replies c) in
  Alcotest.(check (list string)) "refusals are synchronous" [ "overloaded"; "overloaded" ]
    immediate;
  let got = await c 4 in
  Alcotest.(check (list string)) "two served, two refused"
    [ "ok"; "ok"; "overloaded"; "overloaded" ] (by_status got);
  let s = Dic.Serve.stats server in
  Alcotest.(check int) "overload counter" 2 s.Dic.Serve.overloaded;
  Alcotest.(check int) "served counter" 2 s.Dic.Serve.served;
  Dic.Serve.shutdown server

(* ------------------------------------------------------------------ *)
(* A malformed line mid-stream must not take the daemon down           *)

let test_malformed_line_mid_stream () =
  let server = Dic.Serve.create ~workers:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  let good id =
    Dic.Json.to_string
      (Dic.Json.Obj [ ("id", Dic.Json.Num id); ("cif", Dic.Json.Str (clean_cif ())) ])
  in
  Dic.Serve.submit server conn (good 1.);
  Dic.Serve.submit server conn "{this is not json";
  Dic.Serve.submit server conn (good 2.);
  let got = await c 3 in
  Alcotest.(check (list string)) "stream survives the bad line"
    [ "error"; "ok"; "ok" ] (by_status got);
  let bad = List.find (fun l -> status (parse_reply l) = "error") got in
  Alcotest.(check bool) "error names the parse failure" true
    (match jstr "error" (parse_reply bad) with
    | Some msg -> String.length msg >= 11 && String.sub msg 0 11 = "bad request"
    | None -> false);
  Alcotest.(check int) "both good requests served" 2
    (Dic.Serve.stats server).Dic.Serve.served;
  Dic.Serve.shutdown server

(* ------------------------------------------------------------------ *)
(* Crash at request N; a restarted daemon recovers warm state from     *)
(* disk                                                                *)

let test_crash_and_restart_recovers_warm_cache () =
  with_cache_dir (fun dir ->
      let src = workload_cif () in
      let req = Dic.Json.to_string (Dic.Json.Obj [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src) ]) in
      (* Daemon #1 answers one request and then "crashes": abandoned
         without any shutdown, so only the per-check cache writes made
         it to disk. *)
      let crashed = Dic.Serve.create ~workers:1 ~cache_dir:dir rules in
      let c1 = client () in
      Dic.Serve.submit crashed (mock_conn crashed c1) req;
      let r1 = parse_reply (List.nth (await c1 1) 0) in
      Alcotest.(check string) "first daemon served cold" "ok" (status r1);
      Alcotest.(check int) "cold: nothing from disk" 0 (field "defs_from_disk" r1);
      (* Daemon #2 over the same directory: its first reply must
         already be warm, and byte-identical. *)
      let server = Dic.Serve.create ~workers:1 ~cache_dir:dir rules in
      let c2 = client () in
      let conn2 = mock_conn server c2 in
      Dic.Serve.submit server conn2 req;
      let r2 = parse_reply (List.nth (await c2 1) 0) in
      Alcotest.(check bool) "restart recovered definitions from disk" true
        (field "defs_from_disk" r2 > 0);
      Alcotest.(check int) "restart reuses every definition"
        (field "symbols_total" r2) (field "symbols_reused" r2);
      Alcotest.(check bool) "restart recovered the memo" true
        (field "memo_loaded" r2 > 0);
      Alcotest.(check (option string)) "warm restart report byte-identical"
        (jstr "report" r1) (jstr "report" r2);
      (* Orderly shutdown handshake on daemon #2. *)
      Dic.Serve.submit server conn2
        (Dic.Json.to_string
           (Dic.Json.Obj [ ("id", Dic.Json.Num 9.); ("shutdown", Dic.Json.Bool true) ]));
      let ack = parse_reply (List.nth (await c2 2) 1) in
      Alcotest.(check string) "shutdown acknowledged" "shutdown" (status ack);
      Alcotest.(check (option bool)) "ack is ok" (Some true) (jbool "ok" ack);
      Alcotest.(check (option int)) "ack reports requests served" (Some 1)
        (jint "served" ack);
      Alcotest.(check int) "workers joined" 0 (Dic.Serve.stats server).Dic.Serve.workers;
      (* The daemon is gone: later submissions are refused, not queued. *)
      Dic.Serve.submit server conn2 req;
      let late = parse_reply (List.nth (await c2 3) 2) in
      Alcotest.(check string) "post-shutdown refusal" "shutdown" (status late);
      Alcotest.(check (option bool)) "refusal is not ok" (Some false) (jbool "ok" late))

(* ------------------------------------------------------------------ *)
(* lint, lint_werror, and per-code counts in the reply                 *)

let ask_clean server =
  parse_reply
    (Dic.Serve.handle_line server
       (Dic.Json.to_string
          (Dic.Json.Obj
             [ ( "cif",
                 Dic.Json.Str (Cif.Print.to_string (Layoutgen.Cells.grid ~lambda ~nx:1 ~ny:1)) );
               ("lint", Dic.Json.Bool true) ])))

let test_lint_counts_and_werror () =
  let server = Dic.Serve.create rules in
  let src = orphan_cif () in
  let ask extra =
    let reply =
      Dic.Serve.handle_line server
        (Dic.Json.to_string (Dic.Json.Obj (("cif", Dic.Json.Str src) :: extra)))
    in
    parse_reply reply
  in
  (* No lint: no lint_counts member at all. *)
  let plain = ask [] in
  Alcotest.(check string) "clean without lint" "ok" (status plain);
  Alcotest.(check int) "exit 0 without lint" 0 (field "exit" plain);
  Alcotest.(check bool) "no lint_counts without lint" true
    (Dic.Json.member "lint_counts" plain = None);
  (* lint: D003 fires as a warning; counts surface, exit stays 0. *)
  let linted = ask [ ("lint", Dic.Json.Bool true) ] in
  Alcotest.(check int) "lint alone keeps exit 0" 0 (field "exit" linted);
  (match Dic.Json.member "lint_counts" linted with
  | Some counts ->
    Alcotest.(check (option int)) "D003 counted once" (Some 1) (jint "D003" counts)
  | None -> Alcotest.fail "lint reply lost its lint_counts");
  (* lint_werror implies lint and turns the finding into exit 1. *)
  let strict = ask [ ("lint_werror", Dic.Json.Bool true) ] in
  Alcotest.(check int) "lint_werror exits 1" 1 (field "exit" strict);
  Alcotest.(check (option bool)) "still a successful check" (Some true)
    (jbool "ok" strict);
  (match Dic.Json.member "lint_counts" strict with
  | Some counts ->
    Alcotest.(check (option int)) "lint_werror implies lint" (Some 1) (jint "D003" counts)
  | None -> Alcotest.fail "lint_werror reply lost its lint_counts");
  (* A lint-clean design under lint reports an empty counts object. *)
  let clean = ask_clean server in
  Alcotest.(check bool) "clean design: empty lint_counts" true
    (Dic.Json.member "lint_counts" clean = Some (Dic.Json.Obj []))

(* ------------------------------------------------------------------ *)
(* Telemetry: the admin surface, stats-bearing refusals and acks,      *)
(* per-request trace replies, event-log reconciliation, and the        *)
(* determinism bar with every telemetry feature switched on            *)

let jmem = Dic.Json.member

let test_admin_stats_and_health () =
  let server = Dic.Serve.create ~workers:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str (clean_cif ())) ]));
  ignore (await c 1);
  (* stats: answered synchronously, every canonical member present. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("id", Dic.Json.Str "s"); ("admin", Dic.Json.Str "stats") ]));
  let sr = parse_reply (List.nth (await c 2) 1) in
  Alcotest.(check string) "stats status" "stats" (status sr);
  Alcotest.(check (option bool)) "stats ok" (Some true) (jbool "ok" sr);
  (match jmem "stats" sr with
  | None -> Alcotest.fail "stats reply has no stats member"
  | Some snap ->
    List.iter
      (fun k -> if jmem k snap = None then Alcotest.failf "snapshot lost %S" k)
      [ "uptime_s"; "workers"; "queue"; "requests"; "rps"; "latency_ms";
        "wait_ms"; "service_ms"; "queue_depth"; "cache"; "workers_busy" ];
    (match jmem "requests" snap with
    | Some reqs ->
      Alcotest.(check (option int)) "one request served" (Some 1) (jint "served" reqs);
      Alcotest.(check (option int)) "one request accepted" (Some 1)
        (jint "accepted" reqs)
    | None -> Alcotest.fail "snapshot lost its requests member"));
  (* health: "ok" while live... *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string (Dic.Json.Obj [ ("admin", Dic.Json.Str "health") ]));
  let hr = parse_reply (List.nth (await c 3) 2) in
  Alcotest.(check string) "health status" "health" (status hr);
  Alcotest.(check (option string)) "healthy while live" (Some "ok") (jstr "health" hr);
  Alcotest.(check bool) "health reports workers" true (field "workers" hr > 0);
  (* ...unknown admin verbs are refused, not crashed on... *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string (Dic.Json.Obj [ ("admin", Dic.Json.Str "reboot") ]));
  let ur = parse_reply (List.nth (await c 4) 3) in
  Alcotest.(check string) "unknown admin refused" "error" (status ur);
  (* ...and health turns "draining" once shutdown has begun: the admin
     surface outlives the pool. *)
  Dic.Serve.shutdown server;
  Dic.Serve.submit server conn
    (Dic.Json.to_string (Dic.Json.Obj [ ("admin", Dic.Json.Str "health") ]));
  let dr = parse_reply (List.nth (await c 5) 4) in
  Alcotest.(check (option string)) "draining after shutdown" (Some "draining")
    (jstr "health" dr)

let test_refusals_and_ack_carry_stats () =
  let server = Dic.Serve.create ~workers:1 ~max_queue:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  let req id sleep =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num (float_of_int id)); ("cif", Dic.Json.Str (clean_cif ()));
           ("sleep_ms", Dic.Json.Num sleep) ])
  in
  Dic.Serve.submit server conn (req 1 300.);
  await_inflight server 1;
  Dic.Serve.submit server conn (req 2 0.);
  Dic.Serve.submit server conn (req 3 0.);
  (* The refusal is synchronous and explains itself: daemon request id
     plus the counters that justify the verdict. *)
  let refusal = parse_reply (List.nth (replies c) 0) in
  Alcotest.(check string) "refused" "overloaded" (status refusal);
  Alcotest.(check (option int)) "refusal reports queue depth" (Some 1)
    (jint "queued" refusal);
  Alcotest.(check bool) "refusal names its request" true (field "req" refusal > 0);
  Alcotest.(check bool) "refusal reports served so far" true
    (field "served" refusal >= 0);
  ignore (await c 3);
  (* The shutdown ack reports all five pool counters. *)
  let ack =
    parse_reply
      (Dic.Serve.handle_line server
         (Dic.Json.to_string (Dic.Json.Obj [ ("shutdown", Dic.Json.Bool true) ])))
  in
  Alcotest.(check string) "ack status" "shutdown" (status ack);
  List.iter
    (fun k -> if jint k ack = None then Alcotest.failf "ack lost %S" k)
    [ "served"; "cancelled"; "overloaded"; "queued"; "inflight" ];
  Alcotest.(check (option int)) "ack served" (Some 2) (jint "served" ack);
  Alcotest.(check (option int)) "ack overloaded" (Some 1) (jint "overloaded" ack)

let test_trace_flag_embeds_request_trace () =
  let server = Dic.Serve.create ~workers:1 rules in
  let c = client () in
  let conn = mock_conn server c in
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj
          [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str (workload_cif ()));
            ("trace", Dic.Json.Bool true) ]));
  let r = parse_reply (List.nth (await c 1) 0) in
  Alcotest.(check string) "traced request still ok" "ok" (status r);
  Alcotest.(check bool) "reply names its request" true (field "req" r > 0);
  (match jmem "trace" r with
  | None -> Alcotest.fail "opted-in reply has no trace member"
  | Some tr -> (
    match jmem "traceEvents" tr with
    | Some (Dic.Json.Arr events) ->
      let names = List.filter_map (jstr "name") events in
      Alcotest.(check bool) "trace records the queued span" true
        (List.mem "queued" names);
      (* The engine's stage spans ride along.  (The enclosing "request"
         span closes only after the reply is serialized, so it lands in
         the daemon-level merged trace, not the embedded copy.) *)
      Alcotest.(check bool) "trace carries the engine stages" true
        (List.length names > 1)
    | _ -> Alcotest.fail "trace member is not a Chrome trace document"));
  (* Without the flag the reply stays lean: the daemon-level trace
     collection never grows replies. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("id", Dic.Json.Num 2.); ("cif", Dic.Json.Str (workload_cif ())) ]));
  let r2 = parse_reply (List.nth (await c 2) 1) in
  Alcotest.(check bool) "no trace member without the flag" true
    (jmem "trace" r2 = None);
  Dic.Serve.shutdown server

(* Event-log accounting over a mixed history: every accepted request
   ends in exactly one terminal event, refusals and bad lines are
   logged without being accepted, and the lifecycle brackets match. *)
let test_event_log_reconciliation () =
  let log_lock = Mutex.create () in
  let log = ref [] in
  let sink line =
    Mutex.lock log_lock;
    log := line :: !log;
    Mutex.unlock log_lock
  in
  let telemetry =
    Dic.Telemetry.create ~slow_ms:0. ~event_sink:sink ~collect_traces:true ()
  in
  let server = Dic.Serve.create ~workers:1 ~max_queue:2 ~telemetry rules in
  let c = client () in
  let conn = mock_conn server c in
  (* A blocker in flight, a queued request superseded into a
     cancellation, an overload refusal, and a malformed line. *)
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj
          [ ("cif", Dic.Json.Str (clean_cif ())); ("sleep_ms", Dic.Json.Num 300.) ]));
  await_inflight server 1;
  let named () =
    Dic.Json.to_string
      (Dic.Json.Obj [ ("id", Dic.Json.Str "x"); ("cif", Dic.Json.Str (workload_cif ())) ])
  in
  Dic.Serve.submit server conn (named ());
  Dic.Serve.submit server conn (named ());
  Dic.Serve.submit server conn
    (Dic.Json.to_string
       (Dic.Json.Obj [ ("id", Dic.Json.Str "y"); ("cif", Dic.Json.Str (clean_cif ())) ]));
  Dic.Serve.submit server conn "{oops";
  ignore (await c 5);
  Dic.Serve.shutdown server;
  let events =
    Mutex.lock log_lock;
    let lines = List.rev !log in
    Mutex.unlock log_lock;
    List.map
      (fun line ->
        match Dic.Json.parse line with
        | Ok v -> v
        | Error e -> Alcotest.failf "unparseable event line %S: %s" line e)
      lines
  in
  (* Schema floor: every entry has "event" and "ts_ms". *)
  List.iter
    (fun e ->
      if jstr "event" e = None then Alcotest.fail "event line without event kind";
      if jmem "ts_ms" e = None then Alcotest.fail "event line without timestamp")
    events;
  let kind e = Option.value ~default:"?" (jstr "event" e) in
  let count k = List.length (List.filter (fun e -> kind e = k) events) in
  (* Reconciliation: accepted == finished + cancelled. *)
  Alcotest.(check int) "three accepted" 3 (count "accepted");
  Alcotest.(check int) "accepted = finished + cancelled" (count "accepted")
    (count "finished" + count "cancelled");
  Alcotest.(check int) "one cancellation logged" 1 (count "cancelled");
  Alcotest.(check int) "one overload logged" 1 (count "overloaded");
  Alcotest.(check int) "the bad line was logged as rejected" 1 (count "rejected");
  (* slow_ms 0.: every finished request also writes a slow entry. *)
  Alcotest.(check int) "slow entries at slow_ms 0" (count "finished") (count "slow");
  (* Per-request ordering: each accepted req has exactly one terminal
     event, and acceptance precedes it. *)
  let reqs_of k =
    List.filter_map (fun e -> if kind e = k then jint "req" e else None) events
  in
  let terminals = List.sort compare (reqs_of "finished" @ reqs_of "cancelled") in
  Alcotest.(check (list int)) "every accepted req terminates once"
    (List.sort compare (reqs_of "accepted")) terminals;
  List.iter
    (fun req ->
      let index k =
        let rec go i = function
          | [] -> Alcotest.failf "req %d lost its %S event" req k
          | e :: rest ->
            if kind e = k && jint "req" e = Some req then i else go (i + 1) rest
        in
        go 0 events
      in
      let accepted = index "accepted" in
      let terminal =
        List.length events
        - 1
        - (let rec go i = function
             | [] -> Alcotest.failf "req %d never terminated" req
             | e :: rest ->
               if (kind e = "finished" || kind e = "cancelled")
                  && jint "req" e = Some req
               then i
               else go (i + 1) rest
           in
           go 0 (List.rev events))
      in
      Alcotest.(check bool)
        (Printf.sprintf "req %d accepted before terminal" req)
        true (accepted < terminal))
    terminals;
  (* Lifecycle bracket: shutdown_begin then shutdown, once each. *)
  Alcotest.(check int) "one shutdown_begin" 1 (count "shutdown_begin");
  Alcotest.(check int) "one shutdown" 1 (count "shutdown");
  (* The daemon-level trace collected something, starting from the
     queued span. *)
  (match Dic.Json.parse (Dic.Trace.to_chrome_json (Dic.Telemetry.merged_trace telemetry)) with
  | Ok doc -> (
    match jmem "traceEvents" doc with
    | Some (Dic.Json.Arr evs) ->
      Alcotest.(check bool) "merged trace is non-empty" true (evs <> []);
      Alcotest.(check bool) "merged trace has queued spans" true
        (List.exists (fun e -> jstr "name" e = Some "queued") evs)
    | _ -> Alcotest.fail "merged trace lost traceEvents")
  | Error e -> Alcotest.failf "merged trace is not JSON: %s" e)

(* The determinism bar with everything on: event log, trace collection,
   slow threshold 0, and per-request trace embedding — report bytes
   stay byte-identical to one-shot dicheck at every worker count. *)
let test_reports_invariant_under_telemetry () =
  let src = workload_cif () in
  let expected = one_shot_text src in
  List.iter
    (fun workers ->
      let telemetry =
        Dic.Telemetry.create ~slow_ms:0. ~event_sink:(fun _ -> ())
          ~collect_traces:true ()
      in
      let server = Dic.Serve.create ~workers ~telemetry rules in
      let c = client () in
      let conn = mock_conn server c in
      let req i =
        Dic.Json.to_string
          (Dic.Json.Obj
             [ ("id", Dic.Json.Num (float_of_int i)); ("cif", Dic.Json.Str src);
               ("trace", Dic.Json.Bool true) ])
      in
      List.iter (fun i -> Dic.Serve.submit server conn (req i)) [ 1; 2; 3; 4 ];
      let got = await c 4 in
      List.iter
        (fun line ->
          let v = parse_reply line in
          Alcotest.(check string) "telemetry-on request ok" "ok" (status v);
          Alcotest.(check (option string))
            (Printf.sprintf "telemetry-on report bytes at workers=%d" workers)
            (Some expected) (jstr "report" v))
        got;
      Dic.Serve.shutdown server)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "concurrency",
        [ Alcotest.test_case "clients match one-shot" `Quick
            test_concurrent_clients_match_one_shot;
          Alcotest.test_case "warm transitions" `Quick
            test_warm_transitions_across_requests;
          Alcotest.test_case "multi-deck replies match at every worker count"
            `Quick test_multideck_replies_match_at_every_worker_count ] );
      ( "cancellation",
        [ Alcotest.test_case "superseded in flight" `Quick test_superseded_id_inflight;
          Alcotest.test_case "superseded while queued" `Quick test_superseded_id_queued ] );
      ( "robustness",
        [ Alcotest.test_case "backpressure" `Quick test_backpressure_overload;
          Alcotest.test_case "malformed mid-stream" `Quick
            test_malformed_line_mid_stream ] );
      ( "lifecycle",
        [ Alcotest.test_case "crash and restart" `Quick
            test_crash_and_restart_recovers_warm_cache ] );
      ( "lint",
        [ Alcotest.test_case "lint counts and werror" `Quick
            test_lint_counts_and_werror ] );
      ( "telemetry",
        [ Alcotest.test_case "admin stats and health" `Quick
            test_admin_stats_and_health;
          Alcotest.test_case "refusals and ack carry stats" `Quick
            test_refusals_and_ack_carry_stats;
          Alcotest.test_case "trace flag embeds request trace" `Quick
            test_trace_flag_embeds_request_trace;
          Alcotest.test_case "event log reconciles" `Quick
            test_event_log_reconciliation;
          Alcotest.test_case "reports invariant under telemetry" `Quick
            test_reports_invariant_under_telemetry ] ) ]
