(* Tests for the workload generators: the cell library is legal by
   construction, injectors really inject, pathology kits carry valid
   truths. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

let run file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
  | Ok (r, _) -> r
  | Error e -> Alcotest.failf "checker: %s" e

let error_count file = Dic.Report.count ~severity:Dic.Report.Error (run file).Dic.Engine.report

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)

let test_device_symbols_distinct_ids () =
  let ids =
    List.map (fun (s : Cif.Ast.symbol) -> s.Cif.Ast.id) (Layoutgen.Cells.device_symbols ~lambda)
  in
  Alcotest.(check int) "distinct" (List.length ids) (List.length (List.sort_uniq Int.compare ids))

let test_chain_sizes () =
  List.iter
    (fun n ->
      let f = Layoutgen.Cells.chain ~lambda n in
      Alcotest.(check int) (Printf.sprintf "chain %d calls" n) n
        (List.length f.Cif.Ast.top_calls))
    [ 1; 3; 10 ]

let test_chain_clean_scales () =
  Alcotest.(check int) "chain 10 clean" 0 (error_count (Layoutgen.Cells.chain ~lambda 10))

let test_grid_vs_blocks_same_geometry () =
  (* The flat and hierarchical compositions of the same array must
     flatten to the same rectangles. *)
  let a = Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:4 in
  let b = Layoutgen.Cells.grid_blocks ~lambda ~nx:4 ~ny:4 in
  let rects f =
    Flatdrc.Flatten.file f
    |> List.concat_map (fun (e : Flatdrc.Flatten.elt) -> e.Flatdrc.Flatten.rects)
    |> List.sort Geom.Rect.compare
  in
  Alcotest.(check bool) "identical flattened geometry" true (rects a = rects b)

let test_lambda_independence () =
  (* The library is legal at other lambda values too. *)
  List.iter
    (fun lam ->
      let f = Layoutgen.Cells.chain ~lambda:lam 2 in
      let r =
        match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create (Tech.Rules.nmos ~lambda:lam ())) f with
        | Ok (r, _) -> r
        | Error e -> Alcotest.failf "checker: %s" e
      in
      Alcotest.(check int)
        (Printf.sprintf "lambda %d clean" lam)
        0
        (Dic.Report.count ~severity:Dic.Report.Error r.Dic.Engine.report))
    [ 50; 100; 200 ]

(* ------------------------------------------------------------------ *)
(* Shift register                                                      *)

let test_shift_register_clean () =
  Alcotest.(check int) "3-bit clean" 0 (error_count (Layoutgen.Shift.register ~lambda 3))

let test_shift_register_clocks () =
  let result = run (Layoutgen.Shift.register ~lambda 3) in
  List.iter
    (fun clock ->
      match Netlist.Net.find_by_name result.Dic.Engine.netlist clock with
      | Some net ->
        Alcotest.(check int) (clock ^ " gates") 3 (List.length net.Netlist.Net.terminals)
      | None -> Alcotest.failf "%s missing" clock)
    [ "PHI1!"; "PHI2!" ]

let test_shift_register_stage_count () =
  (* Each bit contributes two pass transistors and two inverters: each
     stage output net carries pass sd + T1 gate (inverter input) or
     inverter internals; just check net count scales linearly. *)
  let nets n =
    List.length (run (Layoutgen.Shift.register ~lambda n)).Dic.Engine.netlist.Netlist.Net.nets
  in
  Alcotest.(check int) "linear growth" (nets 2 + (nets 3 - nets 2)) (nets 3)

(* ------------------------------------------------------------------ *)
(* PLA                                                                 *)

let full_program rows cols = Array.init rows (fun _ -> Array.make cols true)

let test_pla_clean () =
  let f = Layoutgen.Pla.plane ~lambda (full_program 3 3) in
  Alcotest.(check int) "fully programmed plane clean" 0 (error_count f);
  let f = Layoutgen.Pla.plane ~lambda (Layoutgen.Pla.random_program ~rows:4 ~cols:4 ~seed:7) in
  Alcotest.(check int) "random plane clean" 0 (error_count f)

let test_pla_connectivity () =
  let f = Layoutgen.Pla.plane ~lambda (full_program 2 3) in
  let result = run f in
  (* Each input column gates one transistor per row. *)
  (match Netlist.Net.find_by_name result.Dic.Engine.netlist "in0" with
  | Some net -> Alcotest.(check int) "in0 gates" 2 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "in0 missing");
  (* Each product row collects one drain and one contact via per column. *)
  (match Netlist.Net.find_by_name result.Dic.Engine.netlist "P1" with
  | Some net -> Alcotest.(check int) "P1 drains" 6 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "P1 missing");
  (* Ground collects every source. *)
  match Netlist.Net.find_by_name result.Dic.Engine.netlist "GND!" with
  | Some net -> Alcotest.(check int) "GND sources" 6 (List.length net.Netlist.Net.terminals)
  | None -> Alcotest.fail "GND missing"

let test_pla_random_program_deterministic () =
  let a = Layoutgen.Pla.random_program ~rows:5 ~cols:5 ~seed:3 in
  let b = Layoutgen.Pla.random_program ~rows:5 ~cols:5 ~seed:3 in
  Alcotest.(check bool) "same seed, same program" true (a = b);
  let c = Layoutgen.Pla.random_program ~rows:5 ~cols:5 ~seed:4 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Injections                                                          *)

let test_each_injection_detected () =
  let base = Layoutgen.Cells.chain ~lambda 2 in
  let margin = (2 * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
  List.iter
    (fun (inj : Layoutgen.Inject.t) ->
      let salted, truths = Layoutgen.Inject.apply base [ inj ] in
      let result = run salted in
      let outcome =
        Dic.Classify.classify ~tolerance:(2 * lambda) truths
          (Dic.Classify.of_report result.Dic.Engine.report)
      in
      Alcotest.(check int)
        (inj.Layoutgen.Inject.label ^ " detected")
        1
        (List.length outcome.Dic.Classify.flagged);
      Alcotest.(check int)
        (inj.Layoutgen.Inject.label ^ " no false")
        0
        (List.length outcome.Dic.Classify.false_findings))
    [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(margin, 0);
      Layoutgen.Inject.metal_spacing_pair ~lambda ~at:(margin, 0);
      Layoutgen.Inject.diff_spacing_pair ~lambda ~at:(margin, 0);
      Layoutgen.Inject.accidental_crossing ~lambda ~at:(margin, 4 * lambda);
      Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0);
      Layoutgen.Inject.butting_halves ~lambda ~at:(margin, 0) ]

let test_standard_batch_count () =
  Alcotest.(check int) "four defects" 4
    (List.length (Layoutgen.Inject.standard_batch ~lambda ~at:(0, 0) ~step:1000))

let test_apply_appends () =
  let base = Layoutgen.Cells.chain ~lambda 1 in
  let salted, truths =
    Layoutgen.Inject.apply base [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(0, -3000) ]
  in
  Alcotest.(check int) "one truth" 1 (List.length truths);
  Alcotest.(check int) "one extra element"
    (List.length base.Cif.Ast.top_elements + 1)
    (List.length salted.Cif.Ast.top_elements)

(* ------------------------------------------------------------------ *)
(* Pathology kits                                                      *)

let test_kits_well_formed () =
  List.iter
    (fun (kit : Layoutgen.Pathology.kit) ->
      (* Parse/elaborate without hard failure. *)
      let _ = run kit.Layoutgen.Pathology.file in
      Alcotest.(check bool)
        (kit.Layoutgen.Pathology.kit_name ^ " named")
        true
        (String.length kit.Layoutgen.Pathology.kit_name > 0))
    (Layoutgen.Pathology.all ~lambda)

let test_kit_names_unique () =
  let names =
    List.map
      (fun (k : Layoutgen.Pathology.kit) -> k.Layoutgen.Pathology.kit_name)
      (Layoutgen.Pathology.all ~lambda)
  in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "layoutgen"
    [ ( "cells",
        [ Alcotest.test_case "distinct ids" `Quick test_device_symbols_distinct_ids;
          Alcotest.test_case "chain sizes" `Quick test_chain_sizes;
          Alcotest.test_case "chain 10 clean" `Quick test_chain_clean_scales;
          Alcotest.test_case "grid = blocks geometry" `Quick
            test_grid_vs_blocks_same_geometry;
          Alcotest.test_case "lambda independence" `Quick test_lambda_independence ] );
      ( "shift",
        [ Alcotest.test_case "register clean" `Quick test_shift_register_clean;
          Alcotest.test_case "clock nets" `Quick test_shift_register_clocks;
          Alcotest.test_case "stage count" `Quick test_shift_register_stage_count ] );
      ( "pla",
        [ Alcotest.test_case "planes clean" `Quick test_pla_clean;
          Alcotest.test_case "connectivity" `Quick test_pla_connectivity;
          Alcotest.test_case "deterministic program" `Quick
            test_pla_random_program_deterministic ] );
      ( "inject",
        [ Alcotest.test_case "each injection detected" `Quick test_each_injection_detected;
          Alcotest.test_case "standard batch" `Quick test_standard_batch_count;
          Alcotest.test_case "apply appends" `Quick test_apply_appends ] );
      ( "pathology",
        [ Alcotest.test_case "kits well-formed" `Quick test_kits_well_formed;
          Alcotest.test_case "names unique" `Quick test_kit_names_unique ] ) ]
