(* A minimal JSON reader shared by the test executables — enough to
   round-trip the checker's hand-rendered JSON (metrics, Chrome trace,
   SARIF) without pulling a JSON dependency into the repository. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do advance () done;
          Buffer.add_char buf '?';
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
        | None -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | Some _ ->
      let start = !pos in
      while
        match peek () with
        | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail "bad value"
      else Num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None
