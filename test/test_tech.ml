(* Tests for the technology description: layers, rules, the Fig 12
   interaction matrix, device kinds, and net classification. *)

let rules = Tech.Rules.nmos ()

(* ------------------------------------------------------------------ *)
(* Layers                                                              *)

let test_layer_names_roundtrip () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Tech.Layer.to_cif l) true
        (Tech.Layer.of_cif (Tech.Layer.to_cif l) = Some l))
    Tech.Layer.all

let test_layer_case_insensitive () =
  Alcotest.(check bool) "lowercase" true (Tech.Layer.of_cif "nd" = Some Tech.Layer.Diffusion);
  Alcotest.(check bool) "unknown" true (Tech.Layer.of_cif "XX" = None)

let test_layer_interconnect () =
  Alcotest.(check bool) "metal routes" true (Tech.Layer.is_interconnect Tech.Layer.Metal);
  Alcotest.(check bool) "implant does not" false
    (Tech.Layer.is_interconnect Tech.Layer.Implant);
  Alcotest.(check bool) "contact does not" false
    (Tech.Layer.is_interconnect Tech.Layer.Contact)

let test_layer_indices_distinct () =
  let idx = List.map Tech.Layer.index Tech.Layer.all in
  Alcotest.(check int) "distinct" (List.length Tech.Layer.all)
    (List.length (List.sort_uniq Int.compare idx))

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let test_lambda_scaling () =
  let r1 = Tech.Rules.nmos ~lambda:100 () and r2 = Tech.Rules.nmos ~lambda:50 () in
  Alcotest.(check int) "width scales" 2
    (r1.Tech.Rules.width_poly / r2.Tech.Rules.width_poly);
  Alcotest.(check int) "spacing scales" 2
    (r1.Tech.Rules.space_metal / r2.Tech.Rules.space_metal)

let test_mead_conway_numbers () =
  Alcotest.(check int) "diff width 2L" 200 (Tech.Rules.min_width rules Tech.Layer.Diffusion);
  Alcotest.(check int) "poly width 2L" 200 (Tech.Rules.min_width rules Tech.Layer.Poly);
  Alcotest.(check int) "metal width 3L" 300 (Tech.Rules.min_width rules Tech.Layer.Metal);
  Alcotest.(check int) "diff space 3L" 300
    (Tech.Rules.same_layer_space rules Tech.Layer.Diffusion);
  Alcotest.(check int) "poly space 2L" 200
    (Tech.Rules.same_layer_space rules Tech.Layer.Poly);
  Alcotest.(check int) "implant surround 1.5L" 150 rules.Tech.Rules.implant_gate_surround

let test_skeleton_half () =
  List.iter
    (fun l ->
      Alcotest.(check int)
        (Tech.Layer.to_cif l)
        (Tech.Rules.min_width rules l / 2)
        (Tech.Rules.skeleton_half rules l))
    Tech.Layer.all

let test_cross_layer_space () =
  Alcotest.(check (option int)) "poly-diff" (Some 100)
    (Tech.Rules.cross_layer_space rules Tech.Layer.Poly Tech.Layer.Diffusion);
  Alcotest.(check (option int)) "symmetric" (Some 100)
    (Tech.Rules.cross_layer_space rules Tech.Layer.Diffusion Tech.Layer.Poly);
  Alcotest.(check (option int)) "metal-diff none" None
    (Tech.Rules.cross_layer_space rules Tech.Layer.Metal Tech.Layer.Diffusion)

let test_rules_to_of_string_roundtrip () =
  let r = Tech.Rules.nmos ~lambda:150 () in
  match Tech.Rules.of_string (Tech.Rules.to_string r) with
  | Ok r' ->
    (* Parsing records source positions — provenance, not a rule — so
       the roundtrip is equality up to [key_positions]. *)
    Alcotest.(check bool) "roundtrip" true
      ({ r' with Tech.Rules.key_positions = [] } = r);
    Alcotest.(check bool) "positions recorded" true
      (Tech.Rules.position r' "lambda" <> None)
  | Error msg -> Alcotest.fail msg

let test_rules_of_string_overrides () =
  match Tech.Rules.of_string "lambda 200\nwidth_metal 800 # wider\nname coarse\n" with
  | Ok r ->
    Alcotest.(check int) "lambda defaults" 400 r.Tech.Rules.width_poly;
    Alcotest.(check int) "override" 800 r.Tech.Rules.width_metal;
    Alcotest.(check string) "name" "coarse" r.Tech.Rules.name
  | Error msg -> Alcotest.fail msg

let test_rules_of_string_errors () =
  (match Tech.Rules.of_string "no_such_key 5\n" with
  | Error msg -> Alcotest.(check bool) "unknown key" true
      (Astring_contains.contains msg "unknown")
  | Ok _ -> Alcotest.fail "expected an error");
  (match Tech.Rules.of_string "width_metal zero\n" with
  | Error msg -> Alcotest.(check bool) "bad int" true
      (Astring_contains.contains msg "integer")
  | Ok _ -> Alcotest.fail "expected an error");
  match Tech.Rules.of_string "width metal 3\n" with
  | Error msg -> Alcotest.(check bool) "malformed" true
      (Astring_contains.contains msg "malformed")
  | Ok _ -> Alcotest.fail "expected an error"

(* ------------------------------------------------------------------ *)
(* The interaction matrix                                              *)

let test_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Tech.Layer.to_cif a ^ "-" ^ Tech.Layer.to_cif b)
            true
            (Tech.Interaction.entry rules a b = Tech.Interaction.entry rules b a))
        Tech.Layer.routing)
    Tech.Layer.routing

let test_matrix_paper_cells () =
  let open Tech in
  (* Metal relates to neither poly nor diffusion. *)
  Alcotest.(check bool) "M-D no rule" true
    (Interaction.entry rules Layer.Metal Layer.Diffusion = Interaction.No_rule);
  Alcotest.(check bool) "M-P no rule" true
    (Interaction.entry rules Layer.Metal Layer.Poly = Interaction.No_rule);
  (* Contact interactions belong to the device checks. *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        ("C-" ^ Layer.to_cif l)
        true
        (Interaction.entry rules Layer.Contact l = Interaction.Device_checked))
    [ Layer.Diffusion; Layer.Poly; Layer.Metal ];
  (* Same-layer interconnect: same-net checks are skipped. *)
  List.iter
    (fun l ->
      match Interaction.entry rules l l with
      | Interaction.Space { same_net = None; diff_net } ->
        Alcotest.(check bool) "positive spacing" true (diff_net > 0)
      | _ -> Alcotest.fail "expected a same-net-skipping spacing entry")
    [ Layer.Diffusion; Layer.Poly; Layer.Metal ];
  (* Poly-diffusion is checked even on one net (accidental devices). *)
  match Interaction.entry rules Layer.Poly Layer.Diffusion with
  | Interaction.Space { same_net = Some s; diff_net } ->
    Alcotest.(check int) "1 lambda" 100 s;
    Alcotest.(check int) "same both ways" s diff_net
  | _ -> Alcotest.fail "expected poly-diff spacing entry"

let test_matrix_cells_upper_triangular () =
  let cells = Tech.Interaction.cells rules in
  Alcotest.(check int) "4 choose 2 + 4" 10 (List.length cells);
  List.iter
    (fun (a, b, _) ->
      Alcotest.(check bool) "ordered" true (Tech.Layer.index a <= Tech.Layer.index b))
    cells

(* ------------------------------------------------------------------ *)
(* Devices                                                             *)

let test_device_tags_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (Tech.Device.to_tag k) true
        (Tech.Device.of_tag (Tech.Device.to_tag k) = Some k))
    Tech.Device.all

let test_device_tag_case () =
  Alcotest.(check bool) "lowercase" true
    (Tech.Device.of_tag "enh" = Some Tech.Device.Enhancement);
  Alcotest.(check bool) "unknown" true (Tech.Device.of_tag "FOO" = None)

let test_device_transistors () =
  Alcotest.(check bool) "enh" true (Tech.Device.is_transistor Tech.Device.Enhancement);
  Alcotest.(check bool) "dep" true (Tech.Device.is_transistor Tech.Device.Depletion);
  Alcotest.(check bool) "contact" false (Tech.Device.is_transistor Tech.Device.Contact_cut)

let test_device_ties () =
  Alcotest.(check bool) "transistor ties nothing" true
    (Tech.Device.ties Tech.Device.Enhancement = []);
  Alcotest.(check bool) "buried ties poly-diff" true
    (List.mem (Tech.Layer.Poly, Tech.Layer.Diffusion) (Tech.Device.ties Tech.Device.Buried_contact));
  Alcotest.(check int) "butting ties three ways" 3
    (List.length (Tech.Device.ties Tech.Device.Butting_contact))

(* ------------------------------------------------------------------ *)
(* Net classes                                                         *)

let test_netclass () =
  let check name cls =
    Alcotest.(check string) name (Tech.Netclass.to_string cls)
      (Tech.Netclass.to_string (Tech.Netclass.classify name))
  in
  check "VDD" Tech.Netclass.Power;
  check "VDD!" Tech.Netclass.Power;
  check "vcc" Tech.Netclass.Power;
  check "GND!" Tech.Netclass.Ground;
  check "VSS" Tech.Netclass.Ground;
  check "BUS3!" Tech.Netclass.Bus;
  check "bus_data" Tech.Netclass.Bus;
  check "out" Tech.Netclass.Signal;
  check "" Tech.Netclass.Signal

let test_netclass_supply () =
  Alcotest.(check bool) "power" true (Tech.Netclass.is_supply Tech.Netclass.Power);
  Alcotest.(check bool) "ground" true (Tech.Netclass.is_supply Tech.Netclass.Ground);
  Alcotest.(check bool) "bus" false (Tech.Netclass.is_supply Tech.Netclass.Bus)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tech"
    [ ( "layers",
        [ Alcotest.test_case "name roundtrip" `Quick test_layer_names_roundtrip;
          Alcotest.test_case "case insensitive" `Quick test_layer_case_insensitive;
          Alcotest.test_case "interconnect" `Quick test_layer_interconnect;
          Alcotest.test_case "indices distinct" `Quick test_layer_indices_distinct ] );
      ( "rules",
        [ Alcotest.test_case "lambda scaling" `Quick test_lambda_scaling;
          Alcotest.test_case "mead-conway numbers" `Quick test_mead_conway_numbers;
          Alcotest.test_case "skeleton half" `Quick test_skeleton_half;
          Alcotest.test_case "cross-layer space" `Quick test_cross_layer_space;
          Alcotest.test_case "rule file roundtrip" `Quick test_rules_to_of_string_roundtrip;
          Alcotest.test_case "rule file overrides" `Quick test_rules_of_string_overrides;
          Alcotest.test_case "rule file errors" `Quick test_rules_of_string_errors ] );
      ( "interaction",
        [ Alcotest.test_case "symmetric" `Quick test_matrix_symmetric;
          Alcotest.test_case "paper cells" `Quick test_matrix_paper_cells;
          Alcotest.test_case "upper triangular" `Quick test_matrix_cells_upper_triangular ] );
      ( "devices",
        [ Alcotest.test_case "tag roundtrip" `Quick test_device_tags_roundtrip;
          Alcotest.test_case "tag case" `Quick test_device_tag_case;
          Alcotest.test_case "transistors" `Quick test_device_transistors;
          Alcotest.test_case "ties" `Quick test_device_ties ] );
      ( "netclass",
        [ Alcotest.test_case "classify" `Quick test_netclass;
          Alcotest.test_case "supply" `Quick test_netclass_supply ] ) ]
