(* Deckcheck: the constraint-graph analysis over rule decks (R012+)
   and the static immunity certificates.

   Two halves, mirroring the module:

   - implication-closure unit tests: the derivation chains behind R012
     (unsatisfiable), R013 (redundant), R014 (non-monotone override
     family), and the pairwise deck-subsumption verdicts (R015);
   - the pruning identity property: certificate-guarded runs emit
     report bytes identical to unguarded runs ([DIC_NO_CERTS]) over
     random layoutgen designs and random-perturbation decks, at jobs 1
     and 4, cold and warm, single- and multi-deck — the engine-level
     soundness claim, checked end to end. *)

let lambda = 100

let deck_of_string src =
  match Tech.Rules.of_string src with
  | Ok r -> r
  | Error e -> Alcotest.failf "deck did not parse: %s" e

let codes diags = List.map (fun d -> d.Dic.Lint.code) diags

let has code diags = List.mem code (codes diags)

(* ------------------------------------------------------------------ *)
(* Implication closure                                                 *)

let test_default_deck_clean () =
  Alcotest.(check (list string))
    "builtin nmos passes the constraint-graph analysis" []
    (codes (Dic.Deckcheck.check_deck (Tech.Rules.nmos ~lambda ())))

let test_r012_unsatisfiable_pad () =
  let d =
    deck_of_string
      "name t\nlambda 100\npad_metal_surround 40\n"
  in
  let diags = Dic.Deckcheck.check_deck d in
  Alcotest.(check bool) "R012 fires" true (has "R012" diags);
  let r012 = List.find (fun d -> d.Dic.Lint.code = "R012") diags in
  Alcotest.(check bool) "R012 is an error" true
    (r012.Dic.Lint.severity = Dic.Lint.Error);
  (* The chain is satisfiable again once width_metal shrinks below the
     minimal pad: contact_size 200 + 2*40 = 280 >= 250. *)
  let ok =
    deck_of_string "name t\nlambda 100\npad_metal_surround 40\nwidth_metal 250\n"
  in
  Alcotest.(check bool) "satisfiable chain is quiet" false
    (has "R012" (Dic.Deckcheck.check_deck ok))

let test_r013_redundant_entry () =
  (* width_poly 200 restates the lambda-100 default. *)
  let d = deck_of_string "name t\nlambda 100\nwidth_poly 200\n" in
  Alcotest.(check bool) "R013 fires on a written default" true
    (has "R013" (Dic.Deckcheck.check_deck d));
  let d = deck_of_string "name t\nlambda 100\nwidth_poly 300\n" in
  Alcotest.(check bool) "R013 quiet on a real override" false
    (has "R013" (Dic.Deckcheck.check_deck d));
  (* Programmatic decks carry no provenance: stay silent rather than
     flag every field of a deck nobody wrote down. *)
  Alcotest.(check bool) "R013 quiet without provenance" false
    (has "R013" (Dic.Deckcheck.check_deck (Tech.Rules.nmos ~lambda ())))

let test_r014_shadowed_override () =
  let d =
    deck_of_string
      "name t\nlambda 100\nspace_diffusion_poly 80\nspace_poly_diffusion 150\n"
  in
  let diags = Dic.Deckcheck.check_deck d in
  Alcotest.(check bool) "R014 fires" true (has "R014" diags);
  (* Monotone family (override below the directed entry) is fine. *)
  let mono =
    deck_of_string
      "name t\nlambda 100\nspace_diffusion_poly 150\nspace_poly_diffusion 100\n"
  in
  Alcotest.(check bool) "monotone family is quiet" false
    (has "R014" (Dic.Deckcheck.check_deck mono))

let test_r015_relations () =
  let strict = Tech.Rules.nmos ~lambda:200 () in
  let loose = Tech.Rules.nmos ~lambda:100 () in
  let c = Dic.Deckcheck.compare_rules strict loose in
  Alcotest.(check bool) "2x deck subsumes 1x" true
    (c.Dic.Deckcheck.cmp_relation = Dic.Deckcheck.Subsumes);
  let c = Dic.Deckcheck.compare_rules loose strict in
  Alcotest.(check bool) "1x deck is subsumed by 2x" true
    (c.Dic.Deckcheck.cmp_relation = Dic.Deckcheck.Subsumed);
  let c = Dic.Deckcheck.compare_rules loose loose in
  Alcotest.(check bool) "a deck is equivalent to itself" true
    (c.Dic.Deckcheck.cmp_relation = Dic.Deckcheck.Equivalent);
  (* One constraint stricter, another weaker: incomparable. *)
  let a = deck_of_string "name a\nlambda 100\nwidth_poly 300\n" in
  let b = deck_of_string "name b\nlambda 100\nspace_metal 400\n" in
  let c = Dic.Deckcheck.compare_rules a b in
  Alcotest.(check bool) "crossed decks are incomparable" true
    (c.Dic.Deckcheck.cmp_relation = Dic.Deckcheck.Incomparable);
  let diags =
    Dic.Deckcheck.deck_relations [ ("s", strict); ("l", loose) ]
  in
  Alcotest.(check (list string)) "one R015 note per pair" [ "R015" ] (codes diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "R015 is a note" true
        (d.Dic.Lint.severity = Dic.Lint.Note))
    diags;
  Alcotest.(check int) "three decks, three pairs" 3
    (List.length
       (Dic.Deckcheck.relation_lines
          [ ("a", strict); ("b", loose); ("c", loose) ]))

let test_waiver_suppression () =
  let d =
    deck_of_string
      "name t\nlambda 100\n# lint: allow R012\npad_metal_surround 40\n"
  in
  let diags = Dic.Deckcheck.check_deck d in
  Alcotest.(check bool) "R012 still found" true (has "R012" diags);
  let kept, suppressed =
    Dic.Lint.partition_waived ~waivers:d.Tech.Rules.waivers diags
  in
  Alcotest.(check bool) "R012 filtered from kept" false (has "R012" kept);
  Alcotest.(check (list (pair string int)))
    "suppressed counts" [ ("R012", 1) ]
    (Dic.Lint.suppressed_counts suppressed)

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

let with_certs enabled f =
  let saved = Dic.Deckcheck.enabled () in
  Dic.Deckcheck.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Dic.Deckcheck.set_enabled saved) f

let report_bytes (multi : Dic.Engine.multi) =
  String.concat "\x00"
    (Format.asprintf "%a@." Dic.Multireport.pp multi.Dic.Engine.merged
    :: Format.asprintf "%a@." Dic.Multireport.pp_summary multi.Dic.Engine.merged
    :: List.map
         (fun (dr : Dic.Engine.deck_result) ->
           Format.asprintf "%a@." Dic.Report.pp
             dr.Dic.Engine.dr_result.Dic.Engine.report)
         multi.Dic.Engine.results)

let check_bytes ?metrics ~jobs decks file =
  let e = Dic.Engine.create ~decks (List.hd decks).Dic.Engine.dk_rules in
  let e = Dic.Engine.with_jobs e jobs in
  let e = Dic.Engine.with_lint e true in
  let once () =
    match Dic.Engine.check ?metrics e file with
    | Ok m -> report_bytes m
    | Error msg -> "engine error: " ^ msg
  in
  let cold = once () in
  let warm = once () in
  (cold, warm)

let test_skips_fire () =
  (* A clean replicated design: the certificates must actually prune
     work (the analysis.certified_skips counter is the bench's whole
     point), and the pruned report must match the unpruned one. *)
  let file = Layoutgen.Pla.tier ~lambda ~rows:8 ~cols:8 in
  let deck = Dic.Engine.deck (Tech.Rules.nmos ~lambda ()) in
  let m = Dic.Metrics.create () in
  let on, _ = with_certs true (fun () -> check_bytes ~metrics:m ~jobs:1 [ deck ] file) in
  let off, _ = with_certs false (fun () -> check_bytes ~jobs:1 [ deck ] file) in
  Alcotest.(check string) "pruned = unpruned bytes" off on;
  Alcotest.(check bool) "certified skips fired" true
    (Dic.Metrics.counter m "analysis.certified_skips" > 0);
  Alcotest.(check bool) "certificates were computed" true
    (Dic.Metrics.counter m "analysis.certs_computed" > 0)

(* The QCheck identity property: random design x random deck pair,
   certs on == certs off, jobs 1 and 4, cold and warm, single- and
   multi-deck.  Seeded (fixed rand state below) so failures replay. *)

let design_gen =
  QCheck2.Gen.(
    oneof
      [ map (fun n -> Layoutgen.Cells.chain ~lambda (1 + n)) (int_bound 3);
        map
          (fun (nx, ny) -> Layoutgen.Cells.grid ~lambda ~nx:(1 + nx) ~ny:(1 + ny))
          (pair (int_bound 2) (int_bound 2));
        map
          (fun (rows, cols) ->
            Layoutgen.Pla.tier ~lambda ~rows:(2 + rows) ~cols:(2 + cols))
          (pair (int_bound 4) (int_bound 4)) ])

(* Half the designs get ground-truth errors injected: the identity must
   hold on dirty designs, where skipping a task that would have fired
   would actually change bytes. *)
let injected_gen =
  QCheck2.Gen.(
    map
      (fun (file, dirty) ->
        if dirty then
          fst
            (Layoutgen.Inject.apply file
               (Layoutgen.Inject.standard_batch ~lambda ~at:(-6000, -6000)
                  ~step:(30 * lambda)))
        else file)
      (pair design_gen bool))

(* Random perturbation of the NMOS deck: quantum-aligned widths and
   spacings around the defaults, so some decks are stricter, some
   looser, some contradictory. *)
let deck_gen =
  QCheck2.Gen.(
    map
      (fun ((wp, sm), spd) ->
        let q = lambda / 4 in
        Dic.Engine.deck
          (deck_of_string
             (Printf.sprintf
                "name perturbed\nlambda %d\nwidth_poly %d\nspace_metal %d\nspace_poly_diffusion %d\n"
                lambda (wp * q) (sm * q) (spd * q))))
      (pair (pair (int_range 4 16) (int_range 8 20)) (int_range 4 12)))

let case_gen = QCheck2.Gen.(pair injected_gen (pair deck_gen deck_gen))

let prune_identity_prop =
  QCheck2.Test.make ~name:"certificate pruning never changes report bytes"
    ~count:20 case_gen (fun (file, (d1, d2)) ->
      List.for_all
        (fun decks ->
          let decks = Dic.Engine.dedupe_labels decks in
          let base, base_warm =
            with_certs false (fun () -> check_bytes ~jobs:1 decks file)
          in
          if base_warm <> base then
            QCheck2.Test.fail_reportf "certs-off warm differs from cold";
          List.for_all
            (fun (certs, jobs) ->
              let cold, warm =
                with_certs certs (fun () -> check_bytes ~jobs decks file)
              in
              if cold <> base then
                QCheck2.Test.fail_reportf
                  "certs=%b jobs=%d cold differs from baseline" certs jobs;
              if warm <> base then
                QCheck2.Test.fail_reportf
                  "certs=%b jobs=%d warm differs from baseline" certs jobs;
              true)
            [ (true, 1); (true, 4); (false, 4) ])
        [ [ d1 ]; [ d1; d2 ] ])

let () =
  Alcotest.run "deckcheck"
    [ ( "closure",
        [ Alcotest.test_case "default deck clean" `Quick test_default_deck_clean;
          Alcotest.test_case "R012 unsatisfiable" `Quick test_r012_unsatisfiable_pad;
          Alcotest.test_case "R013 redundant" `Quick test_r013_redundant_entry;
          Alcotest.test_case "R014 shadowed override" `Quick
            test_r014_shadowed_override;
          Alcotest.test_case "R015 relations" `Quick test_r015_relations;
          Alcotest.test_case "waiver suppression" `Quick test_waiver_suppression ] );
      ( "certificates",
        [ Alcotest.test_case "skips fire, bytes identical" `Quick test_skips_fire;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 0xd1c |])
            prune_identity_prop ] ) ]
