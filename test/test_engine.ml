(* Engine sessions: persistent-cache reuse and invalidation, the
   cold/warm determinism invariant, corruption fallback, the serve
   protocol, and the minimal JSON codec under it. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

(* ------------------------------------------------------------------ *)
(* Scratch cache directories                                           *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = Filename.temp_file "dic_test_cache" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let check_ok engine file =
  match Dic.Engine.check engine file with
  | Ok (result, reuse) -> (result, reuse)
  | Error e -> Alcotest.fail e

let report_text (result : Dic.Engine.result) =
  Format.asprintf "%a@." Dic.Report.pp result.Dic.Engine.report
  ^ Format.asprintf "%a@." Dic.Engine.pp_summary result

(* A workload with real interactions and a known violation, so the
   report compared for byte-identity is not trivially empty. *)
let workload () =
  let clean = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  fst
    (Layoutgen.Inject.apply clean
       [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(-30 * lambda, -30 * lambda) ])

(* ------------------------------------------------------------------ *)
(* Persistent cache: reuse and determinism                             *)

let test_warm_recheck_reuses_and_matches () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, r0 = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "cold run computes everything" 0 r0.Dic.Engine.symbols_reused;
      (* A brand-new engine over the same directory: everything comes
         back from disk, and the report is byte-identical. *)
      let warm, r1 = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "all definitions reused" r1.Dic.Engine.symbols_total
        r1.Dic.Engine.symbols_reused;
      Alcotest.(check bool) "definitions came from disk" true
        (r1.Dic.Engine.defs_from_disk > 0);
      Alcotest.(check bool) "memo entries came from disk" true
        (r1.Dic.Engine.memo_loaded > 0);
      Alcotest.(check string) "warm report byte-identical" (report_text cold)
        (report_text warm))

let test_warm_recheck_matches_at_jobs4 () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, _ = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      (* [jobs] is excluded from the environment digest, so a parallel
         warm run shares the sequential run's cache — and must still
         produce the same bytes. *)
      let e4 = Dic.Engine.with_jobs (Dic.Engine.create ~cache_dir:dir rules) 4 in
      let warm, r1 = check_ok e4 file in
      Alcotest.(check bool) "parallel run hits the sequential cache" true
        (r1.Dic.Engine.symbols_reused > 0);
      Alcotest.(check string) "jobs=4 warm report byte-identical" (report_text cold)
        (report_text warm))

let test_symbol_edit_invalidates_only_that_symbol () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 3 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      (* Edit the top level only. *)
      let salted, _ =
        Layoutgen.Inject.apply file
          [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(0, -20 * lambda) ]
      in
      let result, r = check_ok (Dic.Engine.create ~cache_dir:dir rules) salted in
      Alcotest.(check int) "all but the edited root reused"
        (r.Dic.Engine.symbols_total - 1) r.Dic.Engine.symbols_reused;
      Alcotest.(check bool) "the new defect is found" true
        (List.exists
           (fun (v : Dic.Report.violation) ->
             String.length v.Dic.Report.rule >= 5
             && String.sub v.Dic.Report.rule 0 5 = "width")
           (Dic.Report.errors result.Dic.Engine.report)))

let test_rules_change_invalidates () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 2 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      let strict = { rules with Tech.Rules.width_metal = 4 * lambda } in
      let _, r = check_ok (Dic.Engine.create ~cache_dir:dir strict) file in
      Alcotest.(check int) "different rules miss the cache" 0 r.Dic.Engine.symbols_reused)

let test_config_change_invalidates () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 2 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      let e = Dic.Engine.with_same_net (Dic.Engine.create ~cache_dir:dir rules) true in
      let _, r = check_ok e file in
      Alcotest.(check int) "different config misses the cache" 0
        r.Dic.Engine.symbols_reused;
      (* But jobs is cost-only: it does not change the environment. *)
      let e' = Dic.Engine.with_jobs (Dic.Engine.create ~cache_dir:dir rules) 3 in
      let _, r' = check_ok e' file in
      Alcotest.(check int) "jobs alone keeps the cache" r'.Dic.Engine.symbols_total
        r'.Dic.Engine.symbols_reused)

let test_corrupted_cache_falls_back_to_cold () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, _ = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      (* Stomp every cache file with garbage. *)
      let rec stomp path =
        if Sys.is_directory path then
          Array.iter (fun n -> stomp (Filename.concat path n)) (Sys.readdir path)
        else Out_channel.with_open_bin path (fun oc -> output_string oc "garbage")
      in
      stomp dir;
      let warm, r = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "nothing reused from a corrupt cache" 0
        r.Dic.Engine.symbols_reused;
      Alcotest.(check int) "no memo loaded from a corrupt cache" 0
        r.Dic.Engine.memo_loaded;
      Alcotest.(check string) "run still correct" (report_text cold) (report_text warm))

let test_in_memory_session_reuse () =
  (* No cache directory at all: the in-memory session still reuses. *)
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  let cold, r0 = check_ok e file in
  Alcotest.(check int) "cold" 0 r0.Dic.Engine.symbols_reused;
  let warm, r1 = check_ok e file in
  Alcotest.(check int) "warm reuses all" r1.Dic.Engine.symbols_total
    r1.Dic.Engine.symbols_reused;
  Alcotest.(check int) "nothing read from disk" 0 r1.Dic.Engine.defs_from_disk;
  Alcotest.(check string) "same bytes" (report_text cold) (report_text warm)

(* ------------------------------------------------------------------ *)
(* Serve protocol                                                      *)

let reply_field reply name =
  match Dic.Json.parse reply with
  | Error e -> Alcotest.fail ("reply is not JSON: " ^ e)
  | Ok v -> Dic.Json.member name v

let num_field reply name =
  match Option.bind (reply_field reply name) Dic.Json.num with
  | Some n -> int_of_float n
  | None -> Alcotest.fail (Printf.sprintf "reply has no numeric %S" name)

let test_serve_round_trip () =
  let server = Dic.Serve.create rules in
  let src = Cif.Print.to_string (Layoutgen.Cells.chain ~lambda 2) in
  let request =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src);
           ("stats", Dic.Json.Bool true) ])
  in
  let reply = Dic.Serve.handle_line server request in
  Alcotest.(check (option bool)) "ok" (Some true)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "id echoed" 1 (num_field reply "id");
  Alcotest.(check int) "clean design exits 0" 0 (num_field reply "exit");
  (match Option.bind (reply_field reply "report") Dic.Json.str with
  | Some text -> Alcotest.(check bool) "report text present" true (String.length text > 0)
  | None -> Alcotest.fail "no report in reply");
  (match reply_field reply "metrics" with
  | Some (Dic.Json.Obj _) -> ()
  | _ -> Alcotest.fail "stats:true must embed a metrics object");
  (* Same design again: the warm engine answers from its session. *)
  let reply2 = Dic.Serve.handle_line server request in
  Alcotest.(check int) "second request reuses the session"
    (num_field reply2 "symbols_total")
    (num_field reply2 "symbols_reused")

let test_serve_matches_engine_bytes () =
  let file = workload () in
  let src = Cif.Print.to_string file in
  let server = Dic.Serve.create rules in
  let reply =
    Dic.Serve.handle_line server
      (Dic.Json.to_string (Dic.Json.Obj [ ("cif", Dic.Json.Str src) ]))
  in
  let served =
    match Option.bind (reply_field reply "report") Dic.Json.str with
    | Some text -> text
    | None -> Alcotest.fail "no report in reply"
  in
  (* Checking the same text directly must agree byte-for-byte: serve is
     a transport, not a different checker.  (Text, not the AST — parsing
     attaches source positions that show up in the report.) *)
  let direct =
    match Dic.Engine.check_string (Dic.Engine.create rules) src with
    | Ok (r, _) -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "serve report = direct report" (report_text direct) served

let test_serve_malformed_request () =
  let server = Dic.Serve.create rules in
  let reply = Dic.Serve.handle_line server "{ not json" in
  Alcotest.(check (option bool)) "ok:false" (Some false)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "exit 2" 2 (num_field reply "exit");
  (match Option.bind (reply_field reply "error") Dic.Json.str with
  | Some _ -> ()
  | None -> Alcotest.fail "malformed request must carry an error string");
  (* The server survives and answers the next request. *)
  let missing = Dic.Serve.handle_line server "{\"id\": 7}" in
  Alcotest.(check int) "id echoed on error" 7 (num_field missing "id");
  Alcotest.(check (option bool)) "missing source rejected" (Some false)
    (Option.bind (reply_field missing "ok") Dic.Json.bool)

let test_serve_bad_cif_is_an_error_reply () =
  let server = Dic.Serve.create rules in
  let reply =
    Dic.Serve.handle_line server
      (Dic.Json.to_string
         (Dic.Json.Obj [ ("id", Dic.Json.Num 3.); ("cif", Dic.Json.Str "DS 1 bogus;") ]))
  in
  Alcotest.(check (option bool)) "ok:false" (Some false)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "id echoed" 3 (num_field reply "id")

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let test_json_roundtrip () =
  let v =
    Dic.Json.Obj
      [ ("a", Dic.Json.Arr [ Dic.Json.Num 1.; Dic.Json.Num (-2.5); Dic.Json.Null ]);
        ("s", Dic.Json.Str "line\nbreak \"quoted\" \\ tab\t");
        ("t", Dic.Json.Bool true); ("f", Dic.Json.Bool false);
        ("nested", Dic.Json.Obj [ ("empty", Dic.Json.Arr []) ]) ]
  in
  match Dic.Json.parse (Dic.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "print/parse round trip" true (v = v')
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Dic.Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_escapes () =
  match Dic.Json.parse "\"\\u0041\\u00e9\\ud83d\\ude00\\/\"" with
  | Ok (Dic.Json.Str s) ->
    Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9\xf0\x9f\x98\x80/" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [ ( "cache",
        [ Alcotest.test_case "warm recheck reuses and matches" `Quick
            test_warm_recheck_reuses_and_matches;
          Alcotest.test_case "warm recheck matches at jobs=4" `Quick
            test_warm_recheck_matches_at_jobs4;
          Alcotest.test_case "symbol edit invalidates only that symbol" `Quick
            test_symbol_edit_invalidates_only_that_symbol;
          Alcotest.test_case "rules change invalidates" `Quick test_rules_change_invalidates;
          Alcotest.test_case "config change invalidates, jobs does not" `Quick
            test_config_change_invalidates;
          Alcotest.test_case "corrupted cache falls back to cold" `Quick
            test_corrupted_cache_falls_back_to_cold;
          Alcotest.test_case "in-memory session reuse" `Quick test_in_memory_session_reuse ] );
      ( "serve",
        [ Alcotest.test_case "round trip" `Quick test_serve_round_trip;
          Alcotest.test_case "serve report = engine report" `Quick
            test_serve_matches_engine_bytes;
          Alcotest.test_case "malformed request" `Quick test_serve_malformed_request;
          Alcotest.test_case "bad CIF is an error reply" `Quick
            test_serve_bad_cif_is_an_error_reply ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "escape decoding" `Quick test_json_escapes ] ) ]
