(* Engine sessions: persistent-cache reuse and invalidation, the
   cold/warm determinism invariant, corruption fallback, the serve
   protocol, and the minimal JSON codec under it. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

(* ------------------------------------------------------------------ *)
(* Scratch cache directories                                           *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = Filename.temp_file "dic_test_cache" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let check_ok engine file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check engine file with
  | Ok (result, reuse) -> (result, reuse)
  | Error e -> Alcotest.fail e

let report_text (result : Dic.Engine.result) =
  Format.asprintf "%a@." Dic.Report.pp result.Dic.Engine.report
  ^ Format.asprintf "%a@." Dic.Engine.pp_summary result

(* A workload with real interactions and a known violation, so the
   report compared for byte-identity is not trivially empty. *)
let workload () =
  let clean = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  fst
    (Layoutgen.Inject.apply clean
       [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(-30 * lambda, -30 * lambda) ])

(* ------------------------------------------------------------------ *)
(* Persistent cache: reuse and determinism                             *)

let test_warm_recheck_reuses_and_matches () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, r0 = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "cold run computes everything" 0 r0.Dic.Engine.symbols_reused;
      (* A brand-new engine over the same directory: everything comes
         back from disk, and the report is byte-identical. *)
      let warm, r1 = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "all definitions reused" r1.Dic.Engine.symbols_total
        r1.Dic.Engine.symbols_reused;
      Alcotest.(check bool) "definitions came from disk" true
        (r1.Dic.Engine.defs_from_disk > 0);
      Alcotest.(check bool) "memo entries came from disk" true
        (r1.Dic.Engine.memo_loaded > 0);
      Alcotest.(check string) "warm report byte-identical" (report_text cold)
        (report_text warm))

let test_warm_recheck_matches_at_jobs4 () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, _ = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      (* [jobs] is excluded from the environment digest, so a parallel
         warm run shares the sequential run's cache — and must still
         produce the same bytes. *)
      let e4 = Dic.Engine.with_jobs (Dic.Engine.create ~cache_dir:dir rules) 4 in
      let warm, r1 = check_ok e4 file in
      Alcotest.(check bool) "parallel run hits the sequential cache" true
        (r1.Dic.Engine.symbols_reused > 0);
      Alcotest.(check string) "jobs=4 warm report byte-identical" (report_text cold)
        (report_text warm))

let test_symbol_edit_invalidates_only_that_symbol () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 3 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      (* Edit the top level only. *)
      let salted, _ =
        Layoutgen.Inject.apply file
          [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(0, -20 * lambda) ]
      in
      let result, r = check_ok (Dic.Engine.create ~cache_dir:dir rules) salted in
      Alcotest.(check int) "all but the edited root reused"
        (r.Dic.Engine.symbols_total - 1) r.Dic.Engine.symbols_reused;
      Alcotest.(check bool) "the new defect is found" true
        (List.exists
           (fun (v : Dic.Report.violation) ->
             String.length v.Dic.Report.rule >= 5
             && String.sub v.Dic.Report.rule 0 5 = "width")
           (Dic.Report.errors result.Dic.Engine.report)))

let test_rules_change_invalidates () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 2 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      let strict = { rules with Tech.Rules.width_metal = 4 * lambda } in
      let _, r = check_ok (Dic.Engine.create ~cache_dir:dir strict) file in
      Alcotest.(check int) "different rules miss the cache" 0 r.Dic.Engine.symbols_reused)

let test_config_change_invalidates () =
  with_cache_dir (fun dir ->
      let file = Layoutgen.Cells.chain ~lambda 2 in
      ignore (check_ok (Dic.Engine.create ~cache_dir:dir rules) file);
      let e = Dic.Engine.with_same_net (Dic.Engine.create ~cache_dir:dir rules) true in
      let _, r = check_ok e file in
      Alcotest.(check int) "different config misses the cache" 0
        r.Dic.Engine.symbols_reused;
      (* But jobs is cost-only: it does not change the environment. *)
      let e' = Dic.Engine.with_jobs (Dic.Engine.create ~cache_dir:dir rules) 3 in
      let _, r' = check_ok e' file in
      Alcotest.(check int) "jobs alone keeps the cache" r'.Dic.Engine.symbols_total
        r'.Dic.Engine.symbols_reused)

let test_corrupted_cache_falls_back_to_cold () =
  with_cache_dir (fun dir ->
      let file = workload () in
      let cold, _ = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      (* Stomp every cache file with garbage. *)
      let rec stomp path =
        if Sys.is_directory path then
          Array.iter (fun n -> stomp (Filename.concat path n)) (Sys.readdir path)
        else Out_channel.with_open_bin path (fun oc -> output_string oc "garbage")
      in
      stomp dir;
      let warm, r = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      Alcotest.(check int) "nothing reused from a corrupt cache" 0
        r.Dic.Engine.symbols_reused;
      Alcotest.(check int) "no memo loaded from a corrupt cache" 0
        r.Dic.Engine.memo_loaded;
      Alcotest.(check string) "run still correct" (report_text cold) (report_text warm))

let test_in_memory_session_reuse () =
  (* No cache directory at all: the in-memory session still reuses. *)
  let e = Dic.Engine.create rules in
  let file = Layoutgen.Cells.grid ~lambda ~nx:3 ~ny:2 in
  let cold, r0 = check_ok e file in
  Alcotest.(check int) "cold" 0 r0.Dic.Engine.symbols_reused;
  let warm, r1 = check_ok e file in
  Alcotest.(check int) "warm reuses all" r1.Dic.Engine.symbols_total
    r1.Dic.Engine.symbols_reused;
  Alcotest.(check int) "nothing read from disk" 0 r1.Dic.Engine.defs_from_disk;
  Alcotest.(check string) "same bytes" (report_text cold) (report_text warm)

(* ------------------------------------------------------------------ *)
(* Whole-pipeline parallelism: byte-identity across jobs               *)

module Json = Tjson

(* Enough distinct definitions with real element work that the
   per-definition stages genuinely fan out (stage parallelism wants at
   least two fresh definitions), plus an injected defect so the report
   compared for identity is not empty. *)
let stage_workload () =
  fst
    (Layoutgen.Inject.apply
       (Layoutgen.Pla.tier ~lambda ~rows:4 ~cols:6)
       [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(-40 * lambda, -40 * lambda) ])

(* The stats JSON *shape*: every number zeroed and the timing-dependent
   histogram bucket lists emptied, leaving stage names and order,
   counter keys, histogram/gauge/cost keys.  Counter values may
   legitimately vary with [jobs] (the memo hit/miss split); the shape
   may not. *)
let stats_shape m =
  let rec zero = function
    | Json.Num _ -> Json.Num 0.
    | Json.Arr l -> Json.Arr (List.map zero l)
    | Json.Obj kvs ->
      Json.Obj
        (List.map
           (fun (k, v) -> (k, if k = "buckets" then Json.Arr [] else zero v))
           kvs)
    | v -> v
  in
  let rec render = function
    | Json.Null -> "null"
    | Json.Bool b -> string_of_bool b
    | Json.Num f -> Printf.sprintf "%g" f
    | Json.Str s -> Printf.sprintf "%S" s
    | Json.Arr l -> "[" ^ String.concat "," (List.map render l) ^ "]"
    | Json.Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (render v)) kvs)
      ^ "}"
  in
  render (zero (Json.parse (Dic.Metrics.to_json m)))

let check_with_metrics engine file =
  let m = Dic.Metrics.create () in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check ~metrics:m engine file with
  | Ok (result, _) -> (result, m)
  | Error e -> Alcotest.fail e

let test_pipeline_bytes_across_jobs () =
  let file = stage_workload () in
  let run jobs =
    let e = Dic.Engine.with_jobs (Dic.Engine.create rules) jobs in
    let cold, mc = check_with_metrics e file in
    let warm, mw = check_with_metrics e file in
    ( report_text cold,
      Dic.Sarif.of_report cold.Dic.Engine.report,
      stats_shape mc, report_text warm, stats_shape mw )
  in
  let r1, s1, j1, w1, jw1 = run 1 in
  Alcotest.(check bool) "workload has the injected violation" true
    (Astring_contains.contains r1 "width");
  List.iter
    (fun jobs ->
      let r, s, j, w, jw = run jobs in
      let name what = Printf.sprintf "%s at jobs=%d" what jobs in
      Alcotest.(check string) (name "cold report bytes") r1 r;
      Alcotest.(check string) (name "SARIF bytes") s1 s;
      Alcotest.(check string) (name "stats JSON shape") j1 j;
      Alcotest.(check string) (name "warm report bytes") w1 w;
      Alcotest.(check string) (name "warm stats shape") jw1 jw)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Incremental lint in sessions                                        *)

let test_lint_replayed_in_session () =
  let e = Dic.Engine.with_lint (Dic.Engine.create rules) true in
  let file = stage_workload () in
  let cold, mc = check_with_metrics e file in
  let warm, mw = check_with_metrics e file in
  Alcotest.(check bool) "cold run computes the model pass" true
    (Dic.Metrics.counter mc "lint.defs_computed" > 0);
  Alcotest.(check int) "cold run replays nothing" 0
    (Dic.Metrics.counter mc "lint.defs_replayed");
  Alcotest.(check int) "warm run computes nothing"
    0
    (Dic.Metrics.counter mw "lint.defs_computed");
  Alcotest.(check int) "warm run replays every definition"
    (Dic.Metrics.counter mc "lint.defs_computed")
    (Dic.Metrics.counter mw "lint.defs_replayed");
  Alcotest.(check string) "lint-bearing report byte-identical"
    (report_text cold) (report_text warm)

(* ------------------------------------------------------------------ *)
(* Multi-deck sessions                                                 *)

let multi_ok engine file =
  match Dic.Engine.check engine file with
  | Ok m -> m
  | Error e -> Alcotest.fail e

let merged_text (m : Dic.Engine.multi) =
  Format.asprintf "%a@." Dic.Multireport.pp m.Dic.Engine.merged
  ^ Format.asprintf "%a@." Dic.Multireport.pp_summary m.Dic.Engine.merged

(* A second deck with a tighter metal width: the 3-lambda rails violate
   it, so the two decks genuinely disagree. *)
let strict_deck () =
  Dic.Engine.deck ~label:"strict"
    { rules with Tech.Rules.width_metal = 4 * lambda; Tech.Rules.name = "strict" }

let base_deck () = Dic.Engine.deck ~label:"base" rules

let test_multideck_n1_matches_single () =
  let file = workload () in
  let plain, _ = check_ok (Dic.Engine.create rules) file in
  let m = multi_ok (Dic.Engine.create ~decks:[ base_deck () ] rules) file in
  let viaset, _ = Dic.Engine.primary m in
  Alcotest.(check string) "decks:[d] = plain engine, byte for byte"
    (report_text plain) (report_text viaset);
  Alcotest.(check int) "one summary" 1
    (List.length m.Dic.Engine.merged.Dic.Multireport.summaries)

let test_multideck_per_deck_matches_alone () =
  let file = workload () in
  let decks = [ base_deck (); strict_deck () ] in
  let m = multi_ok (Dic.Engine.create ~decks rules) file in
  List.iter2
    (fun (d : Dic.Engine.deck) (dr : Dic.Engine.deck_result) ->
      let alone, _ = check_ok (Dic.Engine.create d.Dic.Engine.dk_rules) file in
      Alcotest.(check string)
        (d.Dic.Engine.dk_label ^ " in the set = checked alone")
        (report_text alone)
        (report_text dr.Dic.Engine.dr_result))
    decks m.Dic.Engine.results;
  (* The strict deck flags the rails; the base deck does not — the
     verdict distinguishes them. *)
  Alcotest.(check (list string)) "compliant decks" []
    (List.filter (fun l -> l = "strict")
       (Dic.Multireport.compliant m.Dic.Engine.merged))

let test_multideck_merged_bytes_across_jobs () =
  let file = workload () in
  let decks = [ base_deck (); strict_deck () ] in
  let m1 =
    multi_ok (Dic.Engine.with_jobs (Dic.Engine.create ~decks rules) 1) file
  in
  let m4 =
    multi_ok (Dic.Engine.with_jobs (Dic.Engine.create ~decks rules) 4) file
  in
  Alcotest.(check string) "merged report identical at jobs 1 and 4"
    (merged_text m1) (merged_text m4)

let test_multideck_sarif_across_jobs () =
  let file = stage_workload () in
  let decks = [ base_deck (); strict_deck () ] in
  let sarif jobs =
    let m =
      multi_ok (Dic.Engine.with_jobs (Dic.Engine.create ~decks rules) jobs) file
    in
    Dic.Sarif.of_reports
      (List.map2
         (fun (d : Dic.Engine.deck) (dr : Dic.Engine.deck_result) ->
           ( d.Dic.Engine.dk_label, d.Dic.Engine.dk_rules,
             dr.Dic.Engine.dr_result.Dic.Engine.report ))
         decks m.Dic.Engine.results)
  in
  let base = sarif 1 in
  Alcotest.(check bool) "SARIF is substantial" true (String.length base > 100);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "multi-deck SARIF bytes at jobs=%d" jobs)
        base (sarif jobs))
    [ 2; 4; 8 ]

let test_multideck_cache_independence () =
  with_cache_dir (fun dir ->
      let file = workload () in
      (* Warm deck A alone, then check the pair over the same cache:
         A replays fully, B computes fully — warming A never primed B. *)
      let cold_a, _ = check_ok (Dic.Engine.create ~cache_dir:dir rules) file in
      let decks = [ base_deck (); strict_deck () ] in
      let m = multi_ok (Dic.Engine.create ~cache_dir:dir ~decks rules) file in
      (match m.Dic.Engine.results with
      | [ a; b ] ->
        Alcotest.(check int) "deck A fully reused"
          a.Dic.Engine.dr_reuse.Dic.Engine.symbols_total
          a.Dic.Engine.dr_reuse.Dic.Engine.symbols_reused;
        Alcotest.(check int) "deck B untouched by A's warmth" 0
          b.Dic.Engine.dr_reuse.Dic.Engine.symbols_reused;
        Alcotest.(check string) "A's warm report = A's cold report"
          (report_text cold_a)
          (report_text a.Dic.Engine.dr_result)
      | _ -> Alcotest.fail "expected two deck results");
      (* Round three: both decks warm now. *)
      let m2 = multi_ok (Dic.Engine.create ~cache_dir:dir ~decks rules) file in
      List.iter
        (fun (dr : Dic.Engine.deck_result) ->
          Alcotest.(check int)
            (dr.Dic.Engine.dr_deck.Dic.Engine.dk_label ^ " fully warm")
            dr.Dic.Engine.dr_reuse.Dic.Engine.symbols_total
            dr.Dic.Engine.dr_reuse.Dic.Engine.symbols_reused)
        m2.Dic.Engine.results;
      Alcotest.(check string) "merged bytes cold = warm" (merged_text m)
        (merged_text m2))

let test_multideck_label_dedupe () =
  match
    Dic.Engine.dedupe_labels
      [ Dic.Engine.deck ~label:"x" rules; Dic.Engine.deck ~label:"x" rules;
        Dic.Engine.deck ~label:"x" rules ]
  with
  | [ a; b; c ] ->
    Alcotest.(check string) "first keeps the name" "x" a.Dic.Engine.dk_label;
    Alcotest.(check string) "second suffixed" "x#2" b.Dic.Engine.dk_label;
    Alcotest.(check string) "third suffixed" "x#3" c.Dic.Engine.dk_label
  | _ -> Alcotest.fail "dedupe dropped decks"

(* ------------------------------------------------------------------ *)
(* Serve protocol                                                      *)

let reply_field reply name =
  match Dic.Json.parse reply with
  | Error e -> Alcotest.fail ("reply is not JSON: " ^ e)
  | Ok v -> Dic.Json.member name v

let num_field reply name =
  match Option.bind (reply_field reply name) Dic.Json.num with
  | Some n -> int_of_float n
  | None -> Alcotest.fail (Printf.sprintf "reply has no numeric %S" name)

let test_serve_round_trip () =
  let server = Dic.Serve.create rules in
  let src = Cif.Print.to_string (Layoutgen.Cells.chain ~lambda 2) in
  let request =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src);
           ("stats", Dic.Json.Bool true) ])
  in
  let reply = Dic.Serve.handle_line server request in
  Alcotest.(check (option bool)) "ok" (Some true)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "id echoed" 1 (num_field reply "id");
  Alcotest.(check int) "clean design exits 0" 0 (num_field reply "exit");
  (match Option.bind (reply_field reply "report") Dic.Json.str with
  | Some text -> Alcotest.(check bool) "report text present" true (String.length text > 0)
  | None -> Alcotest.fail "no report in reply");
  (match reply_field reply "metrics" with
  | Some (Dic.Json.Obj _) -> ()
  | _ -> Alcotest.fail "stats:true must embed a metrics object");
  (* Same design again: the warm engine answers from its session. *)
  let reply2 = Dic.Serve.handle_line server request in
  Alcotest.(check int) "second request reuses the session"
    (num_field reply2 "symbols_total")
    (num_field reply2 "symbols_reused")

let test_serve_matches_engine_bytes () =
  let file = workload () in
  let src = Cif.Print.to_string file in
  let server = Dic.Serve.create rules in
  let reply =
    Dic.Serve.handle_line server
      (Dic.Json.to_string (Dic.Json.Obj [ ("cif", Dic.Json.Str src) ]))
  in
  let served =
    match Option.bind (reply_field reply "report") Dic.Json.str with
    | Some text -> text
    | None -> Alcotest.fail "no report in reply"
  in
  (* Checking the same text directly must agree byte-for-byte: serve is
     a transport, not a different checker.  (Text, not the AST — parsing
     attaches source positions that show up in the report.) *)
  let direct =
    match Result.map Dic.Engine.primary @@ Dic.Engine.check_string (Dic.Engine.create rules) src with
    | Ok (r, _) -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "serve report = direct report" (report_text direct) served

let test_serve_malformed_request () =
  let server = Dic.Serve.create rules in
  let reply = Dic.Serve.handle_line server "{ not json" in
  Alcotest.(check (option bool)) "ok:false" (Some false)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "exit 2" 2 (num_field reply "exit");
  (match Option.bind (reply_field reply "error") Dic.Json.str with
  | Some _ -> ()
  | None -> Alcotest.fail "malformed request must carry an error string");
  (* The server survives and answers the next request. *)
  let missing = Dic.Serve.handle_line server "{\"id\": 7}" in
  Alcotest.(check int) "id echoed on error" 7 (num_field missing "id");
  Alcotest.(check (option bool)) "missing source rejected" (Some false)
    (Option.bind (reply_field missing "ok") Dic.Json.bool)

let test_serve_decks_round_trip () =
  let server = Dic.Serve.create rules in
  let src = Cif.Print.to_string (workload ()) in
  let strict =
    { rules with Tech.Rules.width_metal = 4 * lambda; Tech.Rules.name = "strict" }
  in
  let deck_obj label r =
    Dic.Json.Obj
      [ ("label", Dic.Json.Str label);
        ("rules", Dic.Json.Str (Tech.Rules.to_string r)) ]
  in
  let request =
    Dic.Json.to_string
      (Dic.Json.Obj
         [ ("id", Dic.Json.Num 1.); ("cif", Dic.Json.Str src);
           ("decks",
            Dic.Json.Arr [ deck_obj "base" rules; deck_obj "strict" strict ]) ])
  in
  let reply = Dic.Serve.handle_line server request in
  Alcotest.(check (option bool)) "ok" (Some true)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  (* Per-deck summaries ride in the reply, in deck order. *)
  (match Option.bind (reply_field reply "decks") Dic.Json.arr with
  | Some [ a; b ] ->
    let label j = Option.bind (Dic.Json.member "label" j) Dic.Json.str in
    let exit j =
      Option.map int_of_float (Option.bind (Dic.Json.member "exit" j) Dic.Json.num)
    in
    Alcotest.(check (option string)) "first label" (Some "base") (label a);
    Alcotest.(check (option string)) "second label" (Some "strict") (label b);
    (* The strict deck flags the rails: its exit differs from base's. *)
    Alcotest.(check (option int)) "strict deck fails" (Some 1) (exit b)
  | _ -> Alcotest.fail "reply must carry two deck summaries");
  (match Option.bind (reply_field reply "compliant") Dic.Json.arr with
  | Some labels ->
    Alcotest.(check bool) "strict not compliant" false
      (List.exists (fun j -> Dic.Json.str j = Some "strict") labels)
  | None -> Alcotest.fail "reply must carry the compliant list");
  (* The merged report annotates deck membership. *)
  (match Option.bind (reply_field reply "report") Dic.Json.str with
  | Some text ->
    Alcotest.(check bool) "membership annotations present" true
      (Astring_contains.contains text "[decks:")
  | None -> Alcotest.fail "no report in reply");
  Alcotest.(check int) "exit is the worst deck's" 1 (num_field reply "exit");
  (* A deckless request on the same server keeps the historical single-
     deck reply shape: no "decks" member at all. *)
  let plain =
    Dic.Serve.handle_line server
      (Dic.Json.to_string (Dic.Json.Obj [ ("cif", Dic.Json.Str src) ]))
  in
  Alcotest.(check bool) "single-deck reply has no decks member" true
    (reply_field plain "decks" = None)

let test_serve_prometheus_stats () =
  let server = Dic.Serve.create rules in
  let reply =
    Dic.Serve.handle_line server
      "{\"admin\":\"stats\",\"format\":\"prometheus\",\"id\":\"p\"}"
  in
  (match Option.bind (reply_field reply "prometheus") Dic.Json.str with
  | Some text ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) needle true (Astring_contains.contains text needle))
      [ "# HELP dicheck_uptime_seconds"; "# TYPE dicheck_requests_total counter";
        "dicheck_workers"; "quantile=\"0.99\"" ]
  | None -> Alcotest.fail "no prometheus text in reply");
  (* Unknown formats are refused, not silently defaulted. *)
  let bad =
    Dic.Serve.handle_line server "{\"admin\":\"stats\",\"format\":\"xml\"}"
  in
  Alcotest.(check (option bool)) "unknown format refused" (Some false)
    (Option.bind (reply_field bad "ok") Dic.Json.bool)

let test_serve_bad_cif_is_an_error_reply () =
  let server = Dic.Serve.create rules in
  let reply =
    Dic.Serve.handle_line server
      (Dic.Json.to_string
         (Dic.Json.Obj [ ("id", Dic.Json.Num 3.); ("cif", Dic.Json.Str "DS 1 bogus;") ]))
  in
  Alcotest.(check (option bool)) "ok:false" (Some false)
    (Option.bind (reply_field reply "ok") Dic.Json.bool);
  Alcotest.(check int) "id echoed" 3 (num_field reply "id")

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let test_json_roundtrip () =
  let v =
    Dic.Json.Obj
      [ ("a", Dic.Json.Arr [ Dic.Json.Num 1.; Dic.Json.Num (-2.5); Dic.Json.Null ]);
        ("s", Dic.Json.Str "line\nbreak \"quoted\" \\ tab\t");
        ("t", Dic.Json.Bool true); ("f", Dic.Json.Bool false);
        ("nested", Dic.Json.Obj [ ("empty", Dic.Json.Arr []) ]) ]
  in
  match Dic.Json.parse (Dic.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "print/parse round trip" true (v = v')
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Dic.Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_escapes () =
  match Dic.Json.parse "\"\\u0041\\u00e9\\ud83d\\ude00\\/\"" with
  | Ok (Dic.Json.Str s) ->
    Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9\xf0\x9f\x98\x80/" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [ ( "cache",
        [ Alcotest.test_case "warm recheck reuses and matches" `Quick
            test_warm_recheck_reuses_and_matches;
          Alcotest.test_case "warm recheck matches at jobs=4" `Quick
            test_warm_recheck_matches_at_jobs4;
          Alcotest.test_case "symbol edit invalidates only that symbol" `Quick
            test_symbol_edit_invalidates_only_that_symbol;
          Alcotest.test_case "rules change invalidates" `Quick test_rules_change_invalidates;
          Alcotest.test_case "config change invalidates, jobs does not" `Quick
            test_config_change_invalidates;
          Alcotest.test_case "corrupted cache falls back to cold" `Quick
            test_corrupted_cache_falls_back_to_cold;
          Alcotest.test_case "in-memory session reuse" `Quick test_in_memory_session_reuse ] );
      ( "parallel",
        [ Alcotest.test_case "report/SARIF/stats bytes across jobs" `Quick
            test_pipeline_bytes_across_jobs;
          Alcotest.test_case "lint replayed within a session" `Quick
            test_lint_replayed_in_session ] );
      ( "multideck",
        [ Alcotest.test_case "N=1 deck set = single engine bytes" `Quick
            test_multideck_n1_matches_single;
          Alcotest.test_case "each deck = checked alone" `Quick
            test_multideck_per_deck_matches_alone;
          Alcotest.test_case "merged bytes stable across jobs" `Quick
            test_multideck_merged_bytes_across_jobs;
          Alcotest.test_case "multi-deck SARIF bytes across jobs" `Quick
            test_multideck_sarif_across_jobs;
          Alcotest.test_case "per-deck cache independence" `Quick
            test_multideck_cache_independence;
          Alcotest.test_case "label dedupe" `Quick test_multideck_label_dedupe ] );
      ( "serve",
        [ Alcotest.test_case "round trip" `Quick test_serve_round_trip;
          Alcotest.test_case "serve report = engine report" `Quick
            test_serve_matches_engine_bytes;
          Alcotest.test_case "decks round trip" `Quick test_serve_decks_round_trip;
          Alcotest.test_case "prometheus stats format" `Quick
            test_serve_prometheus_stats;
          Alcotest.test_case "malformed request" `Quick test_serve_malformed_request;
          Alcotest.test_case "bad CIF is an error reply" `Quick
            test_serve_bad_cif_is_an_error_reply ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "escape decoding" `Quick test_json_escapes ] ) ]
