(* Kernel equivalence: the sweep gap kernel against the brute-force
   oracle, property-tested over adversarial rectangle soup (touching,
   overlapping, coincident, empty), plus end-to-end report identity
   across kernels and across job counts under the task-queue
   scheduler. *)

module R = Geom.Rects
module Rect = Geom.Rect
module Transform = Geom.Transform

(* Fixed seed by default (QCHECK_SEED still overrides): the CI and any
   two dev machines explore the same ~1k-case sample, so a failure
   here reproduces everywhere. *)
let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0x5eed)
  | None -> 0x5eed

let qsuite name tests =
  ( name,
    List.map
      (fun t ->
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t)
      tests )

let gap_eq (a : R.gap) (b : R.gap) =
  a.R.g2 = b.R.g2 && a.R.ai = b.R.ai && a.R.bi = b.R.bi
  && a.R.overlap = b.R.overlap

let pp_gap ppf (g : R.gap) =
  Format.fprintf ppf "{g2=%d; ai=%d; bi=%d; overlap=%b}" g.R.g2 g.R.ai g.R.bi
    g.R.overlap

(* Small coordinates on purpose: touching, overlapping, and coincident
   rectangles must be common in the sample, not one-in-a-million. *)
let rect_gen =
  QCheck2.Gen.(
    map
      (fun ((x, y), (w, h)) -> Rect.make x y (x + w) (y + h))
      (pair
         (pair (int_range (-20) 20) (int_range (-20) 20))
         (pair (int_range 1 12) (int_range 1 12))))

let set_gen = QCheck2.Gen.(list_size (int_range 0 7) rect_gen)

(* All the cutoff regimes the checker uses: degenerate (0), binding
   (small enough to prune most pairs), and unbounded (the exposure
   model's exact minimum). *)
let cutoff_gen =
  QCheck2.Gen.(oneofl [ 0; 9; 25; 100; max_int ])

let case_gen = QCheck2.Gen.(pair (pair set_gen set_gen) (pair bool cutoff_gen))

let prop_sweep_matches_naive =
  QCheck2.Test.make ~name:"sweep = naive (full gap record)" ~count:1000 case_gen
    (fun ((la, lb), (euclid, cutoff2)) ->
      let a = R.of_list la and b = R.of_list lb in
      let ws = R.make_ws () in
      let n = R.gap2_naive ~euclid ~cutoff2 a b in
      let s = R.gap2_sweep ~euclid ~cutoff2 ws a b in
      if gap_eq n s then true
      else
        QCheck2.Test.fail_reportf "cutoff2=%d euclid=%b: naive=%a sweep=%a"
          cutoff2 euclid pp_gap n pp_gap s)

(* One scratch [ws] reused across calls must not leak state between
   them — that is exactly how the checker uses its per-domain scratch. *)
let prop_ws_reuse =
  QCheck2.Test.make ~name:"ws reuse is stateless" ~count:300
    QCheck2.Gen.(pair case_gen case_gen)
    (fun (((la1, lb1), (e1, c1)), ((la2, lb2), (e2, c2))) ->
      let ws = R.make_ws () in
      let run (la, lb) euclid cutoff2 =
        R.gap2_sweep ~euclid ~cutoff2 ws (R.of_list la) (R.of_list lb)
      in
      let first = run (la1, lb1) e1 c1 in
      ignore (run (la2, lb2) e2 c2);
      gap_eq first (run (la1, lb1) e1 c1))

let transform_gen =
  let open QCheck2.Gen in
  let base =
    oneof
      [ return (Transform.rotate `East); return (Transform.rotate `North);
        return (Transform.rotate `West); return (Transform.rotate `South);
        return Transform.mirror_x; return Transform.mirror_y;
        map2 Transform.translate (int_range (-50) 50) (int_range (-50) 50) ]
  in
  map Transform.seq (list_size (int_range 0 5) base)

let prop_apply_into_matches_list =
  QCheck2.Test.make ~name:"apply_into = of_list . map apply_rect" ~count:500
    QCheck2.Gen.(pair transform_gen set_gen)
    (fun (tr, rects) ->
      let dst = R.empty () in
      R.apply_into tr ~src:(R.of_list rects) ~dst;
      R.to_list dst
      = R.to_list (R.of_list (List.map (Transform.apply_rect tr) rects)))

let prop_separation2_oracle =
  QCheck2.Test.make ~name:"separation2 agrees with the oracle" ~count:300
    QCheck2.Gen.(pair (pair set_gen set_gen) bool)
    (fun ((la, lb), euclid) ->
      let ra = Geom.Region.of_rects la and rb = Geom.Region.of_rects lb in
      let metric =
        if euclid then Geom.Measure.Euclidean else Geom.Measure.Orthogonal
      in
      match Geom.Measure.separation2 ~metric ra rb with
      | None -> Geom.Region.rects ra = [] || Geom.Region.rects rb = []
      | Some g2 ->
        let n =
          R.gap2_naive ~euclid ~cutoff2:max_int
            (R.of_list (Geom.Region.rects ra))
            (R.of_list (Geom.Region.rects rb))
        in
        g2 = n.R.g2)

(* ------------------------------------------------------------------ *)
(* Off-heap (Bigarray) storage                                         *)

let with_storage st f =
  let saved = R.storage () in
  R.set_storage st;
  Fun.protect ~finally:(fun () -> R.set_storage saved) f

(* Bigarray-backed sets must be indistinguishable from int-array ones:
   same sweep verdicts (against the boxed oracle), and the same for a
   deliberately mixed pair — one backing per side — which exercises the
   generic driver instead of the specialized ones. *)
let prop_offheap_matches_oracle =
  QCheck2.Test.make ~name:"offheap sweep = naive oracle" ~count:1000 case_gen
    (fun ((la, lb), (euclid, cutoff2)) ->
      with_storage R.Offheap (fun () ->
          let a = R.of_list la and b = R.of_list lb in
          if R.storage_of a <> R.Offheap || R.storage_of b <> R.Offheap then
            QCheck2.Test.fail_reportf "of_list ignored the storage switch";
          let ws = R.make_ws () in
          let n = R.gap2_naive ~euclid ~cutoff2 a b in
          let s = R.gap2_sweep ~euclid ~cutoff2 ws a b in
          if gap_eq n s then true
          else
            QCheck2.Test.fail_reportf
              "offheap: cutoff2=%d euclid=%b: naive=%a sweep=%a" cutoff2 euclid
              pp_gap n pp_gap s))

let prop_mixed_backing_matches =
  QCheck2.Test.make ~name:"mixed heap/offheap pair = heap pair" ~count:500
    QCheck2.Gen.(pair case_gen bool)
    (fun (((la, lb), (euclid, cutoff2)), a_offheap) ->
      let heap_a = with_storage R.Heap (fun () -> R.of_list la)
      and heap_b = with_storage R.Heap (fun () -> R.of_list lb)
      and off_a = with_storage R.Offheap (fun () -> R.of_list la)
      and off_b = with_storage R.Offheap (fun () -> R.of_list lb) in
      let a, b = if a_offheap then (off_a, heap_b) else (heap_a, off_b) in
      let ws = R.make_ws () in
      let expect = R.gap2_sweep ~euclid ~cutoff2 ws heap_a heap_b in
      let got = R.gap2_sweep ~euclid ~cutoff2 ws a b in
      if gap_eq expect got then true
      else
        QCheck2.Test.fail_reportf
          "mixed backing: cutoff2=%d euclid=%b: heap=%a mixed=%a" cutoff2
          euclid pp_gap expect pp_gap got)

(* [apply_into] adopts the source's backing, so transformed scratch
   sets stay in the same store as their definition geometry. *)
let prop_offheap_apply_into =
  QCheck2.Test.make ~name:"offheap apply_into = of_list . map" ~count:500
    QCheck2.Gen.(pair transform_gen set_gen)
    (fun (tr, rects) ->
      with_storage R.Offheap (fun () ->
          let src = R.of_list rects in
          let dst = R.empty () in
          R.apply_into tr ~src ~dst;
          (rects = [] || R.storage_of dst = R.Offheap)
          && R.to_list dst
             = R.to_list (R.of_list (List.map (Transform.apply_rect tr) rects))))

(* ------------------------------------------------------------------ *)
(* End-to-end identity                                                 *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

let run_ok ?config file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create ?config rules) file with
  | Ok (r, _) -> r
  | Error e -> Alcotest.fail e

let with_jobs jobs =
  { Dic.Engine.default_config with
    Dic.Engine.interactions =
      { Dic.Interactions.default_config with Dic.Interactions.jobs } }

let render r = Format.asprintf "%a" Dic.Report.pp r.Dic.Engine.report

let workloads () =
  [ Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:4;
    (Layoutgen.Pathology.fig8_accidental ~lambda).Layoutgen.Pathology.file;
    (Layoutgen.Pathology.fig2_figures_illegal ~lambda).Layoutgen.Pathology.file ]

let test_kernel_report_identity () =
  let saved = R.kernel () in
  Fun.protect
    ~finally:(fun () -> R.set_kernel saved)
    (fun () ->
      List.iter
        (fun file ->
          R.set_kernel R.Sweep;
          let sweep = render (run_ok file) in
          R.set_kernel R.Naive;
          let naive = render (run_ok file) in
          Alcotest.(check string) "byte-identical rendered report" sweep naive)
        (workloads ()))

let test_jobs_byte_identity () =
  List.iter
    (fun file ->
      let serial = render (run_ok ~config:(with_jobs 1) file) in
      let queued = render (run_ok ~config:(with_jobs 4) file) in
      Alcotest.(check string) "byte-identical rendered report" serial queued)
    (workloads ())

let test_storage_report_identity () =
  List.iter
    (fun file ->
      let heap = with_storage R.Heap (fun () -> render (run_ok file)) in
      let off = with_storage R.Offheap (fun () -> render (run_ok file)) in
      Alcotest.(check string) "heap = off-heap rendered report" heap off)
    (workloads ())

let () =
  Alcotest.run "kernel"
    [ qsuite "gap2.props"
        [ prop_sweep_matches_naive; prop_ws_reuse; prop_apply_into_matches_list;
          prop_separation2_oracle; prop_offheap_matches_oracle;
          prop_mixed_backing_matches; prop_offheap_apply_into ];
      ( "end-to-end",
        [ Alcotest.test_case "sweep vs naive report" `Quick
            test_kernel_report_identity;
          Alcotest.test_case "jobs=1 vs jobs=4 report" `Quick
            test_jobs_byte_identity;
          Alcotest.test_case "heap vs off-heap report" `Quick
            test_storage_report_identity ] ) ]
