(* Metrics: JSON well-formedness/round-trip, counter invariants, and
   the parallel-interaction determinism guarantee. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

(* The shared minimal JSON reader lives in Tjson. *)
module Json = Tjson

(* ------------------------------------------------------------------ *)

let run_ok ?config file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create ?config rules) file with
  | Ok (r, _) -> r
  | Error e -> Alcotest.fail e

let workload () = Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:4

let test_json_roundtrip () =
  let result = run_ok (workload ()) in
  let json = Dic.Metrics.to_json result.Dic.Engine.metrics in
  let v = try Json.parse json with Json.Bad m -> Alcotest.fail ("bad JSON: " ^ m) in
  (* Stages: present, in pipeline order, with non-negative seconds. *)
  (match Json.member "stages" v with
  | Some (Json.Arr stages) ->
    Alcotest.(check bool) "at least six stages" true (List.length stages >= 6);
    let names =
      List.map
        (fun st ->
          match (Json.member "name" st, Json.member "seconds" st) with
          | Some (Json.Str name), Some (Json.Num s) ->
            Alcotest.(check bool) ("stage " ^ name ^ " time >= 0") true (s >= 0.);
            name
          | _ -> Alcotest.fail "stage entry missing name/seconds")
        stages
    in
    Alcotest.(check string) "first stage" "elaborate" (List.hd names);
    Alcotest.(check bool) "has interactions stage" true (List.mem "interactions" names)
  | _ -> Alcotest.fail "no stages array");
  (* Counters: an object of non-negative integers, sorted by key. *)
  (match Json.member "counters" v with
  | Some (Json.Obj kvs) ->
    Alcotest.(check bool) "some counters" true (List.length kvs > 0);
    List.iter
      (fun (k, cv) ->
        match cv with
        | Json.Num f ->
          Alcotest.(check bool) (k ^ " non-negative") true (f >= 0.);
          Alcotest.(check bool) (k ^ " integral") true (Float.is_integer f)
        | _ -> Alcotest.fail (k ^ " not a number"))
      kvs;
    let keys = List.map fst kvs in
    Alcotest.(check (list string)) "keys sorted" (List.sort String.compare keys) keys;
    Alcotest.(check bool) "has pair counter" true
      (List.mem "interactions.pairs" keys)
  | _ -> Alcotest.fail "no counters object");
  (* Histograms: pair-check cost recorded, bucket counts sum to count. *)
  match Json.member "histograms" v with
  | Some (Json.Obj kvs) -> (
    match List.assoc_opt "interactions.pair_check_ns" kvs with
    | Some h -> (
      match (Json.member "count" h, Json.member "buckets" h) with
      | Some (Json.Num count), Some (Json.Arr buckets) ->
        let total =
          List.fold_left
            (fun acc b ->
              match Json.member "count" b with
              | Some (Json.Num c) -> acc + int_of_float c
              | _ -> Alcotest.fail "bucket without count")
            0 buckets
        in
        Alcotest.(check int) "bucket counts sum to count" (int_of_float count) total
      | _ -> Alcotest.fail "histogram missing count/buckets")
    | None -> Alcotest.fail "no pair_check_ns histogram")
  | _ -> Alcotest.fail "no histograms object"

let test_canonical () =
  (* Equal metric states render to equal JSON strings. *)
  let mk () =
    let m = Dic.Metrics.create () in
    Dic.Metrics.incr m "b";
    Dic.Metrics.incr ~by:3 m "a";
    Dic.Metrics.observe_ns m "h" 100L;
    Dic.Metrics.observe_ns m "h" 5000L;
    Dic.Metrics.add_stage_seconds m "s1" 0.25;
    m
  in
  Alcotest.(check string) "canonical" (Dic.Metrics.to_json (mk ()))
    (Dic.Metrics.to_json (mk ()))

let test_counter_invariants () =
  let m = Dic.Metrics.create () in
  Alcotest.(check int) "absent counter is zero" 0 (Dic.Metrics.counter m "nope");
  Dic.Metrics.incr m "x";
  Dic.Metrics.incr ~by:41 m "x";
  Alcotest.(check int) "accumulates" 42 (Dic.Metrics.counter m "x");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic (by < 0)") (fun () ->
      Dic.Metrics.incr ~by:(-1) m "x")

let test_merge () =
  let a = Dic.Metrics.create () and b = Dic.Metrics.create () in
  Dic.Metrics.incr ~by:2 a "n";
  Dic.Metrics.incr ~by:5 b "n";
  Dic.Metrics.observe_ns a "h" 10L;
  Dic.Metrics.observe_ns b "h" 20L;
  Dic.Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters added" 7 (Dic.Metrics.counter a "n");
  match Dic.Metrics.histogram a "h" with
  | Some s ->
    Alcotest.(check int) "observations added" 2 s.Dic.Metrics.h_count;
    Alcotest.(check bool) "sum added" true (s.Dic.Metrics.h_sum_ns = 30L)
  | None -> Alcotest.fail "histogram lost in merge"

(* ------------------------------------------------------------------ *)
(* Gauges and sliding windows                                          *)

let test_gauges () =
  let m = Dic.Metrics.create () in
  Alcotest.(check (option (float 0.))) "absent gauge" None (Dic.Metrics.gauge m "g");
  Dic.Metrics.set_gauge m "g" 2.5;
  Dic.Metrics.set_gauge m "g" 1.5;
  Alcotest.(check (option (float 0.))) "latest reading wins" (Some 1.5)
    (Dic.Metrics.gauge m "g");
  Dic.Metrics.set_gauge m "a" 0.25;
  Alcotest.(check (list (pair string (float 0.)))) "sorted by name"
    [ ("a", 0.25); ("g", 1.5) ] (Dic.Metrics.gauges m)

let test_gauge_merge () =
  let a = Dic.Metrics.create () and b = Dic.Metrics.create () in
  Dic.Metrics.set_gauge a "shared" 1.;
  Dic.Metrics.set_gauge a "only_a" 7.;
  Dic.Metrics.set_gauge b "shared" 2.;
  Dic.Metrics.merge_into ~into:a b;
  Alcotest.(check (option (float 0.))) "source reading wins" (Some 2.)
    (Dic.Metrics.gauge a "shared");
  Alcotest.(check (option (float 0.))) "destination-only survives" (Some 7.)
    (Dic.Metrics.gauge a "only_a")

let test_window_eviction () =
  let m = Dic.Metrics.create () in
  for i = 1 to 6 do
    Dic.Metrics.observe_window ~capacity:4 m "w" (float_of_int i)
  done;
  match Dic.Metrics.window m "w" with
  | None -> Alcotest.fail "window lost"
  | Some s ->
    Alcotest.(check int) "count includes evicted" 6 s.Dic.Metrics.w_count;
    Alcotest.(check int) "capacity kept" 4 s.Dic.Metrics.w_capacity;
    Alcotest.(check (array (float 0.))) "survivors oldest first"
      [| 3.; 4.; 5.; 6. |] s.Dic.Metrics.w_values;
    (* capacity only applies at creation: a later call with another
       capacity neither grows nor shrinks the ring *)
    Dic.Metrics.observe_window ~capacity:100 m "w" 7.;
    (match Dic.Metrics.window m "w" with
    | Some s' -> Alcotest.(check int) "capacity immutable" 4 s'.Dic.Metrics.w_capacity
    | None -> Alcotest.fail "window lost");
    Alcotest.(check (list string)) "window names sorted" [ "w" ]
      (Dic.Metrics.window_names m)

let test_window_quantiles () =
  let m = Dic.Metrics.create () in
  List.iter (Dic.Metrics.observe_window m "lat") [ 10.; 20.; 30.; 40. ];
  match Dic.Metrics.window m "lat" with
  | None -> Alcotest.fail "window lost"
  | Some s ->
    (* nearest-rank on 4 values: q=0.5 -> 2nd, q=0.95/0.99 -> 4th *)
    Alcotest.(check (float 0.)) "p50" 20. (Dic.Metrics.window_quantile s 0.5);
    Alcotest.(check (float 0.)) "p95" 40. (Dic.Metrics.window_quantile s 0.95);
    Alcotest.(check (float 0.)) "p99" 40. (Dic.Metrics.window_quantile s 0.99);
    let empty =
      { Dic.Metrics.w_count = 0; w_capacity = 4; w_values = [||] }
    in
    Alcotest.(check (float 0.)) "empty window" 0.
      (Dic.Metrics.window_quantile empty 0.5)

let test_window_merge () =
  (* Cross-domain discipline: shards merge in shard order into the
     destination; the destination's capacity wins and evicted counts
     carry over, so two equal shard sets render to equal JSON. *)
  let shard vs =
    let m = Dic.Metrics.create () in
    List.iter (Dic.Metrics.observe_window ~capacity:2 m "w") vs;
    m
  in
  let into = Dic.Metrics.create () in
  Dic.Metrics.observe_window ~capacity:8 into "w" 1.;
  List.iter
    (fun sh -> Dic.Metrics.merge_into ~into sh)
    [ shard [ 2.; 3.; 4. ]; shard [ 5. ] ];
  (match Dic.Metrics.window into "w" with
  | None -> Alcotest.fail "window lost"
  | Some s ->
    Alcotest.(check int) "destination capacity wins" 8 s.Dic.Metrics.w_capacity;
    (* shard 1 held [3;4] (2 evicted), shard 2 held [5] *)
    Alcotest.(check (array (float 0.))) "replayed oldest first in shard order"
      [| 1.; 3.; 4.; 5. |] s.Dic.Metrics.w_values;
    Alcotest.(check int) "evicted observations carried" 5 s.Dic.Metrics.w_count);
  let again = Dic.Metrics.create () in
  Dic.Metrics.observe_window ~capacity:8 again "w" 1.;
  List.iter
    (fun sh -> Dic.Metrics.merge_into ~into:again sh)
    [ shard [ 2.; 3.; 4. ]; shard [ 5. ] ];
  Alcotest.(check string) "deterministic across merges"
    (Dic.Metrics.to_json into) (Dic.Metrics.to_json again)

let test_gauge_window_json () =
  (* gauges/windows members are always present (canonical shape), carry
     the observed values, and the engine's cache.hit_ratio gauge lands
     in the run metrics. *)
  let m = Dic.Metrics.create () in
  let v = Json.parse (Dic.Metrics.to_json m) in
  (match (Json.member "gauges" v, Json.member "windows" v) with
  | Some (Json.Obj []), Some (Json.Obj []) -> ()
  | _ -> Alcotest.fail "empty state must render empty gauges/windows objects");
  Dic.Metrics.set_gauge m "g" 0.5;
  Dic.Metrics.observe_window m "w" 2.;
  let v = Json.parse (Dic.Metrics.to_json m) in
  (match Json.member "gauges" v with
  | Some (Json.Obj [ ("g", Json.Num f) ]) ->
    Alcotest.(check (float 0.)) "gauge value" 0.5 f
  | _ -> Alcotest.fail "gauge missing from JSON");
  (match Json.member "windows" v with
  | Some (Json.Obj [ ("w", w) ]) ->
    List.iter
      (fun k ->
        if Json.member k w = None then Alcotest.fail ("window stats missing " ^ k))
      [ "capacity"; "count"; "len"; "mean"; "max"; "p50"; "p95"; "p99" ]
  | _ -> Alcotest.fail "window missing from JSON");
  let result = run_ok (workload ()) in
  match Json.member "gauges" (Json.parse (Dic.Metrics.to_json result.Dic.Engine.metrics)) with
  | Some (Json.Obj kvs) ->
    Alcotest.(check bool) "engine records cache.hit_ratio" true
      (List.mem_assoc "cache.hit_ratio" kvs)
  | _ -> Alcotest.fail "run metrics without gauges"

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                                *)

let canonical_errors (r : Dic.Engine.result) =
  Dic.Report.errors r.Dic.Engine.report
  |> List.map (fun (v : Dic.Report.violation) ->
         (v.Dic.Report.rule, v.Dic.Report.context,
          Option.map
            (fun w -> (Geom.Rect.x0 w, Geom.Rect.y0 w, Geom.Rect.x1 w, Geom.Rect.y1 w))
            v.Dic.Report.where,
          v.Dic.Report.message))
  |> List.sort compare

let with_jobs jobs =
  { Dic.Engine.default_config with
    Dic.Engine.interactions =
      { Dic.Interactions.default_config with Dic.Interactions.jobs } }

let salted_workload () =
  let clean = Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:3 in
  let margin = (4 * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
  let salted, _ =
    Layoutgen.Inject.apply clean
      (Layoutgen.Inject.standard_batch ~lambda ~at:(margin, 0) ~step:(10 * lambda))
  in
  salted

let test_jobs_deterministic () =
  List.iter
    (fun file ->
      let serial = run_ok ~config:(with_jobs 1) file in
      let parallel = run_ok ~config:(with_jobs 4) file in
      Alcotest.(check bool) "some errors to compare" true
        (canonical_errors serial <> []);
      let canon =
        Alcotest.testable
          (fun ppf (rule, ctx, _, _) -> Format.fprintf ppf "%s in %s" rule ctx)
          ( = )
      in
      Alcotest.(check (list canon)) "identical classified error sets"
        (canonical_errors serial) (canonical_errors parallel);
      (* Stronger than the acceptance criterion: the raw report lists
         are identical, not merely equal as sets. *)
      Alcotest.(check bool) "identical report order" true
        (serial.Dic.Engine.report = parallel.Dic.Engine.report))
    [ salted_workload ();
      (Layoutgen.Pathology.fig8_accidental ~lambda).Layoutgen.Pathology.file;
      (Layoutgen.Pathology.fig2_figures_illegal ~lambda).Layoutgen.Pathology.file ]

let test_jobs_auto () =
  (* jobs = 0 resolves to the runtime's recommendation and still runs. *)
  let r = run_ok ~config:(with_jobs 0) (workload ()) in
  Alcotest.(check bool) "completed" true
    (Dic.Report.count r.Dic.Engine.report >= 0)

let test_stats_merge_totals () =
  (* Per-cell pair totals are independent of the domain count (only the
     memo hit/miss split may shift). *)
  let totals (r : Dic.Engine.result) =
    let s = r.Dic.Engine.interaction_stats in
    Hashtbl.fold
      (fun (la, lb) (c : Dic.Interactions.cell_stats) acc ->
        ((Tech.Layer.index la, Tech.Layer.index lb),
         (c.Dic.Interactions.pairs, c.Dic.Interactions.checked))
        :: acc)
      s.Dic.Interactions.cells []
    |> List.sort compare
  in
  let file = salted_workload () in
  let serial = run_ok ~config:(with_jobs 1) file in
  let parallel = run_ok ~config:(with_jobs 3) file in
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "cell totals invariant" (totals serial) (totals parallel)

let () =
  Alcotest.run "metrics"
    [ ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "canonical" `Quick test_canonical ]);
      ("counters",
       [ Alcotest.test_case "invariants" `Quick test_counter_invariants;
         Alcotest.test_case "merge" `Quick test_merge ]);
      ("gauges",
       [ Alcotest.test_case "readings" `Quick test_gauges;
         Alcotest.test_case "merge" `Quick test_gauge_merge ]);
      ("windows",
       [ Alcotest.test_case "eviction" `Quick test_window_eviction;
         Alcotest.test_case "quantiles" `Quick test_window_quantiles;
         Alcotest.test_case "merge" `Quick test_window_merge;
         Alcotest.test_case "json" `Quick test_gauge_window_json ]);
      ("parallel",
       [ Alcotest.test_case "deterministic" `Quick test_jobs_deterministic;
         Alcotest.test_case "auto jobs" `Quick test_jobs_auto;
         Alcotest.test_case "stats totals" `Quick test_stats_merge_totals ]) ]
