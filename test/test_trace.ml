(* Trace: span recording and Chrome-trace export; SARIF: structure and
   source provenance; provenance plumbing on Report. *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

module Json = Tjson

let run_ok ?config ?trace src =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check_string ?trace (Dic.Engine.create ?config rules) src with
  | Ok (r, _) -> r
  | Error e -> Alcotest.fail e

let with_jobs jobs =
  { Dic.Engine.default_config with
    Dic.Engine.interactions =
      { Dic.Interactions.default_config with Dic.Interactions.jobs } }

(* A pathology with a known violation, as CIF *text*, so the parser
   assigns real line/column positions. *)
let fig8_src () =
  Cif.Print.to_string (Layoutgen.Pathology.fig8_accidental ~lambda).Layoutgen.Pathology.file

(* ------------------------------------------------------------------ *)
(* Trace recording                                                     *)

let test_with_span_records () =
  let t = Dic.Trace.create () in
  let v = Dic.Trace.with_span (Some t) ~cat:"test" "outer" (fun () ->
      Dic.Trace.with_span (Some t) ~cat:"test" "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "body result" 42 v;
  Alcotest.(check int) "two spans" 2 (Dic.Trace.length t);
  (* with_span records at exit: the inner span is listed first. *)
  (match Dic.Trace.events t with
  | [ a; b ] ->
    Alcotest.(check string) "inner first" "inner" a.Dic.Trace.e_name;
    Alcotest.(check string) "outer second" "outer" b.Dic.Trace.e_name
  | _ -> Alcotest.fail "expected exactly two events");
  Alcotest.(check int) "None records nothing" 7
    (Dic.Trace.with_span None "ignored" (fun () -> 7))

let test_with_span_on_raise () =
  let t = Dic.Trace.create () in
  (try
     Dic.Trace.with_span (Some t) "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Dic.Trace.length t)

let test_merge_order () =
  let a = Dic.Trace.create ~tid:0 () and b = Dic.Trace.create ~tid:1 () in
  Dic.Trace.record a "a0" ~ts_ns:5L ~dur_ns:1L;
  Dic.Trace.record b "b0" ~ts_ns:1L ~dur_ns:1L;
  Dic.Trace.record b "b1" ~ts_ns:2L ~dur_ns:1L;
  Dic.Trace.merge_into ~into:a b;
  Alcotest.(check (list string)) "append order, not time order"
    [ "a0"; "b0"; "b1" ]
    (List.map (fun e -> e.Dic.Trace.e_name) (Dic.Trace.events a));
  Alcotest.(check (list int)) "tids preserved" [ 0; 1; 1 ]
    (List.map (fun e -> e.Dic.Trace.e_tid) (Dic.Trace.events a))

(* Any two complete spans on one lane must be disjoint or nested —
   the stack discipline of with_span, checked on a real run. *)
let test_nesting_well_formed () =
  let trace = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 1) ~trace (fig8_src ()) in
  let spans =
    List.filter (fun e -> e.Dic.Trace.e_ph = `Complete) (Dic.Trace.events trace)
  in
  Alcotest.(check bool) "several spans" true (List.length spans > 3);
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && a.Dic.Trace.e_tid = b.Dic.Trace.e_tid then begin
            let a0 = a.Dic.Trace.e_ts_ns
            and a1 = Int64.add a.Dic.Trace.e_ts_ns a.Dic.Trace.e_dur_ns
            and b0 = b.Dic.Trace.e_ts_ns
            and b1 = Int64.add b.Dic.Trace.e_ts_ns b.Dic.Trace.e_dur_ns in
            let disjoint = a1 <= b0 || b1 <= a0 in
            let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1) in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s disjoint or nested" a.Dic.Trace.e_name
                 b.Dic.Trace.e_name)
              true (disjoint || nested)
          end)
        spans)
    spans

let stage_names trace =
  List.filter_map
    (fun e ->
      if e.Dic.Trace.e_cat = "stage" then Some e.Dic.Trace.e_name else None)
    (Dic.Trace.events trace)

let shard_names trace =
  List.filter_map
    (fun e ->
      if e.Dic.Trace.e_cat = "shard" then Some e.Dic.Trace.e_name else None)
    (Dic.Trace.events trace)

(* Shard spans come in one run per parallel stage (elements, devices,
   and interactions can each fan out); within every run the names must
   be consecutively numbered from shard[0]. *)
let check_shard_runs label names =
  let ok, _ =
    List.fold_left
      (fun (ok, next) name ->
        if name = "shard[0]" then (ok, 1)
        else (ok && name = Printf.sprintf "shard[%d]" next, next + 1))
      (true, 0) names
  in
  Alcotest.(check bool) label true ok

let test_shape_jobs_invariant () =
  let src = fig8_src () in
  let t1 = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 1) ~trace:t1 src in
  let t4 = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 4) ~trace:t4 src in
  Alcotest.(check (list string)) "stage spans identical across jobs"
    (stage_names t1) (stage_names t4);
  Alcotest.(check (list string)) "serial run has the one shard" [ "shard[0]" ]
    (shard_names t1);
  let s4 = shard_names t4 in
  Alcotest.(check bool) "parallel run has shards" true (List.length s4 >= 1);
  check_shard_runs "shards in order" s4

(* Same invariant on a workload with enough distinct definitions that
   the per-definition stages genuinely fan out, plus the symbol spans:
   their multiset is jobs-invariant even though per-domain completion
   order is not. *)
let symbol_names trace =
  List.filter_map
    (fun e ->
      if e.Dic.Trace.e_cat = "symbol" then Some e.Dic.Trace.e_name else None)
    (Dic.Trace.events trace)
  |> List.sort String.compare

let test_stage_parallel_shape () =
  let src =
    Cif.Print.to_string (Layoutgen.Pla.tier ~lambda ~rows:4 ~cols:6)
  in
  let t1 = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 1) ~trace:t1 src in
  let t4 = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 4) ~trace:t4 src in
  Alcotest.(check (list string)) "stage spans identical across jobs"
    (stage_names t1) (stage_names t4);
  Alcotest.(check (list string)) "symbol span multiset identical across jobs"
    (symbol_names t1) (symbol_names t4);
  let s4 = shard_names t4 in
  (* elements, devices and interactions each fan out: at least three
     per-stage shard runs, i.e. shard[0] appears at least three times. *)
  Alcotest.(check bool) "one shard run per parallel stage" true
    (List.length (List.filter (( = ) "shard[0]") s4) >= 3);
  check_shard_runs "each stage's shards consecutively numbered" s4

let test_chrome_json_parses () =
  let trace = Dic.Trace.create () in
  let _ = run_ok ~config:(with_jobs 2) ~trace (fig8_src ()) in
  let json = Dic.Trace.to_chrome_json trace in
  let v = try Json.parse json with Json.Bad m -> Alcotest.fail ("bad JSON: " ^ m) in
  (match Json.member "traceEvents" v with
  | Some (Json.Arr events) ->
    Alcotest.(check int) "one JSON event per recorded event"
      (Dic.Trace.length trace) (List.length events);
    List.iter
      (fun e ->
        (match (Json.member "name" e, Json.member "ph" e) with
        | Some (Json.Str _), Some (Json.Str ph) ->
          Alcotest.(check bool) "phase is X or i" true (ph = "X" || ph = "i")
        | _ -> Alcotest.fail "event missing name/ph");
        match Json.member "ts" e with
        | Some (Json.Num ts) ->
          Alcotest.(check bool) "timestamps rebased to >= 0" true (ts >= 0.)
        | _ -> Alcotest.fail "event missing ts")
      events
  | _ -> Alcotest.fail "no traceEvents array");
  match Json.member "otherData" v with
  | Some other -> (
    match Json.member "version" other with
    | Some (Json.Str ver) ->
      Alcotest.(check string) "tool version embedded" Dic.Version.version ver
    | _ -> Alcotest.fail "otherData without version")
  | None -> Alcotest.fail "no otherData"

(* ------------------------------------------------------------------ *)
(* Provenance on Report                                                *)

let test_instance_path () =
  let v =
    Dic.Report.error ~stage:Dic.Report.Interactions ~rule:"spacing.ND"
      ~context:"TOP" ~path:"TOP.inv[3].contact[0]"
      ~loc:(Cif.Loc.make ~line:12 ~col:3) "too close"
  in
  Alcotest.(check string) "explicit path wins" "TOP.inv[3].contact[0]"
    (Dic.Report.instance_path v);
  let local =
    Dic.Report.error ~stage:Dic.Report.Elements ~rule:"width.ND" ~context:"cell"
      "narrow"
  in
  Alcotest.(check string) "context is the default path" "cell"
    (Dic.Report.instance_path local);
  let rendered = Format.asprintf "%a" Dic.Report.pp_violation v in
  Alcotest.(check bool) "pp shows the path" true
    (Astring_contains.contains rendered "TOP.inv[3].contact[0]");
  Alcotest.(check bool) "pp shows the source position" true
    (Astring_contains.contains rendered "12:3")

let test_parse_locations_reach_report () =
  (* The fig8 violation must carry the line/column of the offending CIF
     statement, and that line must actually exist in the source. *)
  let src = fig8_src () in
  let r = run_ok src in
  let errs = Dic.Report.errors r.Dic.Engine.report in
  Alcotest.(check bool) "fig8 has errors" true (errs <> []);
  let with_loc =
    List.filter_map (fun (v : Dic.Report.violation) -> v.Dic.Report.loc) errs
  in
  Alcotest.(check bool) "some error carries a CIF position" true (with_loc <> []);
  let lines = String.split_on_char '\n' src in
  List.iter
    (fun (l : Cif.Loc.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d within source" l.Cif.Loc.line)
        true
        (l.Cif.Loc.line >= 1 && l.Cif.Loc.line <= List.length lines))
    with_loc

(* ------------------------------------------------------------------ *)
(* SARIF                                                               *)

let test_sarif_structure () =
  let src = fig8_src () in
  let r = run_ok src in
  let sarif = Dic.Sarif.of_report ~uri:"fig8.cif" r.Dic.Engine.report in
  let v = try Json.parse sarif with Json.Bad m -> Alcotest.fail ("bad JSON: " ^ m) in
  (match Json.member "version" v with
  | Some (Json.Str ver) -> Alcotest.(check string) "sarif version" "2.1.0" ver
  | _ -> Alcotest.fail "no version");
  let run =
    match Json.member "runs" v with
    | Some (Json.Arr [ run ]) -> run
    | _ -> Alcotest.fail "expected exactly one run"
  in
  (* Driver: name, version, sorted rules. *)
  let driver =
    match Json.member "tool" run with
    | Some tool -> (
      match Json.member "driver" tool with
      | Some d -> d
      | None -> Alcotest.fail "no driver")
    | None -> Alcotest.fail "no tool"
  in
  (match (Json.member "name" driver, Json.member "version" driver) with
  | Some (Json.Str n), Some (Json.Str ver) ->
    Alcotest.(check string) "driver name" "dicheck" n;
    Alcotest.(check string) "driver version" Dic.Version.version ver
  | _ -> Alcotest.fail "driver missing name/version");
  let rule_ids =
    match Json.member "rules" driver with
    | Some (Json.Arr rules) ->
      List.map
        (fun r ->
          match Json.member "id" r with
          | Some (Json.Str id) -> id
          | _ -> Alcotest.fail "rule without id")
        rules
    | _ -> Alcotest.fail "no rules array"
  in
  Alcotest.(check (list string)) "rules sorted by id"
    (List.sort String.compare rule_ids) rule_ids;
  (* Results: every violation appears; the fig8 error carries a region
     and a logical location. *)
  let results =
    match Json.member "results" run with
    | Some (Json.Arr rs) -> rs
    | _ -> Alcotest.fail "no results array"
  in
  Alcotest.(check int) "one result per violation"
    (List.length r.Dic.Engine.report.Dic.Report.violations)
    (List.length results);
  let accidental =
    List.find_opt
      (fun res ->
        match Json.member "ruleId" res with
        | Some (Json.Str id) -> id = "integrity.accidental-transistor"
        | _ -> false)
      results
  in
  match accidental with
  | None -> Alcotest.fail "fig8 violation missing from SARIF"
  | Some res -> (
    (match Json.member "level" res with
    | Some (Json.Str lvl) -> Alcotest.(check string) "level" "error" lvl
    | _ -> Alcotest.fail "no level");
    match Json.member "locations" res with
    | Some (Json.Arr [ loc ]) -> (
      (match Json.member "physicalLocation" loc with
      | Some phys -> (
        (match Json.member "artifactLocation" phys with
        | Some art -> (
          match Json.member "uri" art with
          | Some (Json.Str uri) -> Alcotest.(check string) "uri" "fig8.cif" uri
          | _ -> Alcotest.fail "no uri")
        | None -> Alcotest.fail "no artifactLocation");
        match Json.member "region" phys with
        | Some region -> (
          match Json.member "startLine" region with
          | Some (Json.Num line) ->
            Alcotest.(check bool) "startLine positive" true (line >= 1.)
          | _ -> Alcotest.fail "region without startLine")
        | None -> Alcotest.fail "fig8 error lost its CIF region")
      | None -> Alcotest.fail "no physicalLocation");
      match Json.member "logicalLocations" loc with
      | Some (Json.Arr [ logical ]) -> (
        match Json.member "fullyQualifiedName" logical with
        | Some (Json.Str fq) ->
          Alcotest.(check string) "instance path" "TOP" fq
        | _ -> Alcotest.fail "no fullyQualifiedName")
      | _ -> Alcotest.fail "no logicalLocations")
    | _ -> Alcotest.fail "expected one location")

let test_sarif_deterministic () =
  let src = fig8_src () in
  let a = run_ok src and b = run_ok src in
  Alcotest.(check string) "equal reports render identically"
    (Dic.Sarif.of_report ~uri:"x.cif" a.Dic.Engine.report)
    (Dic.Sarif.of_report ~uri:"x.cif" b.Dic.Engine.report)

(* ------------------------------------------------------------------ *)
(* Cost attribution                                                    *)

let test_cost_attribution () =
  let m = Dic.Metrics.create () in
  Dic.Metrics.add_cost_ns m "symbol.a" 10L;
  Dic.Metrics.add_cost_ns m "symbol.b" 30L;
  Dic.Metrics.add_cost_ns m "symbol.a" 5L;
  Alcotest.(check bool) "costs accumulate" true
    (Dic.Metrics.cost_ns m "symbol.a" = 15L);
  Alcotest.(check (list string)) "top order is by descending cost"
    [ "symbol.b"; "symbol.a" ]
    (List.map fst (Dic.Metrics.top_costs m ~n:5));
  Alcotest.(check int) "top-n truncates" 1
    (List.length (Dic.Metrics.top_costs m ~n:1));
  let other = Dic.Metrics.create () in
  Dic.Metrics.add_cost_ns other "symbol.a" 1L;
  Dic.Metrics.merge_into ~into:m other;
  Alcotest.(check bool) "merge adds costs" true
    (Dic.Metrics.cost_ns m "symbol.a" = 16L)

let test_checker_charges_symbols () =
  let r = run_ok (fig8_src ()) in
  let costs = Dic.Metrics.costs r.Dic.Engine.metrics in
  let symbol_costs = List.filter (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "symbol.") costs in
  Alcotest.(check bool) "per-definition costs recorded" true (symbol_costs <> [])

let () =
  Alcotest.run "trace"
    [ ("spans",
       [ Alcotest.test_case "with_span records" `Quick test_with_span_records;
         Alcotest.test_case "records on raise" `Quick test_with_span_on_raise;
         Alcotest.test_case "merge keeps order" `Quick test_merge_order;
         Alcotest.test_case "nesting well-formed" `Quick test_nesting_well_formed;
         Alcotest.test_case "shape invariant across jobs" `Quick
           test_shape_jobs_invariant;
         Alcotest.test_case "stage-parallel shape invariant" `Quick
           test_stage_parallel_shape ]);
      ("chrome",
       [ Alcotest.test_case "export parses" `Quick test_chrome_json_parses ]);
      ("provenance",
       [ Alcotest.test_case "instance path" `Quick test_instance_path;
         Alcotest.test_case "parse locations reach report" `Quick
           test_parse_locations_reach_report ]);
      ("sarif",
       [ Alcotest.test_case "structure" `Quick test_sarif_structure;
         Alcotest.test_case "deterministic" `Quick test_sarif_deterministic ]);
      ("costs",
       [ Alcotest.test_case "attribution" `Quick test_cost_attribution;
         Alcotest.test_case "checker charges symbols" `Quick
           test_checker_charges_symbols ]) ]
