(* dicheck: the Design Integrity and Immunity Checker, as a command.

   Three subcommands sharing one engine library:

     dicheck check FILE   (also the default: `dicheck FILE`)
     dicheck lint [FILE]  static lints only: rule deck + CIF hierarchy
     dicheck serve        concurrent JSON-lines daemon, stdio or socket

   `check` reads extended CIF, runs either the hierarchical checker or
   the classical flat baseline, and prints the report; with --cache DIR
   per-definition results and the interaction memo persist across
   invocations.  `serve` keeps engines warm in-process instead: a pool
   of worker domains (--workers) answers any number of concurrent
   clients (docs/PROTOCOL.md is the wire reference).

   Exit codes: 0 the design checked clean, 1 the checker found errors
   (or warnings, with --werror), 2 usage / parse / input failure. *)

open Cmdliner

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let write_output path content =
  if path = "-" then print_endline content
  else
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc content;
        Out_channel.output_char oc '\n')

let load_rules ~lambda rules_file =
  match rules_file with
  | None -> Tech.Rules.nmos ~lambda ()
  | Some path -> (
    match Tech.Rules.of_string (read_file path) with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "rule file: %s\n" msg;
      exit 2)

(* ------------------------------------------------------------------ *)
(* check                                                               *)

(* Exit policy of one deck's report; a multi-deck check exits with the
   worst deck's code. *)
let deck_exit ~werror ~lint_werror (report : Dic.Report.t) =
  let count sev = Dic.Report.count ~severity:sev report in
  if count Dic.Report.Error > 0 then 1
  else if werror && count Dic.Report.Warning > 0 then 1
  else if lint_werror && Dic.Report.by_rule_prefix report "lint." <> [] then 1
  else 0

let run_dic ~show_netlist ~show_stats ~show_structure ~check_same_net ~expect ~markers
    ~jobs ~cache ~stats_json ~trace_out ~sarif_out ~top_cost ~progress ~werror ~lint
    ~lint_werror ~input decks src =
  match Cif.Parse.file src with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Cif.Parse.string_of_error e);
    2
  | Ok file -> (
    let expected_netlist =
      match expect with
      | None -> None
      | Some path -> (
        match Dic.Netcompare.parse (read_file path) with
        | Ok e -> Some e
        | Error msg ->
          Printf.eprintf "expected net list: %s\n" msg;
          exit 2)
    in
    let engine =
      let e =
        Dic.Engine.create ?cache_dir:cache ~decks
          (List.hd decks).Dic.Engine.dk_rules
      in
      let e = Dic.Engine.with_jobs e jobs in
      let e = Dic.Engine.with_same_net e check_same_net in
      let e = Dic.Engine.with_lint e (lint || lint_werror) in
      Dic.Engine.with_expected_netlist e expected_netlist
    in
    let trace = match trace_out with None -> None | Some _ -> Some (Dic.Trace.create ()) in
    let progress_fn =
      if progress then Some (fun stage -> Printf.eprintf "[dicheck] %s...\n%!" stage)
      else None
    in
    match Dic.Engine.check ?trace ?progress:progress_fn engine file with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok multi ->
      let result, _reuse = Dic.Engine.primary multi in
      let single =
        match multi.Dic.Engine.results with [ _ ] -> true | _ -> false
      in
      (* When any structured output claims stdout, the human report
         moves to stderr so the JSON stream stays parseable. *)
      let on_stdout = function Some "-" -> true | _ -> false in
      let out =
        if on_stdout stats_json || on_stdout trace_out || on_stdout sarif_out then
          Format.err_formatter
        else Format.std_formatter
      in
      (* A single deck prints exactly the historical report; several
         decks print the merged view with deck-membership annotations
         and the compliant-intersection verdict. *)
      if single then begin
        Format.fprintf out "%a@." Dic.Report.pp result.Dic.Engine.report;
        Format.fprintf out "%a@." Dic.Engine.pp_summary result
      end
      else begin
        Format.fprintf out "%a@." Dic.Multireport.pp multi.Dic.Engine.merged;
        Format.fprintf out "%a@." Dic.Multireport.pp_summary multi.Dic.Engine.merged
      end;
      (* Reuse goes to stderr: a warm run's stdout must stay
         byte-identical to the cold run's. *)
      if cache <> None then
        List.iter
          (fun (dr : Dic.Engine.deck_result) ->
            let reuse = dr.Dic.Engine.dr_reuse in
            Printf.eprintf
              "[dicheck] cache%s: %d/%d definition(s) reused (%d from disk), %d memo entr%s loaded\n"
              (if single then ""
               else "[" ^ dr.Dic.Engine.dr_deck.Dic.Engine.dk_label ^ "]")
              reuse.Dic.Engine.symbols_reused reuse.Dic.Engine.symbols_total
              reuse.Dic.Engine.defs_from_disk reuse.Dic.Engine.memo_loaded
              (if reuse.Dic.Engine.memo_loaded = 1 then "y" else "ies"))
          multi.Dic.Engine.results;
      if show_netlist then
        Format.fprintf out "@.--- net list ---@.%a@." Netlist.Net.pp
          result.Dic.Engine.netlist;
      if show_stats then
        Format.fprintf out "@.--- interaction coverage ---@.%a@." Dic.Interactions.pp_stats
          result.Dic.Engine.interaction_stats;
      if show_structure then
        Format.fprintf out "@.--- design structure ---@.%a@." Dic.Structure.pp
          (Dic.Structure.compute result.Dic.Engine.nets);
      if top_cost > 0 then begin
        Format.fprintf out "@.--- most expensive definitions ---@.";
        List.iter
          (fun (name, ns) ->
            Format.fprintf out "%-38s %12.3f ms@." name (Int64.to_float ns /. 1e6))
          (Dic.Metrics.top_costs result.Dic.Engine.metrics ~n:top_cost)
      end;
      (match markers with
      | None -> ()
      | Some path ->
        (* Multi-deck markers cover the merged view: every violation any
           deck flagged, once. *)
        let marker_report =
          if single then result.Dic.Engine.report
          else
            { Dic.Report.violations =
                List.rev_map
                  (fun (e : Dic.Multireport.entry) -> e.Dic.Multireport.violation)
                  multi.Dic.Engine.merged.Dic.Multireport.entries }
        in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Dic.Markers.to_cif marker_report)));
      (match stats_json with
      | None -> ()
      | Some path -> write_output path (Dic.Metrics.to_json result.Dic.Engine.metrics));
      (match (trace_out, trace) with
      | Some path, Some tr -> write_output path (Dic.Trace.to_chrome_json tr)
      | _ -> ());
      (match sarif_out with
      | None -> ()
      | Some path ->
        let uri = if input = "-" then "stdin" else input in
        if single then
          write_output path (Dic.Sarif.of_report ~uri result.Dic.Engine.report)
        else
          write_output path
            (Dic.Sarif.of_reports ~uri
               (List.map
                  (fun (dr : Dic.Engine.deck_result) ->
                    ( dr.Dic.Engine.dr_deck.Dic.Engine.dk_label,
                      dr.Dic.Engine.dr_deck.Dic.Engine.dk_rules,
                      dr.Dic.Engine.dr_result.Dic.Engine.report ))
                  multi.Dic.Engine.results)));
      List.fold_left
        (fun acc (dr : Dic.Engine.deck_result) ->
          max acc
            (deck_exit ~werror ~lint_werror dr.Dic.Engine.dr_result.Dic.Engine.report))
        0 multi.Dic.Engine.results)

let run_flat ~metric ~poly_diff ~width_algorithm rules src =
  match Cif.Parse.file src with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Cif.Parse.string_of_error e);
    2
  | Ok file ->
    let mode = { Flatdrc.Classic.metric; poly_diff; width_algorithm } in
    let errors = Flatdrc.Classic.check mode rules file in
    List.iter (fun e -> Format.printf "%a@." Flatdrc.Classic.pp_error e) errors;
    Printf.printf "%d error(s)\n" (List.length errors);
    if errors = [] then 0 else 1

let check_main file flat metric polydiff figure_based lambda rules_files show_netlist
    show_stats show_structure check_same_net expect markers jobs cache stats_json
    trace_out sarif_out top_cost progress werror lint lint_werror =
  let decks =
    match rules_files with
    | [] -> [ Dic.Engine.deck (Tech.Rules.nmos ~lambda ()) ]
    | paths ->
      Dic.Engine.dedupe_labels
        (List.map
           (fun p ->
             Dic.Engine.deck ~label:(Filename.basename p)
               (load_rules ~lambda (Some p)))
           paths)
  in
  let src = read_file file in
  if flat then begin
    List.iter
      (fun (opt, name) ->
        if opt <> None then
          Printf.eprintf
            "dicheck: %s applies to the hierarchical checker; ignored with --flat\n" name)
      [ (stats_json, "--stats-json"); (trace_out, "--trace"); (sarif_out, "--sarif");
        (cache, "--cache") ];
    (match decks with
    | _ :: _ :: _ ->
      Printf.eprintf
        "dicheck: --flat checks one deck; using the first --rules only\n"
    | _ -> ());
    run_flat ~metric
      ~poly_diff:(if polydiff then `Flag_all else `Ignore)
      ~width_algorithm:(if figure_based then `Figure_based else `Shrink_expand_compare)
      (List.hd decks).Dic.Engine.dk_rules src
  end
  else
    run_dic ~show_netlist ~show_stats ~show_structure ~check_same_net ~expect ~markers
      ~jobs ~cache ~stats_json ~trace_out ~sarif_out ~top_cost ~progress ~werror ~lint
      ~lint_werror ~input:file decks src

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let lint_main file rules_files lambda explain_code sarif_out werror =
  match explain_code with
  | Some code -> (
    match Dic.Lint.explain code with
    | Some text ->
      Printf.printf "%s: %s\n" code text;
      0
    | None ->
      Printf.eprintf "dicheck: unknown lint code %S (codes: %s)\n" code
        (String.concat " " (List.map fst Dic.Lint.all_codes));
      2)
  | None ->
    (* Each --rules FILE is one deck; none means the built-in NMOS
       rules.  Deck lint (R001–R011) and the constraint-graph analysis
       (R012–R014) run per deck; with two or more decks the pairwise
       subsumption verdicts (R015) print as "deck relation" lines after
       the diagnostics. *)
    let decks =
      match rules_files with
      | [] ->
        let r = Tech.Rules.nmos ~lambda () in
        [ ("<builtin-rules>", Some r,
           Dic.Lint.sort (Dic.Lint.check_deck r @ Dic.Deckcheck.check_deck r)) ]
      | paths ->
        List.map
          (fun path ->
            let d, diags = Dic.Lint.check_deck_source (read_file path) in
            let diags =
              match d with
              | Some deck -> Dic.Lint.sort (diags @ Dic.Deckcheck.check_deck deck)
              | None -> diags
            in
            (path, d, diags))
          paths
    in
    let primary_rules =
      match decks with
      | (_, Some r, _) :: _ -> r
      | _ -> Tech.Rules.nmos ~lambda ()
    in
    let design_diags, design_src, file_waivers =
      match file with
      | None -> ([], None, [])
      | Some f -> (
        match Cif.Parse.file (read_file f) with
        | Error e ->
          Printf.eprintf "parse error: %s\n" (Cif.Parse.string_of_error e);
          exit 2
        | Ok ast ->
          (Dic.Lint.check_design primary_rules ast, Some f, ast.Cif.Ast.waivers))
    in
    (* Waivers: each deck's own [# lint: allow] comments plus the
       design's [4L] commands filter that deck's diagnostics; the
       design diagnostics are filtered once, under the primary deck. *)
    let deck_out =
      List.map
        (fun (path, d, diags) ->
          let dw = match d with Some r -> r.Tech.Rules.waivers | None -> [] in
          let kept, supp =
            Dic.Lint.partition_waived ~waivers:(dw @ file_waivers) diags
          in
          (path, d, kept, supp))
        decks
    in
    let design_kept, design_supp =
      Dic.Lint.partition_waived
        ~waivers:(primary_rules.Tech.Rules.waivers @ file_waivers)
        design_diags
    in
    List.iter
      (fun (path, _, kept, _) ->
        List.iter (fun d -> print_endline (Dic.Lint.render ~src:path d)) kept)
      deck_out;
    (match design_src with
    | Some f ->
      List.iter (fun d -> print_endline (Dic.Lint.render ~src:f d)) design_kept
    | None -> ());
    let parsed =
      List.filter_map (fun (p, d, _, _) -> Option.map (fun r -> (p, r)) d) deck_out
    in
    let relations =
      if List.length parsed >= 2 then Dic.Deckcheck.relation_lines parsed else []
    in
    List.iter (fun line -> Printf.printf "deck relation: %s\n" line) relations;
    let all = List.concat_map (fun (_, _, kept, _) -> kept) deck_out @ design_kept in
    let suppressed =
      List.concat_map (fun (_, _, _, s) -> s) deck_out @ design_supp
    in
    let errors = List.length (List.filter (fun d -> d.Dic.Lint.severity = Dic.Lint.Error) all) in
    Printf.printf "%d lint diagnostic(s): %d error(s), %d warning(s)\n" (List.length all)
      errors
      (List.length all - errors);
    (match Dic.Lint.suppressed_counts suppressed with
    | [] -> ()
    | counts ->
      Printf.printf "%d suppressed by waivers: %s\n" (List.length suppressed)
        (String.concat " "
           (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) counts)));
    (match sarif_out with
    | None -> ()
    | Some path ->
      let uri =
        match design_src with
        | Some f -> f
        | None -> (match rules_files with p :: _ -> p | [] -> "<builtin-rules>")
      in
      (* Sarif renders [violations] reversed, so store them reversed to
         emit results in diagnostic order. *)
      let report_of diags =
        { Dic.Report.violations = List.rev (Dic.Lint.to_violations diags) }
      in
      match deck_out with
      | [ (_, _, kept, supp) ] ->
        write_output path
          (Dic.Sarif.of_report ~uri
             ~suppressed:(Dic.Lint.to_violations (supp @ design_supp))
             (report_of (kept @ design_kept)))
      | _ ->
        let runs =
          List.mapi
            (fun i (p, d, kept, _) ->
              let rules = match d with Some r -> r | None -> primary_rules in
              (p, rules, report_of (if i = 0 then kept @ design_kept else kept)))
            deck_out
        in
        let supp =
          List.mapi
            (fun i (p, _, _, s) ->
              (p, Dic.Lint.to_violations (if i = 0 then s @ design_supp else s)))
            deck_out
        in
        write_output path (Dic.Sarif.of_reports ~uri ~suppressed:supp ~relations runs));
    if errors > 0 then 1 else if werror && all <> [] then 1 else 0

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_main lambda rules_file cache socket workers max_queue trace_out event_log
    event_log_max_bytes slow_ms =
  let rules = load_rules ~lambda rules_file in
  (* The event log is written line-at-a-time from whichever domain hits
     a lifecycle transition; the hub serializes sink calls under its
     lock, and each line is flushed so `tail -f` (and the CI smoke)
     sees events as they happen.

     Long-lived daemons bound the log with [--event-log-max-bytes]:
     when a line would push the file past the limit, the current log
     rotates to [<path>.1] (replacing any previous rotation) and a
     fresh file takes over — one generation of history, never more
     than ~2x the limit on disk.  Rotation happens between lines, under
     the hub's lock, so lines are never split across files. *)
  let event_state =
    Option.map (fun path -> (path, ref (Out_channel.open_text path), ref 0)) event_log
  in
  let event_sink =
    Option.map
      (fun (path, oc, written) line ->
        (match event_log_max_bytes with
        | Some limit
          when !written > 0 && !written + String.length line + 1 > limit ->
          Out_channel.close !oc;
          (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
          oc := Out_channel.open_text path;
          written := 0
        | _ -> ());
        Out_channel.output_string !oc line;
        Out_channel.output_char !oc '\n';
        Out_channel.flush !oc;
        written := !written + String.length line + 1)
      event_state
  in
  let telemetry =
    Dic.Telemetry.create ?slow_ms ?event_sink
      ~collect_traces:(trace_out <> None) ()
  in
  let server =
    Dic.Serve.create ?cache_dir:cache ~workers ~max_queue ~telemetry rules
  in
  (* SIGTERM = graceful drain: the handler only flips a flag (OCaml 5
     handlers may run on any domain); the transport loops poll it and
     run the real shutdown — every queued request still gets a reply
     and the warm state is flushed to the cache. *)
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Dic.Serve.request_stop server));
  (match socket with
  | None -> Dic.Serve.serve_stdio server
  | Some path ->
    Printf.eprintf "[dicheck] serving on %s with %d worker(s)\n%!" path
      (Dic.Serve.worker_count server);
    Dic.Serve.serve_socket server ~path);
  (* Workers are joined; the collected per-request buffers merge in
     request order into one service-lifetime timeline. *)
  (match trace_out with
  | None -> ()
  | Some path ->
    write_output path (Dic.Trace.to_chrome_json (Dic.Telemetry.merged_trace telemetry)));
  Option.iter (fun (_, oc, _) -> Out_channel.close !oc) event_state;
  0

(* ------------------------------------------------------------------ *)
(* top                                                                 *)

(* One stats round trip on a fresh connection, so `top` keeps working
   across daemon restarts and never holds a reader hostage. *)
let fetch_stats ?(req = "{\"admin\":\"stats\",\"id\":\"top\"}\n") path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let len = String.length req in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring sock req !off (len - !off)
      done;
      input_line (Unix.in_channel_of_descr sock))

let top_render path reply =
  let stats = Option.value ~default:Dic.Json.Null (Dic.Json.member "stats" reply) in
  let m name = Option.value ~default:Dic.Json.Null (Dic.Json.member name stats) in
  let numf j name = Option.value ~default:0. (Option.bind (Dic.Json.member name j) Dic.Json.num) in
  let numi j name = int_of_float (numf j name) in
  let requests = m "requests" and rps = m "rps" in
  let queue = m "queue" and cache = m "cache" in
  Printf.printf "dicheck top — %s   uptime %.1fs   workers %d\n" path
    (numf stats "uptime_s") (numi stats "workers");
  Printf.printf
    "requests   accepted %-6d served %-6d inflight %-4d queued %d/%d\n"
    (numi requests "accepted") (numi requests "served") (numi requests "inflight")
    (numi queue "depth") (numi queue "max");
  Printf.printf "           cancelled %-5d overloaded %-4d rejected %d\n"
    (numi requests "cancelled") (numi requests "overloaded")
    (numi requests "rejected");
  Printf.printf "rps        lifetime %-8.2f window %.2f\n" (numf rps "lifetime")
    (numf rps "window");
  List.iter
    (fun (label, name) ->
      let w = m name in
      Printf.printf
        "%s p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   mean %8.2f ms  (last %d)\n"
        label (numf w "p50") (numf w "p95") (numf w "p99") (numf w "mean")
        (numi w "len"))
    [ ("latency   ", "latency_ms"); ("wait      ", "wait_ms");
      ("service   ", "service_ms") ];
  Printf.printf "cache      hit %5.1f%%  (symbols %d/%d)\n"
    (100. *. numf cache "hit_ratio")
    (numi cache "symbols_reused") (numi cache "symbols_total");
  (match Option.bind (Dic.Json.member "workers_busy" stats) Dic.Json.arr with
  | Some busy ->
    print_string "busy      ";
    List.iteri
      (fun w j ->
        Printf.printf " w%d %3.0f%%" w (100. *. Option.value ~default:0. (Dic.Json.num j)))
      busy;
    print_newline ()
  | None -> ());
  flush stdout

let top_main path interval once raw metrics_format event_log =
  match event_log with
  | Some log_path -> (
    (* Offline post-mortem: no socket, no daemon — replay the event-log
       file through the lifecycle invariants and render the snapshot the
       daemon would have answered at its last entry. *)
    match Dic.Telemetry.replay (read_file log_path) with
    | Error msg ->
      Printf.eprintf "dicheck top: %s: %s\n" log_path msg;
      2
    | Ok snap ->
      (match metrics_format with
      | `Prom -> print_string (Dic.Telemetry.prometheus snap)
      | `Text ->
        if raw then print_endline (Dic.Json.to_string snap)
        else top_render log_path (Dic.Json.Obj [ ("stats", snap) ]));
      flush stdout;
      0)
  | None ->
  match path with
  | None ->
    Printf.eprintf "dicheck top: SOCKET is required unless --event-log FILE is given\n";
    2
  | Some path ->
  let prom = metrics_format = `Prom in
  let req =
    if prom then
      "{\"admin\":\"stats\",\"format\":\"prometheus\",\"id\":\"top\"}\n"
    else "{\"admin\":\"stats\",\"id\":\"top\"}\n"
  in
  let tick () =
    match fetch_stats ~req path with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "dicheck top: %s: %s\n" path (Unix.error_message err);
      Error ()
    | exception End_of_file ->
      Printf.eprintf "dicheck top: %s: connection closed before reply\n" path;
      Error ()
    | line -> (
      match Dic.Json.parse line with
      | Error msg ->
        Printf.eprintf "dicheck top: bad stats reply: %s\n" msg;
        Error ()
      | Ok reply ->
        if prom then (
          match Option.bind (Dic.Json.member "prometheus" reply) Dic.Json.str with
          | Some text -> print_string text; flush stdout
          | None ->
            Printf.eprintf "dicheck top: daemon did not return prometheus text\n")
        else if raw then (
          match Dic.Json.member "stats" reply with
          | Some stats -> print_endline (Dic.Json.to_string stats)
          | None -> print_endline line)
        else begin
          if not once then print_string "\027[2J\027[H";
          top_render path reply
        end;
        Ok ())
  in
  if once then match tick () with Ok () -> 0 | Error () -> 2
  else begin
    (* Live view: a transient connection failure (daemon restarting)
       shows as a message, not an exit. *)
    let rec loop () =
      ignore (tick ());
      Unix.sleepf interval;
      loop ()
    in
    loop ()
  end

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let metric_conv =
  Arg.enum [ ("orthogonal", Geom.Measure.Orthogonal); ("euclidean", Geom.Measure.Euclidean) ]

let lambda_arg = Arg.(value & opt int 100 & info [ "lambda" ] ~doc:"Lambda in layout units.")

let rules_arg =
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE" ~doc:"Load the rule set from a rule file instead of the built-in NMOS rules.")

(* check accepts the flag repeatedly: each use adds a rule deck, and
   several decks share one elaboration of the design. *)
let rules_many_arg =
  Arg.(value & opt_all string []
       & info [ "rules" ] ~docv:"FILE"
           ~doc:"Load a rule deck from FILE instead of the built-in NMOS rules.  \
                 Repeatable: with several decks the design is elaborated once \
                 and checked against every deck, the report merges all decks' \
                 violations with deck-membership annotations, and the summary \
                 states which decks the design complies with.  Exit status is \
                 the worst deck's.")

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persist per-definition results and the interaction memo under \
                 DIR (created if missing), keyed by content: a recheck reuses \
                 everything whose definition, rules, and config did not change.  \
                 Cache state never changes verdicts, only cost; reuse counts go \
                 to stderr and to $(b,--stats-json).")

let exits =
  [ Cmd.Exit.info 0 ~doc:"the design checked clean (with $(b,--werror): no warnings either).";
    Cmd.Exit.info 1 ~doc:"the checker found errors (with $(b,--werror): or warnings).";
    Cmd.Exit.info 2 ~doc:"usage, parse, or input failure." ]

let check_term =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"CIF file (- for stdin)")
  in
  let flat = Arg.(value & flag & info [ "flat" ] ~doc:"Run the classical flat baseline instead.") in
  let metric =
    Arg.(value & opt metric_conv Geom.Measure.Orthogonal & info [ "metric" ] ~doc:"Spacing metric for the flat baseline.")
  in
  let polydiff =
    Arg.(value & flag & info [ "flag-crossings" ] ~doc:"Flat baseline: flag every poly-diffusion crossing.")
  in
  let figure_based =
    Arg.(value & flag & info [ "figure-based" ] ~doc:"Flat baseline: figure-based width checks instead of shrink-expand-compare.")
  in
  let netlist = Arg.(value & flag & info [ "netlist" ] ~doc:"Print the extracted net list.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print interaction-matrix coverage.") in
  let structure =
    Arg.(value & flag & info [ "structure" ] ~doc:"Print design-structure statistics.")
  in
  let same_net =
    Arg.(value & flag & info [ "check-same-net" ] ~doc:"Check spacing even between same-net elements (net-blind ablation).")
  in
  let expect =
    Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"FILE" ~doc:"Verify the extracted net list against this expected net list.")
  in
  let markers =
    Arg.(value & opt (some string) None & info [ "markers" ] ~docv:"FILE" ~doc:"Write violation markers as CIF (layer XE) to FILE.")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domains for the interaction stage: 1 = serial, N > 1 fans the \
                   instance-pair worklist over N domains, 0 (default) asks the \
                   runtime for the recommended count.  The report is identical \
                   for every N.")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Write run metrics (per-stage wall-clock, work counters \
                   including cache reuse, per-pair cost histogram, \
                   per-definition costs, errors by class) as canonical JSON to \
                   FILE (- for stdout).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON timeline of the run to FILE \
                   (- for stdout): one span per pipeline stage, per symbol \
                   definition checked, and per parallel interaction shard.  \
                   Load it in Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let sarif_out =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE"
             ~doc:"Write the report as SARIF 2.1.0 to FILE (- for stdout), with \
                   the CIF source line/column and the full instance path on \
                   each violation.")
  in
  let top_cost =
    Arg.(value & opt int 0
         & info [ "top-cost" ] ~docv:"N"
             ~doc:"Print the N most expensive symbol definitions (wall-clock \
                   across all checking stages).")
  in
  let progress =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Print each pipeline stage to stderr as it starts.")
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ]
             ~doc:"Exit 1 when the report contains warnings, not only errors.")
  in
  let lint =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Also run the static lint passes (rule deck + design hierarchy) \
                   and prepend their $(b,lint.*) diagnostics to the report.")
  in
  let lint_werror =
    Arg.(value & flag
         & info [ "lint-werror" ]
             ~doc:"Like $(b,--lint), but exit 1 when any lint diagnostic fires, \
                   warnings included.")
  in
  Term.(
    const check_main $ file $ flat $ metric $ polydiff $ figure_based $ lambda_arg
    $ rules_many_arg $ netlist $ stats $ structure $ same_net $ expect $ markers $ jobs
    $ cache_arg $ stats_json $ trace_out $ sarif_out $ top_cost $ progress $ werror
    $ lint $ lint_werror)

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~exits
       ~doc:"Check one CIF file and print the report (the default subcommand).")
    check_term

let lint_cmd =
  let file =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"CIF file to lint (- for stdin); with no FILE \
                                      only the rule deck is linted.")
  in
  let explain =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"CODE"
             ~doc:"Print the one-line explanation of a stable lint code (R0xx for \
                   rule-deck lints, D0xx for design lints) and exit.")
  in
  let sarif_out =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE"
             ~doc:"Write the lint diagnostics as SARIF 2.1.0 to FILE (- for stdout), \
                   one SARIF rule per lint code.")
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ]
             ~doc:"Exit 1 when any diagnostic fires, warnings included.")
  in
  Cmd.v
    (Cmd.info "lint" ~exits
       ~doc:"Static immunity analysis, before any geometry runs: lint the rule deck \
             ($(b,--rules), or the built-in NMOS rules) and, when FILE is given, the \
             CIF symbol hierarchy, including the constraint-graph analysis \
             (unsatisfiable combinations, shadowed entries, non-monotone \
             overrides).  Repeat $(b,--rules) to compare decks pairwise: \
             subsumption verdicts print as deck-relation lines.  Diagnostics \
             carry stable codes (R0xx / D0xx, see $(b,--explain)), are sorted \
             by (file, location, code), honor $(b,# lint: allow CODE) deck \
             comments and CIF $(b,4L CODE;) waivers, and exit 1 on any \
             error-severity finding.")
    Term.(const lint_main $ file $ rules_many_arg $ lambda_arg $ explain $ sarif_out $ werror)

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix domain socket at PATH (unlinked and rebound \
                   at startup) instead of serving the process's stdin/stdout.  \
                   Clients connect and speak the same JSON-lines protocol; any \
                   number may be connected at once.")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ] ~docv:"N"
             ~doc:"Size of the worker-domain pool answering requests (0, the \
                   default, asks the runtime for the recommended count).  Each \
                   worker keeps its own warm engines over the shared \
                   $(b,--cache) directory; reports are byte-identical at every \
                   worker count.")
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Bound on the pending-request queue.  Submissions beyond it \
                   are refused immediately with an \"overloaded\" reply \
                   instead of queueing without bound.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Collect a per-request span tree for every request served \
                   (the enqueue-to-dequeue wait plus the engine's stage spans, \
                   one lane per worker) and write the merged Chrome trace-event \
                   timeline to FILE (- for stdout) at shutdown.  Requests \
                   merge in request order, so the file is deterministic for a \
                   given request history.")
  in
  let event_log =
    Arg.(value & opt (some string) None
         & info [ "event-log" ] ~docv:"FILE"
             ~doc:"Append one JSON object per service event to FILE as it \
                   happens: request lifecycle transitions (accepted, started, \
                   finished, cancelled, overloaded, rejected), slow-request \
                   entries (see $(b,--slow-ms)), and daemon lifecycle (start, \
                   shutdown_begin, shutdown).  Field names are stable; the \
                   schema is in docs/PROTOCOL.md.")
  in
  let event_log_max_bytes =
    Arg.(value & opt (some int) None
         & info [ "event-log-max-bytes" ] ~docv:"BYTES"
             ~doc:"With $(b,--event-log): rotate the log once appending a line \
                   would push it past BYTES.  The current file moves to \
                   $(i,FILE).1 (replacing any previous rotation) and logging \
                   continues in a fresh $(i,FILE) — a long-lived daemon keeps \
                   at most one generation of history, never more than about \
                   twice BYTES on disk.  Lines are never split across the \
                   rotation.  Without this option the log grows without \
                   bound.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"With $(b,--event-log): also write a \"slow\" entry for \
                   every request whose total latency (wait + service) reaches \
                   MS milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Answer JSON-lines check requests concurrently from a pool of \
             worker domains over warm engines.  One request object per input \
             line, one reply line per request; re-submitting an id supersedes \
             the previous request with that id, and a shutdown request (or \
             SIGTERM) drains the queue and flushes the cache before exiting.  \
             Live service stats answer the {\"admin\":\"stats\"} request (see \
             $(b,dicheck top)); $(b,--event-log) streams the request \
             lifecycle as JSON lines.  The full wire reference is \
             docs/PROTOCOL.md.")
    Term.(const serve_main $ lambda_arg $ rules_arg $ cache_arg $ socket
          $ workers $ max_queue $ trace_out $ event_log $ event_log_max_bytes
          $ slow_ms)

let top_cmd =
  let socket =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SOCKET"
             ~doc:"Unix domain socket of a running $(b,dicheck serve --socket) \
                   daemon.  Required unless $(b,--event-log) replays a log \
                   file instead.")
  in
  let event_log =
    Arg.(value & opt (some string) None
         & info [ "event-log" ] ~docv:"FILE"
             ~doc:"Offline post-mortem: instead of querying a live daemon, \
                   replay a $(b,dicheck serve --event-log) file through the \
                   request-lifecycle invariants (every accepted request ends \
                   in exactly one terminal entry, only after acceptance; \
                   shutdown figures match the replayed counts) and render the \
                   final stats snapshot.  Combines with $(b,--raw) and \
                   $(b,--metrics-format prom); exits 2 naming the offending \
                   line when the log violates an invariant.")
  in
  let interval =
    Arg.(value & opt float 2.
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh period of the live view.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print one snapshot and exit instead of refreshing (no \
                   screen clearing; exit 2 if the daemon is unreachable).")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Print the canonical stats JSON instead of the rendered \
                   view (one object per refresh; combine with $(b,--once) \
                   for scripting).")
  in
  let metrics_format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("prom", `Prom) ]) `Text
         & info [ "metrics-format" ] ~docv:"FORMAT"
             ~doc:"Output format of the stats snapshot: $(b,text) (default) \
                   renders the live view, $(b,prom) prints the Prometheus \
                   text exposition of the same snapshot (combine with \
                   $(b,--once) to feed a scrape pipeline or node-exporter \
                   textfile collector).")
  in
  Cmd.v
    (Cmd.info "top" ~exits
       ~doc:"Live service view of a running serve daemon: request counters, \
             queue depth, rolling latency percentiles, cache hit ratio, and \
             per-worker busy fractions, refreshed every $(b,--interval) \
             seconds over the daemon's {\"admin\":\"stats\"} request.  \
             $(b,--metrics-format prom) prints the same snapshot as \
             Prometheus text exposition instead, and $(b,--event-log FILE) \
             replays a finished daemon's event log offline.")
    Term.(const top_main $ socket $ interval $ once $ raw $ metrics_format
          $ event_log)

let info =
  Cmd.info "dicheck" ~version:Dic.Version.version ~exits
    ~doc:"Design integrity and immunity checking (McGrath & Whitney, DAC 1980)"

let group =
  Cmd.group ~default:check_term info [ check_cmd; lint_cmd; serve_cmd; top_cmd ]

(* The historical spelling `dicheck FILE` must keep working, but
   cmdliner's command groups reject a first positional that is not a
   subcommand name.  Route through the group only when the invocation
   clearly addresses it (a known subcommand, help, version, or nothing
   at all); everything else is a legacy one-shot check. *)
let legacy = Cmd.v info check_term

let () =
  let use_group =
    Array.length Sys.argv <= 1
    || match Sys.argv.(1) with
       | "check" | "lint" | "serve" | "top" | "--help" | "-h" | "--version" -> true
       | _ -> false
  in
  (* Fold cmdliner's own failure codes (cli errors, internal errors)
     into the documented usage-failure code. *)
  let code = Cmd.eval' (if use_group then group else legacy) in
  exit (if code = Cmd.Exit.cli_error || code = Cmd.Exit.internal_error then 2 else code)
