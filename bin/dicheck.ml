(* dicheck: the Design Integrity and Immunity Checker, as a command.

   Reads extended CIF, runs either the hierarchical checker or the
   classical flat baseline, and prints the report. *)

open Cmdliner

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let run_dic ~show_netlist ~show_stats ~show_structure ~check_same_net ~expect ~markers
    ~jobs ~stats_json rules src =
  match Cif.Parse.file src with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Cif.Parse.string_of_error e);
    2
  | Ok file -> (
    let expected_netlist =
      match expect with
      | None -> None
      | Some path -> (
        match Dic.Netcompare.parse (read_file path) with
        | Ok e -> Some e
        | Error msg ->
          Printf.eprintf "expected net list: %s\n" msg;
          exit 2)
    in
    let config =
      { Dic.Checker.default_config with
        Dic.Checker.expected_netlist;
        Dic.Checker.interactions =
          { Dic.Interactions.default_config with
            Dic.Interactions.check_same_net;
            Dic.Interactions.jobs } }
    in
    match Dic.Checker.run ~config rules file with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok result ->
      Format.printf "%a@." Dic.Report.pp result.Dic.Checker.report;
      Format.printf "%a@." Dic.Checker.pp_summary result;
      if show_netlist then
        Format.printf "@.--- net list ---@.%a@." Netlist.Net.pp result.Dic.Checker.netlist;
      if show_stats then
        Format.printf "@.--- interaction coverage ---@.%a@." Dic.Interactions.pp_stats
          result.Dic.Checker.interaction_stats;
      if show_structure then
        Format.printf "@.--- design structure ---@.%a@." Dic.Structure.pp
          (Dic.Structure.compute result.Dic.Checker.nets);
      (match markers with
      | None -> ()
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Dic.Markers.to_cif result.Dic.Checker.report)));
      (match stats_json with
      | None -> ()
      | Some path ->
        let json = Dic.Metrics.to_json result.Dic.Checker.metrics in
        if path = "-" then print_endline json
        else Out_channel.with_open_text path (fun oc ->
                 Out_channel.output_string oc json;
                 Out_channel.output_char oc '\n'));
      if Dic.Report.count ~severity:Dic.Report.Error result.Dic.Checker.report > 0 then 1
      else 0)

let run_flat ~metric ~poly_diff ~width_algorithm rules src =
  match Cif.Parse.file src with
  | Error e ->
    Printf.eprintf "parse error: %s\n" (Cif.Parse.string_of_error e);
    2
  | Ok file ->
    let mode = { Flatdrc.Classic.metric; poly_diff; width_algorithm } in
    let errors = Flatdrc.Classic.check mode rules file in
    List.iter (fun e -> Format.printf "%a@." Flatdrc.Classic.pp_error e) errors;
    Printf.printf "%d error(s)\n" (List.length errors);
    if errors = [] then 0 else 1

let main file flat metric polydiff figure_based lambda rules_file show_netlist
    show_stats show_structure check_same_net expect markers jobs stats_json =
  let rules =
    match rules_file with
    | None -> Tech.Rules.nmos ~lambda ()
    | Some path -> (
      match Tech.Rules.of_string (read_file path) with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "rule file: %s\n" msg;
        exit 2)
  in
  let src = read_file file in
  if flat then begin
    if stats_json <> None then
      prerr_endline "dicheck: --stats-json applies to the hierarchical checker; ignored with --flat";
    run_flat ~metric
      ~poly_diff:(if polydiff then `Flag_all else `Ignore)
      ~width_algorithm:(if figure_based then `Figure_based else `Shrink_expand_compare)
      rules src
  end
  else
    run_dic ~show_netlist ~show_stats ~show_structure ~check_same_net ~expect ~markers
      ~jobs ~stats_json rules src

let metric_conv =
  Arg.enum [ ("orthogonal", Geom.Measure.Orthogonal); ("euclidean", Geom.Measure.Euclidean) ]

let cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"CIF file (- for stdin)")
  in
  let flat = Arg.(value & flag & info [ "flat" ] ~doc:"Run the classical flat baseline instead.") in
  let metric =
    Arg.(value & opt metric_conv Geom.Measure.Orthogonal & info [ "metric" ] ~doc:"Spacing metric for the flat baseline.")
  in
  let polydiff =
    Arg.(value & flag & info [ "flag-crossings" ] ~doc:"Flat baseline: flag every poly-diffusion crossing.")
  in
  let figure_based =
    Arg.(value & flag & info [ "figure-based" ] ~doc:"Flat baseline: figure-based width checks instead of shrink-expand-compare.")
  in
  let lambda = Arg.(value & opt int 100 & info [ "lambda" ] ~doc:"Lambda in layout units.") in
  let netlist = Arg.(value & flag & info [ "netlist" ] ~doc:"Print the extracted net list.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print interaction-matrix coverage.") in
  let structure =
    Arg.(value & flag & info [ "structure" ] ~doc:"Print design-structure statistics.")
  in
  let same_net =
    Arg.(value & flag & info [ "check-same-net" ] ~doc:"Check spacing even between same-net elements (net-blind ablation).")
  in
  let expect =
    Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"FILE" ~doc:"Verify the extracted net list against this expected net list.")
  in
  let rules_file =
    Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE" ~doc:"Load the rule set from a rule file instead of the built-in NMOS rules.")
  in
  let markers =
    Arg.(value & opt (some string) None & info [ "markers" ] ~docv:"FILE" ~doc:"Write violation markers as CIF (layer XE) to FILE.")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domains for the interaction stage: 1 = serial, N > 1 fans the \
                   instance-pair worklist over N domains, 0 (default) asks the \
                   runtime for the recommended count.  The report is identical \
                   for every N.")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Write run metrics (per-stage wall-clock, work counters, \
                   per-pair cost histogram, errors by class) as canonical JSON \
                   to FILE (- for stdout).")
  in
  let term =
    Term.(
      const main $ file $ flat $ metric $ polydiff $ figure_based $ lambda $ rules_file
      $ netlist $ stats $ structure $ same_net $ expect $ markers $ jobs $ stats_json)
  in
  Cmd.v
    (Cmd.info "dicheck" ~doc:"Design integrity and immunity checking (McGrath & Whitney, DAC 1980)")
    term

let () = exit (Cmd.eval' cmd)
