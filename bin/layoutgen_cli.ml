(* dic-layoutgen: emit synthetic extended-CIF workloads. *)

open Cmdliner

let emit out file =
  let text = Cif.Print.to_string file in
  match out with
  | None -> print_string text
  | Some path -> Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)

let main workload nx ny lambda salt out =
  let base =
    match workload with
    | `Chain -> Layoutgen.Cells.chain ~lambda nx
    | `Grid -> Layoutgen.Cells.grid ~lambda ~nx ~ny
    | `Grid_blocks -> Layoutgen.Cells.grid_blocks ~lambda ~nx ~ny
    | `Shift -> Layoutgen.Shift.register ~lambda nx
    | `Pla -> Layoutgen.Pla.tier ~lambda ~rows:ny ~cols:nx
    | `Pathology name -> (
      match
        List.find_opt
          (fun (k : Layoutgen.Pathology.kit) -> k.Layoutgen.Pathology.kit_name = name)
          (Layoutgen.Pathology.all ~lambda)
      with
      | Some kit -> kit.Layoutgen.Pathology.file
      | None ->
        Printf.eprintf "unknown pathology kit %s (try fig2a fig2b fig5a fig5b fig6 fig7 fig8 fig15)\n" name;
        exit 2)
  in
  let file =
    if salt then begin
      let margin = (nx * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
      let salted, truths =
        Layoutgen.Inject.apply base
          (Layoutgen.Inject.standard_batch ~lambda ~at:(margin, 0) ~step:(10 * lambda)
          @ [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0) ])
      in
      Printf.eprintf "injected %d defect(s)\n" (List.length truths);
      salted
    end
    else base
  in
  emit out file;
  0

let workload_conv =
  let parse s =
    match s with
    | "chain" -> Ok `Chain
    | "grid" -> Ok `Grid
    | "grid-blocks" -> Ok `Grid_blocks
    | "shift" -> Ok `Shift
    | "pla" -> Ok `Pla
    | s when String.length s > 4 && String.sub s 0 4 = "fig:" ->
      Ok (`Pathology (String.sub s 4 (String.length s - 4)))
    | _ -> Error (`Msg "expected chain | grid | grid-blocks | shift | pla | fig:<kit>")
  in
  let print ppf = function
    | `Chain -> Format.pp_print_string ppf "chain"
    | `Grid -> Format.pp_print_string ppf "grid"
    | `Grid_blocks -> Format.pp_print_string ppf "grid-blocks"
    | `Shift -> Format.pp_print_string ppf "shift"
    | `Pla -> Format.pp_print_string ppf "pla"
    | `Pathology n -> Format.fprintf ppf "fig:%s" n
  in
  Arg.conv (parse, print)

let cmd =
  let workload =
    Arg.(value & opt workload_conv `Chain & info [ "w"; "workload" ] ~doc:"chain | grid | grid-blocks | shift | pla | fig:<kit>")
  in
  let nx = Arg.(value & opt int 4 & info [ "nx" ] ~doc:"Cells per row (shift: bits; pla: columns).") in
  let ny = Arg.(value & opt int 4 & info [ "ny" ] ~doc:"Rows.") in
  let lambda = Arg.(value & opt int 100 & info [ "lambda" ] ~doc:"Lambda in layout units.") in
  let salt = Arg.(value & flag & info [ "salt" ] ~doc:"Inject the standard defect batch.") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output file.") in
  Cmd.v
    (Cmd.info "dic-layoutgen" ~version:Dic.Version.version
       ~doc:"Synthetic extended-CIF workload generator")
    Term.(const main $ workload $ nx $ ny $ lambda $ salt $ out)

let () = exit (Cmd.eval' cmd)
