(** Abstract syntax of extended CIF.

    This is the Caltech Intermediate Form (Sproull, Lyon & Trimberger
    1979) with the paper's extension: "a net identifier attached to each
    primitive element and a device 'type' identifier to each primitive
    symbol."  The extension is carried in standard CIF user commands:

    - [9 name;] — symbol name (standard usage),
    - [4N net;] — net identifier for the most recent element,
    - [4D tag;] — device type of the enclosing symbol definition,
    - [4L CODE;] — waive one lint code ({!Dic.Lint} R/D codes) for
      this design; collected file-wide into {!file.waivers}.

    Layers and device tags are plain strings at this level; binding to
    {!Tech.Layer} and {!Tech.Device} happens during elaboration in the
    checker. *)

type element =
  | Box of {
      layer : string;
      rect : Geom.Rect.t;
      net : string option;
      loc : Loc.t option;  (** position of the [B] command letter *)
    }
  | Wire of {
      layer : string;
      width : int;
      path : Geom.Pt.t list;
      net : string option;
      loc : Loc.t option;
    }
  | Polygon of {
      layer : string;
      pts : Geom.Pt.t list;
      net : string option;
      loc : Loc.t option;
    }

type call = {
  callee : int;
  transform : Geom.Transform.t;
  call_loc : Loc.t option;  (** position of the [C] command letter *)
}

type symbol = {
  id : int;
  name : string option;
  device : string option;
  elements : element list;  (** in source order *)
  calls : call list;  (** in source order *)
  sym_loc : Loc.t option;  (** position of the opening [DS] command *)
}

type file = {
  symbols : symbol list;  (** in definition order *)
  top_elements : element list;
  top_calls : call list;
  waivers : string list;
      (** lint codes waived by [4L CODE;] user commands, sorted and
          deduplicated; provenance only — waivers filter reporting,
          never checking semantics *)
}

val element_layer : element -> string
val element_net : element -> string option

(** Source location of the element, if it came from parsed text. *)
val element_loc : element -> Loc.t option

(** [with_net e net] replaces the element's net identifier. *)
val with_net : element -> string option -> element

(** Bounding box of a single element (wires swept square-capped). *)
val element_bbox : element -> Geom.Rect.t

(** [find_symbol file id] *)
val find_symbol : file -> int -> symbol option

(** Symbols with no callers (design roots), in definition order. *)
val roots : file -> symbol list

(** [check_acyclic file] returns [Error cycle_member_id] if the call
    graph has a cycle or a call targets an undefined symbol. *)
val check_acyclic : file -> (unit, string) result
