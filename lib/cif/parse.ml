type error = { offset : int; line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
let string_of_error e = Format.asprintf "%a" pp_error e

exception Fail of int * string

(* The cursor tracks line/beginning-of-line incrementally so stamping
   every element with a location costs one comparison per character
   instead of an O(n) rescan. *)
type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the current line's first character *)
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c =
  if c.pos < String.length c.src && c.src.[c.pos] = '\n' then begin
    c.line <- c.line + 1;
    c.bol <- c.pos + 1
  end;
  c.pos <- c.pos + 1

(* Location of the character the cursor stands on (1-based column). *)
let here c = Loc.make ~line:c.line ~col:(c.pos - c.bol + 1)
let fail c msg = raise (Fail (c.pos, msg))

let is_digit ch = ch >= '0' && ch <= '9'
let is_alpha ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')

(* Blanks in CIF are any characters that are not digits, letters, '-',
   '(', ')' or ';'.  Comments nest. *)
let rec skip_blanks c =
  match peek c with
  | Some '(' ->
    let rec comment depth =
      match peek c with
      | None -> fail c "unterminated comment"
      | Some '(' -> advance c; comment (depth + 1)
      | Some ')' -> advance c; if depth > 1 then comment (depth - 1)
      | Some _ -> advance c; comment depth
    in
    advance c;
    comment 1;
    skip_blanks c
  | Some ch when (not (is_digit ch)) && (not (is_alpha ch)) && ch <> '-' && ch <> ';' ->
    advance c;
    skip_blanks c
  | _ -> ()

let semi c =
  skip_blanks c;
  match peek c with
  | Some ';' -> advance c
  | Some ch -> fail c (Printf.sprintf "expected ';', found %C" ch)
  | None -> fail c "expected ';', found end of input"

let integer c =
  skip_blanks c;
  let neg =
    match peek c with
    | Some '-' -> advance c; true
    | _ -> false
  in
  let start = c.pos in
  let rec digits acc =
    match peek c with
    | Some ch when is_digit ch ->
      advance c;
      digits ((acc * 10) + Char.code ch - Char.code '0')
    | _ -> acc
  in
  let v = digits 0 in
  if c.pos = start then fail c "expected an integer";
  if neg then -v else v

(* An identifier for layer names, net names, device tags: letters,
   digits, and a few punctuation characters CIF texts use in names. *)
let ident c =
  skip_blanks c;
  let buf = Buffer.create 8 in
  let rec go () =
    match peek c with
    | Some ch when is_alpha ch || is_digit ch || ch = '_' || ch = '!' || ch = '.'
                   || ch = '[' || ch = ']' || ch = '-' ->
      advance c;
      Buffer.add_char buf ch;
      go ()
    | _ -> ()
  in
  go ();
  if Buffer.length buf = 0 then fail c "expected a name";
  Buffer.contents buf

let point c =
  let x = integer c in
  let y = integer c in
  Geom.Pt.make x y

let rec points c acc =
  skip_blanks c;
  match peek c with
  | Some ch when is_digit ch || ch = '-' ->
    let p = point c in
    points c (p :: acc)
  | _ -> List.rev acc

(* Scaling by the DS factor a/b, rounding to nearest. *)
let scale_int (a, b) v =
  let n = v * a in
  if b = 1 then n
  else if n >= 0 then ((2 * n) + b) / (2 * b)
  else -(((2 * -n) + b) / (2 * b))

let scale_pt sc (p : Geom.Pt.t) =
  Geom.Pt.make (scale_int sc p.Geom.Pt.x) (scale_int sc p.Geom.Pt.y)

type pending_symbol = {
  id : int;
  scale : int * int;
  sym_loc : Loc.t option;
  mutable name : string option;
  mutable device : string option;
  mutable elements : Ast.element list;  (** reversed *)
  mutable calls : Ast.call list;  (** reversed *)
}

type state = {
  mutable layer : string;
  mutable symbols : Ast.symbol list;  (** reversed *)
  mutable current : pending_symbol option;
  mutable top_elements : Ast.element list;  (** reversed *)
  mutable top_calls : Ast.call list;  (** reversed *)
  mutable waivers : string list;  (** reversed *)
  mutable ended : bool;
}

let add_element st c e =
  match st.current with
  | Some sym -> sym.elements <- e :: sym.elements
  | None ->
    ignore c;
    st.top_elements <- e :: st.top_elements

let add_call st call =
  match st.current with
  | Some sym -> sym.calls <- call :: sym.calls
  | None -> st.top_calls <- call :: st.top_calls

let current_scale st = match st.current with Some s -> s.scale | None -> (1, 1)

let require_layer st c =
  if st.layer = "" then fail c "element before any L (layer) command";
  st.layer

let parse_box st ~loc c =
  let layer = require_layer st c in
  let sc = current_scale st in
  let length = scale_int sc (integer c) in
  let width = scale_int sc (integer c) in
  let cx = scale_int sc (integer c) in
  let cy = scale_int sc (integer c) in
  skip_blanks c;
  let w, h =
    match peek c with
    | Some ch when is_digit ch || ch = '-' ->
      let dx = integer c in
      let dy = integer c in
      if dy = 0 && dx <> 0 then (length, width)
      else if dx = 0 && dy <> 0 then (width, length)
      else fail c "non-orthogonal box direction"
    | _ -> (length, width)
  in
  if w <= 0 || h <= 0 then fail c "box with non-positive dimensions";
  semi c;
  add_element st c
    (Ast.Box { layer; rect = Geom.Rect.of_center_wh ~cx ~cy ~w ~h; net = None; loc = Some loc })

let parse_wire st ~loc c =
  let layer = require_layer st c in
  let sc = current_scale st in
  let width = scale_int sc (integer c) in
  if width <= 0 then fail c "wire with non-positive width";
  let path = List.map (scale_pt sc) (points c []) in
  if path = [] then fail c "wire with empty path";
  semi c;
  add_element st c (Ast.Wire { layer; width; path; net = None; loc = Some loc })

let parse_polygon st ~loc c =
  let layer = require_layer st c in
  let sc = current_scale st in
  let pts = List.map (scale_pt sc) (points c []) in
  if List.length pts < 3 then fail c "polygon needs at least three points";
  semi c;
  add_element st c (Ast.Polygon { layer; pts; net = None; loc = Some loc })

let parse_layer st c =
  st.layer <- ident c;
  semi c

let parse_call st ~loc c =
  let callee = integer c in
  let rec transforms acc =
    skip_blanks c;
    match peek c with
    | Some ('T' | 't') ->
      advance c;
      let p = point c in
      transforms (Geom.Transform.translate p.Geom.Pt.x p.Geom.Pt.y :: acc)
    | Some ('M' | 'm') -> (
      advance c;
      skip_blanks c;
      match peek c with
      | Some ('X' | 'x') -> advance c; transforms (Geom.Transform.mirror_x :: acc)
      | Some ('Y' | 'y') -> advance c; transforms (Geom.Transform.mirror_y :: acc)
      | _ -> fail c "M must be followed by X or Y")
    | Some ('R' | 'r') -> (
      advance c;
      let dx = integer c in
      let dy = integer c in
      match (compare dx 0, compare dy 0) with
      | 1, 0 -> transforms (Geom.Transform.rotate `East :: acc)
      | 0, 1 -> transforms (Geom.Transform.rotate `North :: acc)
      | -1, 0 -> transforms (Geom.Transform.rotate `West :: acc)
      | 0, -1 -> transforms (Geom.Transform.rotate `South :: acc)
      | _ -> fail c "non-orthogonal rotation")
    | _ -> List.rev acc
  in
  let ts = transforms [] in
  semi c;
  add_call st { Ast.callee; transform = Geom.Transform.seq ts; call_loc = Some loc }

let close_symbol st c =
  match st.current with
  | None -> fail c "DF without matching DS"
  | Some p ->
    let symbol =
      { Ast.id = p.id;
        name = p.name;
        device = p.device;
        elements = List.rev p.elements;
        calls = List.rev p.calls;
        sym_loc = p.sym_loc }
    in
    if List.exists (fun (s : Ast.symbol) -> s.id = p.id) st.symbols then
      fail c (Printf.sprintf "symbol %d defined twice" p.id);
    st.symbols <- symbol :: st.symbols;
    st.current <- None

let parse_definition st ~loc c =
  skip_blanks c;
  match peek c with
  | Some ('S' | 's') ->
    advance c;
    if st.current <> None then fail c "nested DS";
    let id = integer c in
    skip_blanks c;
    let scale =
      match peek c with
      | Some ch when is_digit ch ->
        let a = integer c in
        let b = integer c in
        if a <= 0 || b <= 0 then fail c "DS scale factors must be positive";
        (a, b)
      | _ -> (1, 1)
    in
    semi c;
    st.current <-
      Some
        { id; scale; sym_loc = Some loc; name = None; device = None; elements = [];
          calls = [] }
  | Some ('F' | 'f') ->
    advance c;
    semi c;
    close_symbol st c
  | Some ('D' | 'd') -> fail c "DD (delete definition) is not supported"
  | _ -> fail c "expected DS, DF after D"

(* User extension commands.  [9 name] names the current symbol; [4N n]
   attaches net [n] to the most recent element; [4D t] declares the
   device type of the current symbol.  Unknown user commands are
   skipped to the terminating semicolon, as the CIF standard requires. *)
let skip_user_command c =
  let rec go () =
    match peek c with
    | Some ';' -> advance c
    | Some '(' -> skip_blanks c; go ()
    | Some _ -> advance c; go ()
    | None -> fail c "unterminated user command"
  in
  go ()

let parse_user st c digit =
  match digit with
  | '9' ->
    let name = ident c in
    semi c;
    (match st.current with
    | Some sym -> sym.name <- Some name
    | None -> fail c "9 (symbol name) outside a symbol definition")
  | '4' -> (
    skip_blanks c;
    match peek c with
    | Some ('N' | 'n') -> (
      advance c;
      let net = ident c in
      semi c;
      let attach_last = function
        | [] -> fail c "4N (net) with no preceding element"
        | e :: rest -> Ast.with_net e (Some net) :: rest
      in
      match st.current with
      | Some sym -> sym.elements <- attach_last sym.elements
      | None -> st.top_elements <- attach_last st.top_elements)
    | Some ('D' | 'd') -> (
      advance c;
      let tag = ident c in
      semi c;
      match st.current with
      | Some sym -> sym.device <- Some tag
      | None -> fail c "4D (device type) outside a symbol definition")
    | Some ('L' | 'l') ->
      (* [4L CODE;] — waive a lint code, file-wide.  Legal anywhere:
         waivers annotate the design, not a particular symbol. *)
      advance c;
      let code = ident c in
      semi c;
      st.waivers <- code :: st.waivers
    | _ -> skip_user_command c)
  | _ -> skip_user_command c

let rec commands st c =
  skip_blanks c;
  match peek c with
  | None -> fail c "missing E (end) command"
  | Some ';' -> advance c; commands st c
  | Some ('E' | 'e') ->
    advance c;
    if st.current <> None then fail c "E inside a symbol definition";
    st.ended <- true
  | Some ('B' | 'b') ->
    let loc = here c in
    advance c; parse_box st ~loc c; commands st c
  | Some ('W' | 'w') ->
    let loc = here c in
    advance c; parse_wire st ~loc c; commands st c
  | Some ('P' | 'p') ->
    let loc = here c in
    advance c; parse_polygon st ~loc c; commands st c
  | Some ('L' | 'l') -> advance c; parse_layer st c; commands st c
  | Some ('C' | 'c') ->
    let loc = here c in
    advance c; parse_call st ~loc c; commands st c
  | Some ('D' | 'd') ->
    let loc = here c in
    advance c; parse_definition st ~loc c; commands st c
  | Some ch when is_digit ch -> advance c; parse_user st c ch; commands st c
  | Some ch -> fail c (Printf.sprintf "unknown command %C" ch)

let file src =
  let c = { src; pos = 0; line = 1; bol = 0 } in
  let st =
    { layer = ""; symbols = []; current = None; top_elements = []; top_calls = [];
      waivers = []; ended = false }
  in
  match commands st c with
  | () ->
    Ok
      { Ast.symbols = List.rev st.symbols;
        top_elements = List.rev st.top_elements;
        top_calls = List.rev st.top_calls;
        waivers = List.sort_uniq compare st.waivers }
  | exception Fail (offset, message) ->
    (* The cursor's incremental line count is valid at the failure
       point: [fail] always raises at the current position. *)
    Error { offset; line = c.line; message }
