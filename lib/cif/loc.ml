type t = { line : int; col : int }

let make ~line ~col = { line; col }
let compare (a : t) (b : t) = compare (a.line, a.col) (b.line, b.col)
let pp ppf l = Format.fprintf ppf "%d:%d" l.line l.col
let to_string l = Format.asprintf "%a" pp l
