open Format

let pt ppf (p : Geom.Pt.t) = fprintf ppf "%d %d" p.Geom.Pt.x p.Geom.Pt.y

let net_suffix ppf = function
  | None -> ()
  | Some n -> fprintf ppf "@,4N %s;" n

let element ppf e =
  fprintf ppf "@[<v>";
  (match e with
  | Ast.Box { layer; rect; _ } ->
    let w = Geom.Rect.width rect and h = Geom.Rect.height rect in
    if w mod 2 = 0 && h mod 2 = 0 then
      let c = Geom.Rect.center rect in
      fprintf ppf "L %s; B %d %d %d %d;" layer w h c.Geom.Pt.x c.Geom.Pt.y
    else
      fprintf ppf "L %s; P %d %d %d %d %d %d %d %d;" layer (Geom.Rect.x0 rect)
        (Geom.Rect.y0 rect) (Geom.Rect.x1 rect) (Geom.Rect.y0 rect)
        (Geom.Rect.x1 rect) (Geom.Rect.y1 rect) (Geom.Rect.x0 rect)
        (Geom.Rect.y1 rect)
  | Ast.Wire { layer; width; path; _ } ->
    fprintf ppf "L %s; W %d" layer width;
    List.iter (fun p -> fprintf ppf " %a" pt p) path;
    fprintf ppf ";"
  | Ast.Polygon { layer; pts; _ } ->
    fprintf ppf "L %s; P" layer;
    List.iter (fun p -> fprintf ppf " %a" pt p) pts;
    fprintf ppf ";");
  net_suffix ppf (Ast.element_net e);
  fprintf ppf "@]"

let call ppf (c : Ast.call) =
  (* Decompose the transform by probing: emit as translation of the
     rotated/mirrored frame.  Probe images of origin and unit vectors. *)
  let t = c.Ast.transform in
  let o = Geom.Transform.apply_pt t Geom.Pt.zero in
  let ex = Geom.Pt.sub (Geom.Transform.apply_pt t (Geom.Pt.make 1 0)) o in
  let ey = Geom.Pt.sub (Geom.Transform.apply_pt t (Geom.Pt.make 0 1)) o in
  let mirrored = (ex.Geom.Pt.x * ey.Geom.Pt.y) - (ex.Geom.Pt.y * ey.Geom.Pt.x) < 0 in
  fprintf ppf "C %d" c.Ast.callee;
  (* If mirrored, emit M X first, then rotation of the mirrored x axis. *)
  let rx = if mirrored then Geom.Pt.make (-ex.Geom.Pt.x) (-ex.Geom.Pt.y) else ex in
  if mirrored then fprintf ppf " M X";
  (match (rx.Geom.Pt.x, rx.Geom.Pt.y) with
  | 1, 0 -> ()
  | 0, 1 -> fprintf ppf " R 0 1"
  | -1, 0 -> fprintf ppf " R -1 0"
  | 0, -1 -> fprintf ppf " R 0 -1"
  | _ -> assert false);
  fprintf ppf " T %d %d;" o.Geom.Pt.x o.Geom.Pt.y

let symbol ppf (s : Ast.symbol) =
  fprintf ppf "@[<v>DS %d 1 1;" s.id;
  (match s.name with None -> () | Some n -> fprintf ppf "@,9 %s;" n);
  (match s.device with None -> () | Some d -> fprintf ppf "@,4D %s;" d);
  List.iter (fun e -> fprintf ppf "@,%a" element e) s.elements;
  List.iter (fun c -> fprintf ppf "@,%a" call c) s.calls;
  fprintf ppf "@,DF;@]"

let file ppf (f : Ast.file) =
  fprintf ppf "@[<v>";
  List.iter (fun s -> fprintf ppf "%a@," symbol s) f.symbols;
  List.iter (fun e -> fprintf ppf "%a@," element e) f.top_elements;
  List.iter (fun c -> fprintf ppf "%a@," call c) f.top_calls;
  fprintf ppf "E@]@."

let to_string f = Format.asprintf "%a" file f
