type element =
  | Box of {
      layer : string;
      rect : Geom.Rect.t;
      net : string option;
      loc : Loc.t option;
    }
  | Wire of {
      layer : string;
      width : int;
      path : Geom.Pt.t list;
      net : string option;
      loc : Loc.t option;
    }
  | Polygon of {
      layer : string;
      pts : Geom.Pt.t list;
      net : string option;
      loc : Loc.t option;
    }

type call = { callee : int; transform : Geom.Transform.t; call_loc : Loc.t option }

type symbol = {
  id : int;
  name : string option;
  device : string option;
  elements : element list;
  calls : call list;
  sym_loc : Loc.t option;
}

type file = {
  symbols : symbol list;
  top_elements : element list;
  top_calls : call list;
  waivers : string list;
}

let element_layer = function
  | Box { layer; _ } | Wire { layer; _ } | Polygon { layer; _ } -> layer

let element_net = function
  | Box { net; _ } | Wire { net; _ } | Polygon { net; _ } -> net

let element_loc = function
  | Box { loc; _ } | Wire { loc; _ } | Polygon { loc; _ } -> loc

let with_net e net =
  match e with
  | Box b -> Box { b with net }
  | Wire w -> Wire { w with net }
  | Polygon p -> Polygon { p with net }

let element_bbox = function
  | Box { rect; _ } -> rect
  | Wire { width; path; _ } -> Geom.Wire.bbox (Geom.Wire.make ~width path)
  | Polygon { pts; _ } -> Geom.Poly.bbox (Geom.Poly.make pts)

let find_symbol file id = List.find_opt (fun s -> s.id = id) file.symbols

let roots file =
  let called = Hashtbl.create 16 in
  let note c = Hashtbl.replace called c.callee () in
  List.iter (fun s -> List.iter note s.calls) file.symbols;
  List.iter note file.top_calls;
  List.filter (fun s -> not (Hashtbl.mem called s.id)) file.symbols

let check_acyclic file =
  let state = Hashtbl.create 16 in
  (* 0 = visiting, 1 = done *)
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some 1 -> Ok ()
    | Some _ -> Error (Printf.sprintf "call cycle through symbol %d" id)
    | None -> (
      match find_symbol file id with
      | None -> Error (Printf.sprintf "call to undefined symbol %d" id)
      | Some s ->
        Hashtbl.replace state id 0;
        let rec all = function
          | [] ->
            Hashtbl.replace state id 1;
            Ok ()
          | c :: rest -> (
            match visit c.callee with Ok () -> all rest | Error _ as e -> e)
        in
        all s.calls)
  in
  let rec all = function
    | [] -> Ok ()
    | c :: rest -> (
      match visit c.callee with Ok () -> all rest | Error _ as e -> e)
  in
  match all file.top_calls with
  | Error _ as e -> e
  | Ok () ->
    (* Also validate symbols not reachable from the top. *)
    let rec check_syms = function
      | [] -> Ok ()
      | s :: rest -> (
        match visit s.id with Ok () -> check_syms rest | Error _ as e -> e)
    in
    check_syms file.symbols
