(** Source locations in a CIF text.

    The paper's pitch is that "the symbol origin of each piece of
    geometry is never lost"; a location closes the loop back to the
    text itself.  {!Parse} stamps every element, call, and symbol
    definition with the position of its command letter, and the
    checker carries it through {!Dic.Report} into the SARIF output.

    Lines and columns are 1-based, as editors and SARIF count them.
    ASTs built programmatically (the {!Layoutgen} generators) carry no
    locations. *)

type t = { line : int; col : int }

val make : line:int -> col:int -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** ["line:col"], e.g. ["12:3"]. *)
val to_string : t -> string
