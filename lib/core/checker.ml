type config = {
  interactions : Interactions.config;
  run_erc : bool;
  expected_netlist : Netcompare.expected option;
  relational : Process_model.Exposure.t option;
}

let default_config =
  { interactions = Interactions.default_config; run_erc = true; expected_netlist = None;
    relational = None }

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
  metrics : Metrics.t;
  model : Model.t;
  nets : Netgen.t;
}

let erc_violations netlist =
  List.map
    (fun v ->
      let rule =
        match v with
        | Netlist.Erc.Floating_net _ -> "erc.floating-net"
        | Netlist.Erc.Supply_short _ -> "erc.supply-short"
        | Netlist.Erc.Bus_on_supply _ -> "erc.bus-on-supply"
        | Netlist.Erc.Depletion_on_ground _ -> "erc.depletion-on-ground"
      in
      let severity =
        (* A floating net is suspicious, not provably fatal. *)
        match v with Netlist.Erc.Floating_net _ -> `W | _ -> `E
      in
      let msg = Format.asprintf "%a" Netlist.Erc.pp_violation v in
      match severity with
      | `E -> Report.error ~stage:Report.Electrical ~rule ~context:"netlist" msg
      | `W -> Report.warning ~stage:Report.Electrical ~rule ~context:"netlist" msg)
    (Netlist.Erc.check netlist)

let run ?(config = default_config) ?metrics ?trace ?progress rules file =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let tick name = match progress with None -> () | Some f -> f name in
  (* Each stage is announced to [progress], timed into the metrics, and
     recorded as a ["stage"]-category trace span — one wrapper so the
     three views always agree on stage names. *)
  let timed name f =
    tick name;
    Trace.with_span trace ~cat:"stage" name (fun () -> Metrics.time_stage m name f)
  in
  (* Per-definition sweep: same order (and thus same report) as
     [List.concat_map check_sym symbols], with a ["symbol"] span and a
     [symbol.<name>] cost charge around each definition. *)
  let per_symbol stage check_sym (model : Model.t) =
    List.concat_map
      (fun (s : Model.symbol) ->
        Trace.with_span trace ~cat:"symbol" ~args:[ ("stage", stage) ] s.Model.sname
          (fun () ->
            let t0 = Metrics.now_ns () in
            let vs = check_sym model.Model.rules s in
            Metrics.add_cost_ns m ("symbol." ^ s.Model.sname)
              (Int64.sub (Metrics.now_ns ()) t0);
            vs))
      model.Model.symbols
  in
  match timed "elaborate" (fun () -> Model.elaborate rules file) with
  | Error e -> Error e
  | Ok (model, parse_issues) ->
    Metrics.incr ~by:(Model.symbol_count model) m "model.symbols";
    Metrics.incr ~by:(Model.definition_elements model) m "model.definition_elements";
    Metrics.incr ~by:(Model.instantiated_elements model) m "model.instantiated_elements";
    let element_issues =
      timed "elements" (fun () -> per_symbol "elements" Element_checks.check_symbol model)
    in
    let device_issues =
      timed "devices" (fun () -> per_symbol "devices" Devices.check_symbol model)
    in
    let relational_issues =
      match config.relational with
      | None -> []
      | Some exposure ->
        timed "devices-relational" (fun () -> Devices.check_relational_all exposure model)
    in
    let nets, connection_issues = timed "connections+netlist" (fun () -> Netgen.build model) in
    let netlist = timed "netlist-export" (fun () -> Netgen.netlist nets) in
    let interaction_issues, interaction_stats =
      timed "interactions" (fun () ->
          Interactions.check ~config:config.interactions ~metrics:m ?trace nets)
    in
    let electrical_issues =
      if config.run_erc then timed "electrical" (fun () -> erc_violations netlist)
      else []
    in
    let consistency_issues =
      match config.expected_netlist with
      | None -> []
      | Some expected ->
        timed "netlist-compare" (fun () -> Netcompare.check expected netlist)
    in
    let local, crossing = Netgen.locality nets in
    let locality_info =
      Report.info ~stage:Report.Netlist_gen ~rule:"netlist.locality" ~context:"TOP"
        (Printf.sprintf "%d net(s) local to one definition, %d crossing boundaries" local
           crossing)
    in
    let report =
      { Report.violations =
          parse_issues @ element_issues @ device_issues @ relational_issues
          @ connection_issues @ interaction_issues @ electrical_issues
          @ consistency_issues @ [ locality_info ] }
    in
    Metrics.count_report m report;
    Ok
      { report;
        netlist;
        interaction_stats;
        stage_seconds = Metrics.stage_seconds m;
        metrics = m;
        model;
        nets }

let run_string ?config ?metrics ?trace ?progress rules src =
  match Cif.Parse.file src with
  | Error e -> Error (Cif.Parse.string_of_error e)
  | Ok file -> run ?config ?metrics ?trace ?progress rules file

let pp_summary ppf r =
  let by sev = Report.count ~severity:sev r.report in
  Format.fprintf ppf "%d error(s), %d warning(s), %d net(s)" (by Report.Error)
    (by Report.Warning)
    (List.length r.netlist.Netlist.Net.nets)
