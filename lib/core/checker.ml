type config = Engine.config = {
  interactions : Interactions.config;
  run_erc : bool;
  expected_netlist : Netcompare.expected option;
  relational : Process_model.Exposure.t option;
  run_lint : bool;
}

let default_config = Engine.default_config

type result = Engine.result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
  metrics : Metrics.t;
  model : Model.t;
  nets : Netgen.t;
}

let erc_violations = Engine.erc_violations

let run ?config ?metrics ?trace ?progress rules file =
  Result.map fst (Engine.check ?metrics ?trace ?progress (Engine.create ?config rules) file)

let run_string ?config ?metrics ?trace ?progress rules src =
  Result.map fst
    (Engine.check_string ?metrics ?trace ?progress (Engine.create ?config rules) src)

let pp_summary = Engine.pp_summary
