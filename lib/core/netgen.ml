type group = {
  gid : int;
  skels : (Tech.Layer.t * Geom.Rect.t list) list;
  labels : string list;
  terminals : Netlist.Net.terminal list;
  element_count : int;
  crossing : bool;
}

type sym_nets = {
  groups : group array;
  elt_group : int option array;
  sub_group : (int * int, int) Hashtbl.t;
}

type t = {
  model : Model.t;
  by_symbol : (int, sym_nets) Hashtbl.t;
}

let nets_of t sid =
  match Hashtbl.find_opt t.by_symbol sid with
  | Some sn -> sn
  | None -> invalid_arg (Printf.sprintf "Netgen.nets_of: symbol %d" sid)

let instance_label model (c : Model.call) =
  let callee = Model.find model c.Model.callee in
  Printf.sprintf "%d:%s" c.Model.cidx callee.Model.sname

let is_global name = String.length name > 0 && name.[String.length name - 1] = '!'
let qualify inst label = if is_global label then label else inst ^ "." ^ label

let hull_of = function
  | [] -> None
  | r :: rs -> Some (List.fold_left Geom.Rect.hull r rs)

let merge_skels skels =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (layer, rects) ->
      let cur = try Hashtbl.find tbl layer with Not_found -> [] in
      Hashtbl.replace tbl layer (rects @ cur))
    skels;
  Hashtbl.fold (fun layer rects acc -> (layer, rects) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Tech.Layer.compare a b)

(* ------------------------------------------------------------------ *)
(* Device symbols: groups come straight from the electrical interface. *)

let device_sym_nets rules (s : Model.symbol) =
  let iface =
    match Devices.interface rules s with Some i -> i | None -> assert false
  in
  let kind = match s.Model.device with Some k -> k | None -> assert false in
  let groups =
    Array.of_list
      (List.mapi
         (fun gid (p : Devices.port) ->
           { gid;
             skels = merge_skels p.Devices.players;
             labels = p.Devices.plabels;
             terminals =
               [ { Netlist.Net.device_path = ""; device = kind; port = p.Devices.pname } ];
             element_count = 0;
             crossing = false })
         iface.Devices.ports)
  in
  (* Assign each element to the port whose connection surface it
     belongs to (same layer, skeletons touching). *)
  let elt_group =
    Array.of_list
      (List.map
         (fun (e : Model.element) ->
           let rec first i =
             if i >= Array.length groups then None
             else
               let g = groups.(i) in
               match List.assoc_opt e.Model.layer (g.skels |> List.map (fun (l, r) -> (l, r))) with
               | Some rects when Geom.Skeleton.connected e.Model.skeleton rects -> Some i
               | _ -> first (i + 1)
           in
           first 0)
         s.Model.elements)
  in
  { groups; elt_group; sub_group = Hashtbl.create 1 }

(* ------------------------------------------------------------------ *)
(* Composite symbols                                                   *)

type node_src =
  | N_elt of Model.element
  | N_sub of int * int * group  (** call idx, child gid, the child group *)

let compose model rules (s : Model.symbol) child_nets =
  let context = s.Model.sname in
  let issues = ref [] in
  (* Instance labels are needed once per (call, child group) node below;
     an association scan over [s.calls] there would be quadratic in the
     instance count — at a million rectangles TOP has half a million
     calls, and that scan, not the geometry, was the whole stage cost. *)
  let call_by_cidx = Hashtbl.create (List.length s.Model.calls) in
  List.iter
    (fun (c : Model.call) -> Hashtbl.replace call_by_cidx c.Model.cidx c)
    s.Model.calls;
  let nodes = ref [] in
  (* Element nodes. *)
  List.iter
    (fun (e : Model.element) ->
      if Tech.Layer.is_interconnect e.Model.layer then nodes := N_elt e :: !nodes)
    s.Model.elements;
  (* Child group nodes, with transformed skeletons. *)
  List.iter
    (fun (c : Model.call) ->
      let cn : sym_nets = child_nets c.Model.callee in
      Array.iter
        (fun (g : group) ->
          let skels =
            List.map
              (fun (layer, rects) ->
                (layer, List.map (Geom.Transform.apply_rect c.Model.transform) rects))
              g.skels
          in
          nodes := N_sub (c.Model.cidx, g.gid, { g with skels }) :: !nodes)
        cn.groups)
    s.Model.calls;
  let nodes = Array.of_list (List.rev !nodes) in
  let n = Array.length nodes in
  let uf = Netlist.Uf.create () in
  for _ = 1 to n do
    ignore (Netlist.Uf.make uf)
  done;
  (* Spatial index over per-layer connection surfaces. *)
  let idx = Geom.Grid_index.create ~cell:400 () in
  Array.iteri
    (fun i node ->
      let entries =
        match node with
        | N_elt e -> [ (e.Model.layer, e.Model.skeleton) ]
        | N_sub (_, _, g) -> g.skels
      in
      List.iter
        (fun (layer, rects) ->
          match hull_of rects with
          | Some h -> Geom.Grid_index.add idx h (i, layer, rects)
          | None -> ())
        entries)
    nodes;
  List.iter
    (fun (((_, (i, la, ra)), (_, (j, lb, rb))) :
           (Geom.Rect.t * (int * Tech.Layer.t * Geom.Rect.t list))
           * (Geom.Rect.t * (int * Tech.Layer.t * Geom.Rect.t list))) ->
      if i <> j && Tech.Layer.equal la lb && Geom.Skeleton.connected ra rb then
        Netlist.Uf.union uf i j)
    (Geom.Grid_index.pairs_within idx 0);
  (* Merge global labels by name. *)
  let node_labels i =
    match nodes.(i) with
    | N_elt e -> Option.to_list e.Model.net_label
    | N_sub (_, _, g) -> g.labels
  in
  let first_global = Hashtbl.create 8 in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun l ->
          if is_global l then
            match Hashtbl.find_opt first_global l with
            | Some j -> Netlist.Uf.union uf i j
            | None -> Hashtbl.add first_global l i)
        (node_labels i))
    nodes;
  (* Stage 4: legal connections.  Same-layer local elements whose drawn
     geometry touches must be on one net (skeletally connected, possibly
     transitively); touching without connection is the butting error. *)
  let geo_idx = Geom.Grid_index.create ~cell:400 () in
  Array.iteri
    (fun i node ->
      match node with
      | N_elt e -> (
        match hull_of e.Model.rects with
        | Some h -> Geom.Grid_index.add geo_idx h (i, e)
        | None -> ())
      | N_sub _ -> ())
    nodes;
  List.iter
    (fun ((_, (i, (ea : Model.element))), (_, (j, (eb : Model.element)))) ->
      if
        i <> j
        && Tech.Layer.equal ea.Model.layer eb.Model.layer
        && (not (Netlist.Uf.same uf i j))
        && List.exists
             (fun ra -> List.exists (fun rb -> Geom.Rect.touches ~a:ra ~b:rb) eb.Model.rects)
             ea.Model.rects
      then
        let loc =
          match ea.Model.loc with Some _ as l -> l | None -> eb.Model.loc
        in
        issues :=
          Report.error ~stage:Report.Connections ~rule:"connection.illegal"
            ~where:(Geom.Rect.hull ea.Model.bbox eb.Model.bbox) ~context ?loc
            (Printf.sprintf
               "%s elements touch but are not skeletally connected (butting?)"
               (Tech.Layer.to_cif ea.Model.layer))
          :: !issues)
    (Geom.Grid_index.pairs_within geo_idx 0);
  (* Build groups from union-find classes. *)
  let root_of = Array.init n (fun i -> Netlist.Uf.find uf i) in
  let class_ids = Hashtbl.create 16 in
  let next_gid = ref 0 in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem class_ids r) then begin
        Hashtbl.add class_ids r !next_gid;
        incr next_gid
      end)
    root_of;
  let n_groups = !next_gid in
  let skels = Array.make n_groups []
  and labels = Array.make n_groups []
  and terminals = Array.make n_groups []
  and counts = Array.make n_groups 0
  and crossing = Array.make n_groups false in
  let elt_group = Array.make (List.length s.Model.elements) None in
  let sub_group = Hashtbl.create 32 in
  Array.iteri
    (fun i node ->
      let gid = Hashtbl.find class_ids root_of.(i) in
      match node with
      | N_elt e ->
        skels.(gid) <- (e.Model.layer, e.Model.skeleton) :: skels.(gid);
        (match e.Model.net_label with
        | Some l -> labels.(gid) <- l :: labels.(gid)
        | None -> ());
        counts.(gid) <- counts.(gid) + 1;
        elt_group.(e.Model.eid) <- Some gid
      | N_sub (cidx, child_gid, g) ->
        let inst = instance_label model (Hashtbl.find call_by_cidx cidx) in
        skels.(gid) <- g.skels @ skels.(gid);
        labels.(gid) <- List.map (qualify inst) g.labels @ labels.(gid);
        terminals.(gid) <-
          List.map
            (fun (t : Netlist.Net.terminal) ->
              { t with
                Netlist.Net.device_path =
                  (if t.Netlist.Net.device_path = "" then inst
                   else inst ^ "." ^ t.Netlist.Net.device_path) })
            g.terminals
          @ terminals.(gid);
        counts.(gid) <- counts.(gid) + g.element_count;
        crossing.(gid) <- true;
        Hashtbl.replace sub_group (cidx, child_gid) gid)
    nodes;
  ignore rules;
  let groups =
    Array.init n_groups (fun gid ->
        { gid;
          skels = merge_skels skels.(gid);
          labels = List.sort_uniq String.compare labels.(gid);
          terminals = terminals.(gid);
          element_count = counts.(gid);
          crossing = crossing.(gid) })
  in
  ({ groups; elt_group; sub_group }, !issues)

let build (model : Model.t) =
  let by_symbol = Hashtbl.create 16 in
  let issues = ref [] in
  List.iter
    (fun (s : Model.symbol) ->
      let sn =
        if Model.is_device s then device_sym_nets model.Model.rules s
        else begin
          let sn, errs =
            compose model model.Model.rules s (fun sid -> Hashtbl.find by_symbol sid)
          in
          issues := errs @ !issues;
          sn
        end
      in
      Hashtbl.replace by_symbol s.Model.sid sn)
    model.Model.symbols;
  ({ model; by_symbol }, List.rev !issues)

let rec resolve_in t sid path eid =
  let sn = nets_of t sid in
  match path with
  | [] -> sn.elt_group.(eid)
  | c :: rest -> (
    let sym = Model.find t.model sid in
    let call = List.find (fun (k : Model.call) -> k.Model.cidx = c) sym.Model.calls in
    match resolve_in t call.Model.callee rest eid with
    | None -> None
    | Some child_gid -> Hashtbl.find_opt sn.sub_group (c, child_gid))

let resolve t sid ~path ~eid = resolve_in t sid path eid

let classes_of names =
  List.map Tech.Netclass.classify names
  |> List.sort_uniq Stdlib.compare
  |> List.filter (fun c -> not (Tech.Netclass.equal c Tech.Netclass.Signal))

let netlist t =
  let root = nets_of t Model.root_id in
  let nets =
    Array.to_list root.groups
    |> List.map (fun (g : group) ->
           { Netlist.Net.names = g.labels;
             auto_name = Printf.sprintf "n%d" g.gid;
             classes = classes_of g.labels;
             terminals = g.terminals;
             element_count = g.element_count })
  in
  { Netlist.Net.nets }

let locality t =
  let root = nets_of t Model.root_id in
  Array.fold_left
    (fun (local, crossing) (g : group) ->
      if g.crossing then (local, crossing + 1) else (local + 1, crossing))
    (0, 0) root.groups
