(** Structured observability for the checking pipeline.

    The paper evaluates its checker the way every DRC paper since has:
    by wall-clock cost per pipeline stage (Fig 10) and by how much work
    the hierarchy avoids (Fig 9's definition-vs-instance ratio, the
    interaction-matrix coverage of Fig 12).  This module makes those
    measurements first-class instead of ad-hoc [Sys.time] deltas: one
    accumulator object carries

    - {b stage timers} — monotonic wall-clock seconds per pipeline
      stage, in execution order (the Fig 10 bar chart as data);
    - {b counters} — monotonically non-decreasing named totals
      (elements scanned, instance pairs visited, memo hits, bounding
      box rejections, errors by class …);
    - {b histograms} — log₂-bucketed nanosecond distributions, used for
      the per-instance-pair interaction check cost.

    Timers use a monotonic clock ([CLOCK_MONOTONIC] via the bechamel
    stubs), so parallel speedups measure real time, not summed CPU
    time.

    {2 Invariants}

    - Counters never decrease; [incr] with a negative [by] raises
      [Invalid_argument].
    - A value is thread-compatible but not thread-safe: each domain
      accumulates into its own [t] and the results are combined with
      {!merge_into} after joining (this is what the parallel
      interaction scheduler does).
    - {!to_json} is canonical: counter and histogram names are sorted,
      stages appear in execution order, so equal metric states render
      to equal strings. *)

type t

val create : unit -> t

(** Nanoseconds on the monotonic clock.  Differences are meaningful;
    the absolute value is not. *)
val now_ns : unit -> int64

(** {1 Stage timers} *)

(** [time_stage t name f] runs [f], recording its monotonic wall-clock
    duration as pipeline stage [name].  Stages are kept in call order;
    timing the same name twice records two entries.

    It also charges the words allocated while [f] ran (via
    {!count_gc}) to the counters [gc.minor_words.<name>] and
    [gc.major_words.<name>] — the direct measure of the allocation
    pressure each stage puts on the GC. *)
val time_stage : t -> string -> (unit -> 'a) -> 'a

(** [count_gc t name f] runs [f] and charges the words it allocated
    (from {!Gc.quick_stat} deltas, clamped at zero) to the counters
    [gc.minor_words.<name>] and [gc.major_words.<name>], without
    recording a stage timing.

    [Gc.quick_stat] is domain-local under OCaml 5, so one call covers
    one domain.  A parallel stage gets honest totals by having every
    worker wrap its slice in [count_gc] against its own per-domain [t]:
    {!merge_into} sums the counters, so the stage figure ends up
    covering all domains' allocation. *)
val count_gc : t -> string -> (unit -> 'a) -> 'a

(** Record an externally measured stage duration (seconds). *)
val add_stage_seconds : t -> string -> float -> unit

(** Stages in execution order with their wall-clock seconds. *)
val stage_seconds : t -> (string * float) list

(** {1 Counters} *)

(** [incr ?by t name] adds [by] (default 1, must be [>= 0]) to counter
    [name], creating it at zero first if needed. *)
val incr : ?by:int -> t -> string -> unit

(** Current value of a counter; [0] if never incremented. *)
val counter : t -> string -> int

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** {1 Gauges}

    Point-in-time readings (queue depth, cache hit ratio, busy
    fraction): unlike counters they move both ways, and a new reading
    replaces the old one.  Under {!merge_into} the {e source}'s reading
    wins for every name it carries — merge in shard order so the
    surviving reading is deterministic. *)

(** [set_gauge t name v] records [v] as the current reading of gauge
    [name], replacing any previous reading. *)
val set_gauge : t -> string -> float -> unit

(** Latest reading of a gauge; [None] if never set. *)
val gauge : t -> string -> float option

(** All gauges, sorted by name. *)
val gauges : t -> (string * float) list

(** {1 Sliding windows}

    Rolling distributions over the last [capacity] observations (a ring
    buffer): per-request service latency, queue-depth samples.  Where
    the log₂ {{!observe_ns} histograms} are cumulative sketches over a
    whole run, a window forgets — its quantiles answer "how is the
    service doing {e now}" — and is exact within the window. *)

(** The capacity a window is created with when the first
    {!observe_window} for its name passes no [capacity] (256). *)
val default_window_capacity : int

(** [observe_window ?capacity t name v] pushes [v] into window [name],
    evicting the oldest value once the window holds [capacity]
    observations.  [capacity] only applies when this call creates the
    window; an existing window keeps its capacity. *)
val observe_window : ?capacity:int -> t -> string -> float -> unit

type window_snapshot = {
  w_count : int;  (** observations ever, including evicted ones *)
  w_capacity : int;
  w_values : float array;  (** surviving observations, oldest first *)
}

val window : t -> string -> window_snapshot option

(** All window names, sorted. *)
val window_names : t -> string list

(** Exact nearest-rank quantile over the surviving values ([0.] for an
    empty window). *)
val window_quantile : window_snapshot -> float -> float

(** {1 Histograms} *)

(** [observe_ns t name ns] adds one observation to histogram [name].
    Buckets are powers of two: observation [v] (clamped to [>= 0])
    lands in the bucket whose upper bound is the smallest power of two
    [> v]. *)
val observe_ns : t -> string -> int64 -> unit

type histogram_snapshot = {
  h_count : int;  (** number of observations *)
  h_sum_ns : int64;  (** sum of all observations *)
  h_buckets : (int64 * int) list;
      (** (inclusive upper bound in ns, count) for non-empty buckets,
          ascending *)
}

val histogram : t -> string -> histogram_snapshot option

(** {1 Cost attribution}

    Named nanosecond totals for "which part of the design is
    expensive" questions — one entry per symbol definition
    ([symbol.<name>]) accumulated by the checker, surfaced as
    [dicheck --top-cost N].  Unlike stage timers these are keyed,
    unordered, and merged additively across domains. *)

(** [add_cost_ns t name ns] adds [ns] (must be [>= 0]) to cost bucket
    [name], creating it at zero first if needed. *)
val add_cost_ns : t -> string -> int64 -> unit

(** Accumulated cost of a bucket; [0L] if never charged. *)
val cost_ns : t -> string -> int64

(** All cost buckets, sorted by name. *)
val costs : t -> (string * int64) list

(** The [n] most expensive buckets, descending by cost (name ascending
    on ties, so the ranking is deterministic). *)
val top_costs : t -> n:int -> (string * int64) list

(** {1 Composition} *)

(** [merge_into ~into src] adds [src]'s counters, histograms, and cost
    buckets into [into] and appends [src]'s stages after [into]'s;
    [src]'s gauge readings overwrite [into]'s, and [src]'s window
    values are replayed oldest-first into [into]'s rings (the
    destination's capacity wins; evicted-observation counts carry
    over).  [src] is not modified.  Used to fold per-domain
    accumulators back into the main one after a parallel stage; call
    in shard order so the result is deterministic. *)
val merge_into : into:t -> t -> unit

(** Tally a finished report into the [report.errors] /
    [report.warnings] / [report.infos] counters plus one
    [errors.<stage>] counter per pipeline stage that produced errors. *)
val count_report : t -> Report.t -> unit

(** {1 Rendering} *)

(** Canonical JSON: [{"stages":[{"name","seconds"}…],
    "counters":{…}, "histograms":{name:{"count","sum_ns",
    "buckets":[{"le_ns","count"}…]}…}, "gauges":{name:v…},
    "windows":{name:{"capacity","count","len","mean","max",
    "p50","p95","p99"}…}, "costs":{name:ns…}}].
    Deterministic for equal states; no external JSON library
    involved. *)
val to_json : t -> string

(** Human-readable multi-line summary (stage table, then counters,
    then histogram quantile sketches). *)
val pp : Format.formatter -> t -> unit
