(* SARIF 2.1.0 emission, by hand.

   The output is deterministic: rules are sorted by id, results keep
   report order, and no timestamps or absolute paths are embedded, so
   equal reports render to equal documents (the golden test relies on
   this). *)

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of_severity = function
  | Report.Error -> "error"
  | Report.Warning -> "warning"
  | Report.Info -> "note"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ json_escape s ^ "\""

(* The distinct rule ids of the report (and of any suppressed results
   riding along), sorted, with their index in the emitted [rules] array
   (results reference rules by id + index). *)
let rule_table ~suppressed (report : Report.t) =
  let ids =
    List.fold_left
      (fun acc (v : Report.violation) ->
        if List.mem v.Report.rule acc then acc else v.Report.rule :: acc)
      [] (report.Report.violations @ suppressed)
    |> List.sort String.compare
  in
  List.mapi (fun i id -> (id, i)) ids

(* The rules-file key a rule id is parameterised by, when there is one:
   [width.NP] reads [width_poly], [spacing.ND] reads [space_diffusion],
   [spacing.ND-NP] reads a directed [space_<a>_<b>] override or
   [space_poly_diffusion].  The mappings mirror
   {!Tech.Rules.min_width} / {!Tech.Rules.same_layer_space}. *)
let width_key = function
  | Tech.Layer.Diffusion -> "width_diffusion"
  | Tech.Layer.Poly | Tech.Layer.Implant -> "width_poly"
  | Tech.Layer.Metal -> "width_metal"
  | Tech.Layer.Contact | Tech.Layer.Buried | Tech.Layer.Glass -> "contact_size"

let space_key = function
  | Tech.Layer.Diffusion -> "space_diffusion"
  | Tech.Layer.Poly | Tech.Layer.Implant -> "space_poly"
  | Tech.Layer.Metal | Tech.Layer.Glass -> "space_metal"
  | Tech.Layer.Contact | Tech.Layer.Buried -> "space_contact"

(* [(key, line)] of the deck entry a rule id came from, when the deck
   was loaded from text and the id maps to a rules-file key. *)
let deck_position deck_rules id =
  let strip p =
    let n = String.length p in
    if String.length id > n && String.sub id 0 n = p then
      Some (String.sub id n (String.length id - n))
    else None
  in
  let with_pos key =
    Option.map (fun line -> (key, line)) (Tech.Rules.position deck_rules key)
  in
  let first_pos keys = List.find_map with_pos keys in
  match strip "width." with
  | Some cif ->
    Option.bind (Tech.Layer.of_cif cif) (fun l -> with_pos (width_key l))
  | None -> (
    match strip "spacing." with
    | None -> None
    | Some pair -> (
      match String.index_opt pair '-' with
      | None ->
        Option.bind (Tech.Layer.of_cif pair) (fun l -> with_pos (space_key l))
      | Some i -> (
        let ca = String.sub pair 0 i in
        let cb = String.sub pair (i + 1) (String.length pair - i - 1) in
        match (Tech.Layer.of_cif ca, Tech.Layer.of_cif cb) with
        | Some a, Some b ->
          let directed x y =
            Printf.sprintf "space_%s_%s" (Tech.Rules.layer_name x)
              (Tech.Rules.layer_name y)
          in
          first_pos [ directed a b; directed b a; "space_poly_diffusion" ]
        | _ -> None)))

let rule_json ?deck_rules (id, _index) =
  (* Lint rules carry their stable-code explanation; for everything
     else the rule family (prefix before the first dot) doubles as a
     short description, the full semantics living in the stage docs. *)
  let lint_explanation =
    if String.length id > 5 && String.sub id 0 5 = "lint." then
      Lint.explain (String.sub id 5 (String.length id - 5))
    else None
  in
  let desc =
    match lint_explanation with
    | Some text -> text
    | None ->
      let family = match String.index_opt id '.' with
        | Some i -> String.sub id 0 i
        | None -> id
      in
      family ^ " rule " ^ id
  in
  let deck_props =
    (* Point the rule back at its defining line in this run's deck, so
       a multi-deck SARIF log distinguishes which deck's parameter each
       run is enforcing. *)
    match Option.bind deck_rules (fun r -> deck_position r id) with
    | Some (key, line) ->
      Printf.sprintf ",\"properties\":{\"deckKey\":%s,\"deckLine\":%d}" (str key) line
    | None -> ""
  in
  Printf.sprintf "{\"id\":%s,\"shortDescription\":{\"text\":%s}%s}" (str id)
    (str desc) deck_props

let region_json (l : Cif.Loc.t) =
  Printf.sprintf "{\"startLine\":%d,\"startColumn\":%d}" l.Cif.Loc.line l.Cif.Loc.col

let location_json ~uri (v : Report.violation) =
  let physical =
    match v.Report.loc with
    | Some l ->
      Printf.sprintf "\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":%s}"
        (str uri) (region_json l)
    | None ->
      (* No source position (programmatic AST): still name the artifact
         so viewers group results by file. *)
      Printf.sprintf "\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}}" (str uri)
  in
  let logical =
    Printf.sprintf
      "\"logicalLocations\":[{\"fullyQualifiedName\":%s,\"kind\":\"member\"}]"
      (str (Report.instance_path v))
  in
  Printf.sprintf "{%s,%s}" physical logical

let result_json ?(suppressed = false) ~uri rules (v : Report.violation) =
  let rule_index = match List.assoc_opt v.Report.rule rules with Some i -> i | None -> -1 in
  let region_props =
    match v.Report.where with
    | None -> ""
    | Some r ->
      (* Layout coordinates ride along as properties: SARIF regions are
         text-based, and [where] is geometry in [context]'s frame. *)
      Printf.sprintf
        ",\"properties\":{\"bboxX0\":%d,\"bboxY0\":%d,\"bboxX1\":%d,\"bboxY1\":%d}"
        (Geom.Rect.x0 r) (Geom.Rect.y0 r) (Geom.Rect.x1 r) (Geom.Rect.y1 r)
  in
  let suppressions =
    (* A waived diagnostic is still a [result] — reviewers see what was
       silenced — but carries an [inSource] suppression (the waiver
       lives in the deck comment or the design's [4L] command), which
       SARIF viewers render as "suppressed" instead of open. *)
    if suppressed then ",\"suppressions\":[{\"kind\":\"inSource\"}]" else ""
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"ruleIndex\":%d,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[%s]%s%s}"
    (str v.Report.rule) rule_index
    (str (level_of_severity v.Report.severity))
    (str v.Report.message)
    (location_json ~uri v) region_props suppressions

(* One [runs[]] entry.  With neither [automation_id] nor [deck_rules]
   the bytes are exactly the historical single-run body — [of_report]
   output must not change shape. *)
let add_run buf ?automation_id ?deck_rules ?(suppressed = []) ~uri ~tool_version
    (report : Report.t) =
  let rules = rule_table ~suppressed report in
  let add = Buffer.add_string buf in
  add "{";
  (match automation_id with
  | Some id -> add (Printf.sprintf "\"automationDetails\":{\"id\":%s}," (str id))
  | None -> ());
  add "\"tool\":{\"driver\":{\"name\":\"dicheck\"";
  add (Printf.sprintf ",\"version\":%s" (str tool_version));
  add
    ",\"informationUri\":\"https://doi.org/10.1145/800139.804577\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",";
      add (rule_json ?deck_rules r))
    rules;
  add "]}},\"results\":[";
  let live = List.rev report.Report.violations in
  List.iteri
    (fun i v ->
      if i > 0 then add ",";
      add (result_json ~uri rules v))
    live;
  (* Suppressed results follow the live ones, in report order; with no
     waivers the bytes are exactly the historical run body. *)
  List.iteri
    (fun i v ->
      if live <> [] || i > 0 then add ",";
      add (result_json ~suppressed:true ~uri rules v))
    suppressed;
  add "]}"

let of_report ?(uri = "design.cif") ?(tool_version = Version.version)
    ?(suppressed = []) (report : Report.t) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\"$schema\":";
  add (str schema);
  add ",\"version\":\"2.1.0\",\"runs\":[";
  add_run buf ~suppressed ~uri ~tool_version report;
  add "]}";
  Buffer.contents buf

let of_reports ?(uri = "design.cif") ?(tool_version = Version.version)
    ?(suppressed = []) ?(relations = [])
    (decks : (string * Tech.Rules.t * Report.t) list) =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  add "{\"$schema\":";
  add (str schema);
  add ",\"version\":\"2.1.0\",\"runs\":[";
  List.iteri
    (fun i (label, deck_rules, report) ->
      if i > 0 then add ",";
      let suppressed =
        match List.assoc_opt label suppressed with Some vs -> vs | None -> []
      in
      add_run buf ~automation_id:label ~deck_rules ~suppressed ~uri ~tool_version
        report)
    decks;
  add "]";
  (* Deck-subsumption verdicts (R015) are cross-run facts, so they live
     in the log's properties bag, not in any single run's results. *)
  if relations <> [] then begin
    add ",\"properties\":{\"deckRelations\":[";
    List.iteri
      (fun i line ->
        if i > 0 then add ",";
        add (str line))
      relations;
    add "]}"
  end;
  add "}";
  Buffer.contents buf
