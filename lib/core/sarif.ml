(* SARIF 2.1.0 emission, by hand.

   The output is deterministic: rules are sorted by id, results keep
   report order, and no timestamps or absolute paths are embedded, so
   equal reports render to equal documents (the golden test relies on
   this). *)

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of_severity = function
  | Report.Error -> "error"
  | Report.Warning -> "warning"
  | Report.Info -> "note"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ json_escape s ^ "\""

(* The distinct rule ids of the report, sorted, with their index in the
   emitted [rules] array (results reference rules by id + index). *)
let rule_table (report : Report.t) =
  let ids =
    List.fold_left
      (fun acc (v : Report.violation) ->
        if List.mem v.Report.rule acc then acc else v.Report.rule :: acc)
      [] report.Report.violations
    |> List.sort String.compare
  in
  List.mapi (fun i id -> (id, i)) ids

let rule_json (id, _index) =
  (* Lint rules carry their stable-code explanation; for everything
     else the rule family (prefix before the first dot) doubles as a
     short description, the full semantics living in the stage docs. *)
  let lint_explanation =
    if String.length id > 5 && String.sub id 0 5 = "lint." then
      Lint.explain (String.sub id 5 (String.length id - 5))
    else None
  in
  let desc =
    match lint_explanation with
    | Some text -> text
    | None ->
      let family = match String.index_opt id '.' with
        | Some i -> String.sub id 0 i
        | None -> id
      in
      family ^ " rule " ^ id
  in
  Printf.sprintf "{\"id\":%s,\"shortDescription\":{\"text\":%s}}" (str id) (str desc)

let region_json (l : Cif.Loc.t) =
  Printf.sprintf "{\"startLine\":%d,\"startColumn\":%d}" l.Cif.Loc.line l.Cif.Loc.col

let location_json ~uri (v : Report.violation) =
  let physical =
    match v.Report.loc with
    | Some l ->
      Printf.sprintf "\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":%s}"
        (str uri) (region_json l)
    | None ->
      (* No source position (programmatic AST): still name the artifact
         so viewers group results by file. *)
      Printf.sprintf "\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}}" (str uri)
  in
  let logical =
    Printf.sprintf
      "\"logicalLocations\":[{\"fullyQualifiedName\":%s,\"kind\":\"member\"}]"
      (str (Report.instance_path v))
  in
  Printf.sprintf "{%s,%s}" physical logical

let result_json ~uri rules (v : Report.violation) =
  let rule_index = match List.assoc_opt v.Report.rule rules with Some i -> i | None -> -1 in
  let region_props =
    match v.Report.where with
    | None -> ""
    | Some r ->
      (* Layout coordinates ride along as properties: SARIF regions are
         text-based, and [where] is geometry in [context]'s frame. *)
      Printf.sprintf
        ",\"properties\":{\"bboxX0\":%d,\"bboxY0\":%d,\"bboxX1\":%d,\"bboxY1\":%d}"
        (Geom.Rect.x0 r) (Geom.Rect.y0 r) (Geom.Rect.x1 r) (Geom.Rect.y1 r)
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"ruleIndex\":%d,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[%s]%s}"
    (str v.Report.rule) rule_index
    (str (level_of_severity v.Report.severity))
    (str v.Report.message)
    (location_json ~uri v) region_props

let of_report ?(uri = "design.cif") ?(tool_version = Version.version) (report : Report.t) =
  let rules = rule_table report in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\"$schema\":";
  add (str schema);
  add ",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"dicheck\"";
  add (Printf.sprintf ",\"version\":%s" (str tool_version));
  add
    ",\"informationUri\":\"https://doi.org/10.1145/800139.804577\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",";
      add (rule_json r))
    rules;
  add "]}},\"results\":[";
  List.iteri
    (fun i v ->
      if i > 0 then add ",";
      add (result_json ~uri rules v))
    (List.rev report.Report.violations);
  add "]}]}";
  Buffer.contents buf
