(** The check engine — the session-oriented front door to the Fig 10
    pipeline.

    {v
    let e = Engine.create ~cache_dir:".dicache" rules in
    let e = Engine.with_jobs e 4 in
    match Engine.check e file with
    | Ok (result, reuse) -> ...
    | Error msg -> ...
    v}

    An engine owns the rule set, the configuration, and all warm state:
    the per-definition result cache (keyed by structural fingerprint),
    the instance-pair interaction memo, and — when [cache_dir] is given
    — their on-disk persistence.  Rechecking a design after editing one
    symbol definition recomputes only that definition (and the
    composite stages, which are hierarchical and cheap); everything
    else is replayed from cache.  The same engine serves any number of
    {!check} calls, which is what [dicheck serve] runs on.

    {2 The determinism invariant}

    Cache state never changes verdicts, only cost.  A cached
    per-definition entry is addressed by a structural fingerprint of
    everything the per-definition checks can observe, under an
    environment digest of the rules and the result-affecting config;
    the interaction memo is a pure candidate cache.  Consequently a
    warm {!check} emits a report {e byte-identical} to a cold one on
    the same input — for every [jobs] value — and a corrupted or stale
    cache file degrades to a recompute, never to a wrong answer.

    {2 Relation to the old API}

    {!Checker.run} and {!Incremental.run} survive as thin deprecated
    wrappers: [Checker.run] is a single {!check} on a fresh engine,
    [Incremental.run] an engine without a [cache_dir].  New code should
    use {!create}/{!check} directly. *)

(** What {!check} computes.  [interactions] nests the stage-6 knobs
    (metric, same-net handling, spacing model, jobs) — the
    [with_*] builders below update either level without the caller
    assembling nested records. *)
type config = {
  interactions : Interactions.config;
  run_erc : bool;  (** run the non-geometric construction rules *)
  expected_netlist : Netcompare.expected option;
      (** verify the extracted net list against an intended one *)
  relational : Process_model.Exposure.t option;
      (** also run the relational gate-overhang check against this
          exposure model (paper Fig 14) *)
  run_lint : bool;
      (** also run the static {!Lint} passes (deck + design) and
          prepend their diagnostics, as [lint.*] rules, to the report.
          Off by default: the default report bytes stay identical to
          pre-lint versions *)
}

val default_config : config

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
      (** @deprecated derived view of [metrics]; use
          {!Metrics.stage_seconds} *)
  metrics : Metrics.t;
      (** the full observability record: stage timers, work counters
          (including [cache.*]), the [cache.hit_ratio] gauge, per-pair
          cost histogram, errors by class *)
  model : Model.t;
  nets : Netgen.t;
}

(** What the session saved on this check.  [symbols_reused] counts
    definitions whose element/device/relational results were replayed
    (from memory or disk) instead of recomputed; [defs_from_disk] is
    the subset that came off disk; [memo_loaded] is the number of
    instance-pair memo entries imported from the persistent cache. *)
type reuse = {
  symbols_total : int;
  symbols_reused : int;
  defs_from_disk : int;
  memo_loaded : int;
}

type t

(** [create ?config ?cache_dir rules] — a cold engine.  With
    [cache_dir] the engine persists per-definition results and the
    interaction memo under that directory (created if missing; see
    {!Cache} for the layout), so warmth survives the process. *)
val create : ?config:config -> ?cache_dir:string -> Tech.Rules.t -> t

val rules : t -> Tech.Rules.t
val config : t -> config

(** {2 Builders}

    Each returns the (mutated) engine for chaining.  Changing anything
    that can affect verdicts moves the engine to a new environment
    digest and drops the warm session state; {!with_jobs} is the
    exception — parallelism never affects results, so the session (and
    the on-disk cache address) is shared across [jobs] values. *)

val with_config : t -> config -> t
val with_jobs : t -> int -> t
val with_metric : t -> Geom.Measure.metric -> t
val with_same_net : t -> bool -> t
val with_spacing_model : t -> Interactions.spacing_model -> t
val with_erc : t -> bool -> t
val with_lint : t -> bool -> t
val with_expected_netlist : t -> Netcompare.expected option -> t
val with_relational : t -> Process_model.Exposure.t option -> t

(** The environment digest: rules × result-affecting config (i.e. with
    [jobs] normalised away).  This is the [<env>] component of the
    on-disk cache address. *)
val env_key : Tech.Rules.t -> config -> string

(** Would this engine's warm state be valid for [rules]/[config]? *)
val same_env : t -> Tech.Rules.t -> config -> bool

(** Run the pipeline on an already-parsed file.  Identical in report,
    metrics shape, and trace shape to the historical {!Checker.run}
    when the engine is cold; warm runs skip recomputation but emit the
    same report bytes.  [metrics] lets the caller supply (and keep) the
    accumulator; one is created per check otherwise.  [trace] records
    the ["stage"]/["symbol"]/["shard"] spans of {!Checker.run} plus
    ["cache"]-category spans around cache traffic.  [progress] is
    called with each stage name as it starts. *)
val check :
  ?metrics:Metrics.t -> ?trace:Trace.t -> ?progress:(string -> unit) ->
  t -> Cif.Ast.file -> (result * reuse, string) Stdlib.result

(** Parse CIF text and {!check}. *)
val check_string :
  ?metrics:Metrics.t -> ?trace:Trace.t -> ?progress:(string -> unit) ->
  t -> string -> (result * reuse, string) Stdlib.result

(** Persist the session's warm interaction memo to the cache directory
    now.  {!check} already saves after every run, so this is a no-op in
    steady state (and always before the first check or without a cache
    directory); orderly teardown paths — the serve daemon's shutdown —
    call it so nothing warm is lost even if the last check's write
    raced a concurrent writer. *)
val flush : t -> unit

(** One-line summary: error/warning counts and net count. *)
val pp_summary : Format.formatter -> result -> unit

(** {2 Shared pieces}

    Exposed for the deprecated wrappers and for tests. *)

(** The non-geometric construction rules as report violations. *)
val erc_violations : Netlist.Net.t -> Report.violation list

(** Structural fingerprint of one definition: name, device kind,
    element geometry/layers/nets, calls with transforms. *)
val fingerprint : Model.symbol -> string

(** Per-symbol-id fingerprint of each definition {e subtree} (own
    fingerprint folded with callees'), used to key the persistent
    interaction memo by content. *)
val subtree_fingerprints : Model.t -> (int, string) Hashtbl.t
