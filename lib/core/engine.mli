(** The check engine — the session-oriented front door to the Fig 10
    pipeline.

    {v
    let e = Engine.create ~cache_dir:".dicache" rules in
    let e = Engine.with_jobs e 4 in
    match Engine.check e file with
    | Ok multi -> let result, reuse = Engine.primary multi in ...
    | Error msg -> ...
    v}

    {2 The deck-set session model}

    An engine owns an ordered {e set of rule decks} — usually one — the
    configuration, and all warm state.  A {!check} runs the whole deck
    set over one parse, one elaboration, one packed-geometry model, and
    one net structure; only rule {e evaluation} (elements, devices,
    interactions, deck lint) diverges per deck.  That is the paper's
    hierarchical economy extended across process variants: everything
    upstream of the rules is amortised over N decks, which is what the
    multiple-lithography-compliance flow ("which variants does this
    library comply with?") needs.

    Warm state is keyed {e per deck environment}: each deck's
    per-definition results live under its own {!env_key} digest, and
    each [max_dist] × metric class of decks shares one interaction-memo
    slot (see {!memo_env_key}).  Warming deck A therefore never
    invalidates deck B — a session alternating between deck sets keeps
    every deck's cache live, in memory and (with [cache_dir]) on disk.

    Rechecking a design after editing one symbol definition recomputes
    only that definition per deck (and the composite stages, which are
    hierarchical and cheap); everything else is replayed from cache.
    The same engine serves any number of {!check} calls, which is what
    [dicheck serve] runs on.

    {2 The determinism invariant}

    Cache state and parallelism never change verdicts, only cost.  A
    cached per-definition entry is addressed by a structural
    fingerprint of everything the per-definition checks can observe,
    under an environment digest of the deck and the result-affecting
    config; the interaction memo is a pure candidate cache.
    Consequently:

    - a warm {!check} emits reports {e byte-identical} to a cold one on
      the same input, for every [jobs] value;
    - a single-deck session's report is byte-identical to the
      historical single-rule-set engine;
    - each deck's report in a multi-deck session is byte-identical to
      that deck checked alone, and the {!multi.merged} view is a
      deterministic function of the per-deck reports — so it too is
      byte-stable across jobs, workers, and warmth;
    - a corrupted or stale cache file degrades to a recompute, never to
      a wrong answer;
    - static immunity certificates ({!Deckcheck}) only ever skip work
      that is provably silent — element checks and interaction tasks
      whose findings a certificate proves empty — so reports are
      byte-identical with pruning on or off ([DIC_NO_CERTS=1]), cold
      or warm, at every [jobs] value, single- or multi-deck.
      Certificates are cached under subtree fingerprints like lint
      diags; [analysis.*] counters report how much was skipped. *)

(** What {!check} computes.  [interactions] nests the stage-6 knobs
    (metric, same-net handling, spacing model, jobs) — the
    [with_*] builders below update either level without the caller
    assembling nested records. *)
type config = {
  interactions : Interactions.config;
  run_erc : bool;  (** run the non-geometric construction rules *)
  expected_netlist : Netcompare.expected option;
      (** verify the extracted net list against an intended one *)
  relational : Process_model.Exposure.t option;
      (** also run the relational gate-overhang check against this
          exposure model (paper Fig 14) *)
  run_lint : bool;
      (** also run the static {!Lint} passes (deck + design) and
          prepend their diagnostics, as [lint.*] rules, to the report.
          Off by default: the default report bytes stay identical to
          pre-lint versions *)
}

val default_config : config

(** One rule deck in the session's set: a rule set plus the label the
    merged report, SARIF runs, and serve replies call it by. *)
type deck = {
  dk_label : string;
  dk_rules : Tech.Rules.t;
}

(** [deck ?label rules] — [label] defaults to the rule set's [name]. *)
val deck : ?label:string -> Tech.Rules.t -> deck

(** Suffix repeated labels ([x], [x#2], [x#3], …) so membership
    annotations and SARIF run ids never alias two decks. *)
val dedupe_labels : deck list -> deck list

(** One deck's view of a check.  [metrics] is the {e shared}
    accumulator of the whole run — stage timers, work counters
    (including [cache.*]), the [cache.hit_ratio] gauge, per-pair cost
    histogram — the same value in every deck's result. *)
type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  metrics : Metrics.t;
  model : Model.t;
  nets : Netgen.t;
}

(** What the session saved for one deck on this check.
    [symbols_reused] counts definitions whose element/device/relational
    results were replayed (from memory or disk) instead of recomputed
    under that deck's environment; [defs_from_disk] is the subset that
    came off disk; [memo_loaded] is the number of instance-pair memo
    entries imported from the persistent cache (credited to the first
    deck of each shared memo slot). *)
type reuse = {
  symbols_total : int;
  symbols_reused : int;
  defs_from_disk : int;
  memo_loaded : int;
}

type deck_result = {
  dr_deck : deck;
  dr_result : result;
  dr_reuse : reuse;
  dr_suppressed : Lint.diagnostic list;
      (** lint/deckcheck diagnostics waived for this deck (deck
          [# lint: allow] comments plus the design's [4L] commands) —
          filtered out of [dr_result.report] at assembly time, never
          from the caches; empty when [run_lint] is off *)
}

(** The multi-result: per-deck results in deck order, plus the merged
    cross-deck report (deck-membership vectors, per-deck summaries, the
    compliant-intersection verdict). *)
type multi = {
  results : deck_result list;
  merged : Multireport.t;
}

(** The first deck's (result, reuse) — the whole story for a
    single-deck session. *)
val primary : multi -> result * reuse

type t

(** [create ?config ?cache_dir ?decks rules] — a cold engine.  [decks]
    defaults to [[deck rules]], the single-deck session; when given it
    overrides [rules] entirely (the first deck is the {e primary}: it
    drives elaboration and the default report).  With [cache_dir] the
    engine persists per-definition results and the interaction memo
    under that directory (created if missing; see {!Cache} for the
    layout), so warmth survives the process.

    @raise Invalid_argument on an empty deck list. *)
val create : ?config:config -> ?cache_dir:string -> ?decks:deck list -> Tech.Rules.t -> t

(** The primary deck's rule set. *)
val rules : t -> Tech.Rules.t

val decks : t -> deck list
val config : t -> config

(** {2 Builders}

    Each returns the (mutated) engine for chaining.  Changing anything
    that can affect verdicts moves the engine to a new environment
    digest and drops the warm session state; {!with_jobs} is the
    exception — parallelism never affects results, so the session (and
    the on-disk cache address) is shared across [jobs] values.
    {!with_decks} never drops warm state: per-deck caches are keyed by
    each deck's own environment, so changing the set merely changes
    which of them the next {!check} consults. *)

val with_config : t -> config -> t

(** Replace the deck set.
    @raise Invalid_argument on an empty list. *)
val with_decks : t -> deck list -> t

val with_jobs : t -> int -> t
val with_metric : t -> Geom.Measure.metric -> t
val with_same_net : t -> bool -> t
val with_spacing_model : t -> Interactions.spacing_model -> t
val with_erc : t -> bool -> t
val with_lint : t -> bool -> t
val with_expected_netlist : t -> Netcompare.expected option -> t
val with_relational : t -> Process_model.Exposure.t option -> t

(** The environment digest of one deck: canonical rule text ×
    result-affecting config (i.e. with [jobs] normalised away).  This
    is the [<env>] component of the on-disk cache address.  Because the
    rule set enters through {!Tech.Rules.to_string}, provenance that
    never reaches a verdict (source line positions, comments) does not
    split the cache. *)
val env_key : Tech.Rules.t -> config -> string

(** The interaction memo's environment: candidate cutoff
    ({!Interactions.max_dist}) × distance metric.  Memoised candidate
    lists depend on nothing else, so decks agreeing on those share one
    memo slot — on disk and warm. *)
val memo_env_key : Tech.Rules.t -> config -> string

(** Would this engine's warm state for the {e primary} deck be valid
    for [rules]/[config]? *)
val same_env : t -> Tech.Rules.t -> config -> bool

(** Run the pipeline on an already-parsed file.  One elaboration, one
    net structure, one interaction worklist per [max_dist] class — then
    one report per deck plus the merged view.  For a single-deck
    engine, [primary] of the result is identical in report bytes,
    metrics shape, and trace shape to the historical single-deck
    engine, cold or warm.  [metrics] lets the caller supply (and keep)
    the accumulator; one is created per check otherwise.  [trace]
    records ["stage"]/["symbol"]/["shard"] spans plus
    ["cache"]-category spans around cache traffic.  [progress] is
    called with each stage name as it starts. *)
val check :
  ?metrics:Metrics.t -> ?trace:Trace.t -> ?progress:(string -> unit) ->
  t -> Cif.Ast.file -> (multi, string) Stdlib.result

(** Parse CIF text and {!check}. *)
val check_string :
  ?metrics:Metrics.t -> ?trace:Trace.t -> ?progress:(string -> unit) ->
  t -> string -> (multi, string) Stdlib.result

(** Persist the session's warm interaction memo slots to the cache
    directory now.  {!check} already saves after every run, so this is
    a no-op in steady state (and always before the first check or
    without a cache directory); orderly teardown paths — the serve
    daemon's shutdown — call it so nothing warm is lost even if the
    last check's write raced a concurrent writer. *)
val flush : t -> unit

(** One-line summary: error/warning counts and net count. *)
val pp_summary : Format.formatter -> result -> unit

(** {2 Shared pieces}

    Exposed for tests and the serve daemon. *)

(** The non-geometric construction rules as report violations. *)
val erc_violations : Netlist.Net.t -> Report.violation list

(** Structural fingerprint of one definition: name, device kind,
    element geometry/layers/nets, calls with transforms. *)
val fingerprint : Model.symbol -> string

(** Per-symbol-id fingerprint of each definition {e subtree} (own
    fingerprint folded with callees'), used to key the persistent
    interaction memo by content. *)
val subtree_fingerprints : Model.t -> (int, string) Hashtbl.t
