(* Span tracing: a low-overhead append buffer of complete spans,
   exported as Chrome trace-event JSON.

   Events are stored in a growable array so recording a span costs two
   clock reads and one store on the hot path.  Per-domain buffers are
   merged in shard order after the join, which keeps the event list —
   and therefore the exported JSON structure — deterministic for a
   given (design, jobs) pair; only the timestamps vary run to run. *)

let now_ns () = Monotonic_clock.now ()

type event = {
  e_name : string;
  e_cat : string;
  e_ph : [ `Complete | `Instant ];
  e_ts_ns : int64;
  e_dur_ns : int64;  (** 0 for instants *)
  e_tid : int;
  e_args : (string * string) list;
}

type t = {
  tid : int;
  mutable events : event array;
  mutable len : int;
}

let dummy =
  { e_name = ""; e_cat = ""; e_ph = `Instant; e_ts_ns = 0L; e_dur_ns = 0L; e_tid = 0;
    e_args = [] }

let create ?(tid = 0) () = { tid; events = Array.make 64 dummy; len = 0 }

let push t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len
let events t = Array.to_list (Array.sub t.events 0 t.len)

let record t ?(cat = "") ?(args = []) name ~ts_ns ~dur_ns =
  push t
    { e_name = name; e_cat = cat; e_ph = `Complete; e_ts_ns = ts_ns; e_dur_ns = dur_ns;
      e_tid = t.tid; e_args = args }

let instant t ?(cat = "") ?(args = []) name =
  match t with
  | None -> ()
  | Some t ->
    push t
      { e_name = name; e_cat = cat; e_ph = `Instant; e_ts_ns = now_ns (); e_dur_ns = 0L;
        e_tid = t.tid; e_args = args }

let with_span t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some t ->
    let t0 = now_ns () in
    let finally () = record t ?cat ?args name ~ts_ns:t0 ~dur_ns:(Int64.sub (now_ns ()) t0) in
    Fun.protect ~finally f

let merge_into ~into src =
  for i = 0 to src.len - 1 do
    push into src.events.(i)
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ts/dur are microseconds in the trace-event schema; emit three
   decimals to keep nanosecond resolution.  Timestamps are rebased to
   the earliest event so the numbers stay small. *)
let us_of_ns ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let to_chrome_json ?(tool_version = Version.version) t =
  let base =
    let m = ref Int64.max_int in
    for i = 0 to t.len - 1 do
      if Int64.compare t.events.(i).e_ts_ns !m < 0 then m := t.events.(i).e_ts_ns
    done;
    if !m = Int64.max_int then 0L else !m
  in
  let buf = Buffer.create (256 + (t.len * 96)) in
  let add = Buffer.add_string buf in
  add "{\"traceEvents\":[";
  for i = 0 to t.len - 1 do
    if i > 0 then add ",";
    let e = t.events.(i) in
    add
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s"
         (json_escape e.e_name)
         (json_escape (if e.e_cat = "" then "dic" else e.e_cat))
         (match e.e_ph with `Complete -> "X" | `Instant -> "i")
         (us_of_ns (Int64.sub e.e_ts_ns base)));
    (match e.e_ph with
    | `Complete -> add (Printf.sprintf ",\"dur\":%s" (us_of_ns e.e_dur_ns))
    | `Instant -> add ",\"s\":\"t\"");
    add (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.e_tid);
    if e.e_args <> [] then begin
      add ",\"args\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then add ",";
          add (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        e.e_args;
      add "}"
    end;
    add "}"
  done;
  add
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"dicheck\",\"version\":\"%s\"}}"
       (json_escape tool_version));
  Buffer.contents buf
