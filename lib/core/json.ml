type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> Buffer.add_string buf (quote s)
    | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (quote k);
          Buffer.add_char buf ':';
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of int * string

let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  (* Encode a Unicode code point as UTF-8. *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub src !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "truncated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> (
            let cp = try hex4 () with _ -> fail "bad \\u escape" in
            (* Surrogate pair: combine with the low half if present. *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
               && src.[!pos] = '\\' && src.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = try hex4 () with _ -> fail "bad \\u escape" in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_codepoint buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                add_codepoint buf cp;
                add_codepoint buf lo
              end
            end
            else add_codepoint buf cp)
          | _ -> fail "unknown escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let consume pred =
      while (match peek () with Some c -> pred c | None -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (fun c -> c >= '0' && c <= '9');
    if peek () = Some '.' then begin
      advance ();
      consume (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      consume (fun c -> c >= '0' && c <= '9')
    | _ -> ());
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 -> Some (int_of_float f)
  | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr vs -> Some vs | _ -> None
