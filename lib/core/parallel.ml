(* The cost-balanced domain scheduler shared by every parallel stage.

   This began life inside the interaction sweep (the first stage to
   shard across domains) and was lifted out unchanged when the
   element-check and device-recognition sweeps joined it: an ordered
   worklist is cut into contiguous chunks sized from a caller-supplied
   weight estimate, and worker domains claim chunks from an [Atomic]
   counter until the queue is dry.

   Contiguity is the determinism lever: results are identified by chunk
   index, so the caller can reassemble them in worklist order and the
   output is byte-identical to the serial run at every [jobs] value —
   which domain evaluated which chunk is the only thing that varies.

   Each worker gets its own [Metrics.t] and [Trace.t] (merged into the
   caller's after the join, in tid order), and spawned workers wrap
   their whole drain in [Metrics.count_gc] against their per-domain
   buffer.  [Gc.quick_stat] is domain-local, so this is what makes
   [gc.*_words.<stage>] honest for a parallel stage: the caller's
   [Metrics.time_stage] covers the calling domain (including its own
   tid-0 share of the work), each worker counts its own churn, and the
   merge sums them.  Tid 0 deliberately does {e not} re-count — it runs
   on the calling domain, inside the caller's own counter. *)

let run ?metrics ?trace ~jobs ~stage ~weight ~n ~worker ~chunk ~merge () =
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + weight i
  done;
  (* Roughly 8 chunks per domain: small enough that one expensive chunk
     cannot strand the queue, large enough to keep claims cheap. *)
  let target = max 1 (!total / (jobs * 8)) in
  let cuts = ref [ 0 ] and acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + weight i;
    if !acc >= target && i + 1 < n then begin
      cuts := (i + 1) :: !cuts;
      acc := 0
    end
  done;
  let starts = Array.of_list (List.rev (n :: !cuts)) in
  let nchunks = Array.length starts - 1 in
  let next = Atomic.make 0 in
  (* Each cell is written by exactly one domain (the unique claimant of
     that chunk); [Domain.join] publishes the writes. *)
  let results = Array.make nchunks None in
  let work tid () =
    let st = worker tid in
    let dm = Option.map (fun _ -> Metrics.create ()) metrics in
    let dt = Option.map (fun _ -> Trace.create ~tid ()) trace in
    let args =
      [ ("stage", stage); ("tasks", string_of_int n);
        ("chunks", string_of_int nchunks) ]
    in
    let drain_all () =
      Trace.with_span dt ~cat:"shard" ~args (Printf.sprintf "shard[%d]" tid)
        (fun () ->
          let rec drain () =
            let c = Atomic.fetch_and_add next 1 in
            if c < nchunks then begin
              results.(c) <- Some (chunk st dm dt ~lo:starts.(c) ~hi:starts.(c + 1));
              drain ()
            end
          in
          drain ())
    in
    (match dm with
    | Some m when tid > 0 -> Metrics.count_gc m stage drain_all
    | _ -> drain_all ());
    (st, dm, dt)
  in
  let spawned = List.init (jobs - 1) (fun i -> Domain.spawn (work (i + 1))) in
  let first = work 0 () in
  let shards = first :: List.map Domain.join spawned in
  List.iter
    (fun (st, dm, dt) ->
      merge st;
      (match (metrics, dm) with
      | Some m, Some d -> Metrics.merge_into ~into:m d
      | _ -> ());
      (match (trace, dt) with
      | Some tr, Some d -> Trace.merge_into ~into:tr d
      | _ -> ()))
    shards;
  Array.to_list (Array.map Option.get results)
