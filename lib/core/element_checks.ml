let width_rule_name layer = "width." ^ Tech.Layer.to_cif layer

let check_element rules ~context (e : Model.element) =
  let w = Tech.Rules.min_width rules e.Model.layer in
  let rule = width_rule_name e.Model.layer in
  let loc = e.Model.loc in
  match e.Model.shape with
  | Model.S_box r ->
    let m = min (Geom.Rect.width r) (Geom.Rect.height r) in
    if m < w then
      [ Report.error ~stage:Report.Elements ~rule ~where:r ~context ?loc
          (Printf.sprintf "box is %d wide; %d required" m w) ]
    else []
  | Model.S_wire wire ->
    if wire.Geom.Wire.width < w then
      [ Report.error ~stage:Report.Elements ~rule ~where:e.Model.bbox ~context ?loc
          (Printf.sprintf "wire is %d wide; %d required" wire.Geom.Wire.width w) ]
    else []
  | Model.S_poly _ ->
    (* The "more general purpose polygon width routine". *)
    let region = Geom.Region.of_rects e.Model.rects in
    Geom.Measure.min_width ~metric:Geom.Measure.Orthogonal ~width:w region
    |> List.map (fun (v : Geom.Measure.violation) ->
           Report.error ~stage:Report.Elements ~rule ~where:v.Geom.Measure.where ~context
             ?loc
             (Printf.sprintf "polygon narrows to %.0f; %d required" (Geom.Measure.actual v)
                w))

let check_symbol rules (s : Model.symbol) =
  if Model.is_device s then []
  else
    let context = s.Model.sname in
    List.concat_map
      (fun (e : Model.element) ->
        if Tech.Layer.is_interconnect e.Model.layer then check_element rules ~context e
        else
          [ Report.error ~stage:Report.Integrity
              ~rule:("placement." ^ Tech.Layer.to_cif e.Model.layer)
              ~where:e.Model.bbox ~context ?loc:e.Model.loc
              (Printf.sprintf "%s geometry belongs inside a device symbol"
                 (Tech.Layer.to_cif e.Model.layer)) ])
      s.Model.elements

let check (m : Model.t) =
  List.concat_map (check_symbol m.Model.rules) m.Model.symbols
