type severity = Error | Warning | Note

type diagnostic = {
  code : string;
  severity : severity;
  message : string;
  loc : Cif.Loc.t option;
  subject : string;
}

let all_codes =
  [ ("R001", "A layer's minimum width is odd: skeleton erosion uses width/2, so the \
              legal-width + skeletal-connection theorem (paper Fig 4) loses a unit and \
              real errors can slip through unchecked.");
    ("R002", "A rule value is zero or negative; every width, spacing, and surround must \
              be a positive distance.");
    ("R003", "A rule value is not a multiple of lambda/4; off-quantum rules invite \
              geometry the integer skeleton and gap kernels cannot represent exactly.");
    ("R004", "contact_size + 2*contact_surround is below a conductor's minimum width, \
              so every legal contact landing pad violates that layer's width rule.");
    ("R005", "Directed spacing overrides for one layer pair disagree; the Fig 12 matrix \
              is symmetric, so one of the numbers is silently ignored.");
    ("R006", "A spacing override targets a No-rule or Device-checked matrix cell; the \
              value can never be consulted by the interaction stage.");
    ("R007", "A directed same-layer key (space_X_X) is shadowed by the canonical \
              space_X rule and ignored.");
    ("R008", "A rule-file line names a key the rule set does not define.");
    ("R009", "A rule-file key appears twice; the first occurrence wins and the second \
              is dead.");
    ("R010", "A rule-file line is not of the form \"key value\" after comment \
              stripping.");
    ("R011", "A rule value is not a positive integer literal.");
    ("R012", "The rule deck is unsatisfiable: the arithmetic closure of the entries \
              derives a bound no geometry can meet (e.g. a minimal bonding pad that \
              violates the metal width rule, or a same-net spacing above the \
              different-net one).");
    ("R013", "A deck entry is redundant: its value is already implied by other \
              entries (a lambda default, an equal directed spelling, or the \
              effective matrix cell), so deleting it changes nothing.");
    ("R014", "A directed override family is non-monotone: the winning spelling is \
              strictly smaller than a written-but-shadowed one, silently weakening \
              the check and risking missed errors.");
    ("R015", "Cross-deck subsumption verdict: one deck's constraints dominate \
              another's pointwise, so a design clean under the stronger deck is \
              provably clean under the weaker one.");
    ("D001", "A call names a symbol number with no DS definition; elaboration fails and \
              the hierarchical net list (Fig 9) cannot be built.");
    ("D002", "Symbol calls form a cycle; a hierarchical design must be a DAG.");
    ("D003", "A symbol definition is never instantiated from the top level; it is dead \
              weight and is not checked in any context.");
    ("D004", "Two definitions share one symbol number; every call to it is ambiguous.");
    ("D005", "An element is narrower than its layer minimum width, so erosion by \
              skeleton_half leaves a degenerate skeleton: connections through it are \
              invisible and its errors go unchecked (paper §3 / Fig 4).");
    ("D006", "One net label names skeletally-disjoint element groups inside a call-free \
              definition; the label asserts a connection the geometry does not make.");
    ("D007", "Two calls place the same symbol at the identical transform; the duplicate \
              is either dead weight or a stacking error.");
    ("D008", "A call translation exceeds 2^40 layout units in magnitude; composed \
              coordinates risk integer overflow.");
    ("D009", "A device definition lacks a constituent mask layer its kind requires \
              (e.g. a transistor with no poly-diffusion crossing, Fig 5).") ]

let explain code = List.assoc_opt code all_codes

let mk ?loc code severity subject message = { code; severity; message; loc; subject }

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let compare_diagnostic a b =
  let locp = function
    | None -> (0, 0, 0)
    | Some l -> (1, l.Cif.Loc.line, l.Cif.Loc.col)
  in
  compare
    (locp a.loc, a.code, a.subject, a.message)
    (locp b.loc, b.code, b.subject, b.message)

let sort diags = List.sort compare_diagnostic diags
let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s %s: %s [%s]" d.code (severity_name d.severity) d.message d.subject

let render ~src d =
  match d.loc with
  | Some l ->
    Format.asprintf "%s:%d:%d: %a" src l.Cif.Loc.line l.Cif.Loc.col pp_diagnostic d
  | None -> Format.asprintf "%s: %a" src pp_diagnostic d

let to_violations diags =
  List.map
    (fun d ->
      let make =
        match d.severity with
        | Error -> Report.error
        | Warning -> Report.warning
        | Note -> Report.info
      in
      make ~stage:Report.Integrity ~rule:("lint." ^ d.code) ~context:d.subject
        ?loc:d.loc d.message)
    diags

let record_metrics m diags =
  Metrics.incr ~by:(List.length diags) m "lint.diagnostics";
  Metrics.incr ~by:(List.length (List.filter (fun d -> d.severity = Error) diags)) m
    "lint.errors";
  Metrics.incr ~by:(List.length (List.filter (fun d -> d.severity = Warning) diags)) m
    "lint.warnings";
  List.iter (fun d -> Metrics.incr m ("lint.code." ^ d.code)) diags

(* Waiver filtering happens at reporting time, never before caching:
   caches hold the unfiltered diagnostics, so the same deck with and
   without waiver comments replays the same cache entries. *)
let partition_waived ~waivers diags =
  List.partition (fun d -> not (List.mem d.code waivers)) diags

let suppressed_counts diags =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.code (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.code)))
    diags;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Rule-deck pass                                                      *)

(* The rule-file key behind each layer's minimum width, so file-level
   lints can be relocated onto the defining line. *)
let width_key = function
  | Tech.Layer.Diffusion -> "width_diffusion"
  | Tech.Layer.Poly -> "width_poly"
  | Tech.Layer.Metal -> "width_metal"
  | Tech.Layer.Contact | Tech.Layer.Buried | Tech.Layer.Glass -> "contact_size"
  | Tech.Layer.Implant -> "width_poly"

let pair_name (a, b) =
  Printf.sprintf "space_%s_%s" (Tech.Rules.layer_name a) (Tech.Rules.layer_name b)

let check_deck (r : Tech.Rules.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* R001: odd minimum widths break the skeleton theorem. *)
  List.iter
    (fun layer ->
      let w = Tech.Rules.min_width r layer in
      if w mod 2 <> 0 then
        add
          (mk "R001" Error (width_key layer)
             (Printf.sprintf
                "minimum width %d on %s is odd: skeleton erosion truncates to %d and \
                 the legal-width + skeletal-connection theorem (Fig 4) loses a unit"
                w (Tech.Layer.to_cif layer) (w / 2))))
    Tech.Layer.routing;
  (* R002 / R003: value sanity over every rule, including pair overrides. *)
  let quantum =
    if r.Tech.Rules.lambda > 0 && r.Tech.Rules.lambda mod 4 = 0 then
      r.Tech.Rules.lambda / 4
    else 0
  in
  let check_value key v =
    if v <= 0 then
      add
        (mk "R002" Error key
           (Printf.sprintf "%s is %d: every rule value must be a positive distance" key v))
    else if key <> "lambda" && quantum > 0 && v mod quantum <> 0 then
      add
        (mk "R003" Warning key
           (Printf.sprintf "%s = %d is not a multiple of lambda/4 = %d" key v quantum))
  in
  List.iter (fun (key, v) -> check_value key v) (Tech.Rules.fields r);
  List.iter (fun (pair, v) -> check_value (pair_name pair) v) r.Tech.Rules.pair_spaces;
  (* R004: a minimal legal contact landing pad must satisfy the width rule. *)
  List.iter
    (fun layer ->
      let pad = r.Tech.Rules.contact_size + (2 * r.Tech.Rules.contact_surround) in
      let mw = Tech.Rules.min_width r layer in
      if pad < mw then
        add
          (mk "R004" Error "contact_surround"
             (Printf.sprintf
                "contact_size + 2*contact_surround = %d is below the %s minimum width \
                 %d: every legal contact landing pad violates the width rule"
                pad (Tech.Layer.to_cif layer) mw)))
    [ Tech.Layer.Diffusion; Tech.Layer.Poly; Tech.Layer.Metal ];
  (* R005 / R006 / R007: directed pair overrides against the Fig 12 matrix. *)
  let cells =
    List.sort_uniq compare
      (List.map
         (fun ((a, b), _) ->
           if Tech.Layer.index a <= Tech.Layer.index b then (a, b) else (b, a))
         r.Tech.Rules.pair_spaces)
  in
  List.iter
    (fun (lo, hi) ->
      if Tech.Layer.equal lo hi then
        add
          (mk "R007" Warning (pair_name (lo, hi))
             (Printf.sprintf "%s duplicates the canonical space_%s rule and is ignored"
                (pair_name (lo, hi)) (Tech.Rules.layer_name lo)))
      else
        match Tech.Interaction.entry r lo hi with
        | Tech.Interaction.No_rule ->
          add
            (mk "R006" Error (pair_name (lo, hi))
               (Printf.sprintf
                  "no rule relates %s and %s (No-rule matrix cell): the spacing \
                   override is never consulted"
                  (Tech.Layer.to_cif lo) (Tech.Layer.to_cif hi)))
        | Tech.Interaction.Device_checked ->
          add
            (mk "R006" Error (pair_name (lo, hi))
               (Printf.sprintf
                  "%s-%s interactions are checked inside device symbols \
                   (Device-checked matrix cell): the spacing override is never \
                   consulted"
                  (Tech.Layer.to_cif lo) (Tech.Layer.to_cif hi)))
        | Tech.Interaction.Space _ ->
          let asc = Tech.Rules.pair_space r lo hi
          and desc = Tech.Rules.pair_space r hi lo
          and base = Tech.Rules.cross_layer_space r lo hi in
          let values =
            List.sort_uniq Int.compare
              (List.filter_map Fun.id [ asc; desc; base ])
          in
          if List.length values > 1 then
            add
              (mk "R005" Error (pair_name (lo, hi))
                 (Printf.sprintf
                    "%s-%s spacing is asymmetric (%s): the matrix is symmetric, so \
                     only %d is checked"
                    (Tech.Layer.to_cif lo) (Tech.Layer.to_cif hi)
                    (String.concat " vs "
                       (List.filter_map
                          (fun (name, v) ->
                            Option.map (fun v -> Printf.sprintf "%s %d" name v) v)
                          [ (pair_name (lo, hi), asc); (pair_name (hi, lo), desc);
                            ("canonical", base) ]))
                    (match
                       Tech.Rules.cell_space_override r lo hi
                     with
                    | Some v -> v
                    | None -> Option.value ~default:0 base))))
    cells;
  sort !diags

let check_deck_source src =
  let entries, malformed = Tech.Rules.scan src in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let at line = Some (Cif.Loc.make ~line ~col:1) in
  List.iter
    (fun (line, text) ->
      add
        (mk ?loc:(at line) "R010" Error text
           (Printf.sprintf "malformed line: %S (expected \"key value\")" text)))
    malformed;
  (* First occurrence of a duplicated key wins, matching List.assoc
     semantics; later ones are dead. *)
  let seen = Hashtbl.create 16 in
  let keep =
    List.filter
      (fun (e : Tech.Rules.entry_src) ->
        match Hashtbl.find_opt seen e.Tech.Rules.key with
        | Some first ->
          add
            (mk ?loc:(at e.Tech.Rules.eline) "R009" Error e.Tech.Rules.key
               (Printf.sprintf
                  "duplicate key %S: the first definition on line %d wins, this one \
                   is dead"
                  e.Tech.Rules.key first));
          false
        | None ->
          Hashtbl.replace seen e.Tech.Rules.key e.Tech.Rules.eline;
          true)
      entries
  in
  let good =
    List.filter
      (fun (e : Tech.Rules.entry_src) ->
        let known =
          List.mem e.Tech.Rules.key Tech.Rules.known_keys
          || Tech.Rules.pair_key e.Tech.Rules.key <> None
        in
        if not known then begin
          add
            (mk ?loc:(at e.Tech.Rules.eline) "R008" Error e.Tech.Rules.key
               (Printf.sprintf "unknown rule key %S" e.Tech.Rules.key));
          false
        end
        else if
          e.Tech.Rules.key <> "name"
          && match int_of_string_opt e.Tech.Rules.value with
             | Some n -> n <= 0
             | None -> true
        then begin
          add
            (mk ?loc:(at e.Tech.Rules.eline) "R011" Error e.Tech.Rules.key
               (Printf.sprintf "%s: expected a positive integer, got %S"
                  e.Tech.Rules.key e.Tech.Rules.value));
          false
        end
        else true)
      keep
  in
  let deck =
    (* Carry the deck's own [# lint: allow] waivers, exactly as the
       strict loader ([Tech.Rules.of_string]) does, so lint and check
       honor the same suppressions. *)
    Option.map
      (fun t -> { t with Tech.Rules.waivers = Tech.Rules.scan_waivers src })
      (Result.to_option (Tech.Rules.of_entries good))
  in
  let deck_diags =
    match deck with
    | None -> []
    | Some t ->
      (* Relocate record-level deck lints onto the line that defined
         the offending key, when the file has one. *)
      List.map
        (fun d ->
          match d.loc with
          | Some _ -> d
          | None -> (
            match
              List.find_opt (fun (e : Tech.Rules.entry_src) -> e.Tech.Rules.key = d.subject) good
            with
            | Some e -> { d with loc = at e.Tech.Rules.eline }
            | None -> d))
        (check_deck t)
  in
  (deck, sort (!diags @ deck_diags))

(* ------------------------------------------------------------------ *)
(* Design pass: syntax tree                                            *)

let sym_label (s : Cif.Ast.symbol) =
  match s.Cif.Ast.name with
  | Some n -> n
  | None -> Printf.sprintf "symbol %d" s.Cif.Ast.id

(* Composed coordinates are products/sums of translations; past 2^40
   units a few levels of instancing can overflow 63-bit ints. *)
let overflow_bound = 1 lsl 40

let check_ast (file : Cif.Ast.file) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* D004 + the id table (first definition wins, like Ast.find_symbol). *)
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (s : Cif.Ast.symbol) ->
      match Hashtbl.find_opt by_id s.Cif.Ast.id with
      | Some _ ->
        add
          (mk ?loc:s.Cif.Ast.sym_loc "D004" Error (sym_label s)
             (Printf.sprintf "symbol %d defined more than once: calls to it are \
                              ambiguous"
                s.Cif.Ast.id))
      | None -> Hashtbl.replace by_id s.Cif.Ast.id s)
    file.Cif.Ast.symbols;
  (* D001 / D007 / D008, per call scope. *)
  let scan_calls owner calls =
    let rec go earlier = function
      | [] -> ()
      | (c : Cif.Ast.call) :: rest ->
        if not (Hashtbl.mem by_id c.Cif.Ast.callee) then
          add
            (mk ?loc:c.Cif.Ast.call_loc "D001" Error owner
               (Printf.sprintf "%s calls undefined symbol %d" owner c.Cif.Ast.callee));
        let o = Geom.Transform.apply_pt c.Cif.Ast.transform Geom.Pt.zero in
        if abs o.Geom.Pt.x > overflow_bound || abs o.Geom.Pt.y > overflow_bound then
          add
            (mk ?loc:c.Cif.Ast.call_loc "D008" Error owner
               (Printf.sprintf
                  "call to symbol %d translates to (%d, %d): beyond 2^40 units, \
                   composed coordinates risk overflow"
                  c.Cif.Ast.callee o.Geom.Pt.x o.Geom.Pt.y));
        if
          List.exists
            (fun (p : Cif.Ast.call) ->
              p.Cif.Ast.callee = c.Cif.Ast.callee
              && Geom.Transform.equal p.Cif.Ast.transform c.Cif.Ast.transform)
            earlier
        then
          add
            (mk ?loc:c.Cif.Ast.call_loc "D007" Warning owner
               (Printf.sprintf "%s instantiates symbol %d twice at the same transform"
                  owner c.Cif.Ast.callee));
        go (c :: earlier) rest
    in
    go [] calls
  in
  List.iter (fun (s : Cif.Ast.symbol) -> scan_calls (sym_label s) s.Cif.Ast.calls)
    file.Cif.Ast.symbols;
  scan_calls "TOP" file.Cif.Ast.top_calls;
  (* D002: collect every cycle (check_acyclic stops at the first). *)
  let state = Hashtbl.create 16 in
  let reported = Hashtbl.create 4 in
  let rec visit stack id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Visiting ->
      if not (Hashtbl.mem reported id) then begin
        Hashtbl.replace reported id ();
        (* [stack] is most-recent-first; the cycle is the prefix up to
           and including [id], reversed into call order. *)
        let rec upto acc = function
          | [] -> acc
          | x :: rest -> if x = id then x :: acc else upto (x :: acc) rest
        in
        let members = upto [] stack in
        let name i =
          match Hashtbl.find_opt by_id i with
          | Some s -> sym_label s
          | None -> Printf.sprintf "symbol %d" i
        in
        let loc = Option.bind (Hashtbl.find_opt by_id id) (fun s -> s.Cif.Ast.sym_loc) in
        add
          (mk ?loc "D002" Error (name id)
             (Printf.sprintf "call cycle: %s -> %s"
                (String.concat " -> " (List.map name members))
                (name id)))
      end
    | None -> (
      match Hashtbl.find_opt by_id id with
      | None -> ()
      | Some s ->
        Hashtbl.replace state id `Visiting;
        List.iter
          (fun (c : Cif.Ast.call) -> visit (id :: stack) c.Cif.Ast.callee)
          s.Cif.Ast.calls;
        Hashtbl.replace state id `Done)
  in
  List.iter (fun (c : Cif.Ast.call) -> visit [] c.Cif.Ast.callee) file.Cif.Ast.top_calls;
  List.iter (fun (s : Cif.Ast.symbol) -> visit [] s.Cif.Ast.id) file.Cif.Ast.symbols;
  (* D003: definitions unreachable from a non-empty top level.  A file
     with no top-level calls is a library; everything would be
     "unused", so the lint stays silent there. *)
  if file.Cif.Ast.top_calls <> [] then begin
    let reachable = Hashtbl.create 16 in
    let rec reach id =
      if not (Hashtbl.mem reachable id) then begin
        Hashtbl.replace reachable id ();
        match Hashtbl.find_opt by_id id with
        | None -> ()
        | Some s ->
          List.iter (fun (c : Cif.Ast.call) -> reach c.Cif.Ast.callee) s.Cif.Ast.calls
      end
    in
    List.iter (fun (c : Cif.Ast.call) -> reach c.Cif.Ast.callee) file.Cif.Ast.top_calls;
    List.iter
      (fun (s : Cif.Ast.symbol) ->
        if not (Hashtbl.mem reachable s.Cif.Ast.id) then
          add
            (mk ?loc:s.Cif.Ast.sym_loc "D003" Warning (sym_label s)
               (Printf.sprintf "%s is never instantiated from the top level"
                  (sym_label s))))
      file.Cif.Ast.symbols
  end;
  sort !diags

(* ------------------------------------------------------------------ *)
(* Design pass: elaborated model                                       *)

let required_layers = function
  | Tech.Device.Enhancement -> [ Tech.Layer.Poly; Tech.Layer.Diffusion ]
  | Tech.Device.Depletion -> [ Tech.Layer.Poly; Tech.Layer.Diffusion; Tech.Layer.Implant ]
  | Tech.Device.Contact_cut -> [ Tech.Layer.Contact; Tech.Layer.Metal ]
  | Tech.Device.Butting_contact ->
    [ Tech.Layer.Contact; Tech.Layer.Metal; Tech.Layer.Poly; Tech.Layer.Diffusion ]
  | Tech.Device.Buried_contact ->
    [ Tech.Layer.Buried; Tech.Layer.Poly; Tech.Layer.Diffusion ]
  | Tech.Device.Resistor -> [ Tech.Layer.Diffusion ]
  | Tech.Device.Pad -> [ Tech.Layer.Glass; Tech.Layer.Metal ]
  | Tech.Device.Checked -> []

(* The model pass is a per-definition fact: each D-code below looks at
   one symbol's own elements (plus the deck rules the model was
   elaborated under), never at its callers or callees' geometry — which
   is what lets the engine cache these diagnostics under per-definition
   fingerprints and replay them in warm sessions. *)
let check_model_symbol (model : Model.t) (s : Model.symbol) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let rules = model.Model.rules in
  (let has l =
        List.exists (fun (e : Model.element) -> Tech.Layer.equal e.Model.layer l)
          s.Model.elements
      in
      if Model.is_device s then begin
        (* D009: device definitions missing their constituent layers. *)
        match s.Model.device with
        | None -> ()
        | Some kind ->
          let missing = List.filter (fun l -> not (has l)) (required_layers kind) in
          if missing <> [] then
            add
              (mk ?loc:s.Model.sloc "D009" Error s.Model.sname
                 (Printf.sprintf "%s device %s lacks constituent layer(s) %s"
                    (Tech.Device.to_tag kind) s.Model.sname
                    (String.concat ", " (List.map Tech.Layer.to_cif missing))));
          if
            Tech.Device.equal kind Tech.Device.Contact_cut
            && (not (has Tech.Layer.Poly))
            && not (has Tech.Layer.Diffusion)
          then
            add
              (mk ?loc:s.Model.sloc "D009" Error s.Model.sname
                 (Printf.sprintf "contact device %s has no landing conductor (NP or ND)"
                    s.Model.sname));
          if Tech.Device.is_transistor kind && has Tech.Layer.Poly && has Tech.Layer.Diffusion
          then begin
            let bbs l =
              List.filter_map
                (fun (e : Model.element) ->
                  if Tech.Layer.equal e.Model.layer l then Some e.Model.bbox else None)
                s.Model.elements
            in
            let crossing =
              List.exists
                (fun p ->
                  List.exists (fun d -> Geom.Rect.overlaps ~a:p ~b:d)
                    (bbs Tech.Layer.Diffusion))
                (bbs Tech.Layer.Poly)
            in
            if not crossing then
              add
                (mk ?loc:s.Model.sloc "D009" Error s.Model.sname
                   (Printf.sprintf
                      "transistor %s has no poly-diffusion crossing (Fig 5)"
                      s.Model.sname))
          end
      end
      else begin
        (* D005: drawn geometry below the layer minimum erodes to a
           degenerate skeleton. *)
        List.iter
          (fun (e : Model.element) ->
            if List.exists (Tech.Layer.equal e.Model.layer) Tech.Layer.routing then begin
              let mw = Tech.Rules.min_width rules e.Model.layer in
              let drawn =
                match e.Model.shape with
                | Model.S_box r -> min (Geom.Rect.width r) (Geom.Rect.height r)
                | Model.S_wire w -> w.Geom.Wire.width
                | Model.S_poly _ ->
                  min (Geom.Rect.width e.Model.bbox) (Geom.Rect.height e.Model.bbox)
              in
              if drawn < mw then
                add
                  (mk ?loc:e.Model.loc "D005" Warning s.Model.sname
                     (Printf.sprintf
                        "element %d on %s in %s is %d wide (minimum %d): it erodes to \
                         a degenerate skeleton, hiding its connections from the \
                         checker"
                        e.Model.eid
                        (Tech.Layer.to_cif e.Model.layer)
                        s.Model.sname drawn mw))
            end)
          s.Model.elements;
        (* D006: net-label reuse across skeletally-disjoint same-layer
           groups.  Only in call-free definitions: with instances
           around, the label may legitimately connect through callee
           geometry. *)
        if s.Model.calls = [] then begin
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (e : Model.element) ->
              match e.Model.net_label with
              | Some l when String.length l > 0 && l.[String.length l - 1] <> '!' ->
                let key = (l, Tech.Layer.index e.Model.layer) in
                Hashtbl.replace tbl key
                  (e :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
              | _ -> ())
            s.Model.elements;
          let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
          List.iter
            (fun ((label, li) as key) ->
              let elems = List.rev (Hashtbl.find tbl key) in
              if List.length elems > 1 then begin
                let touches (a : Model.element) (b : Model.element) =
                  List.exists
                    (fun ra ->
                      List.exists (fun rb -> Geom.Rect.touches ~a:ra ~b:rb) b.Model.skeleton)
                    a.Model.skeleton
                in
                let rec components pending acc =
                  match pending with
                  | [] -> acc
                  | e :: rest ->
                    let rec grow comp rest =
                      let more, rest' =
                        List.partition (fun x -> List.exists (fun c -> touches c x) comp) rest
                      in
                      if more = [] then rest' else grow (more @ comp) rest'
                    in
                    components (grow [ e ] rest) (acc + 1)
                in
                let n = components elems 0 in
                if n > 1 then
                  let layer = List.nth Tech.Layer.all li in
                  add
                    (mk ?loc:(List.hd elems).Model.loc "D006" Warning label
                       (Printf.sprintf
                          "net %S labels %d skeletally-disjoint element groups on %s \
                           in %s"
                          label n (Tech.Layer.to_cif layer) s.Model.sname))
              end)
            keys
        end
      end);
  sort !diags

let check_model (model : Model.t) =
  sort (List.concat_map (check_model_symbol model) model.Model.symbols)

let check_design rules file =
  let ast_diags = check_ast file in
  let model_diags =
    match Model.elaborate rules file with
    | Ok (model, _) -> check_model model
    | Error _ -> []
  in
  sort (ast_diags @ model_diags)
