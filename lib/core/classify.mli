(** Fig 1 classification: real errors flagged, real errors missed, and
    false errors.

    Synthetic workloads from [layoutgen] inject known defects and
    record them in a ground-truth journal.  Reported findings (from
    either checker) are matched against the journal by rule family and
    location; unmatched findings are false errors, unmatched journal
    entries are unchecked (missed) errors.  This makes the paper's
    headline claim — flat checkers produce 10 or more false errors per
    real one, the topology-aware checker removes almost all of them —
    measurable.

    {2 Invariants}

    - Matching is one-to-one: each truth absorbs at most one finding
      and each finding discharges at most one truth, so
      [flagged + missed] partitions the truths and
      [flagged + false_findings = findings_total] partitions the
      findings.
    - Classification looks only at (family, location); it is
      insensitive to report order, which is what lets the parallel
      checker's output be compared across domain counts. *)

type truth = {
  t_families : string list;
      (** acceptable finding families, e.g. [\["width"\]] *)
  t_where : Geom.Rect.t option;  (** chip coordinates; [None] = global *)
  t_note : string;
}

type finding = {
  f_family : string;  (** first dotted component of the rule id *)
  f_where : Geom.Rect.t option;
  f_note : string;
}

(** Family of a report rule id ("width.NP" -> "width"). *)
val family_of_rule : string -> string

(** Findings from a DIC report (errors only). *)
val of_report : Report.t -> finding list

(** Findings from the flat baseline, with its rule names normalised to
    the same families ("polydiff" -> "integrity"). *)
val of_classic : Flatdrc.Classic.error list -> finding list

type outcome = {
  flagged : (truth * finding) list;  (** each truth with one matching finding *)
  missed : truth list;
  false_findings : finding list;
  findings_total : int;
}

(** [classify ~tolerance truths findings] — a finding matches a truth
    when the family is acceptable and the locations come within
    [tolerance] (Chebyshev), treating a missing location as matching
    anywhere. *)
val classify : tolerance:int -> truth list -> finding list -> outcome

(** The false-to-real ratio (false findings per flagged real error);
    [infinity] when nothing real was flagged but false errors exist. *)
val false_ratio : outcome -> float

val pp_outcome : Format.formatter -> outcome -> unit
