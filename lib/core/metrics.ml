(* Structured observability: stage timers, counters, histograms.

   Self-contained on purpose — the only outside dependency is the
   monotonic clock stub shipped with bechamel, so the checker library
   never drags in a JSON or metrics framework. *)

let now_ns () = Monotonic_clock.now ()

(* Power-of-two buckets: index i counts observations v with
   2^(i-1) <= v < 2^i (index 0: v = 0).  63 buckets cover any int64. *)
let bucket_count = 64

type hist = {
  mutable count : int;
  mutable sum_ns : int64;
  buckets : int array;
}

(* A sliding window: the last [w_cap] observations in a ring, plus the
   all-time observation count.  Quantiles computed over the ring are
   exact for the window, unlike the log₂ histogram sketches. *)
type window = {
  w_cap : int;
  w_data : float array;
  mutable w_len : int;  (* values currently held, <= w_cap *)
  mutable w_next : int;  (* next insertion slot *)
  mutable w_total : int;  (* observations ever, incl. evicted *)
}

type t = {
  mutable stages_rev : (string * float) list;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  cost_ns : (string, int64 ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  windows : (string, window) Hashtbl.t;
}

let create () =
  { stages_rev = []; counters = Hashtbl.create 16; hists = Hashtbl.create 4;
    cost_ns = Hashtbl.create 16; gauges = Hashtbl.create 4;
    windows = Hashtbl.create 4 }

(* ------------------------------------------------------------------ *)
(* Stage timers                                                        *)

let add_stage_seconds t name seconds = t.stages_rev <- (name, seconds) :: t.stages_rev

let stage_seconds t = List.rev t.stages_rev

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic (by < 0)";
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Defined here (not with the other stage-timer code) because they feed
   the GC deltas into counters.  [Gc.quick_stat] is domain-local in
   OCaml 5, so [count_gc] only sees the calling domain's churn — a
   parallel stage has each worker domain wrap its own slice in
   [count_gc] against its own per-domain [t], and [merge_into] then
   sums the [gc.*_words.<stage>] counters so the stage total covers
   every domain's allocation. *)
let count_gc t name f =
  let g0 = Gc.quick_stat () in
  let v = f () in
  let g1 = Gc.quick_stat () in
  incr ~by:(max 0 (int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words)))
    t ("gc.minor_words." ^ name);
  incr ~by:(max 0 (int_of_float (g1.Gc.major_words -. g0.Gc.major_words)))
    t ("gc.major_words." ^ name);
  v

let time_stage t name f =
  let t0 = now_ns () in
  let v = count_gc t name f in
  let dt = Int64.sub (now_ns ()) t0 in
  add_stage_seconds t name (Int64.to_float dt *. 1e-9);
  v

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let gauges t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Sliding windows                                                     *)

let default_window_capacity = 256

let window_of ?(capacity = default_window_capacity) t name =
  match Hashtbl.find_opt t.windows name with
  | Some w -> w
  | None ->
    let cap = max 1 capacity in
    let w = { w_cap = cap; w_data = Array.make cap 0.; w_len = 0; w_next = 0;
              w_total = 0 } in
    Hashtbl.add t.windows name w;
    w

let observe_window ?capacity t name v =
  let w = window_of ?capacity t name in
  w.w_data.(w.w_next) <- v;
  w.w_next <- (w.w_next + 1) mod w.w_cap;
  if w.w_len < w.w_cap then w.w_len <- w.w_len + 1;
  w.w_total <- w.w_total + 1

type window_snapshot = {
  w_count : int;
  w_capacity : int;
  w_values : float array;
}

let window_values w =
  Array.init w.w_len (fun i ->
      if w.w_len < w.w_cap then w.w_data.(i)
      else w.w_data.((w.w_next + i) mod w.w_cap))

let window t name =
  Option.map
    (fun w -> { w_count = w.w_total; w_capacity = w.w_cap; w_values = window_values w })
    (Hashtbl.find_opt t.windows name)

let window_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.windows [] |> List.sort String.compare

(* Nearest-rank quantile over the in-window values, exact. *)
let window_quantile s q =
  let n = Array.length s.w_values in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy s.w_values in
    Array.sort compare sorted;
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))
  end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let bucket_of ns =
  if Int64.compare ns 1L < 0 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while Int64.compare !v 0L > 0 do
      i := !i + 1;
      v := Int64.shift_right_logical !v 1
    done;
    min !i (bucket_count - 1)
  end

let hist_of t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = { count = 0; sum_ns = 0L; buckets = Array.make bucket_count 0 } in
    Hashtbl.add t.hists name h;
    h

let observe_ns t name ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let h = hist_of t name in
  h.count <- h.count + 1;
  h.sum_ns <- Int64.add h.sum_ns ns;
  let b = bucket_of ns in
  h.buckets.(b) <- h.buckets.(b) + 1

type histogram_snapshot = {
  h_count : int;
  h_sum_ns : int64;
  h_buckets : (int64 * int) list;
}

(* Inclusive upper bound of bucket i: 2^i - 1 (bucket 0 holds v = 0). *)
let bucket_le i = Int64.sub (Int64.shift_left 1L i) 1L

let snapshot (h : hist) =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (bucket_le i, h.buckets.(i)) :: !buckets
  done;
  { h_count = h.count; h_sum_ns = h.sum_ns; h_buckets = !buckets }

let histogram t name = Option.map snapshot (Hashtbl.find_opt t.hists name)

let hist_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists [] |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Cost attribution                                                    *)

let add_cost_ns t name ns =
  if Int64.compare ns 0L < 0 then invalid_arg "Metrics.add_cost_ns: ns < 0";
  match Hashtbl.find_opt t.cost_ns name with
  | Some r -> r := Int64.add !r ns
  | None -> Hashtbl.add t.cost_ns name (ref ns)

let cost_ns t name =
  match Hashtbl.find_opt t.cost_ns name with Some r -> !r | None -> 0L

let costs t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.cost_ns []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Descending by cost; name breaks ties so the ranking is total. *)
let top_costs t ~n =
  let all =
    costs t
    |> List.sort (fun (na, a) (nb, b) ->
           match Int64.compare b a with 0 -> String.compare na nb | c -> c)
  in
  List.filteri (fun i _ -> i < n) all

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)

let merge_into ~into src =
  into.stages_rev <- src.stages_rev @ into.stages_rev;
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src.counters;
  Hashtbl.iter
    (fun name (h : hist) ->
      let dst = hist_of into name in
      dst.count <- dst.count + h.count;
      dst.sum_ns <- Int64.add dst.sum_ns h.sum_ns;
      Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets)
    src.hists;
  Hashtbl.iter (fun name r -> add_cost_ns into name !r) src.cost_ns;
  (* Gauges are last-set values: the source's reading wins for the
     names it carries.  Merge in shard order for determinism. *)
  Hashtbl.iter (fun name r -> set_gauge into name !r) src.gauges;
  (* Windows: replay the source's surviving values, oldest first, into
     the destination ring (the destination's capacity wins when both
     exist), then carry over the already-evicted observation count. *)
  Hashtbl.iter
    (fun name w ->
      Array.iter (fun v -> observe_window ~capacity:w.w_cap into name v)
        (window_values w);
      let dst = window_of ~capacity:w.w_cap into name in
      dst.w_total <- dst.w_total + (w.w_total - w.w_len))
    src.windows

let count_report t (report : Report.t) =
  List.iter
    (fun (v : Report.violation) ->
      match v.Report.severity with
      | Report.Error ->
        incr t "report.errors";
        incr t ("errors." ^ Report.stage_name v.Report.stage)
      | Report.Warning -> incr t "report.warnings"
      | Report.Info -> incr t "report.infos")
    report.Report.violations

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Canonical float rendering for gauges/window stats: integral values
   print like integers, everything else to 6 significant digits.  The
   point is determinism for equal states, not full precision. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let window_stats_fields s =
  let n = Array.length s.w_values in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. s.w_values /. float_of_int n
  in
  let max_ = Array.fold_left Float.max 0. s.w_values in
  Printf.sprintf
    "\"capacity\":%d,\"count\":%d,\"len\":%d,\"mean\":%s,\"max\":%s,\
     \"p50\":%s,\"p95\":%s,\"p99\":%s"
    s.w_capacity s.w_count n (float_str mean) (float_str max_)
    (float_str (window_quantile s 0.5))
    (float_str (window_quantile s 0.95))
    (float_str (window_quantile s 0.99))

let to_json t =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\"stages\":[";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then add ",";
      add (Printf.sprintf "{\"name\":\"%s\",\"seconds\":%.9f}" (json_escape name) s))
    (stage_seconds t);
  add "],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (counters t);
  add "},\"histograms\":{";
  List.iteri
    (fun i name ->
      if i > 0 then add ",";
      let s = snapshot (Hashtbl.find t.hists name) in
      add (Printf.sprintf "\"%s\":{\"count\":%d,\"sum_ns\":%Ld,\"buckets\":[" (json_escape name)
             s.h_count s.h_sum_ns);
      List.iteri
        (fun j (le, n) ->
          if j > 0 then add ",";
          add (Printf.sprintf "{\"le_ns\":%Ld,\"count\":%d}" le n))
        s.h_buckets;
      add "]}")
    (hist_names t);
  add "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\"%s\":%s" (json_escape name) (float_str v)))
    (gauges t);
  add "},\"windows\":{";
  List.iteri
    (fun i name ->
      if i > 0 then add ",";
      let s = Option.get (window t name) in
      add (Printf.sprintf "\"%s\":{%s}" (json_escape name) (window_stats_fields s)))
    (window_names t);
  add "},\"costs\":{";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\"%s\":%Ld" (json_escape name) ns))
    (costs t);
  add "}}";
  Buffer.contents buf

(* Approximate quantile from the bucket upper bounds. *)
let quantile_ns s q =
  let target = int_of_float (ceil (q *. float_of_int s.h_count)) in
  let rec go acc = function
    | [] -> 0L
    | (le, n) :: rest -> if acc + n >= target then le else go (acc + n) rest
  in
  go 0 s.h_buckets

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  let stages = stage_seconds t in
  if stages <> [] then begin
    Format.fprintf ppf "stages:@,";
    List.iter (fun (name, s) -> Format.fprintf ppf "  %-28s %10.4f s@," name s) stages
  end;
  let cs = counters t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-38s %12d@," name v) cs
  end;
  let hs = hist_names t in
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun name ->
        let s = snapshot (Hashtbl.find t.hists name) in
        if s.h_count > 0 then
          let mean = Int64.to_float s.h_sum_ns /. float_of_int s.h_count in
          Format.fprintf ppf "  %-28s n=%d mean=%.0fns p50<=%Ldns p99<=%Ldns@," name
            s.h_count mean (quantile_ns s 0.5) (quantile_ns s 0.99))
      hs
  end;
  let gs = gauges t in
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-38s %12s@," name (float_str v)) gs
  end;
  let ws = window_names t in
  if ws <> [] then begin
    Format.fprintf ppf "windows:@,";
    List.iter
      (fun name ->
        let s = Option.get (window t name) in
        if Array.length s.w_values > 0 then
          Format.fprintf ppf "  %-28s n=%d (window %d) p50=%s p95=%s p99=%s@," name
            s.w_count (Array.length s.w_values)
            (float_str (window_quantile s 0.5))
            (float_str (window_quantile s 0.95))
            (float_str (window_quantile s 0.99)))
      ws
  end;
  let top = top_costs t ~n:10 in
  if top <> [] then begin
    Format.fprintf ppf "costs (top %d):@," (List.length top);
    List.iter
      (fun (name, ns) ->
        Format.fprintf ppf "  %-38s %12.3f ms@," name (Int64.to_float ns /. 1e6))
      top
  end;
  Format.fprintf ppf "@]"
