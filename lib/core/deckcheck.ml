(* Deck semantic analysis: the rule-implication closure (R012+) and
   the static immunity certificates the engine consults to prune the
   element and interaction stages.  See deckcheck.mli for the
   soundness argument. *)

let nlayers = List.length Tech.Layer.all
let layer_of_index = Array.of_list Tech.Layer.all

(* ------------------------------------------------------------------ *)
(* Deck closure — R012 / R013 / R014                                   *)

let diag ?loc code severity subject message =
  { Lint.code; severity; message; loc; subject }

let loc_of r key =
  Option.map (fun line -> Cif.Loc.make ~line ~col:1) (Tech.Rules.position r key)

let pair_name (a, b) =
  Printf.sprintf "space_%s_%s" (Tech.Rules.layer_name a) (Tech.Rules.layer_name b)

(* The unordered cross-layer cells the deck writes directed overrides
   for, ascending-index normalised. *)
let override_cells (r : Tech.Rules.t) =
  List.sort_uniq compare
    (List.map
       (fun ((a, b), _) ->
         if Tech.Layer.index a <= Tech.Layer.index b then (a, b) else (b, a))
       r.Tech.Rules.pair_spaces)

let check_deck (r : Tech.Rules.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* R012: composite lower bounds derived by the closure against the
     declared minimums.  The bonding-pad chain: a pad is a glass
     opening (minimum width [contact_size], like every cut layer)
     surrounded by [pad_metal_surround] of metal, so the smallest
     legal pad is [contact_size + 2*pad_metal_surround] of metal —
     which must itself satisfy [width_metal]. *)
  let glass = Tech.Rules.min_width r Tech.Layer.Glass in
  let pad = glass + (2 * r.Tech.Rules.pad_metal_surround) in
  if pad < r.Tech.Rules.width_metal then
    add
      (diag ?loc:(loc_of r "pad_metal_surround") "R012" Lint.Error "pad_metal_surround"
         (Printf.sprintf
            "unsatisfiable: glass opening >= contact_size %d, so the minimal bonding \
             pad is %d + 2*pad_metal_surround %d = %d of metal, below width_metal %d \
             — no legal pad exists"
            glass glass r.Tech.Rules.pad_metal_surround pad r.Tech.Rules.width_metal));
  (* R013 needs provenance to tell written entries from implied
     defaults, so its clauses only run for decks from text. *)
  let written key = Tech.Rules.position r key <> None in
  let has_provenance = r.Tech.Rules.key_positions <> [] in
  if has_provenance then begin
    (* R013a: an explicit canonical entry equal to its lambda default
       is implied by the [lambda] node alone. *)
    let defaults = Tech.Rules.nmos ~lambda:r.Tech.Rules.lambda () in
    let default_fields = Tech.Rules.fields defaults in
    List.iter
      (fun (key, v) ->
        if key <> "lambda" && written key then
          match List.assoc_opt key default_fields with
          | Some dv when dv = v ->
            add
              (diag ?loc:(loc_of r key) "R013" Lint.Warning key
                 (Printf.sprintf
                    "redundant: %s %d is already implied by lambda %d (the default \
                     is %d); deleting the entry changes nothing"
                    key v r.Tech.Rules.lambda dv))
          | _ -> ())
      (Tech.Rules.fields r)
  end;
  (* R013b / R014 over each directed override family.  Same-layer and
     unreachable cells are R007 / R006 territory, skip them here.
     Overrides never change a cell's kind, so consulting the effective
     matrix classifies the base cell too. *)
  List.iter
    (fun (lo, hi) ->
      if not (Tech.Layer.equal lo hi) then
        match Tech.Interaction.entry r lo hi with
        | Tech.Interaction.No_rule | Tech.Interaction.Device_checked -> ()
        | Tech.Interaction.Space _ ->
          let asc = Tech.Rules.pair_space r lo hi
          and desc = Tech.Rules.pair_space r hi lo
          and base = Tech.Rules.cross_layer_space r lo hi in
          let effective =
            match Tech.Rules.cell_space_override r lo hi with
            | Some v -> Some v
            | None -> base
          in
          (* R013b: the descending spelling merely repeats the
             ascending one. *)
          if has_provenance then begin
          (match (asc, desc) with
          | Some a, Some d when a = d ->
            add
              (diag ?loc:(loc_of r (pair_name (hi, lo))) "R013" Lint.Warning
                 (pair_name (hi, lo))
                 (Printf.sprintf
                    "redundant: %s %d duplicates %s %d; deleting it changes nothing"
                    (pair_name (hi, lo)) d (pair_name (lo, hi)) a))
          | _ -> ());
          (* R013b: a lone override that restates the canonical cell. *)
          (match (asc, desc, base) with
          | Some v, None, Some bv when v = bv ->
            add
              (diag ?loc:(loc_of r (pair_name (lo, hi))) "R013" Lint.Warning
                 (pair_name (lo, hi))
                 (Printf.sprintf
                    "redundant: %s %d equals the canonical %s-%s spacing %d it \
                     overrides; deleting it changes nothing"
                    (pair_name (lo, hi)) v (Tech.Layer.to_cif lo)
                    (Tech.Layer.to_cif hi) bv))
          | None, Some v, Some bv when v = bv ->
            add
              (diag ?loc:(loc_of r (pair_name (hi, lo))) "R013" Lint.Warning
                 (pair_name (hi, lo))
                 (Printf.sprintf
                    "redundant: %s %d equals the canonical %s-%s spacing %d it \
                     overrides; deleting it changes nothing"
                    (pair_name (hi, lo)) v (Tech.Layer.to_cif lo)
                    (Tech.Layer.to_cif hi) bv))
          | _ -> ())
          end;
          (* R014: any written member of the family strictly above the
             winning value is a silent weakening — the deck reads
             stricter than it checks. *)
          (match effective with
          | None -> ()
          | Some eff ->
            let winner_key =
              match (Tech.Rules.cell_space_override r lo hi, asc) with
              | Some _, Some _ -> pair_name (lo, hi)
              | Some _, None -> pair_name (hi, lo)
              | None, _ -> "space_poly_diffusion"
            in
            let family =
              List.filter_map Fun.id
                [ Option.map (fun v -> (pair_name (lo, hi), v)) asc;
                  Option.map (fun v -> (pair_name (hi, lo), v)) desc;
                  (match base with
                  | Some bv
                    when Tech.Layer.equal lo Tech.Layer.Diffusion
                         && Tech.Layer.equal hi Tech.Layer.Poly
                         && ((not has_provenance) || written "space_poly_diffusion") ->
                    Some ("space_poly_diffusion", bv)
                  | _ -> None) ]
            in
            List.iter
              (fun (k, v) ->
                if v > eff && k <> winner_key then
                  add
                    (diag ?loc:(loc_of r k) "R014" Lint.Error k
                       (Printf.sprintf
                          "non-monotone override family: %s %d is shadowed by the \
                           effective %s %d — the deck reads stricter than it checks, \
                           so real %s-%s errors between %d and %d go unflagged"
                          k v winner_key eff (Tech.Layer.to_cif lo)
                          (Tech.Layer.to_cif hi) eff v)))
              family))
    (override_cells r);
  Lint.sort !diags

(* ------------------------------------------------------------------ *)
(* Cross-deck subsumption — R015                                       *)

type relation = Equivalent | Subsumes | Subsumed | Incomparable

type comparison = {
  cmp_relation : relation;
  cmp_stronger : string list;
  cmp_weaker : string list;
}

(* The semantic constraint vector: every effective bound the checker
   can consult, independent of how the deck spelled it.  Bigger is
   stricter everywhere; an unchecked same-net bound is encoded below
   any checked one. *)
let constraint_vector (r : Tech.Rules.t) =
  let widths =
    List.map
      (fun l -> (Printf.sprintf "width_%s" (Tech.Rules.layer_name l), Tech.Rules.min_width r l))
      Tech.Layer.routing
  in
  let spaces =
    List.map
      (fun l ->
        (Printf.sprintf "space_%s" (Tech.Rules.layer_name l), Tech.Rules.same_layer_space r l))
      Tech.Layer.routing
  in
  let cells =
    List.concat_map
      (fun (la, lb, entry) ->
        if Tech.Layer.equal la lb then []
        else
          match entry with
          | Tech.Interaction.No_rule | Tech.Interaction.Device_checked -> []
          | Tech.Interaction.Space { same_net; diff_net } ->
            [ (pair_name (la, lb), diff_net);
              (pair_name (la, lb) ^ "(same-net)",
               match same_net with None -> -1 | Some v -> v) ])
      (Tech.Interaction.cells r)
  in
  let devices =
    [ ("contact_size", r.Tech.Rules.contact_size);
      ("gate_poly_overhang", r.Tech.Rules.gate_poly_overhang);
      ("gate_diff_extension", r.Tech.Rules.gate_diff_extension);
      ("contact_surround", r.Tech.Rules.contact_surround);
      ("implant_gate_surround", r.Tech.Rules.implant_gate_surround);
      ("buried_overlap", r.Tech.Rules.buried_overlap);
      ("pad_metal_surround", r.Tech.Rules.pad_metal_surround) ]
  in
  widths @ spaces @ cells @ devices

let compare_rules a b =
  let va = constraint_vector a and vb = constraint_vector b in
  let stronger = ref [] and weaker = ref [] in
  List.iter2
    (fun (ka, x) (_, y) ->
      if x > y then stronger := Printf.sprintf "%s %d > %d" ka x y :: !stronger
      else if x < y then weaker := Printf.sprintf "%s %d < %d" ka x y :: !weaker)
    va vb;
  let stronger = List.rev !stronger and weaker = List.rev !weaker in
  let cmp_relation =
    match (stronger, weaker) with
    | [], [] -> Equivalent
    | _, [] -> Subsumes
    | [], _ -> Subsumed
    | _ -> Incomparable
  in
  { cmp_relation; cmp_stronger = stronger; cmp_weaker = weaker }

let relation_message (la, _) (lb, _) cmp =
  let sample = function [] -> "" | w :: _ -> Printf.sprintf " (e.g. %s)" w in
  match cmp.cmp_relation with
  | Equivalent ->
    Printf.sprintf "deck %s is equivalent to deck %s: identical effective constraints"
      la lb
  | Subsumes ->
    Printf.sprintf
      "deck %s subsumes deck %s: at least as strict everywhere, stricter at %d \
       constraint(s)%s — a design clean under %s is provably clean under %s"
      la lb (List.length cmp.cmp_stronger) (sample cmp.cmp_stronger) la lb
  | Subsumed ->
    Printf.sprintf
      "deck %s subsumes deck %s: at least as strict everywhere, stricter at %d \
       constraint(s)%s — a design clean under %s is provably clean under %s"
      lb la (List.length cmp.cmp_weaker) (sample cmp.cmp_weaker) lb la
  | Incomparable ->
    Printf.sprintf
      "decks %s and %s are incomparable: %s stricter at %d constraint(s)%s, %s \
       stricter at %d%s"
      la lb la (List.length cmp.cmp_stronger) (sample cmp.cmp_stronger) lb
      (List.length cmp.cmp_weaker) (sample cmp.cmp_weaker)

let deck_relations decks =
  let rec pairs = function
    | [] -> []
    | d :: rest -> List.map (fun e -> (d, e)) rest @ pairs rest
  in
  List.map
    (fun (((la, ra) as a), ((lb, rb) as b)) ->
      let cmp = compare_rules ra rb in
      diag "R015" Lint.Note
        (Printf.sprintf "%s/%s" la lb)
        (relation_message a b cmp))
    (pairs decks)

let relation_lines decks =
  List.map (fun (d : Lint.diagnostic) -> d.Lint.message) (deck_relations decks)

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

type cert = {
  ct_placement_clean : bool;
  ct_min_feature : int array;
  ct_pair_clear : int array option;
  ct_subtree_bbox : Geom.Rect.t option array;
  ct_complete : bool;
}

(* Above this many local elements the O(n^2) clearance matrix costs
   more than the checks it could save; the certificate simply declines
   to bound local pairs. *)
let local_cap = 256

let certify ~lookup (s : Model.symbol) =
  let placement_clean = ref (not (Model.is_device s)) in
  let min_feature = Array.make nlayers max_int in
  List.iter
    (fun (e : Model.element) ->
      if not (Tech.Layer.is_interconnect e.Model.layer) then placement_clean := false;
      let w =
        match e.Model.shape with
        | Model.S_box r -> min (Geom.Rect.width r) (Geom.Rect.height r)
        | Model.S_wire w -> w.Geom.Wire.width
        | Model.S_poly _ -> 0 (* exact minimum needs the width routine *)
      in
      let i = Tech.Layer.index e.Model.layer in
      if w < min_feature.(i) then min_feature.(i) <- w)
    s.Model.elements;
  let elems = Array.of_list s.Model.elements in
  let n = Array.length elems in
  let pair_clear =
    if n > local_cap then None
    else begin
      let pc = Array.make (nlayers * nlayers) max_int in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = elems.(i) and b = elems.(j) in
          let ia = Tech.Layer.index a.Model.layer
          and ib = Tech.Layer.index b.Model.layer in
          let k = if ia <= ib then (ia * nlayers) + ib else (ib * nlayers) + ia in
          let g = Geom.Rect.chebyshev_gap a.Model.bbox b.Model.bbox in
          if g < pc.(k) then pc.(k) <- g
        done
      done;
      Some pc
    end
  in
  let subtree = Array.make nlayers None in
  let grow i bb =
    subtree.(i) <-
      Some (match subtree.(i) with None -> bb | Some r -> Geom.Rect.hull r bb)
  in
  List.iter
    (fun (e : Model.element) -> grow (Tech.Layer.index e.Model.layer) e.Model.bbox)
    s.Model.elements;
  let complete = ref true in
  List.iter
    (fun (c : Model.call) ->
      match lookup c.Model.callee with
      | None -> complete := false
      | Some cc ->
        if not cc.ct_complete then complete := false;
        Array.iteri
          (fun i bb ->
            match bb with
            | None -> ()
            | Some bb -> grow i (Geom.Transform.apply_rect c.Model.transform bb))
          cc.ct_subtree_bbox)
    s.Model.calls;
  { ct_placement_clean = !placement_clean;
    ct_min_feature = min_feature;
    ct_pair_clear = pair_clear;
    ct_subtree_bbox = subtree;
    ct_complete = !complete }

(* ------------------------------------------------------------------ *)
(* Deck consultation                                                   *)

let requirements (rules : Tech.Rules.t) =
  let req = Array.make (nlayers * nlayers) 0 in
  for ia = 0 to nlayers - 1 do
    for ib = 0 to nlayers - 1 do
      let r =
        match Tech.Interaction.entry rules layer_of_index.(ia) layer_of_index.(ib) with
        | Tech.Interaction.Space { same_net; diff_net } ->
          max diff_net (match same_net with None -> 0 | Some s -> s)
        | Tech.Interaction.No_rule | Tech.Interaction.Device_checked -> 0
      in
      req.((ia * nlayers) + ib) <- r
    done
  done;
  req

type consult = {
  cs_cert : int -> cert option;
  cs_req : int array;
  cs_inst_memo : (int * int * Geom.Transform.t, bool) Hashtbl.t;
}

let consult ~cert_of rules =
  { cs_cert = cert_of;
    cs_req = requirements rules;
    cs_inst_memo = Hashtbl.create 64 }

let element_immune (rules : Tech.Rules.t) cert =
  cert.ct_placement_clean
  &&
  let ok = ref true in
  for i = 0 to nlayers - 1 do
    let mf = cert.ct_min_feature.(i) in
    if mf < max_int && mf < Tech.Rules.min_width rules layer_of_index.(i) then
      ok := false
  done;
  !ok

(* The guards run once per interaction task in the serial prepass, so
   their constant factor is the whole "analysis overhead" budget.  Two
   things keep them cheap: [Hit] exits on the first pair a certificate
   cannot clear (most tasks fail the guard — a close pair exists — and
   the old full-scan cost was pure waste), and [inst_guard] transforms
   each subtree's bboxes exactly once instead of once per opposing
   layer. *)
exception Hit

let local_guard cs ~sid =
  match cs.cs_cert sid with
  | None -> false
  | Some { ct_pair_clear = None; _ } -> false
  | Some { ct_pair_clear = Some pc; _ } -> (
    try
      for ia = 0 to nlayers - 1 do
        for ib = ia to nlayers - 1 do
          let r = cs.cs_req.((ia * nlayers) + ib) in
          if r > 0 && pc.((ia * nlayers) + ib) < r then raise_notrace Hit
        done
      done;
      true
    with Hit -> false)

(* Clearance of one bbox on layer [la] against a placed subtree:
   every populated subtree layer must sit at least the deck's
   requirement away (in Chebyshev gap, which both metrics dominate). *)
let clear_of cs ~la bbox tr cert =
  cert.ct_complete
  &&
  let ia = Tech.Layer.index la in
  try
    Array.iteri
      (fun ib bb ->
        match bb with
        | None -> ()
        | Some bb ->
          let r = cs.cs_req.((ia * nlayers) + ib) in
          if r > 0
             && Geom.Rect.chebyshev_gap bbox (Geom.Transform.apply_rect tr bb) < r
          then raise_notrace Hit)
      cert.ct_subtree_bbox;
    true
  with Hit -> false

let elt_guard cs ~la ~bbox near =
  List.for_all
    (fun (tr, sid) ->
      match cs.cs_cert sid with
      | None -> false
      | Some cert -> clear_of cs ~la bbox tr cert)
    near

(* Every placement transform is one of the eight orthogonal matrices
   plus a translation — an isometry of the Chebyshev metric on
   axis-aligned rects — so the verdict depends only on the relative
   placement [tra^-1 . trb], not the absolute pair.  Replicated arrays
   (the PLA tiers) reuse a handful of relative placements across tens
   of thousands of instance pairs, so the memo turns the prepass into
   a few real evaluations plus hash lookups. *)
let inst_verdict cs ca cb rel =
  let tb =
    Array.map
      (function
        | None -> None
        | Some bb -> Some (Geom.Transform.apply_rect rel bb))
      cb.ct_subtree_bbox
  in
  try
    Array.iteri
      (fun ia ba ->
        match ba with
        | None -> ()
        | Some ba ->
          let row = ia * nlayers in
          Array.iteri
            (fun ib bb ->
              match bb with
              | None -> ()
              | Some bb ->
                let r = cs.cs_req.(row + ib) in
                if r > 0 && Geom.Rect.chebyshev_gap ba bb < r then
                  raise_notrace Hit)
            tb)
      ca.ct_subtree_bbox;
    true
  with Hit -> false

let inst_guard cs ~a:(tra, sa) ~b:(trb, sb) =
  match (cs.cs_cert sa, cs.cs_cert sb) with
  | Some ca, Some cb when ca.ct_complete && cb.ct_complete -> (
    let rel = Geom.Transform.compose (Geom.Transform.inverse tra) trb in
    let key = (sa, sb, rel) in
    match Hashtbl.find_opt cs.cs_inst_memo key with
    | Some v -> v
    | None ->
      let v = inst_verdict cs ca cb rel in
      Hashtbl.add cs.cs_inst_memo key v;
      v)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Kill switch                                                         *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "DIC_NO_CERTS" with
    | Some s when s <> "" && s <> "0" -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b
