type shape =
  | S_box of Geom.Rect.t
  | S_wire of Geom.Wire.t
  | S_poly of Geom.Poly.t

type element = {
  eid : int;
  layer : Tech.Layer.t;
  shape : shape;
  net_label : string option;
  rects : Geom.Rect.t list;
  packed : Geom.Rects.t;
  skeleton : Geom.Rect.t list;
  bbox : Geom.Rect.t;
  loc : Cif.Loc.t option;
}

type call = {
  cidx : int;
  callee : int;
  transform : Geom.Transform.t;
}

type symbol = {
  sid : int;
  sname : string;
  device : Tech.Device.kind option;
  elements : element list;
  calls : call list;
  sbbox : Geom.Rect.t option;
  sloc : Cif.Loc.t option;
}

type t = {
  rules : Tech.Rules.t;
  symbols : symbol list;
  root : symbol;
}

let root_id = -1

let find t sid =
  match List.find_opt (fun s -> s.sid = sid) t.symbols with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Model.find: unknown symbol %d" sid)

let is_device s = s.device <> None

let layer_region s layer =
  Geom.Region.of_rects
    (List.concat_map
       (fun e -> if Tech.Layer.equal e.layer layer then e.rects else [])
       s.elements)

let on_layer s layer = List.filter (fun e -> Tech.Layer.equal e.layer layer) s.elements
let symbol_count t = List.length t.symbols - 1

let definition_elements t =
  List.fold_left (fun acc s -> acc + List.length s.elements) 0 t.symbols

let memo_over_symbols t f =
  let tbl = Hashtbl.create 16 in
  let rec go sid =
    match Hashtbl.find_opt tbl sid with
    | Some v -> v
    | None ->
      let s = find t sid in
      let v = f s go in
      Hashtbl.replace tbl sid v;
      v
  in
  go

let instantiated_elements t =
  let count =
    memo_over_symbols t (fun s recur ->
        List.length s.elements
        + List.fold_left (fun acc c -> acc + recur c.callee) 0 s.calls)
  in
  count root_id

let depth t =
  let d =
    memo_over_symbols t (fun s recur ->
        List.fold_left (fun acc c -> max acc (1 + recur c.callee)) 0 s.calls)
  in
  d root_id

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)

let hull_of_rects = function
  | [] -> None
  | r :: rs -> Some (List.fold_left Geom.Rect.hull r rs)

let poly_skeleton ~half region =
  let rec try_shrink h =
    if h <= 0 then Geom.Region.rects region
    else
      let s = Geom.Region.shrink_orth region h in
      if Geom.Region.is_empty s then try_shrink (h - 1) else Geom.Region.rects s
  in
  try_shrink half

let elaborate_element rules ~context eid (e : Cif.Ast.element) :
    (element, Report.violation) result =
  let layer_name = Cif.Ast.element_layer e in
  let loc = Cif.Ast.element_loc e in
  match Tech.Layer.of_cif layer_name with
  | None ->
    Error
      (Report.error ~stage:Report.Parse_stage ~rule:"layer.unknown" ~context ?loc
         (Printf.sprintf "unknown layer %s" layer_name))
  | Some layer -> (
    let half = Tech.Rules.skeleton_half rules layer in
    match e with
    | Cif.Ast.Box { rect; net; _ } ->
      Ok
        { eid;
          layer;
          shape = S_box rect;
          net_label = net;
          rects = [ rect ];
          packed = Geom.Rects.of_list [ rect ];
          skeleton = [ Geom.Skeleton.of_rect ~half rect ];
          bbox = rect;
          loc }
    | Cif.Ast.Wire { width; path; net; _ } -> (
      match Geom.Wire.make ~width path with
      | w ->
        let rects = Geom.Wire.to_rects w in
        Ok
          { eid;
            layer;
            shape = S_wire w;
            net_label = net;
            rects;
            packed = Geom.Rects.of_list rects;
            skeleton = Geom.Wire.skeleton ~half w;
            bbox = Geom.Wire.bbox w;
            loc }
      | exception Invalid_argument msg ->
        Error
          (Report.error ~stage:Report.Parse_stage ~rule:"wire.invalid" ~context ?loc msg))
    | Cif.Ast.Polygon { pts; net; _ } -> (
      match Geom.Poly.make pts with
      | poly -> (
        match Geom.Poly.to_region poly with
        | Some region ->
          let rects = Geom.Region.rects region in
          Ok
            { eid;
              layer;
              shape = S_poly poly;
              net_label = net;
              rects;
              packed = Geom.Rects.of_list rects;
              skeleton = poly_skeleton ~half region;
              bbox = Geom.Poly.bbox poly;
              loc }
        | None ->
          Error
            (Report.error ~stage:Report.Parse_stage ~rule:"polygon.nonrectilinear"
               ~where:(Geom.Poly.bbox poly) ~context ?loc
               "non-rectilinear polygon is outside the design style"))
      | exception Invalid_argument msg ->
        Error
          (Report.error ~stage:Report.Parse_stage ~rule:"polygon.invalid" ~context ?loc
             msg)))

let symbol_display_name (s : Cif.Ast.symbol) =
  match s.Cif.Ast.name with Some n -> n | None -> Printf.sprintf "s%d" s.Cif.Ast.id

let elaborate rules (file : Cif.Ast.file) =
  match Cif.Ast.check_acyclic file with
  | Error msg -> Error msg
  | Ok () ->
    let issues = ref [] in
    let note v = issues := v :: !issues in
    let build_symbol ~sid ~sname ~device_tag ?sloc (elements : Cif.Ast.element list)
        (calls : Cif.Ast.call list) =
      let context = sname in
      let device =
        match device_tag with
        | None -> None
        | Some tag -> (
          match Tech.Device.of_tag tag with
          | Some k -> Some k
          | None ->
            note
              (Report.error ~stage:Report.Devices ~rule:"device.unknown-type" ~context
                 ?loc:sloc
                 (Printf.sprintf "unknown device type %s" tag));
            None)
      in
      let elements =
        List.mapi (fun i e -> (i, e)) elements
        |> List.filter_map (fun (i, e) ->
               match elaborate_element rules ~context i e with
               | Ok el -> Some el
               | Error v ->
                 note v;
                 None)
      in
      if device <> None && calls <> [] then
        note
          (Report.error ~stage:Report.Devices ~rule:"device.contains-calls" ~context
             ?loc:sloc "primitive (device) symbols may contain only geometry");
      let calls =
        List.mapi
          (fun i (c : Cif.Ast.call) ->
            { cidx = i; callee = c.Cif.Ast.callee; transform = c.Cif.Ast.transform })
          calls
      in
      { sid; sname; device; elements; calls; sbbox = None; sloc }
    in
    let symbols =
      List.map
        (fun (s : Cif.Ast.symbol) ->
          build_symbol ~sid:s.Cif.Ast.id ~sname:(symbol_display_name s)
            ~device_tag:s.Cif.Ast.device ?sloc:s.Cif.Ast.sym_loc s.Cif.Ast.elements
            s.Cif.Ast.calls)
        file.Cif.Ast.symbols
    in
    let root =
      build_symbol ~sid:root_id ~sname:"TOP" ~device_tag:None file.Cif.Ast.top_elements
        file.Cif.Ast.top_calls
    in
    (* Topological sort, callees first; root last.  Also fill sbbox. *)
    let by_id = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace by_id s.sid s) (root :: symbols);
    let order = ref [] in
    let visited = Hashtbl.create 16 in
    let boxes = Hashtbl.create 16 in
    let rec visit sid =
      if not (Hashtbl.mem visited sid) then begin
        Hashtbl.add visited sid ();
        let s = Hashtbl.find by_id sid in
        List.iter (fun c -> visit c.callee) s.calls;
        let local = List.map (fun e -> e.bbox) s.elements in
        let from_calls =
          List.filter_map
            (fun c ->
              Option.map (Geom.Transform.apply_rect c.transform) (Hashtbl.find boxes c.callee))
            s.calls
        in
        let sbbox = hull_of_rects (local @ from_calls) in
        Hashtbl.replace boxes sid sbbox;
        order := { s with sbbox } :: !order
      end
    in
    List.iter (fun s -> visit s.sid) symbols;
    visit root_id;
    let sorted = List.rev !order in
    (* [sorted] has callees before callers; move root to the end. *)
    let non_root = List.filter (fun s -> s.sid <> root_id) sorted in
    let root = List.find (fun s -> s.sid = root_id) sorted in
    Ok
      ( { rules; symbols = non_root @ [ root ]; root },
        List.rev !issues )
