(** The cost-balanced domain scheduler shared by the parallel pipeline
    stages (element checks, device recognition, relational checks, and
    the interaction sweep).

    An ordered worklist of [n] tasks is cut into contiguous chunks
    sized so each holds roughly 1/(8·jobs) of the caller-estimated
    work, and [jobs] domains (the caller plus [jobs - 1] spawned
    workers) claim chunks from an [Atomic] counter until the queue is
    dry.  Chunk results come back in worklist order, so callers that
    assemble them positionally produce output byte-identical to their
    serial path at every [jobs] value — which domain ran which chunk is
    the only nondeterminism, and it is confined to scheduling.

    Observability: when [metrics] / [trace] are given, every worker
    accumulates into per-domain buffers that are merged into the
    caller's (in tid order, caller first) after the join.  Each worker
    emits a [shard[tid]] span (category ["shard"], args [stage],
    [tasks], [chunks]), and spawned workers charge their allocation to
    [gc.minor_words.<stage>] / [gc.major_words.<stage>] via
    {!Metrics.count_gc} — [Gc.quick_stat] being domain-local, this plus
    the caller's own {!Metrics.time_stage} is what makes the per-stage
    GC counters sum allocation across {e all} domains rather than
    silently reporting the calling domain's share. *)

(** [run ?metrics ?trace ~jobs ~stage ~weight ~n ~worker ~chunk ~merge ()]
    evaluates tasks [0 .. n-1] across [jobs] domains and returns the
    per-chunk results in worklist order.

    - [stage] names the pipeline stage in shard spans and GC counters.
    - [weight i] estimates the relative cost of task [i] (chunk sizing
      only; any positive estimate is safe).
    - [worker tid] builds the per-domain state, on the domain that will
      use it ([tid = 0] is the calling domain).
    - [chunk st dm dt ~lo ~hi] evaluates tasks [lo .. hi-1] with that
      domain's state and per-domain metrics/trace buffers.  Called once
      per chunk, on whichever domain claimed it.
    - [merge st] folds a domain's state back into the caller's; called
      on the calling domain after all workers have joined, in tid
      order.

    Intended for [jobs >= 2] — callers keep their serial path for
    [jobs = 1] (and [run] with [jobs = 1] still works: it just does
    everything on the calling domain). *)
val run :
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  jobs:int ->
  stage:string ->
  weight:(int -> int) ->
  n:int ->
  worker:(int -> 'st) ->
  chunk:('st -> Metrics.t option -> Trace.t option -> lo:int -> hi:int -> 'r) ->
  merge:('st -> unit) ->
  unit ->
  'r list
