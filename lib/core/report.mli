(** Violation reporting for the checker.

    The paper's Fig 1 frames DRC quality as three regions: real errors
    flagged, real errors missed, and false errors.  Reports here carry
    enough context (stage, rule family, location, instance path) for
    {!Classify} to compute those regions against a ground-truth
    journal. *)

type severity = Error | Warning | Info

(** The six pipeline stages of the paper's Fig 10 flow chart, plus the
    structured-design integrity checks and electrical rules. *)
type stage =
  | Parse_stage
  | Elements  (** "check elements" — interconnect width *)
  | Devices  (** "check primitive symbols" *)
  | Connections  (** "check legal connections" — skeletal connectivity *)
  | Netlist_gen  (** "generate hierarchical net list" *)
  | Interactions  (** "check interactions" — spacing matrix *)
  | Integrity  (** structured-design usage rules *)
  | Electrical  (** non-geometric construction rules *)

type violation = {
  stage : stage;
  rule : string;  (** dotted rule id, e.g. "width.NP", "device.gate-overhang" *)
  severity : severity;
  where : Geom.Rect.t option;  (** in the coordinates of [context] *)
  context : string;  (** the symbol definition the check ran in *)
  path : string option;
      (** full dotted instance path from the defining symbol down to
          the geometry, e.g. ["TOP.inv[3].contact[0]"]; [None] when the
          violation is not tied to a deeper instance (then [context] is
          the whole path) *)
  loc : Cif.Loc.t option;
      (** CIF source position of the offending statement, when the
          design came from parsed text — the "symbol origin … is never
          lost" promise extended back to the file *)
  message : string;
}

type t = { violations : violation list }

val empty : t
val add : t -> violation -> t
val concat : t list -> t
val count : ?severity:severity -> t -> int
val errors : t -> violation list
val by_stage : t -> stage -> violation list

(** Violations whose rule id starts with the given prefix. *)
val by_rule_prefix : t -> string -> violation list

val stage_name : stage -> string

(** [path] when present, else [context]: the most precise logical
    location known for the violation. *)
val instance_path : violation -> string

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit

(** Helper constructors. *)

val error :
  stage:stage -> rule:string -> ?where:Geom.Rect.t -> context:string ->
  ?path:string -> ?loc:Cif.Loc.t -> string -> violation

val warning :
  stage:stage -> rule:string -> ?where:Geom.Rect.t -> context:string ->
  ?path:string -> ?loc:Cif.Loc.t -> string -> violation

val info :
  stage:stage -> rule:string -> ?where:Geom.Rect.t -> context:string ->
  ?path:string -> ?loc:Cif.Loc.t -> string -> violation
