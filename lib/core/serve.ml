type t = {
  s_rules : Tech.Rules.t;
  s_base : Engine.config;
  s_cache_dir : string option;
  (* environment digest -> warm engine; requests that differ only in
     [jobs] land on the same engine *)
  s_engines : (string, Engine.t) Hashtbl.t;
}

let create ?(config = Engine.default_config) ?cache_dir rules =
  { s_rules = rules; s_base = config; s_cache_dir = cache_dir; s_engines = Hashtbl.create 4 }

let engine_for t config =
  let env = Engine.env_key t.s_rules config in
  match Hashtbl.find_opt t.s_engines env with
  | Some e -> Engine.with_config e config
  | None ->
    let e = Engine.create ~config ?cache_dir:t.s_cache_dir t.s_rules in
    Hashtbl.replace t.s_engines env e;
    e

let error_reply id msg =
  Json.to_string
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool false); ("error", Json.Str msg);
         ("exit", Json.Num 2.) ])

(* Embed an already-rendered JSON document as a subobject of the reply.
   Both emitters are canonical, so the parse cannot fail in practice;
   if it ever does, ship the text as a string rather than lose it. *)
let embed rendered =
  match Json.parse rendered with Ok v -> v | Error _ -> Json.Str rendered

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let handle_request t req =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  let flag name = Option.bind (Json.member name req) Json.bool = Some true in
  let source =
    match (Option.bind (Json.member "path" req) Json.str,
           Option.bind (Json.member "cif" req) Json.str)
    with
    | Some path, _ -> Result.map (fun src -> (src, path)) (read_file path)
    | None, Some src -> Ok (src, "inline")
    | None, None -> Error "request needs \"path\" or \"cif\""
  in
  match source with
  | Error msg -> error_reply id msg
  | Ok (src, uri) -> (
    let config =
      { t.s_base with
        Engine.interactions =
          { t.s_base.Engine.interactions with
            Interactions.jobs =
              (match Option.bind (Json.member "jobs" req) Json.num with
              | Some j -> int_of_float j
              | None -> t.s_base.Engine.interactions.Interactions.jobs);
            Interactions.check_same_net =
              (match Option.bind (Json.member "check_same_net" req) Json.bool with
              | Some b -> b
              | None -> t.s_base.Engine.interactions.Interactions.check_same_net) };
        Engine.run_lint =
          (match Option.bind (Json.member "lint" req) Json.bool with
          | Some b -> b
          | None -> t.s_base.Engine.run_lint) }
    in
    let engine = engine_for t config in
    match Engine.check_string engine src with
    | Error msg -> error_reply id msg
    | Ok (result, reuse) ->
      (* Exactly the bytes one-shot [dicheck FILE] writes to stdout:
         the report then the one-line summary (the serve smoke diffs
         against that). *)
      let report_text =
        Format.asprintf "%a@." Report.pp result.Engine.report
        ^ Format.asprintf "%a@." Engine.pp_summary result
      in
      (match Option.bind (Json.member "out" req) Json.str with
      | None -> ()
      | Some path ->
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc report_text));
      let count sev = Report.count ~severity:sev result.Engine.report in
      let errors = count Report.Error and warnings = count Report.Warning in
      let exit_code = if errors > 0 || (flag "werror" && warnings > 0) then 1 else 0 in
      let base =
        [ ("id", id); ("ok", Json.Bool true);
          ("errors", Json.Num (float_of_int errors));
          ("warnings", Json.Num (float_of_int warnings));
          ("exit", Json.Num (float_of_int exit_code));
          ("symbols_total", Json.Num (float_of_int reuse.Engine.symbols_total));
          ("symbols_reused", Json.Num (float_of_int reuse.Engine.symbols_reused));
          ("defs_from_disk", Json.Num (float_of_int reuse.Engine.defs_from_disk));
          ("memo_loaded", Json.Num (float_of_int reuse.Engine.memo_loaded));
          ("report", Json.Str report_text) ]
      in
      let with_metrics =
        if flag "stats" then
          base @ [ ("metrics", embed (Metrics.to_json result.Engine.metrics)) ]
        else base
      in
      let with_sarif =
        if flag "sarif" then
          with_metrics @ [ ("sarif", embed (Sarif.of_report ~uri result.Engine.report)) ]
        else with_metrics
      in
      Json.to_string (Json.Obj with_sarif))

let handle_line t line =
  match Json.parse line with
  | Error msg -> error_reply Json.Null ("bad request: " ^ msg)
  | Ok req -> (
    try handle_request t req
    with exn ->
      error_reply
        (Option.value ~default:Json.Null (Json.member "id" req))
        ("internal error: " ^ Printexc.to_string exn))

let loop t ic oc =
  let rec go () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.trim line <> "" then begin
        Out_channel.output_string oc (handle_line t line);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc
      end;
      go ()
  in
  go ()
