(* The [dicheck serve] daemon.  Wire protocol: docs/PROTOCOL.md.

   Shape: any number of connection readers feed one bounded job queue;
   [s_workers] worker domains drain it.  Engines are per-worker (an
   Engine.t is mutable and not safe to share across domains) but all
   workers sit on the same persistent Cache directory, so definition
   fingerprints and interaction memos written by one worker warm the
   others — and the next daemon — through disk. *)

type conn = {
  c_serial : int;  (* cancellation scope: (serial, id) keys p_latest *)
  c_reply : string -> unit;  (* serialized; never raises *)
  c_lock : Mutex.t;
  c_done : Condition.t;
  mutable c_outstanding : int;  (* jobs enqueued, reply not yet delivered *)
}

type job = {
  j_conn : conn;
  j_req : Json.t;
  j_id : Json.t;
  j_key : (int * string) option;  (* None when the request has no id *)
  j_ticket : int;
  j_seq : int;  (* telemetry request id, echoed as the reply's "req" *)
  j_enq_ns : int64;  (* monotonic enqueue time, for the queued span *)
}

type pool = {
  p_lock : Mutex.t;
  p_work : Condition.t;  (* queue became non-empty / stop *)
  p_done : Condition.t;  (* a job finished / queue drained *)
  p_queue : job Queue.t;
  p_stop : bool Atomic.t;
  (* (conn serial, canonical id) -> newest ticket for that id.  A job
     whose ticket is older than the table's is superseded. *)
  p_latest : (int * string, int) Hashtbl.t;
  mutable p_ticket : int;
  mutable p_inflight : int;
  mutable p_served : int;
  mutable p_cancelled : int;
  mutable p_overloaded : int;
  mutable p_workers : unit Domain.t list;
}

type t = {
  s_rules : Tech.Rules.t;
  s_base : Engine.config;
  s_cache_dir : string option;
  s_workers : int;
  s_max_queue : int;
  (* environment digest -> warm engine, for the synchronous
     [handle_line] path only; worker domains keep their own tables *)
  s_engines : (string, Engine.t) Hashtbl.t;
  s_lock : Mutex.t;  (* guards pool creation *)
  mutable s_pool : pool option;
  s_stop_req : bool Atomic.t;
  s_conn_seq : int Atomic.t;
  s_telemetry : Telemetry.t;
}

let create ?(config = Engine.default_config) ?cache_dir ?(workers = 0)
    ?(max_queue = 64) ?telemetry rules =
  { s_rules = rules;
    s_base = config;
    s_cache_dir = cache_dir;
    s_workers = (if workers <= 0 then Domain.recommended_domain_count () else workers);
    s_max_queue = max max_queue 1;
    s_engines = Hashtbl.create 4;
    s_lock = Mutex.create ();
    s_pool = None;
    s_stop_req = Atomic.make false;
    s_conn_seq = Atomic.make 0;
    s_telemetry =
      (match telemetry with Some tel -> tel | None -> Telemetry.create ()) }

let worker_count t = t.s_workers

let telemetry t = t.s_telemetry

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

let jnum n = Json.Num (float_of_int n)

(* The reply's "req" member: the daemon-assigned request id that also
   keys the event log and the request's trace spans. *)
let req_field = function Some seq -> [ ("req", jnum seq) ] | None -> []

let refuse ?(status = "error") ?(extra = []) id msg =
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool false); ("status", Json.Str status);
          ("error", Json.Str msg) ]
       @ extra
       @ [ ("exit", Json.Num 2.) ]))

let cancelled_reply ?req id =
  refuse ~status:"cancelled" ~extra:(req_field req) id
    "superseded by a newer request with the same id"

(* Embed an already-rendered JSON document as a subobject of the reply.
   Both emitters are canonical, so the parse cannot fail in practice;
   if it ever does, ship the text as a string rather than lose it. *)
let embed rendered =
  match Json.parse rendered with Ok v -> v | Error _ -> Json.Str rendered

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Checking one request (runs on a worker domain or, via handle_line,
   on the caller's)                                                    *)

(* Engines are keyed by the concatenated per-deck environment digests:
   a single-deck request lands on the same key (and the same warm
   engine) as before deck sets existed, and two requests naming the
   same deck set in the same order share a session. *)
let engine_for t engines config decks =
  let key =
    String.concat "+"
      (List.map (fun (d : Engine.deck) -> Engine.env_key d.Engine.dk_rules config) decks)
  in
  match Hashtbl.find_opt engines key with
  | Some e -> Engine.with_config (Engine.with_decks e decks) config
  | None ->
    let e = Engine.create ~config ?cache_dir:t.s_cache_dir ~decks t.s_rules in
    Hashtbl.replace engines key e;
    e

(* The optional "decks" request member: an array of rule-file paths
   (labelled by basename) or [{"label":..., "path":...|"rules":...}]
   objects with inline rule text.  [Ok None] when absent — the
   single-deck path, whose reply bytes must not change. *)
let parse_decks req =
  match Json.member "decks" req with
  | None -> Ok None
  | Some (Json.Arr []) -> Error "\"decks\" must not be empty"
  | Some (Json.Arr specs) ->
    let deck_of i spec =
      let load ?label path =
        match read_file path with
        | Error msg -> Error msg
        | Ok src -> (
          match Tech.Rules.of_string src with
          | Ok rules ->
            Ok
              (Engine.deck
                 ~label:(Option.value ~default:(Filename.basename path) label)
                 rules)
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
      in
      match spec with
      | Json.Str path -> load path
      | Json.Obj _ -> (
        let label = Option.bind (Json.member "label" spec) Json.str in
        match
          ( Option.bind (Json.member "path" spec) Json.str,
            Option.bind (Json.member "rules" spec) Json.str )
        with
        | Some path, _ -> load ?label path
        | None, Some src -> (
          match Tech.Rules.of_string src with
          | Ok rules ->
            Ok
              (Engine.deck
                 ~label:(Option.value ~default:(Printf.sprintf "deck%d" i) label)
                 rules)
          | Error msg -> Error (Printf.sprintf "deck %d: %s" i msg))
        | None, None -> Error (Printf.sprintf "deck %d needs \"path\" or \"rules\"" i))
      | _ -> Error (Printf.sprintf "deck %d must be a path string or an object" i)
    in
    let rec go i = function
      | [] -> Ok []
      | s :: rest ->
        Result.bind (deck_of i s) (fun d ->
            Result.map (fun ds -> d :: ds) (go (i + 1) rest))
    in
    Result.map (fun ds -> Some (Engine.dedupe_labels ds)) (go 0 specs)
  | Some _ -> Error "\"decks\" must be an array"

let lint_code rule =
  let prefix = "lint." in
  let n = String.length prefix in
  if String.length rule > n && String.sub rule 0 n = prefix then
    String.sub rule n (String.length rule - n)
  else rule

(* What the worker needs to know about a finished check beyond the
   reply line itself: the telemetry facts. *)
type outcome = {
  o_status : string;  (* "ok" | "error" *)
  o_exit : int;
  o_errors : int;
  o_warnings : int;
  o_reuse : (int * int) option;  (* (symbols_total, symbols_reused) *)
}

let error_outcome =
  { o_status = "error"; o_exit = 2; o_errors = 0; o_warnings = 0; o_reuse = None }

let process t engines ?req ?trace reqj =
  let req_members = req_field req in
  let id = Option.value ~default:Json.Null (Json.member "id" reqj) in
  let flag name = Option.bind (Json.member name reqj) Json.bool = Some true in
  let refuse id msg = (refuse ~extra:req_members id msg, error_outcome) in
  (* Per-request tracing: the worker passes the daemon's buffer (with
     the queued span already recorded); the synchronous path makes a
     fresh one when the request opts in with "trace": true. *)
  let trace =
    match trace with
    | Some _ -> trace
    | None -> if flag "trace" then Some (Trace.create ()) else None
  in
  let req = reqj in
  (* Debug aid for exercising cancellation and backpressure
     deterministically; see PROTOCOL.md. *)
  (match Option.bind (Json.member "sleep_ms" req) Json.num with
  | Some ms when ms > 0. -> Unix.sleepf (Float.min ms 10_000. /. 1000.)
  | _ -> ());
  let source =
    match (Option.bind (Json.member "path" req) Json.str,
           Option.bind (Json.member "cif" req) Json.str)
    with
    | Some path, _ -> Result.map (fun src -> (src, path)) (read_file path)
    | None, Some src -> Ok (src, "inline")
    | None, None -> Error "request needs \"path\" or \"cif\""
  in
  match source with
  | Error msg -> refuse id msg
  | Ok (src, uri) -> (
    let lint_werror = flag "lint_werror" in
    let run_lint =
      (match Option.bind (Json.member "lint" req) Json.bool with
      | Some b -> b
      | None -> t.s_base.Engine.run_lint)
      || lint_werror
    in
    let config =
      { t.s_base with
        Engine.interactions =
          { t.s_base.Engine.interactions with
            Interactions.jobs =
              (match Option.bind (Json.member "jobs" req) Json.int with
              | Some j -> j
              | None -> t.s_base.Engine.interactions.Interactions.jobs);
            Interactions.check_same_net =
              (match Option.bind (Json.member "check_same_net" req) Json.bool with
              | Some b -> b
              | None -> t.s_base.Engine.interactions.Interactions.check_same_net) };
        Engine.run_lint }
    in
    match parse_decks req with
    | Error msg -> refuse id msg
    | Ok decks_opt -> (
      let decks =
        match decks_opt with Some ds -> ds | None -> [ Engine.deck t.s_rules ]
      in
      let engine = engine_for t engines config decks in
      let lint_counts_of report =
        if not run_lint then []
        else begin
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (v : Report.violation) ->
              let code = lint_code v.Report.rule in
              Hashtbl.replace tbl code
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code)))
            (Report.by_rule_prefix report "lint.");
          let entries =
            List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])
          in
          [ ("lint_counts",
             Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) entries)) ]
        end
      in
      let lint_suppressed_of suppressed =
        (* Per-code counts of waived lint/deckcheck diagnostics.  Only
           present when lint ran and something was actually waived, so
           replies for waiver-free sessions keep their historical
           shape. *)
        if not run_lint || suppressed = [] then []
        else
          [ ("lint_suppressed",
             Json.Obj
               (List.map
                  (fun (k, n) -> (k, Json.Num (float_of_int n)))
                  (Lint.suppressed_counts suppressed))) ]
      in
      let exit_of report =
        let errors = Report.count ~severity:Report.Error report in
        let warnings = Report.count ~severity:Report.Warning report in
        let lint_hits = Report.by_rule_prefix report "lint." in
        if errors > 0 || (flag "werror" && warnings > 0)
           || (lint_werror && lint_hits <> [])
        then 1
        else 0
      in
      let write_out report_text =
        match Option.bind (Json.member "out" req) Json.str with
        | None -> ()
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc report_text)
      in
      (* The request-scoped span tree, for callers that asked with
         "trace": true.  Opt-in per request: the daemon-level --trace
         collection alone never grows replies. *)
      let with_trace members =
        match trace with
        | Some tr when flag "trace" ->
          members @ [ ("trace", embed (Trace.to_chrome_json tr)) ]
        | _ -> members
      in
      match Engine.check_string ?trace engine src with
      | Error msg -> refuse id msg
      | Ok multi -> (
        match decks_opt with
        | None ->
          (* Single-deck request: exactly the bytes one-shot
             [dicheck FILE] writes to stdout — the report then the
             one-line summary (the serve smoke diffs against that). *)
          let result, reuse = Engine.primary multi in
          let suppressed =
            match multi.Engine.results with
            | dr :: _ -> dr.Engine.dr_suppressed
            | [] -> []
          in
          let report_text =
            Format.asprintf "%a@." Report.pp result.Engine.report
            ^ Format.asprintf "%a@." Engine.pp_summary result
          in
          write_out report_text;
          let count sev = Report.count ~severity:sev result.Engine.report in
          let errors = count Report.Error and warnings = count Report.Warning in
          let exit_code = exit_of result.Engine.report in
          let base =
            [ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "ok") ]
            @ req_members
            @ [ ("errors", Json.Num (float_of_int errors));
              ("warnings", Json.Num (float_of_int warnings));
              ("exit", Json.Num (float_of_int exit_code));
              ("symbols_total", Json.Num (float_of_int reuse.Engine.symbols_total));
              ("symbols_reused", Json.Num (float_of_int reuse.Engine.symbols_reused));
              ("defs_from_disk", Json.Num (float_of_int reuse.Engine.defs_from_disk));
              ("memo_loaded", Json.Num (float_of_int reuse.Engine.memo_loaded)) ]
            @ lint_counts_of result.Engine.report
            @ lint_suppressed_of suppressed
            @ [ ("report", Json.Str report_text) ]
          in
          let with_metrics =
            if flag "stats" then
              base @ [ ("metrics", embed (Metrics.to_json result.Engine.metrics)) ]
            else base
          in
          let with_sarif =
            if flag "sarif" then
              with_metrics
              @ [ ("sarif",
                   embed
                     (Sarif.of_report ~uri
                        ~suppressed:(Lint.to_violations suppressed)
                        result.Engine.report)) ]
            else with_metrics
          in
          ( Json.to_string (Json.Obj (with_trace with_sarif)),
            { o_status = "ok"; o_exit = exit_code; o_errors = errors;
              o_warnings = warnings;
              o_reuse = Some (reuse.Engine.symbols_total, reuse.Engine.symbols_reused) } )
        | Some _ ->
          (* Deck-set request: merged report text (the multi-deck CLI's
             stdout bytes), per-deck detail under "decks", and the
             compliant-intersection verdict.  The top-level exit is the
             worst per-deck exit. *)
          let merged = multi.Engine.merged in
          let report_text =
            Format.asprintf "%a@." Multireport.pp merged
            ^ Format.asprintf "%a@." Multireport.pp_summary merged
          in
          write_out report_text;
          let deck_fields (dr : Engine.deck_result) =
            let report = dr.Engine.dr_result.Engine.report in
            let reuse = dr.Engine.dr_reuse in
            Json.Obj
              ([ ("label", Json.Str dr.Engine.dr_deck.Engine.dk_label);
                 ("errors", jnum (Report.count ~severity:Report.Error report));
                 ("warnings", jnum (Report.count ~severity:Report.Warning report));
                 ("exit", jnum (exit_of report));
                 ("symbols_total", jnum reuse.Engine.symbols_total);
                 ("symbols_reused", jnum reuse.Engine.symbols_reused);
                 ("defs_from_disk", jnum reuse.Engine.defs_from_disk);
                 ("memo_loaded", jnum reuse.Engine.memo_loaded) ]
              @ lint_counts_of report
              @ lint_suppressed_of dr.Engine.dr_suppressed)
          in
          let exit_code =
            List.fold_left
              (fun acc (dr : Engine.deck_result) ->
                max acc (exit_of dr.Engine.dr_result.Engine.report))
              0 multi.Engine.results
          in
          let errors = Multireport.errors merged in
          let warnings = Multireport.warnings merged in
          let sum f =
            List.fold_left
              (fun acc (dr : Engine.deck_result) -> acc + f dr.Engine.dr_reuse)
              0 multi.Engine.results
          in
          let base =
            [ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "ok") ]
            @ req_members
            @ [ ("errors", jnum errors);
              ("warnings", jnum warnings);
              ("exit", jnum exit_code);
              ("symbols_total", jnum (sum (fun r -> r.Engine.symbols_total)));
              ("symbols_reused", jnum (sum (fun r -> r.Engine.symbols_reused)));
              ("defs_from_disk", jnum (sum (fun r -> r.Engine.defs_from_disk)));
              ("memo_loaded", jnum (sum (fun r -> r.Engine.memo_loaded)));
              ("decks", Json.Arr (List.map deck_fields multi.Engine.results));
              ("compliant",
               Json.Arr
                 (List.map (fun l -> Json.Str l) (Multireport.compliant merged)));
              ("all_compliant", Json.Bool (Multireport.all_compliant merged));
              ("report", Json.Str report_text) ]
          in
          let with_metrics =
            if flag "stats" then
              let result, _ = Engine.primary multi in
              base @ [ ("metrics", embed (Metrics.to_json result.Engine.metrics)) ]
            else base
          in
          let with_sarif =
            if flag "sarif" then
              with_metrics
              @ [ ("sarif",
                   embed
                     (Sarif.of_reports ~uri
                        ~suppressed:
                          (List.map
                             (fun (dr : Engine.deck_result) ->
                               ( dr.Engine.dr_deck.Engine.dk_label,
                                 Lint.to_violations dr.Engine.dr_suppressed ))
                             multi.Engine.results)
                        ~relations:merged.Multireport.relations
                        (List.map
                           (fun (dr : Engine.deck_result) ->
                             ( dr.Engine.dr_deck.Engine.dk_label,
                               dr.Engine.dr_deck.Engine.dk_rules,
                               dr.Engine.dr_result.Engine.report ))
                           multi.Engine.results))) ]
            else with_metrics
          in
          ( Json.to_string (Json.Obj (with_trace with_sarif)),
            { o_status = "ok"; o_exit = exit_code; o_errors = errors;
              o_warnings = warnings;
              o_reuse =
                Some
                  ( sum (fun r -> r.Engine.symbols_total),
                    sum (fun r -> r.Engine.symbols_reused) ) } ))))

let process_safe t engines ?req ?trace reqj =
  try process t engines ?req ?trace reqj
  with exn ->
    ( refuse ~extra:(req_field req)
        (Option.value ~default:Json.Null (Json.member "id" reqj))
        ("internal error: " ^ Printexc.to_string exn),
      error_outcome )

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let is_stale p job =
  match job.j_key with
  | None -> false
  | Some key -> (
    match Hashtbl.find_opt p.p_latest key with
    | Some newest -> newest > job.j_ticket
    | None -> false)

let deliver job line =
  job.j_conn.c_reply line;
  Mutex.lock job.j_conn.c_lock;
  job.j_conn.c_outstanding <- job.j_conn.c_outstanding - 1;
  Condition.broadcast job.j_conn.c_done;
  Mutex.unlock job.j_conn.c_lock

let worker_loop t p w () =
  (* This worker's private engines; warmth crosses workers only
     through the shared on-disk cache. *)
  let tel = t.s_telemetry in
  let engines = Hashtbl.create 4 in
  let rec go () =
    Mutex.lock p.p_lock;
    while Queue.is_empty p.p_queue && not (Atomic.get p.p_stop) do
      Condition.wait p.p_work p.p_lock
    done;
    if Queue.is_empty p.p_queue then begin
      (* Stop requested and nothing left: flush warm state to disk so a
         restarted daemon recovers it, then exit. *)
      Mutex.unlock p.p_lock;
      Hashtbl.iter (fun _ e -> Engine.flush e) engines
    end
    else begin
      let job = Queue.pop p.p_queue in
      p.p_inflight <- p.p_inflight + 1;
      let stale = is_stale p job in
      if stale then p.p_cancelled <- p.p_cancelled + 1;
      let depth = Queue.length p.p_queue in
      Mutex.unlock p.p_lock;
      Telemetry.sample_queue_depth tel depth;
      let deq_ns = Metrics.now_ns () in
      let wait_ns =
        let d = Int64.sub deq_ns job.j_enq_ns in
        if Int64.compare d 0L < 0 then 0L else d
      in
      let line =
        if stale then begin
          Telemetry.request_cancelled tel ~req:job.j_seq ~worker:w ();
          cancelled_reply ~req:job.j_seq job.j_id
        end
        else begin
          Telemetry.request_started tel ~req:job.j_seq ~worker:w ~wait_ns;
          (* Request-scoped span tree: the queued span (enqueue →
             dequeue), then the whole service as a "request" span with
             the engine's stage spans nested inside.  One buffer per
             request, in this worker's lane. *)
          let want_trace =
            Telemetry.collecting_traces tel
            || Option.bind (Json.member "trace" job.j_req) Json.bool = Some true
          in
          let tr = if want_trace then Some (Trace.create ~tid:w ()) else None in
          (match tr with
          | Some tr ->
            Trace.record tr ~cat:"serve"
              ~args:[ ("req", string_of_int job.j_seq) ]
              "queued" ~ts_ns:job.j_enq_ns ~dur_ns:wait_ns
          | None -> ());
          let text, outcome =
            Trace.with_span tr ~cat:"serve"
              ~args:[ ("req", string_of_int job.j_seq) ]
              "request"
              (fun () -> process_safe t engines ~req:job.j_seq ?trace:tr job.j_req)
          in
          let service_ns = Int64.sub (Metrics.now_ns ()) deq_ns in
          (match tr with
          | Some tr when Telemetry.collecting_traces tel ->
            Telemetry.add_trace tel ~req:job.j_seq tr
          | _ -> ());
          (* A newer submission may have arrived while we were
             checking: drop the stale result on the floor. *)
          Mutex.lock p.p_lock;
          let stale_now = is_stale p job in
          if stale_now then p.p_cancelled <- p.p_cancelled + 1
          else p.p_served <- p.p_served + 1;
          Mutex.unlock p.p_lock;
          if stale_now then begin
            Telemetry.request_cancelled tel ~req:job.j_seq ~worker:w ();
            cancelled_reply ~req:job.j_seq job.j_id
          end
          else begin
            (match outcome.o_reuse with
            | Some (total, reused) -> Telemetry.record_reuse tel ~total ~reused
            | None -> ());
            Telemetry.request_finished tel ~req:job.j_seq ~worker:w
              ~status:outcome.o_status ~exit_code:outcome.o_exit
              ~errors:outcome.o_errors ~warnings:outcome.o_warnings ~wait_ns
              ~service_ns;
            text
          end
        end
      in
      deliver job line;
      Telemetry.worker_busy tel ~worker:w
        ~ns:(Int64.sub (Metrics.now_ns ()) deq_ns);
      Mutex.lock p.p_lock;
      p.p_inflight <- p.p_inflight - 1;
      Condition.broadcast p.p_done;
      Mutex.unlock p.p_lock;
      go ()
    end
  in
  go ()

let start t =
  Mutex.lock t.s_lock;
  (match t.s_pool with
  | Some _ -> ()
  | None ->
    let p =
      { p_lock = Mutex.create ();
        p_work = Condition.create ();
        p_done = Condition.create ();
        p_queue = Queue.create ();
        p_stop = Atomic.make false;
        p_latest = Hashtbl.create 16;
        p_ticket = 0;
        p_inflight = 0;
        p_served = 0;
        p_cancelled = 0;
        p_overloaded = 0;
        p_workers = [] }
    in
    t.s_pool <- Some p;
    p.p_workers <-
      List.init t.s_workers (fun w -> Domain.spawn (worker_loop t p w));
    Telemetry.lifecycle t.s_telemetry
      ~fields:[ ("workers", jnum t.s_workers); ("max_queue", jnum t.s_max_queue) ]
      "start");
  Mutex.unlock t.s_lock

let pool t =
  match t.s_pool with
  | Some p -> p
  | None ->
    start t;
    Option.get t.s_pool

let connect t ~reply =
  let lock = Mutex.create () in
  let guarded line =
    Mutex.lock lock;
    (try reply line with _ -> ());
    Mutex.unlock lock
  in
  { c_serial = Atomic.fetch_and_add t.s_conn_seq 1;
    c_reply = guarded;
    c_lock = Mutex.create ();
    c_done = Condition.create ();
    c_outstanding = 0 }

let drain t =
  match t.s_pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.p_lock;
    while not (Queue.is_empty p.p_queue) || p.p_inflight > 0 do
      Condition.wait p.p_done p.p_lock
    done;
    Mutex.unlock p.p_lock

let stopped t =
  Atomic.get t.s_stop_req
  || (match t.s_pool with Some p -> Atomic.get p.p_stop | None -> false)

let request_stop t = Atomic.set t.s_stop_req true

let shutdown t =
  match t.s_pool with
  | None -> Atomic.set t.s_stop_req true
  | Some p ->
    Atomic.set t.s_stop_req true;
    Mutex.lock p.p_lock;
    (* The caller that flips the stop flag owns the lifecycle events:
       concurrent shutdowns log begin/end exactly once. *)
    let first = not (Atomic.exchange p.p_stop true) in
    Condition.broadcast p.p_work;
    (* Claim the workers under the lock so concurrent shutdowns join
       each domain exactly once. *)
    let workers = p.p_workers in
    p.p_workers <- [];
    Mutex.unlock p.p_lock;
    if first then Telemetry.lifecycle t.s_telemetry "shutdown_begin";
    drain t;
    List.iter Domain.join workers;
    if first then begin
      Mutex.lock p.p_lock;
      let served = p.p_served and cancelled = p.p_cancelled in
      let overloaded = p.p_overloaded in
      Mutex.unlock p.p_lock;
      Telemetry.lifecycle t.s_telemetry
        ~fields:
          [ ("served", jnum served); ("cancelled", jnum cancelled);
            ("overloaded", jnum overloaded) ]
        "shutdown"
    end

type stats = {
  queued : int;
  inflight : int;
  served : int;
  cancelled : int;
  overloaded : int;
  workers : int;
}

let stats t =
  match t.s_pool with
  | None ->
    { queued = 0; inflight = 0; served = 0; cancelled = 0; overloaded = 0;
      workers = 0 }
  | Some p ->
    Mutex.lock p.p_lock;
    let s =
      { queued = Queue.length p.p_queue;
        inflight = p.p_inflight;
        served = p.p_served;
        cancelled = p.p_cancelled;
        overloaded = p.p_overloaded;
        workers = List.length p.p_workers }
    in
    Mutex.unlock p.p_lock;
    s

(* The satellite view clients were missing: the ack (and every
   overloaded refusal) carries the pool counters, so a client can see
   what the daemon did — and why it refused. *)
let stats_fields s =
  [ ("served", jnum s.served); ("cancelled", jnum s.cancelled);
    ("overloaded", jnum s.overloaded); ("queued", jnum s.queued);
    ("inflight", jnum s.inflight) ]

let shutdown_ack t id =
  let s = stats t in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "shutdown") ]
       @ stats_fields s))

(* ------------------------------------------------------------------ *)
(* Admin surface                                                       *)

let stats_snapshot t =
  let s = stats t in
  Telemetry.snapshot t.s_telemetry ~queued:s.queued ~inflight:s.inflight
    ~served:s.served ~cancelled:s.cancelled ~overloaded:s.overloaded
    ~workers:t.s_workers ~max_queue:t.s_max_queue

(* Answered synchronously — admin requests must not queue behind
   checks, and must keep answering while the daemon drains. *)
let admin_reply t id req kind =
  match kind with
  | "stats" -> (
    match Option.bind (Json.member "format" req) Json.str with
    | Some "prometheus" ->
      (* Text exposition for scrapers that can't walk the JSON shape;
         the snapshot is the same either way. *)
      Json.to_string
        (Json.Obj
           [ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "stats");
             ("prometheus", Json.Str (Telemetry.prometheus (stats_snapshot t))) ])
    | Some fmt when fmt <> "json" ->
      refuse id (Printf.sprintf "unknown stats format %S" fmt)
    | _ ->
      Json.to_string
        (Json.Obj
           [ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "stats");
             ("stats", stats_snapshot t) ]))
  | "health" ->
    let s = stats t in
    let state = if stopped t then "draining" else "ok" in
    Json.to_string
      (Json.Obj
         [ ("id", id); ("ok", Json.Bool true); ("status", Json.Str "health");
           ("health", Json.Str state);
           ("uptime_s", Json.Num (Telemetry.uptime_s t.s_telemetry));
           ("workers", jnum t.s_workers); ("queued", jnum s.queued);
           ("inflight", jnum s.inflight) ])
  | other -> refuse id (Printf.sprintf "unknown admin request %S" other)

let admin_of req = Option.bind (Json.member "admin" req) Json.str

let submit t conn line =
  if String.trim line <> "" then begin
    match Json.parse line with
    | Error msg ->
      Telemetry.request_rejected t.s_telemetry ~error:("bad request: " ^ msg);
      conn.c_reply (refuse Json.Null ("bad request: " ^ msg))
    | Ok req ->
      let id = Option.value ~default:Json.Null (Json.member "id" req) in
      if Option.bind (Json.member "shutdown" req) Json.bool = Some true then begin
        shutdown t;
        conn.c_reply (shutdown_ack t id)
      end
      else begin
        match admin_of req with
        | Some kind -> conn.c_reply (admin_reply t id req kind)
        | None ->
          let p = pool t in
          let seq = Telemetry.next_request t.s_telemetry in
          (* Telemetry calls below run under p_lock so the event log
             orders accepted before the worker's started.  Lock order
             is always pool → telemetry, never the reverse. *)
          Mutex.lock p.p_lock;
          if Atomic.get p.p_stop then begin
            Telemetry.request_rejected t.s_telemetry
              ~error:"server is shutting down";
            Mutex.unlock p.p_lock;
            conn.c_reply
              (refuse ~status:"shutdown" ~extra:(req_field (Some seq)) id
                 "server is shutting down")
          end
          else if Queue.length p.p_queue >= t.s_max_queue then begin
            p.p_overloaded <- p.p_overloaded + 1;
            let extra =
              req_field (Some seq)
              @ [ ("served", jnum p.p_served); ("queued", jnum (Queue.length p.p_queue));
                  ("inflight", jnum p.p_inflight) ]
            in
            Telemetry.request_overloaded t.s_telemetry ~req:seq
              ~queued:(Queue.length p.p_queue);
            Mutex.unlock p.p_lock;
            conn.c_reply
              (refuse ~status:"overloaded" ~extra id
                 "request queue is full; retry later")
          end
          else begin
            p.p_ticket <- p.p_ticket + 1;
            let key =
              match id with
              | Json.Null -> None
              | _ -> Some (conn.c_serial, Json.to_string id)
            in
            (match key with
            | Some k -> Hashtbl.replace p.p_latest k p.p_ticket
            | None -> ());
            Queue.push
              { j_conn = conn; j_req = req; j_id = id; j_key = key;
                j_ticket = p.p_ticket; j_seq = seq;
                j_enq_ns = Metrics.now_ns () }
              p.p_queue;
            Mutex.lock conn.c_lock;
            conn.c_outstanding <- conn.c_outstanding + 1;
            Mutex.unlock conn.c_lock;
            Telemetry.request_accepted t.s_telemetry ~req:seq ~id
              ~queued:(Queue.length p.p_queue);
            Condition.signal p.p_work;
            Mutex.unlock p.p_lock
          end
      end
  end

(* All replies owed to this connection have been written. *)
let conn_drain conn =
  Mutex.lock conn.c_lock;
  while conn.c_outstanding > 0 do
    Condition.wait conn.c_done conn.c_lock
  done;
  Mutex.unlock conn.c_lock

(* ------------------------------------------------------------------ *)
(* Synchronous embedding (tests, one-off scripting)                    *)

let handle_line t line =
  match Json.parse line with
  | Error msg ->
    Telemetry.request_rejected t.s_telemetry ~error:("bad request: " ^ msg);
    refuse Json.Null ("bad request: " ^ msg)
  | Ok req ->
    let id = Option.value ~default:Json.Null (Json.member "id" req) in
    if Option.bind (Json.member "shutdown" req) Json.bool = Some true then begin
      shutdown t;
      shutdown_ack t id
    end
    else begin
      match admin_of req with
      | Some kind -> admin_reply t id req kind
      | None -> fst (process_safe t t.s_engines req)
    end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

(* Raw-fd line reader.  Buffered channels read ahead, which makes them
   unusable with select; this reader owns its buffer and polls [stop]
   every [tick] seconds while idle so SIGTERM and protocol shutdowns
   interrupt a blocked daemon promptly. *)
type reader = {
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_lines : string Queue.t;
  mutable r_eof : bool;
}

let reader fd =
  { r_fd = fd; r_buf = Buffer.create 256; r_lines = Queue.create (); r_eof = false }

let reader_feed r chunk =
  String.iter
    (fun c ->
      if c = '\n' then begin
        Queue.push (Buffer.contents r.r_buf) r.r_lines;
        Buffer.clear r.r_buf
      end
      else Buffer.add_char r.r_buf c)
    chunk

let rec next_line ~stop r =
  if not (Queue.is_empty r.r_lines) then Some (Queue.pop r.r_lines)
  else if r.r_eof || stop () then None
  else begin
    let ready =
      try (match Unix.select [ r.r_fd ] [] [] 0.1 with [], _, _ -> false | _ -> true)
      with Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if ready then begin
      let bytes = Bytes.create 65536 in
      let n =
        try Unix.read r.r_fd bytes 0 (Bytes.length bytes)
        with
        | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> -1
        | Unix.Unix_error (_, _, _) -> 0 (* connection error reads as EOF *)
      in
      if n = 0 then begin
        r.r_eof <- true;
        if Buffer.length r.r_buf > 0 then begin
          (* Serve a final unterminated line rather than drop it. *)
          Queue.push (Buffer.contents r.r_buf) r.r_lines;
          Buffer.clear r.r_buf
        end
      end
      else if n > 0 then reader_feed r (Bytes.sub_string bytes 0 n)
    end;
    next_line ~stop r
  end

(* Whole lines, serialized per fd, write errors swallowed (the client
   may be gone; its remaining replies just vanish). *)
let fd_writer fd =
  fun line ->
    try
      let s = line ^ "\n" in
      let len = String.length s in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring fd s !off (len - !off)
      done
    with Unix.Unix_error _ -> ()

let read_loop t conn r =
  let rec go () =
    match next_line ~stop:(fun () -> stopped t) r with
    | None -> ()
    | Some line ->
      submit t conn line;
      if stopped t then () else go ()
  in
  go ()

let serve_stdio t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  start t;
  let conn = connect t ~reply:(fd_writer Unix.stdout) in
  read_loop t conn (reader Unix.stdin);
  (* EOF or stop: answer everything still queued, flush, and leave. *)
  shutdown t;
  conn_drain conn

let serve_socket t ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  start t;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let client_loop fd () =
    let conn = connect t ~reply:(fd_writer fd) in
    read_loop t conn (reader fd);
    (* Keep the fd open until every reply owed to this connection is
       out; workers write replies from their own domains. *)
    conn_drain conn;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let readers = ref [] in
  let rec accept_loop () =
    if stopped t then ()
    else begin
      let ready =
        try (match Unix.select [ sock ] [] [] 0.1 with [], _, _ -> false | _ -> true)
        with Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      (if ready then
         match (try Some (Unix.accept sock) with Unix.Unix_error _ -> None) with
         | Some (fd, _) -> readers := Domain.spawn (client_loop fd) :: !readers
         | None -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  shutdown t;
  List.iter Domain.join !readers;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())
