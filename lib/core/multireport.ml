type entry = {
  violation : Report.violation;
  decks : int list;
}

type deck_summary = {
  ds_label : string;
  ds_errors : int;
  ds_warnings : int;
}

type t = {
  entries : entry list;
  summaries : deck_summary list;
  relations : string list;
}

(* Group by structural equality of the whole violation record.  The
   merged order is the first deck's print order, then each later deck's
   previously-unseen violations in its own print order — so the merge
   of equal inputs is always the same bytes, and for a single deck the
   entry sequence is exactly that deck's report. *)
let make ?(relations = []) reports =
  let printed (r : Report.t) = List.rev r.Report.violations in
  let tbl : (Report.violation, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iteri
    (fun di (_, r) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt tbl v with
          | Some decks -> if not (List.mem di !decks) then decks := di :: !decks
          | None ->
            let decks = ref [ di ] in
            Hashtbl.add tbl v decks;
            order := (v, decks) :: !order)
        (printed r))
    reports;
  let entries =
    List.rev_map (fun (v, decks) -> { violation = v; decks = List.rev !decks }) !order
  in
  let summaries =
    List.map
      (fun (label, r) ->
        { ds_label = label;
          ds_errors = Report.count ~severity:Report.Error r;
          ds_warnings = Report.count ~severity:Report.Warning r })
      reports
  in
  { entries; summaries; relations }

let count sev t =
  List.length
    (List.filter (fun e -> e.violation.Report.severity = sev) t.entries)

let errors = count Report.Error
let warnings = count Report.Warning

let compliant t =
  List.filter_map
    (fun s -> if s.ds_errors = 0 then Some s.ds_label else None)
    t.summaries

let all_compliant t = List.for_all (fun s -> s.ds_errors = 0) t.summaries

let pp ppf t =
  let labels = Array.of_list (List.map (fun s -> s.ds_label) t.summaries) in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf e ->
         Format.fprintf ppf "%a [decks: %s]" Report.pp_violation e.violation
           (String.concat "," (List.map (fun i -> labels.(i)) e.decks))))
    t.entries

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "deck %s: %d error(s), %d warning(s) — %s@," s.ds_label
        s.ds_errors s.ds_warnings
        (if s.ds_errors = 0 then "compliant" else "violating"))
    t.summaries;
  (* Deck-relation verdicts (R015), only ever present for multi-deck
     sessions, so single-deck summary bytes are untouched. *)
  List.iter (fun line -> Format.fprintf ppf "deck relation: %s@," line) t.relations;
  let n = List.length t.summaries in
  (match compliant t with
  | [] -> Format.fprintf ppf "compliant with none of %d deck(s)" n
  | ls when List.length ls = n ->
    Format.fprintf ppf "compliant with all %d deck(s)" n
  | ls ->
    Format.fprintf ppf "compliant with %d of %d deck(s): %s" (List.length ls) n
      (String.concat ", " ls));
  Format.fprintf ppf "@]"
