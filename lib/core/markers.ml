let layer = "XE"

let to_file ?(margin = 50) (r : Report.t) =
  let boxes =
    List.filter_map
      (fun (v : Report.violation) ->
        match (v.Report.severity, v.Report.where) with
        | Report.Error, Some where ->
          Option.map
            (fun rect -> Cif.Ast.Box { layer; rect; net = Some v.Report.rule; loc = None })
            (Geom.Rect.inflate where margin)
        | _ -> None)
      r.Report.violations
  in
  { Cif.Ast.symbols = []; top_elements = boxes; top_calls = []; waivers = [] }

let to_cif ?margin r = Cif.Print.to_string (to_file ?margin r)

let of_file (f : Cif.Ast.file) =
  List.filter_map
    (fun e ->
      match e with
      | Cif.Ast.Box { layer = l; rect; net = Some rule; _ } when l = layer -> Some (rule, rect)
      | _ -> None)
    f.Cif.Ast.top_elements
