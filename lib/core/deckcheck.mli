(** Deck semantic analysis — the rule-implication engine and the
    static immunity certificates it justifies.

    {!Lint} judges deck entries one at a time; this module reasons
    about what the entries imply {e together}.  Two halves share the
    arithmetic:

    {2 Deck side}

    A constraint graph over {!Tech.Rules}: nodes are the per-layer /
    per-pair width, space and overlap bounds (including directed
    [space_<a>_<b>] overrides), edges are the arithmetic implications
    between them (a lambda entry implies every default, a directed
    spelling implies the matrix cell, a surround chain implies a
    minimal composite feature).  {!check_deck} walks the closure and
    emits the R012+ codes registered in {!Lint.all_codes}:

    - [R012] (error) — unsatisfiable combination: the closure derives
      a composite lower bound that violates a declared minimum (e.g.
      the minimal bonding pad, [contact_size + 2*pad_metal_surround],
      below [width_metal]).  The implying chain is spelled out in the
      message.
    - [R013] (warning) — redundant entry: a written entry whose value
      is already implied by others (the lambda default, the canonical
      matrix cell, or the other directed spelling), so deleting it
      changes nothing.
    - [R014] (error) — non-monotone override family: the winning
      spelling of a layer-pair family is strictly smaller than a
      written-but-shadowed one; the deck {e reads} stricter than it
      {e checks}, the missed-error hazard of the paper's Fig 1.
    - [R015] (note) — cross-deck subsumption verdict, from
      {!compare_rules} / {!deck_relations}.

    {2 Design side}

    A {!cert} is a bundle of per-definition facts — minimum drawn
    feature per layer, minimum local bbox clearance per layer pair,
    per-layer bounding boxes of the whole instantiated subtree —
    computed once per symbol and cached by the engine under subtree
    fingerprints.  Consulted against a concrete deck (through
    {!consult}), a certificate can prove that whole groups of rule
    evaluations cannot fire, letting the element-check and interaction
    stages skip them.

    Soundness rests on two monotonicities: a bounding box contains its
    geometry, so any metric's gap between two geometries is at least
    the same metric's gap between their boxes; and both supported
    metrics (orthogonal and Euclidean) dominate the Chebyshev (L∞)
    gap.  Hence [chebyshev_gap boxA boxB >= req] certifies that no
    spacing rule of requirement [req] can fire between the contents —
    under the {!Interactions.Geometric} spacing model only, which is
    why the engine disables certificates under the exposure model.

    Certificates never change report bytes: a certified skip replaces
    a computation whose result is provably empty.  [DIC_NO_CERTS=1]
    turns consultation off wholesale (see {!enabled}) for the identity
    smokes. *)

(** {1 Deck analysis} *)

(** Closure lints over one deck: R012 (unsatisfiable chains), R013
    (redundant entries), R014 (non-monotone override families).
    Sorted; locations point at the defining deck line when the rule
    set came from text (via {!Tech.Rules.position}).  R013 and the
    canonical-key clause of R014 need provenance to tell {e written}
    entries from defaults, so they stay silent on programmatic rule
    sets with empty [key_positions]. *)
val check_deck : Tech.Rules.t -> Lint.diagnostic list

(** How deck [a] relates to deck [b], pointwise over the semantic
    constraint vector (per-layer minimum widths, per-layer and
    per-pair effective spacings, device surrounds and overhangs).
    Bigger is stricter everywhere; a checked same-net bound is
    stricter than an unchecked one. *)
type relation =
  | Equivalent  (** same constraint vector *)
  | Subsumes  (** [a] at least as strict everywhere, stricter somewhere *)
  | Subsumed  (** [b] at least as strict everywhere, stricter somewhere *)
  | Incomparable

type comparison = {
  cmp_relation : relation;
  cmp_stronger : string list;
      (** witness constraints where [a] is stricter, e.g.
          ["width_metal 400 > 300"] *)
  cmp_weaker : string list;  (** where [b] is stricter *)
}

val compare_rules : Tech.Rules.t -> Tech.Rules.t -> comparison

(** Pairwise R015 subsumption notes over a labelled deck list, in
    deck order ((0,1), (0,2), (1,2), …).  These feed the multi-deck
    merged report, the lint CLI, and SARIF — never the per-deck
    reports, which stay byte-identical to single-deck runs. *)
val deck_relations : (string * Tech.Rules.t) list -> Lint.diagnostic list

(** One printable line per relation note (the diagnostic message). *)
val relation_lines : (string * Tech.Rules.t) list -> string list

(** {1 Static immunity certificates} *)

type cert = {
  ct_placement_clean : bool;
      (** not a device and every local element is interconnect — the
          element stage can emit nothing but width findings *)
  ct_min_feature : int array;
      (** per {!Tech.Layer.index}: minimum drawn width of the local
          elements (box/wire); [max_int] when the layer is empty, [0]
          when a polygon makes the exact minimum unknown *)
  ct_pair_clear : int array option;
      (** per unordered layer-index pair [ia * nlayers + ib] (ia <=
          ib): minimum Chebyshev bbox gap over distinct local element
          pairs; [max_int] when no such pair; [None] when the symbol
          has too many local elements to bound cheaply *)
  ct_subtree_bbox : Geom.Rect.t option array;
      (** per layer: bounding box of every element of the whole
          instantiated subtree, in the symbol's frame *)
  ct_complete : bool;
      (** all callee certificates were available when this one was
          built; guards ignore incomplete certificates *)
}

val nlayers : int

(** Build one symbol's certificate.  [lookup] resolves callee
    certificates by symbol id (the engine walks definitions
    callees-first, so they are always present; a miss just marks the
    certificate incomplete). *)
val certify : lookup:(int -> cert option) -> Model.symbol -> cert

(** {1 Consulting certificates against a deck} *)

(** The per-pair spacing requirement matrix of a deck: for every
    (layer, layer) index pair, the largest gap the deck can demand
    ([max] of the matrix cell's different-net and same-net bounds; [0]
    for No-rule and Device-checked cells, which the pair check skips
    regardless of geometry). *)
val requirements : Tech.Rules.t -> int array

type consult = {
  cs_cert : int -> cert option;  (** certificate by symbol id *)
  cs_req : int array;  (** {!requirements} of the deck under check *)
  cs_inst_memo : (int * int * Geom.Transform.t, bool) Hashtbl.t;
      (** instance-pair verdicts keyed on (sid, sid, relative
          placement): placement transforms are Chebyshev isometries,
          so the verdict only depends on [tra^-1 . trb].  Touched only
          from the serial guard prepass. *)
}

val consult : cert_of:(int -> cert option) -> Tech.Rules.t -> consult

(** The element stage is provably silent for this definition under
    [rules]: placement-clean and every layer's minimum drawn feature
    meets the deck's minimum width. *)
val element_immune : Tech.Rules.t -> cert -> bool

(** No local element pair of symbol [sid] can violate any spacing
    rule of the deck: every layer-pair's minimum bbox clearance meets
    the deck's requirement. *)
val local_guard : consult -> sid:int -> bool

(** No pair between a local element (layer [la], bounding box [bbox])
    and any geometry of the placed subtrees [(transform, callee sid)]
    can fire under the deck. *)
val elt_guard :
  consult -> la:Tech.Layer.t -> bbox:Geom.Rect.t ->
  (Geom.Transform.t * int) list -> bool

(** No pair between the two placed subtrees can fire under the
    deck. *)
val inst_guard :
  consult -> a:Geom.Transform.t * int -> b:Geom.Transform.t * int -> bool

(** {1 Toggling}

    Certificates are an optimisation with a hard identity bar, so they
    carry a kill switch: [DIC_NO_CERTS] (any value but ["0"] or empty)
    disables consultation process-wide.  {!set_enabled} overrides the
    environment for tests and benches. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
