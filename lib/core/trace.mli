(** Span tracing for the checking pipeline.

    Where {!Metrics} answers "how much, in total", this module answers
    "when, and inside what": it records hierarchical wall-clock spans —
    one per pipeline stage, one per symbol-definition check, one per
    domain-parallel interaction shard — into an append buffer, and
    exports them as Chrome trace-event JSON that Perfetto /
    [chrome://tracing] load directly.  This is the paper's Fig 10 cost
    breakdown as a navigable timeline instead of a bar chart.

    The recording API takes a [t option] so instrumented code reads the
    same whether tracing is on or off, and the disabled path costs one
    pattern match — the checker's hot paths stay clean when no [--trace]
    sink was requested.

    {2 Invariants}

    - Spans recorded through {!with_span} nest properly within one
      buffer: any two are either disjoint in time or one contains the
      other (the stack discipline of [with_span] guarantees it).
    - A buffer is single-domain; parallel stages record into one buffer
      per domain ({!create} with that shard's [tid]) and fold them with
      {!merge_into} in shard order after the join, so the event
      sequence is deterministic for a given (design, jobs) pair.
    - {!to_chrome_json} rebases timestamps to the earliest event;
      structure and names are reproducible, timestamps are not. *)

type event = {
  e_name : string;
  e_cat : string;  (** Chrome "cat": ["stage"], ["symbol"], ["shard"], … *)
  e_ph : [ `Complete | `Instant ];
  e_ts_ns : int64;  (** monotonic-clock start *)
  e_dur_ns : int64;  (** 0 for instants *)
  e_tid : int;  (** shard/domain index; 0 for the main domain *)
  e_args : (string * string) list;
}

type t

(** A fresh buffer.  [tid] labels every event recorded through it
    (Chrome renders one lane per tid). *)
val create : ?tid:int -> unit -> t

val length : t -> int

(** Recorded events in recording order. *)
val events : t -> event list

(** [with_span t ~cat name f] runs [f]; if [t] is [Some _], its
    wall-clock extent is recorded as a complete span (also when [f]
    raises).  [None] runs [f] with no overhead. *)
val with_span :
  t option -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a

(** A zero-duration marker event. *)
val instant :
  t option -> ?cat:string -> ?args:(string * string) list -> string -> unit

(** Append a span measured externally ([ts_ns] from the monotonic
    clock, cf. {!Metrics.now_ns}). *)
val record :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  ts_ns:int64 -> dur_ns:int64 -> unit

(** Append [src]'s events to [into] (in [src] order; [src] keeps its
    events).  Call once per shard, in shard order, for determinism. *)
val merge_into : into:t -> t -> unit

(** The Chrome trace-event "JSON Object Format": [{"traceEvents":
    [...], "otherData": {...}}] with ["X"]/["i"] phase events,
    microsecond [ts]/[dur] rebased to the earliest event, [pid] 1 and
    one [tid] per shard.  Loadable in Perfetto ({:https://ui.perfetto.dev})
    and [chrome://tracing].  [tool_version] defaults to
    {!Version.version} and is embedded in [otherData]. *)
val to_chrome_json : ?tool_version:string -> t -> string
