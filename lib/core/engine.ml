type config = {
  interactions : Interactions.config;
  run_erc : bool;
  expected_netlist : Netcompare.expected option;
  relational : Process_model.Exposure.t option;
  run_lint : bool;
}

let default_config =
  { interactions = Interactions.default_config; run_erc = true; expected_netlist = None;
    relational = None; run_lint = false }

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
  metrics : Metrics.t;
  model : Model.t;
  nets : Netgen.t;
}

type reuse = {
  symbols_total : int;
  symbols_reused : int;
  defs_from_disk : int;
  memo_loaded : int;
}

let erc_violations netlist =
  List.map
    (fun v ->
      let rule =
        match v with
        | Netlist.Erc.Floating_net _ -> "erc.floating-net"
        | Netlist.Erc.Supply_short _ -> "erc.supply-short"
        | Netlist.Erc.Bus_on_supply _ -> "erc.bus-on-supply"
        | Netlist.Erc.Depletion_on_ground _ -> "erc.depletion-on-ground"
      in
      let severity =
        (* A floating net is suspicious, not provably fatal. *)
        match v with Netlist.Erc.Floating_net _ -> `W | _ -> `E
      in
      let msg = Format.asprintf "%a" Netlist.Erc.pp_violation v in
      match severity with
      | `E -> Report.error ~stage:Report.Electrical ~rule ~context:"netlist" msg
      | `W -> Report.warning ~stage:Report.Electrical ~rule ~context:"netlist" msg)
    (Netlist.Erc.check netlist)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

(* Structural fingerprint of one definition.  Everything the
   per-definition checks can observe is folded in: name (violations
   carry it as context), device kind, element geometry/layers/nets,
   and calls with their transforms. *)
let fingerprint (s : Model.symbol) =
  let elements =
    List.map
      (fun (e : Model.element) ->
        ( Tech.Layer.index e.Model.layer,
          List.map
            (fun r -> (Geom.Rect.x0 r, Geom.Rect.y0 r, Geom.Rect.x1 r, Geom.Rect.y1 r))
            e.Model.rects,
          e.Model.net_label ))
      s.Model.elements
  in
  let calls =
    List.map
      (fun (c : Model.call) ->
        let o = Geom.Transform.apply_pt c.Model.transform Geom.Pt.zero in
        let ex = Geom.Transform.apply_pt c.Model.transform (Geom.Pt.make 1 0) in
        (c.Model.callee, o.Geom.Pt.x, o.Geom.Pt.y, ex.Geom.Pt.x, ex.Geom.Pt.y,
         Geom.Transform.det c.Model.transform))
      s.Model.calls
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (s.Model.sname, Option.map Tech.Device.to_tag s.Model.device, elements, calls)
          []))

let subtree_fingerprints (model : Model.t) =
  (* model.symbols is topologically sorted, callees first. *)
  let fps = Hashtbl.create 16 in
  List.iter
    (fun (s : Model.symbol) ->
      let own = fingerprint s in
      let subs =
        List.map (fun (c : Model.call) -> Hashtbl.find fps c.Model.callee) s.Model.calls
      in
      Hashtbl.replace fps s.Model.sid
        (Digest.to_hex (Digest.string (String.concat ";" (own :: subs)))))
    model.Model.symbols;
  fps

(* Parallelism never affects results, so the environment digest — the
   cache address — normalises [jobs] away.  Everything else in the
   config (and the whole rule set) is folded in. *)
let env_key rules (config : config) =
  let c = { config with interactions = { config.interactions with Interactions.jobs = 1 } } in
  Digest.to_hex (Digest.string (Marshal.to_string (rules, c) []))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

type t = {
  e_rules : Tech.Rules.t;
  mutable e_config : config;
  e_cache : Cache.t option;
  mutable e_env : string;
  (* fingerprint -> per-definition results, valid within [e_env] *)
  e_defs : (string, Cache.def_entry) Hashtbl.t;
  e_memo : Interactions.memo;
  (* sid -> subtree fingerprint from the previous check, for memo
     invalidation across edits *)
  mutable e_memo_fps : (int * string) list;
  (* the on-disk memo (content-addressed keys), loaded at most once per
     environment *)
  mutable e_disk_memo : Cache.memo_file option;
  (* sid -> subtree fingerprint from the most recent check, kept so
     [flush] can re-run [save_memo] outside any check *)
  mutable e_last_subtree : (int, string) Hashtbl.t option;
}

let create ?(config = default_config) ?cache_dir rules =
  { e_rules = rules;
    e_config = config;
    e_cache = Option.map Cache.open_dir cache_dir;
    e_env = env_key rules config;
    e_defs = Hashtbl.create 64;
    e_memo = Interactions.create_memo ();
    e_memo_fps = [];
    e_disk_memo = None;
    e_last_subtree = None }

let rules t = t.e_rules
let config t = t.e_config
let same_env t rules config = String.equal (env_key rules config) t.e_env

let with_config t config =
  let env = env_key t.e_rules config in
  if not (String.equal env t.e_env) then begin
    (* New environment: none of the warm state can be trusted. *)
    Hashtbl.reset t.e_defs;
    Interactions.prune_memo t.e_memo ~keep:(fun _ -> false);
    t.e_memo_fps <- [];
    t.e_disk_memo <- None;
    t.e_last_subtree <- None;
    t.e_env <- env
  end;
  t.e_config <- config;
  t

let with_jobs t jobs =
  with_config t
    { t.e_config with interactions = { t.e_config.interactions with Interactions.jobs = jobs } }

let with_metric t metric =
  with_config t
    { t.e_config with interactions = { t.e_config.interactions with Interactions.metric } }

let with_same_net t check_same_net =
  with_config t
    { t.e_config with
      interactions = { t.e_config.interactions with Interactions.check_same_net } }

let with_spacing_model t spacing_model =
  with_config t
    { t.e_config with
      interactions = { t.e_config.interactions with Interactions.spacing_model } }

let with_erc t run_erc = with_config t { t.e_config with run_erc }
let with_lint t run_lint = with_config t { t.e_config with run_lint }
let with_expected_netlist t expected_netlist = with_config t { t.e_config with expected_netlist }
let with_relational t relational = with_config t { t.e_config with relational }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)

(* One per symbol occurrence in the model: either the cached entry to
   replay, or the freshly computed pieces accumulated stage by stage so
   they can be stored as one entry afterwards. *)
type slot = {
  sl_sym : Model.symbol;
  sl_fp : string;
  sl_hit : Cache.def_entry option;
  mutable sl_el : Report.violation list;
  mutable sl_dv : Report.violation list;
  mutable sl_rel : Report.violation list;
}

(* Invalidate memoised instance pairs whose definition subtree changed
   since the previous check, then pull in any surviving entries from
   the on-disk memo (remapping its content-addressed keys to this
   model's symbol ids).  Returns the number of entries imported. *)
let refresh_memo t trace subtree =
  let unchanged sid =
    match (List.assoc_opt sid t.e_memo_fps, Hashtbl.find_opt subtree sid) with
    | Some old_fp, Some new_fp -> String.equal old_fp new_fp
    | _ -> false
  in
  Interactions.prune_memo t.e_memo ~keep:unchanged;
  t.e_memo_fps <- Hashtbl.fold (fun sid fp acc -> (sid, fp) :: acc) subtree [];
  match t.e_cache with
  | None -> 0
  | Some cache ->
    Trace.with_span trace ~cat:"cache" "memo-load" (fun () ->
        let disk =
          match t.e_disk_memo with
          | Some d -> d
          | None ->
            let d = Cache.load_memo cache ~env:t.e_env in
            t.e_disk_memo <- Some d;
            d
        in
        if disk = [] then 0
        else begin
          let by_fp = Hashtbl.create 64 in
          Hashtbl.iter
            (fun sid fp ->
              Hashtbl.replace by_fp fp
                (sid :: Option.value ~default:[] (Hashtbl.find_opt by_fp fp)))
            subtree;
          let present = Hashtbl.create 64 in
          List.iter
            (fun (key, _) -> Hashtbl.replace present key ())
            (Interactions.export_memo t.e_memo);
          let imported = ref [] in
          List.iter
            (fun ((fpa, fpb, tr), entry) ->
              match (Hashtbl.find_opt by_fp fpa, Hashtbl.find_opt by_fp fpb) with
              | Some sas, Some sbs ->
                List.iter
                  (fun sa ->
                    List.iter
                      (fun sb ->
                        let key = (sa, sb, tr) in
                        if not (Hashtbl.mem present key) then begin
                          Hashtbl.replace present key ();
                          imported := (key, entry) :: !imported
                        end)
                      sbs)
                  sas
              | _ -> ())
            disk;
          Interactions.import_memo t.e_memo !imported;
          List.length !imported
        end)

(* Persist the memo under content-addressed keys (subtree fingerprints
   instead of process-local symbol ids), deduplicated and sorted so the
   file is deterministic for a given entry set.  The file is a merge
   with what was already on disk: entries for definitions absent from
   the current model (another design checked by the same server, or a
   pre-edit version of this one) are still content-valid, so dropping
   them would throw warmth away. *)
let save_memo t trace subtree =
  match t.e_cache with
  | None -> ()
  | Some cache ->
    Trace.with_span trace ~cat:"cache" "memo-save" (fun () ->
        let dedup = Hashtbl.create 64 in
        (match t.e_disk_memo with
        | Some old -> List.iter (fun (k, e) -> Hashtbl.replace dedup k e) old
        | None -> ());
        List.iter
          (fun ((sa, sb, tr), entry) ->
            match (Hashtbl.find_opt subtree sa, Hashtbl.find_opt subtree sb) with
            | Some fa, Some fb -> Hashtbl.replace dedup (fa, fb, tr) entry
            | _ -> ())
          (Interactions.export_memo t.e_memo);
        let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) dedup [] in
        let entries = List.sort (fun (ka, _) (kb, _) -> compare ka kb) entries in
        t.e_disk_memo <- Some entries;
        Cache.store_memo cache ~env:t.e_env entries)

let check ?metrics ?trace ?progress t file =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let tick name = match progress with None -> () | Some f -> f name in
  (* Each stage is announced to [progress], timed into the metrics, and
     recorded as a ["stage"]-category trace span — one wrapper so the
     three views always agree on stage names. *)
  let timed name f =
    tick name;
    Trace.with_span trace ~cat:"stage" name (fun () -> Metrics.time_stage m name f)
  in
  match timed "elaborate" (fun () -> Model.elaborate t.e_rules file) with
  | Error e -> Error e
  | Ok (model, parse_issues) ->
    Metrics.incr ~by:(Model.symbol_count model) m "model.symbols";
    Metrics.incr ~by:(Model.definition_elements model) m "model.definition_elements";
    Metrics.incr ~by:(Model.instantiated_elements model) m "model.instantiated_elements";
    (* Static lints run before any geometry: the deck pass over the
       session's rules and the design pass over the syntax tree +
       model.  Off by default so the default report bytes are
       untouched; an engine in a new lint config lands on a new
       environment digest anyway. *)
    let lint_issues =
      if not t.e_config.run_lint then []
      else
        timed "lint" (fun () ->
            let diags =
              Lint.sort
                (Lint.check_deck t.e_rules @ Lint.check_ast file @ Lint.check_model model)
            in
            Lint.record_metrics m diags;
            Lint.to_violations diags)
    in
    let subtree = subtree_fingerprints model in
    let memo_loaded = refresh_memo t trace subtree in
    (* Resolve every definition against the session (then disk) cache
       before the sweeps start, so each stage below just replays or
       computes. *)
    let defs_from_disk = ref 0 and reused = ref 0 in
    let slots =
      Trace.with_span trace ~cat:"cache" "defs-lookup" (fun () ->
          List.map
            (fun (s : Model.symbol) ->
              let fp = fingerprint s in
              let hit =
                match Hashtbl.find_opt t.e_defs fp with
                | Some e -> Some e
                | None -> (
                  match t.e_cache with
                  | None -> None
                  | Some cache -> (
                    match Cache.find_def cache ~env:t.e_env ~fp with
                    | Some e ->
                      incr defs_from_disk;
                      Hashtbl.replace t.e_defs fp e;
                      Some e
                    | None -> None))
              in
              if Option.is_some hit then incr reused;
              { sl_sym = s; sl_fp = fp; sl_hit = hit; sl_el = []; sl_dv = []; sl_rel = [] })
            model.Model.symbols)
    in
    (* Per-definition sweep: replayed slots contribute their cached
       list in place, computed slots get the ["symbol"] span and
       [symbol.<name>] cost charge — so a cold engine's trace and
       metrics match the historical Checker.run exactly, and the
       report ordering (all elements, then all devices, …) is the same
       either way. *)
    let per_symbol stage compute replay =
      List.concat_map
        (fun sl ->
          match sl.sl_hit with
          | Some e -> replay e
          | None ->
            Trace.with_span trace ~cat:"symbol" ~args:[ ("stage", stage) ]
              sl.sl_sym.Model.sname (fun () ->
                let t0 = Metrics.now_ns () in
                let vs = compute sl in
                Metrics.add_cost_ns m ("symbol." ^ sl.sl_sym.Model.sname)
                  (Int64.sub (Metrics.now_ns ()) t0);
                vs))
        slots
    in
    let element_issues =
      timed "elements" (fun () ->
          per_symbol "elements"
            (fun sl ->
              let vs = Element_checks.check_symbol model.Model.rules sl.sl_sym in
              sl.sl_el <- vs;
              vs)
            (fun e -> e.Cache.de_elements))
    in
    let device_issues =
      timed "devices" (fun () ->
          per_symbol "devices"
            (fun sl ->
              let vs = Devices.check_symbol model.Model.rules sl.sl_sym in
              sl.sl_dv <- vs;
              vs)
            (fun e -> e.Cache.de_devices))
    in
    let relational_issues =
      match t.e_config.relational with
      | None -> []
      | Some exposure ->
        timed "devices-relational" (fun () ->
            List.concat_map
              (fun sl ->
                match sl.sl_hit with
                | Some e -> e.Cache.de_relational
                | None ->
                  let vs = Devices.check_relational exposure model.Model.rules sl.sl_sym in
                  sl.sl_rel <- vs;
                  vs)
              slots)
    in
    (* Freshly computed definitions become cache entries (session +
       disk).  When [relational] is off the stored list is empty, which
       is sound: the environment digest separates the two configs. *)
    Trace.with_span trace ~cat:"cache" "defs-save" (fun () ->
        let stored = Hashtbl.create 16 in
        List.iter
          (fun sl ->
            if Option.is_none sl.sl_hit && not (Hashtbl.mem stored sl.sl_fp) then begin
              Hashtbl.replace stored sl.sl_fp ();
              let entry =
                { Cache.de_elements = sl.sl_el;
                  de_devices = sl.sl_dv;
                  de_relational = sl.sl_rel }
              in
              Hashtbl.replace t.e_defs sl.sl_fp entry;
              match t.e_cache with
              | None -> ()
              | Some cache -> Cache.store_def cache ~env:t.e_env ~fp:sl.sl_fp entry
            end)
          slots);
    let total = List.length slots in
    Metrics.incr ~by:total m "cache.symbols_total";
    Metrics.incr ~by:!reused m "cache.symbols_reused";
    Metrics.incr ~by:!defs_from_disk m "cache.defs_from_disk";
    Metrics.incr ~by:(total - !reused) m "cache.defs_computed";
    Metrics.incr ~by:memo_loaded m "cache.memo_loaded";
    if total > 0 then
      Metrics.set_gauge m "cache.hit_ratio"
        (float_of_int !reused /. float_of_int total);
    (* Composite stages always run fresh: they are the hierarchical,
       cheap part, and they stitch the cached pieces together. *)
    let nets, connection_issues = timed "connections+netlist" (fun () -> Netgen.build model) in
    let netlist = timed "netlist-export" (fun () -> Netgen.netlist nets) in
    let interaction_issues, interaction_stats =
      timed "interactions" (fun () ->
          Interactions.check ~config:t.e_config.interactions ~memo:t.e_memo ~metrics:m
            ?trace nets)
    in
    let electrical_issues =
      if t.e_config.run_erc then timed "electrical" (fun () -> erc_violations netlist)
      else []
    in
    let consistency_issues =
      match t.e_config.expected_netlist with
      | None -> []
      | Some expected -> timed "netlist-compare" (fun () -> Netcompare.check expected netlist)
    in
    let local, crossing = Netgen.locality nets in
    let locality_info =
      Report.info ~stage:Report.Netlist_gen ~rule:"netlist.locality" ~context:"TOP"
        (Printf.sprintf "%d net(s) local to one definition, %d crossing boundaries" local
           crossing)
    in
    let report =
      { Report.violations =
          lint_issues @ parse_issues @ element_issues @ device_issues @ relational_issues
          @ connection_issues @ interaction_issues @ electrical_issues
          @ consistency_issues @ [ locality_info ] }
    in
    Metrics.count_report m report;
    save_memo t trace subtree;
    t.e_last_subtree <- Some subtree;
    Ok
      ( { report;
          netlist;
          interaction_stats;
          stage_seconds = Metrics.stage_seconds m;
          metrics = m;
          model;
          nets },
        { symbols_total = total;
          symbols_reused = !reused;
          defs_from_disk = !defs_from_disk;
          memo_loaded } )

(* Persist whatever warm state the session holds; a no-op before the
   first check or without a cache directory.  [check] already saves the
   memo on every run, so this only matters for orderly teardown paths
   (daemon shutdown) that want an explicit flush point. *)
let flush t =
  match t.e_last_subtree with
  | None -> ()
  | Some subtree -> save_memo t None subtree

let check_string ?metrics ?trace ?progress t src =
  match Cif.Parse.file src with
  | Error e -> Error (Cif.Parse.string_of_error e)
  | Ok file -> check ?metrics ?trace ?progress t file

let pp_summary ppf r =
  let by sev = Report.count ~severity:sev r.report in
  Format.fprintf ppf "%d error(s), %d warning(s), %d net(s)" (by Report.Error)
    (by Report.Warning)
    (List.length r.netlist.Netlist.Net.nets)
