type config = {
  interactions : Interactions.config;
  run_erc : bool;
  expected_netlist : Netcompare.expected option;
  relational : Process_model.Exposure.t option;
  run_lint : bool;
}

let default_config =
  { interactions = Interactions.default_config; run_erc = true; expected_netlist = None;
    relational = None; run_lint = false }

type deck = {
  dk_label : string;
  dk_rules : Tech.Rules.t;
}

let deck ?label rules =
  { dk_label = (match label with Some l -> l | None -> rules.Tech.Rules.name);
    dk_rules = rules }

(* Labels key the merged report's membership annotations and the SARIF
   run ids, so collisions (two decks from files of the same basename)
   get a positional suffix rather than aliasing each other. *)
let dedupe_labels decks =
  let seen = Hashtbl.create 8 in
  List.map
    (fun d ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen d.dk_label) in
      Hashtbl.replace seen d.dk_label n;
      if n = 1 then d else { d with dk_label = Printf.sprintf "%s#%d" d.dk_label n })
    decks

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  metrics : Metrics.t;
  model : Model.t;
  nets : Netgen.t;
}

type reuse = {
  symbols_total : int;
  symbols_reused : int;
  defs_from_disk : int;
  memo_loaded : int;
}

type deck_result = {
  dr_deck : deck;
  dr_result : result;
  dr_reuse : reuse;
  dr_suppressed : Lint.diagnostic list;
}

type multi = {
  results : deck_result list;
  merged : Multireport.t;
}

let primary m =
  let dr = List.hd m.results in
  (dr.dr_result, dr.dr_reuse)

let erc_violations netlist =
  List.map
    (fun v ->
      let rule =
        match v with
        | Netlist.Erc.Floating_net _ -> "erc.floating-net"
        | Netlist.Erc.Supply_short _ -> "erc.supply-short"
        | Netlist.Erc.Bus_on_supply _ -> "erc.bus-on-supply"
        | Netlist.Erc.Depletion_on_ground _ -> "erc.depletion-on-ground"
      in
      let severity =
        (* A floating net is suspicious, not provably fatal. *)
        match v with Netlist.Erc.Floating_net _ -> `W | _ -> `E
      in
      let msg = Format.asprintf "%a" Netlist.Erc.pp_violation v in
      match severity with
      | `E -> Report.error ~stage:Report.Electrical ~rule ~context:"netlist" msg
      | `W -> Report.warning ~stage:Report.Electrical ~rule ~context:"netlist" msg)
    (Netlist.Erc.check netlist)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

(* Structural fingerprint of one definition.  Everything the
   per-definition checks can observe is folded in: name (violations
   carry it as context), device kind, element geometry/layers/nets,
   and calls with their transforms. *)
let fingerprint (s : Model.symbol) =
  let elements =
    List.map
      (fun (e : Model.element) ->
        ( Tech.Layer.index e.Model.layer,
          List.map
            (fun r -> (Geom.Rect.x0 r, Geom.Rect.y0 r, Geom.Rect.x1 r, Geom.Rect.y1 r))
            e.Model.rects,
          e.Model.net_label ))
      s.Model.elements
  in
  let calls =
    List.map
      (fun (c : Model.call) ->
        let o = Geom.Transform.apply_pt c.Model.transform Geom.Pt.zero in
        let ex = Geom.Transform.apply_pt c.Model.transform (Geom.Pt.make 1 0) in
        (c.Model.callee, o.Geom.Pt.x, o.Geom.Pt.y, ex.Geom.Pt.x, ex.Geom.Pt.y,
         Geom.Transform.det c.Model.transform))
      s.Model.calls
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (s.Model.sname, Option.map Tech.Device.to_tag s.Model.device, elements, calls)
          []))

let subtree_fingerprints (model : Model.t) =
  (* model.symbols is topologically sorted, callees first. *)
  let fps = Hashtbl.create 16 in
  List.iter
    (fun (s : Model.symbol) ->
      let own = fingerprint s in
      let subs =
        List.map (fun (c : Model.call) -> Hashtbl.find fps c.Model.callee) s.Model.calls
      in
      Hashtbl.replace fps s.Model.sid
        (Digest.to_hex (Digest.string (String.concat ";" (own :: subs)))))
    model.Model.symbols;
  fps

(* Parallelism never affects results, so the environment digest — the
   cache address — normalises [jobs] away.  The rule set enters through
   its canonical textual form, not its in-memory record: source
   positions (and any other provenance that never reaches a verdict)
   must not split the cache, and two decks that print the same are the
   same deck. *)
let env_key rules (config : config) =
  let c = { config with interactions = { config.interactions with Interactions.jobs = 1 } } in
  Digest.to_hex (Digest.string (Marshal.to_string (Tech.Rules.to_string rules, c) []))

(* The interaction memo's own address.  A memoised candidate list
   depends only on the geometry, the candidate cutoff [max_dist], and
   the distance metric — never on the individual spacing values — so
   decks agreeing on those share one memo, on disk and warm. *)
let memo_env_key rules (config : config) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (Interactions.max_dist rules, config.interactions.Interactions.metric)
          []))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

(* Warm interaction-memo state for one memo environment (one [dmax] ×
   metric class of decks). *)
type memo_slot = {
  ms_env : string;
  ms_memo : Interactions.memo;
  (* sid -> subtree fingerprint from the previous check, for memo
     invalidation across edits *)
  mutable ms_fps : (int * string) list;
  (* the on-disk memo (content-addressed keys), loaded at most once *)
  mutable ms_disk : Cache.memo_file option;
}

type t = {
  mutable e_decks : deck list;
  mutable e_config : config;
  e_cache : Cache.t option;
  (* the primary deck's environment digest *)
  mutable e_env : string;
  (* env -> fingerprint -> per-definition results.  One table per deck
     environment, so warming deck A never touches deck B's entries. *)
  e_defs : (string, (string, Cache.def_entry) Hashtbl.t) Hashtbl.t;
  (* env -> fingerprint -> that definition's model-pass lints.  D-codes
     are per-definition facts, so warm sessions replay them like check
     results instead of re-running the skeleton-erosion pass. *)
  e_lints : (string, (string, Lint.diagnostic list) Hashtbl.t) Hashtbl.t;
  (* memo-env -> slot, ditto for the interaction memo *)
  e_memos : (string, memo_slot) Hashtbl.t;
  (* sid -> subtree fingerprint from the most recent check, kept so
     [flush] can re-run the memo save outside any check *)
  mutable e_last_subtree : (int, string) Hashtbl.t option;
  (* subtree fingerprint -> static immunity certificate.  Certificates
     are pure geometry — no deck, no config enters them — so one table
     serves every environment and survives config changes. *)
  e_certs : (string, Deckcheck.cert) Hashtbl.t;
}

let create ?(config = default_config) ?cache_dir ?decks rules =
  let decks =
    match decks with
    | Some [] -> invalid_arg "Engine.create: empty deck list"
    | Some ds -> ds
    | None -> [ deck rules ]
  in
  { e_decks = decks;
    e_config = config;
    e_cache = Option.map Cache.open_dir cache_dir;
    e_env = env_key (List.hd decks).dk_rules config;
    e_defs = Hashtbl.create 4;
    e_lints = Hashtbl.create 4;
    e_memos = Hashtbl.create 4;
    e_last_subtree = None;
    e_certs = Hashtbl.create 64 }

let rules t = (List.hd t.e_decks).dk_rules
let decks t = t.e_decks
let config t = t.e_config
let same_env t rules config = String.equal (env_key rules config) t.e_env

let with_decks t decks =
  (match decks with [] -> invalid_arg "Engine.with_decks: empty deck list" | _ -> ());
  t.e_decks <- decks;
  t.e_env <- env_key (List.hd decks).dk_rules t.e_config;
  t

let with_config t config =
  let env = env_key (rules t) config in
  if not (String.equal env t.e_env) then begin
    (* New environment: none of the warm state can be trusted (the
       per-env tables could survive, but a config change invalidates
       every deck's address at once, so a clean slate is simpler). *)
    Hashtbl.reset t.e_defs;
    Hashtbl.reset t.e_lints;
    Hashtbl.reset t.e_memos;
    t.e_last_subtree <- None;
    t.e_env <- env
  end;
  t.e_config <- config;
  t

let with_jobs t jobs =
  with_config t
    { t.e_config with interactions = { t.e_config.interactions with Interactions.jobs = jobs } }

let with_metric t metric =
  with_config t
    { t.e_config with interactions = { t.e_config.interactions with Interactions.metric } }

let with_same_net t check_same_net =
  with_config t
    { t.e_config with
      interactions = { t.e_config.interactions with Interactions.check_same_net } }

let with_spacing_model t spacing_model =
  with_config t
    { t.e_config with
      interactions = { t.e_config.interactions with Interactions.spacing_model } }

let with_erc t run_erc = with_config t { t.e_config with run_erc }
let with_lint t run_lint = with_config t { t.e_config with run_lint }
let with_expected_netlist t expected_netlist = with_config t { t.e_config with expected_netlist }
let with_relational t relational = with_config t { t.e_config with relational }

let subtbl tbl env =
  match Hashtbl.find_opt tbl env with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 64 in
    Hashtbl.add tbl env h;
    h

let defs_for t env = subtbl t.e_defs env
let lints_for t env = subtbl t.e_lints env

let slot_for t rules =
  let env = memo_env_key rules t.e_config in
  match Hashtbl.find_opt t.e_memos env with
  | Some s -> s
  | None ->
    let s =
      { ms_env = env; ms_memo = Interactions.create_memo (); ms_fps = []; ms_disk = None }
    in
    Hashtbl.add t.e_memos env s;
    s

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)

(* One per symbol occurrence in the model, per deck environment: either
   the cached entry to replay, or the freshly computed pieces
   accumulated stage by stage so they can be stored as one entry
   afterwards. *)
type slot = {
  sl_sym : Model.symbol;
  sl_fp : string;
  sl_hit : Cache.def_entry option;
  mutable sl_el : Report.violation list;
  mutable sl_dv : Report.violation list;
  mutable sl_rel : Report.violation list;
}

(* Invalidate memoised instance pairs whose definition subtree changed
   since the previous check, then pull in any surviving entries from
   the on-disk memo (remapping its content-addressed keys to this
   model's symbol ids).  Returns the number of entries imported. *)
let refresh_slot t trace subtree slot =
  let unchanged sid =
    match (List.assoc_opt sid slot.ms_fps, Hashtbl.find_opt subtree sid) with
    | Some old_fp, Some new_fp -> String.equal old_fp new_fp
    | _ -> false
  in
  Interactions.prune_memo slot.ms_memo ~keep:unchanged;
  slot.ms_fps <- Hashtbl.fold (fun sid fp acc -> (sid, fp) :: acc) subtree [];
  match t.e_cache with
  | None -> 0
  | Some cache ->
    Trace.with_span trace ~cat:"cache" "memo-load" (fun () ->
        let disk =
          match slot.ms_disk with
          | Some d -> d
          | None ->
            let d = Cache.load_memo cache ~env:slot.ms_env in
            slot.ms_disk <- Some d;
            d
        in
        if disk = [] then 0
        else begin
          let by_fp = Hashtbl.create 64 in
          Hashtbl.iter
            (fun sid fp ->
              Hashtbl.replace by_fp fp
                (sid :: Option.value ~default:[] (Hashtbl.find_opt by_fp fp)))
            subtree;
          let present = Hashtbl.create 64 in
          List.iter
            (fun (key, _) -> Hashtbl.replace present key ())
            (Interactions.export_memo slot.ms_memo);
          let imported = ref [] in
          List.iter
            (fun ((fpa, fpb, tr), entry) ->
              match (Hashtbl.find_opt by_fp fpa, Hashtbl.find_opt by_fp fpb) with
              | Some sas, Some sbs ->
                List.iter
                  (fun sa ->
                    List.iter
                      (fun sb ->
                        let key = (sa, sb, tr) in
                        if not (Hashtbl.mem present key) then begin
                          Hashtbl.replace present key ();
                          imported := (key, entry) :: !imported
                        end)
                      sbs)
                  sas
              | _ -> ())
            disk;
          Interactions.import_memo slot.ms_memo !imported;
          List.length !imported
        end)

(* Persist the memo under content-addressed keys (subtree fingerprints
   instead of process-local symbol ids), deduplicated and sorted so the
   file is deterministic for a given entry set.  The file is a merge
   with what was already on disk: entries for definitions absent from
   the current model (another design checked by the same server, or a
   pre-edit version of this one) are still content-valid, so dropping
   them would throw warmth away. *)
let save_slot t trace subtree slot =
  match t.e_cache with
  | None -> ()
  | Some cache ->
    Trace.with_span trace ~cat:"cache" "memo-save" (fun () ->
        let dedup = Hashtbl.create 64 in
        (match slot.ms_disk with
        | Some old -> List.iter (fun (k, e) -> Hashtbl.replace dedup k e) old
        | None -> ());
        List.iter
          (fun ((sa, sb, tr), entry) ->
            match (Hashtbl.find_opt subtree sa, Hashtbl.find_opt subtree sb) with
            | Some fa, Some fb -> Hashtbl.replace dedup (fa, fb, tr) entry
            | _ -> ())
          (Interactions.export_memo slot.ms_memo);
        let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) dedup [] in
        let entries = List.sort (fun (ka, _) (kb, _) -> compare ka kb) entries in
        slot.ms_disk <- Some entries;
        Cache.store_memo cache ~env:slot.ms_env entries)

(* Distinct memo slots of the current deck list, in first-use order;
   decks agreeing on [memo_env_key] share a slot. *)
let distinct_slots slots_by_deck =
  List.rev
    (List.fold_left
       (fun acc s -> if List.memq s acc then acc else s :: acc)
       [] slots_by_deck)

let check ?metrics ?trace ?progress t file =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let decks = t.e_decks in
  let prim = List.hd decks in
  let tick name = match progress with None -> () | Some f -> f name in
  (* Each stage is announced to [progress], timed into the metrics, and
     recorded as a ["stage"]-category trace span — one wrapper so the
     three views always agree on stage names.  With several decks the
     per-deck work loops {e inside} each stage, so the stage sequence —
     and, for the primary deck, the report bytes — are identical to a
     single-deck run. *)
  let timed name f =
    tick name;
    Trace.with_span trace ~cat:"stage" name (fun () -> Metrics.time_stage m name f)
  in
  match timed "elaborate" (fun () -> Model.elaborate prim.dk_rules file) with
  | Error e -> Error e
  | Ok (model, parse_issues) ->
    Metrics.incr ~by:(Model.symbol_count model) m "model.symbols";
    Metrics.incr ~by:(Model.definition_elements model) m "model.definition_elements";
    Metrics.incr ~by:(Model.instantiated_elements model) m "model.instantiated_elements";
    (* Definition fingerprints are deck-independent and computed once;
       they address the session caches for both the lint pass below and
       the per-definition check sweeps. *)
    let fps =
      List.map (fun (s : Model.symbol) -> (s, fingerprint s)) model.Model.symbols
    in
    (* Static lints run before any geometry: one deck pass per deck,
       one design pass (syntax tree + model) shared by all.  Off by
       default so the default report bytes are untouched.

       The model pass is per-definition, so warm sessions replay it
       from the fingerprint-keyed table instead of re-eroding every
       skeleton.  The syntax-tree pass stays live: duplicate ids,
       cycles and unreachability are facts about the raw tree that
       elaboration erases — no per-definition fingerprint can address
       them — and the walk is cheap. *)
    let lint_by_deck =
      if not t.e_config.run_lint then List.map (fun _ -> ([], [])) decks
      else
        timed "lint" (fun () ->
            let lints = lints_for t t.e_env in
            let replayed = ref 0 in
            let model_diags =
              Lint.sort
                (List.concat_map
                   (fun ((s : Model.symbol), fp) ->
                     match Hashtbl.find_opt lints fp with
                     | Some ds ->
                       incr replayed;
                       ds
                     | None ->
                       let ds = Lint.check_model_symbol model s in
                       Hashtbl.replace lints fp ds;
                       ds)
                   fps)
            in
            Metrics.incr ~by:!replayed m "lint.defs_replayed";
            Metrics.incr ~by:(List.length fps - !replayed) m "lint.defs_computed";
            let design = Lint.check_ast file @ model_diags in
            (* Waivers filter at reporting time only: the cached
               per-definition lists above stay unfiltered, and a
               waiver change never splits the cache (waivers are
               excluded from the deck's canonical text, like
               [key_positions]). *)
            List.mapi
              (fun i d ->
                let diags =
                  Lint.sort
                    (Lint.check_deck d.dk_rules
                    @ Deckcheck.check_deck d.dk_rules
                    @ design)
                in
                let waivers = d.dk_rules.Tech.Rules.waivers @ file.Cif.Ast.waivers in
                let kept, suppressed = Lint.partition_waived ~waivers diags in
                if i = 0 then begin
                  Lint.record_metrics m kept;
                  Metrics.incr ~by:(List.length suppressed) m "lint.suppressed"
                end;
                (Lint.to_violations kept, suppressed))
              decks)
    in
    let subtree = subtree_fingerprints model in
    (* Static immunity certificates: one bundle of geometric facts per
       definition, cached across checks under the subtree fingerprint
       exactly like lint diags.  Deck-free and config-free, so every
       deck of the run consults the same table.  Disabled wholesale
       under DIC_NO_CERTS (the identity smokes) and under the exposure
       spacing model, whose verdicts drawn-gap bounds cannot certify.
       Charged to [analysis.certify] rather than a stage of its own so
       the stage sequence keeps its shape. *)
    let geometric =
      match t.e_config.interactions.Interactions.spacing_model with
      | Interactions.Geometric -> true
      | Interactions.Exposure _ -> false
    in
    let cert_lookup =
      if not (Deckcheck.enabled () && geometric) then None
      else begin
        let t0 = Metrics.now_ns () in
        let by_sid = Hashtbl.create 64 in
        let computed = ref 0 and replayed = ref 0 in
        List.iter
          (fun (s : Model.symbol) ->
            let fp = Hashtbl.find subtree s.Model.sid in
            let cert =
              match Hashtbl.find_opt t.e_certs fp with
              | Some c ->
                incr replayed;
                c
              | None ->
                let c =
                  Deckcheck.certify
                    ~lookup:(fun sid -> Hashtbl.find_opt by_sid sid)
                    s
                in
                incr computed;
                Hashtbl.replace t.e_certs fp c;
                c
            in
            Hashtbl.replace by_sid s.Model.sid cert)
          model.Model.symbols;
        Metrics.incr ~by:!computed m "analysis.certs_computed";
        Metrics.incr ~by:!replayed m "analysis.certs_replayed";
        Metrics.add_cost_ns m "analysis.certify" (Int64.sub (Metrics.now_ns ()) t0);
        Some (fun sid -> Hashtbl.find_opt by_sid sid)
      end
    in
    let slots_by_deck_memo = List.map (fun d -> slot_for t d.dk_rules) decks in
    let memo_loaded_by_slot =
      List.map
        (fun s -> (s.ms_env, refresh_slot t trace subtree s))
        (distinct_slots slots_by_deck_memo)
    in
    (* Imported entries are credited to the first deck using each slot,
       so totals across decks match what actually moved. *)
    let memo_loaded_by_deck =
      let credited = Hashtbl.create 4 in
      List.map
        (fun s ->
          if Hashtbl.mem credited s.ms_env then 0
          else begin
            Hashtbl.add credited s.ms_env ();
            List.assoc s.ms_env memo_loaded_by_slot
          end)
        slots_by_deck_memo
    in
    (* Resolve every definition against each deck's session (then disk)
       cache before the sweeps start, so each stage below just replays
       or computes. *)
    let env_by_deck = List.map (fun d -> env_key d.dk_rules t.e_config) decks in
    let lookups =
      Trace.with_span trace ~cat:"cache" "defs-lookup" (fun () ->
          List.map
            (fun env_d ->
              let defs = defs_for t env_d in
              let defs_from_disk = ref 0 and reused = ref 0 in
              let slots =
                List.map
                  (fun ((s : Model.symbol), fp) ->
                    let hit =
                      match Hashtbl.find_opt defs fp with
                      | Some e -> Some e
                      | None -> (
                        match t.e_cache with
                        | None -> None
                        | Some cache -> (
                          match Cache.find_def cache ~env:env_d ~fp with
                          | Some e ->
                            incr defs_from_disk;
                            Hashtbl.replace defs fp e;
                            Some e
                          | None -> None))
                    in
                    if Option.is_some hit then incr reused;
                    { sl_sym = s; sl_fp = fp; sl_hit = hit; sl_el = []; sl_dv = [];
                      sl_rel = [] })
                  fps
              in
              (slots, !reused, !defs_from_disk))
            env_by_deck)
    in
    (* Per-definition sweep: replayed slots contribute their cached
       list in place, computed slots get the ["symbol"] span and
       [symbol.<name>] cost charge — so a cold single-deck engine's
       trace and metrics are unchanged, and the report ordering (all
       elements, then all devices, …) is the same either way. *)
    let per_symbol slots stage compute replay =
      List.concat_map
        (fun sl ->
          match sl.sl_hit with
          | Some e -> replay e
          | None ->
            Trace.with_span trace ~cat:"symbol" ~args:[ ("stage", stage) ]
              sl.sl_sym.Model.sname (fun () ->
                let t0 = Metrics.now_ns () in
                let vs = compute sl in
                Metrics.add_cost_ns m ("symbol." ^ sl.sl_sym.Model.sname)
                  (Int64.sub (Metrics.now_ns ()) t0);
                vs))
        slots
    in
    (* The per-definition sweeps are embarrassingly parallel — each
       fresh slot is one independent (deck rules × definition) task —
       so they run on the same cost-balanced scheduler as the
       interaction sweep.  The worklist flattens every deck's fresh
       slots in deck-major definition order (the serial visit order);
       workers store each result into its slot and emit the same
       ["symbol"] spans and [symbol.<name>] cost charges as the serial
       path, into per-domain buffers that merge in tid order.  The
       caller then assembles each deck's violations in definition order
       from the slots, so the report bytes match the serial path at
       every [jobs] value. *)
    let stage_jobs =
      Interactions.effective_jobs t.e_config.interactions.Interactions.jobs
    in
    let fresh_work =
      Array.of_list
        (List.concat
           (List.map2
              (fun d (slots, _, _) ->
                List.filter_map
                  (fun sl -> if Option.is_none sl.sl_hit then Some (d, sl) else None)
                  slots)
              decks lookups))
    in
    let stage_parallel = stage_jobs > 1 && Array.length fresh_work > 1 in
    let per_symbol_parallel stage compute =
      ignore
        (Parallel.run ~metrics:m ?trace ~jobs:stage_jobs ~stage
           ~weight:(fun i ->
             let _, sl = fresh_work.(i) in
             1 + List.length sl.sl_sym.Model.elements)
           ~n:(Array.length fresh_work)
           ~worker:(fun _tid -> ())
           ~chunk:(fun () dm dt ~lo ~hi ->
             for i = lo to hi - 1 do
               let d, sl = fresh_work.(i) in
               Trace.with_span dt ~cat:"symbol" ~args:[ ("stage", stage) ]
                 sl.sl_sym.Model.sname (fun () ->
                   let t0 = Metrics.now_ns () in
                   compute d sl;
                   Option.iter
                     (fun dm ->
                       Metrics.add_cost_ns dm ("symbol." ^ sl.sl_sym.Model.sname)
                         (Int64.sub (Metrics.now_ns ()) t0))
                     dm)
             done)
           ~merge:(fun () -> ())
           ())
    in
    let assemble fresh_of replay =
      List.map
        (fun (slots, _, _) ->
          List.concat_map
            (fun sl -> match sl.sl_hit with Some e -> replay e | None -> fresh_of sl)
            slots)
        lookups
    in
    (* A certificate can prove the element stage silent for a
       definition under a deck; the slot then keeps its empty list
       without computing.  Sound for the cache too: the stored []
       equals what the check would have produced.  The predicate is
       pure, so the parallel path consults it from workers and the
       serial skip counting below re-evaluates it race-free. *)
    let element_immune_for d sl =
      match cert_lookup with
      | None -> false
      | Some lk -> (
        match lk sl.sl_sym.Model.sid with
        | Some c -> Deckcheck.element_immune d.dk_rules c
        | None -> false)
    in
    let elements_by_deck =
      timed "elements" (fun () ->
          if stage_parallel then begin
            per_symbol_parallel "elements" (fun d sl ->
                if not (element_immune_for d sl) then
                  sl.sl_el <- Element_checks.check_symbol d.dk_rules sl.sl_sym);
            assemble (fun sl -> sl.sl_el) (fun e -> e.Cache.de_elements)
          end
          else
            List.map2
              (fun d (slots, _, _) ->
                per_symbol slots "elements"
                  (fun sl ->
                    let vs =
                      if element_immune_for d sl then []
                      else Element_checks.check_symbol d.dk_rules sl.sl_sym
                    in
                    sl.sl_el <- vs;
                    vs)
                  (fun e -> e.Cache.de_elements))
              decks lookups)
    in
    if Option.is_some cert_lookup then begin
      let skips = ref 0 in
      List.iter2
        (fun d (slots, _, _) ->
          List.iter
            (fun sl ->
              if Option.is_none sl.sl_hit && element_immune_for d sl then incr skips)
            slots)
        decks lookups;
      Metrics.incr ~by:!skips m "analysis.certified_element_skips";
      Metrics.incr ~by:!skips m "analysis.certified_skips"
    end;
    let devices_by_deck =
      timed "devices" (fun () ->
          if stage_parallel then begin
            per_symbol_parallel "devices" (fun d sl ->
                sl.sl_dv <- Devices.check_symbol d.dk_rules sl.sl_sym);
            assemble (fun sl -> sl.sl_dv) (fun e -> e.Cache.de_devices)
          end
          else
            List.map2
              (fun d (slots, _, _) ->
                per_symbol slots "devices"
                  (fun sl ->
                    let vs = Devices.check_symbol d.dk_rules sl.sl_sym in
                    sl.sl_dv <- vs;
                    vs)
                  (fun e -> e.Cache.de_devices))
              decks lookups)
    in
    let relational_by_deck =
      match t.e_config.relational with
      | None -> List.map (fun _ -> []) decks
      | Some exposure ->
        timed "devices-relational" (fun () ->
            if stage_parallel then begin
              per_symbol_parallel "devices-relational" (fun d sl ->
                  sl.sl_rel <- Devices.check_relational exposure d.dk_rules sl.sl_sym);
              assemble (fun sl -> sl.sl_rel) (fun e -> e.Cache.de_relational)
            end
            else
              List.map2
                (fun d (slots, _, _) ->
                  per_symbol slots "devices-relational"
                    (fun sl ->
                      let vs = Devices.check_relational exposure d.dk_rules sl.sl_sym in
                      sl.sl_rel <- vs;
                      vs)
                    (fun e -> e.Cache.de_relational))
                decks lookups)
    in
    (* Freshly computed definitions become cache entries (session +
       disk), under their deck's environment.  When [relational] is off
       the stored list is empty, which is sound: the environment digest
       separates the two configs. *)
    Trace.with_span trace ~cat:"cache" "defs-save" (fun () ->
        List.iter2
          (fun env_d (slots, _, _) ->
            let defs = defs_for t env_d in
            let stored = Hashtbl.create 16 in
            List.iter
              (fun sl ->
                if Option.is_none sl.sl_hit && not (Hashtbl.mem stored sl.sl_fp) then begin
                  Hashtbl.replace stored sl.sl_fp ();
                  let entry =
                    { Cache.de_elements = sl.sl_el;
                      de_devices = sl.sl_dv;
                      de_relational = sl.sl_rel }
                  in
                  Hashtbl.replace defs sl.sl_fp entry;
                  match t.e_cache with
                  | None -> ()
                  | Some cache -> Cache.store_def cache ~env:env_d ~fp:sl.sl_fp entry
                end)
              slots)
          env_by_deck lookups);
    let total_one = List.length fps in
    let total = total_one * List.length decks in
    let reused = List.fold_left (fun acc (_, r, _) -> acc + r) 0 lookups in
    let defs_from_disk = List.fold_left (fun acc (_, _, d) -> acc + d) 0 lookups in
    let memo_loaded = List.fold_left ( + ) 0 memo_loaded_by_deck in
    Metrics.incr ~by:total m "cache.symbols_total";
    Metrics.incr ~by:reused m "cache.symbols_reused";
    Metrics.incr ~by:defs_from_disk m "cache.defs_from_disk";
    Metrics.incr ~by:(total - reused) m "cache.defs_computed";
    Metrics.incr ~by:memo_loaded m "cache.memo_loaded";
    if total > 0 then
      Metrics.set_gauge m "cache.hit_ratio" (float_of_int reused /. float_of_int total);
    (* Composite stages always run fresh and are deck-independent: they
       are the hierarchical, cheap part, and they stitch the cached
       pieces together. *)
    let nets, connection_issues = timed "connections+netlist" (fun () -> Netgen.build model) in
    let netlist = timed "netlist-export" (fun () -> Netgen.netlist nets) in
    (* The interaction sweep diverges per deck, but its worklist — the
       expensive plan — depends only on the candidate cutoff, so decks
       agreeing on [max_dist] share one plan (and their memo slot). *)
    let interactions_by_deck =
      timed "interactions" (fun () ->
          let plans = Hashtbl.create 4 in
          let plan_for dk_rules =
            let dmax = Interactions.max_dist dk_rules in
            match Hashtbl.find_opt plans dmax with
            | Some p -> p
            | None ->
              let p = Interactions.plan ~dmax nets in
              Hashtbl.add plans dmax p;
              p
          in
          List.map2
            (fun d slot ->
              let certs =
                Option.map
                  (fun lk -> Deckcheck.consult ~cert_of:lk d.dk_rules)
                  cert_lookup
              in
              Interactions.run ~config:t.e_config.interactions ~rules:d.dk_rules
                ~memo:slot.ms_memo ~metrics:m ?trace ?certs (plan_for d.dk_rules))
            decks slots_by_deck_memo)
    in
    let electrical_issues =
      if t.e_config.run_erc then timed "electrical" (fun () -> erc_violations netlist)
      else []
    in
    let consistency_issues =
      match t.e_config.expected_netlist with
      | None -> []
      | Some expected -> timed "netlist-compare" (fun () -> Netcompare.check expected netlist)
    in
    let local, crossing = Netgen.locality nets in
    let locality_info =
      Report.info ~stage:Report.Netlist_gen ~rule:"netlist.locality" ~context:"TOP"
        (Printf.sprintf "%d net(s) local to one definition, %d crossing boundaries" local
           crossing)
    in
    let rec zip5 a b c d e =
      match (a, b, c, d, e) with
      | x :: a, y :: b, z :: c, u :: d, v :: e -> (x, y, z, u, v) :: zip5 a b c d e
      | _ -> []
    in
    let deck_results =
      List.map2
        (fun ((d, (lint_issues, lint_suppressed), element_issues, device_issues,
               relational_issues),
              (interaction_issues, interaction_stats))
             ((_, deck_reused, deck_from_disk), deck_memo_loaded) ->
          let report =
            { Report.violations =
                lint_issues @ parse_issues @ element_issues @ device_issues
                @ relational_issues @ connection_issues @ interaction_issues
                @ electrical_issues @ consistency_issues @ [ locality_info ] }
          in
          { dr_deck = d;
            dr_result = { report; netlist; interaction_stats; metrics = m; model; nets };
            dr_reuse =
              { symbols_total = total_one;
                symbols_reused = deck_reused;
                defs_from_disk = deck_from_disk;
                memo_loaded = deck_memo_loaded };
            dr_suppressed = lint_suppressed })
        (List.combine
           (zip5 decks lint_by_deck elements_by_deck devices_by_deck relational_by_deck)
           interactions_by_deck)
        (List.combine lookups memo_loaded_by_deck)
    in
    (* Pairwise subsumption verdicts (R015) live only in the merged
       view: injecting them into per-deck reports would break the
       "each deck's report is byte-identical to that deck checked
       alone" invariant. *)
    let relations =
      match decks with
      | _ :: _ :: _ when t.e_config.run_lint ->
        Deckcheck.relation_lines (List.map (fun d -> (d.dk_label, d.dk_rules)) decks)
      | _ -> []
    in
    let merged =
      Multireport.make ~relations
        (List.map (fun dr -> (dr.dr_deck.dk_label, dr.dr_result.report)) deck_results)
    in
    Metrics.count_report m (List.hd deck_results).dr_result.report;
    List.iter (save_slot t trace subtree) (distinct_slots slots_by_deck_memo);
    t.e_last_subtree <- Some subtree;
    Ok { results = deck_results; merged }

(* Persist whatever warm state the session holds; a no-op before the
   first check or without a cache directory.  [check] already saves the
   memo slots on every run, so this only matters for orderly teardown
   paths (daemon shutdown) that want an explicit flush point. *)
let flush t =
  match t.e_last_subtree with
  | None -> ()
  | Some subtree -> Hashtbl.iter (fun _ slot -> save_slot t None subtree slot) t.e_memos

let check_string ?metrics ?trace ?progress t src =
  match Cif.Parse.file src with
  | Error e -> Error (Cif.Parse.string_of_error e)
  | Ok file -> check ?metrics ?trace ?progress t file

let pp_summary ppf r =
  let by sev = Report.count ~severity:sev r.report in
  Format.fprintf ppf "%d error(s), %d warning(s), %d net(s)" (by Report.Error)
    (by Report.Warning)
    (List.length r.netlist.Netlist.Net.nets)
