type cached = {
  c_elements : Report.violation list;
  c_devices : Report.violation list;
  c_relational : Report.violation list;
}

type t = {
  per_symbol : (string, cached) Hashtbl.t;
  memo : Interactions.memo;
  mutable env_key : string;
  mutable subtree_fps : (int * string) list;  (** from the previous run *)
}

let create () =
  { per_symbol = Hashtbl.create 64;
    memo = Interactions.create_memo ();
    env_key = "";
    subtree_fps = [] }

type stats = {
  symbols_total : int;
  symbols_reused : int;
}

(* Structural fingerprint of one definition.  Everything the
   per-definition checks can observe is folded in: name (violations
   carry it as context), device kind, element geometry/layers/nets,
   and calls with their transforms. *)
let fingerprint (s : Model.symbol) =
  let elements =
    List.map
      (fun (e : Model.element) ->
        ( Tech.Layer.index e.Model.layer,
          List.map
            (fun r -> (Geom.Rect.x0 r, Geom.Rect.y0 r, Geom.Rect.x1 r, Geom.Rect.y1 r))
            e.Model.rects,
          e.Model.net_label ))
      s.Model.elements
  in
  let calls =
    List.map
      (fun (c : Model.call) ->
        let o = Geom.Transform.apply_pt c.Model.transform Geom.Pt.zero in
        let ex = Geom.Transform.apply_pt c.Model.transform (Geom.Pt.make 1 0) in
        (c.Model.callee, o.Geom.Pt.x, o.Geom.Pt.y, ex.Geom.Pt.x, ex.Geom.Pt.y,
         Geom.Transform.det c.Model.transform))
      s.Model.calls
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (s.Model.sname, Option.map Tech.Device.to_tag s.Model.device, elements, calls)
          []))

let subtree_fingerprints (model : Model.t) =
  (* model.symbols is topologically sorted, callees first. *)
  let fps = Hashtbl.create 16 in
  List.iter
    (fun (s : Model.symbol) ->
      let own = fingerprint s in
      let subs =
        List.map (fun (c : Model.call) -> Hashtbl.find fps c.Model.callee) s.Model.calls
      in
      Hashtbl.replace fps s.Model.sid
        (Digest.to_hex (Digest.string (String.concat ";" (own :: subs)))))
    model.Model.symbols;
  fps

let environment_key rules (config : Checker.config) =
  Digest.to_hex (Digest.string (Marshal.to_string (rules, config) []))

let run ?(config = Checker.default_config) t rules file =
  match Model.elaborate rules file with
  | Error e -> Error e
  | Ok (model, parse_issues) ->
    let key = environment_key rules config in
    if key <> t.env_key then begin
      Hashtbl.reset t.per_symbol;
      Interactions.prune_memo t.memo ~keep:(fun _ -> false);
      t.env_key <- key;
      t.subtree_fps <- []
    end;
    (* Invalidate memoised instance pairs whose subtree changed. *)
    let subtree = subtree_fingerprints model in
    let unchanged sid =
      match (List.assoc_opt sid t.subtree_fps, Hashtbl.find_opt subtree sid) with
      | Some old_fp, Some new_fp -> old_fp = new_fp
      | _ -> false
    in
    Interactions.prune_memo t.memo ~keep:unchanged;
    t.subtree_fps <- Hashtbl.fold (fun sid fp acc -> (sid, fp) :: acc) subtree [];
    (* Per-definition stages, cached by local fingerprint. *)
    let reused = ref 0 in
    let per_symbol =
      List.concat_map
        (fun (s : Model.symbol) ->
          let fp = fingerprint s in
          match Hashtbl.find_opt t.per_symbol fp with
          | Some c ->
            incr reused;
            c.c_elements @ c.c_devices @ c.c_relational
          | None ->
            let c =
              { c_elements = Element_checks.check_symbol rules s;
                c_devices = Devices.check_symbol rules s;
                c_relational =
                  (match config.Checker.relational with
                  | None -> []
                  | Some exposure -> Devices.check_relational exposure rules s) }
            in
            Hashtbl.replace t.per_symbol fp c;
            c.c_elements @ c.c_devices @ c.c_relational)
        model.Model.symbols
    in
    (* Composite stages run fresh (they are the cheap, hierarchical
       part), with the pruned interaction memo carried over. *)
    let nets, connection_issues = Netgen.build model in
    let netlist = Netgen.netlist nets in
    let interaction_issues, interaction_stats =
      Interactions.check ~config:config.Checker.interactions ~memo:t.memo nets
    in
    let electrical_issues =
      if config.Checker.run_erc then Checker.erc_violations netlist else []
    in
    let consistency_issues =
      match config.Checker.expected_netlist with
      | None -> []
      | Some expected -> Netcompare.check expected netlist
    in
    let local, crossing = Netgen.locality nets in
    let locality_info =
      Report.info ~stage:Report.Netlist_gen ~rule:"netlist.locality" ~context:"TOP"
        (Printf.sprintf "%d net(s) local to one definition, %d crossing boundaries" local
           crossing)
    in
    let report =
      { Report.violations =
          parse_issues @ per_symbol @ connection_issues @ interaction_issues
          @ electrical_issues @ consistency_issues @ [ locality_info ] }
    in
    Ok
      ( { Checker.report;
          netlist;
          interaction_stats;
          stage_seconds = [];
          metrics = Metrics.create ();
          model;
          nets },
        { symbols_total = List.length model.Model.symbols; symbols_reused = !reused } )
