type t = { mutable engine : Engine.t option }

let create () = { engine = None }

type stats = {
  symbols_total : int;
  symbols_reused : int;
}

let fingerprint = Engine.fingerprint

let run ?(config = Engine.default_config) t rules file =
  let engine =
    match t.engine with
    | Some e when Engine.same_env e rules config ->
      (* Same environment digest: keep the warm state.  [with_config]
         still runs so a jobs-only change takes effect. *)
      Engine.with_config e config
    | _ ->
      let e = Engine.create ~config rules in
      t.engine <- Some e;
      e
  in
  Result.map
    (fun (result, (reuse : Engine.reuse)) ->
      ( result,
        { symbols_total = reuse.Engine.symbols_total;
          symbols_reused = reuse.Engine.symbols_reused } ))
    (Engine.check engine file)
