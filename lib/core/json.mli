(** A minimal JSON value type, parser, and printer.

    The repository's structured outputs ({!Metrics.to_json},
    {!Sarif.of_report}, {!Trace.to_chrome_json}) are string emitters and
    need no value type; this module exists for the places that must
    {e read} JSON — the [dicheck serve] request protocol ({!Serve}) —
    and for composing reply objects without string-splicing bugs.

    The parser accepts RFC 8259 JSON (objects, arrays, strings with
    escapes including [\uXXXX], numbers, booleans, null) and rejects
    trailing garbage.  The printer is canonical for a given value: no
    whitespace, object members in the order given, integers printed
    without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Parse one JSON document.  [Error msg] carries a byte offset. *)
val parse : string -> (t, string) result

val to_string : t -> string

(** [quote s] is the JSON string literal for [s], including the
    surrounding double quotes. *)
val quote : string -> string

(** {1 Accessors}

    All return [None] on a type or key mismatch rather than raising. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option

(** [int] narrows {!num} to integral values (within [±1e9]); [None]
    for [2.5] rather than a silent truncation. *)
val int : t -> int option
val bool : t -> bool option
val arr : t -> t list option
