(** SARIF 2.1.0 export of a checking report.

    SARIF (Static Analysis Results Interchange Format) is the exchange
    format consumed by code-review tooling — GitHub code scanning, VS
    Code SARIF viewers, and CI annotators.  Each {!Report.violation}
    becomes one [result] carrying:

    - [ruleId]: the stable rule name ([overlap.layer], [device.gate], …)
      — the machine-readable counterpart of the paper's "immunity"
      conditions (McGrath & Whitney, DAC 1980, §4);
    - [level]: [error] / [warning] / [note] from {!Report.severity};
    - a physical location: the CIF source file and the 1-based
      line/column where the offending statement was parsed (when the
      design came from CIF text; programmatic layouts have no region);
    - a logical location: the fully qualified instance path
      ("TOP.inv[3].contact[0]") from {!Report.instance_path}, which is
      how the paper names a fault site in a hierarchical design.

    Output is deterministic for a given report: rules are sorted by id,
    results keep report order, and no timestamps are embedded. *)

(** [of_report ~uri report] renders a complete SARIF 2.1.0 document
    (one [run]).  [uri] is the artifact URI recorded for physical
    locations — pass the CIF input path; defaults to ["design.cif"].
    [tool_version] defaults to {!Version.version}.  [suppressed] are
    waived diagnostics (deck [# lint: allow] comments, design [4L]
    commands): each is emitted as a result carrying
    [suppressions:[{kind:"inSource"}]], after the live results, and its
    rule id joins the run's rule table.  Without waivers the bytes are
    exactly the historical document. *)
val of_report :
  ?uri:string -> ?tool_version:string -> ?suppressed:Report.violation list ->
  Report.t -> string

(** [of_reports [(label, deck_rules, report); ...]] renders a
    multi-deck check as one SARIF log with {e one [run] per deck}.
    Each run carries [automationDetails.id = label] so viewers keep the
    decks apart, and every rule whose parameter comes from a rules-file
    key the deck defines in text gets
    [properties.deckKey]/[properties.deckLine] pointing at the defining
    line in {e that} deck (via {!Tech.Rules.position}).  Run order is
    deck order; within a run, bytes follow the same deterministic
    layout as {!of_report}.

    [suppressed] maps a deck label to that deck's waived diagnostics,
    rendered per-run as in {!of_report} (labels are unique after
    {!Engine.dedupe_labels}).  [relations] are the cross-deck
    subsumption verdict lines ({!Deckcheck.relation_lines}); being
    facts about deck {e pairs} they land in the log-level
    [properties.deckRelations] array rather than in any single run. *)
val of_reports :
  ?uri:string -> ?tool_version:string ->
  ?suppressed:(string * Report.violation list) list ->
  ?relations:string list ->
  (string * Tech.Rules.t * Report.t) list -> string
