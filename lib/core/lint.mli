(** Static immunity analysis — lints over rule decks and CIF
    hierarchies, before any geometry runs.

    The paper's pitch is {e immunity}: eliminating unchecked errors
    (real but missed) and false errors (flagged but unreal).  Several
    of those failure modes are visible statically, from the rule deck
    and the symbol hierarchy alone:

    - an odd minimum width truncates [skeleton_half] and breaks the
      "legal width + skeletal connection ⇒ legal union" theorem
      (paper §3 / Fig 4);
    - an asymmetric or unreachable entry in the Fig 12 layer-pair
      matrix silently drops interaction checks;
    - an undefined or recursive symbol call corrupts the hierarchical
      net list (dot notation, Fig 9);
    - an element narrower than its layer minimum erodes to a degenerate
      skeleton, making connections through it invisible — the
      unchecked-error precursor.

    Two passes share one diagnostic type: the {b rule-deck pass}
    ({!check_deck} on a parsed deck, {!check_deck_source} on rule-file
    text) emits [R0xx] codes, the {b design pass} ({!check_ast} on the
    syntax tree, {!check_model} on the elaborated model, {!check_design}
    for both) emits [D0xx] codes.  Codes are stable: tests, SARIF
    rules, and [dicheck lint --explain CODE] key on them.  No
    interaction checking happens here — every pass is linear-ish in the
    deck/hierarchy size, which is what the bench [lint-overhead]
    experiment asserts.

    Output is deterministic: {!sort} orders by (loc, code, subject,
    message), and no pass consults anything but its arguments. *)

type severity = Error | Warning | Note

type diagnostic = {
  code : string;  (** stable code, e.g. ["R001"] or ["D005"] *)
  severity : severity;
  message : string;
  loc : Cif.Loc.t option;
      (** position in the rule file or CIF source, when known *)
  subject : string;
      (** what the diagnostic is about: a rule key, a symbol name, a
          net label — used for sorting and as the SARIF logical
          location *)
}

(** Every stable code with its one-line explanation, [R0xx] first,
    ascending. *)
val all_codes : (string * string) list

(** The one-line explanation behind [dicheck lint --explain CODE]. *)
val explain : string -> string option

(** {1 Rule-deck pass — R0xx} *)

(** Record-level deck lints (R001–R007): odd min-widths, non-positive
    values, off-quantum values, surrounds inconsistent with
    [contact_size], and asymmetric / unreachable / shadowed directed
    pair overrides. *)
val check_deck : Tech.Rules.t -> diagnostic list

(** Lenient rule-file lint: tokenizes with {!Tech.Rules.scan}, flags
    malformed lines (R010), unknown keys (R008), duplicate keys —
    first occurrence wins — (R009) and bad values (R011), builds a
    best-effort deck from the surviving entries, then runs
    {!check_deck} on it with diagnostics relocated to their defining
    lines.  Returns [None] for the deck only if not even a default
    deck could be built (never, in practice). *)
val check_deck_source : string -> Tech.Rules.t option * diagnostic list

(** {1 Design pass — D0xx} *)

(** Syntax-tree lints (D001, D002, D003, D004, D007, D008): undefined
    calls, call cycles, definitions unreachable from a non-empty top
    level, duplicate symbol numbers, coincident calls, and
    overflow-prone call translations.  Unlike
    {!Cif.Ast.check_acyclic}, which stops at the first problem, this
    collects them all. *)
val check_ast : Cif.Ast.file -> diagnostic list

(** Elaborated-model lints (D005, D006, D009): elements eroding to
    degenerate skeletons, net-label reuse across skeletally-disjoint
    same-layer groups in call-free definitions, and device definitions
    missing their constituent layers (e.g. a transistor with no
    poly-diffusion crossing, Fig 5). *)
val check_model : Model.t -> diagnostic list

(** One definition's share of {!check_model}, sorted.  Every model
    D-code is a per-definition fact — it reads the symbol's own
    elements and the rules the model was elaborated under, never other
    definitions' geometry — so [check_model model] is exactly the
    sorted concatenation over [model]'s symbols, and engine sessions
    cache these lists under per-definition fingerprints the same way
    they cache check results. *)
val check_model_symbol : Model.t -> Model.symbol -> diagnostic list

(** The whole design pass: {!check_ast}, then — when elaboration
    succeeds — {!check_model}; sorted. *)
val check_design : Tech.Rules.t -> Cif.Ast.file -> diagnostic list

(** {1 Plumbing} *)

(** Order by (loc, code, subject, message); [loc = None] first. *)
val compare_diagnostic : diagnostic -> diagnostic -> int

val sort : diagnostic list -> diagnostic list
val has_errors : diagnostic list -> bool

(** ["CODE severity: message [subject]"]. *)
val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** One printable line, prefixed with [src] (and the location, when
    present): ["src:line:col: CODE severity: message [subject]"]. *)
val render : src:string -> diagnostic -> string

(** As report violations: stage {!Report.Integrity}, rule
    ["lint." ^ code], context = subject ([Note] maps to
    {!Report.Info}).  {!Sarif} recognises the ["lint."] prefix and
    emits each code's {!explain} text as the SARIF rule
    description. *)
val to_violations : diagnostic list -> Report.violation list

(** [partition_waived ~waivers diags] splits into (kept, suppressed)
    by membership of each diagnostic's code in [waivers] (see
    {!Tech.Rules.scan_waivers} and the CIF [4L CODE;] extension).
    Filtering happens at reporting time only — caches always hold the
    unfiltered list. *)
val partition_waived :
  waivers:string list -> diagnostic list -> diagnostic list * diagnostic list

(** Per-code counts of a (suppressed) diagnostic list, sorted by
    code — the [lint_suppressed] reply member and SARIF suppression
    summary. *)
val suppressed_counts : diagnostic list -> (string * int) list

(** Export [lint.diagnostics] / [lint.errors] / [lint.warnings]
    totals plus one [lint.code.<code>] counter per distinct code. *)
val record_metrics : Metrics.t -> diagnostic list -> unit
