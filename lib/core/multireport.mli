(** Merged cross-deck report.

    Checking one design under N rule decks yields N per-deck
    {!Report.t}s over the same geometry.  This module folds them into
    one view: each distinct violation appears once, tagged with the
    {e deck-membership vector} — which decks flagged it — plus a
    per-deck summary and the compliant-intersection verdict (the
    multiple-lithography-compliance question: which decks does the
    design satisfy?).

    Merging is purely structural and deterministic: violations are
    grouped by equality of the full {!Report.violation} record
    (location, rule, message, provenance), ordered as the first deck
    prints them, with violations unique to later decks appended in
    deck order.  Equal per-deck reports therefore always merge to equal
    bytes, whatever the [jobs]/worker count or cache warmth that
    produced them. *)

(** One merged violation with the decks that flagged it (ascending
    indices into {!t.summaries}). *)
type entry = {
  violation : Report.violation;
  decks : int list;
}

type deck_summary = {
  ds_label : string;
  ds_errors : int;
  ds_warnings : int;
}

type t = {
  entries : entry list;
  summaries : deck_summary list;
  relations : string list;
      (** pairwise deck-relation verdicts ({!Deckcheck} R015 lines);
          empty for single-deck merges *)
}

(** [make [(label, report); ...]] — merge per-deck reports, first deck
    first.  Labels are echoed in membership annotations and summaries;
    they should be distinct.  [relations] (default []) carries the
    cross-deck subsumption verdicts, printed by {!pp_summary} and
    exported to SARIF, but never folded into any per-deck report. *)
val make : ?relations:string list -> (string * Report.t) list -> t

(** Distinct merged violations with severity [Error] / [Warning]. *)
val errors : t -> int

val warnings : t -> int

(** Labels of the decks the design complies with (zero errors), in
    deck order. *)
val compliant : t -> string list

val all_compliant : t -> bool

(** The merged violation list, one line per entry:
    [<violation> [decks: a,b]]. *)
val pp : Format.formatter -> t -> unit

(** Per-deck verdict lines plus the compliant-intersection verdict. *)
val pp_summary : Format.formatter -> t -> unit
