(** The [dicheck serve] protocol: JSON-lines check requests answered
    from a pool of warm {!Engine} sessions.

    One request per line, one reply line per request (in order).  A
    request is a JSON object:

    {v
    { "id": any,              echoed back verbatim (optional)
      "path": "f.cif",        CIF file to check — or inline text:
      "cif": "DS 1; ...",
      "jobs": 4,              optional, default from the server config
      "check_same_net": true, optional net-blind ablation
      "werror": true,         optional: exit 1 on warnings too
      "stats": true,          optional: include the metrics JSON
      "sarif": true,          optional: include the SARIF document
      "out": "report.txt" }   optional: also write the report text here
    v}

    A successful reply:

    {v
    { "id": ..., "ok": true, "errors": N, "warnings": N, "exit": 0|1,
      "symbols_total": N, "symbols_reused": N, "defs_from_disk": N,
      "memo_loaded": N, "report": "...", "metrics": {...}?, "sarif": {...}? }
    v}

    [report] is byte-identical to what one-shot
    [dicheck FILE] prints on stdout (report + summary), which is what
    the CI serve smoke diffs.  A request that cannot be parsed or
    checked gets [{ "id": ..., "ok": false, "error": "...", "exit": 2 }]
    — the server never dies on bad input.

    Requests differing only in [jobs] share one warm engine; a
    verdict-affecting option such as [check_same_net] selects a
    different engine keyed by its environment digest, so warm state is
    never reused across incompatible configurations. *)

type t

val create : ?config:Engine.config -> ?cache_dir:string -> Tech.Rules.t -> t

(** Handle one request line, returning the reply line (no trailing
    newline).  Never raises on malformed input. *)
val handle_line : t -> string -> string

(** Read JSON-lines requests from [ic] and write replies to [oc],
    flushing after each, until EOF.  Blank lines are ignored. *)
val loop : t -> in_channel -> out_channel -> unit
