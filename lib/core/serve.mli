(** The [dicheck serve] daemon: concurrent JSON-lines check requests
    answered by a pool of worker domains over warm {!Engine} sessions.

    The authoritative wire reference — every request and reply field,
    the status values, cancellation/ordering semantics, backpressure,
    and the shutdown handshake, with a worked [socat] transcript — is
    [docs/PROTOCOL.md].  The short version:

    One request object per line, one reply object per line.  A request:

    {v
    { "id": any,              echoed back; also the cancellation key
      "path": "f.cif",        CIF file to check — or inline text:
      "cif": "DS 1; ...",
      "jobs": 4,              interaction-stage domains for this check
      "check_same_net": true, net-blind ablation
      "werror": true,         exit 1 on warnings too
      "lint": true,           run the static lint passes
      "lint_werror": true,    lint + exit 1 when any lint.* fires
      "stats": true,          embed the metrics JSON
      "sarif": true,          embed the SARIF document
      "trace": true,          embed this request's span tree
      "out": "report.txt",    also write the report text server-side
      "sleep_ms": 250,        debugging: stall before checking
      "decks": [...],         check under several rule decks at once
      "admin": "stats",       service snapshot (or "health"); no check
      "shutdown": true }      drain the queue and stop the daemon
    v}

    A successful reply:

    {v
    { "id": ..., "ok": true, "status": "ok", "req": N, "errors": N,
      "warnings": N, "exit": 0|1, "symbols_total": N, "symbols_reused": N,
      "defs_from_disk": N, "memo_loaded": N, "lint_counts": {...}?,
      "report": "...", "metrics": {...}?, "sarif": {...}?, "trace": {...}? }
    v}

    [req] is the daemon-assigned request sequence number — the same id
    that keys the structured event log and the request's trace spans.

    [report] is byte-identical to one-shot [dicheck FILE] stdout
    (report + summary) — for every worker count and every [jobs]
    value; the CI serve smoke diffs exactly that.  Failed requests
    carry [ok:false] with ["status"] one of ["error"] (bad input),
    ["cancelled"] (superseded, see below), ["overloaded"] (queue
    full), or ["shutdown"] (daemon is draining).  The daemon never
    dies on bad input.

    {2 Multi-deck requests}

    ["decks"] is a non-empty array of rule decks: each entry is a path
    string, or an object [{"label": ...?, "path": ...}] /
    [{"label": ...?, "rules": "<rule file text>"}].  The design is
    elaborated {e once} and checked under every deck (see
    {!Engine.create} with [~decks]); the reply's [report] becomes the
    merged cross-deck view ({!Multireport}: deck-membership annotations
    plus the per-deck and compliant-intersection summary), [errors] /
    [warnings] count distinct merged violations, [exit] is the worst
    deck's, [symbols_total]/[symbols_reused] sum over decks, and three
    members are added: ["decks"] (per-deck label, errors, warnings,
    exit, reuse counters, and [lint_counts] when linting), ["compliant"]
    (labels of zero-error decks), and ["all_compliant"].  ["sarif"]
    embeds one run per deck ({!Sarif.of_reports}).  Requests without
    ["decks"] reply byte-identically to the single-deck protocol above.
    Engines are keyed by the deck set's joined environment digests, so
    alternating deck sets keeps every deck's session warm.

    {2 Admin formats}

    [{"admin":"stats"}] answers with the canonical JSON snapshot; with
    ["format":"prometheus"] the reply instead carries a ["prometheus"]
    string member holding the {!Telemetry.prometheus} text exposition
    of the same snapshot (scrape it via [dicheck top --once
    --metrics-format prom]).  Unknown formats are refused.

    {2 Concurrency model}

    Per-connection readers feed one bounded request queue; [workers]
    worker domains drain it.  Each worker owns its engines (one per
    environment digest), all over the {e shared} persistent
    {!Cache} directory, so warmth crosses workers through disk while
    no engine is ever touched by two domains.  Replies to one
    connection are written whole-line atomically but arrive in
    {e completion} order, not submission order — match them by [id].

    {2 Cancellation}

    Re-submitting an [id] on the same connection supersedes the
    previous request with that [id] (the interactive-editing case:
    the editor re-checks the buffer on every keystroke).  A
    superseded request that is still queued is never checked; one
    already in flight runs to completion but its result is dropped.
    Either way the old request is answered with
    [{"status":"cancelled"}] and only the newest submission can
    answer with a report.  Requests without an [id] are never
    cancelled.

    {2 Shutdown and restart}

    A [{"shutdown": true}] request — or [SIGTERM], via
    {!request_stop} — stops intake, drains the queue (every queued
    request is still answered), flushes each worker's engines to the
    persistent cache, and acknowledges with
    [{"ok":true,"status":"shutdown","served":N,"cancelled":N,
    "overloaded":N,"queued":N,"inflight":N}].  Requests arriving
    during the drain are refused with [{"ok":false,"status":"shutdown"}].
    A daemon restarted over the same [--cache] directory recovers the
    warm state from disk: the first reply after a restart already
    reports [defs_from_disk > 0].

    {2 Observability}

    A {!Telemetry} hub (pass your own via [create ~telemetry] to turn
    on the event log, slow-request entries, or trace collection; the
    default hub keeps metrics only) watches every request: the
    [{"admin":"stats"}] and [{"admin":"health"}] requests are answered
    synchronously — never queued, still answered while draining — with
    the canonical snapshots from {!Telemetry.snapshot}; overloaded
    refusals carry the pool counters ([served]/[queued]/[inflight]) so
    a refused client sees why.  None of it touches report bytes. *)

type t

(** [create ?config ?cache_dir ?workers ?max_queue ?telemetry rules].
    [workers] is the worker-domain count ([0], the default, asks the
    runtime via [Domain.recommended_domain_count]); [max_queue]
    (default [64]) bounds the request queue — submissions beyond it are
    refused immediately with an ["overloaded"] reply rather than queued
    without bound; [telemetry] is the service hub (defaults to a quiet
    metrics-only {!Telemetry.create}). *)
val create :
  ?config:Engine.config -> ?cache_dir:string -> ?workers:int ->
  ?max_queue:int -> ?telemetry:Telemetry.t -> Tech.Rules.t -> t

(** The resolved worker-domain count. *)
val worker_count : t -> int

(** The hub passed to (or created by) {!create}. *)
val telemetry : t -> Telemetry.t

(** {2 Synchronous embedding}

    The protocol without the daemon: parse one request line, check,
    return the reply line (no trailing newline).  Runs on the calling
    domain with the server's own engine table; single-threaded use
    only.  Never raises on malformed input. *)
val handle_line : t -> string -> string

(** {2 The pool}

    The daemon decomposed, so tests (and alternative transports) can
    drive it in-process with mocked clients. *)

(** One client connection: a serial (the cancellation scope) and a
    reply writer. *)
type conn

(** Spawn the worker domains.  Idempotent; {!submit} starts the pool
    on first use anyway. *)
val start : t -> unit

(** [connect t ~reply] registers a client.  [reply] receives each
    reply line (no trailing newline); calls are serialized and
    exceptions from [reply] are swallowed, so a dead client cannot
    take a worker down. *)
val connect : t -> reply:(string -> unit) -> conn

(** Hand one request line to the daemon.  Enqueues and returns; the
    reply arrives via the connection's [reply] callback from a worker
    domain.  Malformed JSON, backpressure ("overloaded"), [admin]
    requests, drain-time refusals and the shutdown acknowledgement are
    answered synchronously from within [submit].  Blank lines are
    ignored. *)
val submit : t -> conn -> string -> unit

(** Block until the queue is empty and no request is in flight. *)
val drain : t -> unit

(** Stop intake, drain, join the workers (each flushes its engines to
    the persistent cache on the way out).  Idempotent. *)
val shutdown : t -> unit

(** Signal-handler-safe shutdown request: sets a flag the transport
    loops poll (they then run {!shutdown}).  Install it as the
    [SIGTERM] handler. *)
val request_stop : t -> unit

(** Has a stop been requested or the pool been stopped? *)
val stopped : t -> bool

(** Pool introspection, for tests and monitoring.  [workers] counts
    live worker domains (0 before {!start} and after {!shutdown}). *)
type stats = {
  queued : int;
  inflight : int;
  served : int;  (** replies delivered with a report *)
  cancelled : int;  (** superseded requests answered ["cancelled"] *)
  overloaded : int;  (** submissions refused by backpressure *)
  workers : int;
}

val stats : t -> stats

(** {2 Transports} *)

(** Serve the process's stdin/stdout: one implicit connection.  On
    EOF (or shutdown) drains, flushes, and returns. *)
val serve_stdio : t -> unit

(** Bind a Unix domain socket at [path] (unlinked and rebound) and
    accept any number of concurrent client connections, each its own
    reader domain.  Returns after a shutdown request or
    {!request_stop}, having drained, joined all readers, and removed
    the socket file. *)
val serve_socket : t -> path:string -> unit
