(* Bumped by hand once per released change-set; CHANGES.md is the
   ledger.  Kept as code (not a dune-generated site) so the library is
   usable from any build context, including the toplevel. *)
let version = "0.3.0"
