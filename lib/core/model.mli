(** The elaborated design model.

    "The key difference between the approach described here and that of
    most other design rule checkers is that the chip is not treated
    purely as a collection of geometry; the chip is never fully
    instantiated; the information about what symbol the piece of
    geometry came from is never lost."

    Elaboration binds CIF layer names to {!Tech.Layer}, device tags to
    {!Tech.Device}, sweeps wires and scan-converts polygons once, and
    pre-computes each element's skeleton.  The hierarchy itself is kept
    verbatim: a symbol's elements and calls, checked once per
    definition.  The CIF top level becomes a synthetic root symbol. *)

type shape =
  | S_box of Geom.Rect.t
  | S_wire of Geom.Wire.t
  | S_poly of Geom.Poly.t

type element = {
  eid : int;  (** dense index within the symbol *)
  layer : Tech.Layer.t;
  shape : shape;
  net_label : string option;
  rects : Geom.Rect.t list;  (** swept geometry *)
  packed : Geom.Rects.t;
      (** [rects] as a packed set, built once here so the interaction
          kernel never walks boxed lists; treated as immutable *)
  skeleton : Geom.Rect.t list;  (** eroded by half the layer min width *)
  bbox : Geom.Rect.t;
  loc : Cif.Loc.t option;  (** CIF source position, when parsed from text *)
}

type call = {
  cidx : int;  (** dense index within the symbol *)
  callee : int;  (** symbol id *)
  transform : Geom.Transform.t;
}

type symbol = {
  sid : int;  (** CIF symbol id; the synthetic root uses {!root_id} *)
  sname : string;  (** display name *)
  device : Tech.Device.kind option;
  elements : element list;
  calls : call list;
  sbbox : Geom.Rect.t option;  (** of the full instantiated content *)
  sloc : Cif.Loc.t option;  (** CIF source position of the definition *)
}

type t = {
  rules : Tech.Rules.t;
  symbols : symbol list;  (** topologically sorted, callees first; root last *)
  root : symbol;
}

val root_id : int

val find : t -> int -> symbol
val is_device : symbol -> bool

(** Region of all the symbol's *local* elements on one layer. *)
val layer_region : symbol -> Tech.Layer.t -> Geom.Region.t

(** Elements of the symbol on one layer. *)
val on_layer : symbol -> Tech.Layer.t -> element list

(** Number of symbols excluding the root. *)
val symbol_count : t -> int

(** Total elements if the design were fully instantiated (what a flat
    checker would have to process), versus [definition_elements], the
    number the hierarchical checker touches. *)
val instantiated_elements : t -> int

val definition_elements : t -> int

(** Maximum call depth (root at depth 0). *)
val depth : t -> int

(** [elaborate rules file] builds the model.  Recoverable issues
    (unknown layers, bad polygons, device symbols containing calls)
    are reported; offending elements are dropped from the model. *)
val elaborate :
  Tech.Rules.t -> Cif.Ast.file -> (t * Report.violation list, string) result
