(** The Design Integrity and Immunity Checker — the paper's Fig 10
    pipeline as one driver:

    {v
    PARSE CIF
      -> CHECK ELEMENTS                    (stage 2, Element_checks)
      -> CHECK PRIMITIVE SYMBOLS           (stage 3, Devices)
      -> CHECK LEGAL CONNECTIONS           (stage 4, Netgen)
      -> GENERATE HIERARCHICAL NET LIST    (stage 5, Netgen)
      -> CHECK INTERACTIONS                (stage 6, Interactions)
      (+ non-geometric construction rules over the net list, ERC)
    v}

    {2 Invariants}

    - Stages run in the order above; each consumes only the outputs of
      earlier stages, so a stage's violations never depend on a later
      stage (the paper's argument for why net identifiers are available
      when interactions are checked).
    - Every stage is timed on the monotonic clock and every run carries
      a {!Metrics.t}; [stage_seconds] is derived from it and kept for
      compatibility. *)

type config = {
  interactions : Interactions.config;
  run_erc : bool;  (** run the non-geometric construction rules *)
  expected_netlist : Netcompare.expected option;
      (** verify the extracted net list against an intended one *)
  relational : Process_model.Exposure.t option;
      (** also run the relational gate-overhang check against this
          exposure model (paper Fig 14) *)
}

val default_config : config

type result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
      (** per pipeline stage, monotonic wall-clock seconds (a view of
          [metrics]) *)
  metrics : Metrics.t;
      (** the full observability record: stage timers, work counters,
          per-pair cost histogram, errors by class *)
  model : Model.t;
  nets : Netgen.t;
}

(** Run on an already-parsed file.  [metrics] lets the caller supply
    (and keep) the accumulator; one is created per run otherwise.
    [trace] records one ["stage"] span per pipeline stage, one
    ["symbol"] span per definition in the element/device sweeps, and
    one ["shard"] span per interaction shard (see {!Trace}).
    [progress] is called with each stage name as it starts — the
    [--progress] heartbeat. *)
val run :
  ?config:config -> ?metrics:Metrics.t -> ?trace:Trace.t ->
  ?progress:(string -> unit) -> Tech.Rules.t -> Cif.Ast.file ->
  (result, string) Stdlib.result

(** Parse CIF text and run. *)
val run_string :
  ?config:config -> ?metrics:Metrics.t -> ?trace:Trace.t ->
  ?progress:(string -> unit) -> Tech.Rules.t -> string ->
  (result, string) Stdlib.result

(** One-line summary: error/warning counts by stage. *)
val pp_summary : Format.formatter -> result -> unit

(** The non-geometric construction rules as report violations (shared
    with {!Incremental}). *)
val erc_violations : Netlist.Net.t -> Report.violation list
