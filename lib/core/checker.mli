(** The Design Integrity and Immunity Checker — the paper's Fig 10
    pipeline as one driver:

    {v
    PARSE CIF
      -> CHECK ELEMENTS                    (stage 2, Element_checks)
      -> CHECK PRIMITIVE SYMBOLS           (stage 3, Devices)
      -> CHECK LEGAL CONNECTIONS           (stage 4, Netgen)
      -> GENERATE HIERARCHICAL NET LIST    (stage 5, Netgen)
      -> CHECK INTERACTIONS                (stage 6, Interactions)
      (+ non-geometric construction rules over the net list, ERC)
    v}

    This module is the {e historical} entry point, kept as a thin
    wrapper: every call builds a cold {!Engine} and runs one check, so
    nothing is reused between calls.  New code should hold an
    {!Engine.t} and call {!Engine.check} — same report, same metrics
    and trace shape, plus warm per-definition and interaction-memo
    state (optionally persisted on disk) across checks.

    {2 Invariants}

    - Stages run in the order above; each consumes only the outputs of
      earlier stages, so a stage's violations never depend on a later
      stage (the paper's argument for why net identifiers are available
      when interactions are checked).
    - Every stage is timed on the monotonic clock and every run carries
      a {!Metrics.t}. *)

(** Same record as {!Engine.config} (the equation keeps old field
    accesses compiling); prefer the [Engine.with_*] builders over
    assembling the nested records by hand. *)
type config = Engine.config = {
  interactions : Interactions.config;
  run_erc : bool;  (** run the non-geometric construction rules *)
  expected_netlist : Netcompare.expected option;
      (** verify the extracted net list against an intended one *)
  relational : Process_model.Exposure.t option;
      (** also run the relational gate-overhang check against this
          exposure model (paper Fig 14) *)
  run_lint : bool;  (** also run the static {!Lint} passes *)
}

val default_config : config

type result = Engine.result = {
  report : Report.t;
  netlist : Netlist.Net.t;
  interaction_stats : Interactions.stats;
  stage_seconds : (string * float) list;
      (** @deprecated redundant derived view of [metrics] — use
          {!Metrics.stage_seconds} on the [metrics] field instead.
          Kept for one release. *)
  metrics : Metrics.t;
      (** the full observability record: stage timers, work counters,
          per-pair cost histogram, errors by class *)
  model : Model.t;
  nets : Netgen.t;
}

(** Run on an already-parsed file.

    @deprecated one-shot wrapper over a cold engine — use
    {!Engine.create} / {!Engine.check} to keep warm state between
    checks.  [metrics] lets the caller supply (and keep) the
    accumulator; one is created per run otherwise.  [trace] records one
    ["stage"] span per pipeline stage, one ["symbol"] span per
    definition in the element/device sweeps, and one ["shard"] span per
    interaction shard (see {!Trace}).  [progress] is called with each
    stage name as it starts — the [--progress] heartbeat. *)
val run :
  ?config:config -> ?metrics:Metrics.t -> ?trace:Trace.t ->
  ?progress:(string -> unit) -> Tech.Rules.t -> Cif.Ast.file ->
  (result, string) Stdlib.result

(** Parse CIF text and run.
    @deprecated use {!Engine.check_string}. *)
val run_string :
  ?config:config -> ?metrics:Metrics.t -> ?trace:Trace.t ->
  ?progress:(string -> unit) -> Tech.Rules.t -> string ->
  (result, string) Stdlib.result

(** One-line summary: error/warning counts by stage. *)
val pp_summary : Format.formatter -> result -> unit

(** The non-geometric construction rules as report violations (now
    {!Engine.erc_violations}). *)
val erc_violations : Netlist.Net.t -> Report.violation list
