type spacing_model =
  | Geometric
  | Exposure of { model : Process_model.Exposure.t; misalign : int }

type config = {
  metric : Geom.Measure.metric;
  check_same_net : bool;
  spacing_model : spacing_model;
  jobs : int;
}

let default_config =
  { metric = Geom.Measure.Orthogonal; check_same_net = false;
    spacing_model = Geometric; jobs = 1 }

type cell_stats = {
  mutable pairs : int;
  mutable checked : int;
  mutable skipped_same_net : int;
  mutable skipped_no_rule : int;
  mutable skipped_device : int;
}

type stats = {
  cells : (Tech.Layer.t * Tech.Layer.t, cell_stats) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable bbox_rejects : int;
}

let new_stats () =
  { cells = Hashtbl.create 16; memo_hits = 0; memo_misses = 0; bbox_rejects = 0 }

(* Layer indices are dense (0 .. nlayers-1, in [Tech.Layer.all] order),
   so the per-pair hot path counts into a flat [cell_stats array] and
   looks rules up in a precomputed entry matrix — no tuple keys, no
   hashing, no option boxing per pair.  The Hashtbl-shaped [stats]
   above stays the public, mergeable view; the flat counters are folded
   into it once per run (see [fold_cells]). *)
let nlayers = List.length Tech.Layer.all
let layer_of_index = Array.of_list Tech.Layer.all

let new_cells () =
  Array.init (nlayers * nlayers) (fun _ ->
      { pairs = 0; checked = 0; skipped_same_net = 0; skipped_no_rule = 0;
        skipped_device = 0 })

let cell stats la lb =
  let key = if Tech.Layer.index la <= Tech.Layer.index lb then (la, lb) else (lb, la) in
  match Hashtbl.find_opt stats.cells key with
  | Some c -> c
  | None ->
    let c =
      { pairs = 0; checked = 0; skipped_same_net = 0; skipped_no_rule = 0;
        skipped_device = 0 }
    in
    Hashtbl.add stats.cells key c;
    c

let pp_stats ppf stats =
  Format.fprintf ppf "@[<v>";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.cells []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Tech.Layer.compare a1 b1 with
         | 0 -> Tech.Layer.compare a2 b2
         | c -> c)
  |> List.iter (fun ((la, lb), c) ->
         Format.fprintf ppf "%s-%s: pairs=%d checked=%d same-net-skip=%d no-rule=%d device=%d@,"
           (Tech.Layer.to_cif la) (Tech.Layer.to_cif lb) c.pairs c.checked
           c.skipped_same_net c.skipped_no_rule c.skipped_device);
  Format.fprintf ppf "memo: %d hits / %d misses; bbox rejects: %d@]" stats.memo_hits
    stats.memo_misses stats.bbox_rejects

let merge_stats ~into src =
  Hashtbl.iter
    (fun (la, lb) (c : cell_stats) ->
      let d = cell into la lb in
      d.pairs <- d.pairs + c.pairs;
      d.checked <- d.checked + c.checked;
      d.skipped_same_net <- d.skipped_same_net + c.skipped_same_net;
      d.skipped_no_rule <- d.skipped_no_rule + c.skipped_no_rule;
      d.skipped_device <- d.skipped_device + c.skipped_device)
    src.cells;
  into.memo_hits <- into.memo_hits + src.memo_hits;
  into.memo_misses <- into.memo_misses + src.memo_misses;
  into.bbox_rejects <- into.bbox_rejects + src.bbox_rejects

let record_metrics metrics stats =
  let total field =
    Hashtbl.fold (fun _ c acc -> acc + field c) stats.cells 0
  in
  Metrics.incr ~by:(total (fun c -> c.pairs)) metrics "interactions.pairs";
  Metrics.incr ~by:(total (fun c -> c.checked)) metrics "interactions.checked";
  Metrics.incr ~by:(total (fun c -> c.skipped_same_net)) metrics
    "interactions.skipped_same_net";
  Metrics.incr ~by:(total (fun c -> c.skipped_no_rule)) metrics
    "interactions.skipped_no_rule";
  Metrics.incr ~by:(total (fun c -> c.skipped_device)) metrics
    "interactions.skipped_device";
  Metrics.incr ~by:stats.memo_hits metrics "interactions.memo_hits";
  Metrics.incr ~by:stats.memo_misses metrics "interactions.memo_misses";
  Metrics.incr ~by:stats.bbox_rejects metrics "interactions.bbox_rejects"

(* ------------------------------------------------------------------ *)

(* A geometry site participating in an interaction: an element reached
   through [path] (call indices from the symbol being checked), with
   its geometry already mapped into that symbol's coordinates. *)
(* Fields are mutable solely so the instance-pair evaluator can reuse
   two per-domain scratch sites instead of allocating a record, a bbox
   and a path copy for every judged candidate (see
   [transform_site_into]); sites built by [frontier] or stored in the
   candidate memo are never mutated. *)
type site = {
  mutable s_path : int list;
  mutable s_eid : int;
  mutable s_layer : Tech.Layer.t;
  mutable s_rects : Geom.Rects.t;
      (** packed; never mutated once the site is built *)
  mutable s_bbox : Geom.Rect.t;
  mutable s_device : Tech.Device.kind option;  (** of the owning symbol *)
  mutable s_loc : Cif.Loc.t option;  (** CIF source position of the element *)
}

(* The widest spacing any rule in the deck can demand — the candidate
   cutoff and grid cell size.  Directed [space_<a>_<b>] overrides are
   folded in too: an override larger than every base space would
   otherwise put violating pairs beyond the collection window (a missed
   violation, the paper's Fig 1 bottom region). *)
let max_dist rules =
  List.fold_left
    (fun acc (_, v) -> max acc v)
    (List.fold_left max 0
       [ rules.Tech.Rules.space_diffusion; rules.Tech.Rules.space_poly;
         rules.Tech.Rules.space_metal; rules.Tech.Rules.space_contact;
         rules.Tech.Rules.space_poly_diffusion ])
    rules.Tech.Rules.pair_spaces

(* Minimum gap between two packed rect sets under the metric, via the
   {!Geom.Rects} kernel (sweep in production, the naive oracle under
   DIC_NAIVE_KERNEL).  [cutoff2] bounds the search: pairs farther apart
   than the caller cares about are pruned early, and both kernels
   report the same canonical closest pair for error localisation. *)
let gap2_of cfg ~cutoff2 ws a b =
  Geom.Rects.gap2
    ~euclid:(cfg.metric = Geom.Measure.Euclidean)
    ~cutoff2 ws a b

(* ------------------------------------------------------------------ *)
(* Frontier collection                                                 *)

let rec frontier model window tr path (sym : Model.symbol) acc =
  let identity = Geom.Transform.equal tr Geom.Transform.identity in
  let acc =
    List.fold_left
      (fun acc (e : Model.element) ->
        let bbox = Geom.Transform.apply_rect tr e.Model.bbox in
        if Geom.Rect.touches ~a:bbox ~b:window then
          { s_path = List.rev path;
            s_eid = e.Model.eid;
            s_layer = e.Model.layer;
            s_rects =
              (* Untransformed sites share the element's packed set;
                 both are immutable by contract. *)
              (if identity then e.Model.packed else Geom.Rects.apply tr e.Model.packed);
            s_bbox = bbox;
            s_device = sym.Model.device;
            s_loc = e.Model.loc }
          :: acc
        else acc)
      acc sym.Model.elements
  in
  List.fold_left
    (fun acc (c : Model.call) ->
      let callee = Model.find model c.Model.callee in
      match callee.Model.sbbox with
      | None -> acc
      | Some bb ->
        let tr' = Geom.Transform.compose tr c.Model.transform in
        let bbox = Geom.Transform.apply_rect tr' bb in
        if Geom.Rect.touches ~a:bbox ~b:window then
          frontier model window tr' (c.Model.cidx :: path) callee acc
        else acc)
    acc sym.Model.calls

(* ------------------------------------------------------------------ *)
(* Fast net resolution                                                 *)

type env = {
  model : Model.t;
  nets : Netgen.t;
  calls_arr : (int, Model.call array) Hashtbl.t;
}

let make_env nets =
  let model = nets.Netgen.model in
  let calls_arr = Hashtbl.create 16 in
  List.iter
    (fun (s : Model.symbol) ->
      Hashtbl.replace calls_arr s.Model.sid (Array.of_list s.Model.calls))
    model.Model.symbols;
  { model; nets; calls_arr }

let rec resolve env sid path eid =
  let sn = Netgen.nets_of env.nets sid in
  match path with
  | [] -> sn.Netgen.elt_group.(eid)
  | c :: rest -> (
    let calls = Hashtbl.find env.calls_arr sid in
    match resolve env calls.(c).Model.callee rest eid with
    | None -> None
    | Some child_gid -> Hashtbl.find_opt sn.Netgen.sub_group (c, child_gid))

(* Lift a net group of the symbol at the end of [path] up to [sid]'s
   net numbering. *)
let rec resolve_group env sid path gid =
  match path with
  | [] -> Some gid
  | c :: rest -> (
    let sn = Netgen.nets_of env.nets sid in
    let calls = Hashtbl.find env.calls_arr sid in
    match resolve_group env calls.(c).Model.callee rest gid with
    | None -> None
    | Some child_gid -> Hashtbl.find_opt sn.Netgen.sub_group (c, child_gid))

(* All port nets of the (device) instance a site lives in, in [sid]'s
   net numbering. *)
let instance_port_nets env sid path =
  let rec owner sid' = function
    | [] -> sid'
    | c :: rest ->
      let calls = Hashtbl.find env.calls_arr sid' in
      owner calls.(c).Model.callee rest
  in
  let dev_sid = owner sid path in
  let sn = Netgen.nets_of env.nets dev_sid in
  Array.to_list sn.Netgen.groups
  |> List.filter_map (fun (g : Netgen.group) -> resolve_group env sid path g.Netgen.gid)

(* ------------------------------------------------------------------ *)
(* The pair check                                                      *)

type outcome =
  | Skip
  | Short of Geom.Rect.t
  | Accidental of Geom.Rect.t  (** poly-diffusion crossing outside a device *)
  | Violation of Geom.Rect.t * int * int  (** where, required, gap2 *)

(* [head_equal] pairs live inside one instance and are that
   definition's business; never re-check them in the parent. *)
let head_equal a b =
  match (a.s_path, b.s_path) with
  | ha :: _, hb :: _ -> ha = hb
  | _ -> false

let poly_diff_pair la lb =
  Tech.Layer.(
    (equal la Poly && equal lb Diffusion) || (equal la Diffusion && equal lb Poly))

(* Error-localisation bbox of the judged pair: the hull of the kernel's
   canonical closest rectangles (or of the site bboxes when the kernel
   pruned everything past the cutoff).  Called only on the rare branch
   that actually emits a finding — the overwhelmingly common Skip path
   allocates no rectangles.  [judge_pair], the pair check itself, lives
   below with the per-domain context it reads from. *)
let[@inline] where_of (g : Geom.Rects.gap) a b =
  if g.Geom.Rects.ai >= 0 then
    Geom.Rect.hull
      (Geom.Rects.get a.s_rects g.Geom.Rects.ai)
      (Geom.Rects.get b.s_rects g.Geom.Rects.bi)
  else Geom.Rect.hull a.s_bbox b.s_bbox

let report_outcome ~context ?path ?loc la lb outcome =
  let pair_name =
    if Tech.Layer.equal la lb then Tech.Layer.to_cif la
    else if Tech.Layer.index la <= Tech.Layer.index lb then
      Tech.Layer.to_cif la ^ "-" ^ Tech.Layer.to_cif lb
    else Tech.Layer.to_cif lb ^ "-" ^ Tech.Layer.to_cif la
  in
  match outcome with
  | Skip -> []
  | Short where ->
    [ Report.error ~stage:Report.Interactions ~rule:("short." ^ pair_name) ~where
        ~context ?path ?loc
        (Printf.sprintf "%s geometry on different nets touches (short)" pair_name) ]
  | Accidental where ->
    [ Report.error ~stage:Report.Integrity ~rule:"integrity.accidental-transistor" ~where
        ~context ?path ?loc "poly crosses diffusion outside a transistor symbol" ]
  | Violation (where, req, gap2) ->
    [ Report.error ~stage:Report.Interactions ~rule:("spacing." ^ pair_name) ~where
        ~context ?path ?loc
        (Printf.sprintf "%s spacing %.2f < %d" pair_name
           (sqrt (float_of_int gap2)) req) ]

(* Dotted instance path of a site, rooted at the definition being
   checked: "inv[3].contact[0]" under context "TOP" reads
   "TOP.inv[3].contact[0]".  [None] when the element is local to the
   definition — the context alone already names it. *)
let site_instance_path env sid ~context (site : site) =
  let rec go sid' acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let calls = Hashtbl.find env.calls_arr sid' in
      let call = calls.(c) in
      let callee = Model.find env.model call.Model.callee in
      go call.Model.callee
        (Printf.sprintf "%s[%d]" callee.Model.sname c :: acc)
        rest
  in
  match go sid [] site.s_path with
  | [] -> None
  | segs -> Some (String.concat "." (context :: segs))

(* A pair violation gets one provenance: site [a]'s path and source
   position, falling back to [b]'s when [a] has none (both sites are in
   the message's bbox anyway). *)
let pair_provenance env sid ~context a b =
  let path =
    match site_instance_path env sid ~context a with
    | Some _ as p -> p
    | None -> site_instance_path env sid ~context b
  in
  let loc = match a.s_loc with Some _ as l -> l | None -> b.s_loc in
  (path, loc)

(* ------------------------------------------------------------------ *)
(* Instance-pair memoisation                                           *)

type cand = {
  k_a : int list * int;  (** path within A, eid *)
  k_b : int list * int;
  k_la : Tech.Layer.t;
  k_lb : Tech.Layer.t;
  k_site_a : site;  (** in A's frame *)
  k_site_b : site;
}

type memo_key = int * int * Geom.Transform.t

let candidates cfg env dmax (memo : (memo_key, cand list) Hashtbl.t) stats ws sa sb rel =
  let key = (sa, sb, rel) in
  match Hashtbl.find_opt memo key with
  | Some cs ->
    stats.memo_hits <- stats.memo_hits + 1;
    cs
  | None ->
    stats.memo_misses <- stats.memo_misses + 1;
    let syma = Model.find env.model sa and symb = Model.find env.model sb in
    let cs =
      match (syma.Model.sbbox, symb.Model.sbbox) with
      | Some ba, Some bb -> (
        let bb_rel = Geom.Transform.apply_rect rel bb in
        let wa = Geom.Rect.inflate ba dmax and wb = Geom.Rect.inflate bb_rel dmax in
        match (wa, wb) with
        | Some wa, Some wb -> (
          match Geom.Rect.inter wa wb with
          | None -> []
          | Some window ->
            let sites_a = frontier env.model window Geom.Transform.identity [] syma [] in
            let sites_b = frontier env.model window rel [] symb [] in
            List.concat_map
              (fun a ->
                List.filter_map
                  (fun b ->
                    if Geom.Rect.chebyshev_gap a.s_bbox b.s_bbox > dmax then begin
                      stats.bbox_rejects <- stats.bbox_rejects + 1;
                      None
                    end
                    else
                      let g = gap2_of cfg ~cutoff2:(dmax * dmax) ws a.s_rects b.s_rects in
                      if g.Geom.Rects.ai >= 0 then
                        Some
                          { k_a = (a.s_path, a.s_eid);
                            k_b = (b.s_path, b.s_eid);
                            k_la = a.s_layer;
                            k_lb = b.s_layer;
                            k_site_a = a;
                            k_site_b = b }
                      else None)
                  sites_b)
              sites_a)
        | _ -> [])
      | _ -> []
    in
    Hashtbl.add memo key cs;
    cs

(* Instantiate a memoised candidate site into the caller's frame.
   [dst] is a per-domain scratch rect set and [into] a per-domain
   scratch site record: the transformed geometry and the site itself
   live only for the duration of one judged pair, so a candidate
   evaluation allocates nothing but its path spine and bbox. *)
let transform_site_into ~dst ~into tr s path =
  Geom.Rects.apply_into tr ~src:s.s_rects ~dst;
  into.s_path <- path;
  into.s_eid <- s.s_eid;
  into.s_layer <- s.s_layer;
  into.s_rects <- dst;
  into.s_bbox <- Geom.Transform.apply_rect tr s.s_bbox;
  into.s_device <- s.s_device;
  into.s_loc <- s.s_loc;
  into

(* ------------------------------------------------------------------ *)
(* The worklist                                                        *)

(* Everything below runs in two phases.  Phase 1 (serial, cheap) walks
   the definitions once and builds an ordered worklist of independent
   *tasks*: a chunk of local element pairs, one element against the
   instances near it, or one instance pair.  Phase 2 evaluates the
   tasks — either in order on the calling domain ([jobs <= 1], exactly
   the old serial behaviour) or over [Domain.spawn] workers claiming
   contiguous chunks from a shared queue.

   A task only reads shared state (the model, the net structure — both
   frozen after elaboration); everything it mutates lives in the
   per-domain [dctx] below, merged deterministically after the join.
   Because a task's result does not depend on its [dctx] (the memo is a
   pure cache, the stats are write-only) and results are merged by
   chunk index, the concatenated report is identical whatever the
   domain count — only the per-domain observability (the memo hit/miss
   split, bbox reject counts per shard, trace lanes) depends on which
   domain happened to claim which chunk. *)

type dctx = {
  d_stats : stats;
  d_memo : (memo_key, cand list) Hashtbl.t;
  d_ports : (int * int list, int list) Hashtbl.t;
      (** (sid, site path) -> port nets of the owning device instance *)
  d_ws : Geom.Rects.ws;  (** sweep-kernel scratch, one per domain *)
  d_ta : Geom.Rects.t;  (** scratch for instantiating memoised site A… *)
  d_tb : Geom.Rects.t;  (** …and site B; live only within one judged pair *)
  d_sa : site;  (** scratch site records over [d_ta]/[d_tb], same lifetime *)
  d_sb : site;
  d_cells : cell_stats array;
      (** flat per-layer-pair counters ([ia * nlayers + ib], ia <= ib);
          folded into [d_stats.cells] after the run *)
  d_entry : Tech.Interaction.entry array;
      (** the run's rule deck, resolved per layer pair once — indexing
          it allocates nothing, unlike re-deriving the entry per pair *)
}

let make_dctx rules stats memo =
  let ta = Geom.Rects.empty () and tb = Geom.Rects.empty () in
  let scratch_site rects =
    { s_path = []; s_eid = -1; s_layer = Tech.Layer.Diffusion; s_rects = rects;
      s_bbox = Geom.Rect.make 0 0 0 0; s_device = None; s_loc = None }
  in
  { d_stats = stats; d_memo = memo; d_ports = Hashtbl.create 64;
    d_ws = Geom.Rects.make_ws (); d_ta = ta; d_tb = tb;
    d_sa = scratch_site ta; d_sb = scratch_site tb; d_cells = new_cells ();
    d_entry =
      Array.init (nlayers * nlayers) (fun i ->
          Tech.Interaction.entry rules
            layer_of_index.(i / nlayers)
            layer_of_index.(i mod nlayers)) }

let[@inline] dcell dctx la lb =
  let ia = Tech.Layer.index la and ib = Tech.Layer.index lb in
  dctx.d_cells.(if ia <= ib then (ia * nlayers) + ib else (ib * nlayers) + ia)

(* A cell is touched iff its [pairs] counter moved ([judge_pair] bumps
   it before anything else), so folding only those keeps the Hashtbl
   key set — and hence [pp_stats] output — identical to the old
   count-in-place representation. *)
let fold_cells dctx =
  for ia = 0 to nlayers - 1 do
    for ib = ia to nlayers - 1 do
      let c = dctx.d_cells.((ia * nlayers) + ib) in
      if c.pairs > 0 then begin
        let d = cell dctx.d_stats layer_of_index.(ia) layer_of_index.(ib) in
        d.pairs <- d.pairs + c.pairs;
        d.checked <- d.checked + c.checked;
        d.skipped_same_net <- d.skipped_same_net + c.skipped_same_net;
        d.skipped_no_rule <- d.skipped_no_rule + c.skipped_no_rule;
        d.skipped_device <- d.skipped_device + c.skipped_device
      end
    done
  done

let net_of env sid (site : site) = resolve env sid site.s_path site.s_eid

let same_net env sid a b =
  match (net_of env sid a, net_of env sid b) with
  | Some x, Some y -> x = y
  | _ -> false

let port_nets env dctx sid (site : site) =
  match Hashtbl.find_opt dctx.d_ports (sid, site.s_path) with
  | Some ns -> ns
  | None ->
    let ns = instance_port_nets env sid site.s_path in
    Hashtbl.add dctx.d_ports (sid, site.s_path) ns;
    ns

let is_device_site (site : site) = site.s_path <> [] && site.s_device <> None

let related env dctx sid a b =
  (is_device_site a
  && match net_of env sid b with
     | Some n -> List.mem n (port_nets env dctx sid a)
     | None -> false)
  || (is_device_site b
     && match net_of env sid a with
        | Some n -> List.mem n (port_nets env dctx sid b)
        | None -> false)

(* A task is closed over the worklist geometry but takes the judging
   environment — config and rule deck — at evaluation time, so one
   worklist (and one candidate memo) can be evaluated under several
   decks: the plan depends only on [dmax]. *)
type task = config -> Tech.Rules.t -> dctx -> Report.violation list

(* The deck-independent guard attached to each task: just enough
   geometry for a {!Deckcheck} certificate to prove, under the concrete
   deck being run, that every pair the task would judge is clean — in
   which case [run]'s prepass skips the task wholesale.  Guards only
   ever turn provably-Skip evaluations into skips, so the report is
   unchanged. *)
type guard =
  | G_local of int  (** all local element pairs of symbol [sid] *)
  | G_elt of {
      g_layer : Tech.Layer.t;
      g_bbox : Geom.Rect.t;  (** the local element, in the symbol's frame *)
      g_near : (Geom.Transform.t * int) list;  (** placed callees nearby *)
    }
  | G_inst of {
      g_ta : Geom.Transform.t;
      g_sa : int;
      g_tb : Geom.Transform.t;
      g_sb : int;
    }

(* The pair check proper.  Net resolution ([same_net]/[related]) is the
   most expensive part of judging a pair, and pairs with no spacing rule
   at all (a large share of the matrix) never reach it — the calls sit
   directly on the branches that need them, so the common path allocates
   neither closures nor rectangles. *)
let judge_pair cfg env sid dctx a b =
  if head_equal a b then Skip
  else begin
    let c = dcell dctx a.s_layer b.s_layer in
    c.pairs <- c.pairs + 1;
    match
      dctx.d_entry.((Tech.Layer.index a.s_layer * nlayers)
                    + Tech.Layer.index b.s_layer)
    with
    | Tech.Interaction.No_rule ->
      c.skipped_no_rule <- c.skipped_no_rule + 1;
      Skip
    | Tech.Interaction.Device_checked ->
      c.skipped_device <- c.skipped_device + 1;
      Skip
    | Tech.Interaction.Space { same_net = sreq; diff_net = dreq } -> (
      (* "If the element is part of a transistor, the subcases depend on
         whether or not the elements are related."  A transistor's own
         diffusion spans both source and drain nets and its gate poly is
         device geometry, so any check against an element on one of the
         transistor's port nets is waived.  For non-transistor devices
         (contacts), whose elements have well-defined nets, the waiver
         applies only to the poly/diffusion cross-layer rule (the wires
         feeding a butting or buried contact overlap its other layer). *)
      let transistor_pair =
        (match a.s_device with Some k -> Tech.Device.is_transistor k | None -> false)
        || (match b.s_device with Some k -> Tech.Device.is_transistor k | None -> false)
      in
      if (transistor_pair || poly_diff_pair a.s_layer b.s_layer)
         && related env dctx sid a b
      then begin
        c.skipped_same_net <- c.skipped_same_net + 1;
        Skip
      end
      else begin
        let same_net = same_net env sid a b in
        let resistor =
          a.s_device = Some Tech.Device.Resistor || b.s_device = Some Tech.Device.Resistor
        in
        let use_same_net_rule = same_net && (not resistor) && not cfg.check_same_net in
        let required = if use_same_net_rule then sreq else Some dreq in
        match required with
        | None ->
          c.skipped_same_net <- c.skipped_same_net + 1;
          Skip
        | Some req -> (
          c.checked <- c.checked + 1;
          (* The geometric model only acts on gaps below the rule, so
             the kernel may prune beyond req; the exposure model prints
             and judges the exact minimum, so it gets no cutoff. *)
          let cutoff2 =
            match cfg.spacing_model with
            | Geometric -> req * req
            | Exposure _ -> max_int
          in
          let g = gap2_of cfg ~cutoff2 dctx.d_ws a.s_rects b.s_rects in
          let gap2 = g.Geom.Rects.g2 in
          if gap2 = 0 then
            if same_net then Skip
            else if Tech.Layer.equal a.s_layer b.s_layer then Short (where_of g a b)
            else if poly_diff_pair a.s_layer b.s_layer && g.Geom.Rects.overlap then
              Accidental (where_of g a b)
            else Violation (where_of g a b, req, 0)
          else begin
            match cfg.spacing_model with
            | Geometric ->
              if gap2 < req * req then Violation (where_of g a b, req, gap2) else Skip
            | Exposure { model; misalign } ->
              (* The line-of-closest-approach test: same-layer pairs see
                 bias only; cross-layer pairs add misalignment. *)
              let mis =
                if Tech.Layer.equal a.s_layer b.s_layer then 0 else misalign
              in
              let verdict =
                Process_model.Closest.check model ~misalign:mis
                  (Geom.Region.of_rects (Geom.Rects.to_list a.s_rects))
                  (Geom.Region.of_rects (Geom.Rects.to_list b.s_rects))
              in
              if verdict.Process_model.Closest.bridges then
                Violation (where_of g a b, req, gap2)
              else Skip
          end)
      end)
  end

(* Provenance — dotted instance paths and source positions — is string
   building; render it only for the rare pair that produced a finding. *)
let emit env sid ~context a b = function
  | Skip -> []
  | outcome ->
    let path, loc = pair_provenance env sid ~context a b in
    report_outcome ~context ?path ?loc a.s_layer b.s_layer outcome

(* Local element pairs are individually tiny; batch them so a task is
   worth scheduling. *)
let local_chunk = 32

let tasks_of_symbol env ~dmax (s : Model.symbol) : (guard * task) list =
  if Model.is_device s then []
  else begin
    let context = s.Model.sname in
    let sid = s.Model.sid in
    let local_sites =
      List.map
        (fun (e : Model.element) ->
          { s_path = [];
            s_eid = e.Model.eid;
            s_layer = e.Model.layer;
            s_rects = e.Model.packed;
            s_bbox = e.Model.bbox;
            s_device = s.Model.device;
            s_loc = e.Model.loc })
        s.Model.elements
    in
    (* Local element pairs, chunked.  Chunks are assembled incrementally
       inside the iteration: the full pair list is never materialised. *)
    let elt_idx = Geom.Grid_index.create ~cell:(max 1 dmax) () in
    List.iter (fun site -> Geom.Grid_index.add elt_idx site.s_bbox site) local_sites;
    let local_tasks =
      let chunks = ref [] and cur = ref [] and cur_n = ref 0 in
      Geom.Grid_index.iter_pairs_within elt_idx dmax (fun (_, a) (_, b) ->
          cur := (a, b) :: !cur;
          incr cur_n;
          if !cur_n = local_chunk then begin
            chunks := List.rev !cur :: !chunks;
            cur := [];
            cur_n := 0
          end);
      if !cur <> [] then chunks := List.rev !cur :: !chunks;
      List.rev_map
        (fun chunk ->
          ( G_local sid,
            fun cfg _rules dctx ->
              List.concat_map
                (fun (a, b) ->
                  emit env sid ~context a b (judge_pair cfg env sid dctx a b))
                chunk ))
        !chunks
    in
    (* Calls with their placed bounding boxes. *)
    let placed_calls =
      List.filter_map
        (fun (c : Model.call) ->
          let callee = Model.find env.model c.Model.callee in
          Option.map
            (fun bb -> (c, callee, Geom.Transform.apply_rect c.Model.transform bb))
            callee.Model.sbbox)
        s.Model.calls
    in
    (* Element vs instance: one task per local element near instances. *)
    let call_idx = Geom.Grid_index.create ~cell:(max 1 (4 * dmax)) () in
    List.iter (fun (c, callee, bb) -> Geom.Grid_index.add call_idx bb (c, callee)) placed_calls;
    let elt_inst_tasks =
      List.filter_map
        (fun site ->
          match Geom.Rect.inflate site.s_bbox dmax with
          | None -> None
          | Some window -> (
            let near = ref [] in
            Geom.Grid_index.iter_query call_idx window (fun _ cc ->
                near := cc :: !near);
            match List.rev !near with
            | [] -> None
            | near ->
              Some
                ( G_elt
                    { g_layer = site.s_layer;
                      g_bbox = site.s_bbox;
                      g_near =
                        List.map
                          (fun ((c : Model.call), _) ->
                            (c.Model.transform, c.Model.callee))
                          near },
                  fun cfg _rules dctx ->
                    List.concat_map
                      (fun ((c : Model.call), callee) ->
                        let sites =
                          frontier env.model window c.Model.transform [ c.Model.cidx ]
                            callee []
                        in
                        List.concat_map
                          (fun sub ->
                            emit env sid ~context site sub
                              (judge_pair cfg env sid dctx site sub))
                          sites)
                      near )))
        local_sites
    in
    (* Instance vs instance: one task per interacting placement pair,
       with memoised candidate lists. *)
    let inst_idx = Geom.Grid_index.create ~cell:(max 1 (4 * dmax)) () in
    List.iter (fun (c, callee, bb) -> Geom.Grid_index.add inst_idx bb (c, callee)) placed_calls;
    let inst_tasks =
      let acc = ref [] in
      Geom.Grid_index.iter_pairs_within inst_idx dmax
        (fun (_, ((ca : Model.call), _)) (_, ((cb : Model.call), _)) ->
          let task cfg _rules dctx =
            let rel =
              Geom.Transform.compose
                (Geom.Transform.inverse ca.Model.transform)
                cb.Model.transform
            in
            let cands =
              candidates cfg env dmax dctx.d_memo dctx.d_stats dctx.d_ws
                ca.Model.callee cb.Model.callee rel
            in
            List.concat_map
              (fun cand ->
                let site_a =
                  transform_site_into ~dst:dctx.d_ta ~into:dctx.d_sa
                    ca.Model.transform cand.k_site_a
                    (ca.Model.cidx :: fst cand.k_a)
                and site_b =
                  transform_site_into ~dst:dctx.d_tb ~into:dctx.d_sb
                    ca.Model.transform cand.k_site_b
                    (cb.Model.cidx :: fst cand.k_b)
                in
                emit env sid ~context site_a site_b
                  (judge_pair cfg env sid dctx site_a site_b))
              cands
          in
          let g =
            G_inst
              { g_ta = ca.Model.transform;
                g_sa = ca.Model.callee;
                g_tb = cb.Model.transform;
                g_sb = cb.Model.callee }
          in
          acc := (g, task) :: !acc);
      List.rev !acc
    in
    local_tasks @ elt_inst_tasks @ inst_tasks
  end

type memo = (memo_key, cand list) Hashtbl.t

let create_memo () : memo = Hashtbl.create 64

let prune_memo (memo : memo) ~keep =
  let doomed =
    Hashtbl.fold
      (fun ((sa, sb, _) as key) _ acc ->
        if keep sa && keep sb then acc else key :: acc)
      memo []
  in
  List.iter (Hashtbl.remove memo) doomed

type memo_entry = cand list

let memo_size (memo : memo) = Hashtbl.length memo

let export_memo (memo : memo) =
  Hashtbl.fold (fun key cs acc -> (key, cs) :: acc) memo []

let import_memo (memo : memo) entries =
  List.iter (fun (key, cs) -> Hashtbl.replace memo key cs) entries

(* ------------------------------------------------------------------ *)
(* The scheduler                                                       *)

(* Tasks are tagged with the symbol definition they came from, so the
   per-task clock feeds both the pair-check histogram and that
   definition's [symbol.<name>] cost bucket (the [--top-cost] view). *)
(* [enabled] is the certificate prepass verdict per task index: a
   [false] slot is a task some certificate proved silent, contributing
   [] exactly as evaluating it would have. *)
let run_span ?metrics ?enabled cfg rules (tasks : (string * guard * task) array) lo hi
    dctx =
  let out = ref [] in
  for i = lo to hi - 1 do
    let keep = match enabled with None -> true | Some arr -> arr.(i) in
    if keep then begin
      let sname, _, task = tasks.(i) in
      let vs =
        match metrics with
        | None -> task cfg rules dctx
        | Some m ->
          let t0 = Metrics.now_ns () in
          let vs = task cfg rules dctx in
          let dt = Int64.sub (Metrics.now_ns ()) t0 in
          Metrics.observe_ns m "interactions.pair_check_ns" dt;
          Metrics.add_cost_ns m ("symbol." ^ sname) dt;
          vs
      in
      out := vs :: !out
    end
  done;
  List.concat (List.rev !out)

let effective_jobs jobs =
  if jobs <= 0 then Domain.recommended_domain_count () else jobs

(* A plan is the deck-independent half of the sweep: the net structure,
   the resolution environment, and the ordered worklist, all built for a
   candidate cutoff of [pl_dmax].  [run] evaluates it under a concrete
   (config, rules) pair; several decks whose [max_dist] agree can share
   one plan (and one candidate memo) because the worklist geometry —
   grid cell sizes, collection windows, pair enumeration order — depends
   only on the cutoff, never on the individual spacing values. *)
type plan = {
  pl_nets : Netgen.t;
  pl_env : env;
  pl_dmax : int;
  pl_tasks : (string * guard * task) array;
}

let plan ?dmax (nets : Netgen.t) =
  let env = make_env nets in
  let dmax =
    match dmax with Some d -> d | None -> max_dist env.model.Model.rules
  in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (s : Model.symbol) ->
           List.map (fun (g, t) -> (s.Model.sname, g, t)) (tasks_of_symbol env ~dmax s))
         env.model.Model.symbols)
  in
  { pl_nets = nets; pl_env = env; pl_dmax = dmax; pl_tasks = tasks }

let run ?(config = default_config) ?rules ?memo ?metrics ?trace ?certs (p : plan) =
  let env = p.pl_env in
  let rules = match rules with Some r -> r | None -> env.model.Model.rules in
  let stats = new_stats () in
  let master_memo = match memo with Some m -> m | None -> create_memo () in
  let tasks = p.pl_tasks in
  let n = Array.length tasks in
  (* Certificate prepass: decide, serially and before any domain
     spawns, which tasks a certificate proves silent.  The verdict
     array is fixed input to the scheduler, so the skip set — and the
     report — is identical at every [jobs] value.  Bbox clearance
     bounds only the geometric spacing model (the exposure model
     judges printed images, not drawn gaps), so guards are inert under
     [Exposure]. *)
  let enabled =
    match certs with
    | None -> None
    | Some cs -> (
      match config.spacing_model with
      | Exposure _ -> None
      | Geometric ->
        let t0 = Metrics.now_ns () in
        let arr =
          Array.map
            (fun (_, g, _) ->
              match g with
              | G_local sid -> not (Deckcheck.local_guard cs ~sid)
              | G_elt { g_layer; g_bbox; g_near } ->
                not (Deckcheck.elt_guard cs ~la:g_layer ~bbox:g_bbox g_near)
              | G_inst { g_ta; g_sa; g_tb; g_sb } ->
                not (Deckcheck.inst_guard cs ~a:(g_ta, g_sa) ~b:(g_tb, g_sb)))
            tasks
        in
        Option.iter
          (fun m ->
            let skips =
              Array.fold_left (fun acc e -> if e then acc else acc + 1) 0 arr
            in
            Metrics.incr ~by:skips m "analysis.certified_task_skips";
            Metrics.incr ~by:skips m "analysis.certified_skips";
            Metrics.add_cost_ns m "analysis.guard" (Int64.sub (Metrics.now_ns ()) t0))
          metrics;
        Some arr)
  in
  let jobs = max 1 (min (effective_jobs config.jobs) (max 1 n)) in
  let shard_span i lo hi =
    (Printf.sprintf "shard[%d]" i, [ ("tasks", string_of_int (hi - lo)) ])
  in
  let violations =
    if jobs = 1 then begin
      let name, args = shard_span 0 0 n in
      let dctx = make_dctx rules stats master_memo in
      let vs =
        Trace.with_span trace ~cat:"shard" ~args name (fun () ->
            run_span ?metrics ?enabled config rules tasks 0 n dctx)
      in
      fold_cells dctx;
      vs
    end
    else begin
      (* Balanced scheduling via the shared {!Parallel} queue (which
         this code originated).  The weight estimate reuses the
         [symbol.<name>] cost buckets the earlier per-definition sweeps
         recorded into [metrics]: a definition that was expensive to
         sweep has bigger geometry and costs more to judge, so its
         tasks land in smaller chunks.  Chunk results come back in
         worklist order, so the report is byte-identical to the serial
         run at every [jobs] value and across repeated runs; which
         domain evaluated which chunk — and hence each shard's memo
         hit/miss split — is the only thing that varies. *)
      let weight_of_name =
        match metrics with
        | None -> fun _ -> 1
        | Some m ->
          let by_name = Hashtbl.create 16 in
          fun sname ->
            (match Hashtbl.find_opt by_name sname with
            | Some w -> w
            | None ->
              let c = Metrics.cost_ns m ("symbol." ^ sname) in
              let w = 1 + Int64.to_int (Int64.div c 1_000_000L) in
              Hashtbl.add by_name sname w;
              w)
      in
      let chunks =
        Parallel.run ?metrics ?trace ~jobs ~stage:"interactions"
          ~weight:(fun i ->
            match enabled with
            | Some arr when not arr.(i) -> 1
            | _ ->
              let sname, _, _ = tasks.(i) in
              weight_of_name sname)
          ~n
          ~worker:(fun _tid -> make_dctx rules (new_stats ()) (Hashtbl.copy master_memo))
          ~chunk:(fun dctx dm _dt ~lo ~hi ->
            run_span ?metrics:dm ?enabled config rules tasks lo hi dctx)
          ~merge:(fun dctx ->
            fold_cells dctx;
            merge_stats ~into:stats dctx.d_stats;
            Hashtbl.iter
              (fun k v ->
                if not (Hashtbl.mem master_memo k) then Hashtbl.add master_memo k v)
              dctx.d_memo)
          ()
      in
      List.concat chunks
    end
  in
  Option.iter (fun m -> record_metrics m stats) metrics;
  (violations, stats)

let check ?config ?memo ?metrics ?trace (nets : Netgen.t) =
  run ?config ?memo ?metrics ?trace (plan nets)
