let err ~rule ?where ~context msg = Report.error ~stage:Report.Devices ~rule ?where ~context msg

let regions (s : Model.symbol) =
  let r l = Model.layer_region s l in
  ( r Tech.Layer.Poly,
    r Tech.Layer.Diffusion,
    r Tech.Layer.Metal,
    r Tech.Layer.Contact,
    r Tech.Layer.Implant,
    r Tech.Layer.Buried,
    r Tech.Layer.Glass )

(* Does [inner] expanded by [margin] stay within [outer]? *)
let enclosed ~margin inner outer =
  Geom.Region.is_empty (Geom.Region.diff (Geom.Region.expand_orth inner margin) outer)

let bbox_err r = match Geom.Region.bbox r with Some b -> Some b | None -> None

(* ------------------------------------------------------------------ *)
(* Transistors                                                         *)

type side = Left | Right | Bottom | Top

let side_name = function
  | Left -> "left"
  | Right -> "right"
  | Bottom -> "bottom"
  | Top -> "top"

let side_strip g ext = function
  | Left -> Geom.Rect.make (Geom.Rect.x0 g - ext) (Geom.Rect.y0 g) (Geom.Rect.x0 g) (Geom.Rect.y1 g)
  | Right -> Geom.Rect.make (Geom.Rect.x1 g) (Geom.Rect.y0 g) (Geom.Rect.x1 g + ext) (Geom.Rect.y1 g)
  | Bottom -> Geom.Rect.make (Geom.Rect.x0 g) (Geom.Rect.y0 g - ext) (Geom.Rect.x1 g) (Geom.Rect.y0 g)
  | Top -> Geom.Rect.make (Geom.Rect.x0 g) (Geom.Rect.y1 g) (Geom.Rect.x1 g) (Geom.Rect.y1 g + ext)

let check_transistor rules ~context ~depletion (s : Model.symbol) =
  let p, d, _m, c, i, _b, _g = regions s in
  let gate = Geom.Region.inter p d in
  if Geom.Region.is_empty gate then
    [ err ~rule:"device.missing-gate" ~context
        "transistor has no poly-diffusion crossing (gate overlap missing)" ]
  else
    List.concat_map
      (fun gcomp ->
        let g = match Geom.Region.bbox gcomp with Some b -> b | None -> assert false in
        let covered region ext side =
          Geom.Region.contains_rect region (side_strip g ext side)
        in
        let overhang = rules.Tech.Rules.gate_poly_overhang
        and extension = rules.Tech.Rules.gate_diff_extension in
        (* Horizontal channel: diffusion continues left/right, poly
           crosses top/bottom; vertical is the transpose. *)
        let configs =
          [ ( [ (Left, `Diff); (Right, `Diff); (Top, `Poly); (Bottom, `Poly) ] );
            ( [ (Left, `Poly); (Right, `Poly); (Top, `Diff); (Bottom, `Diff) ] ) ]
        in
        let eval config =
          List.map
            (fun (side, want) ->
              let ok =
                match want with
                | `Diff -> covered d extension side
                | `Poly -> covered p overhang side
              in
              (side, want, ok))
            config
        in
        let scored =
          List.map (fun cfg -> let e = eval cfg in
                     (List.length (List.filter (fun (_, _, ok) -> ok) e), e))
            configs
        in
        let _, best =
          List.fold_left (fun (bs, be) (s', e) -> if s' > bs then (s', e) else (bs, be))
            (-1, []) scored
        in
        let geometry_errors =
          List.filter_map
            (fun (side, want, ok) ->
              if ok then None
              else
                Some
                  (match want with
                  | `Poly ->
                    err ~rule:"device.gate-overhang" ~where:g ~context
                      (Printf.sprintf "poly must extend %d past the %s of the gate"
                         overhang (side_name side))
                  | `Diff ->
                    err ~rule:"device.diff-extension" ~where:g ~context
                      (Printf.sprintf "diffusion must extend %d past the %s of the gate"
                         extension (side_name side))))
            best
        in
        let contact_errors =
          if Geom.Region.is_empty (Geom.Region.inter c gcomp) then []
          else
            [ err ~rule:"device.contact-over-gate" ~where:g ~context
                "contact is not allowed over the active gate" ]
        in
        let implant_errors =
          if depletion then
            if enclosed ~margin:rules.Tech.Rules.implant_gate_surround gcomp i then []
            else
              [ err ~rule:"device.implant-surround" ~where:g ~context
                  (Printf.sprintf "implant must surround the gate by %d"
                     rules.Tech.Rules.implant_gate_surround) ]
          else if Geom.Region.is_empty (Geom.Region.inter i gcomp) then []
          else
            [ err ~rule:"device.unexpected-implant" ~where:g ~context
                "enhancement transistor gate is implanted" ]
        in
        geometry_errors @ contact_errors @ implant_errors)
      (Geom.Region.components gate)

(* ------------------------------------------------------------------ *)
(* Contact structures                                                  *)

let check_contact_cut rules ~context (s : Model.symbol) =
  let p, d, m, c, _i, _b, _g = regions s in
  if Geom.Region.is_empty c then
    [ err ~rule:"device.missing-contact" ~context "contact device has no contact cut" ]
  else begin
    let surround = rules.Tech.Rules.contact_surround in
    let metal_err =
      if enclosed ~margin:surround c m then []
      else
        [ err ~rule:"device.metal-surround" ?where:(bbox_err c) ~context
            (Printf.sprintf "metal must surround the contact by %d" surround) ]
    in
    let landing_err =
      match (Geom.Region.is_empty p, Geom.Region.is_empty d) with
      | true, true ->
        [ err ~rule:"device.no-landing" ?where:(bbox_err c) ~context
            "contact lands on neither poly nor diffusion" ]
      | false, false ->
        [ err ~rule:"device.ambiguous-landing" ?where:(bbox_err c) ~context
            "contact touches both poly and diffusion; use a butting contact" ]
      | false, true ->
        if enclosed ~margin:surround c p then []
        else
          [ err ~rule:"device.landing-surround" ?where:(bbox_err c) ~context
              (Printf.sprintf "poly must surround the contact by %d" surround) ]
      | true, false ->
        if enclosed ~margin:surround c d then []
        else
          [ err ~rule:"device.landing-surround" ?where:(bbox_err c) ~context
              (Printf.sprintf "diffusion must surround the contact by %d" surround) ]
    in
    metal_err @ landing_err
  end

let check_butting_contact rules ~context (s : Model.symbol) =
  let p, d, m, c, _i, _b, _g = regions s in
  let butt = Geom.Region.inter p d in
  let surround = rules.Tech.Rules.contact_surround in
  let butt_err =
    if Geom.Region.is_empty butt then
      [ err ~rule:"device.missing-butt" ~context
          "butting contact has no poly-diffusion overlap" ]
    else []
  in
  let cover_err =
    if Geom.Region.is_empty (Geom.Region.diff butt c) then []
    else
      [ err ~rule:"device.contact-covers-butt" ?where:(bbox_err butt) ~context
          "the contact must cover the poly-diffusion overlap" ]
  in
  let on_conductor_err =
    if Geom.Region.is_empty (Geom.Region.diff c (Geom.Region.union p d)) then []
    else
      [ err ~rule:"device.contact-on-conductor" ?where:(bbox_err c) ~context
          "the contact must lie on poly or diffusion everywhere" ]
  in
  let metal_err =
    if Geom.Region.is_empty c || enclosed ~margin:surround c m then []
    else
      [ err ~rule:"device.metal-surround" ?where:(bbox_err c) ~context
          (Printf.sprintf "metal must surround the contact by %d" surround) ]
  in
  butt_err @ cover_err @ on_conductor_err @ metal_err

let check_buried_contact rules ~context (s : Model.symbol) =
  let p, d, _m, c, _i, b, _g = regions s in
  let tie = Geom.Region.inter p d in
  let tie_err =
    if Geom.Region.is_empty tie then
      [ err ~rule:"device.missing-butt" ~context
          "buried contact has no poly-diffusion overlap" ]
    else []
  in
  let window_err =
    if Geom.Region.is_empty tie
       || enclosed ~margin:rules.Tech.Rules.buried_overlap tie b
    then []
    else
      [ err ~rule:"device.buried-window" ?where:(bbox_err tie) ~context
          (Printf.sprintf "buried window must surround the tie by %d"
             rules.Tech.Rules.buried_overlap) ]
  in
  let no_cut_err =
    if Geom.Region.is_empty c then []
    else
      [ err ~rule:"device.unexpected-contact" ?where:(bbox_err c) ~context
          "buried contacts use no contact cut" ]
  in
  tie_err @ window_err @ no_cut_err

(* ------------------------------------------------------------------ *)
(* Resistor and pad                                                    *)

let check_resistor _rules ~context (s : Model.symbol) =
  let _p, d, _m, _c, _i, _b, _g = regions s in
  if Geom.Region.is_empty d then
    [ err ~rule:"device.missing-body" ~context "resistor has no diffusion body" ]
  else []

let check_pad rules ~context (s : Model.symbol) =
  let _p, _d, m, _c, _i, _b, g = regions s in
  if Geom.Region.is_empty g then
    [ err ~rule:"device.missing-glass" ~context "pad has no glass opening" ]
  else if enclosed ~margin:rules.Tech.Rules.pad_metal_surround g m then []
  else
    [ err ~rule:"device.pad-metal" ?where:(bbox_err g) ~context
        (Printf.sprintf "metal must surround the glass opening by %d"
           rules.Tech.Rules.pad_metal_surround) ]

(* ------------------------------------------------------------------ *)

(* Device violations are judged on the definition's merged layer
   regions, so the natural source position is the definition itself —
   its DS statement — not any single element. *)
let with_symbol_loc (s : Model.symbol) vs =
  match s.Model.sloc with
  | None -> vs
  | Some _ as sloc ->
    List.map
      (fun (v : Report.violation) ->
        match v.Report.loc with None -> { v with Report.loc = sloc } | Some _ -> v)
      vs

let check_symbol rules (s : Model.symbol) =
  let context = s.Model.sname in
  with_symbol_loc s
    (match s.Model.device with
    | None -> []
    | Some Tech.Device.Enhancement -> check_transistor rules ~context ~depletion:false s
    | Some Tech.Device.Depletion -> check_transistor rules ~context ~depletion:true s
    | Some Tech.Device.Contact_cut -> check_contact_cut rules ~context s
    | Some Tech.Device.Butting_contact -> check_butting_contact rules ~context s
    | Some Tech.Device.Buried_contact -> check_buried_contact rules ~context s
    | Some Tech.Device.Resistor -> check_resistor rules ~context s
    | Some Tech.Device.Pad -> check_pad rules ~context s
    | Some Tech.Device.Checked ->
      [ Report.info ~stage:Report.Devices ~rule:"device.checked-waived" ~context
          "user-certified device: internal checks waived" ])

let check (m : Model.t) =
  List.concat_map (check_symbol m.Model.rules) m.Model.symbols

(* ------------------------------------------------------------------ *)
(* The relational gate-overhang check (paper Fig 14)                   *)

(* Largest d (up to [cap]) such that the strip of depth d beyond the
   gate side is covered by the poly region. *)
let measured_overhang p g side ~cap =
  let rec grow d =
    if d >= cap then cap
    else if Geom.Region.contains_rect p (side_strip g (d + 1) side) then grow (d + 1)
    else d
  in
  grow 0

let check_relational ?required model rules (s : Model.symbol) =
  match s.Model.device with
  | Some (Tech.Device.Enhancement | Tech.Device.Depletion) ->
    let required =
      match required with
      | Some r -> r
      | None -> 3 * rules.Tech.Rules.gate_poly_overhang / 4
    in
    let context = s.Model.sname in
    let p = Model.layer_region s Tech.Layer.Poly
    and d = Model.layer_region s Tech.Layer.Diffusion in
    let gate = Geom.Region.inter p d in
    List.concat_map
      (fun gcomp ->
        let g = match Geom.Region.bbox gcomp with Some b -> b | None -> assert false in
        (* The poly runs along whichever axis it extends beyond the
           gate; its width is the gate's extent across that axis. *)
        let cap = 4 * rules.Tech.Rules.gate_poly_overhang in
        let vertical =
          measured_overhang p g Top ~cap > 0 || measured_overhang p g Bottom ~cap > 0
        in
        let sides, width =
          if vertical then ([ Top; Bottom ], Geom.Rect.width g)
          else ([ Left; Right ], Geom.Rect.height g)
        in
        List.filter_map
          (fun side ->
            let drawn = measured_overhang p g side ~cap in
            let v =
              Process_model.Relational.check_gate_overhang model ~width ~drawn ~required
            in
            if v.Process_model.Relational.ok then None
            else
              Some
                (err ~rule:"device.relational-overhang" ~where:g ~context
                   (Format.asprintf
                      "effective %s overhang %.0f < %d (drawn %d, retreat %.0f on %d-wide poly)"
                      (side_name side) v.Process_model.Relational.effective required drawn
                      v.Process_model.Relational.retreat width)))
          sides)
      (Geom.Region.components gate)
  | _ -> []

let check_relational_all ?required model (m : Model.t) =
  List.concat_map (check_relational ?required model m.Model.rules) m.Model.symbols

(* ------------------------------------------------------------------ *)
(* Terminals                                                           *)

type port = {
  pname : string;
  players : (Tech.Layer.t * Geom.Rect.t list) list;
  plabels : string list;
}

type iface = {
  ports : port list;
  tied : (string * string) list;
}

let region_skeleton rules layer region =
  let half = Tech.Rules.skeleton_half rules layer in
  let rec try_shrink h =
    if h <= 0 then Geom.Region.rects region
    else
      let s = Geom.Region.shrink_orth region h in
      if Geom.Region.is_empty s then try_shrink (h - 1) else Geom.Region.rects s
  in
  if Geom.Region.is_empty region then [] else try_shrink half

let labels_touching (s : Model.symbol) layer region =
  List.concat_map
    (fun (e : Model.element) ->
      match e.Model.net_label with
      | Some l
        when Tech.Layer.equal e.Model.layer layer
             && List.exists (Geom.Region.intersects region) e.Model.rects ->
        [ l ]
      | _ -> [])
    s.Model.elements
  |> List.sort_uniq String.compare

let element_skeletons (s : Model.symbol) layer =
  List.concat_map (fun (e : Model.element) -> e.Model.skeleton) (Model.on_layer s layer)

let element_labels (s : Model.symbol) layer =
  List.filter_map
    (fun (e : Model.element) -> e.Model.net_label)
    (Model.on_layer s layer)
  |> List.sort_uniq String.compare

let single_via_port (s : Model.symbol) =
  let layers = [ Tech.Layer.Metal; Tech.Layer.Poly; Tech.Layer.Diffusion ] in
  let players =
    List.filter_map
      (fun l ->
        match element_skeletons s l with [] -> None | sk -> Some (l, sk))
      layers
  in
  let plabels = List.concat_map (element_labels s) layers |> List.sort_uniq String.compare in
  { ports = [ { pname = "via"; players; plabels } ]; tied = [] }

let transistor_iface rules (s : Model.symbol) =
  let p = Model.layer_region s Tech.Layer.Poly
  and d = Model.layer_region s Tech.Layer.Diffusion in
  let gate = Geom.Region.inter p d in
  let gate_port =
    { pname = "gate";
      players = [ (Tech.Layer.Poly, element_skeletons s Tech.Layer.Poly) ];
      plabels = element_labels s Tech.Layer.Poly }
  in
  let sd = Geom.Region.diff d gate in
  let sd_ports =
    List.mapi
      (fun i comp ->
        { pname = Printf.sprintf "sd%d" i;
          players = [ (Tech.Layer.Diffusion, region_skeleton rules Tech.Layer.Diffusion comp) ];
          plabels = labels_touching s Tech.Layer.Diffusion comp })
      (Geom.Region.components sd)
  in
  { ports = gate_port :: sd_ports; tied = [] }

let resistor_iface rules (s : Model.symbol) =
  let d = Model.layer_region s Tech.Layer.Diffusion in
  match Geom.Region.bbox d with
  | None -> { ports = []; tied = [] }
  | Some bb ->
    let halves =
      if Geom.Rect.width bb >= Geom.Rect.height bb then
        let mid = (Geom.Rect.x0 bb + Geom.Rect.x1 bb) / 2 in
        [ Geom.Rect.make (Geom.Rect.x0 bb) (Geom.Rect.y0 bb) mid (Geom.Rect.y1 bb);
          Geom.Rect.make mid (Geom.Rect.y0 bb) (Geom.Rect.x1 bb) (Geom.Rect.y1 bb) ]
      else
        let mid = (Geom.Rect.y0 bb + Geom.Rect.y1 bb) / 2 in
        [ Geom.Rect.make (Geom.Rect.x0 bb) (Geom.Rect.y0 bb) (Geom.Rect.x1 bb) mid;
          Geom.Rect.make (Geom.Rect.x0 bb) mid (Geom.Rect.x1 bb) (Geom.Rect.y1 bb) ]
    in
    let ports =
      List.mapi
        (fun i half ->
          let part = Geom.Region.inter d (Geom.Region.of_rect half) in
          { pname = Printf.sprintf "r%d" i;
            players = [ (Tech.Layer.Diffusion, region_skeleton rules Tech.Layer.Diffusion part) ];
            plabels = labels_touching s Tech.Layer.Diffusion part })
        halves
    in
    { ports; tied = [] }

let per_layer_ports (s : Model.symbol) =
  let ports =
    List.filter_map
      (fun l ->
        match element_skeletons s l with
        | [] -> None
        | sk ->
          Some { pname = Tech.Layer.to_cif l; players = [ (l, sk) ];
                 plabels = element_labels s l })
      Tech.Layer.routing
  in
  { ports; tied = [] }

let interface rules (s : Model.symbol) =
  match s.Model.device with
  | None -> None
  | Some (Tech.Device.Enhancement | Tech.Device.Depletion) ->
    Some (transistor_iface rules s)
  | Some (Tech.Device.Contact_cut | Tech.Device.Butting_contact
         | Tech.Device.Buried_contact) ->
    Some (single_via_port s)
  | Some Tech.Device.Resistor -> Some (resistor_iface rules s)
  | Some Tech.Device.Pad ->
    Some
      { ports =
          [ { pname = "pad";
              players = [ (Tech.Layer.Metal, element_skeletons s Tech.Layer.Metal) ];
              plabels = element_labels s Tech.Layer.Metal } ];
        tied = [] }
  | Some Tech.Device.Checked -> Some (per_layer_ports s)
