(** Service-level telemetry for the [dicheck serve] daemon.

    {!Metrics} observes one check; {!Trace} observes one run.  This
    module observes the {e service}: one thread-safe hub per daemon,
    fed by the submit path and every worker domain, answering three
    questions the daemon could not answer before:

    - {b what is the service doing now} — rolling counters, gauges, and
      sliding-window latency distributions over the last N requests,
      rendered as the canonical JSON {!snapshot} behind the protocol's
      [{"admin":"stats"}] request and [dicheck top];
    - {b what happened, in order} — a structured event log: one JSON
      line per request lifecycle transition
      ([accepted]/[started]/[finished]/[cancelled]/[overloaded]/
      [rejected]), slow-request entries above [slow_ms], and
      daemon lifecycle ([start]/[shutdown_begin]/[shutdown]), written
      through [event_sink] with stable field names (schema in
      [docs/PROTOCOL.md]);
    - {b where one request's time went} — per-request {!Trace} buffers
      (the enqueue→dequeue wait plus the engine's stage spans),
      collected when [collect_traces] is set and merged in request-id
      order by {!merged_trace} for the daemon's [--trace FILE].

    Telemetry never touches report bytes: daemon replies stay
    byte-identical to one-shot [dicheck] with every feature here
    enabled.  All functions are safe to call from any domain. *)

type t

(** [create ()] makes a quiet hub: no event sink, no trace collection —
    metrics only, which is what {!Serve.create} defaults to.  [window]
    bounds the sliding windows (default
    {!Metrics.default_window_capacity}); [slow_ms] enables [slow]
    event-log entries for requests at or above that latency;
    [event_sink] receives each event-log line (no trailing newline),
    serialized, exceptions swallowed; [collect_traces] keeps every
    request's trace buffer for {!merged_trace}. *)
val create :
  ?window:int -> ?slow_ms:float -> ?event_sink:(string -> unit) ->
  ?collect_traces:bool -> unit -> t

(** Allocate the next request id (1, 2, 3…). *)
val next_request : t -> int

val collecting_traces : t -> bool
val slow_ms : t -> float option

(** Seconds since {!create}. *)
val uptime_s : t -> float

(** {1 Event log}

    Every emitter is a no-op without an [event_sink]. *)

(** [event t ?req ?fields kind] writes one event-log line:
    [{"event":kind,"ts_ms":…,"req":…,fields…}]. *)
val event : t -> ?req:int -> ?fields:(string * Json.t) list -> string -> unit

(** Daemon lifecycle entry ([start], [shutdown_begin], [shutdown]). *)
val lifecycle : t -> ?fields:(string * Json.t) list -> string -> unit

(** {1 Request lifecycle}

    Each records into the rolling metrics and, when a sink is
    installed, writes the matching event-log line. *)

val sample_queue_depth : t -> int -> unit
val request_accepted : t -> req:int -> id:Json.t -> queued:int -> unit
val request_started : t -> req:int -> worker:int -> wait_ns:int64 -> unit

(** Also emits the [slow] entry when the request's total latency is at
    or above the hub's [slow_ms]. *)
val request_finished :
  t -> req:int -> worker:int -> status:string -> exit_code:int -> errors:int ->
  warnings:int -> wait_ns:int64 -> service_ns:int64 -> unit

val request_cancelled : t -> req:int -> ?worker:int -> unit -> unit
val request_overloaded : t -> req:int -> queued:int -> unit
val request_rejected : t -> error:string -> unit

(** Accumulate a served check's engine reuse counters (feeds the cache
    hit ratio in {!snapshot}). *)
val record_reuse : t -> total:int -> reused:int -> unit

(** Charge [ns] of busy time to a worker (feeds the per-worker busy
    fractions in {!snapshot}). *)
val worker_busy : t -> worker:int -> ns:int64 -> unit

(** {1 Per-request traces} *)

val add_trace : t -> req:int -> Trace.t -> unit

(** All collected request buffers folded into one fresh buffer in
    request-id order — deterministic event sequence for a given request
    history (lanes still carry the serving worker's tid). *)
val merged_trace : t -> Trace.t

(** {1 Stats snapshot}

    The canonical service snapshot behind [{"admin":"stats"}]; the
    caller passes the authoritative queue figures (they live in the
    pool, not here).  Every member is always present:
    [{"uptime_s","workers","queue":{"depth","max"},
    "requests":{"accepted","inflight","served","cancelled",
    "overloaded","rejected"},"rps":{"lifetime","window"},
    "latency_ms","wait_ms","service_ms","queue_depth" (each
    {"count","len","mean","max","p50","p95","p99"}),
    "cache":{"symbols_total","symbols_reused","hit_ratio"},
    "workers_busy":[fraction…]}]. *)
val snapshot :
  t -> queued:int -> inflight:int -> served:int -> cancelled:int ->
  overloaded:int -> workers:int -> max_queue:int -> Json.t

(** {1 Offline post-mortem}

    [replay content] re-runs an event-log file (the [--event-log FILE]
    lines, one JSON object per line) through the same accounting a live
    hub keeps, enforcing the lifecycle invariants documented in
    [docs/PROTOCOL.md]: every [accepted] request reaches exactly one
    terminal entry ([finished]/[cancelled]) and only after acceptance;
    [overloaded]/[rejected] never enter the accepted population; a
    [shutdown] entry's [served]/[cancelled]/[overloaded] figures match
    the replayed counts and nothing is left queued or in flight after
    it.  On success, returns the {!snapshot} the daemon would have
    answered at the last entry — uptime and throughput computed from
    the log's own timeline — which is what
    [dicheck top --event-log FILE] renders.  [Error msg] names the
    offending line and the violated invariant. *)
val replay : string -> (Json.t, string) result

(** Render a {!snapshot} in Prometheus text exposition format
    ([dicheck_*] metric families with [# HELP]/[# TYPE] headers), for
    [{"admin":"stats","format":"prometheus"}] and
    [dicheck top --once --metrics-format prom].  Pure conversion: the
    figures are exactly the snapshot's, so the two formats never
    disagree. *)
val prometheus : Json.t -> string
