(** Incremental rechecking — deprecated wrapper over {!Engine}.

    Historically this module held the in-memory per-definition cache
    and interaction memo.  That state now lives in {!Engine.t}
    (optionally persisted on disk via [cache_dir]); an [Incremental.t]
    is just a handle that lazily owns one engine and swaps it out when
    the rules or config change, which is why a rules change reports
    zero reuse.

    New code should call {!Engine.create} / {!Engine.check} directly —
    it returns richer {!Engine.reuse} statistics and supports the
    persistent cache. *)

type t

val create : unit -> t

type stats = {
  symbols_total : int;
  symbols_reused : int;  (** per-definition results served from cache *)
}

(** [run t rules file] — same result as {!Checker.run} with the same
    config, plus reuse statistics.  The warm state lives in [t]; pass
    the same [t] across edits of the same design.

    @deprecated use {!Engine.check} on a long-lived {!Engine.t}. *)
val run :
  ?config:Checker.config -> t -> Tech.Rules.t -> Cif.Ast.file ->
  (Checker.result * stats, string) result

(** Structural fingerprint of a symbol (now {!Engine.fingerprint},
    exposed for tests). *)
val fingerprint : Model.symbol -> string
