(** Tool version, embedded in trace ([otherData.version]) and SARIF
    ([tool.driver.version]) metadata and reported by [--version] on the
    command-line tools, so archived checker output can always be tied
    back to the code that produced it. *)
val version : string
