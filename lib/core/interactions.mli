(** Pipeline stage 6 — "check interactions".

    "At this point all elements are checked, all primitive symbols are
    checked, connections between the elements and symbols are checked,
    and net identifiers are available for each element.  What remains
    to be checked are the interactions between elements and/or
    primitive symbols.  The checks which remain are only spacing
    checks."

    The layer-pair cases come from {!Tech.Interaction} (Fig 12), each
    split into same-net / different-net subcases.  Same-net pairs are
    skipped — this is what removes the paper's Fig 5a false errors —
    *except* when a resistor is involved (Fig 5b: a short across a
    resistor body changes the circuit).  Pairs at distance zero on
    different nets are shorts; poly touching diffusion outside a device
    is specifically an accidental transistor (Fig 8).

    The search is hierarchical: each symbol definition is scanned once;
    element-instance and instance-instance interactions examine only
    the geometry near the overlap window, and repeated
    (symbol, symbol, relative placement) instance pairs reuse memoised
    candidate lists — the redundancy elimination that makes the
    hierarchical checker fast on regular designs.

    {2 Parallelism}

    The stage is embarrassingly parallel across its worklist: every
    local-pair chunk, element-vs-instance neighbourhood, and instance
    pair is independent of the others.  With {!config.jobs} above 1 the
    worklist is cut into chunks whose boundaries are chosen from the
    per-symbol cost profile of the previous run (via {!Metrics}, when
    available) so each chunk carries roughly equal work; the chunks are
    then drained from a shared [Atomic] counter by [jobs] domains, so a
    domain that finishes early steals the next unclaimed chunk instead
    of idling.  Per-domain error lists, statistics, and memo tables are
    merged after the join; violations are reassembled {e by chunk
    index}, not by completion order.

    {2 Invariants}

    - The model and net structure are read-only during the check; all
      mutation is confined to per-domain accumulators.
    - A task's verdicts do not depend on which domain runs it (the memo
      is a pure cache), and results are merged in worklist order, so
      the report is {e byte-identical} — same violations, same order —
      for every [jobs] value, including the serial [jobs = 1], even
      though chunk-to-domain assignment is nondeterministic.
    - Only {!stats} totals that describe caching effort may vary with
      [jobs] (the memo hit/miss split and [bbox_rejects] depend on
      which domain warmed its memo copy first — and, under the queue,
      on run-to-run scheduling); the per-cell pair counts and every
      verdict-bearing total are invariant.
    - Certificate-guarded runs ([run ~certs]) may skip whole tasks the
      certificates prove silent; skips are decided in a serial prepass
      over the worklist, so they lower pair counts deterministically —
      never with [jobs] — and never change the violation list. *)

type spacing_model =
  | Geometric
      (** compare drawn distances against the rule (the normal mode) *)
  | Exposure of { model : Process_model.Exposure.t; misalign : int }
      (** the paper's 2-D process model: spacing passes iff the
          combined exposure along the line of closest approach stays
          below the develop threshold, with [misalign] units of
          worst-case mask misalignment on cross-layer pairs.  "Although
          still slower than the expand-check overlap technique, [it] is
          more correct." *)

type config = {
  metric : Geom.Measure.metric;
  check_same_net : bool;
      (** force spacing checks even between same-net elements, i.e.
          behave like a net-blind checker (for the Fig 5 ablation) *)
  spacing_model : spacing_model;
  jobs : int;
      (** domains to fan the interaction worklist over: [1] (the
          default) is today's exact serial behaviour, [n > 1] spawns
          [n - 1] extra domains, [0] asks the runtime
          ([Domain.recommended_domain_count ()]) *)
}

val default_config : config

(** Counters per matrix cell, for the Fig 12 coverage report. *)
type cell_stats = {
  mutable pairs : int;  (** candidate pairs examined *)
  mutable checked : int;  (** spacing checks actually performed *)
  mutable skipped_same_net : int;
  mutable skipped_no_rule : int;
  mutable skipped_device : int;
}

type stats = {
  cells : (Tech.Layer.t * Tech.Layer.t, cell_stats) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable bbox_rejects : int;
      (** candidate pairs discarded on bounding boxes alone, before any
          exact gap computation *)
}

(** Add [src]'s totals into [into] (used to fold per-domain stats). *)
val merge_stats : into:stats -> stats -> unit

(** Export the totals as [interactions.*] counters. *)
val record_metrics : Metrics.t -> stats -> unit

(** A reusable instance-pair candidate cache.  Keyed by (callee,
    callee, relative transform), so it stays valid across checker runs
    as long as the rule set and the involved symbol definitions do not
    change — {!Engine} passes one in per deck. *)
type memo

val create_memo : unit -> memo

(** [prune_memo memo ~keep] drops entries that involve a symbol id for
    which [keep] is false (used to invalidate edited definitions). *)
val prune_memo : memo -> keep:(int -> bool) -> unit

(** {2 Memo persistence}

    The memo is a pure cache of candidate lists — replaying entries can
    change cost but never verdicts — so {!Engine} persists it across
    processes.  An entry's sites are expressed in the callee symbols'
    own frames and contain no symbol ids, so an exported entry keyed by
    a {e content} fingerprint of each callee subtree stays valid for any
    future model containing structurally identical definitions.  The
    entry payload is deliberately opaque: it round-trips through
    [Marshal] inside {!Cache} but is not otherwise inspectable. *)

type memo_entry

val memo_size : memo -> int

(** All entries, keyed by (caller-side symbol id, callee-side symbol
    id, relative transform).  Order is unspecified; sort before writing
    to disk. *)
val export_memo : memo -> ((int * int * Geom.Transform.t) * memo_entry) list

(** Add entries (keys already remapped to current symbol ids).  Existing
    keys are overwritten. *)
val import_memo : memo -> ((int * int * Geom.Transform.t) * memo_entry) list -> unit

(** The widest spacing any rule in [rules] can demand — the candidate
    cutoff and grid cell size of a {!plan} built for that deck.
    Directed [space_<a>_<b>] overrides are included. *)
val max_dist : Tech.Rules.t -> int

(** The domain count a [jobs] setting resolves to: [jobs] itself when
    positive, [Domain.recommended_domain_count ()] when [<= 0].  Shared
    by every parallel stage so "auto" means the same thing
    pipeline-wide. *)
val effective_jobs : int -> int

(** {2 Plan / run}

    The sweep splits into a deck-independent {e plan} — the resolution
    environment and ordered worklist, built for a candidate cutoff
    [dmax] — and the deck-dependent {e run} that judges the worklist
    under a concrete (config, rules) pair.  Decks whose {!max_dist}
    agree can share one plan (and one candidate {!memo}): worklist
    geometry and enumeration order depend only on the cutoff, never on
    the individual spacing values, which is what keeps multi-deck
    reports byte-identical to their single-deck counterparts. *)

type plan

(** Build the worklist.  [dmax] defaults to [max_dist] of the model's
    own rule deck. *)
val plan : ?dmax:int -> Netgen.t -> plan

(** Judge a plan's worklist.  [rules] defaults to the model's own deck.
    When [metrics] is given, per-task wall-clock costs are recorded into
    the [interactions.pair_check_ns] histogram and charged to the owning
    definition's [symbol.<name>] cost bucket, and the {!stats} totals
    are exported as counters.  When [trace] is given, one ["shard[i]"]
    span (category ["shard"]) is recorded per worklist shard —
    per-domain buffers in the parallel case, merged into [trace] in
    shard order after the join.

    When [certs] is given (a {!Deckcheck.consult} over the deck being
    judged), a serial prepass skips every task whose guard the
    certificates prove silent, counting them into the
    [analysis.certified_task_skips] / [analysis.certified_skips]
    counters and charging the prepass to [analysis.guard].  Guards are
    inert under the {!Exposure} spacing model, whose verdicts are not
    bounded by drawn gaps. *)
val run :
  ?config:config -> ?rules:Tech.Rules.t -> ?memo:memo -> ?metrics:Metrics.t ->
  ?trace:Trace.t -> ?certs:Deckcheck.consult -> plan ->
  Report.violation list * stats

(** [check nets] = [run (plan nets)] — the single-deck entry point. *)
val check :
  ?config:config -> ?memo:memo -> ?metrics:Metrics.t -> ?trace:Trace.t ->
  Netgen.t -> Report.violation list * stats

val pp_stats : Format.formatter -> stats -> unit
