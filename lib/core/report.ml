type severity = Error | Warning | Info

type stage =
  | Parse_stage
  | Elements
  | Devices
  | Connections
  | Netlist_gen
  | Interactions
  | Integrity
  | Electrical

type violation = {
  stage : stage;
  rule : string;
  severity : severity;
  where : Geom.Rect.t option;
  context : string;
  path : string option;
  loc : Cif.Loc.t option;
  message : string;
}

type t = { violations : violation list }

let empty = { violations = [] }
let add t v = { violations = v :: t.violations }
let concat ts = { violations = List.concat_map (fun t -> t.violations) ts }

let count ?severity t =
  match severity with
  | None -> List.length t.violations
  | Some s -> List.length (List.filter (fun v -> v.severity = s) t.violations)

let errors t = List.filter (fun v -> v.severity = Error) t.violations
let by_stage t stage = List.filter (fun v -> v.stage = stage) t.violations

let by_rule_prefix t prefix =
  let n = String.length prefix in
  List.filter
    (fun v -> String.length v.rule >= n && String.sub v.rule 0 n = prefix)
    t.violations

let stage_name = function
  | Parse_stage -> "parse"
  | Elements -> "elements"
  | Devices -> "devices"
  | Connections -> "connections"
  | Netlist_gen -> "netlist"
  | Interactions -> "interactions"
  | Integrity -> "integrity"
  | Electrical -> "electrical"

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let instance_path v = match v.path with Some p -> p | None -> v.context

let pp_violation ppf v =
  Format.fprintf ppf "[%s/%s] %s: %s%s%s%s" (stage_name v.stage)
    (severity_name v.severity) v.rule v.message
    (match v.where with
    | None -> ""
    | Some r -> Format.asprintf " at %a" Geom.Rect.pp r)
    (let p = instance_path v in
     if p = "" then "" else " in " ^ p)
    (match v.loc with
    | None -> ""
    | Some l -> Format.asprintf " (cif %a)" Cif.Loc.pp l)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list pp_violation)
    (List.rev t.violations)

let make severity ~stage ~rule ?where ~context ?path ?loc message =
  { stage; rule; severity; where; context; path; loc; message }

let error ~stage ~rule ?where ~context ?path ?loc message =
  make Error ~stage ~rule ?where ~context ?path ?loc message

let warning ~stage ~rule ?where ~context ?path ?loc message =
  make Warning ~stage ~rule ?where ~context ?path ?loc message

let info ~stage ~rule ?where ~context ?path ?loc message =
  make Info ~stage ~rule ?where ~context ?path ?loc message
