(* Service-level telemetry for the serve daemon.

   One hub per daemon, shared by the submit path and every worker
   domain, so everything here is mutex-guarded.  Three concerns share
   the hub because they share the same per-request facts:

   - rolling service metrics (a Metrics.t of counters, gauges, and
     sliding windows) answering {"admin":"stats"};
   - the structured event log: one JSON line per request lifecycle
     transition, written through a caller-supplied sink;
   - per-request Trace buffers, collected for the daemon-level
     --trace file and merged in request order.

   The bar from day one of the metrics work still holds: telemetry
   changes cost and side-channel output only, never report bytes. *)

type t = {
  lock : Mutex.t;
  started_ns : int64;
  window : int;
  slow_ms : float option;
  event_sink : (string -> unit) option;
  collect_traces : bool;
  seq : int Atomic.t;
  metrics : Metrics.t;
  mutable busy_ns : int64 array;  (* indexed by worker id *)
  mutable traces_rev : (int * Trace.t) list;
}

let create ?(window = Metrics.default_window_capacity) ?slow_ms ?event_sink
    ?(collect_traces = false) () =
  { lock = Mutex.create ();
    started_ns = Metrics.now_ns ();
    window = max 1 window;
    slow_ms;
    event_sink;
    collect_traces;
    seq = Atomic.make 0;
    metrics = Metrics.create ();
    busy_ns = [||];
    traces_rev = [] }

let next_request t = 1 + Atomic.fetch_and_add t.seq 1

let collecting_traces t = t.collect_traces

let slow_ms t = t.slow_ms

let uptime_s t = Int64.to_float (Int64.sub (Metrics.now_ns ()) t.started_ns) *. 1e-9

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)

let num n = Json.Num (float_of_int n)
let fnum f = Json.Num f

(* Wall-clock, not monotonic: event-log timestamps are for humans and
   cross-process correlation, never compared for determinism. *)
let wall_ms () = Unix.gettimeofday () *. 1000.

let event t ?req ?(fields = []) kind =
  match t.event_sink with
  | None -> ()
  | Some sink ->
    let rq = match req with Some r -> [ ("req", num r) ] | None -> [] in
    let line =
      Json.to_string
        (Json.Obj
           ((("event", Json.Str kind) :: ("ts_ms", fnum (wall_ms ())) :: rq)
           @ fields))
    in
    (* One line per event, serialized under the hub lock; a throwing
       sink must not take a worker down. *)
    locked t (fun () -> try sink line with _ -> ())

let lifecycle t ?fields kind = event t ?fields kind

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

let observe t name v = Metrics.observe_window ~capacity:t.window t.metrics name v

let sample_queue_depth t depth =
  locked t (fun () ->
      Metrics.set_gauge t.metrics "serve.queue_depth" (float_of_int depth);
      observe t "serve.queue_depth" (float_of_int depth))

let request_accepted t ~req ~id ~queued =
  locked t (fun () ->
      Metrics.incr t.metrics "serve.accepted";
      Metrics.set_gauge t.metrics "serve.queue_depth" (float_of_int queued);
      observe t "serve.queue_depth" (float_of_int queued));
  event t ~req ~fields:[ ("id", id); ("queued", num queued) ] "accepted"

let request_started t ~req ~worker ~wait_ns =
  let wait_ms = ms_of_ns wait_ns in
  locked t (fun () ->
      Metrics.incr t.metrics "serve.started";
      observe t "serve.wait_ms" wait_ms);
  event t ~req ~fields:[ ("worker", num worker); ("wait_ms", fnum wait_ms) ] "started"

let request_finished t ~req ~worker ~status ~exit_code ~errors ~warnings ~wait_ns
    ~service_ns =
  let wait_ms = ms_of_ns wait_ns and service_ms = ms_of_ns service_ns in
  let latency_ms = wait_ms +. service_ms in
  locked t (fun () ->
      Metrics.incr t.metrics "serve.finished";
      if status <> "ok" then Metrics.incr t.metrics "serve.check_errors";
      observe t "serve.service_ms" service_ms;
      observe t "serve.latency_ms" latency_ms;
      (* Finish times (seconds since daemon start) feed the windowed
         requests-per-second figure in the stats snapshot. *)
      observe t "serve.finish_s" (uptime_s t));
  event t ~req
    ~fields:
      [ ("worker", num worker); ("status", Json.Str status); ("exit", num exit_code);
        ("errors", num errors); ("warnings", num warnings);
        ("service_ms", fnum service_ms); ("latency_ms", fnum latency_ms) ]
    "finished";
  match t.slow_ms with
  | Some threshold when latency_ms >= threshold ->
    event t ~req
      ~fields:[ ("latency_ms", fnum latency_ms); ("slow_ms", fnum threshold) ]
      "slow"
  | _ -> ()

let request_cancelled t ~req ?worker () =
  locked t (fun () -> Metrics.incr t.metrics "serve.cancelled");
  let fields = match worker with Some w -> [ ("worker", num w) ] | None -> [] in
  event t ~req ~fields "cancelled"

let request_overloaded t ~req ~queued =
  locked t (fun () -> Metrics.incr t.metrics "serve.overloaded");
  event t ~req ~fields:[ ("queued", num queued) ] "overloaded"

let request_rejected t ~error =
  locked t (fun () -> Metrics.incr t.metrics "serve.rejected");
  event t ~fields:[ ("error", Json.Str error) ] "rejected"

let record_reuse t ~total ~reused =
  locked t (fun () ->
      Metrics.incr ~by:total t.metrics "serve.cache.symbols_total";
      Metrics.incr ~by:reused t.metrics "serve.cache.symbols_reused")

let worker_busy t ~worker ~ns =
  if worker >= 0 then
    locked t (fun () ->
        if worker >= Array.length t.busy_ns then begin
          let grown = Array.make (worker + 1) 0L in
          Array.blit t.busy_ns 0 grown 0 (Array.length t.busy_ns);
          t.busy_ns <- grown
        end;
        t.busy_ns.(worker) <- Int64.add t.busy_ns.(worker) (max 0L ns))

(* ------------------------------------------------------------------ *)
(* Per-request traces                                                  *)

let add_trace t ~req trace =
  locked t (fun () -> t.traces_rev <- (req, trace) :: t.traces_rev)

let merged_trace t =
  let entries = locked t (fun () -> List.rev t.traces_rev) in
  (* Workers finish in racy order; request ids give the merge a
     deterministic event sequence (lanes still carry the worker tid). *)
  let entries = List.stable_sort (fun (a, _) (b, _) -> compare a b) entries in
  let into = Trace.create () in
  List.iter (fun (_, tr) -> Trace.merge_into ~into tr) entries;
  into

(* ------------------------------------------------------------------ *)
(* Stats snapshot                                                      *)

(* Canonical member order; every member is always present so clients
   (and `dicheck top`) never need existence checks. *)
let window_json t name =
  match Metrics.window t.metrics name with
  | None ->
    Json.Obj
      [ ("count", num 0); ("len", num 0); ("mean", fnum 0.); ("max", fnum 0.);
        ("p50", fnum 0.); ("p95", fnum 0.); ("p99", fnum 0.) ]
  | Some s ->
    let n = Array.length s.Metrics.w_values in
    let mean =
      if n = 0 then 0.
      else Array.fold_left ( +. ) 0. s.Metrics.w_values /. float_of_int n
    in
    Json.Obj
      [ ("count", num s.Metrics.w_count); ("len", num n); ("mean", fnum mean);
        ("max", fnum (Array.fold_left Float.max 0. s.Metrics.w_values));
        ("p50", fnum (Metrics.window_quantile s 0.5));
        ("p95", fnum (Metrics.window_quantile s 0.95));
        ("p99", fnum (Metrics.window_quantile s 0.99)) ]

let snapshot t ~queued ~inflight ~served ~cancelled ~overloaded ~workers ~max_queue =
  locked t (fun () ->
      let up = uptime_s t in
      let counter name = Metrics.counter t.metrics name in
      let rps_lifetime = if up > 0. then float_of_int served /. up else 0. in
      let rps_window =
        match Metrics.window t.metrics "serve.finish_s" with
        | Some s when Array.length s.Metrics.w_values >= 2 ->
          let vs = s.Metrics.w_values in
          let n = Array.length vs in
          let span = vs.(n - 1) -. vs.(0) in
          if span > 0. then float_of_int (n - 1) /. span else 0.
        | _ -> 0.
      in
      let total = counter "serve.cache.symbols_total" in
      let reused = counter "serve.cache.symbols_reused" in
      let hit_ratio =
        if total > 0 then float_of_int reused /. float_of_int total else 0.
      in
      let busy =
        List.init (max workers (Array.length t.busy_ns)) (fun w ->
            let ns = if w < Array.length t.busy_ns then t.busy_ns.(w) else 0L in
            let f = if up > 0. then Int64.to_float ns *. 1e-9 /. up else 0. in
            fnum (Float.min 1. f))
      in
      Json.Obj
        [ ("uptime_s", fnum up);
          ("workers", num workers);
          ("queue", Json.Obj [ ("depth", num queued); ("max", num max_queue) ]);
          ("requests",
           Json.Obj
             [ ("accepted", num (counter "serve.accepted"));
               ("inflight", num inflight); ("served", num served);
               ("cancelled", num cancelled); ("overloaded", num overloaded);
               ("rejected", num (counter "serve.rejected")) ]);
          ("rps",
           Json.Obj [ ("lifetime", fnum rps_lifetime); ("window", fnum rps_window) ]);
          ("latency_ms", window_json t "serve.latency_ms");
          ("wait_ms", window_json t "serve.wait_ms");
          ("service_ms", window_json t "serve.service_ms");
          ("queue_depth", window_json t "serve.queue_depth");
          ("cache",
           Json.Obj
             [ ("symbols_total", num total); ("symbols_reused", num reused);
               ("hit_ratio", fnum hit_ratio) ]);
          ("workers_busy", Json.Arr busy) ])

(* ------------------------------------------------------------------ *)
(* Event-log replay                                                    *)

(* Offline post-mortem: re-run an event-log file through the same
   accounting the live hub does, enforce the lifecycle invariants
   PROTOCOL.md promises (every accepted request reaches exactly one
   terminal entry, accepted before terminal, overloaded/rejected never
   in the accepted population, drained means nothing left in flight),
   and synthesize the stats snapshot the daemon would have answered at
   the last entry.  Used by [dicheck top --event-log FILE] — no socket,
   no daemon, just the log. *)

type replay_state = Queued | Running | Done

let replay content =
  let lines =
    String.split_on_char '\n' content
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let exception Bad of string in
  let fail ln fmt = Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "line %d: %s" ln m))) fmt in
  try
    let events =
      List.map
        (fun (ln, l) ->
          match Json.parse l with
          | Ok j -> (ln, j)
          | Error msg -> fail ln "%s" msg)
        lines
    in
    if events = [] then raise (Bad "empty event log");
    let kind_of ln j =
      match Option.bind (Json.member "event" j) Json.str with
      | Some k -> k
      | None -> fail ln "entry has no \"event\" member"
    in
    let ts_of ln j =
      match Option.bind (Json.member "ts_ms" j) Json.num with
      | Some v -> v
      | None -> fail ln "entry has no \"ts_ms\" member"
    in
    let req_of ln j =
      match Option.bind (Json.member "req" j) Json.int with
      | Some r -> r
      | None -> fail ln "request-scoped entry has no \"req\" member"
    in
    let fnum_of j name = Option.bind (Json.member name j) Json.num in
    let inum_of j name = Option.bind (Json.member name j) Json.int in
    (* Pass 1: lifecycle reconciliation. *)
    let state : (int, replay_state) Hashtbl.t = Hashtbl.create 64 in
    let accepted = ref 0 and finished = ref 0 and cancelled = ref 0 in
    let overloaded = ref 0 and rejected = ref 0 in
    let workers = ref 0 and max_queue = ref 0 in
    let drained = ref false in
    let first_ts = ref nan and last_ts = ref nan in
    List.iter
      (fun (ln, j) ->
        let ts = ts_of ln j in
        if Float.is_nan !first_ts then first_ts := ts;
        last_ts := ts;
        if !drained then fail ln "entry after the shutdown entry";
        match kind_of ln j with
        | "start" ->
          Option.iter (fun w -> workers := w) (inum_of j "workers");
          Option.iter (fun q -> max_queue := q) (inum_of j "max_queue")
        | "accepted" ->
          let req = req_of ln j in
          if Hashtbl.mem state req then fail ln "request %d accepted twice" req;
          Hashtbl.replace state req Queued;
          incr accepted
        | "started" -> (
          let req = req_of ln j in
          match Hashtbl.find_opt state req with
          | Some Queued -> Hashtbl.replace state req Running
          | Some Running -> fail ln "request %d started twice" req
          | Some Done -> fail ln "request %d started after its terminal entry" req
          | None -> fail ln "request %d started but never accepted" req)
        | ("finished" | "cancelled") as kind -> (
          let req = req_of ln j in
          match Hashtbl.find_opt state req with
          | Some (Queued | Running) ->
            Hashtbl.replace state req Done;
            if kind = "finished" then incr finished else incr cancelled
          | Some Done -> fail ln "request %d has two terminal entries" req
          | None -> fail ln "request %d %s but never accepted" req kind)
        | "overloaded" ->
          let req = req_of ln j in
          if Hashtbl.mem state req then
            fail ln "request %d overloaded after being accepted" req;
          incr overloaded
        | "rejected" -> incr rejected
        | "slow" | "shutdown_begin" -> ()
        | "shutdown" ->
          drained := true;
          let check name counted =
            match inum_of j name with
            | Some logged when logged <> counted ->
              fail ln "shutdown says %s=%d but the log replays %d" name logged
                counted
            | _ -> ()
          in
          check "served" !finished;
          check "cancelled" !cancelled;
          check "overloaded" !overloaded
        | k -> fail ln "unknown event kind %S" k)
      events;
    let queued = ref 0 and inflight = ref 0 in
    Hashtbl.iter
      (fun req st ->
        match st with
        | Queued ->
          if !drained then
            raise (Bad (Printf.sprintf
              "drained daemon left request %d in the queue: accepted = finished + cancelled is violated" req));
          incr queued
        | Running ->
          if !drained then
            raise (Bad (Printf.sprintf
              "drained daemon left request %d in flight: accepted = finished + cancelled is violated" req));
          incr inflight
        | Done -> ())
      state;
    (* Pass 2: feed the same rolling metrics the live hub keeps, with
       the hub's epoch backdated by the log's time span so uptime and
       the rps figures come out of the recorded timeline, not the
       replay's. *)
    let span_ns = Int64.of_float (Float.max 0. (!last_ts -. !first_ts) *. 1e6) in
    let base = create () in
    let t = { base with started_ns = Int64.sub base.started_ns span_ns } in
    List.iter
      (fun (_, j) ->
        match Option.bind (Json.member "event" j) Json.str with
        | Some "accepted" ->
          Metrics.incr t.metrics "serve.accepted";
          Option.iter
            (fun q ->
              Metrics.set_gauge t.metrics "serve.queue_depth" (float_of_int q);
              observe t "serve.queue_depth" (float_of_int q))
            (inum_of j "queued")
        | Some "started" ->
          Metrics.incr t.metrics "serve.started";
          Option.iter (observe t "serve.wait_ms") (fnum_of j "wait_ms")
        | Some "finished" ->
          Metrics.incr t.metrics "serve.finished";
          (match Option.bind (Json.member "status" j) Json.str with
          | Some s when s <> "ok" -> Metrics.incr t.metrics "serve.check_errors"
          | _ -> ());
          Option.iter (observe t "serve.service_ms") (fnum_of j "service_ms");
          Option.iter (observe t "serve.latency_ms") (fnum_of j "latency_ms");
          (match (fnum_of j "ts_ms", inum_of j "worker", fnum_of j "service_ms") with
          | Some ts, Some w, Some ms ->
            observe t "serve.finish_s" ((ts -. !first_ts) /. 1000.);
            worker_busy t ~worker:w ~ns:(Int64.of_float (ms *. 1e6))
          | _ -> ())
        | Some "cancelled" -> Metrics.incr t.metrics "serve.cancelled"
        | Some "rejected" -> Metrics.incr t.metrics "serve.rejected"
        | _ -> ())
      events;
    let workers =
      (* A truncated log may lack the start entry; the serving workers
         seen in the log bound the pool from below. *)
      List.fold_left
        (fun acc (_, j) ->
          match inum_of j "worker" with Some w -> max acc (w + 1) | None -> acc)
        !workers events
    in
    Ok
      (snapshot t ~queued:!queued ~inflight:!inflight ~served:!finished
         ~cancelled:!cancelled ~overloaded:!overloaded ~workers
         ~max_queue:!max_queue)
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

(* A pure rendering of the snapshot above: same figures, flat
   [dicheck_*] families, so a scraper and a JSON client can never
   disagree.  Numbers print via %.12g — integral values come out
   without a decimal point, which keeps the output stable and easy to
   diff in tests. *)
let prometheus snap =
  let buf = Buffer.create 2048 in
  let pnum v = Printf.sprintf "%.12g" v in
  let get path =
    List.fold_left (fun acc name -> Option.bind acc (Json.member name)) (Some snap) path
  in
  let getf path = match Option.bind (get path) Json.num with Some v -> v | None -> 0. in
  let header name kind help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name help name kind)
  in
  let line ?(labels = []) name v =
    let l =
      match labels with
      | [] -> ""
      | ls ->
        "{"
        ^ String.concat "," (List.map (fun (k, s) -> Printf.sprintf "%s=%S" k s) ls)
        ^ "}"
    in
    Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name l (pnum v))
  in
  let simple name kind help path =
    header name kind help;
    line name (getf path)
  in
  simple "dicheck_uptime_seconds" "gauge" "Daemon uptime." [ "uptime_s" ];
  simple "dicheck_workers" "gauge" "Worker domains." [ "workers" ];
  simple "dicheck_queue_depth" "gauge" "Requests queued." [ "queue"; "depth" ];
  simple "dicheck_queue_max" "gauge" "Queue capacity." [ "queue"; "max" ];
  header "dicheck_requests_total" "counter" "Requests by final state.";
  List.iter
    (fun state ->
      line ~labels:[ ("state", state) ] "dicheck_requests_total"
        (getf [ "requests"; state ]))
    [ "accepted"; "served"; "cancelled"; "overloaded"; "rejected" ];
  simple "dicheck_requests_inflight" "gauge" "Requests being checked."
    [ "requests"; "inflight" ];
  header "dicheck_requests_per_second" "gauge" "Throughput (lifetime and recent window).";
  line ~labels:[ ("window", "lifetime") ] "dicheck_requests_per_second"
    (getf [ "rps"; "lifetime" ]);
  line ~labels:[ ("window", "recent") ] "dicheck_requests_per_second"
    (getf [ "rps"; "window" ]);
  List.iter
    (fun (member, unit_help) ->
      let name = "dicheck_" ^ member in
      header name "summary" unit_help;
      List.iter
        (fun (q, key) -> line ~labels:[ ("quantile", q) ] name (getf [ member; key ]))
        [ ("0.5", "p50"); ("0.95", "p95"); ("0.99", "p99") ];
      line (name ^ "_count") (getf [ member; "count" ]);
      header (name ^ "_mean") "gauge" (unit_help ^ " (window mean)");
      line (name ^ "_mean") (getf [ member; "mean" ]);
      header (name ^ "_max") "gauge" (unit_help ^ " (window max)");
      line (name ^ "_max") (getf [ member; "max" ]))
    [ ("latency_ms", "Enqueue-to-reply latency, ms.");
      ("wait_ms", "Queue wait, ms.");
      ("service_ms", "Check service time, ms.");
      ("queue_depth", "Queue depth sampled at dequeue.") ];
  simple "dicheck_cache_symbols_total" "counter" "Definitions resolved."
    [ "cache"; "symbols_total" ];
  simple "dicheck_cache_symbols_reused" "counter" "Definitions replayed from cache."
    [ "cache"; "symbols_reused" ];
  simple "dicheck_cache_hit_ratio" "gauge" "Definition cache hit ratio."
    [ "cache"; "hit_ratio" ];
  header "dicheck_worker_busy_ratio" "gauge" "Fraction of uptime each worker spent busy.";
  (match Option.bind (get [ "workers_busy" ]) Json.arr with
  | Some vs ->
    List.iteri
      (fun w v ->
        line ~labels:[ ("worker", string_of_int w) ] "dicheck_worker_busy_ratio"
          (Option.value ~default:0. (Json.num v)))
      vs
  | None -> ());
  Buffer.contents buf
