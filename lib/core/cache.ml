type t = { root : string }

type def_entry = {
  de_elements : Report.violation list;
  de_devices : Report.violation list;
  de_relational : Report.violation list;
}

type memo_file = ((string * string * Geom.Transform.t) * Interactions.memo_entry) list

(* Bump when the payload representation changes: old files become
   misses, not crashes. *)
let magic = "dicache2"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let open_dir root =
  mkdir_p root;
  { root }

let def_path t ~env ~fp = Filename.concat t.root (Filename.concat "defs" (Filename.concat env fp))
let memo_path t ~env = Filename.concat t.root (Filename.concat "memo" env)

(* [magic ^ MD5(payload) ^ payload], written to a sibling temp name and
   renamed so a reader never sees a torn file.  The temp name carries
   the pid and a process-wide sequence number: concurrent writers (the
   serve daemon's worker domains, or two daemons on one cache) must not
   stage into the same temp file or one rename ships the other's
   half-written bytes. *)
let tmp_seq = Atomic.make 0

let write_file path payload =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Digest.string payload);
      output_string oc payload);
  Sys.rename tmp path

(* Returns the payload only when the magic and digest both check out;
   any damage at all reads as a miss. *)
let read_file path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let header = String.length magic + 16 in
          if len < header then None
          else begin
            let m = really_input_string ic (String.length magic) in
            if m <> magic then None
            else begin
              let digest = really_input_string ic 16 in
              let payload = really_input_string ic (len - header) in
              if Digest.string payload = digest then Some payload else None
            end
          end)
    with Sys_error _ | End_of_file -> None

let marshal v = Marshal.to_string v []

(* The digest check above means [Marshal.from_string] only ever sees
   bytes we wrote, but guard anyway: a same-digest file written by a
   different compiler version must degrade to a miss. *)
let unmarshal payload =
  try Some (Marshal.from_string payload 0) with Failure _ -> None

let find_def t ~env ~fp : def_entry option =
  match read_file (def_path t ~env ~fp) with
  | None -> None
  | Some payload -> (unmarshal payload : def_entry option)

let store_def t ~env ~fp (entry : def_entry) =
  write_file (def_path t ~env ~fp) (marshal entry)

let load_memo t ~env : memo_file =
  match read_file (memo_path t ~env) with
  | None -> []
  | Some payload -> (
    match (unmarshal payload : memo_file option) with
    | None -> []
    | Some entries -> entries)

let store_memo t ~env (entries : memo_file) =
  write_file (memo_path t ~env) (marshal entries)
