(** Content-addressed on-disk store for per-definition check results
    and the instance-pair interaction memo.

    {2 Addressing}

    Everything is keyed under an {e environment digest} [env] — a hash
    of the rule set and the result-affecting parts of the engine
    configuration, computed by {!Engine.env_key} — so results checked
    under different rules or configs can never be confused.  Within an
    environment:

    - a definition entry is addressed by the symbol's structural
      fingerprint ({!Engine.fingerprint}), so the entry is valid for
      {e any} layout containing a structurally identical definition;
    - the interaction memo is one file whose entries are keyed by
      (subtree fingerprint, subtree fingerprint, relative transform) —
      symbol ids are process-local and are remapped by the engine on
      load.

    {2 Layout}

    {v
    DIR/defs/<env>/<fingerprint>   one file per cached definition
    DIR/memo/<env>                 the persisted interaction memo
    v}

    {2 Safety and determinism}

    Every file is [magic ^ MD5(payload) ^ payload] and is written to a
    temporary name then renamed, so readers never observe a partial
    file.  A file that is missing, truncated, from another version, or
    whose digest does not match is treated as a miss — corruption can
    cost a recheck but can never crash or change a verdict.  The cache
    stores only inputs to report {e assembly} (violation lists, memo
    candidates), never verdict logic, which is the engine's determinism
    invariant: cache state changes cost, not results.

    {2 Concurrent writers}

    Temp names are unique per writer (pid × sequence number), so any
    number of domains or processes may store into one cache directory:
    each rename publishes a complete, self-verifying file, and when two
    writers race on the same address the last rename wins.  Definition
    entries are content-addressed — racing writers are writing
    identical payloads — and a lost memo merge costs at most some
    warmth on the next load.  Either way the race moves cost, never
    verdicts. *)

type t

(** Per-definition results for the three definition-local sweeps.  The
    lists are in the checker's emission order for that definition. *)
type def_entry = {
  de_elements : Report.violation list;
  de_devices : Report.violation list;
  de_relational : Report.violation list;
}

(** Memo entries persisted with content-addressed keys:
    (caller subtree fingerprint, callee subtree fingerprint, relative
    transform). *)
type memo_file = ((string * string * Geom.Transform.t) * Interactions.memo_entry) list

(** [open_dir dir] creates [dir] (and parents) if needed.  Raises
    [Sys_error] only if the directory cannot be created at all. *)
val open_dir : string -> t

val find_def : t -> env:string -> fp:string -> def_entry option
val store_def : t -> env:string -> fp:string -> def_entry -> unit

(** [[]] on miss or corruption. *)
val load_memo : t -> env:string -> memo_file

val store_memo : t -> env:string -> memo_file -> unit
