(* Represented as p -> M p + t where M has rows (a b) (c d), each of the
   eight orthogonal matrices. *)
type t = { a : int; b : int; c : int; d : int; tx : int; ty : int }

let identity = { a = 1; b = 0; c = 0; d = 1; tx = 0; ty = 0 }
let translate tx ty = { identity with tx; ty }

let rotate = function
  | `East -> identity
  | `North -> { a = 0; b = -1; c = 1; d = 0; tx = 0; ty = 0 }
  | `West -> { a = -1; b = 0; c = 0; d = -1; tx = 0; ty = 0 }
  | `South -> { a = 0; b = 1; c = -1; d = 0; tx = 0; ty = 0 }

let mirror_x = { a = -1; b = 0; c = 0; d = 1; tx = 0; ty = 0 }
let mirror_y = { a = 1; b = 0; c = 0; d = -1; tx = 0; ty = 0 }

let compose f g =
  (* (f o g) p = f (g p) = Mf (Mg p + tg) + tf *)
  { a = (f.a * g.a) + (f.b * g.c);
    b = (f.a * g.b) + (f.b * g.d);
    c = (f.c * g.a) + (f.d * g.c);
    d = (f.c * g.b) + (f.d * g.d);
    tx = (f.a * g.tx) + (f.b * g.ty) + f.tx;
    ty = (f.c * g.tx) + (f.d * g.ty) + f.ty }

let seq ts = List.fold_left (fun acc t -> compose t acc) identity ts

let apply_pt t (p : Pt.t) =
  Pt.make ((t.a * p.Pt.x) + (t.b * p.Pt.y) + t.tx)
    ((t.c * p.Pt.x) + (t.d * p.Pt.y) + t.ty)

let apply_x t x y = (t.a * x) + (t.b * y) + t.tx
let apply_y t x y = (t.c * x) + (t.d * y) + t.ty

let apply_rect t r =
  let p = apply_pt t (Pt.make (Rect.x0 r) (Rect.y0 r))
  and q = apply_pt t (Pt.make (Rect.x1 r) (Rect.y1 r)) in
  Rect.make p.Pt.x p.Pt.y q.Pt.x q.Pt.y

let det t = (t.a * t.d) - (t.b * t.c)
let equal (x : t) (y : t) = x = y
let compare (x : t) (y : t) = Stdlib.compare x y

let inverse t =
  (* M is orthogonal with entries in {-1,0,1}: M^-1 = M^T. *)
  let a = t.a and b = t.c and c = t.b and d = t.d in
  { a; b; c; d; tx = -((a * t.tx) + (b * t.ty)); ty = -((c * t.tx) + (d * t.ty)) }

let pp ppf t =
  Format.fprintf ppf "[%d %d; %d %d]+(%d,%d)" t.a t.b t.c t.d t.tx t.ty
