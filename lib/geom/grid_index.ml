type 'a item = { id : int; box : Rect.t; value : 'a }

type 'a t = {
  cell : int;
  buckets : (int * int, 'a item list ref) Hashtbl.t;
  mutable items : 'a item list;  (** newest first *)
  mutable next_id : int;
}

let create ~cell () =
  if cell <= 0 then invalid_arg "Grid_index.create: cell must be positive";
  { cell; buckets = Hashtbl.create 256; items = []; next_id = 0 }

let fdiv a b = if a >= 0 then a / b else ((a + 1) / b) - 1

let cells_of t box f =
  let cx0 = fdiv (Rect.x0 box) t.cell
  and cy0 = fdiv (Rect.y0 box) t.cell
  and cx1 = fdiv (Rect.x1 box) t.cell
  and cy1 = fdiv (Rect.y1 box) t.cell in
  for cx = cx0 to cx1 do
    for cy = cy0 to cy1 do
      f (cx, cy)
    done
  done

let add t box value =
  let item = { id = t.next_id; box; value } in
  t.next_id <- t.next_id + 1;
  t.items <- item :: t.items;
  cells_of t box (fun key ->
      match Hashtbl.find_opt t.buckets key with
      | Some l -> l := item :: !l
      | None -> Hashtbl.add t.buckets key (ref [ item ]))

let length t = t.next_id

let query t window =
  let seen = Hashtbl.create 16 in
  let hits = ref [] in
  cells_of t window (fun key ->
      match Hashtbl.find_opt t.buckets key with
      | None -> ()
      | Some l ->
        List.iter
          (fun it ->
            if (not (Hashtbl.mem seen it.id)) && Rect.touches ~a:it.box ~b:window then begin
              Hashtbl.add seen it.id ();
              hits := it :: !hits
            end)
          !l);
  !hits
  |> List.sort (fun a b -> Int.compare a.id b.id)
  |> List.map (fun it -> (it.box, it.value))

let pairs_within t d =
  let out = ref [] in
  List.iter
    (fun a ->
      match Rect.inflate a.box d with
      | None -> ()
      | Some window ->
        let seen = Hashtbl.create 8 in
        cells_of t window (fun key ->
            match Hashtbl.find_opt t.buckets key with
            | None -> ()
            | Some l ->
              List.iter
                (fun b ->
                  if
                    b.id < a.id
                    && (not (Hashtbl.mem seen b.id))
                    && Rect.chebyshev_gap a.box b.box <= d
                  then begin
                    Hashtbl.add seen b.id ();
                    out := ((a.box, a.value), (b.box, b.value)) :: !out
                  end)
                !l))
    t.items;
  !out

let fold f acc t =
  List.fold_left (fun acc it -> f acc it.box it.value) acc (List.rev t.items)

(* Callback forms: same hits as [query]/[pairs_within] with a
   documented canonical order (ascending ids) and no result list.  The
   per-window candidate sets are tiny, so sorting a scratch buffer of
   ids costs less than materialising pairs ever did.  [pairs_within]
   itself is left untouched: its historical order is load-bearing for
   callers that number things by first encounter. *)

let window_hits t window f =
  let seen = Hashtbl.create 16 in
  let hits = ref [] in
  cells_of t window (fun key ->
      match Hashtbl.find_opt t.buckets key with
      | None -> ()
      | Some l ->
        List.iter
          (fun it ->
            if (not (Hashtbl.mem seen it.id)) && Rect.touches ~a:it.box ~b:window then begin
              Hashtbl.add seen it.id ();
              hits := it :: !hits
            end)
          !l);
  List.iter f (List.sort (fun a b -> Int.compare a.id b.id) !hits)

let iter_query t window f = window_hits t window (fun it -> f it.box it.value)

let iter_pairs_within t d f =
  List.iter
    (fun a ->
      match Rect.inflate a.box d with
      | None -> ()
      | Some window ->
        let seen = Hashtbl.create 8 in
        let near = ref [] in
        cells_of t window (fun key ->
            match Hashtbl.find_opt t.buckets key with
            | None -> ()
            | Some l ->
              List.iter
                (fun b ->
                  if
                    b.id < a.id
                    && (not (Hashtbl.mem seen b.id))
                    && Rect.chebyshev_gap a.box b.box <= d
                  then begin
                    Hashtbl.add seen b.id ();
                    near := b :: !near
                  end)
                !l);
        List.iter
          (fun b -> f (a.box, a.value) (b.box, b.value))
          (List.sort (fun x y -> Int.compare x.id y.id) !near))
    (List.rev t.items)
