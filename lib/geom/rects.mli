(** Packed rectangle sets and the interaction-check gap kernels.

    The interaction stage spends nearly all of its time asking one
    question: how close do two small sets of axis-aligned rectangles
    come?  This module gives that question a representation and two
    kernels.

    {b Representation.}  A set is one flat buffer of
    [(x0, y0, x1, y1)] quadruples sorted by {!Rect.compare} order
    (min-x first), with the bounding box precomputed.  Packing removes
    the per-rectangle boxing of a [Rect.t list] — walking a set is a
    cache-friendly scan, and an orthogonal {!Transform.t} can be
    applied with {!apply_into} into a caller-owned scratch set without
    allocating.  The buffer itself lives either on the OCaml heap
    ([int array]) or off-heap ([Bigarray], never scanned or moved by
    the GC) — see {!section-storage}.

    {b Mutability contract.}  [t] is mutable only so it can serve as a
    reusable scratch buffer for {!apply_into}.  A set that escapes into
    a shared structure (an elaborated element, a memoised candidate
    list) must never be mutated afterwards; the checker allocates fresh
    sets ({!apply}, {!of_list}) for those and keeps scratch sets
    per-domain. *)

type t

(** A fresh empty set (also the way to create a scratch buffer for
    {!apply_into}). *)
val empty : unit -> t

(** Build from a rectangle list.  The input order is irrelevant: the
    set is sorted into canonical {!Rect.compare} order. *)
val of_list : Rect.t list -> t

(** The rectangles in canonical (sorted) order. *)
val to_list : t -> Rect.t list

val length : t -> int
val is_empty : t -> bool

(** [get t i] is the [i]-th rectangle in canonical order.
    @raise Invalid_argument when [i] is out of bounds. *)
val get : t -> int -> Rect.t

(** Bounding box of the set; [None] when empty. *)
val bbox : t -> Rect.t option

(** [apply_into tr ~src ~dst] overwrites [dst] with [tr] applied to
    [src], re-sorting into canonical order, without allocating (beyond
    a one-time growth of [dst]'s backing array).  [src] and [dst] must
    be distinct sets. *)
val apply_into : Transform.t -> src:t -> dst:t -> unit

(** [apply tr src] is a freshly allocated transformed copy. *)
val apply : Transform.t -> t -> t

(** {2 Minimum-gap kernels}

    Both kernels compute the same function: over all rectangle pairs
    [(i, j)] of the two sets whose squared separation is at most
    [cutoff2], the minimum squared separation — Euclidean
    ([euclid = true]) or Chebyshev/orthogonal — together with the
    indices of the minimising pair and whether any pair of the two
    sets overlaps with positive area.

    {b Cutoff semantics.}  [cutoff2] is inclusive: a pair at exactly
    the cutoff is reported.  When no pair is within the cutoff the
    result is {!no_gap} (with [g2 = max_int] and [ai = bi = -1]),
    except that [overlap] is always exact — overlapping pairs have a
    squared gap of zero and can never fall outside any cutoff.  Callers
    that need the true minimum (the exposure spacing model prints it)
    pass [cutoff2 = max_int].

    {b Tie-break.}  Among pairs achieving the minimum, the
    [(ai, bi)]-lexicographically smallest over the canonical order is
    returned — by both kernels, so reports are byte-identical
    whichever kernel is selected. *)

type gap = {
  g2 : int;  (** squared separation; [max_int] when nothing qualifies *)
  ai : int;  (** index into the first set, [-1] when nothing qualifies *)
  bi : int;  (** index into the second set *)
  overlap : bool;  (** some pair overlaps with positive area (exact) *)
}

val no_gap : gap

(** Reusable scratch for the sweep: the active-band index arrays plus
    the entire per-call mutable state (best pair, overlap flag, band
    lengths), so a {!gap2_sweep} call allocates nothing but its result.
    One per domain: not thread-safe, but freely reusable across
    calls. *)
type ws

val make_ws : unit -> ws

(** The oracle: the original brute-force kernel — n·m axis gaps over
    boxed rectangle lists, no pruning.  Slow on purpose; it is the
    test oracle for {!gap2_sweep} and the pre-packing baseline the
    [kernel] bench experiment measures against. *)
val gap2_naive : euclid:bool -> cutoff2:int -> t -> t -> gap

(** The production kernel: an x-sweep over both sets merged in
    ascending min-x, holding the other set's candidates in an active
    band pruned against [min best-so-far cutoff2].  ~O((n+m)·band)
    with early exit via the cutoff, against the oracle's n·m. *)
val gap2_sweep : euclid:bool -> cutoff2:int -> ws -> t -> t -> gap

(** {2 Kernel selection}

    The kernel is a process-wide switch, initialised from the
    [DIC_NAIVE_KERNEL] environment variable (unset, empty, or ["0"]
    select {!Sweep}; anything else selects {!Naive}) and adjustable
    programmatically for A/B measurements.  Select once at startup:
    the switch is read per call and is not synchronised across
    domains. *)

type kernel = Naive | Sweep

val kernel : unit -> kernel
val set_kernel : kernel -> unit

(** [gap2 ~euclid ~cutoff2 ws a b] — whichever kernel is selected. *)
val gap2 : euclid:bool -> cutoff2:int -> ws -> t -> t -> gap

(** {2:storage Storage selection}

    Like the kernel switch, the backing store is a process-wide switch,
    initialised from the [DIC_RECTS_STORAGE] environment variable
    (["offheap"], ["bigarray"], or ["big"] select {!Offheap}; anything
    else, or unset, selects {!Heap}) and adjustable programmatically
    for A/B measurements.  It applies to sets created after the switch
    is flipped; existing sets keep their store, and the gap kernels
    accept mixed-store pairs (via a generic, slightly slower driver).
    Both stores produce bit-identical results.

    {!Heap} sets are ordinary [int array]s; {!Offheap} sets keep their
    payload in [Bigarray] memory that the minor GC neither scans nor
    copies — on large decks this takes the packed geometry out of the
    GC's working set entirely. *)

type storage = Heap | Offheap

val storage : unit -> storage
val set_storage : storage -> unit

(** The store backing one particular set (for tests and benchmarks). *)
val storage_of : t -> storage

val pp : Format.formatter -> t -> unit
