(** Orthogonal affine transforms (the CIF instancing group).

    CIF symbol calls compose translations, mirrors, and rotations.  This
    library restricts rotation to the four orthogonal directions, which
    is what the NMOS design style and the checker need: all geometry
    stays axis-aligned under these transforms. *)

type t

val identity : t

(** [translate dx dy] *)
val translate : int -> int -> t

(** [rotate d] where [d] is the CIF direction vector reduced to an
    orthogonal quadrant: [`East] is identity, [`North] rotates 90
    degrees counter-clockwise, etc. *)
val rotate : [ `East | `North | `West | `South ] -> t

(** Mirror in x: negates the x coordinate (CIF [M X]). *)
val mirror_x : t

(** Mirror in y: negates the y coordinate (CIF [M Y]). *)
val mirror_y : t

(** [compose f g] applies [g] first, then [f]. *)
val compose : t -> t -> t

(** [seq ts] composes a CIF transformation list: the first element of
    [ts] is applied first (CIF order). *)
val seq : t list -> t

val apply_pt : t -> Pt.t -> Pt.t
val apply_rect : t -> Rect.t -> Rect.t

(** Scalar forms of {!apply_pt}, for callers that keep coordinates in
    flat arrays and cannot afford a [Pt.t] allocation per point (the
    {!Rects} packed kernel).  [apply_x t x y] is the x coordinate of
    the transformed point, [apply_y t x y] the y coordinate. *)
val apply_x : t -> int -> int -> int

val apply_y : t -> int -> int -> int

(** [det t] is [+1] for orientation-preserving transforms and [-1] for
    reflections. *)
val det : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** [inverse t] — transforms are invertible in the group. *)
val inverse : t -> t

val pp : Format.formatter -> t -> unit
