(* Packed rectangle sets and the minimum-gap kernels.

   One flat int array of (x0,y0,x1,y1) quadruples, kept sorted by
   Rect.compare order (x0, then y0, x1, y1), with the bounding box
   cached alongside.  The record is mutable so a set can double as a
   reusable scratch buffer for [apply_into]; sets that escape into
   shared structures (elaborated elements, memo entries) are never
   mutated after construction. *)

type t = {
  mutable data : int array;  (* quadruples, 4 * count used *)
  mutable count : int;
  mutable bx0 : int;
  mutable by0 : int;
  mutable bx1 : int;
  mutable by1 : int;
}

let empty () = { data = [||]; count = 0; bx0 = 0; by0 = 0; bx1 = 0; by1 = 0 }

let length t = t.count
let is_empty t = t.count = 0

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Rects.get: index out of bounds";
  let o = 4 * i in
  Rect.make t.data.(o) t.data.(o + 1) t.data.(o + 2) t.data.(o + 3)

let bbox t = if t.count = 0 then None else Some (Rect.make t.bx0 t.by0 t.bx1 t.by1)

(* Lexicographic order on quadruples, matching Rect.compare. *)
let quad_less d i j =
  let a = 4 * i and b = 4 * j in
  let c = Int.compare d.(a) d.(b) in
  if c <> 0 then c < 0
  else
    let c = Int.compare d.(a + 1) d.(b + 1) in
    if c <> 0 then c < 0
    else
      let c = Int.compare d.(a + 2) d.(b + 2) in
      if c <> 0 then c < 0 else d.(a + 3) < d.(b + 3)

(* Insertion sort over quadruples.  Sets are per-element geometry (a
   box, the strips of one wire or polygon), so n is small; and the
   common transform is a translation, which keeps the source order and
   makes this a single linear pass. *)
let sort_quads d n =
  for i = 1 to n - 1 do
    if quad_less d i (i - 1) then begin
      let x0 = d.(4 * i)
      and y0 = d.((4 * i) + 1)
      and x1 = d.((4 * i) + 2)
      and y1 = d.((4 * i) + 3) in
      let j = ref (i - 1) in
      let less_than_key j =
        let b = 4 * j in
        let c = Int.compare x0 d.(b) in
        if c <> 0 then c < 0
        else
          let c = Int.compare y0 d.(b + 1) in
          if c <> 0 then c < 0
          else
            let c = Int.compare x1 d.(b + 2) in
            if c <> 0 then c < 0 else y1 < d.(b + 3)
      in
      while !j >= 0 && less_than_key !j do
        Array.blit d (4 * !j) d (4 * (!j + 1)) 4;
        decr j
      done;
      let o = 4 * (!j + 1) in
      d.(o) <- x0;
      d.(o + 1) <- y0;
      d.(o + 2) <- x1;
      d.(o + 3) <- y1
    end
  done

let recompute_bbox t =
  if t.count > 0 then begin
    let d = t.data in
    let bx0 = ref d.(0) and by0 = ref d.(1) and bx1 = ref d.(2) and by1 = ref d.(3) in
    for i = 1 to t.count - 1 do
      let o = 4 * i in
      if d.(o) < !bx0 then bx0 := d.(o);
      if d.(o + 1) < !by0 then by0 := d.(o + 1);
      if d.(o + 2) > !bx1 then bx1 := d.(o + 2);
      if d.(o + 3) > !by1 then by1 := d.(o + 3)
    done;
    t.bx0 <- !bx0;
    t.by0 <- !by0;
    t.bx1 <- !bx1;
    t.by1 <- !by1
  end

let of_list rects =
  let n = List.length rects in
  let t =
    { data = Array.make (4 * n) 0; count = n; bx0 = 0; by0 = 0; bx1 = 0; by1 = 0 }
  in
  List.iteri
    (fun i r ->
      let o = 4 * i in
      t.data.(o) <- Rect.x0 r;
      t.data.(o + 1) <- Rect.y0 r;
      t.data.(o + 2) <- Rect.x1 r;
      t.data.(o + 3) <- Rect.y1 r)
    rects;
  sort_quads t.data n;
  recompute_bbox t;
  t

let to_list t =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    out := get t i :: !out
  done;
  !out

let ensure_capacity t n =
  if Array.length t.data < 4 * n then t.data <- Array.make (4 * n) 0

let apply_into tr ~src ~dst =
  ensure_capacity dst src.count;
  dst.count <- src.count;
  let s = src.data and d = dst.data in
  for i = 0 to src.count - 1 do
    let o = 4 * i in
    let px = Transform.apply_x tr s.(o) s.(o + 1)
    and py = Transform.apply_y tr s.(o) s.(o + 1)
    and qx = Transform.apply_x tr s.(o + 2) s.(o + 3)
    and qy = Transform.apply_y tr s.(o + 2) s.(o + 3) in
    d.(o) <- (if px < qx then px else qx);
    d.(o + 1) <- (if py < qy then py else qy);
    d.(o + 2) <- (if px < qx then qx else px);
    d.(o + 3) <- (if py < qy then qy else py)
  done;
  sort_quads d dst.count;
  (* Orthogonal transforms map boxes to boxes: the transformed source
     bbox is exact. *)
  if src.count > 0 then begin
    let px = Transform.apply_x tr src.bx0 src.by0
    and py = Transform.apply_y tr src.bx0 src.by0
    and qx = Transform.apply_x tr src.bx1 src.by1
    and qy = Transform.apply_y tr src.bx1 src.by1 in
    dst.bx0 <- (if px < qx then px else qx);
    dst.by0 <- (if py < qy then py else qy);
    dst.bx1 <- (if px < qx then qx else px);
    dst.by1 <- (if py < qy then qy else py)
  end

let apply tr src =
  let dst = empty () in
  apply_into tr ~src ~dst;
  dst

(* ------------------------------------------------------------------ *)
(* Minimum-gap kernels                                                 *)

type gap = { g2 : int; ai : int; bi : int; overlap : bool }

let no_gap = { g2 = max_int; ai = -1; bi = -1; overlap = false }

type ws = { mutable wa : int array; mutable wb : int array }

let make_ws () = { wa = [||]; wb = [||] }

let ensure_ws ws na nb =
  if Array.length ws.wa < na then ws.wa <- Array.make na 0;
  if Array.length ws.wb < nb then ws.wb <- Array.make nb 0

(* The oracle: the checker's original list-of-rects brute force, n*m
   axis gaps with no pruning, kept bit-compatible with the sweep.  The
   pair reported for a tied minimum gap is the (ai, bi)-lexicographically
   first over the sorted arrays; [overlap] is exact.  Deliberately left
   on boxed rectangles (it also serves as the pre-packing cost baseline
   for the [kernel] bench experiment). *)
let gap2_naive ~euclid ~cutoff2 a b =
  if a.count = 0 || b.count = 0 then no_gap
  else begin
    let best = ref no_gap in
    let ra = Array.of_list (to_list a) and rb = Array.of_list (to_list b) in
    Array.iteri
      (fun i xa ->
        Array.iteri
          (fun j xb ->
            let xg = Rect.gap_x xa xb and yg = Rect.gap_y xa xb in
            let ov = !best.overlap || Rect.overlaps ~a:xa ~b:xb in
            let g2 =
              if euclid then (xg * xg) + (yg * yg)
              else
                let m = if xg > yg then xg else yg in
                m * m
            in
            if g2 <= cutoff2 && g2 < !best.g2 then
              best := { g2; ai = i; bi = j; overlap = ov }
            else if ov <> !best.overlap then best := { !best with overlap = ov })
          rb)
      ra;
    !best
  end

(* The x-sweep.  Rectangles of both sets are visited in ascending x0
   (merged); each opening rectangle is compared against the other set's
   active band, from which rectangles are evicted once their x distance
   alone squared exceeds [min best2 cutoff2].  Eviction uses a strict
   comparison, so pairs tying the current best survive and the
   (ai, bi)-lexicographic tie-break below returns exactly the pair the
   naive kernel finds.  Overlapping pairs have zero x gap and are never
   evicted, so [overlap] is exact too. *)
let gap2_sweep ~euclid ~cutoff2 ws a b =
  if a.count = 0 || b.count = 0 then no_gap
  else begin
    ensure_ws ws a.count b.count;
    let da = a.data and db = b.data in
    let best2 = ref max_int and bai = ref (-1) and bbi = ref (-1) in
    let overlap = ref false in
    let act_a = ws.wa and act_b = ws.wb in
    let na = ref 0 and nb = ref 0 in
    let consider ai bi =
      let oa = 4 * ai and ob = 4 * bi in
      let ax0 = da.(oa) and ay0 = da.(oa + 1) and ax1 = da.(oa + 2) and ay1 = da.(oa + 3) in
      let bx0 = db.(ob) and by0 = db.(ob + 1) and bx1 = db.(ob + 2) and by1 = db.(ob + 3) in
      let xg =
        let d1 = bx0 - ax1 and d2 = ax0 - bx1 in
        let m = if d1 > d2 then d1 else d2 in
        if m > 0 then m else 0
      in
      let yg =
        let d1 = by0 - ay1 and d2 = ay0 - by1 in
        let m = if d1 > d2 then d1 else d2 in
        if m > 0 then m else 0
      in
      if
        xg = 0 && yg = 0 && ax0 < bx1 && bx0 < ax1 && ay0 < by1 && by0 < ay1
      then overlap := true;
      let g2 =
        if euclid then (xg * xg) + (yg * yg)
        else
          let m = if xg > yg then xg else yg in
          m * m
      in
      if g2 <= cutoff2 then
        if
          g2 < !best2
          || (g2 = !best2 && (ai < !bai || (ai = !bai && bi < !bbi)))
        then begin
          best2 := g2;
          bai := ai;
          bbi := bi
        end
    in
    let bound2 () = if !best2 < cutoff2 then !best2 else cutoff2 in
    (* Evict rectangles whose x gap to the sweep position [x] (and to
       every later opening, since x0 only grows) already exceeds the
       bound. *)
    let prune act n d x =
      let b2 = bound2 () in
      let k = ref 0 in
      for i = 0 to !n - 1 do
        let ri = act.(i) in
        let dx = x - d.((4 * ri) + 2) in
        if dx <= 0 || dx * dx <= b2 then begin
          act.(!k) <- ri;
          incr k
        end
      done;
      n := !k
    in
    let ia = ref 0 and ib = ref 0 in
    while !ia < a.count || !ib < b.count do
      let take_a =
        if !ib >= b.count then true
        else if !ia >= a.count then false
        else da.(4 * !ia) <= db.(4 * !ib)
      in
      if take_a then begin
        let i = !ia in
        prune act_b nb db da.(4 * i);
        for j = 0 to !nb - 1 do
          consider i act_b.(j)
        done;
        act_a.(!na) <- i;
        incr na;
        incr ia
      end
      else begin
        let j = !ib in
        prune act_a na da db.(4 * j);
        for i = 0 to !na - 1 do
          consider act_a.(i) j
        done;
        act_b.(!nb) <- j;
        incr nb;
        incr ib
      end
    done;
    if !bai < 0 then { no_gap with overlap = !overlap }
    else { g2 = !best2; ai = !bai; bi = !bbi; overlap = !overlap }
  end

(* ------------------------------------------------------------------ *)
(* Kernel selection                                                    *)

type kernel = Naive | Sweep

let kernel_of_env () =
  match Sys.getenv_opt "DIC_NAIVE_KERNEL" with
  | None | Some "" | Some "0" -> Sweep
  | Some _ -> Naive

let current = ref (kernel_of_env ())
let kernel () = !current
let set_kernel k = current := k

let gap2 ~euclid ~cutoff2 ws a b =
  match !current with
  | Sweep -> gap2_sweep ~euclid ~cutoff2 ws a b
  | Naive -> gap2_naive ~euclid ~cutoff2 a b

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  for i = 0 to t.count - 1 do
    if i > 0 then Format.fprintf ppf " ";
    Rect.pp ppf (get t i)
  done;
  Format.fprintf ppf "}@]"
